package wdpt_test

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"wdpt"
	"wdpt/internal/gen"
)

// Determinism of the consolidated Solve API on the Figure 1 fixture: at any
// Parallelism the answer list is byte-identical (same solutions, same
// order) and every non-par.* counter lands on the sequential total. This is
// the root-level pin of the tentpole guarantee; internal/harness has the
// sweep-level counterpart over E1-E6/E14.

// renderSolutions serializes an answer list byte-stably (the list order is
// the library's canonical order; keys within a mapping are sorted here).
func renderSolutions(ms []wdpt.Mapping) string {
	var b strings.Builder
	for _, m := range ms {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "%s=%s;", k, m[k])
		}
		b.WriteString("\n")
	}
	return b.String()
}

func dropParCounters(snap map[string]int64) map[string]int64 {
	for name := range snap {
		if strings.HasPrefix(name, "par.") {
			delete(snap, name)
		}
	}
	return snap
}

func TestSolveDeterminismFigure1(t *testing.T) {
	p := gen.MusicWDPT("x", "y", "z", "zp")
	d := gen.MusicDatabase()
	engines := []struct {
		name string
		mk   func() wdpt.Engine
	}{
		{"naive", wdpt.NaiveEngine},
		{"yannakakis", wdpt.YannakakisEngine},
		{"auto", wdpt.AutoEngine},
	}
	modes := []wdpt.SolveMode{wdpt.ModeEnumerate, wdpt.ModeMaximal}
	for _, e := range engines {
		for _, mode := range modes {
			t.Run(fmt.Sprintf("%s/%s", e.name, mode), func(t *testing.T) {
				run := func(par int) (string, map[string]int64, map[string]int64) {
					st := wdpt.NewStats()
					res, err := p.Solve(context.Background(), d, wdpt.SolveOptions{
						Mode:        mode,
						Engine:      wdpt.WithStats(e.mk(), st),
						Parallelism: par,
					})
					if err != nil {
						t.Fatalf("Solve(parallelism=%d): %v", par, err)
					}
					full := st.Snapshot()
					par_ := map[string]int64{}
					for name, v := range full {
						if strings.HasPrefix(name, "par.") {
							par_[name] = v
						}
					}
					return renderSolutions(res.Answers), dropParCounters(full), par_
				}
				baseAns, baseSnap, basePar := run(1)
				if len(basePar) != 0 {
					t.Errorf("parallelism=1 recorded par.* counters: %v", basePar)
				}
				if baseAns == "" {
					t.Fatal("no answers on the Figure 1 fixture")
				}
				for _, par := range []int{2, 8} {
					ans, snap, _ := run(par)
					if ans != baseAns {
						t.Errorf("answers differ at parallelism %d:\n--- 1\n%s--- %d\n%s", par, baseAns, par, ans)
					}
					snapshotDiff(t, snap, baseSnap)
				}
			})
		}
	}
}

// TestSolveSequentialMatchesLegacyCounters pins that Solve at
// Parallelism ≤ 1 reproduces the exact counter totals of the historical
// sequential evaluator — the same numbers TestCounterExactnessYannakakis
// pins for the deprecated EvaluateWith path.
func TestSolveSequentialMatchesLegacyCounters(t *testing.T) {
	p := gen.MusicWDPT("x", "y", "z", "zp")
	d := gen.MusicDatabase()
	st := wdpt.NewStats()
	res, err := p.Solve(context.Background(), d, wdpt.SolveOptions{
		Mode:   wdpt.ModeEnumerate,
		Engine: wdpt.WithStats(wdpt.YannakakisEngine(), st),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 2 {
		t.Fatalf("p(D) has %d answers, want 2", len(res.Answers))
	}
	snapshotDiff(t, st.Snapshot(), map[string]int64{
		"core.extension_units_tested": 5,
		"cq.homomorphisms_found":      5,
		"cq.tuples_scanned":           5,
		"cqeval.bag_rows":             5,
		"cqeval.bags_built":           7,
		"cqeval.join_trees_built":     3,
		"cqeval.joins":                1,
		"cqeval.plan_cache_hits":      3,
		"cqeval.plan_cache_misses":    3,
		"cqeval.project_calls":        6,
		"cqeval.semijoin_passes":      2,
		"db.dict_lookups":             6,
		"db.index_probes":             5,
		"db.index_probe_rows":         6,
	})
}

// TestSolveDecisionModesParallel checks the decision modes agree at every
// parallelism level on both positive and negative instances.
func TestSolveDecisionModesParallel(t *testing.T) {
	p := gen.MusicWDPT("x", "y", "z", "zp")
	d := gen.MusicDatabase()
	base, err := p.Solve(context.Background(), d, wdpt.SolveOptions{Mode: wdpt.ModeEnumerate})
	if err != nil || len(base.Answers) == 0 {
		t.Fatalf("enumerate: %v (%d answers)", err, len(base.Answers))
	}
	hYes := base.Answers[0]
	hNo := wdpt.Mapping{"x": "no_such_album", "y": "nobody"}
	for _, mode := range []wdpt.SolveMode{wdpt.ModeExact, wdpt.ModeExactNaive, wdpt.ModePartial, wdpt.ModeMax} {
		for _, par := range []int{1, 2, 8} {
			for h, want := range map[string]bool{"yes": true, "no": false} {
				m := hYes
				if h == "no" {
					m = hNo
				}
				if mode == wdpt.ModeMax && h == "yes" {
					// hYes is a (maximal) answer of p(D); for ModePartial it
					// is also a partial answer. Both expect true. ModeExact
					// expects membership in p(D) — also true.
					want = true
				}
				res, err := p.Solve(context.Background(), d, wdpt.SolveOptions{
					Mode:        mode,
					Mapping:     m,
					Parallelism: par,
				})
				if err != nil {
					t.Fatalf("%v/%s par=%d: %v", mode, h, par, err)
				}
				if res.Holds != want {
					t.Errorf("%v/%s par=%d: Holds=%v, want %v", mode, h, par, res.Holds, want)
				}
			}
		}
	}
}

// TestUnionSolveDeterminism checks Union.Solve merges member answers in a
// byte-stable order at every parallelism level.
func TestUnionSolveDeterminism(t *testing.T) {
	p1 := gen.MusicWDPT("x", "y", "z", "zp")
	p2 := gen.MusicWDPT("x", "y")
	u, err := wdpt.NewUnion(p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	d := gen.MusicDatabase()
	run := func(par int) string {
		res, err := u.Solve(context.Background(), d, wdpt.SolveOptions{
			Mode:        wdpt.ModeEnumerate,
			Parallelism: par,
		})
		if err != nil {
			t.Fatalf("union Solve(parallelism=%d): %v", par, err)
		}
		return renderSolutions(res.Answers)
	}
	base := run(1)
	if base == "" {
		t.Fatal("union produced no answers")
	}
	for _, par := range []int{2, 8} {
		if got := run(par); got != base {
			t.Errorf("union answers differ at parallelism %d:\n--- 1\n%s--- %d\n%s", par, base, par, got)
		}
	}
}
