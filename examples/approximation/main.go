// Approximation: a pattern whose core join is a directed cycle (outside the
// well-behaved class WB(1)) is approximated by a tractable pattern; on a
// large acyclic database the approximation answers in a fraction of the
// time while staying sound (Section 5.2 of the paper). Also demonstrates
// M(WB(k)) membership and the UWB(k) machinery for unions.
package main

import (
	"fmt"
	"time"

	"wdpt"
	"wdpt/internal/gen"
)

func main() {
	// A single-node pattern: a directed 4-cycle among existential
	// variables next to a free vertex marker. Its treewidth is 2, so it is
	// outside WB(1).
	p := gen.DirectedCycleTree(4)
	fmt.Println("pattern (treewidth 2, outside WB(1)):")
	fmt.Println(wdpt.FormatWDPT(p))

	if _, member := wdpt.MemberWB(p, wdpt.WB(1), wdpt.ApproxOptions{}); member {
		panic("the directed 4-cycle folds onto nothing tree-shaped; it must not be in M(WB(1))")
	}
	fmt.Println("p ∉ M(WB(1)) — not even semantically tree-shaped; computing an approximation instead")

	start := time.Now()
	ap, err := wdpt.Approximate(p, wdpt.WB(1), wdpt.ApproxOptions{})
	if err != nil {
		panic(err)
	}
	computeTime := time.Since(start)
	fmt.Printf("\nWB(1)-approximation (computed once, in %v):\n%s\n",
		computeTime.Round(time.Millisecond), wdpt.FormatWDPT(ap))
	fmt.Printf("sound by construction: approximation ⊑ p is %v\n\n",
		wdpt.Subsumes(ap, p, wdpt.SubsumeOptions{}))

	// The payoff: a large layered (acyclic) database. The direct pattern
	// pays the full fan-out of the cycle join; the approximation refutes
	// in a single pass.
	for _, per := range []int{100, 400, 1600} {
		d := gen.LayeredDatabase(4, per, 10, int64(per))
		t0 := time.Now()
		direct := p.Evaluate(d)
		tDirect := time.Since(t0)
		t0 = time.Now()
		approxAns := ap.Evaluate(d)
		tApprox := time.Since(t0)
		fmt.Printf("|D| = %6d: direct %10v  approximation %10v  (answers: %d vs %d)\n",
			d.Size(), tDirect.Round(time.Microsecond), tApprox.Round(time.Microsecond),
			len(direct), len(approxAns))
	}

	// Unions drop the double-exponential WDPT machinery to plain CQ
	// approximations (Theorem 18).
	u, err := wdpt.NewUnion(p, gen.PathWDPT(2))
	if err != nil {
		panic(err)
	}
	qs, err := wdpt.ApproximateUnion(u, wdpt.TW(1), 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nUWB(1)-approximation of (cycle ∪ path): a union of %d tractable CQ(s):\n", len(qs))
	for _, q := range qs {
		fmt.Println("  " + q.String())
	}
}
