// Query planner: the full Section 3-5 pipeline as a downstream user would
// wire it — parse a query, classify it (Table 1 placement), pick the right
// evaluation strategy (syntactic tractability → semantic optimization via
// Corollary 2 → approximation as a sound fallback), and run it.
package main

import (
	"fmt"

	"wdpt"
)

func main() {
	d := buildGraph()

	queries := []struct{ name, src string }{
		// Syntactically tractable: chain with optional label.
		{"chain", `SELECT ?x ?l WHERE (edge(?x, ?y) AND edge(?y, ?z)) OPT label(?x, ?l)`},
		// Not syntactically tractable, but semantically: a foldable
		// symmetric square next to the answer variable.
		{"foldable-square", `ANS(?x) {
			edge(?a,?b), edge(?b,?a), edge(?b,?c), edge(?c,?b),
			edge(?c,?d), edge(?d,?c), edge(?d,?a), edge(?a,?d),
			label(?x, ?x) }`},
		// Genuinely intractable core: a directed triangle — only a sound
		// approximation is available in WB(1).
		{"triangle", `ANS(?x) { edge(?a,?b), edge(?b,?c), edge(?c,?a), label(?x, ?x) }`},
	}

	eng := wdpt.AutoEngine()
	for _, q := range queries {
		fmt.Printf("=== query %q\n", q.name)
		p := parse(q.src)
		cl := p.Classify()
		fmt.Printf("structure: ℓ-TW(%d) ∩ BI(%d), g-TW(%d)\n", cl.LocalTW, cl.InterfaceWidth, cl.GlobalTW)

		switch {
		case cl.GlobalTW == 1:
			fmt.Println("plan: syntactically in WB(1) — evaluate directly (Theorems 6-9)")
			report(p.Evaluate(d))
		default:
			if opt := wdpt.Optimize(p, wdpt.WB(1), wdpt.ApproxOptions{}); opt.Tractable() {
				fmt.Println("plan: in M(WB(1)) — evaluate through the Corollary 2 witness")
				fmt.Printf("witness: %d atoms (original: %d)\n",
					len(opt.Witness().AllAtoms()), len(p.AllAtoms()))
				// The witness preserves partial and maximal answers.
				fmt.Printf("partial{}: %v, via witness in polynomial time\n",
					opt.PartialEval(d, wdpt.Mapping{}, eng))
			} else {
				fmt.Println("plan: outside M(WB(1)) — falling back to a sound WB(1)-approximation")
				ap, err := wdpt.Approximate(p, wdpt.WB(1), wdpt.ApproxOptions{})
				if err != nil {
					panic(err)
				}
				fmt.Printf("approximation ⊑ original: %v\n", wdpt.Subsumes(ap, p, wdpt.SubsumeOptions{}))
				fmt.Println("approximate answers (sound, possibly incomplete):")
				report(ap.Evaluate(d))
				fmt.Println("exact answers for comparison:")
				report(p.Evaluate(d))
			}
		}
		fmt.Println()
	}
}

func parse(src string) *wdpt.PatternTree {
	if len(src) >= 3 && (src[0] == 'A' || src[0] == '\n') {
		if p, err := wdpt.ParseWDPT(src); err == nil {
			return p
		}
	}
	p, err := wdpt.ParseQuery(src)
	if err != nil {
		panic(err)
	}
	return p
}

func report(answers []wdpt.Mapping) {
	fmt.Printf("%d answer(s)\n", len(answers))
	for i, h := range answers {
		if i == 4 {
			fmt.Println("  ...")
			break
		}
		fmt.Println("  " + h.String())
	}
}

// buildGraph: a small directed graph containing a symmetric square, a
// directed triangle, labeled vertices, and a chain.
func buildGraph() *wdpt.Database {
	d := wdpt.NewDatabase()
	edges := [][2]string{
		{"n1", "n2"}, {"n2", "n3"}, {"n3", "n4"}, // chain
		{"s1", "s2"}, {"s2", "s1"}, {"s2", "s3"}, {"s3", "s2"}, // symmetric square
		{"s3", "s4"}, {"s4", "s3"}, {"s4", "s1"}, {"s1", "s4"},
		{"t1", "t2"}, {"t2", "t3"}, {"t3", "t1"}, // directed triangle
	}
	for _, e := range edges {
		d.Insert("edge", e[0], e[1])
	}
	d.Insert("label", "n1", "n1")
	d.Insert("label", "t1", "t1")
	return d
}
