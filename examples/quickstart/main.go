// Quickstart: the paper's running example (Examples 1-3 and 7 of Barceló &
// Pichler, PODS 2015) end to end — build the Figure 1 pattern tree, evaluate
// it over the music database, project, and switch to the maximal-mappings
// semantics.
package main

import (
	"fmt"

	"wdpt"
)

func main() {
	// The database of Example 2: two records by Caribou, one rated by NME.
	d := wdpt.NewDatabase()
	d.Insert("recorded_by", "Our_love", "Caribou")
	d.Insert("published", "Our_love", "after_2010")
	d.Insert("recorded_by", "Swim", "Caribou")
	d.Insert("published", "Swim", "after_2010")
	d.Insert("rating", "Swim", "2")

	// Query (1) of Example 1, in the algebraic {AND, OPT} syntax:
	// mandatory pattern plus two optional extensions.
	p, err := wdpt.ParseQuery(`
		(recorded_by(?x, ?y) AND published(?x, "after_2010"))
		OPT rating(?x, ?z)
		OPT formed_in(?y, ?zp)`)
	if err != nil {
		panic(err)
	}
	fmt.Println("The Figure 1 pattern tree:")
	fmt.Println(p)
	fmt.Println()

	// Example 2: evaluation returns maximal partial mappings — μ1 finds no
	// rating for Our_love, μ2 finds Swim's rating; neither band has a
	// founding year, so zp stays unbound.
	fmt.Println("p(D) — Example 2:")
	for _, h := range p.Evaluate(d) {
		fmt.Println("  " + h.String())
	}
	fmt.Println()

	// Example 3: projection to {y, z} keeps both answers, although one
	// subsumes the other.
	proj, err := wdpt.ParseQuery(`SELECT ?y ?z WHERE
		(recorded_by(?x, ?y) AND published(?x, "after_2010"))
		OPT rating(?x, ?z)
		OPT formed_in(?y, ?zp)`)
	if err != nil {
		panic(err)
	}
	fmt.Println("projected p(D) — Example 3:")
	for _, h := range proj.Evaluate(d) {
		fmt.Println("  " + h.String())
	}
	fmt.Println()

	// Example 7: the maximal-mappings semantics keeps only μ2.
	fmt.Println("projected p_m(D) — Example 7 (maximal mappings only):")
	for _, h := range proj.EvaluateMaximal(d) {
		fmt.Println("  " + h.String())
	}
	fmt.Println()

	// The decision problems of Section 3, using the tractable algorithms
	// (this tree is in ℓ-TW(1) ∩ BI(2) and g-TW(1), so all three run in
	// polynomial time — see `wdptanalyze`).
	eng := wdpt.AutoEngine()
	h := wdpt.Mapping{"y": "Caribou"}
	fmt.Printf("PARTIAL-EVAL {y -> Caribou}:     %v (extends to an answer)\n",
		proj.PartialEval(d, h, eng))
	fmt.Printf("EVAL         {y -> Caribou}:     %v (it IS an answer, Example 3)\n",
		proj.EvalInterface(d, h, eng))
	fmt.Printf("MAX-EVAL     {y -> Caribou}:     %v (but not a maximal one)\n",
		proj.MaxEval(d, h, eng))
	h2 := wdpt.Mapping{"y": "Caribou", "z": "2"}
	fmt.Printf("MAX-EVAL     {y -> Caribou, z -> 2}: %v\n", proj.MaxEval(d, h2, eng))
}
