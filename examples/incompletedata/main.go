// Incomplete data: optional matching over a relational HR dataset where
// employee records are partially filled — the motivating scenario of the
// paper's introduction, outside the semantic web. Conjunctive queries fail
// on employees missing an office or a phone number; the WDPT returns the
// best available answer for everyone and the three evaluation variants
// answer different operational questions.
package main

import (
	"fmt"

	"wdpt"
)

func main() {
	d := hrDatabase()

	// For every employee of the engineering department: the name always,
	// and office, phone, and the manager's name when recorded. Office and
	// phone are independent optional branches; the manager's name is a
	// nested optional below the manager id.
	p := wdpt.MustNew(wdpt.NodeSpec{
		Atoms: []wdpt.Atom{
			wdpt.NewAtom("employee", wdpt.V("id"), wdpt.V("name")),
			wdpt.NewAtom("dept", wdpt.V("id"), wdpt.C("engineering")),
		},
		Children: []wdpt.NodeSpec{
			{Atoms: []wdpt.Atom{wdpt.NewAtom("office", wdpt.V("id"), wdpt.V("room"))}},
			{Atoms: []wdpt.Atom{wdpt.NewAtom("phone", wdpt.V("id"), wdpt.V("ext"))}},
			{
				Atoms: []wdpt.Atom{wdpt.NewAtom("manager", wdpt.V("id"), wdpt.V("mid"))},
				Children: []wdpt.NodeSpec{
					{Atoms: []wdpt.Atom{wdpt.NewAtom("employee", wdpt.V("mid"), wdpt.V("mname"))}},
				},
			},
		},
	}, []string{"name", "room", "ext", "mname"})

	fmt.Println("query:")
	fmt.Println(wdpt.FormatWDPT(p))

	fmt.Println("p(D) — one row per engineer, as complete as the data allows:")
	for _, h := range p.Evaluate(d) {
		fmt.Println("  " + h.String())
	}
	fmt.Println()

	// A plain conjunctive query demanding every field drops the
	// incomplete employees entirely.
	all := wdpt.MustNew(wdpt.NodeSpec{
		Atoms: []wdpt.Atom{
			wdpt.NewAtom("employee", wdpt.V("id"), wdpt.V("name")),
			wdpt.NewAtom("dept", wdpt.V("id"), wdpt.C("engineering")),
			wdpt.NewAtom("office", wdpt.V("id"), wdpt.V("room")),
			wdpt.NewAtom("phone", wdpt.V("id"), wdpt.V("ext")),
			wdpt.NewAtom("manager", wdpt.V("id"), wdpt.V("mid")),
			wdpt.NewAtom("employee", wdpt.V("mid"), wdpt.V("mname")),
		},
	}, []string{"name", "room", "ext", "mname"})
	fmt.Printf("the corresponding CQ returns only %d row(s) — incomplete records are dropped\n\n",
		len(all.Evaluate(d)))

	// Decision problems, tractably (the tree is ℓ-TW(1) ∩ BI(1)):
	eng := wdpt.AutoEngine()
	fmt.Println("operational checks:")
	fmt.Printf("  is there any answer naming Ada?                 %v\n",
		p.PartialEval(d, wdpt.Mapping{"name": "Ada"}, eng))
	fmt.Printf("  is {name: Grace} exactly what we know of Grace? %v (her phone is on file)\n",
		p.EvalInterface(d, wdpt.Mapping{"name": "Grace"}, eng))
	fmt.Printf("  is {name: Grace, ext: 4711} maximal knowledge?  %v\n",
		p.MaxEval(d, wdpt.Mapping{"name": "Grace", "ext": "4711"}, eng))

	cl := p.Classify()
	fmt.Printf("\nstructure: ℓ-TW(%d) ∩ BI(%d), g-TW(%d) — every check above ran in polynomial time\n",
		cl.LocalTW, cl.InterfaceWidth, cl.GlobalTW)
}

func hrDatabase() *wdpt.Database {
	d := wdpt.NewDatabase()
	// Ada: complete record, manager with a name on file.
	d.Insert("employee", "e1", "Ada")
	d.Insert("dept", "e1", "engineering")
	d.Insert("office", "e1", "R101")
	d.Insert("phone", "e1", "1234")
	d.Insert("manager", "e1", "e3")
	// Grace: phone only.
	d.Insert("employee", "e2", "Grace")
	d.Insert("dept", "e2", "engineering")
	d.Insert("phone", "e2", "4711")
	// Edsger: office only, manager id recorded but the manager's own
	// record is missing (the nested optional stays unmatched).
	d.Insert("employee", "e4", "Edsger")
	d.Insert("dept", "e4", "engineering")
	d.Insert("office", "e4", "R202")
	d.Insert("manager", "e4", "e999")
	// Barbara: the manager, different department.
	d.Insert("employee", "e3", "Barbara")
	d.Insert("dept", "e3", "research")
	return d
}
