// Semantic web: RDF triple patterns over a triple store, parsed from the
// {AND, OPT} SPARQL-style syntax of Pérez et al. — including the
// well-designedness check rejecting a bad query, structural analysis, and
// union queries (Section 6).
package main

import (
	"fmt"

	"wdpt"
)

func main() {
	ts := wdpt.NewTripleStore("triple")
	addData(ts)

	// Example 1 as an RDF query: triple patterns are written (s, p, o).
	p, err := wdpt.ParseQuery(`
		((?x, recorded_by, ?y) AND (?x, published, "after_2010"))
		OPT (?x, nme_rating, ?z)
		OPT (?y, formed_in, ?zp)`)
	if err != nil {
		panic(err)
	}
	fmt.Println("RDF pattern tree:")
	fmt.Println(p)
	fmt.Println()
	fmt.Println("answers:")
	for _, h := range p.Evaluate(ts.Database) {
		fmt.Println("  " + h.String())
	}
	fmt.Println()

	// All lower bounds of the paper hold already for RDF WDPTs; the
	// classifiers apply unchanged (the schema is one ternary relation).
	cl := p.Classify()
	fmt.Printf("structure: %d nodes, ℓ-TW(%d) ∩ BI(%d), g-TW(%d)\n\n",
		cl.Nodes, cl.LocalTW, cl.InterfaceWidth, cl.GlobalTW)

	// A non-well-designed pattern is rejected with a diagnostic: ?z is
	// used in an optional part and outside it without being anchored.
	_, err = wdpt.ParseQuery(`((?x, a, ?y) OPT (?x, b, ?z)) AND (?z, c, ?w)`)
	fmt.Println("non-well-designed query rejected:")
	fmt.Printf("  %v\n\n", err)

	// Unions of WDPTs (Section 6): bands found via either recorded or
	// performed credits.
	u, err := wdpt.ParseUnionQuery(`
		SELECT ?y WHERE ((?x, recorded_by, ?y) AND (?x, published, "after_2010"))
		UNION
		SELECT ?y WHERE (?x, performed_by, ?y)`)
	if err != nil {
		panic(err)
	}
	fmt.Println("union query answers:")
	for _, h := range u.Evaluate(ts.Database) {
		fmt.Println("  " + h.String())
	}
	eng := wdpt.AutoEngine()
	fmt.Printf("⋃-PARTIAL-EVAL {y -> Caribou}: %v\n",
		u.PartialEval(ts.Database, wdpt.Mapping{"y": "Caribou"}, eng))
}

func addData(ts *wdpt.TripleStore) {
	ts.Add("Our_love", "recorded_by", "Caribou")
	ts.Add("Our_love", "published", "after_2010")
	ts.Add("Swim", "recorded_by", "Caribou")
	ts.Add("Swim", "published", "after_2010")
	ts.Add("Swim", "nme_rating", "2")
	ts.Add("Caribou", "formed_in", "2001")
	ts.Add("Live_at_Pompeii", "performed_by", "Pink_Floyd")
}
