package wdpt_test

import (
	"reflect"
	"testing"

	"wdpt"
	"wdpt/internal/gen"
)

// Counter-exactness tests on the Figure 1 fixture: the work counters are
// deterministic functions of query, database, and engine, so they are
// pinned exactly. A change in any number is a change in how much work an
// engine does — either an intended optimization (update the constant and
// say why) or a regression (investigate).

func snapshotDiff(t *testing.T, got, want map[string]int64) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("counter snapshot mismatch:\n got: %v\nwant: %v", got, want)
	}
}

// TestCounterExactnessNaive pins the naive engine's work on Figure 1: pure
// backtracking — homomorphism search only, no semijoins, no plans, no bags.
func TestCounterExactnessNaive(t *testing.T) {
	p := gen.MusicWDPT("x", "y", "z", "zp")
	d := gen.MusicDatabase()
	st := wdpt.NewStats()
	eng := wdpt.WithStats(wdpt.NaiveEngine(), st)
	if got := len(p.EvaluateWith(d, eng)); got != 2 {
		t.Fatalf("p(D) has %d answers, want 2", got)
	}
	snapshotDiff(t, st.Snapshot(), map[string]int64{
		"core.extension_units_tested": 5,
		"cq.homomorphisms_found":      3,
		"cq.tuples_scanned":           3,
		"cqeval.project_calls":        6,
		"db.dict_lookups":             6,
		"db.index_probes":             4,
		"db.index_probe_rows":         4,
	})
}

// TestCounterExactnessYannakakis pins the Yannakakis engine's work on
// Figure 1: every node's CQ is acyclic, so each gets a join tree (3 built,
// then plan-cache hits on re-planning), two semijoin passes over the
// two-atom root, and one join in the projecting pass.
func TestCounterExactnessYannakakis(t *testing.T) {
	p := gen.MusicWDPT("x", "y", "z", "zp")
	d := gen.MusicDatabase()
	st := wdpt.NewStats()
	eng := wdpt.WithStats(wdpt.YannakakisEngine(), st)
	if got := len(p.EvaluateWith(d, eng)); got != 2 {
		t.Fatalf("p(D) has %d answers, want 2", got)
	}
	snapshotDiff(t, st.Snapshot(), map[string]int64{
		"core.extension_units_tested": 5,
		"cq.homomorphisms_found":      5,
		"cq.tuples_scanned":           5,
		"cqeval.bag_rows":             5,
		"cqeval.bags_built":           7,
		"cqeval.join_trees_built":     3,
		"cqeval.joins":                1,
		"cqeval.plan_cache_hits":      3,
		"cqeval.plan_cache_misses":    3,
		"cqeval.project_calls":        6,
		"cqeval.semijoin_passes":      2,
		"db.dict_lookups":             6,
		"db.index_probes":             5,
		"db.index_probe_rows":         6,
	})
}

// TestCounterExactnessBands pins the band-enumeration EVAL baseline on
// Figure 1: deciding h ∈ p(D) for the rated answer needs one band, one
// extension-unit test, and one maximality check. The maximality check
// transfers its fixed bindings as pre-resolved IDs, so only the band
// search's own fixed bindings and constants cost dictionary probes.
func TestCounterExactnessBands(t *testing.T) {
	p := gen.MusicWDPT("x", "y", "z", "zp")
	d := gen.MusicDatabase()
	st := wdpt.NewStats()
	h := wdpt.Mapping{"x": "Swim", "y": "Caribou", "z": "2"}
	if !p.EvalObs(d, h, st) {
		t.Fatal("h should be an answer of Figure 1 over Example 2's database")
	}
	snapshotDiff(t, st.Snapshot(), map[string]int64{
		"core.bands_enumerated":       1,
		"core.extension_units_tested": 1,
		"core.maximality_checks":      1,
		"cq.homomorphisms_found":      3,
		"db.dict_lookups":             4,
	})
}

// TestAutoFallbackCounted pins the Auto engine's fallback accounting on a
// cyclic query (the triangle): each Satisfiable call records exactly one
// fallback to the decomposition engine, the first call plans from scratch
// (a negative join-tree probe plus the decomposition: two cache misses),
// and the second call reuses both cached plans.
func TestAutoFallbackCounted(t *testing.T) {
	d := wdpt.NewDatabase()
	d.Insert("E", "a", "b")
	d.Insert("E", "b", "c")
	d.Insert("E", "c", "a")
	atoms := []wdpt.Atom{
		wdpt.NewAtom("E", wdpt.V("x"), wdpt.V("y")),
		wdpt.NewAtom("E", wdpt.V("y"), wdpt.V("z")),
		wdpt.NewAtom("E", wdpt.V("z"), wdpt.V("x")),
	}
	st := wdpt.NewStats()
	eng := wdpt.WithStats(wdpt.AutoEngine(), st)
	if !eng.Satisfiable(atoms, d, nil) {
		t.Fatal("triangle query should be satisfiable on the triangle")
	}
	first := map[string]int64{
		"cq.homomorphisms_found":      3,
		"cq.tuples_scanned":           6,
		"cqeval.bag_rows":             15,
		"cqeval.bags_built":           3,
		"cqeval.decompositions_built": 1,
		"cqeval.domain_product_rows":  12,
		"cqeval.fallbacks":            1,
		"cqeval.plan_cache_misses":    2,
		"cqeval.satisfiable_calls":    1,
		"cqeval.semijoin_passes":      2,
		"db.index_probes":             9,
		"db.index_probe_rows":         9,
	}
	snapshotDiff(t, st.Snapshot(), first)
	if !eng.Satisfiable(atoms, d, nil) {
		t.Fatal("triangle query should still be satisfiable")
	}
	// Second call: work doubles except planning, which is served from the
	// cache (hits go up, built/misses stay flat).
	second := map[string]int64{
		"cq.homomorphisms_found":      6,
		"cq.tuples_scanned":           12,
		"cqeval.bag_rows":             30,
		"cqeval.bags_built":           6,
		"cqeval.decompositions_built": 1,
		"cqeval.domain_product_rows":  24,
		"cqeval.fallbacks":            2,
		"cqeval.plan_cache_hits":      2,
		"cqeval.plan_cache_misses":    2,
		"cqeval.satisfiable_calls":    2,
		"cqeval.semijoin_passes":      4,
		"db.index_probes":             18,
		"db.index_probe_rows":         18,
	}
	snapshotDiff(t, st.Snapshot(), second)
}

// TestExplainMatchesEngines checks the facade Explain surface: each engine
// reports its own strategy for the Figure 1 root CQ, and Explain records no
// counters.
func TestExplainMatchesEngines(t *testing.T) {
	p := gen.MusicWDPT("x", "y", "z", "zp")
	d := gen.MusicDatabase()
	want := map[string]string{
		"naive":         "backtracking",
		"yannakakis":    "join-tree",
		"decomposition": "tree-decomposition",
		"hypertree":     "ghd",
	}
	engines := map[string]wdpt.Engine{
		"naive":         wdpt.NaiveEngine(),
		"yannakakis":    wdpt.YannakakisEngine(),
		"decomposition": wdpt.DecompositionEngine(),
		"hypertree":     wdpt.HypertreeEngine(2),
	}
	for name, eng := range engines {
		st := wdpt.NewStats()
		eng = wdpt.WithStats(eng, st)
		plans := p.ExplainNodes(d, eng)
		if len(plans) != 3 {
			t.Fatalf("%s: %d plans, want 3 (one per node)", name, len(plans))
		}
		for _, plan := range plans {
			if plan.Strategy != want[name] {
				t.Errorf("%s: strategy %q, want %q", name, plan.Strategy, want[name])
			}
		}
		if plans[0].Label != "node 0" || plans[0].Atoms != 2 {
			t.Errorf("%s: root plan %+v, want label \"node 0\" with 2 atoms", name, plans[0])
		}
		if snap := st.Snapshot(); len(snap) != 0 {
			t.Errorf("%s: Explain recorded counters %v, want none", name, snap)
		}
	}
}
