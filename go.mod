module wdpt

go 1.22
