#!/usr/bin/env bash
# Repository gate: formatting, vet, wdptlint, build, tests under the race
# detector, a wdptd end-to-end selfcheck against the examples/data datasets
# (which also scrapes /metrics into metrics-snapshot.prom and asserts the
# exposition carries query-duration samples), a -short benchmark smoke,
# wdptbench metrics-artifact smokes at Parallelism=1 and Parallelism=NumCPU
# (writes BENCH_<date>.json and BENCH_<date>-pncpu.json, both uploaded by
# CI — same tables, elapsed_ns ratio is the parallel-scaling measurement),
# a benchdiff self-smoke (the artifact diffed against itself must report
# zero regressions), and a bounded parser fuzz smoke.
# CI (.github/workflows/ci.yml) runs exactly this script.
#
#   ./scripts/check.sh
#
# Environment:
#   WDPT_SKIP_FUZZ=1   skip the fuzz smoke (useful where the fuzz cache
#                      is unavailable or the time budget is tight)
#   FUZZTIME=10s       per-target fuzz budget
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
  echo "gofmt needed on:" >&2
  echo "$unformatted" >&2
  exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

# wdptlint runs against the committed ratcheting baseline
# (.wdptlint-baseline.json — currently empty, so any finding fails), writes
# the JSON findings artifact CI uploads, and is held to a wall-time budget;
# the stderr timing line is asserted as evidence the parallel loader ran.
echo "== wdptlint (baseline-gated, JSON artifact, timed)"
lint_start=$(date +%s)
lint_status=0
go run ./cmd/wdptlint -json -baseline .wdptlint-baseline.json ./... \
  >wdptlint-findings.json 2>wdptlint-timing.log || lint_status=$?
lint_elapsed=$(( $(date +%s) - lint_start ))
grep -E 'loaded [0-9]+ packages in .+ parallelism [0-9]+' wdptlint-timing.log || {
  echo "wdptlint timing line missing (parallel loader not proven):" >&2
  cat wdptlint-timing.log >&2
  exit 1
}
if [[ "$lint_status" -ne 0 ]]; then
  echo "wdptlint failed (exit $lint_status); findings:" >&2
  cat wdptlint-findings.json >&2
  cat wdptlint-timing.log >&2
  exit "$lint_status"
fi
lint_budget="${WDPT_LINT_BUDGET:-120}"
if (( lint_elapsed > lint_budget )); then
  echo "wdptlint took ${lint_elapsed}s, over the ${lint_budget}s budget" >&2
  exit 1
fi
echo "wdptlint clean in ${lint_elapsed}s (budget ${lint_budget}s)"

echo "== go test -race"
go test -race ./...

echo "== wdptd selfcheck smoke (examples/data, /metrics scrape)"
go run ./cmd/wdptd -selfcheck \
  -metrics-out metrics-snapshot.prom \
  -dataset music=examples/data/music.txt \
  -dataset chain=examples/data/chain.txt
if [[ ! -s metrics-snapshot.prom ]]; then
  echo "metrics-snapshot.prom missing or empty after selfcheck" >&2
  exit 1
fi
grep -q '^wdptd_query_duration_seconds_count' metrics-snapshot.prom || {
  echo "metrics-snapshot.prom lacks wdptd_query_duration_seconds samples" >&2
  exit 1
}

echo "== benchmark smoke (-race -short -benchtime=1x)"
go test -race -short -run='^$' -bench=. -benchtime=1x .

echo "== wdptbench metrics artifact (-short -json, parallelism 1)"
go run ./cmd/wdptbench -short -json -out . >/dev/null

echo "== wdptbench metrics artifact (-short -json, parallelism NumCPU)"
go run ./cmd/wdptbench -short -json -out . -parallelism 0 -suffix -pncpu >/dev/null

echo "== benchdiff self-smoke (artifact vs itself must pass)"
bench_artifact=$(ls -t BENCH_*.json | head -1)
./scripts/benchdiff.sh "$bench_artifact" "$bench_artifact"

if [[ "${WDPT_SKIP_FUZZ:-0}" != "1" ]]; then
  fuzztime="${FUZZTIME:-10s}"
  for target in FuzzParseQuery FuzzParseWDPT FuzzParseDatabase; do
    echo "== fuzz smoke: ${target} (${fuzztime})"
    go test -run="^${target}\$" -fuzz="^${target}\$" -fuzztime="${fuzztime}" ./internal/sparql
  done
else
  echo "== fuzz smoke skipped (WDPT_SKIP_FUZZ=1)"
fi

echo "OK"
