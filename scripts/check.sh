#!/usr/bin/env bash
# Repository gate: formatting, vet, wdptlint, build, tests under the race
# detector, a wdptd end-to-end selfcheck against the examples/data datasets
# (which also scrapes /metrics into metrics-snapshot.prom and asserts the
# exposition carries query-duration samples), a -short benchmark smoke,
# wdptbench metrics-artifact smokes at Parallelism=1 and Parallelism=NumCPU
# (writes BENCH_<date>.json and BENCH_<date>-pncpu.json, both uploaded by
# CI — same tables, elapsed_ns ratio is the parallel-scaling measurement),
# a benchdiff self-smoke (the artifact diffed against itself must report
# zero regressions), a storage-backend A/B gate (E1 and E14 run on the
# legacy string-map backend then on the columnar default; benchdiff fails
# the run if the columnar backend regresses any significant point), a
# snapshot persistence gate (a dataset converted to the binary snapshot
# format must answer byte-identically to its text source, and reloading
# the snapshot must beat reparsing the text by WDPT_SNAP_MIN_SPEEDUP),
# a cluster smoke (scripts/cluster_smoke.sh: 3 members + 1 coordinator,
# byte-parity with and without a killed member, a wdptstress -quick run
# whose STRESS_<date>-smoke.json artifact benchdiff must accept),
# and bounded parser + backend-equivalence + snapshot-loader fuzz smokes.
# CI (.github/workflows/ci.yml) runs exactly this script.
#
#   ./scripts/check.sh
#
# Environment:
#   WDPT_SKIP_FUZZ=1   skip the fuzz smoke (useful where the fuzz cache
#                      is unavailable or the time budget is tight)
#   FUZZTIME=10s       per-target fuzz budget
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
  echo "gofmt needed on:" >&2
  echo "$unformatted" >&2
  exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

# wdptlint runs against the committed ratcheting baseline
# (.wdptlint-baseline.json — currently empty, so any finding fails), writes
# the JSON findings artifact CI uploads, and is held to a wall-time budget;
# the stderr timing line is asserted as evidence the parallel loader ran.
echo "== wdptlint (baseline-gated, JSON artifact, timed)"
lint_start=$(date +%s)
lint_status=0
go run ./cmd/wdptlint -json -baseline .wdptlint-baseline.json ./... \
  >wdptlint-findings.json 2>wdptlint-timing.log || lint_status=$?
lint_elapsed=$(( $(date +%s) - lint_start ))
grep -E 'loaded [0-9]+ packages in .+ parallelism [0-9]+' wdptlint-timing.log || {
  echo "wdptlint timing line missing (parallel loader not proven):" >&2
  cat wdptlint-timing.log >&2
  exit 1
}
if [[ "$lint_status" -ne 0 ]]; then
  echo "wdptlint failed (exit $lint_status); findings:" >&2
  cat wdptlint-findings.json >&2
  cat wdptlint-timing.log >&2
  exit "$lint_status"
fi
lint_budget="${WDPT_LINT_BUDGET:-120}"
if (( lint_elapsed > lint_budget )); then
  echo "wdptlint took ${lint_elapsed}s, over the ${lint_budget}s budget" >&2
  exit 1
fi
echo "wdptlint clean in ${lint_elapsed}s (budget ${lint_budget}s)"

echo "== go test -race"
go test -race ./...

echo "== wdptd selfcheck smoke (examples/data, /metrics scrape)"
go run ./cmd/wdptd -selfcheck \
  -metrics-out metrics-snapshot.prom \
  -dataset music=examples/data/music.txt \
  -dataset chain=examples/data/chain.txt
if [[ ! -s metrics-snapshot.prom ]]; then
  echo "metrics-snapshot.prom missing or empty after selfcheck" >&2
  exit 1
fi
grep -q '^wdptd_query_duration_seconds_count' metrics-snapshot.prom || {
  echo "metrics-snapshot.prom lacks wdptd_query_duration_seconds samples" >&2
  exit 1
}

echo "== benchmark smoke (-race -short -benchtime=1x)"
go test -race -short -run='^$' -bench=. -benchtime=1x .

echo "== wdptbench metrics artifact (-short -json, parallelism 1)"
go run ./cmd/wdptbench -short -json -out . >/dev/null

echo "== wdptbench metrics artifact (-short -json, parallelism NumCPU)"
go run ./cmd/wdptbench -short -json -out . -parallelism 0 -suffix -pncpu >/dev/null

echo "== benchdiff self-smoke (artifact vs itself must pass)"
bench_artifact=$(ls -t BENCH_*.json | head -1)
./scripts/benchdiff.sh "$bench_artifact" "$bench_artifact"

# Storage-backend A/B gate: run the two latency-sensitive experiments (E1
# EVAL, E14 answer enumeration) on the legacy string-map backend (the
# "-mem" artifact, benchdiff's before) and on the default columnar backend
# (the "-col" artifact, after), then hold the columnar run to benchdiff's
# regression tolerance against the legacy one. Both artifacts are uploaded
# by CI. The single -store mem,col,... invocation interleaves the two
# backends per experiment inside one process — separate processes pick up
# different scheduler and frequency state, which on a shared runner swamps
# the backend effect — and min-merges the three alternating rounds, so a
# transient stall must cover every round of one backend before it can
# read as a backend effect (two rounds proved intermittently flaky on a
# single-CPU runner; three are cheap and stable). Full sizes (not -short)
# are used because the quick databases are too small for storage cost to
# register. -reps 5 widens each round's sample so a point's min draws on
# fifteen measurements per backend spread across the three rounds — a
# multi-second noise burst cannot dominate all of them. The gate compares
# min only: at low repetition counts p95 degenerates to the maximum,
# where a single GC cycle landing inside one rep reads as a regression.
# The pass condition is count-based: a busy single-CPU runner drifts
# between ±30% speed regimes lasting minutes, so even min-merged rounds
# show isolated single-point excursions past +35% on points that tight
# per-point ABBA interleaving proves at parity — but that noise never
# moves more than a couple of the 19 points at once, whereas a genuine
# backend regression (a probe path losing its index, a merge join gone
# quadratic) degrades most of them. The gate therefore fails only when
# more than WDPT_STORE_MAX_REGRESSIONS (default 4) points regress past
# benchdiff's default 20% tolerance. On quiet multi-core hardware expect
# zero regressed points — that is the acceptance-grade comparison.
echo "== storage backend A/B (E1,E14: mem before vs col after, benchdiff gate)"
go run ./cmd/wdptbench -json -out . -run E1,E14 -reps 5 -store mem,col,mem,col,mem,col -suffix -store >/dev/null
before_artifact=$(ls -t BENCH_*-store-mem.json | head -1)
after_artifact=$(ls -t BENCH_*-store-col.json | head -1)
store_diff=$(WDPT_BENCH_METRICS=min ./scripts/benchdiff.sh "$before_artifact" "$after_artifact" 2>&1) || true
echo "$store_diff"
store_regressions=$(grep -c 'REGRESSION' <<<"$store_diff" || true)
store_allowed="${WDPT_STORE_MAX_REGRESSIONS:-4}"
if (( store_regressions > store_allowed )); then
  echo "storage A/B: ${store_regressions} regressed point(s), over the ${store_allowed} allowed for runner noise" >&2
  exit 1
fi
echo "storage A/B: ${store_regressions} regressed point(s) within the ${store_allowed} allowed for runner noise"

# Snapshot persistence gate, two halves. Parity: convert the music fixture
# to a binary snapshot with wdpteval -snapshot-save, then run the same
# query -json against the text source and against the snapshot — the two
# documents must be byte-identical (the report carries no wall-clock
# fields, so cmp is exact, the same contract the backend A/B gate holds).
# Speed: wdptbench -snapshot generates a large synthetic database and
# fails unless reloading the snapshot beats reparsing the text by
# WDPT_SNAP_MIN_SPEEDUP (default 1.5x — deliberately far under the ~10x
# seen on quiet hardware, so runner noise cannot flake the gate while a
# genuine loss of the bulk-load fast path still fails it).
echo "== snapshot round-trip (wdpteval parity + wdptbench reload gate)"
snap_dir=$(mktemp -d)
trap 'rm -rf "$snap_dir"' EXIT
snap_query='(recorded_by(?x,?y) AND published(?x,"after_2010")) OPT rating(?x,?z)'
go run ./cmd/wdpteval -db examples/data/music.txt -snapshot-save "$snap_dir/music.snap"
go run ./cmd/wdpteval -db examples/data/music.txt -query "$snap_query" -json >"$snap_dir/text.json"
go run ./cmd/wdpteval -snapshot "$snap_dir/music.snap" -query "$snap_query" -json >"$snap_dir/snap.json"
cmp "$snap_dir/text.json" "$snap_dir/snap.json" || {
  echo "snapshot answers diverge from text answers (wdpteval -json not byte-identical)" >&2
  exit 1
}
go run ./cmd/wdptbench -snapshot "$snap_dir/bench" -quick

echo "== cluster smoke (3 members + coordinator, parity + wdptstress)"
./scripts/cluster_smoke.sh

if [[ "${WDPT_SKIP_FUZZ:-0}" != "1" ]]; then
  fuzztime="${FUZZTIME:-10s}"
  for target in FuzzParseQuery FuzzParseWDPT FuzzParseDatabase; do
    echo "== fuzz smoke: ${target} (${fuzztime})"
    go test -run="^${target}\$" -fuzz="^${target}\$" -fuzztime="${fuzztime}" ./internal/sparql
  done
  echo "== fuzz smoke: FuzzBackendEquivalence (${fuzztime})"
  go test -run='^FuzzBackendEquivalence$' -fuzz='^FuzzBackendEquivalence$' -fuzztime="${fuzztime}" .
  echo "== fuzz smoke: FuzzSnapshotLoader (${fuzztime})"
  go test -run='^FuzzSnapshotLoader$' -fuzz='^FuzzSnapshotLoader$' -fuzztime="${fuzztime}" ./internal/db/snapshot
else
  echo "== fuzz smoke skipped (WDPT_SKIP_FUZZ=1)"
fi

echo "OK"
