#!/usr/bin/env sh
# Compare two wdptbench artifacts and fail on >20% latency regressions.
# Usage: scripts/benchdiff.sh <old.json> <new.json>
# Tolerance override: WDPT_BENCH_TOLERANCE=0.35 scripts/benchdiff.sh ...
set -eu
cd "$(dirname "$0")/.."
exec go run ./cmd/benchdiff "$@"
