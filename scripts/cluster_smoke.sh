#!/usr/bin/env bash
# Cluster smoke: boot three member wdptd processes and one coordinator
# from the built binary, then hold the cluster to its headline contract
# (docs/CLUSTER.md) end to end:
#
#   1. /v1/cluster reports the coordinator role, every peer healthy, and a
#      full dataset -> owner ring assignment.
#   2. Byte-parity: a scatter-eligible UNION query and a proxied OPT query
#      answer byte-identically at the coordinator and at a member.
#   3. Failover: with one member killed, the coordinator still answers both
#      queries with the exact same bytes (failover walk + local replay),
#      and /v1/cluster flips the dead peer unhealthy.
#   4. wdptstress -quick drives the coordinator and writes a
#      STRESS_<date>-smoke.json artifact into the repo root (CI uploads
#      it); benchdiff diffs the artifact against itself as a schema smoke
#      (zero regressions by construction).
#
#   ./scripts/cluster_smoke.sh
#
# Nodes listen on 127.0.0.1:0 (kernel-assigned ports parsed from their
# logs), so the smoke cannot collide with anything already running.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build (wdptd, wdptstress)"
go build -o "$workdir/wdptd" ./cmd/wdptd
go build -o "$workdir/wdptstress" ./cmd/wdptstress

datasets=(-dataset music=examples/data/music.txt -dataset chain=examples/data/chain.txt)

# start_node <name> [extra flags...]: launch one wdptd on an ephemeral
# port, logging to $workdir/<name>.log.
start_node() {
  local name=$1
  shift
  "$workdir/wdptd" -listen 127.0.0.1:0 -query-log off "${datasets[@]}" "$@" \
    >"$workdir/$name.log" 2>"$workdir/$name.err" &
  pids+=($!)
}

# node_url <name>: poll the node's log for its "serving ... on ADDR" line
# and print the base URL.
node_url() {
  local name=$1 addr=""
  for _ in $(seq 1 100); do
    addr=$(sed -n 's/^wdptd: serving .* on \([0-9.]*:[0-9]*\) .*$/\1/p' "$workdir/$name.log" | head -1)
    [[ -n "$addr" ]] && break
    sleep 0.1
  done
  if [[ -z "$addr" ]]; then
    echo "cluster smoke: $name never reported its listen address" >&2
    cat "$workdir/$name.log" "$workdir/$name.err" >&2
    exit 1
  fi
  echo "http://$addr"
}

echo "== boot 3 members + 1 coordinator (ephemeral ports)"
start_node m1
start_node m2
start_node m3
m1=$(node_url m1)
m2=$(node_url m2)
m3=$(node_url m3)
start_node coord -role coordinator -cluster-peers "$m1,$m2,$m3" -health-interval 200ms
coord=$(node_url coord)
echo "members: $m1 $m2 $m3"
echo "coordinator: $coord"

for url in "$m1" "$m2" "$m3" "$coord"; do
  for _ in $(seq 1 50); do
    curl -sf "$url/healthz" >/dev/null && break
    sleep 0.1
  done
  curl -sf "$url/healthz" >/dev/null || {
    echo "cluster smoke: $url/healthz never came up" >&2
    exit 1
  }
done

echo "== /v1/cluster status (role, peers healthy, ring assignment)"
status=$(curl -sf "$coord/v1/cluster")
echo "$status" | grep -q '"role": "coordinator"' || {
  echo "cluster smoke: /v1/cluster missing coordinator role:" >&2
  echo "$status" >&2
  exit 1
}
healthy_count=$(grep -c '"healthy": true' <<<"$status" || true)
if [[ "$healthy_count" -ne 3 ]]; then
  echo "cluster smoke: want 3 healthy peers, /v1/cluster says $healthy_count:" >&2
  echo "$status" >&2
  exit 1
fi
for ds in music chain; do
  grep -q "\"$ds\": \"http://" <<<"$status" || {
    echo "cluster smoke: dataset $ds has no ring owner in /v1/cluster" >&2
    echo "$status" >&2
    exit 1
  }
done

# Byte-parity probes: the scatter-eligible union and a proxied OPT query.
# Parallelism is pinned so member and coordinator report identical options.
union_req='{"dataset":"music","query":"SELECT ?x WHERE recorded_by(?x, ?y) UNION SELECT ?x WHERE rating(?x, ?z)","parallelism":1}'
opt_req='{"dataset":"music","query":"SELECT ?x ?y ?z WHERE (recorded_by(?x, ?y) OPT rating(?x, ?z))","parallelism":1}'

# parity <label> <request-json>: the coordinator's body must be
# byte-identical to a member's for the same request.
parity() {
  local label=$1 req=$2
  curl -sf "$m1/v1/query" -d "$req" >"$workdir/$label.member.json"
  curl -sf "$coord/v1/query" -d "$req" >"$workdir/$label.coord.json"
  cmp "$workdir/$label.member.json" "$workdir/$label.coord.json" || {
    echo "cluster smoke: $label body diverges between member and coordinator" >&2
    exit 1
  }
}

echo "== byte-parity (union scatter + proxied OPT vs a member)"
parity union "$union_req"
parity opt "$opt_req"

echo "== failover (kill m3, parity must hold, /v1/cluster must flip it)"
kill "${pids[2]}"
wait "${pids[2]}" 2>/dev/null || true
parity union-degraded "$union_req"
parity opt-degraded "$opt_req"
cmp "$workdir/union.coord.json" "$workdir/union-degraded.coord.json" || {
  echo "cluster smoke: union body changed after losing a member" >&2
  exit 1
}
flipped=0
for _ in $(seq 1 50); do
  if curl -sf "$coord/v1/cluster" | grep -q '"healthy": false'; then
    flipped=1
    break
  fi
  sleep 0.1
done
if [[ "$flipped" -ne 1 ]]; then
  echo "cluster smoke: dead peer never flipped unhealthy in /v1/cluster" >&2
  curl -sf "$coord/v1/cluster" >&2 || true
  exit 1
fi

echo "== wdptstress -quick against the coordinator (STRESS artifact)"
"$workdir/wdptstress" -endpoint "$coord" -qps 50,100 -duration 2s \
  -seed 7 -quick -suffix -smoke -out .
stress_artifact=$(ls -t STRESS_*-smoke.json | head -1)
grep -q '"target_qps"' "$stress_artifact" || {
  echo "cluster smoke: $stress_artifact lacks target_qps" >&2
  exit 1
}
grep -q '"p95_ns"' "$stress_artifact" || {
  echo "cluster smoke: $stress_artifact lacks timing points" >&2
  exit 1
}

echo "== benchdiff schema smoke ($stress_artifact vs itself)"
./scripts/benchdiff.sh "$stress_artifact" "$stress_artifact"

echo "cluster smoke OK ($stress_artifact)"
