package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterNamesComplete(t *testing.T) {
	seen := make(map[string]bool)
	for _, c := range Counters() {
		name := c.String()
		if name == "" || strings.HasPrefix(name, "obs.unknown_counter_") {
			t.Errorf("counter %d has no registered name", int(c))
		}
		if seen[name] {
			t.Errorf("duplicate counter name %q", name)
		}
		seen[name] = true
		if !strings.Contains(name, ".") {
			t.Errorf("counter name %q is not package-qualified", name)
		}
	}
	if Counter(-1).String() != "obs.unknown_counter_-1" {
		t.Errorf("out-of-range String() = %q", Counter(-1).String())
	}
}

func TestStatsBasics(t *testing.T) {
	s := NewStats()
	s.Inc(CtrSemijoinPasses)
	s.Add(CtrSemijoinPasses, 4)
	s.Add(CtrJoins, 0) // zero delta must not surface the counter
	if got := s.Get(CtrSemijoinPasses); got != 5 {
		t.Fatalf("Get = %d, want 5", got)
	}
	snap := s.Snapshot()
	if len(snap) != 1 || snap["cqeval.semijoin_passes"] != 5 {
		t.Fatalf("Snapshot = %v", snap)
	}
	s.Reset()
	if got := s.Get(CtrSemijoinPasses); got != 0 {
		t.Fatalf("after Reset, Get = %d", got)
	}
	if len(s.Snapshot()) != 0 {
		t.Fatalf("after Reset, Snapshot = %v", s.Snapshot())
	}
}

func TestNilStatsSafe(t *testing.T) {
	var s *Stats
	s.Inc(CtrJoins)
	s.Add(CtrJoins, 10)
	s.Reset()
	if got := s.Get(CtrJoins); got != 0 {
		t.Fatalf("nil Get = %d", got)
	}
	if snap := s.Snapshot(); len(snap) != 0 {
		t.Fatalf("nil Snapshot = %v", snap)
	}
	if s.WithTrace(&Collector{}) != nil {
		t.Fatal("nil WithTrace should return nil")
	}
	sp := s.StartSpan("x")
	sp.Child("y").End()
	sp.End() // must not panic
}

func TestStatsConcurrent(t *testing.T) {
	s := NewStats()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Inc(CtrTuplesScanned)
			}
		}()
	}
	wg.Wait()
	if got := s.Get(CtrTuplesScanned); got != 8000 {
		t.Fatalf("concurrent Inc total = %d, want 8000", got)
	}
}

func TestFormat(t *testing.T) {
	var nilStats *Stats
	if got := nilStats.Format(); got != "(no counters recorded)\n" {
		t.Fatalf("nil Format = %q", got)
	}
	s := NewStats()
	s.Add(CtrJoins, 2)
	s.Inc(CtrBagsBuilt)
	got := s.Format()
	lines := strings.Split(strings.TrimSuffix(got, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("Format lines = %v", lines)
	}
	// Name order: cqeval.bags_built < cqeval.joins.
	if !strings.HasPrefix(lines[0], "cqeval.bags_built") || !strings.HasPrefix(lines[1], "cqeval.joins") {
		t.Fatalf("Format order wrong:\n%s", got)
	}
}

func TestSpansCollected(t *testing.T) {
	col := &Collector{}
	s := NewStats().WithTrace(col)
	sp := s.StartSpan("outer")
	inner := sp.Child("inner")
	inner.End()
	sp.End()
	spans := col.Spans()
	if len(spans) != 2 {
		t.Fatalf("collected %d spans, want 2", len(spans))
	}
	if spans[0].Name != "inner" || spans[0].Depth != 1 {
		t.Errorf("first span = %+v", spans[0])
	}
	if spans[1].Name != "outer" || spans[1].Depth != 0 {
		t.Errorf("second span = %+v", spans[1])
	}
}

func TestWriterSink(t *testing.T) {
	var b strings.Builder
	w := &WriterSink{W: &b}
	s := NewStats().WithTrace(w)
	sp := s.StartSpan("eval")
	sp.Child("semijoin").End()
	sp.End()
	out := b.String()
	if !strings.Contains(out, "  semijoin ") || !strings.Contains(out, "eval ") {
		t.Fatalf("WriterSink output = %q", out)
	}
}

func TestTimerMinOfN(t *testing.T) {
	calls := 0
	tm := Timer{Warmup: 2, Reps: 3}
	d := tm.Measure(func() {
		calls++
		if calls == 3 { // first measured rep: make it slow
			time.Sleep(5 * time.Millisecond)
		}
	})
	if calls != 5 {
		t.Fatalf("fn called %d times, want 5 (2 warm-up + 3 reps)", calls)
	}
	if d >= 5*time.Millisecond {
		t.Fatalf("min-of-N returned the slow rep: %v", d)
	}
	var zero Timer
	calls = 0
	zero.Measure(func() { calls++ })
	if calls != 1 {
		t.Fatalf("zero Timer called fn %d times, want 1", calls)
	}
}

func TestPlanFormat(t *testing.T) {
	p := Plan{
		Engine:   "yannakakis",
		Strategy: "join-tree",
		Width:    1,
		Atoms:    3,
		Bags: []PlanBag{
			{Vars: []string{"x", "y"}, Atoms: 2, Rows: 4, Parent: -1},
			{Vars: []string{"y", "z"}, Atoms: 1, Rows: 2, Parent: 0},
		},
	}
	got := p.Format()
	want := "yannakakis strategy=join-tree width=1 atoms=3\n" +
		"  bag 0 [x y] atoms=2 rows=4\n" +
		"    bag 1 [y z] atoms=1 rows=2\n"
	if got != want {
		t.Fatalf("Plan.Format:\n got %q\nwant %q", got, want)
	}
	fb := Plan{Engine: "yannakakis", Strategy: "tree-decomposition", Fallback: true, Width: 2, Atoms: 3, Label: "node 1"}
	if s := fb.Format(); !strings.Contains(s, "(fallback)") || !strings.HasPrefix(s, "node 1: yannakakis") {
		t.Fatalf("fallback Format = %q", s)
	}
}

// BenchmarkObsDisabled proves the disabled path costs within noise of a
// no-op baseline: a nil *Stats increment is one predictable branch, and a
// span on a nil/sink-less Stats never reads the clock.
func BenchmarkObsDisabled(b *testing.B) {
	b.Run("baseline", func(b *testing.B) {
		var x int64
		for i := 0; i < b.N; i++ {
			x++
		}
		_ = x
	})
	b.Run("nil-inc", func(b *testing.B) {
		var s *Stats
		for i := 0; i < b.N; i++ {
			s.Inc(CtrTuplesScanned)
		}
	})
	b.Run("nil-add", func(b *testing.B) {
		var s *Stats
		for i := 0; i < b.N; i++ {
			s.Add(CtrTuplesScanned, int64(i))
		}
	})
	b.Run("nil-span", func(b *testing.B) {
		var s *Stats
		for i := 0; i < b.N; i++ {
			s.StartSpan("x").End()
		}
	})
	b.Run("nil-observe", func(b *testing.B) {
		var h *Histogram
		for i := 0; i < b.N; i++ {
			h.Observe(time.Duration(i))
		}
	})
	b.Run("enabled-inc", func(b *testing.B) {
		s := NewStats()
		for i := 0; i < b.N; i++ {
			s.Inc(CtrTuplesScanned)
		}
	})
}
