package obs

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketing(t *testing.T) {
	bounds := []time.Duration{10 * time.Microsecond, 100 * time.Microsecond, time.Millisecond}
	h := NewHistogram(bounds)
	h.Observe(time.Microsecond)        // bucket 0
	h.Observe(10 * time.Microsecond)   // bucket 0 (le is inclusive)
	h.Observe(11 * time.Microsecond)   // bucket 1
	h.Observe(time.Millisecond)        // bucket 2
	h.Observe(5 * time.Millisecond)    // overflow
	h.Observe(1000 * time.Millisecond) // overflow
	snap := h.Snapshot()
	want := []int64{2, 1, 1, 2}
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Fatalf("bucket %d: got %d want %d (counts %v)", i, snap.Counts[i], w, snap.Counts)
		}
	}
	if snap.Count != 6 || h.Count() != 6 {
		t.Fatalf("Count = %d / %d, want 6", snap.Count, h.Count())
	}
	wantSum := time.Microsecond + 10*time.Microsecond + 11*time.Microsecond +
		time.Millisecond + 5*time.Millisecond + 1000*time.Millisecond
	if h.Sum() != wantSum {
		t.Fatalf("Sum = %v, want %v", h.Sum(), wantSum)
	}
}

func TestHistogramNilAndDefaults(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second) // must not panic
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram must read as zero")
	}
	if snap := h.Snapshot(); snap.Count != 0 || len(snap.Bounds) != 0 {
		t.Fatalf("nil snapshot = %+v", snap)
	}
	// Empty and unsorted bounds fall back to the default buckets.
	for _, bad := range [][]time.Duration{nil, {time.Second, time.Millisecond}} {
		got := NewHistogram(bad)
		if len(got.bounds) != len(LatencyBuckets()) {
			t.Fatalf("bad bounds %v: got %d buckets, want default %d", bad, len(got.bounds), len(LatencyBuckets()))
		}
	}
}

// TestHistogramConcurrency pins the lock-free contract: N concurrent
// writers, every observation lands in exactly one bucket, the total count
// is exact. Run under -race by scripts/check.sh and CI.
func TestHistogramConcurrency(t *testing.T) {
	const writers = 8
	const perWriter = 5000
	h := NewHistogram(nil)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWriter; i++ {
				h.Observe(time.Duration(rng.Int63n(int64(10 * time.Second))))
			}
		}(int64(w + 1))
	}
	wg.Wait()
	if got := h.Count(); got != writers*perWriter {
		t.Fatalf("Count = %d, want exactly %d", got, writers*perWriter)
	}
	snap := h.Snapshot()
	var sum int64
	for _, c := range snap.Counts {
		sum += c
	}
	if sum != writers*perWriter {
		t.Fatalf("bucket sum = %d, want %d", sum, writers*perWriter)
	}
}

// TestQuantileAccuracy bounds the bucket estimator against the exact
// sorted-sample reference: the estimate must lie within the bucket that
// holds the true rank-q observation.
func TestQuantileAccuracy(t *testing.T) {
	bounds := LatencyBuckets()
	h := NewHistogram(bounds)
	rng := rand.New(rand.NewSource(42))
	samples := make([]time.Duration, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform over the bucketed range so every decade is exercised.
		exp := 4 + rng.Float64()*6 // 1e4 .. 1e10 ns
		d := time.Duration(pow10(exp))
		samples = append(samples, d)
		h.Observe(d)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.95, 0.99} {
		exact := QuantileSorted(samples, q)
		est := h.Quantile(q)
		lo, hi := bucketRange(bounds, exact)
		if est < lo || est > hi {
			t.Fatalf("q=%v: estimate %v outside bucket [%v, %v] of exact %v", q, est, lo, hi, exact)
		}
	}
}

// pow10 computes 10^exp without importing math for one call site.
func pow10(exp float64) float64 {
	out := 1.0
	for exp >= 1 {
		out *= 10
		exp--
	}
	// Linear remainder is close enough for generating test samples.
	return out * (1 + exp*9)
}

// bucketRange returns the [lower, upper] bounds of the bucket holding d.
func bucketRange(bounds []time.Duration, d time.Duration) (time.Duration, time.Duration) {
	for i, b := range bounds {
		if d <= b {
			lo := time.Duration(0)
			if i > 0 {
				lo = bounds[i-1]
			}
			return lo, b
		}
	}
	return bounds[len(bounds)-1], 1 << 62
}

func TestQuantileEdgeCases(t *testing.T) {
	h := NewHistogram([]time.Duration{time.Millisecond, 2 * time.Millisecond})
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	h.Observe(10 * time.Millisecond) // overflow only
	if got := h.Quantile(0.5); got != 2*time.Millisecond {
		t.Fatalf("overflow quantile = %v, want last finite bound 2ms", got)
	}
}

func TestQuantileSorted(t *testing.T) {
	s := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		q    float64
		want time.Duration
	}{{0.5, 5}, {0.95, 10}, {0.99, 10}, {0.1, 1}, {1, 10}, {0, 1}}
	for _, c := range cases {
		if got := QuantileSorted(s, c.q); got != c.want {
			t.Fatalf("QuantileSorted(q=%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if QuantileSorted(nil, 0.5) != 0 {
		t.Fatal("empty sample must yield 0")
	}
}

func TestHistVec(t *testing.T) {
	v := NewHistVec(HistQueryDuration, nil, "dataset", "mode", "outcome")
	v.With("music", "exact", "ok").Observe(time.Millisecond)
	v.With("music", "exact", "ok").Observe(2 * time.Millisecond)
	v.With("chain", "maximal", "degraded").Observe(time.Second)
	if v.With("music", "exact", "ok").Count() != 2 {
		t.Fatal("series must accumulate across With calls")
	}
	if v.With("wrong-arity") != nil {
		t.Fatal("arity mismatch must return the nil (disabled) histogram")
	}
	series := v.Series()
	if len(series) != 2 {
		t.Fatalf("Series len = %d, want 2", len(series))
	}
	// Sorted by label values: chain < music.
	if series[0].Values[0] != "chain" || series[1].Values[0] != "music" {
		t.Fatalf("Series order: %v then %v", series[0].Values, series[1].Values)
	}
	var nilVec *HistVec
	if nilVec.With("a") != nil || nilVec.Series() != nil {
		t.Fatal("nil HistVec must be fully disabled")
	}
	if v.Name() != "wdptd_query_duration_seconds" {
		t.Fatalf("Name = %q", v.Name())
	}
	if got := v.LabelNames(); strings.Join(got, ",") != "dataset,mode,outcome" {
		t.Fatalf("LabelNames = %v", got)
	}
}

func TestHistVecConcurrency(t *testing.T) {
	v := NewHistVec(HistQueryDuration, nil, "mode")
	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			mode := fmt.Sprintf("mode%d", id%3)
			for i := 0; i < perWriter; i++ {
				v.With(mode).Observe(time.Duration(i))
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, s := range v.Series() {
		total += s.Snap.Count
	}
	if total != writers*perWriter {
		t.Fatalf("total = %d, want %d", total, writers*perWriter)
	}
}

func TestMetricNameRegistries(t *testing.T) {
	if HistQueryDuration.String() != "wdptd_query_duration_seconds" {
		t.Fatalf("HistQueryDuration = %q", HistQueryDuration)
	}
	if Hist(99).String() != "obs_unknown_histogram_99" || Gauge(-1).String() != "obs_unknown_gauge_-1" {
		t.Fatal("out-of-range metric ids must have fallback names")
	}
	seen := map[string]bool{}
	var all []string
	for h := Hist(0); h < numHists; h++ {
		all = append(all, h.String())
	}
	for g := Gauge(0); g < numGauges; g++ {
		all = append(all, g.String())
	}
	all = append(all, RuntimeMetricNames()...)
	for _, name := range all {
		if name == "" || seen[name] {
			t.Fatalf("metric name %q empty or duplicated", name)
		}
		seen[name] = true
	}
}
