package obs

import (
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Profiles configures the standard Go profiling artifacts of a CLI run —
// the targets of the -cpuprofile, -memprofile, and -trace flags on wdpteval
// and wdptbench. Empty fields disable the corresponding artifact.
type Profiles struct {
	// CPUFile receives a runtime/pprof CPU profile spanning Start..stop.
	CPUFile string
	// MemFile receives a heap profile written at stop (after a GC, so the
	// profile reflects live objects rather than garbage).
	MemFile string
	// TraceFile receives a runtime/trace execution trace.
	TraceFile string
}

// Start begins the configured profiles and returns a stop function that
// finalizes them: it stops the CPU profile and the execution trace, then
// writes the heap profile. The stop function must be called exactly once,
// after the measured work; it returns the first error encountered. If Start
// itself fails, any profiles already begun are stopped before it returns.
func (p Profiles) Start() (func() error, error) {
	var stops []func() error
	stopAll := func() error {
		var first error
		for i := len(stops) - 1; i >= 0; i-- {
			if err := stops[i](); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	if p.CPUFile != "" {
		f, err := os.Create(p.CPUFile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			_ = f.Close()
			return nil, err
		}
		stops = append(stops, func() error {
			pprof.StopCPUProfile()
			return f.Close()
		})
	}
	if p.TraceFile != "" {
		f, err := os.Create(p.TraceFile)
		if err != nil {
			_ = stopAll()
			return nil, err
		}
		if err := trace.Start(f); err != nil {
			_ = f.Close()
			_ = stopAll()
			return nil, err
		}
		stops = append(stops, func() error {
			trace.Stop()
			return f.Close()
		})
	}
	if p.MemFile != "" {
		mem := p.MemFile
		stops = append(stops, func() error {
			f, err := os.Create(mem)
			if err != nil {
				return err
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				_ = f.Close()
				return err
			}
			return f.Close()
		})
	}
	return stopAll, nil
}
