package obs

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type of the Prometheus text exposition
// format version 0.0.4 served at GET /metrics.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// runtimeMetricNames registers the Go runtime metrics sampled on scrape.
// wdptlint rule R14 holds these to the same snake-case / uniqueness /
// glossary discipline as the counter, histogram, and gauge registries;
// WriteRuntimeMetrics indexes into this literal so the exposition cannot
// drift from the registry.
var runtimeMetricNames = []string{
	"go_goroutines",
	"go_heap_alloc_bytes",
	"go_heap_objects",
	"go_gc_cycles_total",
	"go_gc_pause_seconds_total",
}

// RuntimeMetricNames returns the registered runtime metric names (copy).
func RuntimeMetricNames() []string {
	return append([]string(nil), runtimeMetricNames...)
}

// Label is one name="value" pair on an exposition sample.
type Label struct {
	// Name is the label name.
	Name string
	// Value is the label value (escaped on write).
	Value string
}

// Exposition accumulates metrics in Prometheus text exposition format
// 0.0.4. It is hand-rolled on the standard library: every emitter writes
// the # HELP / # TYPE header followed by its samples, and callers control
// ordering by calling the emitters in a fixed sequence (series within one
// family are sorted by the callers' snapshot functions), so the output is
// byte-deterministic for a given metric state.
type Exposition struct {
	b strings.Builder
}

// String returns the accumulated exposition text.
func (e *Exposition) String() string { return e.b.String() }

// header writes the # HELP and # TYPE lines for one metric family.
func (e *Exposition) header(name, help, typ string) {
	e.b.WriteString("# HELP ")
	e.b.WriteString(name)
	e.b.WriteByte(' ')
	e.b.WriteString(escapeHelp(help))
	e.b.WriteString("\n# TYPE ")
	e.b.WriteString(name)
	e.b.WriteByte(' ')
	e.b.WriteString(typ)
	e.b.WriteByte('\n')
}

// sample writes one "name{labels} value" line.
func (e *Exposition) sample(name string, labels []Label, value string) {
	e.b.WriteString(name)
	if len(labels) > 0 {
		e.b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				e.b.WriteByte(',')
			}
			e.b.WriteString(l.Name)
			e.b.WriteString(`="`)
			e.b.WriteString(escapeLabel(l.Value))
			e.b.WriteByte('"')
		}
		e.b.WriteByte('}')
	}
	e.b.WriteByte(' ')
	e.b.WriteString(value)
	e.b.WriteByte('\n')
}

// CounterInt emits one unlabeled counter family with an integer value.
func (e *Exposition) CounterInt(name, help string, value int64) {
	e.header(name, help, "counter")
	e.sample(name, nil, strconv.FormatInt(value, 10))
}

// GaugeInt emits one unlabeled gauge family with an integer value.
func (e *Exposition) GaugeInt(name, help string, value int64) {
	e.header(name, help, "gauge")
	e.sample(name, nil, strconv.FormatInt(value, 10))
}

// GaugeFloat emits one unlabeled gauge family with a float value.
func (e *Exposition) GaugeFloat(name, help string, value float64) {
	e.header(name, help, "gauge")
	e.sample(name, nil, formatFloat(value))
}

// Gauge emits one registered gauge with an integer value.
func (e *Exposition) Gauge(g Gauge, help string, value int64) {
	e.GaugeInt(g.String(), help, value)
}

// Histogram emits one registered histogram family: for every labeled
// series (already sorted by the Series snapshot), the cumulative le
// buckets including +Inf, then _sum (seconds) and _count. labelNames must
// align with each series' Values.
func (e *Exposition) Histogram(h Hist, help string, labelNames []string, series []LabeledHistogram) {
	name := h.String()
	e.header(name, help, "histogram")
	for _, s := range series {
		base := make([]Label, 0, len(labelNames)+1)
		for i, ln := range labelNames {
			v := ""
			if i < len(s.Values) {
				v = s.Values[i]
			}
			base = append(base, Label{Name: ln, Value: v})
		}
		var cum int64
		for i, bound := range s.Snap.Bounds {
			cum += s.Snap.Counts[i]
			labels := append(append([]Label(nil), base...), Label{Name: "le", Value: formatFloat(bound.Seconds())})
			e.sample(name+"_bucket", labels, strconv.FormatInt(cum, 10))
		}
		labels := append(append([]Label(nil), base...), Label{Name: "le", Value: "+Inf"})
		e.sample(name+"_bucket", labels, strconv.FormatInt(s.Snap.Count, 10))
		e.sample(name+"_sum", base, formatFloat(s.Snap.Sum.Seconds()))
		e.sample(name+"_count", base, strconv.FormatInt(s.Snap.Count, 10))
	}
}

// HistogramVec emits a labeled family from its live HistVec.
func (e *Exposition) HistogramVec(v *HistVec, help string) {
	if v == nil {
		return
	}
	e.Histogram(v.hist, help, v.labels, v.Series())
}

// CounterVec emits one registered labeled counter family as
// <name>_total{labels}, series sorted by label values (the Series snapshot
// order). A nil or empty family still emits its header, so the family set
// is stable across scrapes.
func (e *Exposition) CounterVec(v *CounterVec, help string) {
	if v == nil {
		return
	}
	name := v.Name() + "_total"
	e.header(name, help, "counter")
	for _, s := range v.Series() {
		labels := make([]Label, 0, len(v.labels))
		for i, ln := range v.labels {
			val := ""
			if i < len(s.Values) {
				val = s.Values[i]
			}
			labels = append(labels, Label{Name: ln, Value: val})
		}
		e.sample(name, labels, strconv.FormatInt(s.Count, 10))
	}
}

// WriteCounters emits every registered counter of st (zeros included, so
// the sample set is stable across scrapes) as
// wdpt_<name with dots replaced>_total, in registry declaration order.
func (e *Exposition) WriteCounters(st *Stats) {
	for _, c := range Counters() {
		name := "wdpt_" + strings.ReplaceAll(c.String(), ".", "_") + "_total"
		e.CounterInt(name, "Engine work counter "+c.String()+" (see docs/OBSERVABILITY.md).", st.Get(c))
	}
}

// WriteRuntimeMetrics samples the Go runtime at scrape time: goroutines,
// heap occupancy, and cumulative GC cycles and pause time.
func (e *Exposition) WriteRuntimeMetrics() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	e.GaugeInt(runtimeMetricNames[0], "Number of live goroutines.", int64(runtime.NumGoroutine()))
	e.GaugeInt(runtimeMetricNames[1], "Bytes of allocated heap objects.", int64(ms.HeapAlloc))
	e.GaugeInt(runtimeMetricNames[2], "Number of allocated heap objects.", int64(ms.HeapObjects))
	e.header(runtimeMetricNames[3], "Completed GC cycles.", "counter")
	e.sample(runtimeMetricNames[3], nil, strconv.FormatUint(uint64(ms.NumGC), 10))
	e.header(runtimeMetricNames[4], "Cumulative GC stop-the-world pause time in seconds.", "counter")
	e.sample(runtimeMetricNames[4], nil, formatFloat(float64(ms.PauseTotalNs)/1e9))
}

// formatFloat renders a float the shortest way that round-trips, matching
// the exposition-format convention.
func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline.
func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes a help string: backslash and newline.
func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// PromSample is one parsed exposition sample line.
type PromSample struct {
	// Name is the sample name (including _bucket/_sum/_count suffixes).
	Name string
	// Labels are the parsed label pairs.
	Labels map[string]string
	// Value is the sample value.
	Value float64
}

// PromFamily is one parsed metric family.
type PromFamily struct {
	// Name is the family name from the # TYPE line.
	Name string
	// Type is counter, gauge, histogram, summary, or untyped.
	Type string
	// Samples are the family's samples in exposition order.
	Samples []PromSample
}

// ParsePromText parses Prometheus text exposition format 0.0.4 into
// families keyed by family name — the minimal reader behind the wdptd
// selfcheck and the exposition tests. It rejects lines it cannot parse, so
// "parses cleanly" is a meaningful health assertion.
func ParsePromText(text string) (map[string]*PromFamily, error) {
	fams := make(map[string]*PromFamily)
	family := func(name string) *PromFamily {
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suf)
			if trimmed != name {
				if f, ok := fams[trimmed]; ok && f.Type == "histogram" {
					base = trimmed
				}
				break
			}
		}
		f := fams[base]
		if f == nil {
			f = &PromFamily{Name: base, Type: "untyped"}
			fams[base] = f
		}
		return f
	}
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				f := family(fields[2])
				f.Name = fields[2]
				f.Type = fields[3]
				fams[fields[2]] = f
			} else if len(fields) >= 3 && fields[1] == "HELP" {
				family(fields[2])
			} else {
				return nil, fmt.Errorf("obs: exposition line %d: unrecognized comment %q", i+1, line)
			}
			continue
		}
		s, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: exposition line %d: %w", i+1, err)
		}
		f := family(s.Name)
		f.Samples = append(f.Samples, s)
	}
	return fams, nil
}

// parsePromSample parses one "name{labels} value" line.
func parsePromSample(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd <= 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:nameEnd]
	rest := line[nameEnd:]
	if rest[0] == '{' {
		end := -1
		inQuote := false
		for j := 1; j < len(rest); j++ {
			switch {
			case inQuote && rest[j] == '\\':
				j++
			case rest[j] == '"':
				inQuote = !inQuote
			case !inQuote && rest[j] == '}':
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parsePromLabels(rest[1:end])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end+1:]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

// parsePromLabels parses `a="x",b="y"`.
func parsePromLabels(s string) (map[string]string, error) {
	out := map[string]string{}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 || eq+1 >= len(s) || s[eq+1] != '"' {
			return nil, fmt.Errorf("malformed labels %q", s)
		}
		name := strings.TrimSpace(s[:eq])
		var val strings.Builder
		j := eq + 2
		for ; j < len(s); j++ {
			if s[j] == '\\' && j+1 < len(s) {
				switch s[j+1] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(s[j+1])
				}
				j++
				continue
			}
			if s[j] == '"' {
				break
			}
			val.WriteByte(s[j])
		}
		if j >= len(s) {
			return nil, fmt.Errorf("unterminated label value in %q", s)
		}
		out[name] = val.String()
		s = strings.TrimPrefix(strings.TrimSpace(s[j+1:]), ",")
		s = strings.TrimSpace(s)
	}
	return out, nil
}

// CheckHistograms validates every histogram family in a parsed exposition:
// for each label series, the le bounds must be ascending, the bucket
// counts cumulative (monotone non-decreasing), and the +Inf bucket equal
// to the series' _count sample — the sanity contract the wdptd selfcheck
// asserts against a live /metrics.
func CheckHistograms(fams map[string]*PromFamily) error {
	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fams[name]
		if f.Type != "histogram" {
			continue
		}
		type seriesState struct {
			lastLE  float64
			lastCum float64
			inf     float64
			hasInf  bool
			count   float64
			hasCnt  bool
		}
		series := map[string]*seriesState{}
		var order []string
		get := func(labels map[string]string) *seriesState {
			keys := make([]string, 0, len(labels))
			for k := range labels {
				if k != "le" {
					keys = append(keys, k)
				}
			}
			sort.Strings(keys)
			var b strings.Builder
			for _, k := range keys {
				b.WriteString(k)
				b.WriteByte('=')
				b.WriteString(labels[k])
				b.WriteByte(';')
			}
			key := b.String()
			st := series[key]
			if st == nil {
				st = &seriesState{lastLE: -1}
				series[key] = st
				order = append(order, key)
			}
			return st
		}
		for _, s := range f.Samples {
			st := get(s.Labels)
			switch {
			case s.Name == name+"_bucket":
				le := s.Labels["le"]
				if le == "+Inf" {
					st.inf, st.hasInf = s.Value, true
				} else {
					bound, err := strconv.ParseFloat(le, 64)
					if err != nil {
						return fmt.Errorf("obs: histogram %s: bad le %q: %w", name, le, err)
					}
					if bound <= st.lastLE {
						return fmt.Errorf("obs: histogram %s: le bounds not ascending (%g after %g)", name, bound, st.lastLE)
					}
					st.lastLE = bound
				}
				if s.Value < st.lastCum {
					return fmt.Errorf("obs: histogram %s: bucket counts not cumulative (%g after %g)", name, s.Value, st.lastCum)
				}
				st.lastCum = s.Value
			case s.Name == name+"_count":
				st.count, st.hasCnt = s.Value, true
			}
		}
		for _, key := range order {
			st := series[key]
			if st.hasInf && st.hasCnt && st.inf != st.count {
				return fmt.Errorf("obs: histogram %s{%s}: +Inf bucket %g != count %g", name, key, st.inf, st.count)
			}
		}
	}
	return nil
}
