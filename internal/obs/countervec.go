package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// CVec identifies one registered labeled counter family. Like counters and
// histograms, the numeric values are an internal detail; names (see String)
// are the stable identifiers used in the /metrics exposition and the
// glossary.
type CVec int

// The registered counter families. Every name listed here is documented in
// docs/OBSERVABILITY.md (enforced by wdptlint rule R14).
const (
	// CVecClientEndpointAttempts counts HTTP attempts issued by the wdptd
	// client, labeled by target endpoint — the per-peer view of
	// client.attempts that failover decisions read.
	CVecClientEndpointAttempts CVec = iota
	// CVecClientEndpointFailures counts attempts that ended in a transport
	// error or a retryable/5xx status, labeled by target endpoint.
	CVecClientEndpointFailures

	numCVecs // sentinel; keep last
)

// counterVecNames maps counter families to their stable names. wdptlint rule
// R14 checks that every name is snake-case, unique, and documented in
// docs/OBSERVABILITY.md.
var counterVecNames = [numCVecs]string{
	CVecClientEndpointAttempts: "wdptd_client_endpoint_attempts",
	CVecClientEndpointFailures: "wdptd_client_endpoint_failures",
}

// String returns the counter family's stable name.
func (c CVec) String() string {
	if c < 0 || c >= numCVecs {
		return fmt.Sprintf("obs_unknown_countervec_%d", int(c))
	}
	return counterVecNames[c]
}

// CounterVec is a labeled family of monotonic counters sharing one
// registered identity — the shape behind
// wdptd_client_endpoint_attempts{endpoint}. It follows the HistVec
// discipline: lookup takes a read lock, the counter cell is atomic, and a
// nil *CounterVec is the disabled state (every method is a single branch).
type CounterVec struct {
	cvec   CVec
	labels []string

	mu sync.RWMutex
	m  map[string]*atomic.Int64
}

// NewCounterVec builds a labeled counter family.
func NewCounterVec(c CVec, labelNames ...string) *CounterVec {
	return &CounterVec{
		cvec:   c,
		labels: append([]string(nil), labelNames...),
		m:      make(map[string]*atomic.Int64),
	}
}

// cell returns the counter cell for the given label values, creating it on
// first use. Returns nil on a nil receiver or a label-arity mismatch.
func (v *CounterVec) cell(values []string) *atomic.Int64 {
	if v == nil || len(values) != len(v.labels) {
		return nil
	}
	key := strings.Join(values, vecKeySep)
	v.mu.RLock()
	c := v.m[key]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.m[key]; c == nil {
		c = new(atomic.Int64)
		v.m[key] = c
	}
	return c
}

// Inc increments the series for the given label values by one. No-op on nil
// or a label-arity mismatch.
func (v *CounterVec) Inc(values ...string) {
	if c := v.cell(values); c != nil {
		c.Add(1)
	}
}

// Add increments the series for the given label values by n. No-op on nil,
// n == 0, or a label-arity mismatch.
func (v *CounterVec) Add(n int64, values ...string) {
	if n == 0 {
		return
	}
	if c := v.cell(values); c != nil {
		c.Add(n)
	}
}

// Get returns the current value of the series for the given label values;
// 0 on nil, an unseen series, or a label-arity mismatch.
func (v *CounterVec) Get(values ...string) int64 {
	if v == nil || len(values) != len(v.labels) {
		return 0
	}
	key := strings.Join(values, vecKeySep)
	v.mu.RLock()
	defer v.mu.RUnlock()
	if c := v.m[key]; c != nil {
		return c.Load()
	}
	return 0
}

// Name returns the family's registered metric name.
func (v *CounterVec) Name() string { return v.cvec.String() }

// LabelNames returns the family's label names in declaration order.
func (v *CounterVec) LabelNames() []string { return append([]string(nil), v.labels...) }

// LabeledCount is one series of a CounterVec: its label values (in
// LabelNames order) and the current count.
type LabeledCount struct {
	// Values are the label values, aligned with LabelNames.
	Values []string
	// Count is the series' current value.
	Count int64
}

// Series snapshots every series in the family, sorted by label values — the
// deterministic order the Prometheus exposition relies on. Empty on a nil
// receiver.
func (v *CounterVec) Series() []LabeledCount {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	keys := make([]string, 0, len(v.m))
	for k := range v.m {
		keys = append(keys, k)
	}
	cells := make(map[string]*atomic.Int64, len(v.m))
	for k, c := range v.m {
		cells[k] = c
	}
	v.mu.RUnlock()
	sort.Strings(keys)
	out := make([]LabeledCount, 0, len(keys))
	for _, k := range keys {
		values := strings.Split(k, vecKeySep)
		if len(v.labels) == 0 {
			values = nil
		}
		out = append(out, LabeledCount{Values: values, Count: cells[k].Load()})
	}
	return out
}
