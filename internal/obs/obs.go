// Package obs is the engine-level observability layer: atomic counters,
// span-style tracing, a benchmark timer, and the EXPLAIN plan value shared
// by every evaluation engine.
//
// The paper's complexity claims are *shape* claims — LOGCFL vs. Σ₂ᴾ shows
// up as how many homomorphisms, semijoins, and band enumerations an
// evaluation performs — so every evaluation layer (internal/cq,
// internal/cqeval, internal/core, internal/subsume, internal/approx,
// internal/uwdpt) reports its intermediate work through this package. The
// counters let any run be read as a work profile instead of an opaque
// wall-clock number; see docs/OBSERVABILITY.md for the full glossary.
//
// Design constraints:
//
//   - stdlib only, no globals writing to stdout: all sinks are injected, so
//     library packages stay clean under wdptlint R4;
//   - near-zero overhead when disabled: a nil *Stats is the disabled state,
//     every method is safe on the nil receiver, and the fast path is a
//     single predictable branch (verified by BenchmarkObsDisabled).
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Counter identifies one engine-level counter. The numeric values are an
// internal detail; names (see String) are the stable identifiers used in
// -stats output, BENCH_*.json artifacts, and the glossary.
type Counter int

// The registered counters. Every counter listed here is incremented by some
// evaluation path and documented in docs/OBSERVABILITY.md (enforced by
// wdptlint rule R6).
const (
	// CtrTuplesScanned counts database tuples inspected by the backtracking
	// homomorphism solver (internal/cq).
	CtrTuplesScanned Counter = iota
	// CtrHomomorphisms counts complete homomorphisms enumerated.
	CtrHomomorphisms
	// CtrSatisfiableCalls counts Engine.Satisfiable invocations.
	CtrSatisfiableCalls
	// CtrProjectCalls counts Engine.Project invocations.
	CtrProjectCalls
	// CtrSemijoinPasses counts semijoin operations over plan relations.
	CtrSemijoinPasses
	// CtrJoins counts natural joins in the projecting Yannakakis pass.
	CtrJoins
	// CtrJoinTreesBuilt counts GYO join trees computed (cache misses).
	CtrJoinTreesBuilt
	// CtrDecompositionsBuilt counts min-fill tree decompositions computed.
	CtrDecompositionsBuilt
	// CtrGHDsBuilt counts generalized hypertree decompositions computed.
	CtrGHDsBuilt
	// CtrBagsBuilt counts plan bag relations constructed.
	CtrBagsBuilt
	// CtrBagRows counts rows materialized into plan bag relations.
	CtrBagRows
	// CtrDomainProductRows counts rows produced by candidate-domain products
	// for unconstrained bag variables (decomposition engine).
	CtrDomainProductRows
	// CtrPlanCacheHits counts structural plans served from the engine's
	// plan cache.
	CtrPlanCacheHits
	// CtrPlanCacheMisses counts structural plans computed from scratch.
	CtrPlanCacheMisses
	// CtrPlanCacheEvictions counts structural plans evicted from the bounded
	// plan cache in LRU order when it reaches its size cap.
	CtrPlanCacheEvictions
	// CtrFallbacks counts engine fallback decisions (e.g. Yannakakis or the
	// GHD engine degrading to the tree-decomposition engine).
	CtrFallbacks
	// CtrBandsEnumerated counts subtrees visited by band enumeration
	// (the naive EVAL baseline and the PARTIAL-EVAL ablation).
	CtrBandsEnumerated
	// CtrExtensionUnits counts extension units tested for satisfiability.
	CtrExtensionUnits
	// CtrMaximalityChecks counts maximality checks of candidate
	// homomorphisms.
	CtrMaximalityChecks
	// CtrInterfaceMemoHits counts memoized interface-mapping lookups served
	// from cache in the Theorem 6 interface algorithm.
	CtrInterfaceMemoHits
	// CtrInterfaceMemoMisses counts interface-mapping subproblems solved.
	CtrInterfaceMemoMisses
	// CtrQuotientDBs counts candidate quotient databases enumerated by the
	// subsumption small-model search.
	CtrQuotientDBs
	// CtrInnerChecks counts inner PARTIAL-EVAL (or enumeration) subsumption
	// checks.
	CtrInnerChecks
	// CtrApproxCandidates counts approximation candidates generated.
	CtrApproxCandidates
	// CtrApproxVerified counts candidates verified by subsumption tests.
	CtrApproxVerified
	// CtrUnionMemberEvals counts per-member evaluations in union problems.
	CtrUnionMemberEvals
	// CtrUnionCQs counts CQs produced by the φ_cq union translation.
	CtrUnionCQs
	// CtrParFanouts counts parallel fan-outs dispatched by internal/par
	// (batches that actually ran on more than one goroutine).
	CtrParFanouts
	// CtrParTasks counts tasks executed through internal/par fan-outs.
	CtrParTasks
	// CtrParInline counts fan-out batches that ran inline on the calling
	// goroutine because no worker token was free (the pool was saturated).
	CtrParInline
	// CtrParMaxInFlight is a high-water mark: the largest number of
	// goroutines a single fan-out put to work at once.
	CtrParMaxInFlight
	// CtrGuardBudgetCharges counts intermediate tuples charged against an
	// active resource budget (internal/guard).
	CtrGuardBudgetCharges
	// CtrGuardBudgetTrips counts budget trips: attempts aborted by the
	// wall-clock, tuple, or answer budget.
	CtrGuardBudgetTrips
	// CtrGuardFallbackHops counts degradation steps taken by the fallback
	// ladder (exact → maximal → partial).
	CtrGuardFallbackHops
	// CtrGuardRecoveredPanics counts panics recovered into errors at the
	// Solve boundaries.
	CtrGuardRecoveredPanics
	// CtrGuardInjectedFaults counts injected faults surfaced as errors.
	CtrGuardInjectedFaults
	// CtrServerRequests counts query requests accepted by the wdptd server
	// (after admission control, before evaluation).
	CtrServerRequests
	// CtrServerCacheHits counts query responses served from the wdptd
	// result cache.
	CtrServerCacheHits
	// CtrServerCacheMisses counts query requests evaluated because no cached
	// response existed for (dataset version, query, mode, options).
	CtrServerCacheMisses
	// CtrServerCacheEvictions counts result-cache entries evicted in LRU
	// order when the cache reaches its size cap.
	CtrServerCacheEvictions
	// CtrServerAdmissionRejects counts requests rejected with 429 because
	// the admission queue was full.
	CtrServerAdmissionRejects
	// CtrServerWidthRejects counts requests rejected by the fast-path
	// structural check: the query's analyzed class exceeded the server's
	// width bound.
	CtrServerWidthRejects
	// CtrServerReloads counts dataset-registry hot reloads (SIGHUP or the
	// admin endpoint).
	CtrServerReloads
	// CtrServerSnapshotLoads counts datasets loaded from a binary snapshot
	// file instead of reparsing text (startup and hot reloads).
	CtrServerSnapshotLoads
	// CtrServerSnapshotWrites counts snapshot files durably written by the
	// server (POST /admin/snapshot).
	CtrServerSnapshotWrites
	// CtrServerSnapshotQuarantined counts corrupt snapshot files moved
	// aside (renamed to *.quarantined) after failing load validation; the
	// dataset then falls back to reparsing its text file.
	CtrServerSnapshotQuarantined
	// CtrClientAttempts counts HTTP attempts issued by the wdptd client,
	// including retries.
	CtrClientAttempts
	// CtrClientRetries counts client attempts that were retries of a
	// 429/503 response.
	CtrClientRetries
	// CtrClientRetryGiveups counts client requests that exhausted the retry
	// budget and returned the last throttled response.
	CtrClientRetryGiveups
	// CtrClientFailovers counts requests the multi-endpoint client moved to
	// the next endpoint after a transport error or 5xx from the current one.
	CtrClientFailovers

	// CtrClusterRouteProxied counts /v1/query requests the coordinator
	// proxied to the ring owner of the request's dataset.
	CtrClusterRouteProxied
	// CtrClusterRouteLocal counts /v1/query requests the coordinator served
	// from its local evaluator because no healthy peer could take them.
	CtrClusterRouteLocal
	// CtrClusterScatters counts union queries split across peers by the
	// coordinator's scatter-gather path.
	CtrClusterScatters
	// CtrClusterScatterFallbacks counts scatter-gather attempts abandoned in
	// favor of local single-node evaluation because a peer tripped, degraded,
	// or was unreachable mid-query.
	CtrClusterScatterFallbacks
	// CtrClusterFailovers counts proxied requests moved to the next distinct
	// ring owner after the primary owner failed.
	CtrClusterFailovers
	// CtrClusterHealthProbes counts peer health probes issued by the
	// coordinator's background checker.
	CtrClusterHealthProbes
	// CtrClusterHealthTransitions counts peer healthy⇄unhealthy state
	// transitions observed by probes or live request outcomes.
	CtrClusterHealthTransitions
	// CtrClusterPeerFailures counts peer exchanges (probes, proxied queries,
	// scatter legs) that ended in a transport error or 5xx.
	CtrClusterPeerFailures

	// CtrDictLookups counts string→term-ID dictionary probes performed at
	// query boundaries (compiling query constants and parameter bindings).
	CtrDictLookups
	// CtrDictMisses counts dictionary probes for constants absent from the
	// active domain; such constants provably match nothing.
	CtrDictMisses
	// CtrIndexProbes counts MatchingIDs index probes issued by the
	// homomorphism solver (binary searches on the columnar backend, hash
	// probes on the legacy one).
	CtrIndexProbes
	// CtrIndexProbeRows counts the total offsets returned by those probes.
	CtrIndexProbeRows
	// CtrMergeJoinPasses counts semijoin passes executed as sorted-run
	// merges over packed row keys.
	CtrMergeJoinPasses
	// CtrMergeJoinRows counts rows advanced over by those merge passes
	// (both sides combined).
	CtrMergeJoinRows

	numCounters // sentinel; keep last
)

// counterNames maps counters to their stable names. wdptlint rule R6 checks
// that every name listed here is documented in docs/OBSERVABILITY.md.
var counterNames = [numCounters]string{
	CtrTuplesScanned:       "cq.tuples_scanned",
	CtrHomomorphisms:       "cq.homomorphisms_found",
	CtrSatisfiableCalls:    "cqeval.satisfiable_calls",
	CtrProjectCalls:        "cqeval.project_calls",
	CtrSemijoinPasses:      "cqeval.semijoin_passes",
	CtrJoins:               "cqeval.joins",
	CtrJoinTreesBuilt:      "cqeval.join_trees_built",
	CtrDecompositionsBuilt: "cqeval.decompositions_built",
	CtrGHDsBuilt:           "cqeval.ghds_built",
	CtrBagsBuilt:           "cqeval.bags_built",
	CtrBagRows:             "cqeval.bag_rows",
	CtrDomainProductRows:   "cqeval.domain_product_rows",
	CtrPlanCacheHits:       "cqeval.plan_cache_hits",
	CtrPlanCacheMisses:     "cqeval.plan_cache_misses",
	CtrPlanCacheEvictions:  "cqeval.plan_cache_evictions",
	CtrFallbacks:           "cqeval.fallbacks",
	CtrBandsEnumerated:     "core.bands_enumerated",
	CtrExtensionUnits:      "core.extension_units_tested",
	CtrMaximalityChecks:    "core.maximality_checks",
	CtrInterfaceMemoHits:   "core.interface_memo_hits",
	CtrInterfaceMemoMisses: "core.interface_memo_misses",
	CtrQuotientDBs:         "subsume.quotient_databases",
	CtrInnerChecks:         "subsume.inner_checks",
	CtrApproxCandidates:    "approx.candidates_generated",
	CtrApproxVerified:      "approx.candidates_verified",
	CtrUnionMemberEvals:    "uwdpt.member_evals",
	CtrUnionCQs:            "uwdpt.translation_cqs",
	CtrParFanouts:          "par.fanouts",
	CtrParTasks:            "par.tasks",
	CtrParInline:           "par.inline_batches",
	CtrParMaxInFlight:      "par.max_in_flight",

	CtrGuardBudgetCharges:   "guard.budget_charges",
	CtrGuardBudgetTrips:     "guard.budget_trips",
	CtrGuardFallbackHops:    "guard.fallback_hops",
	CtrGuardRecoveredPanics: "guard.recovered_panics",
	CtrGuardInjectedFaults:  "guard.injected_faults",

	CtrServerRequests:            "server.requests",
	CtrServerCacheHits:           "server.cache_hits",
	CtrServerCacheMisses:         "server.cache_misses",
	CtrServerCacheEvictions:      "server.cache_evictions",
	CtrServerAdmissionRejects:    "server.admission_rejects",
	CtrServerWidthRejects:        "server.width_rejects",
	CtrServerReloads:             "server.reloads",
	CtrServerSnapshotLoads:       "server.snapshot_loads",
	CtrServerSnapshotWrites:      "server.snapshot_writes",
	CtrServerSnapshotQuarantined: "server.snapshot_quarantined",
	CtrClientAttempts:            "client.attempts",
	CtrClientRetries:             "client.retries",
	CtrClientRetryGiveups:        "client.retry_giveups",
	CtrClientFailovers:           "client.failovers",

	CtrClusterRouteProxied:      "cluster.route_proxied",
	CtrClusterRouteLocal:        "cluster.route_local",
	CtrClusterScatters:          "cluster.scatters",
	CtrClusterScatterFallbacks:  "cluster.scatter_fallbacks",
	CtrClusterFailovers:         "cluster.failovers",
	CtrClusterHealthProbes:      "cluster.health_probes",
	CtrClusterHealthTransitions: "cluster.health_transitions",
	CtrClusterPeerFailures:      "cluster.peer_failures",

	CtrDictLookups:     "db.dict_lookups",
	CtrDictMisses:      "db.dict_misses",
	CtrIndexProbes:     "db.index_probes",
	CtrIndexProbeRows:  "db.index_probe_rows",
	CtrMergeJoinPasses: "db.merge_join_passes",
	CtrMergeJoinRows:   "db.merge_join_rows",
}

// String returns the counter's stable name.
func (c Counter) String() string {
	if c < 0 || c >= numCounters {
		return fmt.Sprintf("obs.unknown_counter_%d", int(c))
	}
	return counterNames[c]
}

// Counters returns all registered counters in declaration order.
func Counters() []Counter {
	out := make([]Counter, numCounters)
	for i := range out {
		out[i] = Counter(i)
	}
	return out
}

// Stats is a set of engine-level counters plus an optional trace sink. All
// methods are safe for concurrent use and safe on the nil receiver: a nil
// *Stats is the disabled state, and every operation on it is a single
// branch. Evaluation layers receive a *Stats by injection (engine
// construction, Options fields, or *Obs function variants) and never write
// to process streams themselves.
type Stats struct {
	counts [numCounters]atomic.Int64
	sink   TraceSink
}

// NewStats returns an empty, enabled counter set.
func NewStats() *Stats { return &Stats{} }

// Inc increments the counter by one. No-op on nil.
func (s *Stats) Inc(c Counter) {
	if s == nil {
		return
	}
	s.counts[c].Add(1)
}

// Add increments the counter by n. No-op on nil.
func (s *Stats) Add(c Counter, n int64) {
	if s == nil || n == 0 {
		return
	}
	s.counts[c].Add(n)
}

// Max raises the counter to v if v exceeds its current value — the
// high-water-mark update used by gauges like par.max_in_flight. No-op on
// nil.
func (s *Stats) Max(c Counter, v int64) {
	if s == nil {
		return
	}
	for {
		cur := s.counts[c].Load()
		if v <= cur || s.counts[c].CompareAndSwap(cur, v) {
			return
		}
	}
}

// Get returns the current value of the counter; 0 on nil.
func (s *Stats) Get(c Counter) int64 {
	if s == nil {
		return 0
	}
	return s.counts[c].Load()
}

// Reset zeroes every counter. No-op on nil.
func (s *Stats) Reset() {
	if s == nil {
		return
	}
	for i := range s.counts {
		s.counts[i].Store(0)
	}
}

// Snapshot returns the nonzero counters by name. The map is a copy; nil
// Stats yields an empty map.
func (s *Stats) Snapshot() map[string]int64 {
	out := make(map[string]int64)
	if s == nil {
		return out
	}
	for i := range s.counts {
		if v := s.counts[i].Load(); v != 0 {
			out[Counter(i).String()] = v
		}
	}
	return out
}

// Format renders the nonzero counters as aligned "name  value" lines in
// name order — the human form behind wdpteval -stats.
func (s *Stats) Format() string {
	snap := s.Snapshot()
	if len(snap) == 0 {
		return "(no counters recorded)\n"
	}
	names := make([]string, 0, len(snap))
	width := 0
	for name := range snap {
		names = append(names, name)
		if len(name) > width {
			width = len(name)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%-*s  %d\n", width, name, snap[name])
	}
	return b.String()
}
