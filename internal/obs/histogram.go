package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Hist identifies one registered latency histogram. Like counters, the
// numeric values are an internal detail; names (see String) are the stable
// identifiers used in the /metrics exposition and the glossary.
type Hist int

// The registered histograms. Every name listed here is documented in
// docs/OBSERVABILITY.md (enforced by wdptlint rule R14).
const (
	// HistQueryDuration is the per-request wall time of /v1/query, labeled
	// by dataset, mode, and outcome (ok / degraded / each trip type).
	HistQueryDuration Hist = iota
	// HistAdmissionWait is the time a request spent queued in admission
	// control before its parallelism weight was granted.
	HistAdmissionWait
	// HistCacheLookup is the result-cache lookup latency (hits and misses).
	HistCacheLookup
	// HistClusterPeerLatency is the coordinator-observed wall time of one
	// peer exchange (health probe, proxied query, or scatter leg), labeled
	// by peer endpoint and outcome.
	HistClusterPeerLatency

	numHists // sentinel; keep last
)

// histNames maps histograms to their stable names. wdptlint rule R14 checks
// that every name is snake-case, unique, and documented in
// docs/OBSERVABILITY.md.
var histNames = [numHists]string{
	HistQueryDuration:      "wdptd_query_duration_seconds",
	HistAdmissionWait:      "wdptd_admission_wait_seconds",
	HistCacheLookup:        "wdptd_cache_lookup_seconds",
	HistClusterPeerLatency: "wdptd_cluster_peer_latency_seconds",
}

// String returns the histogram's stable name.
func (h Hist) String() string {
	if h < 0 || h >= numHists {
		return fmt.Sprintf("obs_unknown_histogram_%d", int(h))
	}
	return histNames[h]
}

// Gauge identifies one registered gauge: a point-in-time level sampled on
// scrape rather than a monotonic counter.
type Gauge int

// The registered gauges. Every name listed here is documented in
// docs/OBSERVABILITY.md (enforced by wdptlint rule R14).
const (
	// GaugeInFlight is the admission weight currently held by evaluating
	// queries.
	GaugeInFlight Gauge = iota
	// GaugeQueueDepth is the admission wait-queue depth.
	GaugeQueueDepth
	// GaugeCacheEntries is the result-cache occupancy in entries.
	GaugeCacheEntries

	numGauges // sentinel; keep last
)

// gaugeNames maps gauges to their stable names (wdptlint rule R14).
var gaugeNames = [numGauges]string{
	GaugeInFlight:     "wdptd_inflight_queries",
	GaugeQueueDepth:   "wdptd_admission_queue_depth",
	GaugeCacheEntries: "wdptd_result_cache_entries",
}

// String returns the gauge's stable name.
func (g Gauge) String() string {
	if g < 0 || g >= numGauges {
		return fmt.Sprintf("obs_unknown_gauge_%d", int(g))
	}
	return gaugeNames[g]
}

// LatencyBuckets returns the default log-spaced latency bucket boundaries:
// 24 upper bounds doubling from 10µs to ~84s. Doubling bounds keep the
// relative quantile-estimation error bounded by the bucket ratio (a factor
// of 2) across six decades of latency, which is the resolution the paper's
// tractable-vs-intractable gradient actually spans.
func LatencyBuckets() []time.Duration {
	out := make([]time.Duration, 24)
	d := 10 * time.Microsecond
	for i := range out {
		out[i] = d
		d *= 2
	}
	return out
}

// Histogram is a lock-free fixed-bucket latency histogram: log-spaced upper
// bounds fixed at construction, one atomic count per bucket (plus an
// overflow bucket), and an atomic sum of observed durations. Observe is the
// hot path and follows the same nil discipline as the counters: a nil
// *Histogram is the disabled state and Observe on it is a single branch
// (pinned by BenchmarkObsDisabled).
type Histogram struct {
	bounds []time.Duration
	counts []atomic.Int64 // len(bounds)+1; the last bucket is +Inf overflow
	sum    atomic.Int64   // total observed nanoseconds
}

// NewHistogram builds a histogram over the given ascending upper bounds
// (copied). Empty or unsorted bounds fall back to LatencyBuckets.
func NewHistogram(bounds []time.Duration) *Histogram {
	if len(bounds) == 0 || !sort.SliceIsSorted(bounds, func(i, j int) bool { return bounds[i] < bounds[j] }) {
		bounds = LatencyBuckets()
	}
	h := &Histogram{bounds: append([]time.Duration(nil), bounds...)}
	h.counts = make([]atomic.Int64, len(h.bounds)+1)
	return h
}

// Observe records one duration: a binary search over the fixed bounds and
// two atomic adds. No-op on nil.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if d <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.sum.Add(int64(d))
}

// Count returns the total number of observations; 0 on nil.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed durations; 0 on nil.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Quantile estimates the q-quantile (0 < q ≤ 1) from the bucket counts:
// nearest-rank bucket selection with linear interpolation inside the
// bucket. The estimate always lies within the bounds of the bucket holding
// the true rank-q observation, so the error is bounded by that bucket's
// width. Observations in the overflow bucket report the last finite bound.
// Returns 0 on nil or when nothing was observed.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.Count()
	if total == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(total))
	if float64(rank) < q*float64(total) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if cum+c < rank {
			cum += c
			continue
		}
		if i >= len(h.bounds) {
			// Overflow bucket: unbounded above, report the last finite bound.
			return h.bounds[len(h.bounds)-1]
		}
		lower := time.Duration(0)
		if i > 0 {
			lower = h.bounds[i-1]
		}
		upper := h.bounds[i]
		frac := float64(rank-cum) / float64(c)
		return lower + time.Duration(float64(upper-lower)*frac)
	}
	return h.bounds[len(h.bounds)-1]
}

// HistogramSnapshot is a point-in-time copy of a histogram's state.
type HistogramSnapshot struct {
	// Bounds are the finite upper bounds, ascending.
	Bounds []time.Duration
	// Counts are the per-bucket (non-cumulative) observation counts;
	// len(Counts) == len(Bounds)+1 and the last entry is the overflow
	// bucket.
	Counts []int64
	// Count is the total number of observations.
	Count int64
	// Sum is the sum of all observed durations.
	Sum time.Duration
}

// Snapshot copies the histogram's current state. A nil histogram yields a
// zero snapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	snap := HistogramSnapshot{
		Bounds: append([]time.Duration(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Sum:    time.Duration(h.sum.Load()),
	}
	for i := range h.counts {
		snap.Counts[i] = h.counts[i].Load()
		snap.Count += snap.Counts[i]
	}
	return snap
}

// HistVec is a labeled family of histograms sharing one registered identity
// and one set of bucket bounds — the shape behind
// wdptd_query_duration_seconds{dataset,mode,outcome}. Lookup takes a read
// lock; the returned *Histogram records lock-free. A nil *HistVec is the
// disabled state: With returns nil and the nil Histogram discipline takes
// over.
type HistVec struct {
	hist   Hist
	labels []string
	bounds []time.Duration

	mu sync.RWMutex
	m  map[string]*Histogram
}

// NewHistVec builds a labeled histogram family. Bounds follow the
// NewHistogram defaulting rule.
func NewHistVec(h Hist, bounds []time.Duration, labelNames ...string) *HistVec {
	return &HistVec{
		hist:   h,
		labels: append([]string(nil), labelNames...),
		bounds: bounds,
		m:      make(map[string]*Histogram),
	}
}

// vecKeySep joins label values into map keys; 0xff cannot appear in valid
// UTF-8 label values, so the join is unambiguous.
const vecKeySep = "\xff"

// With returns the histogram for the given label values, creating it on
// first use. Returns nil (the disabled histogram) on a nil receiver or a
// label-arity mismatch.
func (v *HistVec) With(values ...string) *Histogram {
	if v == nil || len(values) != len(v.labels) {
		return nil
	}
	key := strings.Join(values, vecKeySep)
	v.mu.RLock()
	h := v.m[key]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h = v.m[key]; h == nil {
		h = NewHistogram(v.bounds)
		v.m[key] = h
	}
	return h
}

// Name returns the family's registered metric name.
func (v *HistVec) Name() string { return v.hist.String() }

// LabelNames returns the family's label names in declaration order.
func (v *HistVec) LabelNames() []string { return append([]string(nil), v.labels...) }

// LabeledHistogram is one series of a HistVec: its label values (in
// LabelNames order) and the histogram snapshot.
type LabeledHistogram struct {
	// Values are the label values, aligned with LabelNames.
	Values []string
	// Snap is the series' histogram state.
	Snap HistogramSnapshot
}

// Series snapshots every series in the family, sorted by label values —
// the deterministic order the Prometheus exposition relies on. Empty on a
// nil receiver.
func (v *HistVec) Series() []LabeledHistogram {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	keys := make([]string, 0, len(v.m))
	for k := range v.m {
		keys = append(keys, k)
	}
	hists := make(map[string]*Histogram, len(v.m))
	for k, h := range v.m {
		hists[k] = h
	}
	v.mu.RUnlock()
	sort.Strings(keys)
	out := make([]LabeledHistogram, 0, len(keys))
	for _, k := range keys {
		values := strings.Split(k, vecKeySep)
		if len(v.labels) == 0 {
			values = nil
		}
		out = append(out, LabeledHistogram{Values: values, Snap: hists[k].Snapshot()})
	}
	return out
}

// QuantileSorted returns the exact nearest-rank q-quantile (0 < q ≤ 1) of
// an ascending-sorted sample — the reference estimator histogram accuracy
// is tested against, and the per-point p50/p95/p99 recorded in BENCH_*.json
// artifacts. Returns 0 on an empty sample.
func QuantileSorted(sorted []time.Duration, q float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q > 1 {
		q = 1
	}
	rank := int(q * float64(n))
	if float64(rank) < q*float64(n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}
