package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// TraceSink receives span events. Implementations must be safe for
// concurrent use. Sinks are injected — the library never writes trace
// output to process streams on its own.
type TraceSink interface {
	// SpanDone reports one finished span: its name, nesting depth at start,
	// and wall-clock duration.
	SpanDone(name string, depth int, d time.Duration)
}

// WithTrace attaches a trace sink to the Stats. It returns s so the call
// chains; on a nil receiver it is a no-op returning nil (tracing stays
// disabled along with the counters).
func (s *Stats) WithTrace(sink TraceSink) *Stats {
	if s == nil {
		return nil
	}
	s.sink = sink
	return s
}

// Span is an in-flight traced region. The zero Span is the disabled state:
// End on it is a single nil check.
type Span struct {
	s     *Stats
	name  string
	depth int
	start time.Time
}

// StartSpan opens a span named name. When s is nil or has no trace sink
// attached, the returned Span is inert and End is free — this is the
// fast path that keeps tracing near-zero-cost when disabled.
func (s *Stats) StartSpan(name string) Span {
	if s == nil || s.sink == nil {
		return Span{}
	}
	return Span{s: s, name: name, start: time.Now()}
}

// Child opens a nested span one level deeper than sp. Inert when sp is.
func (sp Span) Child(name string) Span {
	if sp.s == nil {
		return Span{}
	}
	return Span{s: sp.s, name: name, depth: sp.depth + 1, start: time.Now()}
}

// End closes the span and reports it to the sink. Safe on the zero Span.
func (sp Span) End() {
	if sp.s == nil {
		return
	}
	sp.s.sink.SpanDone(sp.name, sp.depth, time.Since(sp.start))
}

// SpanRecord is one finished span as retained by Collector.
type SpanRecord struct {
	Name     string        `json:"name"`
	Depth    int           `json:"depth"`
	Duration time.Duration `json:"duration_ns"`
}

// Collector is a TraceSink that retains finished spans in completion order
// for later inspection (tests, -json output). Safe for concurrent use.
type Collector struct {
	mu    sync.Mutex
	spans []SpanRecord
}

// SpanDone implements TraceSink.
func (c *Collector) SpanDone(name string, depth int, d time.Duration) {
	c.mu.Lock()
	c.spans = append(c.spans, SpanRecord{Name: name, Depth: depth, Duration: d})
	c.mu.Unlock()
}

// Spans returns a copy of the collected spans in completion order.
func (c *Collector) Spans() []SpanRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]SpanRecord, len(c.spans))
	copy(out, c.spans)
	return out
}

// SpanNode is one node of a reconstructed span tree — the JSON shape
// served under "trace" in /v1/query responses and wdpteval -json output.
type SpanNode struct {
	// Name is the span name.
	Name string `json:"name"`
	// DurationNS is the span's wall-clock duration in nanoseconds.
	DurationNS int64 `json:"duration_ns"`
	// Children are the nested spans, in completion order.
	Children []SpanNode `json:"children,omitempty"`
}

// BuildSpanTree reconstructs the span tree from Collector output. Spans
// arrive in completion order with the nesting depth they started at, so a
// span completing at depth d adopts every not-yet-adopted span at depth
// d+1 as its children. Spans whose parent never ended surface as extra
// roots rather than being dropped.
func BuildSpanTree(records []SpanRecord) []SpanNode {
	pending := map[int][]SpanNode{}
	maxDepth := 0
	for _, r := range records {
		if r.Depth > maxDepth {
			maxDepth = r.Depth
		}
		node := SpanNode{Name: r.Name, DurationNS: int64(r.Duration)}
		node.Children = pending[r.Depth+1]
		delete(pending, r.Depth+1)
		pending[r.Depth] = append(pending[r.Depth], node)
	}
	roots := pending[0]
	for d := 1; d <= maxDepth; d++ {
		roots = append(roots, pending[d]...)
	}
	return roots
}

// FormatSpanTree renders a span tree as indented text, one span per line
// with its duration — the human-readable form behind wdpteval -trace and
// the slow-query log.
func FormatSpanTree(nodes []SpanNode) string {
	var b strings.Builder
	var walk func(nodes []SpanNode, depth int)
	walk = func(nodes []SpanNode, depth int) {
		for _, n := range nodes {
			fmt.Fprintf(&b, "%*s%s %s\n", 2*depth, "", n.Name, time.Duration(n.DurationNS))
			walk(n.Children, depth+1)
		}
	}
	walk(nodes, 0)
	return b.String()
}

// WriterSink is a TraceSink that streams one indented line per finished
// span to an injected writer (the sink behind a future wdpteval -trace-log
// mode; CLIs pass their own stderr). Safe for concurrent use.
type WriterSink struct {
	mu sync.Mutex
	W  io.Writer
}

// SpanDone implements TraceSink.
func (w *WriterSink) SpanDone(name string, depth int, d time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	//lint:ignore R3 trace output is best-effort; a failed write must not abort evaluation
	fmt.Fprintf(w.W, "%*s%s %s\n", 2*depth, "", name, d)
}
