package obs

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestCounterVecBasics(t *testing.T) {
	v := NewCounterVec(CVecClientEndpointAttempts, "endpoint")
	if got := v.Name(); got != "wdptd_client_endpoint_attempts" {
		t.Fatalf("Name() = %q", got)
	}
	if got := v.LabelNames(); !reflect.DeepEqual(got, []string{"endpoint"}) {
		t.Fatalf("LabelNames() = %v", got)
	}
	v.Inc("b")
	v.Inc("a")
	v.Add(2, "b")
	v.Add(0, "zero") // n==0 must not create the series
	if got := v.Get("b"); got != 3 {
		t.Fatalf("Get(b) = %d, want 3", got)
	}
	if got := v.Get("missing"); got != 0 {
		t.Fatalf("Get(missing) = %d, want 0", got)
	}
	series := v.Series()
	want := []LabeledCount{
		{Values: []string{"a"}, Count: 1},
		{Values: []string{"b"}, Count: 3},
	}
	if !reflect.DeepEqual(series, want) {
		t.Fatalf("Series() = %+v, want %+v", series, want)
	}
}

func TestCounterVecNilAndArityMismatch(t *testing.T) {
	var v *CounterVec
	v.Inc("x")
	v.Add(5, "x")
	if got := v.Get("x"); got != 0 {
		t.Fatalf("nil Get = %d", got)
	}
	if s := v.Series(); s != nil {
		t.Fatalf("nil Series = %v", s)
	}

	two := NewCounterVec(CVecClientEndpointFailures, "endpoint", "kind")
	two.Inc("only-one") // arity mismatch: dropped
	if s := two.Series(); len(s) != 0 {
		t.Fatalf("arity-mismatched Inc created series: %v", s)
	}
}

func TestCounterVecConcurrent(t *testing.T) {
	v := NewCounterVec(CVecClientEndpointAttempts, "endpoint")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ep := fmt.Sprintf("ep%d", g%4)
			for i := 0; i < 1000; i++ {
				v.Inc(ep)
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for _, s := range v.Series() {
		total += s.Count
	}
	if total != 8000 {
		t.Fatalf("total = %d, want 8000", total)
	}
}

func TestCounterVecExposition(t *testing.T) {
	v := NewCounterVec(CVecClientEndpointAttempts, "endpoint")
	v.Add(4, "http://b:1")
	v.Inc("http://a:1")
	var e Exposition
	e.CounterVec(v, "Per-endpoint client attempts.")
	text := e.String()
	wantLines := []string{
		`wdptd_client_endpoint_attempts_total{endpoint="http://a:1"} 1`,
		`wdptd_client_endpoint_attempts_total{endpoint="http://b:1"} 4`,
	}
	idx := -1
	for _, line := range wantLines {
		j := strings.Index(text, line)
		if j < 0 {
			t.Fatalf("exposition missing %q:\n%s", line, text)
		}
		if j < idx {
			t.Fatalf("exposition series out of sorted order:\n%s", text)
		}
		idx = j
	}
	fams, err := ParsePromText(text)
	if err != nil {
		t.Fatalf("ParsePromText: %v", err)
	}
	fam := fams["wdptd_client_endpoint_attempts_total"]
	if fam == nil || fam.Type != "counter" || len(fam.Samples) != 2 {
		t.Fatalf("parsed family = %+v", fam)
	}
}
