package obs

import (
	"strings"
	"testing"
	"time"
)

// TestExpositionGolden pins the exposition bytes for a fixed metric state:
// deterministic label ordering, cumulative buckets, +Inf, _sum and _count.
func TestExpositionGolden(t *testing.T) {
	v := NewHistVec(HistCacheLookup, []time.Duration{time.Millisecond, 4 * time.Millisecond}, "outcome")
	v.With("hit").Observe(500 * time.Microsecond)
	v.With("hit").Observe(2 * time.Millisecond)
	v.With("hit").Observe(time.Second)
	v.With("miss").Observe(3 * time.Millisecond)

	var e Exposition
	e.Gauge(GaugeCacheEntries, "Result cache occupancy.", 7)
	e.HistogramVec(v, "Cache lookup latency.")

	want := strings.Join([]string{
		`# HELP wdptd_result_cache_entries Result cache occupancy.`,
		`# TYPE wdptd_result_cache_entries gauge`,
		`wdptd_result_cache_entries 7`,
		`# HELP wdptd_cache_lookup_seconds Cache lookup latency.`,
		`# TYPE wdptd_cache_lookup_seconds histogram`,
		`wdptd_cache_lookup_seconds_bucket{outcome="hit",le="0.001"} 1`,
		`wdptd_cache_lookup_seconds_bucket{outcome="hit",le="0.004"} 2`,
		`wdptd_cache_lookup_seconds_bucket{outcome="hit",le="+Inf"} 3`,
		`wdptd_cache_lookup_seconds_sum{outcome="hit"} 1.0025`,
		`wdptd_cache_lookup_seconds_count{outcome="hit"} 3`,
		`wdptd_cache_lookup_seconds_bucket{outcome="miss",le="0.001"} 0`,
		`wdptd_cache_lookup_seconds_bucket{outcome="miss",le="0.004"} 1`,
		`wdptd_cache_lookup_seconds_bucket{outcome="miss",le="+Inf"} 1`,
		`wdptd_cache_lookup_seconds_sum{outcome="miss"} 0.003`,
		`wdptd_cache_lookup_seconds_count{outcome="miss"} 1`,
	}, "\n") + "\n"
	if got := e.String(); got != want {
		t.Fatalf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestExpositionDeterministic proves two scrapes of the same state are
// byte-identical, including the full counter registry.
func TestExpositionDeterministic(t *testing.T) {
	st := NewStats()
	st.Add(CtrTuplesScanned, 41)
	scrape := func() string {
		var e Exposition
		e.WriteCounters(st)
		return e.String()
	}
	a, b := scrape(), scrape()
	if a != b {
		t.Fatal("two scrapes of identical state must be byte-identical")
	}
	if !strings.Contains(a, "wdpt_cq_tuples_scanned_total 41\n") {
		t.Fatalf("counter sample missing:\n%s", a)
	}
	// Zero-valued counters are still present so the sample set is stable.
	if !strings.Contains(a, "wdpt_server_reloads_total 0\n") {
		t.Fatalf("zero counter must still be exposed:\n%s", a)
	}
}

func TestExpositionEscaping(t *testing.T) {
	var e Exposition
	v := NewHistVec(HistQueryDuration, []time.Duration{time.Second}, "dataset")
	v.With("we\"ird\\ds\n").Observe(time.Millisecond)
	e.HistogramVec(v, "x")
	out := e.String()
	if !strings.Contains(out, `dataset="we\"ird\\ds\n"`) {
		t.Fatalf("label escaping wrong:\n%s", out)
	}
	fams, err := ParsePromText(out)
	if err != nil {
		t.Fatalf("parse escaped exposition: %v", err)
	}
	f := fams["wdptd_query_duration_seconds"]
	if f == nil || len(f.Samples) == 0 {
		t.Fatal("family missing after round-trip")
	}
	if got := f.Samples[0].Labels["dataset"]; got != "we\"ird\\ds\n" {
		t.Fatalf("label round-trip = %q", got)
	}
}

func TestParsePromTextRoundTrip(t *testing.T) {
	st := NewStats()
	st.Add(CtrTuplesScanned, 3)
	v := NewHistVec(HistQueryDuration, nil, "dataset", "mode", "outcome")
	v.With("music", "exact", "ok").Observe(3 * time.Millisecond)
	var e Exposition
	e.WriteCounters(st)
	e.Gauge(GaugeInFlight, "g", 2)
	e.HistogramVec(v, "h")
	e.WriteRuntimeMetrics()

	fams, err := ParsePromText(e.String())
	if err != nil {
		t.Fatalf("ParsePromText: %v", err)
	}
	if f := fams["wdpt_cq_tuples_scanned_total"]; f == nil || f.Type != "counter" || f.Samples[0].Value != 3 {
		t.Fatalf("counter family = %+v", f)
	}
	if f := fams["wdptd_inflight_queries"]; f == nil || f.Type != "gauge" || f.Samples[0].Value != 2 {
		t.Fatalf("gauge family = %+v", f)
	}
	h := fams["wdptd_query_duration_seconds"]
	if h == nil || h.Type != "histogram" {
		t.Fatalf("histogram family = %+v", h)
	}
	for _, name := range RuntimeMetricNames() {
		if fams[name] == nil {
			t.Fatalf("runtime metric %s missing", name)
		}
	}
	if err := CheckHistograms(fams); err != nil {
		t.Fatalf("CheckHistograms on valid exposition: %v", err)
	}
}

func TestCheckHistogramsRejectsBroken(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"non-cumulative", `# TYPE h histogram
h_bucket{le="0.1"} 5
h_bucket{le="0.2"} 3
h_bucket{le="+Inf"} 5
h_count 5
`},
		{"inf-vs-count", `# TYPE h histogram
h_bucket{le="0.1"} 1
h_bucket{le="+Inf"} 2
h_count 3
`},
		{"unsorted-le", `# TYPE h histogram
h_bucket{le="0.2"} 1
h_bucket{le="0.1"} 1
h_bucket{le="+Inf"} 1
h_count 1
`},
	}
	for _, c := range cases {
		fams, err := ParsePromText(c.text)
		if err != nil {
			t.Fatalf("%s: parse: %v", c.name, err)
		}
		if err := CheckHistograms(fams); err == nil {
			t.Fatalf("%s: CheckHistograms accepted a broken histogram", c.name)
		}
	}
}

func TestParsePromTextRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"not a metric line at all !!!",
		`x{le="0.1" 3`,
		`x{a=b} 1`,
		"x notanumber",
	} {
		if _, err := ParsePromText(bad); err == nil {
			t.Fatalf("ParsePromText accepted %q", bad)
		}
	}
}

func TestBuildSpanTree(t *testing.T) {
	c := &Collector{}
	st := NewStats().WithTrace(c)
	root := st.StartSpan("query")
	parse := root.Child("parse")
	parse.End()
	solve := root.Child("solve")
	inner := solve.Child("join")
	inner.End()
	solve.End()
	root.End()

	tree := BuildSpanTree(c.Spans())
	if len(tree) != 1 || tree[0].Name != "query" {
		t.Fatalf("tree roots = %+v", tree)
	}
	kids := tree[0].Children
	if len(kids) != 2 || kids[0].Name != "parse" || kids[1].Name != "solve" {
		t.Fatalf("children = %+v", kids)
	}
	if len(kids[1].Children) != 1 || kids[1].Children[0].Name != "join" {
		t.Fatalf("grandchildren = %+v", kids[1].Children)
	}
	text := FormatSpanTree(tree)
	for _, want := range []string{"query ", "\n  parse ", "\n  solve ", "\n    join "} {
		if !strings.Contains(text, want) {
			t.Fatalf("FormatSpanTree missing %q:\n%s", want, text)
		}
	}
	// A parent that never ended leaves its children as extra roots.
	orphan := BuildSpanTree([]SpanRecord{{Name: "leaf", Depth: 2, Duration: 1}})
	if len(orphan) != 1 || orphan[0].Name != "leaf" {
		t.Fatalf("orphan roots = %+v", orphan)
	}
}

func TestMeasureAll(t *testing.T) {
	n := 0
	ds := Timer{Warmup: 2, Reps: 5}.MeasureAll(func() { n++ })
	if len(ds) != 5 || n != 7 {
		t.Fatalf("MeasureAll: %d durations, %d calls", len(ds), n)
	}
	for _, d := range ds {
		if d < 0 {
			t.Fatalf("negative duration %v", d)
		}
	}
	if got := (Timer{}).MeasureAll(func() {}); len(got) != 1 {
		t.Fatalf("zero Timer must measure once, got %d", len(got))
	}
}
