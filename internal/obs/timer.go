package obs

import "time"

// Timer measures a function's wall-clock time with warm-up iterations and
// min-of-N repetition, so harness experiment shapes are not jitter
// artifacts. The zero Timer means no warm-up and a single measured run.
type Timer struct {
	// Warmup is the number of unmeasured runs before timing starts. Warm-up
	// runs populate caches (plan caches, database indexes, allocator pools)
	// so the measured repetitions see steady state.
	Warmup int
	// Reps is the number of measured runs; the minimum is reported. Values
	// below 1 are treated as 1.
	Reps int
}

// Measure runs fn Warmup times unmeasured, then Reps times measured, and
// returns the minimum measured duration. Minimum-of-N is the standard
// robust estimator for microbenchmarks: external interference (scheduler
// preemption, GC pauses) only ever adds time, so the minimum is the best
// estimate of the true cost.
func (t Timer) Measure(fn func()) time.Duration {
	for i := 0; i < t.Warmup; i++ {
		fn()
	}
	reps := t.Reps
	if reps < 1 {
		reps = 1
	}
	best := time.Duration(-1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); best < 0 || d < best {
			best = d
		}
	}
	return best
}

// MeasureAll runs fn Warmup times unmeasured, then Reps times measured,
// and returns every measured duration in run order. Callers that want the
// robust point estimate take the minimum; callers recording latency
// distributions (wdptbench p50/p95/p99) feed the slice to QuantileSorted.
func (t Timer) MeasureAll(fn func()) []time.Duration {
	for i := 0; i < t.Warmup; i++ {
		fn()
	}
	reps := t.Reps
	if reps < 1 {
		reps = 1
	}
	out := make([]time.Duration, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		fn()
		out[i] = time.Since(start)
	}
	return out
}
