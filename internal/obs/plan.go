package obs

import (
	"fmt"
	"strings"
)

// Plan is the structured EXPLAIN value: the evaluation strategy an engine
// chose for one conjunctive query, as reported by Engine.Explain. It is a
// plain value — safe to marshal to JSON (wdpteval -explain -json) or render
// with Format.
type Plan struct {
	// Engine is the name of the engine that produced the plan.
	Engine string `json:"engine"`
	// Strategy identifies the plan shape: "backtracking", "join-tree",
	// "tree-decomposition", or "ghd".
	Strategy string `json:"strategy"`
	// Fallback is set when the named engine could not apply its preferred
	// strategy and degraded (e.g. Yannakakis on a cyclic query falling back
	// to a tree decomposition).
	Fallback bool `json:"fallback,omitempty"`
	// Width is the structural width of the plan: 1 for a join tree, the
	// decomposition width for tree decompositions, the GHD width for
	// hypertree plans, and 0 for backtracking (no decomposition).
	Width int `json:"width,omitempty"`
	// Atoms is the number of (instantiated, deduplicated) query atoms.
	Atoms int `json:"atoms"`
	// Bags lists the plan's bag relations in plan order; empty for
	// backtracking plans.
	Bags []PlanBag `json:"bags,omitempty"`
	// Label optionally names the query fragment the plan is for (e.g. the
	// pattern-tree node), set by callers that explain several fragments.
	Label string `json:"label,omitempty"`
}

// PlanBag is one node of a join-tree / decomposition plan.
type PlanBag struct {
	// Vars is the bag's variable set in sorted order.
	Vars []string `json:"vars"`
	// Atoms is the number of query atoms this bag covers.
	Atoms int `json:"atoms"`
	// Rows is the number of rows materialized for the bag's relation.
	Rows int `json:"rows"`
	// Parent is the index of the bag's parent in the plan, -1 at the root.
	Parent int `json:"parent"`
}

// Format renders the plan as an indented tree, one bag per line, children
// under their parents. The output is deterministic.
func (p Plan) Format() string {
	var b strings.Builder
	name := p.Engine
	if p.Label != "" {
		name = p.Label + ": " + name
	}
	fmt.Fprintf(&b, "%s strategy=%s", name, p.Strategy)
	if p.Fallback {
		b.WriteString(" (fallback)")
	}
	if p.Width > 0 {
		fmt.Fprintf(&b, " width=%d", p.Width)
	}
	fmt.Fprintf(&b, " atoms=%d\n", p.Atoms)
	children := make(map[int][]int)
	roots := []int{}
	for i, bag := range p.Bags {
		if bag.Parent < 0 {
			roots = append(roots, i)
		} else {
			children[bag.Parent] = append(children[bag.Parent], i)
		}
	}
	var walk func(i, depth int)
	walk = func(i, depth int) {
		bag := p.Bags[i]
		fmt.Fprintf(&b, "%*sbag %d [%s] atoms=%d rows=%d\n",
			2+2*depth, "", i, strings.Join(bag.Vars, " "), bag.Atoms, bag.Rows)
		for _, c := range children[i] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	return b.String()
}
