package hypergraph

// GYO-style acyclicity testing, join trees for acyclic hypergraphs, and
// β-acyclicity via nest-point elimination.

// JoinTree is a join tree of an α-acyclic hypergraph: one node per original
// hyperedge with parent pointers (-1 for the root), such that for every
// vertex the edges containing it form a connected subtree.
type JoinTree struct {
	// Parent[i] is the parent edge index of edge i, or -1 for the root.
	Parent []int
	// Order lists edge indices bottom-up: every edge appears before its
	// parent. Suitable as a semijoin processing order for Yannakakis.
	Order []int
}

// Root returns the root edge index, or -1 for an edgeless tree.
func (jt *JoinTree) Root() int {
	for i, p := range jt.Parent {
		if p == -1 {
			return i
		}
	}
	return -1
}

// IsAcyclic reports whether h is α-acyclic (equivalently, of generalized
// hypertreewidth 1) using the GYO reduction, and returns a join tree when it
// is. Duplicate and empty edges are handled.
func (h *Hypergraph) IsAcyclic() (bool, *JoinTree) {
	m := len(h.edges)
	if m == 0 {
		return true, &JoinTree{}
	}
	reduced := make([]Set, m)
	for i, e := range h.edges {
		reduced[i] = e.Clone()
	}
	live := make([]bool, m)
	for i := range live {
		live[i] = true
	}
	nLive := m
	parent := make([]int, m)
	for i := range parent {
		parent[i] = -1
	}
	var order []int

	for {
		changed := false
		// Ear removal: drop vertices that occur in at most one live edge.
		occ := make([]int, h.NumVertices())
		for i := range reduced {
			if !live[i] {
				continue
			}
			for _, v := range reduced[i].Elements() {
				occ[v]++
			}
		}
		for i := range reduced {
			if !live[i] {
				continue
			}
			for _, v := range reduced[i].Elements() {
				if occ[v] <= 1 {
					reduced[i].Remove(v)
					changed = true
				}
			}
		}
		// Subset removal: an edge contained in another live edge hangs off
		// it in the join tree.
		for i := range reduced {
			if !live[i] || nLive == 1 {
				continue
			}
			for j := range reduced {
				if i == j || !live[j] {
					continue
				}
				if reduced[i].SubsetOf(reduced[j]) {
					live[i] = false
					nLive--
					parent[i] = j
					order = append(order, i)
					changed = true
					break
				}
			}
		}
		if !changed {
			break
		}
	}
	if nLive != 1 {
		return false, nil
	}
	for i := range live {
		if live[i] {
			order = append(order, i)
		}
	}
	// Path-compress parents onto live ancestors: a removed edge may point to
	// an edge that was itself removed later; that is fine for a join tree as
	// long as ancestry is respected, which the removal order guarantees.
	return true, &JoinTree{Parent: parent, Order: order}
}

// IsBetaAcyclic reports whether every subhypergraph of h (every subset of
// its edges) is α-acyclic, using the polynomial nest-point elimination
// characterization: h is β-acyclic iff repeatedly deleting nest points
// (vertices whose incident edges form a chain under ⊆) and empty edges
// eliminates all vertices.
func (h *Hypergraph) IsBetaAcyclic() bool {
	edges := make([]Set, 0, len(h.edges))
	for _, e := range h.edges {
		edges = append(edges, e.Clone())
	}
	liveVerts := NewSet(h.NumVertices())
	for _, e := range edges {
		liveVerts.UnionWith(e)
	}
	for !liveVerts.Empty() {
		nest := -1
		for _, v := range liveVerts.Elements() {
			if isNestPoint(edges, v) {
				nest = v
				break
			}
		}
		if nest == -1 {
			return false
		}
		for i := range edges {
			edges[i].Remove(nest)
		}
		liveVerts.Remove(nest)
	}
	return true
}

// isNestPoint reports whether the edges containing v form a ⊆-chain.
func isNestPoint(edges []Set, v int) bool {
	var incident []Set
	for _, e := range edges {
		if e.Has(v) {
			incident = append(incident, e)
		}
	}
	for i := 0; i < len(incident); i++ {
		for j := i + 1; j < len(incident); j++ {
			if !incident[i].SubsetOf(incident[j]) && !incident[j].SubsetOf(incident[i]) {
				return false
			}
		}
	}
	return true
}
