package hypergraph

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("v%d", i)
	}
	return out
}

// pathGraph returns the hypergraph of a length-n path (binary edges).
func pathGraph(n int) *Hypergraph {
	h := New(names(n))
	for i := 0; i+1 < n; i++ {
		h.AddEdge([]string{fmt.Sprintf("v%d", i), fmt.Sprintf("v%d", i+1)})
	}
	return h
}

// cycleGraph returns the hypergraph of an n-cycle.
func cycleGraph(n int) *Hypergraph {
	h := pathGraph(n)
	h.AddEdge([]string{fmt.Sprintf("v%d", n-1), "v0"})
	return h
}

// cliqueGraph returns the hypergraph of K_n with binary edges.
func cliqueGraph(n int) *Hypergraph {
	h := New(names(n))
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			h.AddEdge([]string{fmt.Sprintf("v%d", i), fmt.Sprintf("v%d", j)})
		}
	}
	return h
}

func TestSetOps(t *testing.T) {
	s := NewSet(130)
	s.Add(0)
	s.Add(64)
	s.Add(129)
	if s.Len() != 3 || !s.Has(64) || s.Has(63) {
		t.Fatal("basic set ops wrong")
	}
	u := s.Clone()
	u.Remove(64)
	if u.Len() != 2 || s.Len() != 3 {
		t.Fatal("clone/remove wrong")
	}
	if !u.SubsetOf(s) || s.SubsetOf(u) {
		t.Fatal("subset wrong")
	}
	if got := s.Elements(); len(got) != 3 || got[0] != 0 || got[1] != 64 || got[2] != 129 {
		t.Fatalf("Elements = %v", got)
	}
	if s.First() != 0 {
		t.Fatal("First wrong")
	}
	inter := s.Intersect(u)
	if inter.Len() != 2 || inter.Has(64) {
		t.Fatal("intersect wrong")
	}
	diff := s.Subtract(u)
	if diff.Len() != 1 || !diff.Has(64) {
		t.Fatal("subtract wrong")
	}
	if !s.Intersects(u) {
		t.Fatal("intersects wrong")
	}
	if s.Key() == u.Key() {
		t.Fatal("keys should differ")
	}
	var empty Set = NewSet(130)
	if !empty.Empty() || empty.First() != -1 {
		t.Fatal("empty set wrong")
	}
}

func TestTreewidthPath(t *testing.T) {
	w, exact := pathGraph(8).Treewidth()
	if w != 1 || !exact {
		t.Fatalf("path treewidth = %d (exact=%v), want 1", w, exact)
	}
}

func TestTreewidthCycle(t *testing.T) {
	w, exact := cycleGraph(8).Treewidth()
	if w != 2 || !exact {
		t.Fatalf("cycle treewidth = %d (exact=%v), want 2", w, exact)
	}
}

func TestTreewidthClique(t *testing.T) {
	// Example 4 of the paper: the clique K_n has treewidth n-1.
	for n := 3; n <= 7; n++ {
		w, exact := cliqueGraph(n).Treewidth()
		if w != n-1 || !exact {
			t.Fatalf("K_%d treewidth = %d (exact=%v), want %d", n, w, exact, n-1)
		}
	}
}

func TestTreewidthGrid(t *testing.T) {
	// The m×m grid has treewidth m.
	m := 4
	h := New(func() []string {
		var out []string
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				out = append(out, fmt.Sprintf("g%d_%d", i, j))
			}
		}
		return out
	}())
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if i+1 < m {
				h.AddEdge([]string{fmt.Sprintf("g%d_%d", i, j), fmt.Sprintf("g%d_%d", i+1, j)})
			}
			if j+1 < m {
				h.AddEdge([]string{fmt.Sprintf("g%d_%d", i, j), fmt.Sprintf("g%d_%d", i, j+1)})
			}
		}
	}
	w, exact := h.Treewidth()
	if w != m || !exact {
		t.Fatalf("%dx%d grid treewidth = %d (exact=%v), want %d", m, m, w, exact, m)
	}
}

func TestTreewidthEmptyAndSingle(t *testing.T) {
	h := New(nil)
	if w, _ := h.Treewidth(); w != 0 {
		t.Fatalf("empty graph tw = %d", w)
	}
	h = New([]string{"x"})
	h.AddEdge([]string{"x"})
	if w, _ := h.Treewidth(); w != 0 {
		t.Fatalf("single vertex tw = %d", w)
	}
}

func TestTreewidthAtMost(t *testing.T) {
	h := cliqueGraph(5)
	if h.TreewidthAtMost(3) {
		t.Fatal("K_5 should not have tw <= 3")
	}
	if !h.TreewidthAtMost(4) {
		t.Fatal("K_5 has tw 4")
	}
}

func TestTreeDecompositionValid(t *testing.T) {
	for name, h := range map[string]*Hypergraph{
		"path":   pathGraph(6),
		"cycle":  cycleGraph(6),
		"clique": cliqueGraph(5),
	} {
		d := h.TreeDecomposition()
		if err := d.Validate(h); err != nil {
			t.Fatalf("%s: invalid decomposition: %v", name, err)
		}
	}
}

func TestTreeDecompositionWidthMatchesTreewidth(t *testing.T) {
	// On simple families min-fill is optimal.
	cases := []struct {
		h    *Hypergraph
		want int
	}{
		{pathGraph(7), 1},
		{cycleGraph(7), 2},
		{cliqueGraph(4), 3},
	}
	for i, c := range cases {
		if got := c.h.TreeDecomposition().Width(); got != c.want {
			t.Fatalf("case %d: decomposition width = %d, want %d", i, got, c.want)
		}
	}
}

func TestAcyclicPath(t *testing.T) {
	ok, jt := pathGraph(6).IsAcyclic()
	if !ok {
		t.Fatal("path should be acyclic")
	}
	validateJoinTree(t, pathGraph(6), jt)
}

func TestAcyclicCycleIsNot(t *testing.T) {
	if ok, _ := cycleGraph(5).IsAcyclic(); ok {
		t.Fatal("cycle should not be acyclic")
	}
}

func TestAcyclicTriangleWithBigEdge(t *testing.T) {
	// Example 5 of the paper: a clique plus one covering hyperedge is
	// acyclic (in AC = HW(1)) although its treewidth is unbounded.
	n := 5
	h := cliqueGraph(n)
	h.AddEdge(names(n))
	ok, jt := h.IsAcyclic()
	if !ok {
		t.Fatal("clique + covering edge should be acyclic")
	}
	validateJoinTree(t, h, jt)
	if w, _ := h.Treewidth(); w != n-1 {
		t.Fatalf("treewidth = %d, want %d", w, n-1)
	}
	if !h.GeneralizedHypertreewidthAtMost(1) {
		t.Fatal("should have ghw 1")
	}
}

func validateJoinTree(t *testing.T, h *Hypergraph, jt *JoinTree) {
	t.Helper()
	if jt == nil {
		t.Fatal("nil join tree")
	}
	m := h.NumEdges()
	if len(jt.Parent) != m || len(jt.Order) != m {
		t.Fatalf("join tree sizes wrong: %d parents, %d order, %d edges", len(jt.Parent), len(jt.Order), m)
	}
	roots := 0
	for _, p := range jt.Parent {
		if p == -1 {
			roots++
		}
	}
	if roots != 1 {
		t.Fatalf("join tree has %d roots, want 1", roots)
	}
	// Order must be bottom-up: each edge before its parent.
	pos := make(map[int]int, m)
	for i, e := range jt.Order {
		pos[e] = i
	}
	for e, p := range jt.Parent {
		if p != -1 && pos[e] > pos[p] {
			t.Fatalf("edge %d appears after its parent %d in order", e, p)
		}
	}
	// Connectivity: for every vertex, the edges containing it must form a
	// connected subtree of the join tree.
	for v := 0; v < h.NumVertices(); v++ {
		var occ []int
		for i, e := range h.Edges() {
			if e.Has(v) {
				occ = append(occ, i)
			}
		}
		if len(occ) <= 1 {
			continue
		}
		occSet := make(map[int]bool)
		for _, e := range occ {
			occSet[e] = true
		}
		// Walk each occurrence up to the root; the meeting structure is
		// connected iff exactly one occurrence's parent-chain leaves the
		// set without re-entering... simpler: check that the occurrence
		// set has exactly one member whose parent is outside the set AND
		// that for the others the parent is inside.
		outside := 0
		for _, e := range occ {
			if p := jt.Parent[e]; p == -1 || !occSet[p] {
				outside++
			}
		}
		if outside != 1 {
			t.Fatalf("vertex %d occurs in a disconnected part of the join tree", v)
		}
	}
}

func TestGHWCycle(t *testing.T) {
	h := cycleGraph(6)
	if h.GeneralizedHypertreewidthAtMost(1) {
		t.Fatal("cycle is not acyclic")
	}
	if !h.GeneralizedHypertreewidthAtMost(2) {
		t.Fatal("cycle has ghw 2")
	}
	if got := h.GeneralizedHypertreewidth(); got != 2 {
		t.Fatalf("ghw = %d, want 2", got)
	}
}

func TestGHWFewEdges(t *testing.T) {
	h := cliqueGraph(4) // 6 edges
	if !h.GeneralizedHypertreewidthAtMost(6) {
		t.Fatal("k >= #edges is always enough")
	}
	if got := h.GeneralizedHypertreewidth(); got < 2 || got > 3 {
		t.Fatalf("K4 ghw = %d, expected 2..3", got)
	}
}

func TestBetaAcyclic(t *testing.T) {
	// A path is beta-acyclic.
	if !pathGraph(5).IsBetaAcyclic() {
		t.Fatal("path should be beta-acyclic")
	}
	// Clique + covering edge is alpha- but NOT beta-acyclic for n >= 3:
	// the clique subhypergraph is cyclic.
	h := cliqueGraph(3)
	h.AddEdge(names(3))
	if h.IsBetaAcyclic() {
		t.Fatal("clique+cover should not be beta-acyclic")
	}
	ok, _ := h.IsAcyclic()
	if !ok {
		t.Fatal("clique+cover should be alpha-acyclic")
	}
	// BetaHypertreewidthAtMost(1) must agree with IsBetaAcyclic.
	if h.BetaHypertreewidthAtMost(1) {
		t.Fatal("beta-hw 1 should fail")
	}
	if !h.BetaHypertreewidthAtMost(2) {
		t.Fatal("beta-hw 2 should hold for triangle+cover")
	}
}

func TestBetaAcyclicChain(t *testing.T) {
	// Nested edges form chains: {a}, {a,b}, {a,b,c} is beta-acyclic.
	h := New([]string{"a", "b", "c"})
	h.AddEdge([]string{"a"})
	h.AddEdge([]string{"a", "b"})
	h.AddEdge([]string{"a", "b", "c"})
	if !h.IsBetaAcyclic() {
		t.Fatal("nested chain should be beta-acyclic")
	}
}

func TestComponents(t *testing.T) {
	h := New([]string{"a", "b", "c", "d", "e"})
	h.AddEdge([]string{"a", "b"})
	h.AddEdge([]string{"c", "d"})
	within := h.AllVertices()
	comps := h.Components(within)
	if len(comps) != 3 { // {a,b}, {c,d}, {e}
		t.Fatalf("got %d components, want 3", len(comps))
	}
	// Restricting to {a, c, d} splits {a} and {c,d}.
	w := NewSet(5)
	w.Add(0)
	w.Add(2)
	w.Add(3)
	comps = h.Components(w)
	if len(comps) != 2 {
		t.Fatalf("restricted components = %d, want 2", len(comps))
	}
}

// Property: treewidth of a random graph is between the MMD lower bound and
// the min-fill upper bound, and TreewidthAtMost agrees with Treewidth.
func TestTreewidthConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(5)
		h := New(names(n))
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(3) == 0 {
					h.AddEdge([]string{fmt.Sprintf("v%d", i), fmt.Sprintf("v%d", j)})
				}
			}
		}
		w, exact := h.Treewidth()
		if !exact {
			return false
		}
		if !h.TreewidthAtMost(w) {
			return false
		}
		if w > 0 && h.TreewidthAtMost(w-1) {
			return false
		}
		d := h.TreeDecomposition()
		if err := d.Validate(h); err != nil {
			return false
		}
		return d.Width() >= w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: alpha-acyclicity agrees with ghw <= 1 computed by the search.
func TestAcyclicAgreesWithGHW1(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		h := New(names(n))
		for e := 0; e < 2+rng.Intn(4); e++ {
			var vs []string
			for v := 0; v < n; v++ {
				if rng.Intn(2) == 0 {
					vs = append(vs, fmt.Sprintf("v%d", v))
				}
			}
			if len(vs) > 0 {
				h.AddEdge(vs)
			}
		}
		gyo, _ := h.IsAcyclic()
		// fWidthSearch path with coverableBy(bag,1):
		search := h.ghw1ViaSearch()
		return gyo == search
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGHDExtraction(t *testing.T) {
	// Cycle: ghw 2; the decomposition must validate.
	h := cycleGraph(6)
	if _, ok := h.GeneralizedHypertreeDecomposition(1); ok {
		t.Fatal("cycle has no width-1 GHD")
	}
	g, ok := h.GeneralizedHypertreeDecomposition(2)
	if !ok {
		t.Fatal("cycle has a width-2 GHD")
	}
	if g.Width() > 2 {
		t.Fatalf("width = %d", g.Width())
	}
	if err := g.Validate(h); err != nil {
		t.Fatal(err)
	}
}

func TestGHDAcyclicWidthOne(t *testing.T) {
	h := cliqueGraph(4)
	h.AddEdge(names(4)) // covering edge makes it acyclic
	g, ok := h.GeneralizedHypertreeDecomposition(1)
	if !ok {
		t.Fatal("acyclic hypergraph has a width-1 GHD")
	}
	if g.Width() != 1 {
		t.Fatalf("width = %d, want 1", g.Width())
	}
	if err := g.Validate(h); err != nil {
		t.Fatal(err)
	}
}

func TestGHDEmpty(t *testing.T) {
	h := New(nil)
	g, ok := h.GeneralizedHypertreeDecomposition(1)
	if !ok || len(g.Bags) != 1 {
		t.Fatal("edgeless hypergraph should have the trivial GHD")
	}
}

// Property: whenever the decision procedure says ghw <= k, a valid GHD of
// that width is extractable.
func TestGHDMatchesDecisionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		h := New(names(n))
		for e := 0; e < 2+rng.Intn(4); e++ {
			var vs []string
			for v := 0; v < n; v++ {
				if rng.Intn(2) == 0 {
					vs = append(vs, fmt.Sprintf("v%d", v))
				}
			}
			if len(vs) > 0 {
				h.AddEdge(vs)
			}
		}
		for k := 1; k <= 3; k++ {
			decision := h.GeneralizedHypertreewidthAtMost(k)
			g, ok := h.GeneralizedHypertreeDecomposition(k)
			if decision != ok {
				t.Logf("seed %d k %d: decision %v but extraction %v on %s", seed, k, decision, ok, h)
				return false
			}
			if ok {
				if err := g.Validate(h); err != nil {
					t.Logf("seed %d k %d: invalid GHD: %v", seed, k, err)
					return false
				}
				if g.Width() > k {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDecompositionValidateErrors(t *testing.T) {
	h := pathGraph(3)
	// A bag mentioning an unknown vertex.
	bad := &Decomposition{Bags: [][]string{{"nope"}}, Parent: []int{-1}}
	if err := bad.Validate(h); err == nil {
		t.Fatal("unknown vertex accepted")
	}
	// An edge not covered by any bag.
	bad = &Decomposition{Bags: [][]string{{"v0"}, {"v1"}}, Parent: []int{-1, 0}}
	if err := bad.Validate(h); err == nil {
		t.Fatal("uncovered edge accepted")
	}
	// Disconnected occurrences of a vertex.
	bad = &Decomposition{
		Bags:   [][]string{{"v0", "v1"}, {"v2"}, {"v1", "v2"}},
		Parent: []int{-1, 0, 1},
	}
	if err := bad.Validate(h); err == nil {
		t.Fatal("disconnected occurrence accepted")
	}
}

func TestGHDValidateCoverError(t *testing.T) {
	h := pathGraph(3)
	g := &GHD{
		Bags:   [][]string{{"v0", "v1"}, {"v1", "v2"}},
		Covers: [][]int{{0}, {0}}, // second cover wrong: edge 0 is {v0,v1}
		Parent: []int{-1, 0},
	}
	if err := g.Validate(h); err == nil {
		t.Fatal("wrong cover accepted")
	}
}

func TestGeneralizedHypertreewidthExactValue(t *testing.T) {
	// Three ternary edges pairwise overlapping in one vertex, forming a
	// cyclic structure: ghw 2.
	h := New([]string{"a", "b", "c", "x", "y", "z"})
	h.AddEdge([]string{"a", "b", "x"})
	h.AddEdge([]string{"b", "c", "y"})
	h.AddEdge([]string{"c", "a", "z"})
	if got := h.GeneralizedHypertreewidth(); got != 2 {
		t.Fatalf("ghw = %d, want 2", got)
	}
}

func TestBetaHWInvalidK(t *testing.T) {
	h := pathGraph(3)
	if h.BetaHypertreewidthAtMost(0) {
		t.Fatal("k=0 must be false")
	}
	if h.GeneralizedHypertreewidthAtMost(0) {
		t.Fatal("ghw k=0 must be false")
	}
	if _, ok := h.GeneralizedHypertreeDecomposition(0); ok {
		t.Fatal("GHD k=0 must fail")
	}
}
