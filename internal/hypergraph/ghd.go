package hypergraph

import "fmt"

// Extraction of generalized hypertree decompositions (GHDs): beyond the
// yes/no test of GeneralizedHypertreewidthAtMost, evaluation engines need
// the decomposition itself — a tree of bags, each covered by at most k
// hyperedges (Theorem 3 substrate).

// GHD is a generalized hypertree decomposition: a tree decomposition whose
// every bag carries a cover of at most k hyperedges.
type GHD struct {
	// Bags[i] lists the vertex names of bag i.
	Bags [][]string
	// Covers[i] lists indices of hyperedges whose union contains bag i.
	Covers [][]int
	// Parent[i] is the parent bag (-1 for the root).
	Parent []int
}

// Width returns the maximum cover size.
func (g *GHD) Width() int {
	w := 0
	for _, c := range g.Covers {
		if len(c) > w {
			w = len(c)
		}
	}
	return w
}

// GeneralizedHypertreeDecomposition computes a GHD of width at most k, or
// ok=false if ghw(h) > k. The search mirrors GeneralizedHypertreewidthAtMost
// but records a successful elimination ordering and rebuilds the bag tree
// from it (the same construction as TreeDecomposition).
func (h *Hypergraph) GeneralizedHypertreeDecomposition(k int) (*GHD, bool) {
	n := h.NumVertices()
	if k <= 0 {
		return nil, false
	}
	if len(h.edges) == 0 {
		return &GHD{Bags: [][]string{{}}, Covers: [][]int{{}}, Parent: []int{-1}}, true
	}
	adj := h.adjacency()
	covered := NewSet(n)
	for _, e := range h.edges {
		covered.UnionWith(e)
	}
	eliminated := h.AllVertices()
	eliminated.SubtractWith(covered)
	var isolated []int
	for _, v := range eliminated.Elements() {
		isolated = append(isolated, v)
	}
	memo := make(map[string]bool)
	var order []int
	if !orderedFWidthSearch(adj, eliminated, covered.Len(),
		func(bag Set) bool { return h.coverableBy(bag, k) }, memo, &order) {
		return nil, false
	}
	// Rebuild the fill process along the recorded order, materializing bags.
	adj = h.adjacency()
	elim := NewSet(n)
	for _, v := range isolated {
		elim.Add(v)
	}
	type bagInfo struct {
		vertex int
		bag    Set
	}
	infos := make([]bagInfo, 0, len(order))
	for _, v := range order {
		nb := adj[v].Subtract(elim)
		bag := nb.Clone()
		bag.Add(v)
		infos = append(infos, bagInfo{vertex: v, bag: bag})
		eliminate(adj, elim, v, nb)
	}
	pos := make(map[int]int, len(order))
	for i, v := range order {
		pos[v] = i
	}
	g := &GHD{
		Bags:   make([][]string, len(infos)),
		Covers: make([][]int, len(infos)),
		Parent: make([]int, len(infos)),
	}
	for i, info := range infos {
		g.Bags[i] = h.namesOf(info.bag)
		cover, ok := h.coverOf(info.bag, k)
		if !ok {
			// The search accepted this bag, so a cover must exist.
			//lint:ignore R2 unreachable invariant violation: acceptance implies a cover
			panic("hypergraph: accepted bag has no cover")
		}
		g.Covers[i] = cover
		parent := -1
		best := len(order) + 1
		for _, u := range info.bag.Elements() {
			if u == info.vertex {
				continue
			}
			if p := pos[u]; p < best {
				best = p
				parent = p
			}
		}
		g.Parent[i] = parent
	}
	root := -1
	for i := range g.Parent {
		if g.Parent[i] == -1 {
			if root == -1 {
				root = i
			} else {
				g.Parent[i] = root
			}
		}
	}
	return g, true
}

// coverOf returns edge indices covering vs with at most k edges.
func (h *Hypergraph) coverOf(vs Set, k int) ([]int, bool) {
	if vs.Empty() {
		return []int{}, true
	}
	if k == 0 {
		return nil, false
	}
	v := vs.First()
	for i, e := range h.edges {
		if !e.Has(v) {
			continue
		}
		rest, ok := h.coverOf(vs.Subtract(e), k-1)
		if ok {
			return append([]int{i}, rest...), true
		}
	}
	return nil, false
}

// orderedFWidthSearch is fWidthSearch additionally returning, through
// order, a successful elimination sequence.
func orderedFWidthSearch(adj []Set, eliminated Set, remaining int, allow func(Set) bool, memo map[string]bool, order *[]int) bool {
	if remaining == 0 {
		return true
	}
	key := eliminated.Key()
	if v, ok := memo[key]; ok && !v {
		return false
	}
	n := len(adj)
	try := func(v int) bool {
		nb := adj[v].Subtract(eliminated)
		bag := nb.Clone()
		bag.Add(v)
		if !allow(bag) {
			return false
		}
		added := eliminate(adj, eliminated, v, nb)
		*order = append(*order, v)
		if orderedFWidthSearch(adj, eliminated, remaining-1, allow, memo, order) {
			return true
		}
		*order = (*order)[:len(*order)-1]
		undo(adj, eliminated, v, added)
		return false
	}
	forced := -1
	for v := 0; v < n && forced < 0; v++ {
		if eliminated.Has(v) {
			continue
		}
		nb := adj[v].Subtract(eliminated)
		bag := nb.Clone()
		bag.Add(v)
		if isClique(adj, eliminated, nb) && allow(bag) {
			forced = v
		}
	}
	if forced >= 0 {
		if try(forced) {
			return true
		}
		memo[key] = false
		return false
	}
	for v := 0; v < n; v++ {
		if eliminated.Has(v) {
			continue
		}
		if try(v) {
			return true
		}
	}
	memo[key] = false
	return false
}

// Validate checks the GHD conditions against h.
func (g *GHD) Validate(h *Hypergraph) error {
	d := &Decomposition{Bags: g.Bags, Parent: g.Parent}
	if err := d.Validate(h); err != nil {
		return err
	}
	for i, bag := range g.Bags {
		union := NewSet(h.NumVertices())
		for _, e := range g.Covers[i] {
			union.UnionWith(h.edges[e])
		}
		for _, v := range bag {
			if !union.Has(h.index[v]) {
				return fmt.Errorf("hypergraph: bag %d vertex %q not covered by its edge cover", i, v)
			}
		}
	}
	return nil
}
