package hypergraph

// ghw1ViaSearch decides ghw <= 1 using the generic elimination search,
// bypassing the GYO shortcut. Used to cross-validate the two algorithms.
func (h *Hypergraph) ghw1ViaSearch() bool {
	if len(h.edges) <= 1 {
		return true
	}
	adj := h.adjacency()
	covered := NewSet(h.NumVertices())
	for _, e := range h.edges {
		covered.UnionWith(e)
	}
	eliminated := h.AllVertices()
	eliminated.SubtractWith(covered)
	memo := make(map[string]bool)
	allow := func(bag Set) bool { return h.coverableBy(bag, 1) }
	return fWidthSearch(adj, eliminated, covered.Len(), allow, memo)
}
