package hypergraph

import (
	"math/bits"
	"strconv"
	"strings"
)

// Set is a fixed-capacity bitset over vertex indices. All sets manipulated
// together must have been created with the same capacity.
type Set []uint64

// NewSet returns an empty set with capacity for n elements.
func NewSet(n int) Set {
	return make(Set, (n+63)/64)
}

// Clone returns a copy of s.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	copy(out, s)
	return out
}

// Add inserts element i.
func (s Set) Add(i int) { s[i/64] |= 1 << (uint(i) % 64) }

// Remove deletes element i.
func (s Set) Remove(i int) { s[i/64] &^= 1 << (uint(i) % 64) }

// Has reports membership of i.
func (s Set) Has(i int) bool { return s[i/64]&(1<<(uint(i)%64)) != 0 }

// Len returns the number of elements.
func (s Set) Len() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no elements.
func (s Set) Empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// UnionWith adds all elements of t to s in place.
func (s Set) UnionWith(t Set) {
	for i := range s {
		s[i] |= t[i]
	}
}

// IntersectWith removes from s all elements not in t, in place.
func (s Set) IntersectWith(t Set) {
	for i := range s {
		s[i] &= t[i]
	}
}

// SubtractWith removes all elements of t from s in place.
func (s Set) SubtractWith(t Set) {
	for i := range s {
		s[i] &^= t[i]
	}
}

// Union returns s ∪ t as a new set.
func (s Set) Union(t Set) Set {
	out := s.Clone()
	out.UnionWith(t)
	return out
}

// Intersect returns s ∩ t as a new set.
func (s Set) Intersect(t Set) Set {
	out := s.Clone()
	out.IntersectWith(t)
	return out
}

// Subtract returns s ∖ t as a new set.
func (s Set) Subtract(t Set) Set {
	out := s.Clone()
	out.SubtractWith(t)
	return out
}

// SubsetOf reports s ⊆ t.
func (s Set) SubsetOf(t Set) bool {
	for i := range s {
		if s[i]&^t[i] != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s ∩ t is nonempty.
func (s Set) Intersects(t Set) bool {
	for i := range s {
		if s[i]&t[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and t contain the same elements.
func (s Set) Equal(t Set) bool {
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Elements returns the members of s in increasing order.
func (s Set) Elements() []int {
	var out []int
	for wi, w := range s {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*64+b)
			w &= w - 1
		}
	}
	return out
}

// First returns the smallest element, or -1 if the set is empty.
func (s Set) First() int {
	for wi, w := range s {
		if w != 0 {
			return wi*64 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Key renders the set as a compact string usable as a map key.
func (s Set) Key() string {
	var b strings.Builder
	for _, w := range s {
		b.WriteString(strconv.FormatUint(w, 36))
		b.WriteByte(',')
	}
	return b.String()
}
