// Package hypergraph implements the hypergraph machinery of Section 3.1 of
// Barceló & Pichler (PODS 2015): hypergraphs of conjunctive queries, tree
// decompositions and treewidth, GYO acyclicity and join trees, generalized
// hypertree decompositions and hypertreewidth, and β-acyclicity. Vertices
// are identified by string names (query variables) and internally handled as
// bitset indices.
package hypergraph

import (
	"fmt"
	"sort"
	"strings"
)

// Hypergraph is a pair (V, E) of named vertices and hyperedges over them.
type Hypergraph struct {
	names []string
	index map[string]int
	edges []Set
}

// New returns a hypergraph over the given vertex names (duplicates are
// collapsed) with no edges.
func New(vertices []string) *Hypergraph {
	h := &Hypergraph{index: make(map[string]int)}
	for _, v := range vertices {
		if _, ok := h.index[v]; !ok {
			h.index[v] = len(h.names)
			h.names = append(h.names, v)
		}
	}
	return h
}

// AddEdge adds the hyperedge over the named vertices, which must already be
// vertices of the hypergraph. Empty edges are ignored; duplicate edges are
// kept (they never change any width).
func (h *Hypergraph) AddEdge(vertices []string) {
	if len(vertices) == 0 {
		return
	}
	e := NewSet(len(h.names))
	for _, v := range vertices {
		i, ok := h.index[v]
		if !ok {
			//lint:ignore R2 documented contract: vertices must be added before edges
			panic(fmt.Sprintf("hypergraph: unknown vertex %q", v))
		}
		e.Add(i)
	}
	h.edges = append(h.edges, e)
}

// NumVertices returns |V|.
func (h *Hypergraph) NumVertices() int { return len(h.names) }

// NumEdges returns |E|.
func (h *Hypergraph) NumEdges() int { return len(h.edges) }

// VertexNames returns the vertex names in index order.
func (h *Hypergraph) VertexNames() []string { return h.names }

// Edges returns the hyperedges as bitsets. The result must not be modified.
func (h *Hypergraph) Edges() []Set { return h.edges }

// EdgeVertices returns the vertex names of edge i, sorted.
func (h *Hypergraph) EdgeVertices(i int) []string {
	elems := h.edges[i].Elements()
	out := make([]string, len(elems))
	for j, e := range elems {
		out[j] = h.names[e]
	}
	sort.Strings(out)
	return out
}

// AllVertices returns the set of all vertex indices.
func (h *Hypergraph) AllVertices() Set {
	s := NewSet(len(h.names))
	for i := range h.names {
		s.Add(i)
	}
	return s
}

// adjacency returns the primal-graph adjacency: adj[i] is the set of
// vertices sharing an edge with i (excluding i itself).
func (h *Hypergraph) adjacency() []Set {
	adj := make([]Set, len(h.names))
	for i := range adj {
		adj[i] = NewSet(len(h.names))
	}
	for _, e := range h.edges {
		for _, u := range e.Elements() {
			adj[u].UnionWith(e)
		}
	}
	for i := range adj {
		adj[i].Remove(i)
	}
	return adj
}

// Components returns the connected components of the subhypergraph induced
// by the vertex set within, considering only edges restricted to within.
func (h *Hypergraph) Components(within Set) []Set {
	visited := NewSet(len(h.names))
	var comps []Set
	for _, start := range within.Elements() {
		if visited.Has(start) {
			continue
		}
		comp := NewSet(len(h.names))
		stack := []int{start}
		comp.Add(start)
		visited.Add(start)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range h.edges {
				if !e.Has(v) {
					continue
				}
				for _, u := range e.Intersect(within).Elements() {
					if !visited.Has(u) {
						visited.Add(u)
						comp.Add(u)
						stack = append(stack, u)
					}
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// String renders the hypergraph as "{a,b,c} {c,d}" with sorted edges.
func (h *Hypergraph) String() string {
	parts := make([]string, len(h.edges))
	for i := range h.edges {
		parts[i] = "{" + strings.Join(h.EdgeVertices(i), ",") + "}"
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}

// Decomposition is a tree decomposition (S, ν): a tree over bag nodes where
// each bag is a set of vertex names. Node 0 is the root; Parent[0] = -1.
type Decomposition struct {
	Bags   [][]string
	Parent []int
}

// Width returns max |bag| - 1, the width of the decomposition.
func (d *Decomposition) Width() int {
	w := 0
	for _, b := range d.Bags {
		if len(b) > w {
			w = len(b)
		}
	}
	return w - 1
}

// Validate checks the tree-decomposition conditions against h: every edge is
// covered by some bag and every vertex induces a connected subtree.
func (d *Decomposition) Validate(h *Hypergraph) error {
	bagSets := make([]Set, len(d.Bags))
	for i, b := range d.Bags {
		s := NewSet(h.NumVertices())
		for _, v := range b {
			idx, ok := h.index[v]
			if !ok {
				return fmt.Errorf("hypergraph: bag %d mentions unknown vertex %q", i, v)
			}
			s.Add(idx)
		}
		bagSets[i] = s
	}
	for ei, e := range h.edges {
		covered := false
		for _, b := range bagSets {
			if e.SubsetOf(b) {
				covered = true
				break
			}
		}
		if !covered {
			return fmt.Errorf("hypergraph: edge %d (%v) not covered by any bag", ei, h.EdgeVertices(ei))
		}
	}
	// Connectedness: for each vertex, the nodes containing it must form a
	// connected subtree. We check that the occurrence set minus one
	// occurrence closest to the root is reachable through occurrences.
	for v := range h.names {
		var occ []int
		for i, b := range bagSets {
			if b.Has(v) {
				occ = append(occ, i)
			}
		}
		if len(occ) <= 1 {
			continue
		}
		occSet := make(map[int]bool, len(occ))
		for _, i := range occ {
			occSet[i] = true
		}
		// For every occurrence except the top-most one, its parent must
		// also be an occurrence once we contract chains of non-occurrences:
		// in a tree, the occurrence set is connected iff exactly one
		// occurrence has a parent outside the set.
		outside := 0
		for _, i := range occ {
			if p := d.Parent[i]; p == -1 || !occSet[p] {
				outside++
			}
		}
		if outside != 1 {
			return fmt.Errorf("hypergraph: vertex %q occurs in a disconnected set of bags", h.names[v])
		}
	}
	return nil
}
