package hypergraph

// Generalized hypertree width (called simply "hypertreewidth" in Section 3.1
// of the paper, following its remark on terminology). We decide ghw(h) ≤ k
// exactly via the chordalization characterization: a graph admits a tree
// decomposition with all bags from a downward-closed family F iff it has an
// elimination ordering in which, for every eliminated vertex, the vertex
// together with its current fill-neighborhood lies in F. For ghw, F is
// "coverable by at most k hyperedges".

// GeneralizedHypertreewidthAtMost decides ghw(h) ≤ k exactly. k must be
// positive. ghw ≤ 1 coincides with α-acyclicity and is answered by GYO in
// polynomial time; larger k uses memoized elimination search, exponential in
// the worst case but fast on the small query hypergraphs arising here.
func (h *Hypergraph) GeneralizedHypertreewidthAtMost(k int) bool {
	if k <= 0 {
		return false
	}
	if k == 1 {
		ok, _ := h.IsAcyclic()
		return ok
	}
	if len(h.edges) <= k {
		return true
	}
	// Vertices in no edge never constrain a decomposition; restrict to
	// covered vertices.
	n := h.NumVertices()
	adj := h.adjacency()
	covered := NewSet(n)
	for _, e := range h.edges {
		covered.UnionWith(e)
	}
	eliminated := h.AllVertices()
	eliminated.SubtractWith(covered)
	memo := make(map[string]bool)
	allow := func(bag Set) bool { return h.coverableBy(bag, k) }
	return fWidthSearch(adj, eliminated, covered.Len(), allow, memo)
}

// GeneralizedHypertreewidth returns the exact generalized hypertreewidth
// (0 for an edgeless hypergraph).
func (h *Hypergraph) GeneralizedHypertreewidth() int {
	if len(h.edges) == 0 {
		return 0
	}
	for k := 1; ; k++ {
		if h.GeneralizedHypertreewidthAtMost(k) {
			return k
		}
	}
}

// BetaHypertreewidthAtMost decides whether every subhypergraph of h (every
// subset of its edges) has ghw ≤ k — the class HW'(k) of Section 5 (called
// β-hypertreewidth in [Gottlob & Pichler 2004]). For k = 1 this is
// β-acyclicity, decided in polynomial time by nest-point elimination. For
// k ≥ 2 all edge subsets are enumerated, which is exponential in the number
// of edges; the paper notes that no efficient recognition procedure is
// known for this class.
func (h *Hypergraph) BetaHypertreewidthAtMost(k int) bool {
	if k <= 0 {
		return false
	}
	if k == 1 {
		return h.IsBetaAcyclic()
	}
	m := len(h.edges)
	for mask := 1; mask < (1 << uint(m)); mask++ {
		sub := &Hypergraph{names: h.names, index: h.index}
		for i := 0; i < m; i++ {
			if mask&(1<<uint(i)) != 0 {
				sub.edges = append(sub.edges, h.edges[i])
			}
		}
		if !sub.GeneralizedHypertreewidthAtMost(k) {
			return false
		}
	}
	return true
}

// fWidthSearch reports whether the live graph admits an elimination ordering
// whose every bag (vertex + live fill-neighborhood) satisfies allow.
func fWidthSearch(adj []Set, eliminated Set, remaining int, allow func(Set) bool, memo map[string]bool) bool {
	if remaining == 0 {
		return true
	}
	key := eliminated.Key()
	if v, ok := memo[key]; ok {
		return v
	}
	n := len(adj)
	result := false
	try := func(v int) bool {
		nb := adj[v].Subtract(eliminated)
		bag := nb.Clone()
		bag.Add(v)
		if !allow(bag) {
			return false
		}
		added := eliminate(adj, eliminated, v, nb)
		ok := fWidthSearch(adj, eliminated, remaining-1, allow, memo)
		undo(adj, eliminated, v, added)
		return ok
	}
	// Simplicial vertices with an allowed bag can be eliminated first.
	forced := -1
	for v := 0; v < n && forced < 0; v++ {
		if eliminated.Has(v) {
			continue
		}
		nb := adj[v].Subtract(eliminated)
		bag := nb.Clone()
		bag.Add(v)
		if isClique(adj, eliminated, nb) && allow(bag) {
			forced = v
		}
	}
	if forced >= 0 {
		result = try(forced)
	} else {
		for v := 0; v < n; v++ {
			if eliminated.Has(v) {
				continue
			}
			if try(v) {
				result = true
				break
			}
		}
	}
	memo[key] = result
	return result
}

// coverableBy reports whether the vertex set vs is contained in the union of
// at most k hyperedges of h, by exact branch-on-uncovered-vertex search.
func (h *Hypergraph) coverableBy(vs Set, k int) bool {
	if vs.Empty() {
		return true
	}
	if k == 0 {
		return false
	}
	v := vs.First()
	for _, e := range h.edges {
		if !e.Has(v) {
			continue
		}
		rest := vs.Subtract(e)
		if h.coverableBy(rest, k-1) {
			return true
		}
	}
	return false
}
