package hypergraph

// Treewidth computation. The heuristic side uses min-fill elimination
// orderings; the exact side searches elimination orderings with memoization
// on the set of already-eliminated vertices (the fill-in graph after
// eliminating a set is independent of the order, so the state space is the
// subset lattice).

// exactTreewidthLimit bounds the vertex count for which the exact search is
// attempted; beyond it Treewidth falls back to the min-fill upper bound.
const exactTreewidthLimit = 28

// Treewidth returns the treewidth of h. exact reports whether the value is
// exact (vertex count within exactTreewidthLimit) or a min-fill upper bound.
// The treewidth of an edgeless or empty hypergraph is 0.
func (h *Hypergraph) Treewidth() (width int, exact bool) {
	n := h.NumVertices()
	if n == 0 {
		return 0, true
	}
	ub := h.treewidthMinFill()
	if n > exactTreewidthLimit {
		return ub, false
	}
	// Iterative deepening from a cheap lower bound up to the upper bound.
	lb := h.treewidthLowerBound()
	for k := lb; k < ub; k++ {
		if h.TreewidthAtMost(k) {
			return k, true
		}
	}
	return ub, true
}

// TreewidthAtMost decides tw(h) ≤ k exactly via memoized elimination-order
// search. For hypergraphs larger than exactTreewidthLimit vertices it first
// tries the min-fill upper bound and only then runs the exponential search,
// which may be slow.
func (h *Hypergraph) TreewidthAtMost(k int) bool {
	n := h.NumVertices()
	if n <= k+1 {
		return true
	}
	if ub := h.treewidthMinFill(); ub <= k {
		return true
	}
	adj := h.adjacency()
	eliminated := NewSet(n)
	memo := make(map[string]bool)
	return eliminateSearch(adj, eliminated, n, k, memo)
}

// eliminateSearch reports whether the remaining graph admits an elimination
// ordering in which every vertex has at most k neighbors when eliminated.
func eliminateSearch(adj []Set, eliminated Set, remaining, k int, memo map[string]bool) bool {
	if remaining <= k+1 {
		return true
	}
	key := eliminated.Key()
	if v, ok := memo[key]; ok {
		return v
	}
	result := false
	n := len(adj)
	// The "simplicial vertex rule": a vertex whose neighborhood is already a
	// clique can always be eliminated first without loss of generality.
	forced := -1
	for v := 0; v < n && forced < 0; v++ {
		if eliminated.Has(v) {
			continue
		}
		nb := adj[v].Subtract(eliminated)
		if nb.Len() > k {
			continue
		}
		if isClique(adj, eliminated, nb) {
			forced = v
		}
	}
	try := func(v int) bool {
		nb := adj[v].Subtract(eliminated)
		if nb.Len() > k {
			return false
		}
		added := eliminate(adj, eliminated, v, nb)
		ok := eliminateSearch(adj, eliminated, remaining-1, k, memo)
		undo(adj, eliminated, v, added)
		return ok
	}
	if forced >= 0 {
		result = try(forced)
	} else {
		for v := 0; v < n; v++ {
			if eliminated.Has(v) {
				continue
			}
			if try(v) {
				result = true
				break
			}
		}
	}
	memo[key] = result
	return result
}

type fillEdge struct{ u, v int }

// eliminate removes v and turns its live neighborhood nb into a clique,
// returning the fill edges added for undo.
func eliminate(adj []Set, eliminated Set, v int, nb Set) []fillEdge {
	var added []fillEdge
	elems := nb.Elements()
	for i, u := range elems {
		for _, w := range elems[i+1:] {
			if !adj[u].Has(w) {
				adj[u].Add(w)
				adj[w].Add(u)
				added = append(added, fillEdge{u, w})
			}
		}
	}
	eliminated.Add(v)
	return added
}

func undo(adj []Set, eliminated Set, v int, added []fillEdge) {
	eliminated.Remove(v)
	for _, e := range added {
		adj[e.u].Remove(e.v)
		adj[e.v].Remove(e.u)
	}
}

func isClique(adj []Set, eliminated, vs Set) bool {
	elems := vs.Elements()
	for i, u := range elems {
		for _, w := range elems[i+1:] {
			if !adj[u].Has(w) {
				return false
			}
		}
	}
	_ = eliminated
	return true
}

// treewidthMinFill returns the width of the min-fill elimination ordering, a
// standard treewidth upper bound.
func (h *Hypergraph) treewidthMinFill() int {
	_, width := h.minFillOrder()
	return width
}

// minFillOrder computes a min-fill elimination ordering and its width.
func (h *Hypergraph) minFillOrder() (order []int, width int) {
	n := h.NumVertices()
	adj := h.adjacency()
	eliminated := NewSet(n)
	for step := 0; step < n; step++ {
		best, bestFill, bestDeg := -1, -1, -1
		for v := 0; v < n; v++ {
			if eliminated.Has(v) {
				continue
			}
			nb := adj[v].Subtract(eliminated)
			fill := fillCount(adj, nb)
			deg := nb.Len()
			if best == -1 || fill < bestFill || (fill == bestFill && deg < bestDeg) {
				best, bestFill, bestDeg = v, fill, deg
			}
		}
		nb := adj[best].Subtract(eliminated)
		if d := nb.Len(); d > width {
			width = d
		}
		eliminate(adj, eliminated, best, nb)
		order = append(order, best)
	}
	return order, width
}

func fillCount(adj []Set, nb Set) int {
	elems := nb.Elements()
	fill := 0
	for i, u := range elems {
		for _, w := range elems[i+1:] {
			if !adj[u].Has(w) {
				fill++
			}
		}
	}
	return fill
}

// treewidthLowerBound returns a cheap lower bound: the minimum degree of the
// densest "minor" obtained by repeatedly deleting a minimum-degree vertex
// (the MMD lower bound).
func (h *Hypergraph) treewidthLowerBound() int {
	adj := h.adjacency()
	live := h.AllVertices()
	lb := 0
	for live.Len() > 1 {
		best, bestDeg := -1, -1
		for _, v := range live.Elements() {
			d := adj[v].Intersect(live).Len()
			if best == -1 || d < bestDeg {
				best, bestDeg = v, d
			}
		}
		if bestDeg > lb {
			lb = bestDeg
		}
		live.Remove(best)
	}
	return lb
}

// TreeDecomposition builds a tree decomposition from the min-fill
// elimination ordering. Its width is an upper bound on tw(h); for many
// practically arising queries it is optimal.
func (h *Hypergraph) TreeDecomposition() *Decomposition {
	n := h.NumVertices()
	if n == 0 {
		return &Decomposition{Bags: [][]string{{}}, Parent: []int{-1}}
	}
	order, _ := h.minFillOrder()
	// Recompute fill graph along the order, recording each bag.
	adj := h.adjacency()
	eliminated := NewSet(n)
	bags := make([]Set, n)
	for _, v := range order {
		nb := adj[v].Subtract(eliminated)
		bag := nb.Clone()
		bag.Add(v)
		bags[v] = bag
		eliminate(adj, eliminated, v, nb)
	}
	// Standard construction: node for each vertex in elimination order; the
	// parent of v's node is the node of the earliest-eliminated vertex in
	// bag(v) ∖ {v}; last vertex is the root.
	pos := make([]int, n)
	for i, v := range order {
		pos[v] = i
	}
	d := &Decomposition{Bags: make([][]string, n), Parent: make([]int, n)}
	node := make([]int, n) // vertex -> node id (we use elimination position)
	for i, v := range order {
		node[v] = i
	}
	for i, v := range order {
		d.Bags[i] = h.namesOf(bags[v])
		parent := -1
		bestPos := n + 1
		for _, u := range bags[v].Elements() {
			if u == v {
				continue
			}
			if pos[u] < bestPos {
				bestPos = pos[u]
				parent = node[u]
			}
		}
		d.Parent[i] = parent
	}
	// Re-root so that node with Parent -1 is unique: vertices eliminated
	// last in each component have no parent; link extra roots to the first.
	root := -1
	for i := range d.Parent {
		if d.Parent[i] == -1 {
			if root == -1 {
				root = i
			} else {
				d.Parent[i] = root
			}
		}
	}
	return d
}

func (h *Hypergraph) namesOf(s Set) []string {
	elems := s.Elements()
	out := make([]string, len(elems))
	for i, e := range elems {
		out[i] = h.names[e]
	}
	return out
}
