package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"wdpt/internal/obs"
)

// Peer health defaults.
const (
	// DefaultProbeInterval is the background health-probe period.
	DefaultProbeInterval = 2 * time.Second
	// DefaultProbeTimeout bounds one health probe exchange.
	DefaultProbeTimeout = 2 * time.Second
	// DefaultFailThreshold is the number of consecutive failed exchanges
	// that flips a peer unhealthy. 1 fails fast: a coordinator that just
	// watched a query die should not route the next one the same way.
	DefaultFailThreshold = 1
)

// PeerConfig configures a peer table.
type PeerConfig struct {
	// ProbeInterval is the background probe period (DefaultProbeInterval
	// when zero).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe exchange (DefaultProbeTimeout when
	// zero).
	ProbeTimeout time.Duration
	// FailThreshold is the consecutive-failure count that flips a peer
	// unhealthy (DefaultFailThreshold when zero).
	FailThreshold int
	// Stats receives the cluster.* counters (nil disables).
	Stats *obs.Stats
	// Latency receives per-peer exchange latencies, labeled
	// peer/kind/outcome (nil disables).
	Latency *obs.HistVec
	// Probe overrides the health-probe exchange (tests). The default GETs
	// <endpoint>/healthz with a Timeout-bearing client and treats any
	// non-2xx status or transport error as failure.
	Probe func(ctx context.Context, endpoint string) error
}

// PeerState is one peer's point-in-time health, as reported by
// GET /v1/cluster.
type PeerState struct {
	// Endpoint is the peer's base URL.
	Endpoint string `json:"endpoint"`
	// Healthy reports whether the peer is currently routable.
	Healthy bool `json:"healthy"`
	// ConsecFails is the current consecutive-failure streak.
	ConsecFails int `json:"consec_fails"`
	// LastErr is the most recent failure, empty after a success.
	LastErr string `json:"last_err,omitempty"`
}

// peerEntry is the mutable state behind one PeerState.
type peerEntry struct {
	healthy     bool
	consecFails int
	lastErr     string
}

// Peers is a health-checked peer table: a fixed endpoint set whose
// health flips on probe results and live exchange outcomes. All methods
// are safe for concurrent use. Endpoints are tracked in sorted order so
// every read (Healthy, States) is deterministic.
type Peers struct {
	endpoints []string // sorted, deduped
	cfg       PeerConfig
	hc        *http.Client

	mu    sync.Mutex
	state map[string]*peerEntry

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewPeers builds a peer table over the given endpoints. Peers start
// healthy — optimistic routing lets a cluster serve before the first probe
// round, and a bad peer is demoted by its first failed exchange.
func NewPeers(endpoints []string, cfg PeerConfig) *Peers {
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = DefaultProbeTimeout
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = DefaultFailThreshold
	}
	r := NewRing(endpoints, 1) // reuse the sort/dedup normalization
	p := &Peers{
		endpoints: r.Peers(),
		cfg:       cfg,
		hc:        &http.Client{Timeout: cfg.ProbeTimeout},
		state:     make(map[string]*peerEntry),
		stop:      make(chan struct{}),
	}
	for _, ep := range p.endpoints {
		p.state[ep] = &peerEntry{healthy: true}
	}
	return p
}

// Endpoints returns the sorted, deduped endpoint list (copy).
func (p *Peers) Endpoints() []string {
	return append([]string(nil), p.endpoints...)
}

// Healthy returns the currently-healthy endpoints in sorted order.
func (p *Peers) Healthy() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.endpoints))
	for _, ep := range p.endpoints {
		if p.state[ep].healthy {
			out = append(out, ep)
		}
	}
	return out
}

// IsHealthy reports whether the endpoint is currently routable. Unknown
// endpoints are unhealthy.
func (p *Peers) IsHealthy(endpoint string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.state[endpoint]
	return e != nil && e.healthy
}

// States returns every peer's state in sorted endpoint order.
func (p *Peers) States() []PeerState {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]PeerState, 0, len(p.endpoints))
	for _, ep := range p.endpoints {
		e := p.state[ep]
		out = append(out, PeerState{
			Endpoint:    ep,
			Healthy:     e.healthy,
			ConsecFails: e.consecFails,
			LastErr:     e.lastErr,
		})
	}
	return out
}

// MarkSuccess records a successful exchange with the endpoint, resetting
// its failure streak and flipping it healthy if it was not.
func (p *Peers) MarkSuccess(endpoint string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.state[endpoint]
	if e == nil {
		return
	}
	e.consecFails = 0
	e.lastErr = ""
	if !e.healthy {
		e.healthy = true
		p.cfg.Stats.Inc(obs.CtrClusterHealthTransitions)
	}
}

// MarkFailure records a failed exchange with the endpoint. The peer flips
// unhealthy once its consecutive-failure streak reaches the threshold.
func (p *Peers) MarkFailure(endpoint string, err error) {
	p.cfg.Stats.Inc(obs.CtrClusterPeerFailures)
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.state[endpoint]
	if e == nil {
		return
	}
	e.consecFails++
	if err != nil {
		e.lastErr = err.Error()
	}
	if e.healthy && e.consecFails >= p.cfg.FailThreshold {
		e.healthy = false
		p.cfg.Stats.Inc(obs.CtrClusterHealthTransitions)
	}
}

// Start launches the background probe loop. Close joins it.
func (p *Peers) Start(ctx context.Context) {
	p.wg.Add(1)
	//lint:ignore R11 joined by protocol across functions: Close closes p.stop and Waits on p.wg, and the loop's only blocking points select on p.stop/ctx — the prober cannot outlive Close
	go func() {
		defer p.wg.Done()
		ticker := time.NewTicker(p.cfg.ProbeInterval)
		defer ticker.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-ctx.Done():
				return
			case <-ticker.C:
				p.ProbeAll(ctx)
			}
		}
	}()
}

// Close stops the probe loop and waits for it to exit. Safe to call
// without Start; not safe to call twice.
func (p *Peers) Close() {
	close(p.stop)
	p.wg.Wait()
}

// ProbeAll probes every peer once, in sorted order, updating health state
// and recording per-peer probe latencies.
func (p *Peers) ProbeAll(ctx context.Context) {
	for _, ep := range p.endpoints {
		p.cfg.Stats.Inc(obs.CtrClusterHealthProbes)
		start := time.Now()
		err := p.probeOne(ctx, ep)
		outcome := "ok"
		if err != nil {
			outcome = "error"
		}
		p.cfg.Latency.With(ep, "probe", outcome).Observe(time.Since(start))
		if err != nil {
			p.MarkFailure(ep, err)
		} else {
			p.MarkSuccess(ep)
		}
	}
}

// probeOne runs one health probe against the endpoint.
func (p *Peers) probeOne(ctx context.Context, endpoint string) error {
	if p.cfg.Probe != nil {
		return p.cfg.Probe(ctx, endpoint)
	}
	ctx, cancel := context.WithTimeout(ctx, p.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, endpoint+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := p.hc.Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("cluster: %s/healthz: HTTP %d", endpoint, resp.StatusCode)
	}
	return nil
}
