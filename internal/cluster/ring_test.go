package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRingDeterministicAcrossConstruction(t *testing.T) {
	peers := []string{"http://c:3", "http://a:1", "http://b:2"}
	shuffled := []string{"http://b:2", "http://c:3", "http://a:1", "http://a:1"}
	r1 := NewRing(peers, 64)
	r2 := NewRing(shuffled, 64)
	if !reflect.DeepEqual(r1.Peers(), r2.Peers()) {
		t.Fatalf("peer normalization differs: %v vs %v", r1.Peers(), r2.Peers())
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("dataset-%d", i)
		if o1, o2 := r1.Owner(key), r2.Owner(key); o1 != o2 {
			t.Fatalf("owner(%q) differs across construction order: %q vs %q", key, o1, o2)
		}
	}
}

func TestRingOwnerStableUnderRepeats(t *testing.T) {
	r := NewRing([]string{"http://a:1", "http://b:2", "http://c:3"}, 0)
	if r.VirtualNodes() != DefaultVirtualNodes {
		t.Fatalf("vnodes = %d, want default %d", r.VirtualNodes(), DefaultVirtualNodes)
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("ds%d", i)
		first := r.Owner(key)
		for j := 0; j < 5; j++ {
			if got := r.Owner(key); got != first {
				t.Fatalf("owner(%q) unstable: %q then %q", key, first, got)
			}
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	empty := NewRing(nil, 8)
	if got := empty.Owner("x"); got != "" {
		t.Fatalf("empty ring owner = %q", got)
	}
	if got := empty.Owners("x", 3); got != nil {
		t.Fatalf("empty ring owners = %v", got)
	}
	single := NewRing([]string{"http://only:1"}, 8)
	for _, key := range []string{"", "a", "music", "chain"} {
		if got := single.Owner(key); got != "http://only:1" {
			t.Fatalf("single-peer owner(%q) = %q", key, got)
		}
	}
}

func TestRingOwnersDistinctAndOrdered(t *testing.T) {
	peers := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	r := NewRing(peers, 32)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		owners := r.Owners(key, 10) // n > len(peers): clamped
		if len(owners) != len(peers) {
			t.Fatalf("owners(%q) = %v, want all %d peers", key, owners, len(peers))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("owners(%q) repeats %q: %v", key, o, owners)
			}
			seen[o] = true
		}
		if owners[0] != r.Owner(key) {
			t.Fatalf("owners[0] %q != Owner %q", owners[0], r.Owner(key))
		}
		// Prefix property: Owners(key, 2) is the first two of Owners(key, 4).
		two := r.Owners(key, 2)
		if !reflect.DeepEqual(two, owners[:2]) {
			t.Fatalf("owners(%q,2) = %v not a prefix of %v", key, two, owners)
		}
	}
}

func TestRingBalance(t *testing.T) {
	peers := []string{"http://a:1", "http://b:2", "http://c:3"}
	r := NewRing(peers, 64)
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("dataset-%d", i))]++
	}
	mean := n / len(peers)
	for _, p := range peers {
		if counts[p] == 0 {
			t.Fatalf("peer %q owns nothing: %v", p, counts)
		}
		if counts[p] > 2*mean || counts[p] < mean/2 {
			t.Fatalf("peer %q owns %d of %d (mean %d): ring badly unbalanced", p, counts[p], n, mean)
		}
	}
}

func TestRingRebalanceMovesOnlyDepartedShare(t *testing.T) {
	before := NewRing([]string{"http://a:1", "http://b:2", "http://c:3"}, 64)
	after := NewRing([]string{"http://a:1", "http://b:2"}, 64)
	const n = 2000
	moved := 0
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("dataset-%d", i)
		was, is := before.Owner(key), after.Owner(key)
		if was == "http://c:3" {
			if is == "http://c:3" {
				t.Fatalf("departed peer still owns %q", key)
			}
			continue // its share must move
		}
		if was != is {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys not owned by the departed peer changed owner — consistent hashing must only move the departed share", moved)
	}
}

func TestRingAssignment(t *testing.T) {
	r := NewRing([]string{"http://a:1", "http://b:2"}, 16)
	keys := []string{"music", "chain"}
	got := r.Assignment(keys)
	if len(got) != 2 {
		t.Fatalf("assignment = %v", got)
	}
	for _, k := range keys {
		if got[k] != r.Owner(k) {
			t.Fatalf("assignment[%q] = %q, Owner = %q", k, got[k], r.Owner(k))
		}
	}
}
