// Integration tests for the cluster coordinator: a real fleet (httptest
// members + a coordinator front end) evaluated against a single plain wdptd
// node serving the same datasets. The load-bearing assertions are raw-body
// byte comparisons — the scatter-gather merge contract is that a client
// cannot tell a coordinator from a single node by looking at response
// bytes.
package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"wdpt/internal/cluster"
	"wdpt/internal/db"
	"wdpt/internal/gen"
	"wdpt/internal/guard"
	"wdpt/internal/obs"
	"wdpt/internal/server"
	"wdpt/internal/server/client"
	"wdpt/internal/sparql"
)

// unionQuery is a 4-member union over the chain database: enough members to
// spread across every peer of a 3-member fleet with wraparound.
const unionQuery = "SELECT ?y0 WHERE E(?y0, ?y1)" +
	" UNION SELECT ?y1 WHERE E(?y0, ?y1)" +
	" UNION SELECT ?y0 WHERE (E(?y0, ?y1) AND E(?y1, ?y2))" +
	" UNION SELECT ?y2 WHERE (E(?y0, ?y1) AND E(?y1, ?y2))"

// writeDataset renders d into a file under a fresh temp dir.
func writeDataset(t *testing.T, d *db.Database) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.txt")
	if err := os.WriteFile(path, []byte(sparql.FormatDatabase(d)), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// newNode builds one wdptd server over the given specs. Every node of a
// fleet gets its own registry over the same dataset files — the deployment
// contract docs/CLUSTER.md states.
func newNode(t *testing.T, cfg server.Config, specs map[string]string) *server.Server {
	t.Helper()
	reg, err := server.NewRegistry(specs)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Registry = reg
	srv, err := server.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// fleet is a running test cluster plus the plain single node it is compared
// against.
type fleet struct {
	coord    *cluster.Coordinator
	coordCl  *client.Client
	coordURL string
	members  []*httptest.Server
	// memberHits counts /v1/query arrivals per member, index-aligned with
	// members.
	memberHits []*atomic.Int64
	single     *client.Client
}

// startFleet starts n members, a coordinator over them, and a plain
// single-node reference server, all over the same dataset files.
func startFleet(t *testing.T, n int, specs map[string]string, cfg server.Config) *fleet {
	t.Helper()
	f := &fleet{}
	var endpoints []string
	for i := 0; i < n; i++ {
		srv := newNode(t, cfg, specs)
		hits := &atomic.Int64{}
		hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/query" {
				hits.Add(1)
			}
			srv.ServeHTTP(w, r)
		}))
		t.Cleanup(hs.Close)
		f.members = append(f.members, hs)
		f.memberHits = append(f.memberHits, hits)
		endpoints = append(endpoints, hs.URL)
	}
	local := newNode(t, cfg, specs)
	coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
		Local: local,
		Peers: endpoints,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.coord = coord
	chs := httptest.NewServer(coord)
	t.Cleanup(chs.Close)
	f.coordURL = chs.URL
	f.coordCl = client.New(chs.URL, nil)

	single := newNode(t, cfg, specs)
	shs := httptest.NewServer(single)
	t.Cleanup(shs.Close)
	f.single = client.New(shs.URL, nil)
	return f
}

// bothBodies queries the coordinator and the single node with the same
// request and returns both results.
func (f *fleet) bothBodies(t *testing.T, req server.Request) (*client.QueryResult, *client.QueryResult) {
	t.Helper()
	got, err := f.coordCl.Query(context.Background(), req)
	if err != nil {
		t.Fatalf("coordinator query: %v", err)
	}
	want, err := f.single.Query(context.Background(), req)
	if err != nil {
		t.Fatalf("single-node query: %v", err)
	}
	return got, want
}

func chainSpecs(t *testing.T) map[string]string {
	t.Helper()
	return map[string]string{"chain": writeDataset(t, gen.ChainDatabase(4))}
}

// TestScatterGatherByteParity is the acceptance pin: for enumerate and
// maximal at P ∈ {1, 8}, the coordinator's merged union body is
// byte-identical to the single-node response, and the members actually
// carried the legs.
func TestScatterGatherByteParity(t *testing.T) {
	f := startFleet(t, 3, chainSpecs(t), server.Config{MaxInFlight: 16})
	for _, mode := range []string{"enumerate", "maximal"} {
		for _, par := range []int{1, 8} {
			t.Run(fmt.Sprintf("%s_p%d", mode, par), func(t *testing.T) {
				req := server.Request{Dataset: "chain", Query: unionQuery, Mode: mode, Parallelism: par}
				got, want := f.bothBodies(t, req)
				if want.Status != http.StatusOK {
					t.Fatalf("single node status %d: %s", want.Status, want.Body)
				}
				if got.Status != want.Status || !bytes.Equal(got.Body, want.Body) {
					t.Fatalf("coordinator body diverged:\n%s\nwant:\n%s", got.Body, want.Body)
				}
				if got.Report.AnswerCount == nil || *got.Report.AnswerCount == 0 {
					t.Fatal("merged union returned no answers")
				}
			})
		}
	}
	if got := f.coord.Peers().Healthy(); len(got) != 3 {
		t.Fatalf("healthy peers = %d, want 3", len(got))
	}
	hits := int64(0)
	for _, h := range f.memberHits {
		if h.Load() == 0 {
			t.Error("a member carried no scatter legs")
		}
		hits += h.Load()
	}
	if hits == 0 {
		t.Fatal("no member traffic at all — scatter never happened")
	}
	snap := f.coord.Peers() // state sanity only; counters live on the local server
	_ = snap
}

// TestScatterDeterminismUnderSeededDelays is the determinism pin (ISSUE
// satellite 3): seeded delays at the par.task fault site shuffle the order
// scatter legs complete in, across several seeds and P ∈ {1, 8}, and every
// response stays byte-identical to the undelayed baseline — including the
// maximal mode, whose merge is order-sensitive if implemented naively.
func TestScatterDeterminismUnderSeededDelays(t *testing.T) {
	f := startFleet(t, 3, chainSpecs(t), server.Config{MaxInFlight: 16})
	baselines := map[string][]byte{}
	for _, mode := range []string{"enumerate", "maximal"} {
		for _, par := range []int{1, 8} {
			req := server.Request{Dataset: "chain", Query: unionQuery, Mode: mode, Parallelism: par}
			res, err := f.coordCl.Query(context.Background(), req)
			if err != nil || res.Status != http.StatusOK {
				t.Fatalf("baseline %s p%d: %v status %d", mode, par, err, res.Status)
			}
			baselines[mode+fmt.Sprint(par)] = res.Body
		}
	}
	for _, seed := range []int64{1, 7, 42} {
		restore := guard.Activate(guard.NewInjector(seed).DelayProb(guard.SiteParTask, 0.7, 2*time.Millisecond))
		for _, mode := range []string{"enumerate", "maximal"} {
			for _, par := range []int{1, 8} {
				req := server.Request{Dataset: "chain", Query: unionQuery, Mode: mode, Parallelism: par}
				res, err := f.coordCl.Query(context.Background(), req)
				if err != nil || res.Status != http.StatusOK {
					restore()
					t.Fatalf("seed %d %s p%d: %v status %d", seed, mode, par, err, res.Status)
				}
				if !bytes.Equal(res.Body, baselines[mode+fmt.Sprint(par)]) {
					restore()
					t.Fatalf("seed %d %s p%d: body diverged from baseline:\n%s\nwant:\n%s",
						seed, mode, par, res.Body, baselines[mode+fmt.Sprint(par)])
				}
			}
		}
		restore()
	}
}

// TestScatterFallsBackWhenMemberDies pins the guard-ladder degrade path: a
// member killed out from under the fleet turns its scatter legs into
// transport errors, the coordinator replays the query locally, and the
// response is still byte-identical to the single node's. The dead peer is
// demoted, and subsequent unions scatter over the survivors and stay
// byte-identical too.
func TestScatterFallsBackWhenMemberDies(t *testing.T) {
	f := startFleet(t, 3, chainSpecs(t), server.Config{MaxInFlight: 16})
	dead := f.members[1]
	deadURL := dead.URL
	dead.Close()

	req := server.Request{Dataset: "chain", Query: unionQuery, Parallelism: 8}
	got, want := f.bothBodies(t, req)
	if got.Status != http.StatusOK || !bytes.Equal(got.Body, want.Body) {
		t.Fatalf("post-kill body diverged (status %d):\n%s\nwant:\n%s", got.Status, got.Body, want.Body)
	}
	if f.coord.Peers().IsHealthy(deadURL) {
		t.Fatal("dead peer still marked healthy after failed legs")
	}
	st := f.coord.Peers().States()
	if len(st) != 3 {
		t.Fatalf("peer states = %d, want 3", len(st))
	}

	// Two survivors remain: the next union scatters across them and still
	// matches the single node byte for byte.
	got2, want2 := f.bothBodies(t, server.Request{Dataset: "chain", Query: unionQuery, Mode: "maximal", Parallelism: 1})
	if got2.Status != http.StatusOK || !bytes.Equal(got2.Body, want2.Body) {
		t.Fatalf("survivor scatter diverged:\n%s\nwant:\n%s", got2.Body, want2.Body)
	}
}

// TestScatterFallbackOnBudgetTrip pins the budget degrade path: legs carry
// the request budget, a per-leg trip makes the scatter non-clean, and the
// local replay serves the exact single-node guard taxonomy (413
// tuple_budget with meter readings). Bodies are not compared byte-wise here
// — trip payloads carry elapsed_ms — the taxonomy and counters are the
// contract (docs/CLUSTER.md).
func TestScatterFallbackOnBudgetTrip(t *testing.T) {
	f := startFleet(t, 3, chainSpecs(t), server.Config{MaxInFlight: 16})
	res, err := f.coordCl.Query(context.Background(), server.Request{
		Dataset: "chain", Query: unionQuery, Parallelism: 1,
		Budget: &server.BudgetSpec{MaxTuples: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusRequestEntityTooLarge || res.Err == nil || res.Err.Code != "tuple_budget" {
		t.Fatalf("status %d payload %+v, want 413 tuple_budget", res.Status, res.Err)
	}
	if res.Err.Tuples < 1 {
		t.Errorf("trip payload carries Tuples=%d, want >= 1", res.Err.Tuples)
	}
}

// TestAnswerCapIsNotScattered pins two contracts at once: a MaxAnswers
// budget (global truncation) is never scattered, and the proxied degraded
// 206 body is byte-identical to the single node's — the "degraded responses
// stay byte-identical" half of the parity contract, on a body with no
// timing fields.
func TestAnswerCapIsNotScattered(t *testing.T) {
	f := startFleet(t, 3, chainSpecs(t), server.Config{MaxInFlight: 16})
	req := server.Request{Dataset: "chain", Query: unionQuery, Parallelism: 1,
		Budget: &server.BudgetSpec{MaxAnswers: 1}}
	got, want := f.bothBodies(t, req)
	if want.Status != http.StatusPartialContent {
		t.Fatalf("single node status %d, want 206", want.Status)
	}
	if got.Status != want.Status || !bytes.Equal(got.Body, want.Body) {
		t.Fatalf("proxied 206 diverged (status %d):\n%s\nwant:\n%s", got.Status, got.Body, want.Body)
	}
}

// TestWidthBoundNotMaskedByScatter pins that a coordinator with a width
// bound rejects exactly like a single node instead of scattering the
// members (which individually evaluate fine) and serving a merged 200.
func TestWidthBoundNotMaskedByScatter(t *testing.T) {
	specs := chainSpecs(t)
	cfg := server.Config{MaxInFlight: 16, WidthBound: 1}
	f := startFleet(t, 3, specs, cfg)
	// A triangle member has treewidth 2; the other member is within bound.
	q := "SELECT ?x WHERE (E(?x, ?y) AND E(?y, ?z) AND E(?z, ?x)) UNION SELECT ?x WHERE E(?x, ?y)"
	got, want := f.bothBodies(t, server.Request{Dataset: "chain", Query: q})
	if want.Status != http.StatusUnprocessableEntity {
		t.Fatalf("single node status %d, want 422", want.Status)
	}
	if got.Status != want.Status || !bytes.Equal(got.Body, want.Body) {
		t.Fatalf("width-bound body diverged (status %d):\n%s\nwant:\n%s", got.Status, got.Body, want.Body)
	}
}

// TestProxyRoutesToOwnerAndFailsOver pins dataset routing: a single-tree
// query lands on the ring owner (byte-identical body), and with the owner
// killed the coordinator fails over — the answer still matches the single
// node byte for byte.
func TestProxyRoutesToOwnerAndFailsOver(t *testing.T) {
	f := startFleet(t, 3, chainSpecs(t), server.Config{MaxInFlight: 16})
	req := server.Request{Dataset: "chain", Query: "SELECT ?y0 WHERE E(?y0, ?y1)", Parallelism: 1}
	got, want := f.bothBodies(t, req)
	if got.Status != http.StatusOK || !bytes.Equal(got.Body, want.Body) {
		t.Fatalf("proxied body diverged:\n%s\nwant:\n%s", got.Body, want.Body)
	}
	owner := f.coord.Ring().Owner("chain")
	ownerIdx := -1
	for i, hs := range f.members {
		if hs.URL == owner {
			ownerIdx = i
		}
	}
	if ownerIdx < 0 {
		t.Fatalf("ring owner %q is not a member", owner)
	}
	if f.memberHits[ownerIdx].Load() == 0 {
		t.Fatal("ring owner saw no proxied traffic")
	}

	f.members[ownerIdx].Close()
	got2, want2 := f.bothBodies(t, req)
	if got2.Status != http.StatusOK || !bytes.Equal(got2.Body, want2.Body) {
		t.Fatalf("failover body diverged:\n%s\nwant:\n%s", got2.Body, want2.Body)
	}
	if f.coord.Peers().IsHealthy(owner) {
		t.Fatal("killed owner still marked healthy")
	}
}

// TestAllPeersDownServesLocally pins the last rung: with every member dead
// the coordinator evaluates locally and the response still matches the
// single node byte for byte, for both the proxy and scatter paths.
func TestAllPeersDownServesLocally(t *testing.T) {
	f := startFleet(t, 2, chainSpecs(t), server.Config{MaxInFlight: 16})
	for _, hs := range f.members {
		hs.Close()
	}
	for _, q := range []string{"SELECT ?y0 WHERE E(?y0, ?y1)", unionQuery} {
		got, want := f.bothBodies(t, server.Request{Dataset: "chain", Query: q, Parallelism: 1})
		if got.Status != http.StatusOK || !bytes.Equal(got.Body, want.Body) {
			t.Fatalf("local-fallback body diverged for %q:\n%s\nwant:\n%s", q, got.Body, want.Body)
		}
	}
}

// TestClusterStatusEndpoint pins GET /v1/cluster: role, sorted peers, and a
// ring assignment whose owners are members of the fleet.
func TestClusterStatusEndpoint(t *testing.T) {
	f := startFleet(t, 3, chainSpecs(t), server.Config{MaxInFlight: 16})
	resp, err := http.Get(f.coordURL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var st cluster.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Role != "coordinator" {
		t.Fatalf("role = %q", st.Role)
	}
	if len(st.Peers) != 3 {
		t.Fatalf("peers = %d, want 3", len(st.Peers))
	}
	for i := 1; i < len(st.Peers); i++ {
		if st.Peers[i-1].Endpoint >= st.Peers[i].Endpoint {
			t.Fatal("peer states not sorted by endpoint")
		}
	}
	owner, ok := st.Datasets["chain"]
	if !ok {
		t.Fatal("dataset assignment missing")
	}
	found := false
	for _, p := range st.Peers {
		if p.Endpoint == owner {
			found = true
		}
	}
	if !found {
		t.Fatalf("owner %q is not a fleet member", owner)
	}
}

// TestClusterMetricsExposed pins the observability satellite: after cluster
// traffic, the coordinator's /metrics carries the per-peer latency
// histogram family, the per-endpoint attempt counters, and the cluster.*
// counters (via the local server's stats sink).
func TestClusterMetricsExposed(t *testing.T) {
	f := startFleet(t, 3, chainSpecs(t), server.Config{MaxInFlight: 16})
	if _, err := f.coordCl.Query(context.Background(), server.Request{Dataset: "chain", Query: unionQuery}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.coordCl.Query(context.Background(), server.Request{Dataset: "chain", Query: "SELECT ?y0 WHERE E(?y0, ?y1)"}); err != nil {
		t.Fatal(err)
	}
	text, err := f.coordCl.MetricsText(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{
		"wdptd_cluster_peer_latency_seconds",
		"wdptd_client_endpoint_attempts_total",
		"wdpt_cluster_scatters_total",
		"wdpt_cluster_route_proxied_total",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("/metrics missing family %s", family)
		}
	}
	fams, err := obs.ParsePromText(text)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	if len(fams) == 0 {
		t.Fatal("empty exposition")
	}
	st := f.coord.Peers()
	for _, ps := range st.States() {
		if !ps.Healthy {
			t.Errorf("peer %s unexpectedly unhealthy", ps.Endpoint)
		}
	}
}

// TestCoordinatorStartClose pins the probe lifecycle: Start launches the
// prober, probes mark a live fleet healthy, and Close joins cleanly.
func TestCoordinatorStartClose(t *testing.T) {
	specs := chainSpecs(t)
	f := startFleet(t, 2, specs, server.Config{MaxInFlight: 4})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	f.coord.Start(ctx)
	f.coord.Peers().ProbeAll(ctx)
	if got := len(f.coord.Peers().Healthy()); got != 2 {
		t.Fatalf("healthy after probe = %d, want 2", got)
	}
	f.coord.Close()
}
