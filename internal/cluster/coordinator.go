package cluster

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"wdpt/internal/core"
	"wdpt/internal/cq"
	"wdpt/internal/obs"
	"wdpt/internal/report"
	"wdpt/internal/server"
	"wdpt/internal/server/client"
	"wdpt/internal/sparql"
)

// maxProxyBytes bounds a /v1/query request document at the coordinator,
// mirroring the single-node request limit so the coordinator never accepts
// a body a member would reject.
const maxProxyBytes = 1 << 20

// CoordinatorConfig configures a Coordinator.
type CoordinatorConfig struct {
	// Local is the coordinator's own full wdptd server: it serves every
	// non-query endpoint, evaluates queries locally when no peer can, and
	// replays any request the scatter path cannot answer with byte-identical
	// semantics. Required. The coordinator installs its metric families into
	// Local's /metrics exposition.
	Local *server.Server
	// Peers are the member endpoints (base URLs). At least one is required.
	// The deployment contract is that every member serves the same dataset
	// registry as Local (docs/CLUSTER.md).
	Peers []string
	// VirtualNodes is the ring's per-peer virtual-node count
	// (DefaultVirtualNodes when <= 0).
	VirtualNodes int
	// Peer configures health probing. Stats and Latency default to the
	// coordinator's own sinks when nil.
	Peer PeerConfig
	// HTTPClient performs proxy exchanges and health probes; nil uses a
	// client bounded by client.DefaultTimeout (never http.DefaultClient).
	HTTPClient *http.Client
}

// Coordinator is the cluster front end of a sharded wdptd fleet: an
// http.Handler that routes /v1/query by consistent-hash dataset ownership,
// scatter-gathers eligible union queries across healthy members, reports
// cluster state on /v1/cluster, and falls through to the local server for
// everything else.
//
// The response contract is byte-parity with a single node: a scattered
// union's merged body is byte-identical to what Local would serve for the
// same request, and any exchange the scatter path cannot complete cleanly
// is replayed through Local verbatim — so degraded responses come off the
// exact single-node guard ladder, not a reimplementation of it.
type Coordinator struct {
	local   *server.Server
	ring    *Ring
	peers   *Peers
	hc      *http.Client
	clients map[string]*client.Client // per-peer, keyed by normalized endpoint
	st      *obs.Stats
	latency *obs.HistVec

	// attempts and failures are the per-endpoint client accounting families
	// (client.attempts{endpoint=...}), exposed through Local's /metrics.
	attempts *obs.CounterVec
	failures *obs.CounterVec

	mux *http.ServeMux
}

// NewCoordinator builds a coordinator over the given members. Call Start to
// launch health probing and Close to stop it.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Local == nil {
		return nil, fmt.Errorf("cluster: CoordinatorConfig.Local is required")
	}
	ring := NewRing(cfg.Peers, cfg.VirtualNodes)
	if len(ring.Peers()) == 0 {
		return nil, fmt.Errorf("cluster: a coordinator needs at least one peer endpoint")
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: client.DefaultTimeout}
	}
	c := &Coordinator{
		local:    cfg.Local,
		ring:     ring,
		hc:       hc,
		st:       cfg.Local.Stats(),
		latency:  obs.NewHistVec(obs.HistClusterPeerLatency, nil, "peer", "kind", "outcome"),
		attempts: obs.NewCounterVec(obs.CVecClientEndpointAttempts, "endpoint"),
		failures: obs.NewCounterVec(obs.CVecClientEndpointFailures, "endpoint"),
		clients:  make(map[string]*client.Client),
	}
	pc := cfg.Peer
	if pc.Stats == nil {
		pc.Stats = c.st
	}
	if pc.Latency == nil {
		pc.Latency = c.latency
	}
	c.peers = NewPeers(ring.Peers(), pc)
	for _, ep := range ring.Peers() {
		c.clients[ep] = client.New(ep, hc).WithEndpointStats(c.attempts, c.failures)
	}
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("POST /v1/query", c.handleQuery)
	c.mux.HandleFunc("GET /v1/cluster", c.handleStatus)
	c.mux.Handle("/", cfg.Local)
	cfg.Local.SetMetricsExtra(func(e *obs.Exposition) {
		e.HistogramVec(c.latency, "Latency of coordinator-to-peer exchanges.")
		e.CounterVec(c.attempts, "Client attempts per peer endpoint.")
		e.CounterVec(c.failures, "Failed client attempts per peer endpoint.")
	})
	return c, nil
}

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) { c.mux.ServeHTTP(w, r) }

// Ring returns the coordinator's consistent-hash ring.
func (c *Coordinator) Ring() *Ring { return c.ring }

// Peers returns the coordinator's health-checked peer table.
func (c *Coordinator) Peers() *Peers { return c.peers }

// Start launches background health probing. Close joins it.
func (c *Coordinator) Start(ctx context.Context) { c.peers.Start(ctx) }

// Close stops health probing and waits for the prober to exit.
func (c *Coordinator) Close() { c.peers.Close() }

// Status is the GET /v1/cluster body.
type Status struct {
	// Role is always "coordinator" (members don't mount the endpoint).
	Role string `json:"role"`
	// VirtualNodes is the ring's per-peer virtual-node count.
	VirtualNodes int `json:"virtual_nodes"`
	// Peers is every member's health state, sorted by endpoint.
	Peers []PeerState `json:"peers"`
	// Datasets maps every registered dataset to its ring owner.
	Datasets map[string]string `json:"datasets"`
}

// handleStatus is GET /v1/cluster.
func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	list := c.local.Registry().List()
	names := make([]string, 0, len(list))
	for _, ds := range list {
		names = append(names, ds.Name)
	}
	writeJSON(w, http.StatusOK, Status{
		Role:         "coordinator",
		VirtualNodes: c.ring.VirtualNodes(),
		Peers:        c.peers.States(),
		Datasets:     c.ring.Assignment(names),
	})
}

// handleQuery is the coordinator's POST /v1/query: scatter-gather for
// eligible union queries, consistent-hash proxying for everything else, and
// a verbatim local replay whenever neither path can answer with
// single-node-identical bytes.
func (c *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxProxyBytes+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, server.ErrorResponse{Error: server.ErrorPayload{
			Code: "bad_request", Message: "reading request body: " + err.Error(),
		}})
		return
	}
	var req server.Request
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil || len(body) > maxProxyBytes {
		// Malformed or oversized: the local server produces the exact
		// single-node error body.
		c.replayLocal(w, r, body)
		return
	}
	if req.Mode == "" {
		req.Mode = "enumerate"
	}
	if req.Engine == "" {
		req.Engine = "auto"
	}
	wantTrace := r.URL.Query().Get("trace") == "1"
	if trees, ok := c.scatterable(&req, wantTrace); ok {
		c.scatter(w, r, &req, trees, body)
		return
	}
	c.proxy(w, r, req.Dataset, body)
}

// scatterable decides scatter-gather eligibility and parses the member
// trees. A query scatters only when the merged response is provably
// byte-identical to the single-node one: >= 2 union members, a plain
// enumeration mode (enumerate or maximal — both merge member answer sets),
// no stats or trace payloads (they embed run-local data), no candidate
// mapping, no cross-member answer cap (MaxAnswers truncation is global by
// definition and cannot be enforced per leg), and >= 2 healthy peers to
// split across.
func (c *Coordinator) scatterable(req *server.Request, wantTrace bool) ([]*core.PatternTree, bool) {
	if req.Mode != "enumerate" && req.Mode != "maximal" {
		return nil, false
	}
	if req.Stats || wantTrace || len(req.Mapping) > 0 {
		return nil, false
	}
	if req.Budget != nil && req.Budget.MaxAnswers > 0 {
		return nil, false
	}
	trimmed := strings.TrimSpace(req.Query)
	if trimmed == "" || strings.HasPrefix(strings.ToUpper(trimmed), "ANS") {
		// ANS-format queries are single trees; nothing to split.
		return nil, false
	}
	u, err := sparql.ParseUnionQuery(trimmed)
	if err != nil {
		return nil, false // the local replay serves the exact parse error
	}
	trees := u.Trees()
	if len(trees) < 2 {
		return nil, false
	}
	if bound := c.local.WidthBound(); bound > 0 {
		for _, t := range trees {
			if !t.GloballyIn(cq.TW(bound)) {
				return nil, false // local replay serves the exact 422
			}
		}
	}
	if len(c.peers.Healthy()) < 2 {
		return nil, false
	}
	return trees, true
}

// legResult is one scatter leg's outcome.
type legResult struct {
	endpoint string
	qr       *client.QueryResult
	err      error
}

// scatter fans the union members across healthy peers (round-robin over
// the sorted healthy list — deterministic assignment), gathers the per-tree
// answer sets, and merges them exactly as uwdpt.Union.Solve does: one
// MappingSet, All() or Maximal() per mode, canonical re-sort, report
// encode. Each leg is a single-tree enumerate request carrying the original
// engine, parallelism, and budget (budgets are enforced per leg — the
// documented semantic difference, docs/CLUSTER.md). If ANY leg fails to
// come back clean — transport error, non-200 status, or a degraded report —
// the whole request is replayed through the local server, which serves the
// byte-identical single-node response including the full guard fallback
// ladder.
func (c *Coordinator) scatter(w http.ResponseWriter, r *http.Request, req *server.Request, trees []*core.PatternTree, body []byte) {
	ctx := r.Context()
	healthy := c.peers.Healthy()
	c.st.Inc(obs.CtrClusterScatters)
	legs := make([]legResult, len(trees))
	var wg sync.WaitGroup
	for i, t := range trees {
		ep := healthy[i%len(healthy)]
		legReq := server.Request{
			Dataset:     req.Dataset,
			Query:       sparql.Format(t),
			Mode:        "enumerate",
			Engine:      req.Engine,
			Parallelism: req.Parallelism,
			Budget:      req.Budget,
		}
		wg.Add(1)
		go func(i int, ep string, legReq server.Request) {
			defer wg.Done()
			start := time.Now()
			qr, err := c.clients[ep].Query(ctx, legReq)
			outcome := "ok"
			switch {
			case err != nil:
				outcome = "error"
			case qr.Status != http.StatusOK:
				outcome = "degraded"
			}
			c.latency.With(ep, "scatter", outcome).Observe(time.Since(start))
			legs[i] = legResult{endpoint: ep, qr: qr, err: err}
		}(i, ep, legReq)
	}
	wg.Wait()

	set := cq.NewMappingSet()
	clean := true
	for _, leg := range legs {
		if leg.err != nil {
			c.peers.MarkFailure(leg.endpoint, leg.err)
			clean = false
			continue
		}
		// Any HTTP answer means the node is alive — health tracks nodes,
		// not query outcomes (a 504 deadline is a healthy node saying no).
		c.peers.MarkSuccess(leg.endpoint)
		if leg.qr.Status != http.StatusOK || leg.qr.Report == nil || leg.qr.Report.Degraded != nil {
			clean = false
			continue
		}
		for _, h := range leg.qr.Report.Answers {
			set.Add(h)
		}
	}
	if !clean {
		c.st.Inc(obs.CtrClusterScatterFallbacks)
		c.replayLocal(w, r, body)
		return
	}

	var answers []cq.Mapping
	if req.Mode == "maximal" {
		answers = set.Maximal()
	} else {
		answers = set.All()
	}
	rep := report.Report{
		Mode:        req.Mode,
		Engine:      req.Engine,
		Parallelism: c.local.EffectiveParallelism(req.Parallelism),
	}
	rep.SetAnswers(answers)
	var buf bytes.Buffer
	if err := report.Encode(&buf, rep); err != nil {
		writeJSON(w, http.StatusInternalServerError, server.ErrorResponse{Error: server.ErrorPayload{
			Code: "error", Message: err.Error(),
		}})
		return
	}
	w.Header().Set("X-Request-Id", requestID(r))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

// proxy forwards the request body verbatim to the dataset's ring owner,
// walking the deterministic failover order (Owners) past unhealthy or
// unreachable peers. A 503 advances without a health mark (draining is
// voluntary); a transport error marks the peer failed. When every owner is
// exhausted the request is served locally.
func (c *Coordinator) proxy(w http.ResponseWriter, r *http.Request, dataset string, body []byte) {
	ctx := r.Context()
	owners := c.ring.Owners(dataset, len(c.ring.Peers()))
	for _, ep := range owners {
		if !c.peers.IsHealthy(ep) {
			continue
		}
		start := time.Now()
		resp, err := c.forward(ctx, ep, r, body)
		if err != nil {
			c.latency.With(ep, "proxy", "error").Observe(time.Since(start))
			c.peers.MarkFailure(ep, err)
			c.st.Inc(obs.CtrClusterFailovers)
			if ctx.Err() != nil {
				break // the client hung up; stop lapping the fleet
			}
			continue
		}
		if resp.status == http.StatusServiceUnavailable {
			c.latency.With(ep, "proxy", "unavailable").Observe(time.Since(start))
			c.st.Inc(obs.CtrClusterFailovers)
			continue
		}
		c.latency.With(ep, "proxy", "ok").Observe(time.Since(start))
		c.peers.MarkSuccess(ep)
		c.st.Inc(obs.CtrClusterRouteProxied)
		for _, h := range []string{"Content-Type", "X-Request-Id", "Retry-After"} {
			if v := resp.header.Get(h); v != "" {
				w.Header().Set(h, v)
			}
		}
		w.WriteHeader(resp.status)
		_, _ = w.Write(resp.body)
		return
	}
	c.replayLocal(w, r, body)
}

// proxyResp is one fully-read upstream response.
type proxyResp struct {
	status int
	header http.Header
	body   []byte
}

// forward performs one proxy exchange with a member, preserving the
// request's path, query string (?trace=1 travels), and X-Request-Id.
func (c *Coordinator) forward(ctx context.Context, ep string, r *http.Request, body []byte) (*proxyResp, error) {
	url := ep + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if id := r.Header.Get("X-Request-Id"); id != "" {
		hreq.Header.Set("X-Request-Id", id)
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return &proxyResp{status: resp.StatusCode, header: resp.Header, body: b}, nil
}

// replayLocal serves the original request through the local server,
// re-materializing the consumed body. Every response off this path is the
// exact single-node response — error taxonomy, guard ladder, cache, and
// framing included.
func (c *Coordinator) replayLocal(w http.ResponseWriter, r *http.Request, body []byte) {
	c.st.Inc(obs.CtrClusterRouteLocal)
	r2 := r.Clone(r.Context())
	r2.Body = io.NopCloser(bytes.NewReader(body))
	r2.ContentLength = int64(len(body))
	c.local.ServeHTTP(w, r2)
}

// requestID mirrors the local server's correlation-ID rule: echo the
// client's X-Request-Id, else mint a random one. IDs never reach response
// bodies, so the randomness does not affect the byte-parity contract.
func requestID(r *http.Request) string {
	if id := strings.TrimSpace(r.Header.Get("X-Request-Id")); id != "" {
		if len(id) > 128 {
			id = id[:128]
		}
		return id
	}
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "unknown"
	}
	return hex.EncodeToString(b[:])
}

// writeJSON writes v with the report encoder's framing (two-space indent
// plus trailing newline), matching every body the server produces.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, `{"error":{"code":"error","message":"response encoding failed"}}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(data, '\n'))
}
