// Package cluster is the sharded-wdptd coordination layer: a deterministic
// consistent-hash ring for dataset-level routing, a health-checked peer
// table, and a coordinator HTTP front end that proxies queries to ring
// owners and scatter-gathers union members across peers while preserving
// the single-node byte-identical response contract (docs/CLUSTER.md).
//
// The paper's φ_cq translation (PAPER.md §5) makes every member of a Union
// an independent CQ evaluation; the coordinator exploits exactly that
// independence: members are evaluated on different nodes and the partial
// answer sets merged and canonically re-sorted, so the merged body is
// byte-identical to single-node Union.Solve.
//
// Everything here follows the repo's determinism discipline: the ring is a
// pure function of (peer list, virtual-node count), with no map-iteration
// or math/rand dependence anywhere in the routing decision.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is the per-peer virtual-node count when NewRing is
// given zero. 64 points per peer keeps the maximum/mean load ratio under
// ~1.3 for small fleets while the ring stays tiny (a few KB).
const DefaultVirtualNodes = 64

// ringPoint is one virtual node on the ring.
type ringPoint struct {
	hash uint64
	peer string
}

// Ring is a deterministic consistent-hash ring over a fixed peer list.
// Construction sorts and dedups the peers, places vnodes virtual points
// per peer at FNV-64a("peer#i"), and sorts the points by (hash, peer) —
// the peer tiebreak makes even hash collisions deterministic. Lookup is a
// binary-search successor walk; among points with the exact same hash the
// rendezvous (highest-random-weight) score of (key, peer) breaks the tie,
// so ownership never depends on map iteration, randomness, or insertion
// order. A Ring is immutable after construction and safe for concurrent
// use.
type Ring struct {
	peers  []string // sorted, deduped
	vnodes int
	points []ringPoint // sorted by (hash, peer)
}

// NewRing builds a ring over the given peers with vnodes virtual nodes per
// peer (DefaultVirtualNodes when vnodes <= 0). Peers are copied, sorted,
// and deduped; empty peer strings are dropped. A ring over zero peers is
// valid and owns nothing.
func NewRing(peers []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	uniq := make([]string, 0, len(peers))
	seen := make(map[string]bool, len(peers))
	for _, p := range peers {
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		uniq = append(uniq, p)
	}
	sort.Strings(uniq)
	r := &Ring{peers: uniq, vnodes: vnodes}
	r.points = make([]ringPoint, 0, len(uniq)*vnodes)
	for _, p := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", p, i)), peer: p})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].peer < r.points[j].peer
	})
	return r
}

// hash64 is FNV-64a with a murmur3-style finalizer: stable across
// processes and Go versions (unlike maphash or map iteration). Raw FNV-64a
// barely mixes the final input bytes — keys differing only in a trailing
// character land a few primes apart, which on a ring whose average arc is
// ~2^64/points means sequential dataset names cluster onto one owner. The
// finalizer's two multiply-xorshift rounds give full avalanche.
func hash64(s string) uint64 {
	f := fnv.New64a()
	_, _ = f.Write([]byte(s))
	h := f.Sum64()
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Peers returns the sorted, deduped peer list (copy).
func (r *Ring) Peers() []string {
	return append([]string(nil), r.peers...)
}

// VirtualNodes returns the per-peer virtual-node count.
func (r *Ring) VirtualNodes() int { return r.vnodes }

// Owner returns the peer owning key: the successor point clockwise from
// FNV-64a(key), wrapping at the top of the ring. When several points carry
// the exact successor hash, the peer with the highest rendezvous score
// hash64(key + "\x00" + peer) wins — a deterministic tiebreak that does
// not depend on vnode insertion order. Empty string on an empty ring.
func (r *Ring) Owner(key string) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns up to n distinct peers in deterministic failover order
// for key: the owner first, then the next distinct peers clockwise around
// the ring. The order is the routing contract — a coordinator that fails
// over walks this list left to right, so every coordinator in the fleet
// agrees on the fallback sequence.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.peers) {
		n = len(r.peers)
	}
	kh := hash64(key)
	// Successor: first point with hash >= kh, wrapping.
	idx := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= kh })
	if idx == len(r.points) {
		idx = 0
	}
	// Exact-hash collision group at the successor: pick by rendezvous score.
	start := idx
	if r.points[idx].hash == r.points[(idx+1)%len(r.points)].hash {
		start = r.rendezvousStart(key, idx)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)].peer
		if seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	return out
}

// rendezvousStart resolves an exact-hash collision group: among the
// contiguous run of points sharing points[idx].hash, the point whose peer
// has the highest rendezvous score for key is the effective successor.
// Ties on the score fall back to lexicographic peer order (the points are
// already peer-sorted within a hash run).
func (r *Ring) rendezvousStart(key string, idx int) int {
	h := r.points[idx].hash
	lo := idx
	for lo > 0 && r.points[lo-1].hash == h {
		lo--
	}
	hi := idx
	for hi+1 < len(r.points) && r.points[hi+1].hash == h {
		hi++
	}
	best := lo
	bestScore := hash64(key + "\x00" + r.points[lo].peer)
	for i := lo + 1; i <= hi; i++ {
		if s := hash64(key + "\x00" + r.points[i].peer); s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// Assignment returns every key's owner as a map — the bulk form used by
// rebalance checks and the /v1/cluster status endpoint.
func (r *Ring) Assignment(keys []string) map[string]string {
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		out[k] = r.Owner(k)
	}
	return out
}
