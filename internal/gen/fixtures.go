package gen

import (
	"fmt"
	"math/rand"

	"wdpt/internal/core"
	"wdpt/internal/cq"
	"wdpt/internal/db"
)

// DirectedCycleTree returns the single-node WDPT holding a directed m-cycle
// over existential variables plus V(x) with x free — a constant-free
// pattern of treewidth 2 whose WB(1)-approximation collapses the cycle.
// Used by the semantic-optimization and approximation-payoff experiments.
func DirectedCycleTree(m int) *core.PatternTree {
	atoms := []cq.Atom{cq.NewAtom("V", cq.V("x"))}
	for i := 0; i < m; i++ {
		atoms = append(atoms, cq.NewAtom("E",
			cq.V(fmt.Sprintf("c%d", i)),
			cq.V(fmt.Sprintf("c%d", (i+1)%m))))
	}
	return core.MustNew(core.NodeSpec{Atoms: atoms}, []string{"x"})
}

// SymmetricCycleTree returns the single-node WDPT holding a symmetric
// (both-directions) m-cycle plus V(x) free. For even m it folds onto a
// symmetric edge and is therefore in M(WB(1)); for odd m ≥ 3 it is not.
func SymmetricCycleTree(m int) *core.PatternTree {
	atoms := []cq.Atom{cq.NewAtom("V", cq.V("x"))}
	for i := 0; i < m; i++ {
		u := fmt.Sprintf("c%d", i)
		v := fmt.Sprintf("c%d", (i+1)%m)
		atoms = append(atoms,
			cq.NewAtom("E", cq.V(u), cq.V(v)),
			cq.NewAtom("E", cq.V(v), cq.V(u)))
	}
	return core.MustNew(core.NodeSpec{Atoms: atoms}, []string{"x"})
}

// TriangleWithPath returns a WDPT whose root holds a triangle over
// existential variables and a pendant path of the given length hanging off
// one triangle vertex, ending in the free variable x — a family of growing
// non-WB(1) trees for the approximation experiments.
func TriangleWithPath(pathLen int) *core.PatternTree {
	atoms := []cq.Atom{
		cq.NewAtom("E", cq.V("a"), cq.V("b")),
		cq.NewAtom("E", cq.V("b"), cq.V("c")),
		cq.NewAtom("E", cq.V("c"), cq.V("a")),
	}
	prev := "a"
	for i := 0; i < pathLen; i++ {
		next := fmt.Sprintf("p%d", i)
		atoms = append(atoms, cq.NewAtom("E", cq.V(prev), cq.V(next)))
		prev = next
	}
	atoms = append(atoms, cq.NewAtom("E", cq.V(prev), cq.V("x")))
	return core.MustNew(core.NodeSpec{Atoms: atoms}, []string{"x"})
}

// BipartiteDatabase returns a directed bipartite graph (edges from the left
// to the right part only) with n vertices per side and outDeg edges per
// left vertex, plus V facts. It contains no directed cycles, so cyclic
// pattern cores fail on it while their collapsed approximations fail
// immediately — the E10 payoff workload.
func BipartiteDatabase(n, outDeg int, seed int64) *db.Database {
	rng := rand.New(rand.NewSource(seed))
	d := db.New()
	for i := 0; i < n; i++ {
		left := fmt.Sprintf("l%d", i)
		d.Insert("V", left)
		d.Insert("V", fmt.Sprintf("r%d", i))
		for e := 0; e < outDeg; e++ {
			d.Insert("E", left, fmt.Sprintf("r%d", rng.Intn(n)))
		}
	}
	d.Seal()
	return d
}
