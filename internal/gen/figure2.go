package gen

import (
	"fmt"

	"wdpt/internal/core"
	"wdpt/internal/cq"
)

// The exponential blow-up family of Figure 2 / Theorem 15: pairs of WDPTs
// (p1, p2) with |p1| = O(n²) and |p2| = Ω(2ⁿ) such that p2 ∈ WB(k),
// p2 ⊑ p1, and every WDPT in WB(k) between them is at least as large as p2.

// alphaVar and zVar name the existential variables of the construction.
func alphaVar(i int) cq.Term { return cq.V(fmt.Sprintf("alpha%d", i)) }
func zVar(i int) cq.Term     { return cq.V(fmt.Sprintf("z%d", i)) }

// Figure2P1 builds p1^(n) for parameters n ≥ 1 and k ≥ 2. Its root holds a
// (k+1+n)-clique of d-atoms, putting it outside WB(k); the first leaf holds
// e(z_1, ..., z_n) and leaf i holds {a_i(x_i), b_i(z_i), c_i(α_1)}. Free
// variables are x, x_0, ..., x_n.
func Figure2P1(n, k int) *core.PatternTree {
	root := []cq.Atom{cq.NewAtom("a", cq.V("x"))}
	for i := 0; i <= k; i++ {
		root = append(root, cq.NewAtom(fmt.Sprintf("b%d", i), alphaVar(i)))
	}
	for i := 1; i <= n; i++ {
		root = append(root,
			cq.NewAtom(fmt.Sprintf("c%d", i), alphaVar(0)),
			cq.NewAtom(fmt.Sprintf("c%d", i), zVar(i)))
	}
	root = append(root,
		cq.NewAtom("d", alphaVar(0), alphaVar(0)),
		cq.NewAtom("d", alphaVar(1), alphaVar(1)))
	cliqueVars := cliqueTerms(n, k)
	for i, a := range cliqueVars {
		for j, b := range cliqueVars {
			if i != j {
				root = append(root, cq.NewAtom("d", a, b))
			}
		}
	}
	firstLeaf := core.NodeSpec{Atoms: []cq.Atom{cq.NewAtom("a0", cq.V("x0"))}}
	eArgs := make([]cq.Term, n)
	for i := 1; i <= n; i++ {
		eArgs[i-1] = zVar(i)
	}
	firstLeaf.Atoms = append(firstLeaf.Atoms, cq.NewAtom("e", eArgs...))
	children := []core.NodeSpec{firstLeaf}
	for i := 1; i <= n; i++ {
		children = append(children, core.NodeSpec{Atoms: []cq.Atom{
			cq.NewAtom(fmt.Sprintf("a%d", i), cq.V(fmt.Sprintf("x%d", i))),
			cq.NewAtom(fmt.Sprintf("b%d", i), zVar(i)),
			cq.NewAtom(fmt.Sprintf("c%d", i), alphaVar(1)),
		}})
	}
	return core.MustNew(core.NodeSpec{Atoms: root, Children: children}, figure2Free(n))
}

// Figure2P2 builds p2^(n): the root keeps only the (k+1)-clique over the
// α_i (so every subtree CQ has treewidth ≤ k), and the first leaf holds all
// 2ⁿ instantiations e(ᾱ), ᾱ ∈ {α_0, α_1}ⁿ — the unavoidable exponential
// blow-up.
func Figure2P2(n, k int) *core.PatternTree {
	root := []cq.Atom{cq.NewAtom("a", cq.V("x"))}
	for i := 0; i <= k; i++ {
		root = append(root, cq.NewAtom(fmt.Sprintf("b%d", i), alphaVar(i)))
	}
	for i := 1; i <= n; i++ {
		root = append(root, cq.NewAtom(fmt.Sprintf("c%d", i), alphaVar(0)))
	}
	var alphas []cq.Term
	for i := 0; i <= k; i++ {
		alphas = append(alphas, alphaVar(i))
	}
	for i, a := range alphas {
		for j, b := range alphas {
			if i != j {
				root = append(root, cq.NewAtom("d", a, b))
			}
		}
	}
	root = append(root,
		cq.NewAtom("d", alphaVar(0), alphaVar(0)),
		cq.NewAtom("d", alphaVar(1), alphaVar(1)))
	firstLeaf := core.NodeSpec{Atoms: []cq.Atom{cq.NewAtom("a0", cq.V("x0"))}}
	for mask := 0; mask < 1<<uint(n); mask++ {
		args := make([]cq.Term, n)
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				args[i] = alphaVar(1)
			} else {
				args[i] = alphaVar(0)
			}
		}
		firstLeaf.Atoms = append(firstLeaf.Atoms, cq.NewAtom("e", args...))
	}
	children := []core.NodeSpec{firstLeaf}
	for i := 1; i <= n; i++ {
		children = append(children, core.NodeSpec{Atoms: []cq.Atom{
			cq.NewAtom(fmt.Sprintf("a%d", i), cq.V(fmt.Sprintf("x%d", i))),
			cq.NewAtom(fmt.Sprintf("c%d", i), alphaVar(1)),
		}})
	}
	return core.MustNew(core.NodeSpec{Atoms: root, Children: children}, figure2Free(n))
}

func cliqueTerms(n, k int) []cq.Term {
	var out []cq.Term
	for i := 0; i <= k; i++ {
		out = append(out, alphaVar(i))
	}
	for i := 1; i <= n; i++ {
		out = append(out, zVar(i))
	}
	return out
}

func figure2Free(n int) []string {
	free := []string{"x"}
	for i := 0; i <= n; i++ {
		free = append(free, fmt.Sprintf("x%d", i))
	}
	return free
}
