package gen

import (
	"fmt"
	"testing"
	"testing/quick"

	"wdpt/internal/cq"
)

func TestMusicFixturesMatchPaper(t *testing.T) {
	p := MusicWDPT("x", "y", "z", "zp")
	if p.NumNodes() != 3 || len(p.Free()) != 4 {
		t.Fatalf("music tree shape wrong: %s", p)
	}
	d := MusicDatabase()
	if d.Size() != 5 {
		t.Fatalf("Example 2 database has 5 facts, got %d", d.Size())
	}
	if !d.Contains("rating", "Swim", "2") {
		t.Fatal("Swim rating missing")
	}
}

func TestMusicDatabaseLargeDeterministic(t *testing.T) {
	d1 := MusicDatabaseLarge(5, 3, 42)
	d2 := MusicDatabaseLarge(5, 3, 42)
	if d1.String() != d2.String() {
		t.Fatal("generator not deterministic for equal seeds")
	}
	d3 := MusicDatabaseLarge(5, 3, 43)
	if d1.String() == d3.String() {
		t.Fatal("different seeds should give different data")
	}
	// Every record has a band and a publication fact.
	recs := d1.Relation("recorded_by")
	if recs == nil || recs.Len() != 15 {
		t.Fatalf("expected 15 records")
	}
}

func TestGraphOracles(t *testing.T) {
	if !CompleteGraph(3).IsThreeColorable() {
		t.Fatal("K3 is 3-colorable")
	}
	if CompleteGraph(4).IsThreeColorable() {
		t.Fatal("K4 is not 3-colorable")
	}
	for n := 3; n <= 7; n++ {
		if !CycleGraph(n).IsThreeColorable() {
			t.Fatalf("C%d is 3-colorable", n)
		}
	}
	g := RandomGraph(6, 0.5, 1)
	if g.N != 6 {
		t.Fatal("vertex count wrong")
	}
	g2 := RandomGraph(6, 0.5, 1)
	if len(g.Edges) != len(g2.Edges) {
		t.Fatal("random graph not deterministic")
	}
}

func TestThreeColorInstanceShape(t *testing.T) {
	g := CycleGraph(3)
	p, d, h := ThreeColorInstance(g)
	// Root plus 3 children per edge.
	if p.NumNodes() != 1+3*len(g.Edges) {
		t.Fatalf("nodes = %d", p.NumNodes())
	}
	if d.Size() != 3 {
		t.Fatalf("database = %d facts, want c(1,1), c(2,2), c(3,3)", d.Size())
	}
	if h["x"] != "1" || len(h) != 1 {
		t.Fatalf("mapping = %v", h)
	}
	// Free variables: x plus one per (edge, color).
	if got := len(p.Free()); got != 1+3*len(g.Edges) {
		t.Fatalf("free vars = %d", got)
	}
	if !p.GloballyIn(cq.TW(1)) || !p.GloballyIn(cq.HW(1)) {
		t.Fatal("instance must be in g-TW(1) and g-HW(1)")
	}
}

func TestRandomWDPTWellDesigned(t *testing.T) {
	// MustNew validates; the property is that generation never panics and
	// respects the interface bound.
	f := func(seed int64) bool {
		p := RandomWDPT(TreeParams{MaxDepth: 3, MaxChildren: 3, InterfaceBound: 2}, seed)
		return p.NumNodes() >= 1 && p.InterfaceWidth() <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomWDPTDeterministic(t *testing.T) {
	p1 := RandomWDPT(TreeParams{}, 7)
	p2 := RandomWDPT(TreeParams{}, 7)
	if p1.String() != p2.String() {
		t.Fatal("random tree not deterministic")
	}
}

func TestRandomDatabaseParams(t *testing.T) {
	d := RandomDatabase(DBParams{DomainSize: 2, TuplesPerRel: 50}, 3)
	e := d.Relation("E")
	if e == nil {
		t.Fatal("missing E")
	}
	// Domain 2 → at most 4 distinct binary tuples despite 50 inserts.
	if e.Len() > 4 {
		t.Fatalf("domain not respected: %d tuples", e.Len())
	}
}

func TestPathAndStarTrees(t *testing.T) {
	p := PathWDPT(3)
	if p.NumNodes() != 3 || len(p.Free()) != 1 {
		t.Fatalf("path tree shape: %s", p)
	}
	if p.InterfaceWidth() != 1 || !p.LocallyIn(cq.TW(1)) {
		t.Fatal("path tree should be ℓ-TW(1) ∩ BI(1)")
	}
	s := StarWDPT(4)
	if s.NumNodes() != 5 || len(s.Free()) != 5 {
		t.Fatalf("star tree shape: %s", s)
	}
	if s.InterfaceWidth() != 1 {
		t.Fatalf("star interface = %d", s.InterfaceWidth())
	}
}

func TestChainDatabase(t *testing.T) {
	d := ChainDatabase(3)
	if !d.Contains("E", "0", "1") || !d.Contains("V", "3") {
		t.Fatal("chain database contents wrong")
	}
}

func TestLayeredDatabase(t *testing.T) {
	d := LayeredDatabase(3, 4, 2, 1)
	if !d.Contains("V", LayeredFirstVertex()) {
		t.Fatal("first vertex missing")
	}
	// Edges only go forward: no edge into layer 0.
	for _, tp := range d.Relation("E").Tuples() {
		if tp[1][:2] == "L0" {
			t.Fatalf("backward edge %v", tp)
		}
	}
	// Deterministic.
	if d.String() != LayeredDatabase(3, 4, 2, 1).String() {
		t.Fatal("not deterministic")
	}
}

func TestBipartiteDatabaseAcyclic(t *testing.T) {
	d := BipartiteDatabase(5, 3, 2)
	for _, tp := range d.Relation("E").Tuples() {
		if tp[0][0] != 'l' || tp[1][0] != 'r' {
			t.Fatalf("non-bipartite edge %v", tp)
		}
	}
}

func TestFixtureTrees(t *testing.T) {
	c4 := DirectedCycleTree(4)
	if got := len(c4.AllAtoms()); got != 5 {
		t.Fatalf("directed cycle atoms = %d", got)
	}
	if c4.GloballyIn(cq.TW(1)) {
		t.Fatal("directed 4-cycle is not TW(1)")
	}
	if !c4.GloballyIn(cq.TW(2)) {
		t.Fatal("directed 4-cycle is TW(2)")
	}
	sym := SymmetricCycleTree(3)
	if got := len(sym.AllAtoms()); got != 7 {
		t.Fatalf("symmetric cycle atoms = %d", got)
	}
	tri := TriangleWithPath(2)
	if tri.HasConstants() {
		t.Fatal("triangle fixture must be constant-free")
	}
	if got := len(tri.Free()); got != 1 || tri.Free()[0] != "x" {
		t.Fatalf("free vars = %v", tri.Free())
	}
}

func TestFigure2Shapes(t *testing.T) {
	for n := 1; n <= 4; n++ {
		for _, k := range []int{2, 3} {
			p1 := Figure2P1(n, k)
			p2 := Figure2P2(n, k)
			if p1.NumNodes() != n+2 || p2.NumNodes() != n+2 {
				t.Fatalf("n=%d k=%d: node counts %d, %d", n, k, p1.NumNodes(), p2.NumNodes())
			}
			// p2's first leaf has exactly 2^n e-atoms plus a0.
			leaf := p2.Root().Children()[0]
			if got := len(leaf.Atoms()); got != 1+(1<<uint(n)) {
				t.Fatalf("n=%d: first leaf atoms = %d", n, got)
			}
			// Free variables agree between the pair.
			if fmt.Sprint(p1.Free()) != fmt.Sprint(p2.Free()) {
				t.Fatal("free tuples differ")
			}
		}
	}
}

// TestSeedPlumbing pins the reproducibility contract of every seeded
// generator: equal seeds yield byte-identical artifacts, distinct seeds
// yield distinct ones, and no generator shares RNG state with another (two
// interleaved constructions agree with two isolated ones).
func TestSeedPlumbing(t *testing.T) {
	params := TreeParams{MaxDepth: 3, MaxChildren: 3, ConstProb: 0.2}
	if RandomWDPT(params, 7).String() != RandomWDPT(params, 7).String() {
		t.Fatal("RandomWDPT: equal seeds differ")
	}
	if RandomWDPT(params, 7).String() == RandomWDPT(params, 8).String() {
		t.Fatal("RandomWDPT: distinct seeds agree")
	}
	dbp := DBParams{DomainSize: 6, TuplesPerRel: 12}
	if RandomDatabase(dbp, 3).String() != RandomDatabase(dbp, 3).String() {
		t.Fatal("RandomDatabase: equal seeds differ")
	}
	if LayeredDatabase(3, 10, 2, 5).String() != LayeredDatabase(3, 10, 2, 5).String() {
		t.Fatal("LayeredDatabase: equal seeds differ")
	}
	if BipartiteDatabase(8, 2, 9).String() != BipartiteDatabase(8, 2, 9).String() {
		t.Fatal("BipartiteDatabase: equal seeds differ")
	}
	// Isolation: interleaving two generators must not change either result.
	wantTree := RandomWDPT(params, 11).String()
	wantDB := RandomDatabase(dbp, 11).String()
	gotTree := RandomWDPT(params, 11)
	gotDB := RandomDatabase(dbp, 11)
	if gotTree.String() != wantTree || gotDB.String() != wantDB {
		t.Fatal("generators share RNG state")
	}
}
