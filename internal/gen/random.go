package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"wdpt/internal/core"
	"wdpt/internal/cq"
	"wdpt/internal/db"
)

// TreeParams controls random WDPT generation. Well-designedness holds by
// construction: every variable a node inherits from its parent is actually
// used in the node's label, so occurrence sets stay connected.
type TreeParams struct {
	// MaxDepth is the maximum tree depth (root has depth 0).
	MaxDepth int
	// MaxChildren is the maximum number of children per node.
	MaxChildren int
	// AtomsPerNode is the maximum number of atoms per node label (at least
	// one is always generated).
	AtomsPerNode int
	// FreshVarsPerNode bounds the new variables a node introduces.
	FreshVarsPerNode int
	// InterfaceBound caps the number of variables a node may pass to its
	// children (the BI(c) parameter); 0 means unbounded.
	InterfaceBound int
	// FreeProb is the probability that a variable is free.
	FreeProb float64
	// ConstProb is the probability that an atom argument is a constant
	// (from a small fixed pool) instead of a variable. Default 0.
	ConstProb float64
	// Rels is the vocabulary; defaults to E/2 and T/3.
	Rels []RelSpec
}

// RelSpec names a relation and its arity.
type RelSpec struct {
	Name  string
	Arity int
}

func (tp TreeParams) withDefaults() TreeParams {
	if tp.MaxDepth == 0 {
		tp.MaxDepth = 2
	}
	if tp.MaxChildren == 0 {
		tp.MaxChildren = 2
	}
	if tp.AtomsPerNode == 0 {
		tp.AtomsPerNode = 2
	}
	if tp.FreshVarsPerNode == 0 {
		tp.FreshVarsPerNode = 2
	}
	if tp.FreeProb == 0 {
		tp.FreeProb = 0.4
	}
	if tp.Rels == nil {
		tp.Rels = []RelSpec{{"E", 2}, {"T", 3}}
	}
	return tp
}

// RandomWDPT generates a seeded random well-designed pattern tree.
func RandomWDPT(params TreeParams, seed int64) *core.PatternTree {
	tp := params.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	fresh := 0
	newVar := func() string {
		fresh++
		return fmt.Sprintf("v%d", fresh)
	}
	var build func(depth int, inherited []string) core.NodeSpec
	build = func(depth int, inherited []string) core.NodeSpec {
		pool := append([]string(nil), inherited...)
		nFresh := 1 + rng.Intn(tp.FreshVarsPerNode)
		for i := 0; i < nFresh; i++ {
			pool = append(pool, newVar())
		}
		nAtoms := 1 + rng.Intn(tp.AtomsPerNode)
		var atoms []cq.Atom
		used := make(map[string]bool)
		for i := 0; i < nAtoms; i++ {
			rs := tp.Rels[rng.Intn(len(tp.Rels))]
			args := make([]cq.Term, rs.Arity)
			for j := range args {
				if tp.ConstProb > 0 && rng.Float64() < tp.ConstProb {
					args[j] = cq.C(fmt.Sprint(rng.Intn(3)))
					continue
				}
				v := pool[rng.Intn(len(pool))]
				args[j] = cq.V(v)
				used[v] = true
			}
			atoms = append(atoms, cq.NewAtom(rs.Name, args...))
		}
		// Force every inherited variable into the label so occurrence sets
		// stay connected.
		for _, v := range inherited {
			if !used[v] {
				atoms = append(atoms, cq.NewAtom("E", cq.V(v), cq.V(v)))
				used[v] = true
			}
		}
		spec := core.NodeSpec{Atoms: atoms}
		if depth < tp.MaxDepth {
			var usedVars []string
			for v := range used {
				usedVars = append(usedVars, v)
			}
			// Deterministic order for reproducibility.
			sort.Strings(usedVars)
			// BI(c) bounds the number of variables shared with ALL children
			// together, so children draw their inherited variables from one
			// per-node pool of at most InterfaceBound variables.
			pool := usedVars
			if tp.InterfaceBound > 0 && len(pool) > tp.InterfaceBound {
				pool = pickDistinct(rng, usedVars, tp.InterfaceBound)
			}
			nChildren := rng.Intn(tp.MaxChildren + 1)
			for i := 0; i < nChildren; i++ {
				pass := pickDistinct(rng, pool, rng.Intn(len(pool)+1))
				spec.Children = append(spec.Children, build(depth+1, pass))
			}
		}
		return spec
	}
	rootSpec := build(0, nil)
	allVars := collectVars(rootSpec)
	var free []string
	for _, v := range allVars {
		if rng.Float64() < tp.FreeProb {
			free = append(free, v)
		}
	}
	if len(free) == 0 && len(allVars) > 0 {
		free = []string{allVars[0]}
	}
	return core.MustNew(rootSpec, free)
}

func collectVars(spec core.NodeSpec) []string {
	var atoms []cq.Atom
	var walk func(s core.NodeSpec)
	walk = func(s core.NodeSpec) {
		atoms = append(atoms, s.Atoms...)
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(spec)
	return cq.AtomsVars(atoms)
}

func pickDistinct(rng *rand.Rand, pool []string, n int) []string {
	if n >= len(pool) {
		return append([]string(nil), pool...)
	}
	perm := rng.Perm(len(pool))
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = pool[perm[i]]
	}
	sort.Strings(out)
	return out
}

// DBParams controls random database generation.
type DBParams struct {
	// DomainSize is the number of distinct constants.
	DomainSize int
	// TuplesPerRel is the number of tuples inserted per relation.
	TuplesPerRel int
	// Rels is the vocabulary; defaults to E/2 and T/3.
	Rels []RelSpec
}

// RandomDatabase generates a seeded random database.
func RandomDatabase(params DBParams, seed int64) *db.Database {
	if params.DomainSize == 0 {
		params.DomainSize = 4
	}
	if params.TuplesPerRel == 0 {
		params.TuplesPerRel = 10
	}
	if params.Rels == nil {
		params.Rels = []RelSpec{{"E", 2}, {"T", 3}}
	}
	rng := rand.New(rand.NewSource(seed))
	d := db.New()
	for _, rs := range params.Rels {
		for i := 0; i < params.TuplesPerRel; i++ {
			t := make([]string, rs.Arity)
			for j := range t {
				t[j] = fmt.Sprint(rng.Intn(params.DomainSize))
			}
			d.Insert(rs.Name, t...)
		}
	}
	d.Seal()
	return d
}

// PathWDPT builds a chain-shaped WDPT of the given depth: node i holds
// E(y_i, y_{i+1}) with y_0 free, a canonical tractable family
// (ℓ-TW(1) ∩ BI(1), hence also g-TW(3) by Proposition 2).
func PathWDPT(depth int, free ...string) *core.PatternTree {
	var build func(i int) core.NodeSpec
	build = func(i int) core.NodeSpec {
		spec := core.NodeSpec{Atoms: []cq.Atom{
			cq.NewAtom("E", cq.V(fmt.Sprintf("y%d", i)), cq.V(fmt.Sprintf("y%d", i+1))),
		}}
		if i+1 < depth {
			spec.Children = []core.NodeSpec{build(i + 1)}
		}
		return spec
	}
	if len(free) == 0 {
		free = []string{"y0"}
	}
	return core.MustNew(build(0), free)
}

// StarWDPT builds a WDPT whose root holds R(x, x) and which has width
// optional children, child i holding E(x, z_i) with z_i free — a wide
// bounded-interface family for evaluation benchmarks.
func StarWDPT(width int) *core.PatternTree {
	free := []string{"x"}
	root := core.NodeSpec{Atoms: []cq.Atom{cq.NewAtom("V", cq.V("x"))}}
	for i := 0; i < width; i++ {
		z := fmt.Sprintf("z%d", i)
		free = append(free, z)
		root.Children = append(root.Children, core.NodeSpec{
			Atoms: []cq.Atom{cq.NewAtom("E", cq.V("x"), cq.V(z))},
		})
	}
	return core.MustNew(root, free)
}

// ChainDatabase returns a database with a single path 0 -> 1 -> ... -> n
// plus V(i) facts, matching PathWDPT and StarWDPT vocabularies.
func ChainDatabase(n int) *db.Database {
	d := db.New()
	for i := 0; i < n; i++ {
		d.Insert("E", fmt.Sprint(i), fmt.Sprint(i+1))
		d.Insert("V", fmt.Sprint(i))
	}
	d.Insert("V", fmt.Sprint(n))
	d.Seal()
	return d
}
