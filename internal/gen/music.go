// Package gen provides workload generators for tests, examples, and the
// benchmark harness: the paper's running examples (Figure 1's music WDPT),
// the hardness reductions from the appendix (3-colorability, Proposition 3),
// the exponential blow-up family of Figure 2 / Theorem 15, and seeded random
// WDPTs and databases with controlled structural parameters.
package gen

import (
	"fmt"
	"math/rand"

	"wdpt/internal/core"
	"wdpt/internal/cq"
	"wdpt/internal/db"
)

// MusicWDPT returns the WDPT of Figure 1 (query (1) of Example 1) over a
// relational vocabulary:
//
//	(recorded_by(x,y) AND published(x,"after_2010"))
//	   OPT rating(x,z)) OPT formed_in(y,z')
//
// with the given free variables (Example 1 uses all of x, y, z, zp;
// Example 3 projects to a subset).
func MusicWDPT(free ...string) *core.PatternTree {
	return core.MustNew(core.NodeSpec{
		Atoms: []cq.Atom{
			cq.NewAtom("recorded_by", cq.V("x"), cq.V("y")),
			cq.NewAtom("published", cq.V("x"), cq.C("after_2010")),
		},
		Children: []core.NodeSpec{
			{Atoms: []cq.Atom{cq.NewAtom("rating", cq.V("x"), cq.V("z"))}},
			{Atoms: []cq.Atom{cq.NewAtom("formed_in", cq.V("y"), cq.V("zp"))}},
		},
	}, free)
}

// MusicDatabase returns the database of Example 2.
func MusicDatabase() *db.Database {
	d := db.New()
	d.Insert("recorded_by", "Our_love", "Caribou")
	d.Insert("published", "Our_love", "after_2010")
	d.Insert("recorded_by", "Swim", "Caribou")
	d.Insert("published", "Swim", "after_2010")
	d.Insert("rating", "Swim", "2")
	d.Seal()
	return d
}

// MusicDatabaseLarge generates a synthetic music database with nBands bands
// and recordsPerBand records each; a fraction of records carry a rating and
// a fraction of bands a founding year, so optional matching is exercised on
// all paths. Deterministic for a given seed.
func MusicDatabaseLarge(nBands, recordsPerBand int, seed int64) *db.Database {
	rng := rand.New(rand.NewSource(seed))
	d := db.New()
	for b := 0; b < nBands; b++ {
		band := fmt.Sprintf("band%d", b)
		if rng.Intn(3) != 0 {
			d.Insert("formed_in", band, fmt.Sprint(1960+rng.Intn(60)))
		}
		for r := 0; r < recordsPerBand; r++ {
			rec := fmt.Sprintf("rec%d_%d", b, r)
			d.Insert("recorded_by", rec, band)
			if rng.Intn(2) == 0 {
				d.Insert("published", rec, "after_2010")
			} else {
				d.Insert("published", rec, "before_2010")
			}
			if rng.Intn(2) == 0 {
				d.Insert("rating", rec, fmt.Sprint(1+rng.Intn(10)))
			}
		}
	}
	d.Seal()
	return d
}
