package gen

import (
	"fmt"
	"math/rand"

	"wdpt/internal/db"
)

// LayeredDatabase builds a layered directed graph: layers × perLayer
// vertices, each vertex with outDeg random edges into the next layer, plus
// V(v) facts. Homomorphism searches for depth-d path queries fan out as
// outDeg^d on it, while its treewidth-1 structure keeps decomposition-guided
// evaluation linear — the workload behind the E1 and E9 sweeps.
func LayeredDatabase(layers, perLayer, outDeg int, seed int64) *db.Database {
	rng := rand.New(rand.NewSource(seed))
	d := db.New()
	name := func(layer, i int) string { return fmt.Sprintf("L%d_%d", layer, i) }
	for l := 0; l < layers; l++ {
		for i := 0; i < perLayer; i++ {
			d.Insert("V", name(l, i))
			if l+1 < layers {
				for e := 0; e < outDeg; e++ {
					d.Insert("E", name(l, i), name(l+1, rng.Intn(perLayer)))
				}
			}
		}
	}
	d.Seal()
	return d
}

// LayeredFirstVertex returns the canonical start vertex of LayeredDatabase.
func LayeredFirstVertex() string { return "L0_0" }
