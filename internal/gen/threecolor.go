package gen

import (
	"fmt"
	"math/rand"

	"wdpt/internal/core"
	"wdpt/internal/cq"
	"wdpt/internal/db"
)

// The 3-colorability reduction from the proof of Proposition 3: EVAL is
// NP-hard already for g-TW(1) WDPTs. Given an undirected graph G = (V, E),
// the reduction produces a WDPT p, a fixed 3-element database D, and a
// mapping h with h(x) = 1, such that h ∈ p(D) iff G is 3-colorable.

// Graph is a small undirected graph given by its vertex count and edge list.
type Graph struct {
	N     int
	Edges [][2]int
}

// RandomGraph returns a random graph with n vertices where each edge is
// present with probability p. Deterministic for a given seed.
func RandomGraph(n int, p float64, seed int64) Graph {
	rng := rand.New(rand.NewSource(seed))
	g := Graph{N: n}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.Edges = append(g.Edges, [2]int{i, j})
			}
		}
	}
	return g
}

// CycleGraph returns the n-cycle, which is 3-colorable for every n ≥ 3; use
// CompleteGraph(4) for a non-3-colorable case.
func CycleGraph(n int) Graph {
	g := Graph{N: n}
	for i := 0; i < n; i++ {
		g.Edges = append(g.Edges, [2]int{i, (i + 1) % n})
	}
	return g
}

// CompleteGraph returns K_n: 3-colorable iff n ≤ 3.
func CompleteGraph(n int) Graph {
	g := Graph{N: n}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.Edges = append(g.Edges, [2]int{i, j})
		}
	}
	return g
}

// IsThreeColorable decides 3-colorability by backtracking; the reference
// oracle for the reduction.
func (g Graph) IsThreeColorable() bool {
	adj := make([][]int, g.N)
	for _, e := range g.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	color := make([]int, g.N)
	var rec func(v int) bool
	rec = func(v int) bool {
		if v == g.N {
			return true
		}
		for c := 1; c <= 3; c++ {
			ok := true
			for _, u := range adj[v] {
				if color[u] == c {
					ok = false
					break
				}
			}
			if ok {
				color[v] = c
				if rec(v + 1) {
					return true
				}
				color[v] = 0
			}
		}
		return false
	}
	return rec(0)
}

// ThreeColorInstance builds the Proposition 3 instance for g: a WDPT
// p ∈ g-TW(1) ∩ g-HW(1), the 3-element database D = {c(1,1), c(2,2),
// c(3,3)}, and the mapping h = {x -> 1}, such that h ∈ p(D) iff g is
// 3-colorable.
//
// The root holds c(u_i, u_i) for every vertex i plus c(x, x); for every
// edge e_j = {a, b} and color k there is a child with label
// {c(u_a, k), c(u_b, k), c(x_j_k, x_j_k)} whose x_j_k is free. The free
// variables are x and all x_j_k. A maximal homomorphism assigning colors to
// the u_i avoids every child iff the assignment is a proper coloring, and
// exactly then is the answer defined on x alone.
func ThreeColorInstance(g Graph) (*core.PatternTree, *db.Database, cq.Mapping) {
	rootAtoms := []cq.Atom{cq.NewAtom("c", cq.V("x"), cq.V("x"))}
	for i := 0; i < g.N; i++ {
		u := cq.V(fmt.Sprintf("u%d", i))
		rootAtoms = append(rootAtoms, cq.NewAtom("c", u, u))
	}
	free := []string{"x"}
	var children []core.NodeSpec
	for j, e := range g.Edges {
		for k := 1; k <= 3; k++ {
			xjk := fmt.Sprintf("x%d_%d", j, k)
			free = append(free, xjk)
			children = append(children, core.NodeSpec{Atoms: []cq.Atom{
				cq.NewAtom("c", cq.V(fmt.Sprintf("u%d", e[0])), cq.C(fmt.Sprint(k))),
				cq.NewAtom("c", cq.V(fmt.Sprintf("u%d", e[1])), cq.C(fmt.Sprint(k))),
				cq.NewAtom("c", cq.V(xjk), cq.V(xjk)),
			}})
		}
	}
	p := core.MustNew(core.NodeSpec{Atoms: rootAtoms, Children: children}, free)
	d := db.New()
	d.Insert("c", "1", "1")
	d.Insert("c", "2", "2")
	d.Insert("c", "3", "3")
	d.Seal()
	return p, d, cq.Mapping{"x": "1"}
}
