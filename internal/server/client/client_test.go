package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"wdpt/internal/obs"
	"wdpt/internal/server"
)

// throttlingServer serves retryable statuses for the first fail requests,
// then a fixed 200 JSON body, recording every arrival.
func throttlingServer(t *testing.T, fail int, status int, retryAfter string, body string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	s := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := hits.Add(1)
		if n <= int64(fail) {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.WriteHeader(status)
			_, _ = w.Write([]byte(`{"error":{"code":"overloaded","message":"busy"}}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(body))
	}))
	t.Cleanup(s.Close)
	return s, &hits
}

// pinned installs a deterministic sleep/jitter pair: jitter always returns
// 1.0 (so each backoff equals its full step, no randomness) and sleep
// records the requested delays instead of waiting.
func pinned(c *Client) (*Client, *[]time.Duration) {
	out := *c
	var slept []time.Duration
	out.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return ctx.Err()
	}
	out.jitter = func() float64 { return 1.0 }
	return &out, &slept
}

func TestRetryScheduleDeterministic(t *testing.T) {
	srv, hits := throttlingServer(t, 3, http.StatusTooManyRequests, "", `{"status":"ok","version":1}`)
	st := obs.NewStats()
	c, slept := pinned(New(srv.URL, nil).WithStats(st).WithRetry(RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    2 * time.Second,
	}))
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatalf("Health with retries: %v", err)
	}
	if got := hits.Load(); got != 4 {
		t.Errorf("server saw %d requests, want 4 (3 throttled + 1 success)", got)
	}
	// With jitter pinned to 1.0 the schedule is exactly the doubling
	// ladder: 100ms, 200ms, 400ms.
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond}
	if len(*slept) != len(want) {
		t.Fatalf("slept %v, want %v", *slept, want)
	}
	for i, d := range want {
		if (*slept)[i] != d {
			t.Errorf("backoff %d = %v, want %v", i, (*slept)[i], d)
		}
	}
	snap := st.Snapshot()
	if snap["client.attempts"] != 4 || snap["client.retries"] != 3 || snap["client.retry_giveups"] != 0 {
		t.Errorf("counters = attempts %d retries %d giveups %d, want 4/3/0",
			snap["client.attempts"], snap["client.retries"], snap["client.retry_giveups"])
	}
}

func TestRetryHonorsRetryAfter(t *testing.T) {
	srv, _ := throttlingServer(t, 1, http.StatusTooManyRequests, "1", `{"status":"ok","version":1}`)
	c, slept := pinned(New(srv.URL, nil).WithRetry(RetryPolicy{MaxAttempts: 2, BaseDelay: 10 * time.Millisecond}))
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatalf("Health: %v", err)
	}
	// Retry-After: 1 (second) dominates the 10ms backoff step.
	if len(*slept) != 1 || (*slept)[0] != time.Second {
		t.Errorf("slept %v, want [1s]", *slept)
	}
}

func TestRetryCapsAtMaxDelay(t *testing.T) {
	srv, _ := throttlingServer(t, 6, http.StatusServiceUnavailable, "", `{"status":"ok","version":1}`)
	c, slept := pinned(New(srv.URL, nil).WithRetry(RetryPolicy{
		MaxAttempts: 7,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    500 * time.Millisecond,
	}))
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatalf("Health: %v", err)
	}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		500 * time.Millisecond, 500 * time.Millisecond, 500 * time.Millisecond,
	}
	if len(*slept) != len(want) {
		t.Fatalf("slept %v, want %v", *slept, want)
	}
	for i, d := range want {
		if (*slept)[i] != d {
			t.Errorf("backoff %d = %v, want %v", i, (*slept)[i], d)
		}
	}
}

func TestRetryGivesUpAndCounts(t *testing.T) {
	srv, hits := throttlingServer(t, 100, http.StatusTooManyRequests, "", "")
	st := obs.NewStats()
	c, _ := pinned(New(srv.URL, nil).WithStats(st).WithRetry(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}))
	if _, err := c.Health(context.Background()); err == nil {
		t.Fatal("Health on a permanently throttled server succeeded")
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3", got)
	}
	snap := st.Snapshot()
	if snap["client.attempts"] != 3 || snap["client.retries"] != 2 || snap["client.retry_giveups"] != 1 {
		t.Errorf("counters = attempts %d retries %d giveups %d, want 3/2/1",
			snap["client.attempts"], snap["client.retries"], snap["client.retry_giveups"])
	}
}

func TestRetryDisabledByDefault(t *testing.T) {
	srv, hits := throttlingServer(t, 100, http.StatusTooManyRequests, "2", "")
	st := obs.NewStats()
	c, slept := pinned(New(srv.URL, nil).WithStats(st))
	if _, err := c.Health(context.Background()); err == nil {
		t.Fatal("Health on a throttled server succeeded without retries")
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("server saw %d requests, want 1 (no retries by default)", got)
	}
	if len(*slept) != 0 {
		t.Errorf("client slept %v without a retry policy", *slept)
	}
	snap := st.Snapshot()
	if snap["client.attempts"] != 1 || snap["client.retries"] != 0 || snap["client.retry_giveups"] != 0 {
		t.Errorf("counters = attempts %d retries %d giveups %d, want 1/0/0",
			snap["client.attempts"], snap["client.retries"], snap["client.retry_giveups"])
	}
}

func TestRetryQueryReturnsThrottledResultAsData(t *testing.T) {
	srv, hits := throttlingServer(t, 100, http.StatusTooManyRequests, "1", "")
	c, _ := pinned(New(srv.URL, nil).WithRetry(RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond}))
	qr, err := c.Query(context.Background(), server.Request{Dataset: "d", Query: "SELECT ?x WHERE r(?x)"})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if qr.Status != http.StatusTooManyRequests {
		t.Errorf("Query status = %d, want 429", qr.Status)
	}
	if qr.Err == nil || qr.Err.Code != "overloaded" {
		t.Errorf("Query error payload = %+v, want code overloaded", qr.Err)
	}
	if qr.RetryAfter != "1" {
		t.Errorf("RetryAfter = %q, want 1", qr.RetryAfter)
	}
	if got := hits.Load(); got != 2 {
		t.Errorf("server saw %d requests, want 2", got)
	}
}

func TestRetryNonRetryableStatusReturnsImmediately(t *testing.T) {
	srv, hits := throttlingServer(t, 100, http.StatusBadRequest, "", "")
	c, slept := pinned(New(srv.URL, nil).WithRetry(RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}))
	if _, err := c.Health(context.Background()); err == nil {
		t.Fatal("Health on a 400-serving endpoint succeeded")
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("server saw %d requests, want 1 (400 is not retryable)", got)
	}
	if len(*slept) != 0 {
		t.Errorf("client slept %v on a non-retryable status", *slept)
	}
}

func TestRetryStopsOnCanceledContext(t *testing.T) {
	srv, hits := throttlingServer(t, 100, http.StatusTooManyRequests, "", "")
	base := New(srv.URL, nil).WithRetry(RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond})
	c := *base
	c.jitter = func() float64 { return 0 }
	ctx, cancel := context.WithCancel(context.Background())
	c.sleep = func(ctx context.Context, d time.Duration) error {
		cancel() // the cancellation lands while backing off
		return ctx.Err()
	}
	if _, err := c.Health(ctx); err == nil {
		t.Fatal("Health survived a context cancellation during backoff")
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("server saw %d requests, want 1 (canceled during first backoff)", got)
	}
}
