package client

import (
	"context"
	"fmt"
	"net/http"
	"sync"

	"wdpt/internal/obs"
	"wdpt/internal/server"
)

// Multi is a failover client over a fixed set of wdptd endpoints. It keeps
// one Client per endpoint (sorted, deduped — the same normalization the
// cluster ring applies, so "the next endpoint" means the same thing
// everywhere) and a sticky cursor: requests go to the current endpoint
// until an exchange fails at the transport level or the endpoint answers
// 503, then the cursor advances to the next endpoint and the request is
// retried there. A full lap without success returns the last failure.
//
// Failover is deliberately narrower than retry: per-endpoint retry (429
// backoff, Retry-After) stays inside each endpoint's Client under its
// RetryPolicy; Multi only moves between endpoints, and only on signals
// that mean "this node cannot take requests" — a 504 deadline or 413
// budget trip is a query outcome served by a healthy node and is returned
// as data, never failed over (re-running a tripped query on another node
// would just trip again, slower).
type Multi struct {
	clients []*Client // aligned with endpoints, sorted by base URL
	st      *obs.Stats

	mu  sync.Mutex
	cur int
}

// NewMulti builds a failover client over the given endpoints. A nil
// *http.Client follows New's defaulting (a DefaultTimeout-bounded client).
// At least one endpoint is required.
func NewMulti(endpoints []string, hc *http.Client) (*Multi, error) {
	uniq := make(map[string]bool, len(endpoints))
	var clients []*Client
	for _, ep := range endpoints {
		c := New(ep, hc)
		if c.base == "" || uniq[c.base] {
			continue
		}
		uniq[c.base] = true
		clients = append(clients, c)
	}
	if len(clients) == 0 {
		return nil, fmt.Errorf("client: NewMulti requires at least one endpoint")
	}
	for i := 1; i < len(clients); i++ {
		for j := i; j > 0 && clients[j-1].base > clients[j].base; j-- {
			clients[j-1], clients[j] = clients[j], clients[j-1]
		}
	}
	return &Multi{clients: clients, st: obs.NewStats()}, nil
}

// WithRetry returns a copy whose per-endpoint clients retry throttled
// responses under the given policy.
func (m *Multi) WithRetry(p RetryPolicy) *Multi {
	return m.derive(func(c *Client) *Client { return c.WithRetry(p) })
}

// WithStats returns a copy that counts the aggregate client.* counters
// (including client.failovers) into st.
func (m *Multi) WithStats(st *obs.Stats) *Multi {
	out := m.derive(func(c *Client) *Client { return c.WithStats(st) })
	out.st = st
	return out
}

// WithEndpointStats returns a copy whose per-endpoint clients record their
// attempts and failures into the given labeled families.
func (m *Multi) WithEndpointStats(attempts, failures *obs.CounterVec) *Multi {
	return m.derive(func(c *Client) *Client { return c.WithEndpointStats(attempts, failures) })
}

// derive copies the Multi with each client mapped through f, resetting the
// cursor (derived copies are independent).
func (m *Multi) derive(f func(*Client) *Client) *Multi {
	clients := make([]*Client, len(m.clients))
	for i, c := range m.clients {
		clients[i] = f(c)
	}
	return &Multi{clients: clients, st: m.st}
}

// Endpoints returns the endpoint base URLs in sorted order.
func (m *Multi) Endpoints() []string {
	out := make([]string, len(m.clients))
	for i, c := range m.clients {
		out[i] = c.base
	}
	return out
}

// Current returns the endpoint the cursor currently prefers.
func (m *Multi) Current() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.clients[m.cur].base
}

// failoverResult classifies one exchange for the failover loop.
func failoverResult(qr *QueryResult, err error) bool {
	if err != nil {
		return true // transport/decoding failure: the endpoint gave no answer
	}
	return qr.Status == http.StatusServiceUnavailable
}

// Query posts req to the current endpoint, failing over to the next on
// transport errors and 503s. Like Client.Query, a non-2xx status from a
// live endpoint is data, not an error.
func (m *Multi) Query(ctx context.Context, req server.Request) (*QueryResult, error) {
	m.mu.Lock()
	start := m.cur
	m.mu.Unlock()
	var (
		lastQR  *QueryResult
		lastErr error
	)
	for i := 0; i < len(m.clients); i++ {
		idx := (start + i) % len(m.clients)
		c := m.clients[idx]
		qr, err := c.Query(ctx, req)
		if !failoverResult(qr, err) {
			m.mu.Lock()
			m.cur = idx
			m.mu.Unlock()
			return qr, err
		}
		lastQR, lastErr = qr, err
		if ctx.Err() != nil {
			break // cancelled: stop lapping the fleet
		}
		if i+1 < len(m.clients) {
			m.st.Inc(obs.CtrClientFailovers)
		}
	}
	return lastQR, lastErr
}
