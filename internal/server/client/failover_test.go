package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"

	"wdpt/internal/obs"
	"wdpt/internal/server"
)

// okServer serves a fixed 200 report body, counting arrivals.
func okServer(t *testing.T, body string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	s := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(body))
	}))
	t.Cleanup(s.Close)
	return s, &hits
}

const reportBody = `{"mode":"enumerate","engine":"auto","answer_count":0}`

func TestEndpointStatsSplitPerEndpoint(t *testing.T) {
	a, _ := okServer(t, reportBody)
	attempts := obs.NewCounterVec(obs.CVecClientEndpointAttempts, "endpoint")
	failures := obs.NewCounterVec(obs.CVecClientEndpointFailures, "endpoint")

	good := New(a.URL, nil).WithEndpointStats(attempts, failures)
	if _, err := good.Query(context.Background(), server.Request{Dataset: "d", Query: "q"}); err != nil {
		t.Fatalf("Query: %v", err)
	}

	// A closed server: every attempt is a transport failure.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close()
	bad := New(deadURL, nil).WithEndpointStats(attempts, failures)
	if _, err := bad.Query(context.Background(), server.Request{Dataset: "d", Query: "q"}); err == nil {
		t.Fatal("Query against closed server: want transport error")
	}

	if got := attempts.Get(a.URL); got != 1 {
		t.Fatalf("attempts{%s} = %d, want 1", a.URL, got)
	}
	if got := failures.Get(a.URL); got != 0 {
		t.Fatalf("failures{%s} = %d, want 0", a.URL, got)
	}
	if got := attempts.Get(deadURL); got != 1 {
		t.Fatalf("attempts{%s} = %d, want 1", deadURL, got)
	}
	if got := failures.Get(deadURL); got != 1 {
		t.Fatalf("failures{%s} = %d, want 1", deadURL, got)
	}
}

func TestEndpointFailureCounts5xxAndThrottle(t *testing.T) {
	srv, _ := throttlingServer(t, 1, http.StatusServiceUnavailable, "", reportBody)
	attempts := obs.NewCounterVec(obs.CVecClientEndpointAttempts, "endpoint")
	failures := obs.NewCounterVec(obs.CVecClientEndpointFailures, "endpoint")
	c, _ := pinned(New(srv.URL, nil).WithEndpointStats(attempts, failures).WithRetry(RetryPolicy{MaxAttempts: 3}))
	if _, err := c.Query(context.Background(), server.Request{Dataset: "d", Query: "q"}); err != nil {
		t.Fatalf("Query: %v", err)
	}
	// Attempt 1 hit the 503 (a failure), attempt 2 succeeded.
	if got := attempts.Get(srv.URL); got != 2 {
		t.Fatalf("attempts = %d, want 2", got)
	}
	if got := failures.Get(srv.URL); got != 1 {
		t.Fatalf("failures = %d, want 1", got)
	}
}

func TestMultiNormalizesAndSortsEndpoints(t *testing.T) {
	m, err := NewMulti([]string{"http://b:1/", "http://a:1", "http://b:1", ""}, nil)
	if err != nil {
		t.Fatalf("NewMulti: %v", err)
	}
	if got := m.Endpoints(); !reflect.DeepEqual(got, []string{"http://a:1", "http://b:1"}) {
		t.Fatalf("Endpoints = %v", got)
	}
	if _, err := NewMulti(nil, nil); err == nil {
		t.Fatal("NewMulti(nil) should fail")
	}
}

func TestMultiFailsOverOnTransportError(t *testing.T) {
	live, liveHits := okServer(t, reportBody)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close()

	st := obs.NewStats()
	m, err := NewMulti([]string{deadURL, live.URL}, nil)
	if err != nil {
		t.Fatalf("NewMulti: %v", err)
	}
	m = m.WithStats(st)
	// Force the cursor onto the dead endpoint regardless of sort order.
	for i, c := range m.clients {
		if c.base == deadURL {
			m.cur = i
		}
	}

	qr, err := m.Query(context.Background(), server.Request{Dataset: "d", Query: "q"})
	if err != nil {
		t.Fatalf("Query after failover: %v", err)
	}
	if qr.Status != http.StatusOK {
		t.Fatalf("status = %d", qr.Status)
	}
	if liveHits.Load() != 1 {
		t.Fatalf("live endpoint hits = %d, want 1", liveHits.Load())
	}
	if got := st.Get(obs.CtrClientFailovers); got != 1 {
		t.Fatalf("client.failovers = %d, want 1", got)
	}
	// The cursor is sticky: the next request goes straight to the live one.
	if _, err := m.Query(context.Background(), server.Request{Dataset: "d", Query: "q"}); err != nil {
		t.Fatalf("second Query: %v", err)
	}
	if liveHits.Load() != 2 {
		t.Fatalf("live endpoint hits = %d, want 2 (cursor not sticky)", liveHits.Load())
	}
	if got := m.Current(); got != live.URL {
		t.Fatalf("Current = %q, want %q", got, live.URL)
	}
}

func TestMultiFailsOverOn503ButNotOn504(t *testing.T) {
	unavailable := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(`{"error":{"code":"shutting_down","message":"draining"}}`))
	}))
	t.Cleanup(unavailable.Close)
	live, _ := okServer(t, reportBody)

	m, err := NewMulti([]string{unavailable.URL, live.URL}, nil)
	if err != nil {
		t.Fatalf("NewMulti: %v", err)
	}
	for i, c := range m.clients {
		if c.base == unavailable.URL {
			m.cur = i
		}
	}
	qr, err := m.Query(context.Background(), server.Request{Dataset: "d", Query: "q"})
	if err != nil || qr.Status != http.StatusOK {
		t.Fatalf("Query = %v status %v, want 200 via failover", err, qr)
	}

	// 504 is a query outcome (deadline trip), not a node failure: no failover.
	deadline := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusGatewayTimeout)
		_, _ = w.Write([]byte(`{"error":{"code":"deadline","message":"budget exceeded"}}`))
	}))
	t.Cleanup(deadline.Close)
	m2, err := NewMulti([]string{deadline.URL, live.URL}, nil)
	if err != nil {
		t.Fatalf("NewMulti: %v", err)
	}
	for i, c := range m2.clients {
		if c.base == deadline.URL {
			m2.cur = i
		}
	}
	qr, err = m2.Query(context.Background(), server.Request{Dataset: "d", Query: "q"})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if qr.Status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 returned as data", qr.Status)
	}
}

func TestMultiAllEndpointsDownReturnsLastFailure(t *testing.T) {
	d1 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	d2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	u1, u2 := d1.URL, d2.URL
	d1.Close()
	d2.Close()
	m, err := NewMulti([]string{u1, u2}, nil)
	if err != nil {
		t.Fatalf("NewMulti: %v", err)
	}
	if _, err := m.Query(context.Background(), server.Request{Dataset: "d", Query: "q"}); err == nil {
		t.Fatal("want error when every endpoint is down")
	}
}

func TestNewDefaultsToTimeoutBearingClient(t *testing.T) {
	c := New("http://example.invalid", nil)
	if c.hc == http.DefaultClient {
		t.Fatal("New(nil) must not use http.DefaultClient")
	}
	if c.hc.Timeout == 0 {
		t.Fatal("New(nil) client must carry a non-zero Timeout")
	}
}
