// Package client is a typed Go client for the wdptd HTTP API. It is used by
// the integration and load tests in internal/server and by anything that
// wants to talk to a running wdptd without hand-rolling requests; the raw
// response body is preserved on every query so callers can assert the
// byte-identical report contract, not just the decoded fields.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"wdpt/internal/obs"
	"wdpt/internal/report"
	"wdpt/internal/server"
)

// Client talks to one wdptd base URL. Retrying of throttled responses is
// off by default; derive a retrying copy with WithRetry.
type Client struct {
	base   string
	hc     *http.Client
	policy RetryPolicy
	st     *obs.Stats
	// attempts and failures split the attempt counters per endpoint
	// (labeled by base URL), so a fleet's metrics never conflate peers.
	// Nil is the disabled state; derive with WithEndpointStats.
	attempts *obs.CounterVec
	failures *obs.CounterVec
	// sleep and jitter are the backoff's injectable seams: tests replace
	// them to pin the retry schedule without waiting or randomness.
	sleep  func(ctx context.Context, d time.Duration) error
	jitter func() float64
}

// DefaultTimeout bounds one HTTP exchange when New is given a nil
// *http.Client. It is a transport safety net, not a query budget — request
// deadlines travel in the context, and evaluation budgets in the request
// document — so it is generous; its job is only to keep a hung peer from
// pinning a connection forever (wdptlint R17).
const DefaultTimeout = 5 * time.Minute

// New builds a client for the given base URL (e.g. "http://127.0.0.1:8080").
// A nil *http.Client uses a client with DefaultTimeout (never the
// timeout-less http.DefaultClient).
func New(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: DefaultTimeout}
	}
	return &Client{
		base:   strings.TrimRight(base, "/"),
		hc:     hc,
		st:     obs.NewStats(),
		sleep:  defaultSleep,
		jitter: defaultJitter,
	}
}

// Base returns the client's base URL.
func (c *Client) Base() string { return c.base }

// QueryResult is one /v1/query exchange: the HTTP status, the raw body
// (byte-identical to wdpteval -json output on success), and whichever of
// Report / Err the status implies.
type QueryResult struct {
	// Status is the HTTP status code (200, 206 answer-capped, 413, 504, ...).
	Status int
	// Body is the raw response body, exactly as served.
	Body []byte
	// Report is the decoded report for 200 and 206 responses.
	Report *report.Report
	// Err is the decoded typed error payload for every other status (nil if
	// the body was not an ErrorResponse).
	Err *server.ErrorPayload
	// RetryAfter is the Retry-After header, set on 429 rejections.
	RetryAfter string
}

// Query posts req to /v1/query. A non-2xx status is not an error — the
// taxonomy is part of the API — so err is non-nil only for transport or
// decoding failures. Under a retry policy (WithRetry), 429 and 503
// responses are retried with jittered exponential backoff honoring
// Retry-After; when the budget runs out, the last throttled result is
// returned as data, like any other non-2xx.
func (c *Client) Query(ctx context.Context, req server.Request) (*QueryResult, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: encoding request: %w", err)
	}
	var qr *QueryResult
	err = c.withRetry(ctx, func() (int, string, error) {
		var aerr error
		qr, aerr = c.queryOnce(ctx, payload)
		if aerr != nil {
			return 0, "", aerr
		}
		return qr.Status, qr.RetryAfter, nil
	})
	if err != nil {
		return nil, err
	}
	return qr, nil
}

// queryOnce performs a single /v1/query exchange.
func (c *Client) queryOnce(ctx context.Context, payload []byte) (*QueryResult, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/query", bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("client: building request: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("client: POST /v1/query: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("client: reading response: %w", err)
	}
	qr := &QueryResult{Status: resp.StatusCode, Body: body, RetryAfter: resp.Header.Get("Retry-After")}
	switch resp.StatusCode {
	case http.StatusOK, http.StatusPartialContent:
		var rep report.Report
		if err := json.Unmarshal(body, &rep); err != nil {
			return nil, fmt.Errorf("client: decoding report: %w", err)
		}
		qr.Report = &rep
	default:
		var er server.ErrorResponse
		if err := json.Unmarshal(body, &er); err == nil {
			qr.Err = &er.Error
		}
	}
	return qr, nil
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (*server.Health, error) {
	var h server.Health
	if err := c.getJSON(ctx, http.MethodGet, "/healthz", &h); err != nil {
		return nil, err
	}
	return &h, nil
}

// Datasets fetches /v1/datasets.
func (c *Client) Datasets(ctx context.Context) (*server.DatasetList, error) {
	var l server.DatasetList
	if err := c.getJSON(ctx, http.MethodGet, "/v1/datasets", &l); err != nil {
		return nil, err
	}
	return &l, nil
}

// Metrics fetches the /metrics.json counter snapshot (the JSON twin of the
// Prometheus exposition at /metrics).
func (c *Client) Metrics(ctx context.Context) (map[string]int64, error) {
	var m map[string]int64
	if err := c.getJSON(ctx, http.MethodGet, "/metrics.json", &m); err != nil {
		return nil, err
	}
	return m, nil
}

// MetricsText fetches the Prometheus text exposition at /metrics, raw.
// Callers parse it with obs.ParsePromText.
func (c *Client) MetricsText(ctx context.Context) (string, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", fmt.Errorf("client: building request: %w", err)
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return "", fmt.Errorf("client: GET /metrics: %w", err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("client: reading response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("client: GET /metrics: unexpected status %d", resp.StatusCode)
	}
	return string(body), nil
}

// Reload posts /admin/reload and returns the new registry version.
func (c *Client) Reload(ctx context.Context) (int64, error) {
	var res server.ReloadResult
	if err := c.getJSON(ctx, http.MethodPost, "/admin/reload", &res); err != nil {
		return 0, err
	}
	return res.Version, nil
}

// Snapshot posts /admin/snapshot and returns the registry version the
// persisted snapshots capture plus the written file names.
func (c *Client) Snapshot(ctx context.Context) (*server.SnapshotResult, error) {
	var res server.SnapshotResult
	if err := c.getJSON(ctx, http.MethodPost, "/admin/snapshot", &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// getJSON performs a bodyless exchange and decodes a 200 response into out;
// any other status is surfaced as an error carrying the typed payload when
// one was served. Under a retry policy, throttled statuses are retried
// like Query's.
func (c *Client) getJSON(ctx context.Context, method, path string, out any) error {
	return c.withRetry(ctx, func() (int, string, error) {
		return c.getJSONOnce(ctx, method, path, out)
	})
}

func (c *Client) getJSONOnce(ctx context.Context, method, path string, out any) (int, string, error) {
	hreq, err := http.NewRequestWithContext(ctx, method, c.base+path, nil)
	if err != nil {
		return 0, "", fmt.Errorf("client: building request: %w", err)
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return 0, "", fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer func() { _ = resp.Body.Close() }()
	status, retryAfter := resp.StatusCode, resp.Header.Get("Retry-After")
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return status, retryAfter, fmt.Errorf("client: reading response: %w", err)
	}
	if status != http.StatusOK {
		var er server.ErrorResponse
		if jerr := json.Unmarshal(body, &er); jerr == nil && er.Error.Code != "" {
			return status, retryAfter, fmt.Errorf("client: %s %s: %d %s: %s", method, path, status, er.Error.Code, er.Error.Message)
		}
		return status, retryAfter, fmt.Errorf("client: %s %s: unexpected status %d", method, path, status)
	}
	if err := json.Unmarshal(body, out); err != nil {
		return status, retryAfter, fmt.Errorf("client: decoding %s: %w", path, err)
	}
	return status, retryAfter, nil
}
