package client

import (
	"context"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"wdpt/internal/obs"
)

// RetryPolicy bounds the client's automatic retries of throttled responses.
// Only HTTP 429 (admission queue full) and 503 (shutting down / overloaded)
// are retried: both mean "the server is healthy but cannot take this
// request right now", which is exactly the case backoff helps. Transport
// errors and every other status are returned immediately — a 400 does not
// get better by waiting, and retrying a half-delivered POST is the
// caller's call.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget, first try included.
	// Values below 2 disable retrying.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; each further
	// attempt doubles it. 0 means 100ms.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth. 0 means 2s.
	MaxDelay time.Duration
}

const (
	defaultBaseDelay = 100 * time.Millisecond
	defaultMaxDelay  = 2 * time.Second
)

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// WithRetry returns a copy of the client that retries throttled responses
// under the given policy. The original client is unchanged.
func (c *Client) WithRetry(p RetryPolicy) *Client {
	out := *c
	out.policy = p
	return &out
}

// WithStats returns a copy of the client that counts its attempts,
// retries, and give-ups (client.* counters) into st.
func (c *Client) WithStats(st *obs.Stats) *Client {
	out := *c
	out.st = st
	return &out
}

// WithEndpointStats returns a copy of the client that additionally counts
// every attempt and failure per endpoint (labeled by base URL) into the
// given families — the split behind wdptd_client_endpoint_attempts /
// wdptd_client_endpoint_failures. The aggregate client.* counters treat
// all endpoints as one host; failover decisions read these instead.
// Either family may be nil (that side disabled).
func (c *Client) WithEndpointStats(attempts, failures *obs.CounterVec) *Client {
	out := *c
	out.attempts = attempts
	out.failures = failures
	return &out
}

// Stats returns the sink receiving the client.* counters.
func (c *Client) Stats() *obs.Stats { return c.st }

func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// withRetry runs one exchange up to the policy's attempt budget. do reports
// the HTTP status (0 on transport failure), the Retry-After header, and the
// exchange's error; the last attempt's error is the one returned, so a
// caller that treats throttled statuses as data (Query) still gets its
// result and a caller that treats them as errors (getJSON) still gets the
// typed failure.
func (c *Client) withRetry(ctx context.Context, do func() (int, string, error)) error {
	attempts := c.policy.attempts()
	for attempt := 1; ; attempt++ {
		c.st.Inc(obs.CtrClientAttempts)
		c.attempts.Inc(c.base)
		status, retryAfter, err := do()
		// Per-endpoint failure accounting: a transport error (status 0), a
		// throttled status, or any 5xx marks this endpoint's attempt failed —
		// the signal failover reads. 4xx (other than 429) are request-level
		// outcomes served by a live endpoint, not endpoint failures.
		if (status == 0 && err != nil) || retryableStatus(status) || status >= 500 {
			c.failures.Inc(c.base)
		}
		if !retryableStatus(status) {
			return err
		}
		if attempt == attempts {
			if attempts > 1 {
				c.st.Inc(obs.CtrClientRetryGiveups)
			}
			return err
		}
		c.st.Inc(obs.CtrClientRetries)
		if serr := c.sleep(ctx, c.backoffDelay(attempt, retryAfter)); serr != nil {
			return serr
		}
	}
}

// backoffDelay computes the wait after the attempt-th try (1-based) failed:
// exponential growth from BaseDelay capped at MaxDelay, jittered over the
// upper half of the step ([step/2, step]) so a burst of throttled clients
// does not re-arrive in lockstep, then raised to the server's Retry-After
// when that asks for longer.
func (c *Client) backoffDelay(attempt int, retryAfter string) time.Duration {
	base, ceil := c.policy.BaseDelay, c.policy.MaxDelay
	if base <= 0 {
		base = defaultBaseDelay
	}
	if ceil <= 0 {
		ceil = defaultMaxDelay
	}
	step := base
	for i := 1; i < attempt && step < ceil; i++ {
		step *= 2
	}
	if step > ceil {
		step = ceil
	}
	d := step/2 + time.Duration(c.jitter()*float64(step/2))
	if ra, ok := parseRetryAfter(retryAfter); ok && ra > d {
		d = ra
	}
	return d
}

// parseRetryAfter understands the delay-seconds form wdptd serves; the
// HTTP-date form is not produced by this stack and parses as absent.
func parseRetryAfter(h string) (time.Duration, bool) {
	if h == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 0 {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}

// defaultSleep waits d or until ctx is done, whichever first.
func defaultSleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// defaultJitter draws from the process-global source; tests inject a fixed
// function to pin the schedule.
func defaultJitter() float64 { return rand.Float64() }
