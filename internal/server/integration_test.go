// Integration tests for wdptd: every assertion goes through the real HTTP
// stack (httptest + the typed client) against a real dataset file, and the
// load-bearing ones compare raw response bodies byte-for-byte against what
// direct Solve + the shared report encoder produce — the wdpteval -json
// parity contract.
package server_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"wdpt/internal/core"
	"wdpt/internal/cq"
	"wdpt/internal/cqeval"
	"wdpt/internal/db"
	"wdpt/internal/gen"
	"wdpt/internal/guard"
	"wdpt/internal/obs"
	"wdpt/internal/report"
	"wdpt/internal/server"
	"wdpt/internal/server/client"
	"wdpt/internal/sparql"
)

// qsolver is the Solve shape shared by *core.PatternTree and *uwdpt.Union.
type qsolver interface {
	Solve(ctx context.Context, d *db.Database, opts core.SolveOptions) (core.Result, error)
}

// writeDataset renders d into a file under a fresh temp dir.
func writeDataset(t *testing.T, d *db.Database) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.txt")
	if err := os.WriteFile(path, []byte(sparql.FormatDatabase(d)), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// startServer builds a Server from cfg (filling in the registry from specs)
// and serves it over httptest.
func startServer(t *testing.T, cfg server.Config, specs map[string]string) (*server.Server, *client.Client, *httptest.Server) {
	t.Helper()
	reg, err := server.NewRegistry(specs)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Registry = reg
	srv, err := server.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return srv, client.New(hs.URL, hs.Client()), hs
}

// directBody mirrors the server's (and wdpteval -json's) report building for
// one request evaluated directly through Solve, returning the exact expected
// body bytes and HTTP status. Budget-tripped enumerations are tolerated
// (they serve 206 with the truncated set); any other error fails the test.
func directBody(t *testing.T, q qsolver, d *db.Database, req server.Request, par int) ([]byte, int) {
	t.Helper()
	modeName, engName := req.Mode, req.Engine
	if modeName == "" {
		modeName = "enumerate"
	}
	if engName == "" {
		engName = "auto"
	}
	mode := map[string]core.Mode{
		"enumerate": core.ModeEnumerate, "maximal": core.ModeMaximal,
		"exact": core.ModeExact, "exact-naive": core.ModeExactNaive,
		"partial": core.ModePartial, "max": core.ModeMax,
	}[modeName]
	engines := map[string]func() cqeval.Engine{
		"auto": cqeval.Auto, "naive": cqeval.Naive, "yannakakis": cqeval.Yannakakis,
		"decomposition": cqeval.Decomposition,
	}
	var budget guard.Budget
	if req.Budget != nil {
		budget = guard.Budget{
			Wall:       time.Duration(req.Budget.WallMS) * time.Millisecond,
			MaxTuples:  req.Budget.MaxTuples,
			MaxAnswers: req.Budget.MaxAnswers,
		}
	}
	h := cq.Mapping{}
	for k, v := range req.Mapping {
		h[strings.TrimPrefix(k, "?")] = v
	}
	opts := core.SolveOptions{Mode: mode, Parallelism: par, Budget: budget, Fallback: req.Fallback}
	switch mode {
	case core.ModeEnumerate:
		opts.Engine = engines[engName]()
	case core.ModeMaximal:
		// Engine stays nil: the maximal path drives the backtracking solver.
	default:
		opts.Engine = engines[engName]()
		opts.Mapping = h
	}
	rep := report.Report{Mode: modeName, Engine: engName, Parallelism: par}
	res, err := q.Solve(context.Background(), d, opts)
	var evalErr error
	switch mode {
	case core.ModeEnumerate, core.ModeMaximal:
		if err != nil && !errors.Is(err, guard.ErrAnswerLimit) {
			t.Fatalf("direct solve (%s): %v", modeName, err)
		}
		evalErr = err
		rep.NoteDegraded(res)
		rep.SetAnswers(res.Answers)
	default:
		if err != nil {
			t.Fatalf("direct solve (%s): %v", modeName, err)
		}
		rep.NoteDegraded(res)
		rep.SetResult(res.Holds)
	}
	var buf bytes.Buffer
	if err := report.Encode(&buf, rep); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), report.HTTPStatus(evalErr)
}

// musicFixture returns the Figure 1 tree, its database, the parseable query
// text, and a full candidate mapping (an actual answer).
func musicFixture(t *testing.T) (*core.PatternTree, *db.Database, string, map[string]string) {
	t.Helper()
	p := gen.MusicWDPT("x", "y", "z", "zp")
	d := gen.MusicDatabase()
	full, err := p.Solve(context.Background(), d, core.SolveOptions{Mode: core.ModeEnumerate})
	if err != nil || len(full.Answers) == 0 {
		t.Fatalf("enumerating the fixture: %v (%d answers)", err, len(full.Answers))
	}
	return p, d, sparql.Format(p), full.Answers[0]
}

// TestServerParityWithDirectSolve is the core acceptance pin: for every mode
// and P ∈ {1, 8}, the body served over HTTP is byte-identical to direct
// Solve output through the shared encoder.
func TestServerParityWithDirectSolve(t *testing.T) {
	p, d, queryText, h := musicFixture(t)
	_, cl, _ := startServer(t, server.Config{MaxInFlight: 64, MaxQueue: 64, CacheSize: 16},
		map[string]string{"music": writeDataset(t, d)})

	requests := []server.Request{
		{Dataset: "music", Query: queryText},
		{Dataset: "music", Query: queryText, Mode: "maximal"},
		{Dataset: "music", Query: queryText, Mode: "exact", Mapping: h},
		{Dataset: "music", Query: queryText, Mode: "exact-naive", Mapping: h},
		{Dataset: "music", Query: queryText, Mode: "partial", Mapping: map[string]string{"y": h["y"]}},
		{Dataset: "music", Query: queryText, Mode: "max", Mapping: h},
		{Dataset: "music", Query: queryText, Engine: "naive"},
		{Dataset: "music", Query: queryText, Engine: "yannakakis"},
	}
	for _, par := range []int{1, 8} {
		for _, req := range requests {
			req.Parallelism = par
			name := fmt.Sprintf("%s/%s/p%d", orDefault(req.Mode, "enumerate"), orDefault(req.Engine, "auto"), par)
			t.Run(name, func(t *testing.T) {
				want, wantStatus := directBody(t, p, d, req, par)
				res, err := cl.Query(context.Background(), req)
				if err != nil {
					t.Fatal(err)
				}
				if res.Status != wantStatus {
					t.Fatalf("status %d, want %d (body %s)", res.Status, wantStatus, res.Body)
				}
				if !bytes.Equal(res.Body, want) {
					t.Fatalf("body diverges from direct Solve:\nserver: %s\ndirect: %s", res.Body, want)
				}
			})
		}
	}

	// Variable names in mappings may carry the ?-prefix; the body must not
	// change.
	plain, err := cl.Query(context.Background(), server.Request{
		Dataset: "music", Query: queryText, Mode: "partial", Mapping: map[string]string{"y": h["y"]}, Parallelism: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	prefixed, err := cl.Query(context.Background(), server.Request{
		Dataset: "music", Query: queryText, Mode: "partial", Mapping: map[string]string{"?y": h["y"]}, Parallelism: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain.Body, prefixed.Body) {
		t.Errorf("?-prefixed mapping changed the body:\n%s\nvs\n%s", prefixed.Body, plain.Body)
	}
}

// orDefault returns s, or def when s is empty.
func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// TestServerUnionParity pins that top-level UNION queries route through
// Union.Solve with the same byte-identical contract.
func TestServerUnionParity(t *testing.T) {
	d := gen.ChainDatabase(4)
	text := "SELECT ?y0 WHERE E(?y0, ?y1) UNION SELECT ?y1 WHERE E(?y0, ?y1)"
	u, err := sparql.ParseUnionQuery(text)
	if err != nil {
		t.Fatal(err)
	}
	_, cl, _ := startServer(t, server.Config{MaxInFlight: 16}, map[string]string{"chain": writeDataset(t, d)})
	for _, par := range []int{1, 8} {
		req := server.Request{Dataset: "chain", Query: text, Parallelism: par}
		want, wantStatus := directBody(t, u, d, req, par)
		res, err := cl.Query(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != wantStatus || !bytes.Equal(res.Body, want) {
			t.Fatalf("p%d: status %d body %s\nwant %d %s", par, res.Status, res.Body, wantStatus, want)
		}
		if got := *res.Report.AnswerCount; got == 0 {
			t.Fatalf("union enumeration returned no answers")
		}
	}
}

// TestServerErrorTaxonomy pins the typed-error contract: each failure class
// maps to its documented status and stable code, and budget trips carry the
// meter's progress readings.
func TestServerErrorTaxonomy(t *testing.T) {
	_, d, queryText, _ := musicFixture(t)
	heavy := gen.LayeredDatabase(7, 40, 6, 1)
	_, cl, hs := startServer(t, server.Config{MaxInFlight: 16, CacheSize: 16}, map[string]string{
		"music": writeDataset(t, d),
		"heavy": writeDataset(t, heavy),
	})
	ctx := context.Background()

	cases := []struct {
		name       string
		req        server.Request
		wantStatus int
		wantCode   string
	}{
		{"unknown dataset", server.Request{Dataset: "nope", Query: queryText}, http.StatusNotFound, "unknown_dataset"},
		{"bad query", server.Request{Dataset: "music", Query: "SELECT WHERE ("}, http.StatusBadRequest, "bad_query"},
		{"empty query", server.Request{Dataset: "music", Query: "  "}, http.StatusBadRequest, "bad_query"},
		{"bad mode", server.Request{Dataset: "music", Query: queryText, Mode: "best"}, http.StatusBadRequest, "bad_mode"},
		{"bad engine", server.Request{Dataset: "music", Query: queryText, Engine: "quantum"}, http.StatusBadRequest, "bad_engine"},
		{"bad budget", server.Request{Dataset: "music", Query: queryText, Budget: &server.BudgetSpec{WallMS: -1}}, http.StatusBadRequest, "bad_budget"},
		{"tuple budget", server.Request{Dataset: "music", Query: queryText, Parallelism: 1,
			Budget: &server.BudgetSpec{MaxTuples: 1}}, http.StatusRequestEntityTooLarge, "tuple_budget"},
		{"deadline", server.Request{Dataset: "heavy", Query: heavyQueryText, Engine: "naive", Parallelism: 1,
			Budget: &server.BudgetSpec{WallMS: 1}}, http.StatusGatewayTimeout, "deadline"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := cl.Query(ctx, tc.req)
			if err != nil {
				t.Fatal(err)
			}
			if res.Status != tc.wantStatus {
				t.Fatalf("status %d, want %d (body %s)", res.Status, tc.wantStatus, res.Body)
			}
			if res.Err == nil || res.Err.Code != tc.wantCode {
				t.Fatalf("error payload %+v, want code %q", res.Err, tc.wantCode)
			}
			if tc.wantCode == "tuple_budget" && res.Err.Tuples < 2 {
				t.Errorf("tuple trip carries Tuples=%d, want >= 2", res.Err.Tuples)
			}
		})
	}

	t.Run("answer cap serves 206 with the partial set", func(t *testing.T) {
		req := server.Request{Dataset: "music", Query: queryText, Parallelism: 1,
			Budget: &server.BudgetSpec{MaxAnswers: 1}}
		res, err := cl.Query(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != http.StatusPartialContent {
			t.Fatalf("status %d, want 206 (body %s)", res.Status, res.Body)
		}
		if res.Report == nil || res.Report.AnswerCount == nil || *res.Report.AnswerCount != 1 {
			t.Fatalf("206 body does not carry the truncated set: %s", res.Body)
		}
		if res.Report.Degraded == nil || !*res.Report.Degraded || res.Report.DegradedMode != "enumerate" {
			t.Fatalf("206 body not marked degraded: %s", res.Body)
		}
	})

	t.Run("answer cap with fallback serves 200 degraded", func(t *testing.T) {
		res, err := cl.Query(ctx, server.Request{Dataset: "music", Query: queryText, Parallelism: 1,
			Budget: &server.BudgetSpec{MaxAnswers: 1}, Fallback: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != http.StatusOK || res.Report.Degraded == nil || !*res.Report.Degraded {
			t.Fatalf("status %d body %s, want 200 degraded", res.Status, res.Body)
		}
	})

	t.Run("unknown field is rejected", func(t *testing.T) {
		resp, err := hs.Client().Post(hs.URL+"/v1/query", "application/json",
			strings.NewReader(`{"dataset":"music","bogus":1}`))
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
	})
}

// heavyQueryText is a depth-6 path CQ whose naive-engine evaluation fans out
// as outDeg^6 on the layered database — reliably long-running, and stoppable
// only through the guard meter's context checks.
const heavyQueryText = "SELECT ?y0 WHERE (E(?y0, ?y1) AND E(?y1, ?y2) AND E(?y2, ?y3) AND E(?y3, ?y4) AND E(?y4, ?y5) AND E(?y5, ?y6))"

// TestServerWidthBoundReject pins the admission fast path: a query outside
// TW(k) is rejected with 422 before any evaluation work, and counted.
func TestServerWidthBoundReject(t *testing.T) {
	d := gen.ChainDatabase(3)
	_, cl, _ := startServer(t, server.Config{MaxInFlight: 4, WidthBound: 1},
		map[string]string{"chain": writeDataset(t, d)})
	ctx := context.Background()

	// A triangle has treewidth 2.
	res, err := cl.Query(ctx, server.Request{Dataset: "chain",
		Query: "SELECT ?x WHERE (E(?x, ?y) AND E(?y, ?z) AND E(?z, ?x))"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusUnprocessableEntity || res.Err == nil || res.Err.Code != "width_bound" {
		t.Fatalf("triangle: status %d payload %+v, want 422 width_bound", res.Status, res.Err)
	}
	// An acyclic query passes the same bound.
	ok, err := cl.Query(ctx, server.Request{Dataset: "chain", Query: "SELECT ?y0 WHERE E(?y0, ?y1)"})
	if err != nil {
		t.Fatal(err)
	}
	if ok.Status != http.StatusOK {
		t.Fatalf("path query: status %d (body %s), want 200", ok.Status, ok.Body)
	}
	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m["server.width_rejects"] != 1 {
		t.Errorf("server.width_rejects = %d, want 1", m["server.width_rejects"])
	}
}

// TestServerCacheHitAndReloadMiss pins the caching contract: a repeated
// query is served from cache with an identical body, and a dataset
// hot-reload invalidates it through the version-stamped key.
func TestServerCacheHitAndReloadMiss(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "chain.txt")
	if err := os.WriteFile(path, []byte("E(0, 1).\nE(1, 2).\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, cl, _ := startServer(t, server.Config{MaxInFlight: 4, CacheSize: 8},
		map[string]string{"chain": path})
	ctx := context.Background()
	req := server.Request{Dataset: "chain", Query: "SELECT ?y0 WHERE E(?y0, ?y1)", Parallelism: 1}

	first, err := cl.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := cl.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Body, second.Body) {
		t.Fatalf("cached body diverges:\n%s\nvs\n%s", second.Body, first.Body)
	}
	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m["server.cache_hits"] != 1 || m["server.cache_misses"] != 1 {
		t.Fatalf("after repeat: hits=%d misses=%d, want 1/1", m["server.cache_hits"], m["server.cache_misses"])
	}

	// Hot-reload with more data: the version bump must invalidate the entry.
	if err := os.WriteFile(path, []byte("E(0, 1).\nE(1, 2).\nE(2, 3).\nE(3, 4).\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	version, err := cl.Reload(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if version != 2 {
		t.Fatalf("reload version = %d, want 2", version)
	}
	third, err := cl.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(third.Body, first.Body) {
		t.Fatalf("post-reload query served the stale body: %s", third.Body)
	}
	if *third.Report.AnswerCount <= *first.Report.AnswerCount {
		t.Fatalf("reloaded dataset did not grow the answer set: %d vs %d",
			*third.Report.AnswerCount, *first.Report.AnswerCount)
	}
	m, err = cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m["server.cache_hits"] != 1 || m["server.cache_misses"] != 2 || m["server.reloads"] != 1 {
		t.Fatalf("after reload: hits=%d misses=%d reloads=%d, want 1/2/1",
			m["server.cache_hits"], m["server.cache_misses"], m["server.reloads"])
	}

	// Stats-carrying responses bypass the cache entirely.
	statsReq := req
	statsReq.Stats = true
	res, err := cl.Query(ctx, statsReq)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Counters == nil {
		t.Fatalf("stats request carries no counters: %s", res.Body)
	}
	m2, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m2["server.cache_hits"] != m["server.cache_hits"] || m2["server.cache_misses"] != m["server.cache_misses"] {
		t.Errorf("stats request touched the cache: %v vs %v", m2, m)
	}
}

// TestServerFallbackDegradedBody is the acceptance pin for budget
// degradation over HTTP: with a tuple budget calibrated so exact and max
// trip but partial succeeds, a fallback request serves 200 with a degraded
// body equal to what the weaker mode's direct evaluation produces.
func TestServerFallbackDegradedBody(t *testing.T) {
	p := gen.MusicWDPT("y", "z")
	d := gen.MusicDatabaseLarge(4, 6, 1)
	full, err := p.Solve(context.Background(), d, core.SolveOptions{Mode: core.ModeEnumerate})
	if err != nil || len(full.Answers) == 0 {
		t.Fatalf("enumerating the fixture: %v", err)
	}
	h := full.Answers[0].Restrict([]string{"y"})

	charges := func(mode core.Mode) int64 {
		st := obs.NewStats()
		_, err := p.Solve(context.Background(), d, core.SolveOptions{
			Mode: mode, Mapping: h, Stats: st, Budget: guard.Budget{MaxTuples: 1 << 50},
		})
		if err != nil {
			t.Fatalf("calibration (%v): %v", mode, err)
		}
		return st.Snapshot()["guard.budget_charges"]
	}
	exact, max, partial := charges(core.ModeExact), charges(core.ModeMax), charges(core.ModePartial)
	if partial >= max || partial >= exact {
		t.Fatalf("calibration broke: partial=%d max=%d exact=%d", partial, max, exact)
	}

	_, cl, _ := startServer(t, server.Config{MaxInFlight: 4, CacheSize: 8},
		map[string]string{"music": writeDataset(t, d)})
	req := server.Request{
		Dataset: "music", Query: sparql.Format(p), Mode: "exact", Mapping: h, Parallelism: 1,
		Budget: &server.BudgetSpec{MaxTuples: partial}, Fallback: true,
	}
	res, err := cl.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusOK {
		t.Fatalf("status %d (body %s), want 200", res.Status, res.Body)
	}
	if res.Report.Degraded == nil || !*res.Report.Degraded || res.Report.DegradedMode != "partial" {
		t.Fatalf("body not degraded to partial: %s", res.Body)
	}
	// The degraded verdict equals the weaker mode's direct answer.
	direct, err := p.Solve(context.Background(), d, core.SolveOptions{
		Mode: core.ModePartial, Mapping: h, Engine: cqeval.Auto(), Parallelism: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Result == nil || *res.Report.Result != direct.Holds {
		t.Fatalf("degraded verdict %v, want the direct partial answer %v", res.Report.Result, direct.Holds)
	}
	// Without fallback, the same budget is a hard 413.
	req.Fallback = false
	res, err = cl.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusRequestEntityTooLarge || res.Err == nil || res.Err.Code != "tuple_budget" {
		t.Fatalf("without fallback: status %d payload %+v, want 413 tuple_budget", res.Status, res.Err)
	}
}

// waitGoroutines fails the test if the goroutine count does not return to
// the baseline within the grace period.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d goroutines, baseline %d\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerGracefulShutdownCancelsInFlight pins the drain contract: a
// long-running query is cancelled when the shutdown deadline passes, its
// request gets the shutting_down payload, later requests are rejected
// immediately, and no goroutines leak once the listener closes.
func TestServerGracefulShutdownCancelsInFlight(t *testing.T) {
	base := runtime.NumGoroutine()
	heavy := gen.LayeredDatabase(7, 40, 6, 1)
	reg, err := server.NewRegistry(map[string]string{"heavy": writeDataset(t, heavy)})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.NewServer(server.Config{Registry: reg, MaxInFlight: 4, MaxQueue: 4})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	cl := client.New(hs.URL, hs.Client())
	ctx := context.Background()

	resCh := make(chan *client.QueryResult, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := cl.Query(ctx, server.Request{
			Dataset: "heavy", Query: heavyQueryText, Engine: "naive", Parallelism: 1,
		})
		if err != nil {
			errCh <- err
			return
		}
		resCh <- res
	}()
	// Wait until the query is actually evaluating.
	for deadline := time.Now().Add(5 * time.Second); ; {
		h, err := cl.Health(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if h.InFlight >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("heavy query never became in-flight")
		}
		time.Sleep(2 * time.Millisecond)
	}

	shCtx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(shCtx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want context.DeadlineExceeded (forced drain)", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("forced drain took %s; cancellation did not stop the query", elapsed)
	}
	select {
	case res := <-resCh:
		if res.Status != http.StatusServiceUnavailable || res.Err == nil || res.Err.Code != "shutting_down" {
			t.Fatalf("in-flight query: status %d payload %+v, want 503 shutting_down", res.Status, res.Err)
		}
	case err := <-errCh:
		t.Fatalf("in-flight query transport error: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight query never returned after forced drain")
	}
	// New queries are rejected outright while draining.
	res, err := cl.Query(ctx, server.Request{Dataset: "heavy", Query: "SELECT ?y0 WHERE E(?y0, ?y1)"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusServiceUnavailable || res.Err == nil || res.Err.Code != "shutting_down" {
		t.Fatalf("post-shutdown query: status %d payload %+v, want 503 shutting_down", res.Status, res.Err)
	}
	hs.Close()
	hs.Client().CloseIdleConnections()
	waitGoroutines(t, base)
}

// TestServerAdmissionQueueOverflow pins the 429 path: with capacity 1, no
// queue, and a long query holding the slot, the next request is rejected
// immediately with Retry-After.
func TestServerAdmissionQueueOverflow(t *testing.T) {
	heavy := gen.LayeredDatabase(7, 40, 6, 1)
	_, cl, hs := startServer(t, server.Config{MaxInFlight: 1, MaxQueue: 0},
		map[string]string{"heavy": writeDataset(t, heavy)})
	ctx := context.Background()

	holdCtx, release := context.WithCancel(ctx)
	done := make(chan struct{})
	go func() {
		defer close(done)
		// The holder is cancelled at the end of the test; transport errors
		// and 5xx are both fine — it only exists to occupy the slot.
		_, _ = cl.Query(holdCtx, server.Request{
			Dataset: "heavy", Query: heavyQueryText, Engine: "naive", Parallelism: 1,
		})
	}()
	defer func() { release(); <-done; hs.Client().CloseIdleConnections() }()
	for deadline := time.Now().Add(5 * time.Second); ; {
		h, err := cl.Health(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if h.InFlight >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("holder query never became in-flight")
		}
		time.Sleep(2 * time.Millisecond)
	}

	res, err := cl.Query(ctx, server.Request{Dataset: "heavy", Query: "SELECT ?y0 WHERE E(?y0, ?y1)"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusTooManyRequests || res.Err == nil || res.Err.Code != "queue_full" {
		t.Fatalf("status %d payload %+v, want 429 queue_full", res.Status, res.Err)
	}
	if res.RetryAfter == "" {
		t.Error("429 response carries no Retry-After header")
	}
	m, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m["server.admission_rejects"] != 1 {
		t.Errorf("server.admission_rejects = %d, want 1", m["server.admission_rejects"])
	}
}

// TestServerLoadSmoke fires concurrent mixed-mode requests (run it with
// -race) and asserts every 200 body is byte-identical to direct Solve
// output — cached or not, sequential or parallel.
func TestServerLoadSmoke(t *testing.T) {
	p, d, queryText, h := musicFixture(t)
	_, cl, _ := startServer(t, server.Config{MaxInFlight: 8, MaxQueue: 64, CacheSize: 4},
		map[string]string{"music": writeDataset(t, d)})

	type shape struct {
		req        server.Request
		want       []byte
		wantStatus int
	}
	var shapes []shape
	for _, par := range []int{1, 8} {
		for _, req := range []server.Request{
			{Dataset: "music", Query: queryText},
			{Dataset: "music", Query: queryText, Mode: "maximal"},
			{Dataset: "music", Query: queryText, Mode: "exact", Mapping: h},
			{Dataset: "music", Query: queryText, Mode: "partial", Mapping: map[string]string{"y": h["y"]}},
			{Dataset: "music", Query: queryText, Mode: "max", Mapping: h},
		} {
			req.Parallelism = par
			want, wantStatus := directBody(t, p, d, req, par)
			shapes = append(shapes, shape{req, want, wantStatus})
		}
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*len(shapes))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range shapes {
				// Stagger starting points so modes genuinely interleave.
				sh := shapes[(i+w)%len(shapes)]
				res, err := cl.Query(context.Background(), sh.req)
				if err != nil {
					errs <- fmt.Errorf("worker %d shape %d: %w", w, i, err)
					return
				}
				if res.Status != sh.wantStatus {
					errs <- fmt.Errorf("worker %d: status %d, want %d (%s)", w, res.Status, sh.wantStatus, res.Body)
					return
				}
				if !bytes.Equal(res.Body, sh.want) {
					errs <- fmt.Errorf("worker %d: body diverged under load:\n%s\nwant\n%s", w, res.Body, sh.want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	m, err := cl.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m["server.requests"] < int64(workers*len(shapes)) {
		t.Errorf("server.requests = %d, want >= %d", m["server.requests"], workers*len(shapes))
	}
	if m["server.cache_evictions"] == 0 {
		t.Errorf("cache (size 4) under %d shapes recorded no evictions", len(shapes))
	}
}
