package server

import (
	"testing"

	"wdpt/internal/obs"
)

// counts reads the three server cache counters.
func counts(st *obs.Stats) (hits, misses, evictions int64) {
	return st.Get(obs.CtrServerCacheHits), st.Get(obs.CtrServerCacheMisses), st.Get(obs.CtrServerCacheEvictions)
}

func TestResultCacheLRUAndCounters(t *testing.T) {
	st := obs.NewStats()
	c := newResultCache(2, st)
	if _, ok := c.get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.put("a", []byte("A"))
	c.put("b", []byte("B"))
	if body, ok := c.get("a"); !ok || string(body) != "A" {
		t.Fatalf("get(a) = %q ok=%v", body, ok)
	}
	// "a" is now most recent; inserting "c" evicts "b".
	c.put("c", []byte("C"))
	if _, ok := c.get("b"); ok {
		t.Fatal("LRU victim b still cached")
	}
	if body, ok := c.get("a"); !ok || string(body) != "A" {
		t.Fatalf("recently used a evicted: %q ok=%v", body, ok)
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	// misses: a(empty), b(after eviction); hits: a, a; evictions: b.
	if h, m, e := counts(st); h != 2 || m != 2 || e != 1 {
		t.Fatalf("hits=%d misses=%d evictions=%d, want 2/2/1", h, m, e)
	}
	// Re-putting an existing key is a no-op (first body wins).
	c.put("a", []byte("A2"))
	if body, _ := c.get("a"); string(body) != "A" {
		t.Fatalf("re-put replaced body: %q", body)
	}
}

func TestResultCacheNilDisabled(t *testing.T) {
	st := obs.NewStats()
	c := newResultCache(0, st)
	if c != nil {
		t.Fatal("size 0 did not disable the cache")
	}
	c.put("a", []byte("A"))
	if _, ok := c.get("a"); ok {
		t.Fatal("nil cache hit")
	}
	if c.len() != 0 {
		t.Fatal("nil cache has entries")
	}
	if h, m, e := counts(st); h != 0 || m != 0 || e != 0 {
		t.Fatalf("nil cache recorded counters: %d/%d/%d", h, m, e)
	}
}

// TestCacheKeyDiscriminates pins that every response-shaping input — dataset
// version, query, mode, engine, parallelism, fallback, budget, mapping —
// produces a distinct key, so a registry reload or option change can never
// serve a stale body.
func TestCacheKeyDiscriminates(t *testing.T) {
	base := func() (*Dataset, *Request) {
		return &Dataset{Name: "d", Version: 1},
			&Request{Mode: "enumerate", Engine: "auto", Mapping: map[string]string{"x": "1"}}
	}
	ds, req := base()
	ref := cacheKey(ds, "Q", req, 1)

	mutations := map[string]func(ds *Dataset, req *Request) (canonical string, par int){
		"version":     func(ds *Dataset, req *Request) (string, int) { ds.Version = 2; return "Q", 1 },
		"dataset":     func(ds *Dataset, req *Request) (string, int) { ds.Name = "e"; return "Q", 1 },
		"query":       func(ds *Dataset, req *Request) (string, int) { return "Q2", 1 },
		"mode":        func(ds *Dataset, req *Request) (string, int) { req.Mode = "maximal"; return "Q", 1 },
		"engine":      func(ds *Dataset, req *Request) (string, int) { req.Engine = "naive"; return "Q", 1 },
		"parallelism": func(ds *Dataset, req *Request) (string, int) { return "Q", 8 },
		"fallback":    func(ds *Dataset, req *Request) (string, int) { req.Fallback = true; return "Q", 1 },
		"budget":      func(ds *Dataset, req *Request) (string, int) { req.Budget = &BudgetSpec{MaxTuples: 5}; return "Q", 1 },
		"mapping":     func(ds *Dataset, req *Request) (string, int) { req.Mapping["x"] = "2"; return "Q", 1 },
	}
	for name, mutate := range mutations {
		ds, req := base()
		canonical, par := mutate(ds, req)
		if got := cacheKey(ds, canonical, req, par); got == ref {
			t.Errorf("mutating %s did not change the cache key", name)
		}
	}
	// And identical inputs agree.
	ds2, req2 := base()
	if cacheKey(ds2, "Q", req2, 1) != ref {
		t.Error("identical inputs produced different keys")
	}
}
