package server

import (
	"context"
	"errors"
	"testing"
	"time"
)

// waitQueued polls until the admission queue reaches depth n.
func waitQueued(t *testing.T, a *admission, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, queued := a.load(); queued == n {
			return
		}
		if time.Now().After(deadline) {
			_, queued := a.load()
			t.Fatalf("queue depth %d, want %d", queued, n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestAdmissionClamp(t *testing.T) {
	a := newAdmission(4, 0)
	for in, want := range map[int64]int64{0: 1, -3: 1, 1: 1, 4: 4, 99: 4} {
		if got := a.clamp(in); got != want {
			t.Errorf("clamp(%d) = %d, want %d", in, got, want)
		}
	}
}

// TestAdmissionFIFO pins the ordering contract: a small waiter that would
// fit does not jump ahead of a larger waiter queued before it.
func TestAdmissionFIFO(t *testing.T) {
	a := newAdmission(2, 8)
	if err := a.acquire(context.Background(), 2); err != nil {
		t.Fatalf("initial acquire: %v", err)
	}
	aDone := make(chan error, 1)
	go func() { aDone <- a.acquire(context.Background(), 2) }()
	waitQueued(t, a, 1)
	bDone := make(chan error, 1)
	go func() { bDone <- a.acquire(context.Background(), 1) }()
	waitQueued(t, a, 2)

	a.release(2)
	if err := <-aDone; err != nil {
		t.Fatalf("front waiter: %v", err)
	}
	// The front waiter took the full capacity; the small waiter behind it
	// must still be queued — FIFO, not best-fit.
	if inUse, queued := a.load(); inUse != 2 || queued != 1 {
		t.Fatalf("after first grant: inUse=%d queued=%d, want 2/1", inUse, queued)
	}
	a.release(2)
	if err := <-bDone; err != nil {
		t.Fatalf("second waiter: %v", err)
	}
	a.release(1)
	if inUse, queued := a.load(); inUse != 0 || queued != 0 {
		t.Fatalf("drained: inUse=%d queued=%d, want 0/0", inUse, queued)
	}
}

func TestAdmissionQueueFull(t *testing.T) {
	a := newAdmission(1, 1)
	if err := a.acquire(context.Background(), 1); err != nil {
		t.Fatalf("initial acquire: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- a.acquire(context.Background(), 1) }()
	waitQueued(t, a, 1)
	if err := a.acquire(context.Background(), 1); !errors.Is(err, errQueueFull) {
		t.Fatalf("overflow acquire: %v, want errQueueFull", err)
	}
	a.release(1)
	if err := <-done; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	a.release(1)
}

func TestAdmissionCancelWhileQueued(t *testing.T) {
	a := newAdmission(1, 4)
	if err := a.acquire(context.Background(), 1); err != nil {
		t.Fatalf("initial acquire: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- a.acquire(ctx, 1) }()
	waitQueued(t, a, 1)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: %v, want context.Canceled", err)
	}
	// The cancelled waiter removed itself; a release must not grant it.
	a.release(1)
	if inUse, queued := a.load(); inUse != 0 || queued != 0 {
		t.Fatalf("after cancel+release: inUse=%d queued=%d, want 0/0", inUse, queued)
	}
}
