package server

import (
	"context"
	"errors"
	"sync"
)

// errQueueFull reports that the admission wait queue was at capacity; the
// handler maps it to HTTP 429 with a Retry-After header.
var errQueueFull = errors.New("server: admission queue full")

// admission is a weighted semaphore over the server's total in-flight
// parallelism with a bounded FIFO wait queue. Each request holds a weight
// equal to its effective parallelism for the duration of its evaluation, so
// the server's worker-goroutine total stays bounded by capacity no matter
// how requests mix parallelism levels. When the semaphore is exhausted a
// request waits in FIFO order — up to maxQueue waiters; beyond that,
// acquire fails fast with errQueueFull instead of building an unbounded
// convoy.
type admission struct {
	mu       sync.Mutex
	capacity int64
	inUse    int64
	maxQueue int
	queue    []*waiter
}

// waiter is one queued acquire: its weight and the channel closed at grant
// time. The grant (inUse += n) happens on the releasing goroutine before the
// channel closes, so a woken waiter owns its weight immediately.
type waiter struct {
	n     int64
	ready chan struct{}
}

func newAdmission(capacity int64, maxQueue int) *admission {
	if capacity < 1 {
		capacity = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{capacity: capacity, maxQueue: maxQueue}
}

// clamp bounds a requested weight to what the semaphore can ever grant.
func (a *admission) clamp(n int64) int64 {
	if n < 1 {
		return 1
	}
	if n > a.capacity {
		return a.capacity
	}
	return n
}

// acquire obtains weight n (pre-clamped with clamp), waiting in FIFO order
// behind earlier waiters. It fails with errQueueFull when the wait queue is
// at capacity and with ctx.Err() when the context is cancelled while
// waiting.
func (a *admission) acquire(ctx context.Context, n int64) error {
	a.mu.Lock()
	if len(a.queue) == 0 && a.inUse+n <= a.capacity {
		a.inUse += n
		a.mu.Unlock()
		return nil
	}
	if len(a.queue) >= a.maxQueue {
		a.mu.Unlock()
		return errQueueFull
	}
	w := &waiter{n: n, ready: make(chan struct{})}
	a.queue = append(a.queue, w)
	a.mu.Unlock()
	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		for i, q := range a.queue {
			if q == w {
				a.queue = append(a.queue[:i], a.queue[i+1:]...)
				a.mu.Unlock()
				return ctx.Err()
			}
		}
		// Already granted between the ctx firing and taking the lock: give
		// the weight back and report the cancellation.
		a.mu.Unlock()
		a.release(n)
		return ctx.Err()
	}
}

// release returns weight n and grants queued waiters, in order, while they
// fit.
func (a *admission) release(n int64) {
	a.mu.Lock()
	a.inUse -= n
	if a.inUse < 0 {
		a.inUse = 0
	}
	for len(a.queue) > 0 {
		w := a.queue[0]
		if a.inUse+w.n > a.capacity {
			break
		}
		a.inUse += w.n
		a.queue = a.queue[1:]
		close(w.ready)
	}
	a.mu.Unlock()
}

// load returns the in-use weight and queue depth (for /healthz).
func (a *admission) load() (inUse int64, queued int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inUse, len(a.queue)
}
