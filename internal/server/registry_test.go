package server

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFile writes a dataset file into dir and returns its path.
func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRegistryLoadAndList(t *testing.T) {
	dir := t.TempDir()
	specs := map[string]string{
		"music": writeFile(t, dir, "music.txt", "recorded_by(Swim, Caribou).\nrating(Swim, 2).\n"),
		"chain": writeFile(t, dir, "chain.txt", "E(0, 1).\nE(1, 2).\n"),
	}
	r, err := NewRegistry(specs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Version() != 1 {
		t.Fatalf("Version() = %d, want 1", r.Version())
	}
	list := r.List()
	if len(list) != 2 || list[0].Name != "chain" || list[1].Name != "music" {
		t.Fatalf("List() = %v, want [chain music] sorted", list)
	}
	ds, ok := r.Get("music")
	if !ok || ds.Atoms != 2 || ds.Version != 1 || ds.DB == nil {
		t.Fatalf("Get(music) = %+v ok=%v", ds, ok)
	}
	if len(ds.Relations) != 2 || ds.Relations[0].Name != "rating" || ds.Relations[1].Name != "recorded_by" {
		t.Fatalf("relations not sorted by name: %+v", ds.Relations)
	}
	if ds.Relations[0].Arity != 2 || ds.Relations[0].Tuples != 1 {
		t.Fatalf("rating info = %+v, want arity 2, 1 tuple", ds.Relations[0])
	}
	if _, ok := r.Get("nope"); ok {
		t.Fatal("Get(nope) succeeded")
	}
}

// TestRegistryStorageStats pins the dictionary-size, backend, load-timing,
// and per-column distinct-term summaries the /v1/datasets listing and the
// /metrics.json storage gauges are built from.
func TestRegistryStorageStats(t *testing.T) {
	dir := t.TempDir()
	r, err := NewRegistry(map[string]string{
		"music": writeFile(t, dir, "music.txt",
			"recorded_by(Swim, Caribou).\nrecorded_by(Suns, Caribou).\nrating(Swim, 2).\n"),
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, _ := r.Get("music")
	// Distinct constants: Swim, Suns, Caribou, 2.
	if ds.DictTerms != 4 {
		t.Fatalf("DictTerms = %d, want 4", ds.DictTerms)
	}
	if ds.Backend != ds.DB.Backend().String() {
		t.Fatalf("Backend = %q, want %q", ds.Backend, ds.DB.Backend().String())
	}
	if ds.LoadNS <= 0 {
		t.Fatalf("LoadNS = %d, want > 0", ds.LoadNS)
	}
	// recorded_by holds (Swim, Caribou) and (Suns, Caribou): two distinct
	// subjects, one distinct object.
	rb := ds.Relations[1]
	if rb.Name != "recorded_by" {
		t.Fatalf("Relations[1] = %+v, want recorded_by", rb)
	}
	want := []ColumnInfo{{Pos: 0, Distinct: 2}, {Pos: 1, Distinct: 1}}
	if len(rb.Columns) != 2 || rb.Columns[0] != want[0] || rb.Columns[1] != want[1] {
		t.Fatalf("recorded_by columns = %+v, want %+v", rb.Columns, want)
	}
}

func TestRegistryReloadSwapsAtomically(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "d.txt", "E(0, 1).\n")
	r, err := NewRegistry(map[string]string{"d": path})
	if err != nil {
		t.Fatal(err)
	}
	before, _ := r.Get("d")

	writeFile(t, dir, "d.txt", "E(0, 1).\nE(1, 2).\nE(2, 3).\n")
	version, err := r.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if version != 2 || r.Version() != 2 {
		t.Fatalf("reload version = %d (registry %d), want 2", version, r.Version())
	}
	after, _ := r.Get("d")
	if after.Atoms != 3 || after.Version != 2 {
		t.Fatalf("reloaded snapshot = %+v, want 3 atoms at version 2", after)
	}
	// The old snapshot a long-running request may still hold is untouched.
	if before.Atoms != 1 || before.Version != 1 || before.DB.Size() != 1 {
		t.Fatalf("pre-reload snapshot mutated: %+v", before)
	}
}

func TestRegistryReloadFailureKeepsServing(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "d.txt", "E(0, 1).\n")
	r, err := NewRegistry(map[string]string{"d": path})
	if err != nil {
		t.Fatal(err)
	}
	writeFile(t, dir, "d.txt", "this is not a database(\n")
	version, err := r.Reload()
	if err == nil {
		t.Fatal("Reload() of a broken file succeeded")
	}
	if !strings.Contains(err.Error(), `dataset "d"`) {
		t.Errorf("reload error %q does not name the dataset", err)
	}
	if version != 1 || r.Version() != 1 {
		t.Fatalf("failed reload changed the version: %d", r.Version())
	}
	ds, ok := r.Get("d")
	if !ok || ds.Atoms != 1 || ds.Version != 1 {
		t.Fatalf("previous snapshot not serving after failed reload: %+v", ds)
	}
}

func TestNewRegistryErrors(t *testing.T) {
	if _, err := NewRegistry(nil); err == nil {
		t.Error("NewRegistry(nil) succeeded")
	}
	if _, err := NewRegistry(map[string]string{"": "x.txt"}); err == nil {
		t.Error("NewRegistry with empty name succeeded")
	}
	if _, err := NewRegistry(map[string]string{"d": filepath.Join(t.TempDir(), "missing.txt")}); err == nil {
		t.Error("NewRegistry with missing file succeeded")
	}
}
