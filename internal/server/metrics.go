package server

import (
	"net/http"

	"wdpt/internal/obs"
)

// SetMetricsExtra installs a hook that appends additional metric families
// to the /metrics exposition, emitted after the server's own families and
// before the Go runtime block. The cluster coordinator uses this to merge
// its per-peer latency histograms and per-endpoint counter families into
// the one scrape. Call before serving; the hook must be safe for
// concurrent scrapes.
func (s *Server) SetMetricsExtra(f func(e *obs.Exposition)) { s.metricsExtra = f }

// handleMetrics is GET /metrics: the Prometheus text exposition (format
// 0.0.4) of the server's counters, gauges, latency histograms, and Go
// runtime metrics. The emission order is fixed and every snapshot function
// sorts its series, so two scrapes of the same state are byte-identical
// apart from the metric values themselves.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var e obs.Exposition
	e.WriteCounters(s.st)
	inUse, queued := s.adm.load()
	e.Gauge(obs.GaugeInFlight, "Admission weight currently held by evaluating queries.", inUse)
	e.Gauge(obs.GaugeQueueDepth, "Admission wait-queue depth.", int64(queued))
	e.Gauge(obs.GaugeCacheEntries, "Result cache occupancy in entries.", int64(s.cache.len()))
	e.HistogramVec(s.qdur, "Wall time of /v1/query requests.")
	e.Histogram(obs.HistAdmissionWait, "Time queries spent waiting for admission.", nil,
		[]obs.LabeledHistogram{{Snap: s.admWait.Snapshot()}})
	e.Histogram(obs.HistCacheLookup, "Result-cache lookup latency.", nil,
		[]obs.LabeledHistogram{{Snap: s.cacheLookup.Snapshot()}})
	if s.metricsExtra != nil {
		s.metricsExtra(&e)
	}
	e.WriteRuntimeMetrics()
	w.Header().Set("Content-Type", obs.PromContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(e.String()))
}
