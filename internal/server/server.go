// Package server implements wdptd, the concurrent WDPT query service: a
// dataset registry of named databases with atomic hot reload, an HTTP/JSON
// query endpoint mapped onto the consolidated Solve API, weighted admission
// control over the server's total in-flight parallelism, and a bounded LRU
// cache of response bodies.
//
// The response body of POST /v1/query is the internal/report document —
// byte-identical to what wdpteval -json prints for the same query, database,
// mode, and options — and evaluation errors map onto the same guard
// taxonomy the CLI exposes as exit codes: 504 deadline, 413 tuple budget,
// 206 answer limit (the body carries the truncated partial answer set).
// See docs/SERVER.md for the API reference.
package server

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"sync"
	"time"

	"wdpt/internal/core"
	"wdpt/internal/cq"
	"wdpt/internal/cqeval"
	"wdpt/internal/db"
	"wdpt/internal/guard"
	"wdpt/internal/obs"
	"wdpt/internal/report"
	"wdpt/internal/sparql"
)

// maxRequestBytes bounds the size of a /v1/query request document.
const maxRequestBytes = 1 << 20

// Config configures a Server. Registry is required; every other field has a
// usable zero value.
type Config struct {
	// Registry is the dataset registry queries address by name. Required.
	Registry *Registry
	// MaxInFlight bounds the total parallelism of concurrently evaluating
	// queries (each request holds a weight equal to its effective
	// parallelism). Values < 1 default to runtime.NumCPU().
	MaxInFlight int
	// MaxQueue bounds the admission wait queue; a request arriving when the
	// semaphore is exhausted and the queue is full is rejected with 429.
	// 0 disables queueing (immediate 429 under saturation).
	MaxQueue int
	// WidthBound, when > 0, fast-rejects (422) queries that are not globally
	// in TW(WidthBound) — an analysis-only check that runs before any
	// evaluation work is admitted.
	WidthBound int
	// CacheSize bounds the result cache (entries); values < 1 disable it.
	CacheSize int
	// Stats receives the server.* counters and the engine counters of
	// stats-carrying requests. nil allocates a private Stats.
	Stats *obs.Stats
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// QueryLog, when non-nil, receives one structured line per /v1/query
	// request: request ID, dataset and its registry version, mode, budgets,
	// degradation tier, counters, outcome, and wall time. wdptd wires a
	// JSON slog handler here, producing a JSON-lines query log.
	QueryLog *slog.Logger
	// SlowQueryThreshold, when > 0, promotes query-log lines at or above
	// this wall time to WARN and inlines the request's span tree.
	SlowQueryThreshold time.Duration
	// BaseContext, when non-nil, parents every request's evaluation
	// context in addition to Shutdown: cancelling it (the process's
	// signal context in wdptd) drains the server exactly like Shutdown
	// does. nil defaults to Background.
	BaseContext context.Context
}

// Server is the wdptd HTTP handler: it serves /v1/query, /healthz,
// /v1/datasets, /metrics, /admin/reload, /admin/snapshot, and (optionally)
// /debug/pprof/.
// Create one with NewServer and shut it down with Shutdown, which drains
// in-flight queries and cancels their contexts past the deadline.
type Server struct {
	cfg   Config
	reg   *Registry
	adm   *admission
	cache *resultCache
	st    *obs.Stats
	mux   *http.ServeMux

	// qdur is the per-request latency histogram family, labeled
	// dataset × mode × outcome; admWait and cacheLookup time the admission
	// queue and the result-cache lookup. All three are scraped by
	// GET /metrics.
	qdur        *obs.HistVec
	admWait     *obs.Histogram
	cacheLookup *obs.Histogram
	queryLog    *slog.Logger

	// metricsExtra, when set (SetMetricsExtra), appends additional families
	// to the /metrics exposition between the server's own families and the
	// runtime block.
	metricsExtra func(e *obs.Exposition)

	// baseCtx parents every request's evaluation context; Shutdown cancels
	// it to stop in-flight work past the drain deadline.
	baseCtx context.Context
	cancel  context.CancelFunc

	// shutMu orders the closed flag against inflight.Add so Shutdown's Wait
	// cannot race a request that is past the closed check.
	shutMu   sync.RWMutex
	closed   bool
	inflight sync.WaitGroup
}

// NewServer builds a Server from cfg.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("server: Config.Registry is required")
	}
	st := cfg.Stats
	if st == nil {
		st = obs.NewStats()
	}
	capacity := int64(cfg.MaxInFlight)
	if capacity < 1 {
		capacity = int64(runtime.NumCPU())
	}
	s := &Server{
		cfg:         cfg,
		reg:         cfg.Registry,
		adm:         newAdmission(capacity, cfg.MaxQueue),
		cache:       newResultCache(cfg.CacheSize, st),
		st:          st,
		mux:         http.NewServeMux(),
		qdur:        obs.NewHistVec(obs.HistQueryDuration, nil, "dataset", "mode", "outcome"),
		admWait:     obs.NewHistogram(nil),
		cacheLookup: obs.NewHistogram(nil),
		queryLog:    cfg.QueryLog,
	}
	base := cfg.BaseContext
	if base == nil {
		base = context.Background()
	}
	s.baseCtx, s.cancel = context.WithCancel(base)
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/datasets", s.handleDatasets)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /metrics.json", s.handleMetricsJSON)
	s.mux.HandleFunc("POST /admin/reload", s.handleReload)
	s.mux.HandleFunc("POST /admin/snapshot", s.handleSnapshot)
	if cfg.EnablePprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Registry returns the server's dataset registry (for SIGHUP-driven
// reloads).
func (s *Server) Registry() *Registry { return s.reg }

// Stats returns the stats sink carrying the server.* counters.
func (s *Server) Stats() *obs.Stats { return s.st }

// EffectiveParallelism resolves a request's Parallelism field exactly as
// handleQuery does: 0 means NumCPU, floors at 1, and clamps to the
// server's admission capacity. The cluster coordinator mirrors this when
// it builds a merged report, so the Parallelism field of a scattered
// union response is byte-identical to the single-node one.
func (s *Server) EffectiveParallelism(requested int) int {
	par := requested
	if par == 0 {
		par = runtime.NumCPU()
	}
	if par < 1 {
		par = 1
	}
	return int(s.adm.clamp(int64(par)))
}

// WidthBound returns the server's configured global treewidth bound (0 when
// unbounded). The cluster coordinator replicates the width fast-reject
// before scattering, so a query the single node would 422 is never served
// merged.
func (s *Server) WidthBound() int { return s.cfg.WidthBound }

// Shutdown drains the server: new queries are rejected with 503, in-flight
// queries run to completion, and — if ctx expires first — their evaluation
// contexts are cancelled so the guard meters stop them at the next
// checkpoint. Shutdown returns once every in-flight query has finished,
// with ctx.Err() when the drain was forced.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutMu.Lock()
	s.closed = true
	s.shutMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.cancel()
		return nil
	case <-ctx.Done():
		s.cancel()
		<-done
		return ctx.Err()
	}
}

// begin registers a request against the in-flight drain group, failing when
// the server is shutting down.
func (s *Server) begin() bool {
	s.shutMu.RLock()
	defer s.shutMu.RUnlock()
	if s.closed {
		return false
	}
	s.inflight.Add(1)
	return true
}

// Request is the /v1/query document.
type Request struct {
	// Dataset names the registered database to evaluate against.
	Dataset string `json:"dataset"`
	// Query is the query text: algebraic ("SELECT ?x WHERE ..."), with
	// top-level UNION for unions of WDPTs, or the explicit tree format
	// ("ANS(?x) { ... }").
	Query string `json:"query"`
	// Mode is the evaluation mode (the wdpteval -mode vocabulary plus
	// exact-naive); empty means enumerate.
	Mode string `json:"mode,omitempty"`
	// Engine names the CQ engine (auto|naive|yannakakis|decomposition|
	// hypertree); empty means auto.
	Engine string `json:"engine,omitempty"`
	// Mapping is the candidate mapping h for the decision modes; "?" prefixes
	// on variable names are accepted and stripped.
	Mapping map[string]string `json:"mapping,omitempty"`
	// Parallelism is the Solve worker-pool bound: 1 sequential, 0 NumCPU.
	// Effective parallelism is clamped to the server's MaxInFlight.
	Parallelism int `json:"parallelism,omitempty"`
	// Budget bounds the evaluation; nil imposes no limits.
	Budget *BudgetSpec `json:"budget,omitempty"`
	// Fallback degrades a budget-tripped decision mode down the
	// exact → max → partial ladder instead of failing.
	Fallback bool `json:"fallback,omitempty"`
	// Stats includes the engine work counters in the response. Stats
	// responses bypass the result cache (counters vary run to run).
	Stats bool `json:"stats,omitempty"`
}

// BudgetSpec is the wire form of guard.Budget. Zero fields impose no limit.
type BudgetSpec struct {
	// WallMS is the wall-clock allowance in milliseconds.
	WallMS int64 `json:"wall_ms,omitempty"`
	// MaxTuples caps the intermediate tuples materialized.
	MaxTuples int64 `json:"max_tuples,omitempty"`
	// MaxAnswers caps (and truncates) the enumerated answers.
	MaxAnswers int64 `json:"max_answers,omitempty"`
}

// budget converts the wire form; a nil spec is the unlimited budget.
func (b *BudgetSpec) budget() guard.Budget {
	if b == nil {
		return guard.Budget{}
	}
	return guard.Budget{
		Wall:       time.Duration(b.WallMS) * time.Millisecond,
		MaxTuples:  b.MaxTuples,
		MaxAnswers: b.MaxAnswers,
	}
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	// Error is the typed payload.
	Error ErrorPayload `json:"error"`
}

// ErrorPayload is a typed error: a stable code from the guard taxonomy (or
// a request-validation code), the human-readable message, and — for budget
// trips — the progress the evaluation made before tripping, so clients can
// size budgets from observed failures.
type ErrorPayload struct {
	// Code is the stable machine-readable bucket: deadline, tuple_budget,
	// answer_limit, injected_fault, panic, canceled, error, or a
	// request-level code (bad_request, bad_query, bad_mode, bad_engine,
	// bad_budget, unknown_dataset, width_bound, queue_full, shutting_down,
	// reload_failed).
	Code string `json:"code"`
	// Message is the human-readable error.
	Message string `json:"message"`
	// Tuples is the meter's tuple reading when a budget tripped.
	Tuples int64 `json:"tuples,omitempty"`
	// Answers is the meter's answer reading when a budget tripped.
	Answers int64 `json:"answers,omitempty"`
	// ElapsedMS is the attempt's elapsed wall clock at the trip.
	ElapsedMS int64 `json:"elapsed_ms,omitempty"`
}

// Health is the /healthz body.
type Health struct {
	// Status is "ok", or "draining" during shutdown.
	Status string `json:"status"`
	// Version is the registry generation.
	Version int64 `json:"version"`
	// Datasets lists the registered dataset names, sorted.
	Datasets []string `json:"datasets"`
	// InFlight is the admission weight currently held by evaluating queries.
	InFlight int64 `json:"in_flight"`
	// Queued is the admission wait-queue depth.
	Queued int `json:"queued"`
}

// DatasetList is the /v1/datasets body.
type DatasetList struct {
	// Version is the registry generation.
	Version int64 `json:"version"`
	// Datasets are the current snapshots, sorted by name.
	Datasets []*Dataset `json:"datasets"`
}

// ReloadResult is the /admin/reload success body.
type ReloadResult struct {
	// Version is the registry generation after the reload.
	Version int64 `json:"version"`
}

// SnapshotResult is the /admin/snapshot success body.
type SnapshotResult struct {
	// Version is the registry generation the snapshots capture.
	Version int64 `json:"version"`
	// Files are the snapshot file names written, sorted.
	Files []string `json:"files"`
}

// solver abstracts core.PatternTree.Solve and uwdpt.Union.Solve so the
// query handler evaluates both through one code path.
type solver interface {
	Solve(ctx context.Context, d *db.Database, opts core.SolveOptions) (core.Result, error)
}

// parseRequestQuery parses the request query text into a solver (a single
// WDPT or a union), the member trees (for the width-bound check), and the
// canonical rendering that keys the result cache.
func parseRequestQuery(src string) (solver, []*core.PatternTree, string, error) {
	trimmed := strings.TrimSpace(src)
	if trimmed == "" {
		return nil, nil, "", fmt.Errorf("server: a query is required")
	}
	if strings.HasPrefix(strings.ToUpper(trimmed), "ANS") {
		p, err := sparql.ParseWDPT(trimmed)
		if err != nil {
			return nil, nil, "", err
		}
		return p, []*core.PatternTree{p}, p.String(), nil
	}
	u, err := sparql.ParseUnionQuery(trimmed)
	if err != nil {
		return nil, nil, "", err
	}
	trees := u.Trees()
	if len(trees) == 1 {
		return trees[0], trees, trees[0].String(), nil
	}
	parts := make([]string, 0, len(trees))
	for _, t := range trees {
		parts = append(parts, t.String())
	}
	return u, trees, strings.Join(parts, " UNION "), nil
}

// modeFromName resolves the wire-mode vocabulary.
func modeFromName(name string) (core.Mode, bool) {
	switch name {
	case "enumerate":
		return core.ModeEnumerate, true
	case "maximal":
		return core.ModeMaximal, true
	case "exact":
		return core.ModeExact, true
	case "exact-naive":
		return core.ModeExactNaive, true
	case "partial":
		return core.ModePartial, true
	case "max":
		return core.ModeMax, true
	}
	return 0, false
}

// engineFor resolves the wire-engine vocabulary (the wdpteval -engine
// values).
func engineFor(name string) (cqeval.Engine, error) {
	switch name {
	case "auto":
		return cqeval.Auto(), nil
	case "naive":
		return cqeval.Naive(), nil
	case "yannakakis":
		return cqeval.Yannakakis(), nil
	case "decomposition":
		return cqeval.Decomposition(), nil
	case "hypertree":
		return cqeval.Hypertree(3), nil
	}
	return nil, fmt.Errorf("server: unknown engine %q", name)
}

// requestID returns the request's correlation ID: the client's X-Request-Id
// header when present, otherwise a fresh random 16-hex-digit ID. The ID is
// echoed on the response and stamped on every query-log line.
func requestID(r *http.Request) string {
	if id := strings.TrimSpace(r.Header.Get("X-Request-Id")); id != "" {
		if len(id) > 128 {
			id = id[:128]
		}
		return id
	}
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "unknown"
	}
	return hex.EncodeToString(b[:])
}

// handleQuery is POST /v1/query.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.st.Inc(obs.CtrServerRequests)
	if !s.begin() {
		writeError(w, http.StatusServiceUnavailable, ErrorPayload{Code: "shutting_down", Message: "server is shutting down"})
		return
	}
	defer s.inflight.Done()

	start := time.Now()
	reqID := requestID(r)
	w.Header().Set("X-Request-Id", reqID)
	wantTrace := r.URL.Query().Get("trace") == "1"

	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, ErrorPayload{Code: "bad_request", Message: err.Error()})
		return
	}
	ds, ok := s.reg.Get(req.Dataset)
	if !ok {
		writeError(w, http.StatusNotFound, ErrorPayload{Code: "unknown_dataset", Message: fmt.Sprintf("unknown dataset %q", req.Dataset)})
		return
	}
	if req.Mode == "" {
		req.Mode = "enumerate"
	}
	mode, ok := modeFromName(req.Mode)
	if !ok {
		writeError(w, http.StatusBadRequest, ErrorPayload{Code: "bad_mode", Message: fmt.Sprintf("unknown mode %q", req.Mode)})
		return
	}

	// Past this point the dataset and mode are validated, so they are safe
	// histogram label values (bounded cardinality); everything below is
	// observed into the per-request histogram and the query log.
	collectSpans := wantTrace || (s.queryLog != nil && s.cfg.SlowQueryThreshold > 0)
	var (
		st      *obs.Stats
		tr      *obs.Collector
		root    obs.Span
		tree    []obs.SpanNode
		rootDur = time.Duration(-1)
	)
	if req.Stats || collectSpans {
		st = obs.NewStats()
	}
	if collectSpans {
		tr = &obs.Collector{}
		st.WithTrace(tr)
		root = st.StartSpan("query")
	}
	// endRoot closes the root span once and reconstructs the span tree; the
	// root's duration becomes the request's logged wall time, so ?trace=1
	// responses report exactly the wall time the query log carries.
	endRoot := func() []obs.SpanNode {
		if collectSpans && rootDur < 0 {
			root.End()
			tree = obs.BuildSpanTree(tr.Spans())
			for _, n := range tree {
				if n.Name == "query" {
					rootDur = time.Duration(n.DurationNS)
				}
			}
		}
		return tree
	}
	outcome := "ok"
	degradedTo := ""
	fail := func(status int, p ErrorPayload) {
		outcome = p.Code
		writeError(w, status, p)
	}
	defer func() {
		endRoot()
		wall := time.Since(start)
		if rootDur >= 0 {
			wall = rootDur
		}
		s.qdur.With(req.Dataset, req.Mode, outcome).Observe(wall)
		s.logQuery(r.Context(), reqID, &req, ds, outcome, degradedTo, st, wall, tree)
	}()

	if req.Engine == "" {
		req.Engine = "auto"
	}
	eng, err := engineFor(req.Engine)
	if err != nil {
		fail(http.StatusBadRequest, ErrorPayload{Code: "bad_engine", Message: err.Error()})
		return
	}
	if b := req.Budget; b != nil && (b.WallMS < 0 || b.MaxTuples < 0 || b.MaxAnswers < 0) {
		fail(http.StatusBadRequest, ErrorPayload{Code: "bad_budget", Message: "budget fields must be non-negative"})
		return
	}
	parseSpan := root.Child("parse")
	q, trees, canonical, err := parseRequestQuery(req.Query)
	parseSpan.End()
	if err != nil {
		fail(http.StatusBadRequest, ErrorPayload{Code: "bad_query", Message: err.Error()})
		return
	}
	if s.cfg.WidthBound > 0 {
		for _, t := range trees {
			if !t.GloballyIn(cq.TW(s.cfg.WidthBound)) {
				s.st.Inc(obs.CtrServerWidthRejects)
				fail(http.StatusUnprocessableEntity, ErrorPayload{
					Code:    "width_bound",
					Message: fmt.Sprintf("query exceeds the server treewidth bound %d", s.cfg.WidthBound),
				})
				return
			}
		}
	}
	par := req.Parallelism
	if par == 0 {
		par = runtime.NumCPU()
	}
	if par < 1 {
		par = 1
	}
	par = int(s.adm.clamp(int64(par)))

	// Stats responses bypass the cache (counters vary run to run); traced
	// responses do too, in both directions, because the trace is embedded
	// in the body.
	key := cacheKey(ds, canonical, &req, par)
	if !req.Stats && !wantTrace {
		lookupSpan := root.Child("cache_lookup")
		lookupStart := time.Now()
		body, hit := s.cache.get(key)
		s.cacheLookup.Observe(time.Since(lookupStart))
		lookupSpan.End()
		if hit {
			writeBody(w, http.StatusOK, body)
			return
		}
	}

	// The evaluation context is the request's, additionally cancelled when
	// Shutdown forces the drain.
	ctx, cancelReq := context.WithCancel(r.Context())
	defer cancelReq()
	stop := context.AfterFunc(s.baseCtx, cancelReq)
	defer stop()

	admSpan := root.Child("admission_wait")
	admStart := time.Now()
	admErr := s.adm.acquire(ctx, int64(par))
	s.admWait.Observe(time.Since(admStart))
	admSpan.End()
	if admErr != nil {
		if errors.Is(admErr, errQueueFull) {
			s.st.Inc(obs.CtrServerAdmissionRejects)
			w.Header().Set("Retry-After", "1")
			fail(http.StatusTooManyRequests, ErrorPayload{Code: "queue_full", Message: "admission queue full; retry later"})
			return
		}
		outcome = s.writeEvalError(w, admErr)
		return
	}
	defer s.adm.release(int64(par))

	solveEng := eng
	if st != nil {
		solveEng = cqeval.WithStats(eng, st)
	}
	h := cq.Mapping{}
	for k, v := range req.Mapping {
		h[strings.TrimPrefix(k, "?")] = v
	}
	opts := core.SolveOptions{
		Mode:        mode,
		Parallelism: par,
		Budget:      req.Budget.budget(),
		Fallback:    req.Fallback,
	}
	switch mode {
	case core.ModeEnumerate:
		opts.Engine = solveEng
	case core.ModeMaximal:
		// The maximal path drives the backtracking solver, not the engine
		// (mirroring wdpteval): Engine stays nil and counters land on Stats.
		opts.Stats = st
	default:
		opts.Engine = solveEng
		opts.Mapping = h
	}

	rep := report.Report{Mode: req.Mode, Engine: req.Engine, Parallelism: par}
	solveSpan := root.Child("solve")
	res, err := q.Solve(ctx, ds.DB, opts)
	solveSpan.End()
	var evalErr error
	switch mode {
	case core.ModeEnumerate, core.ModeMaximal:
		if err != nil && !errors.Is(err, guard.ErrAnswerLimit) {
			outcome = s.writeEvalError(w, err)
			return
		}
		// An answer-limit trip still carries the truncated partial answer
		// set; it is served as 206.
		evalErr = err
		rep.NoteDegraded(res)
		rep.SetAnswers(res.Answers)
	default:
		if err != nil {
			outcome = s.writeEvalError(w, err)
			return
		}
		rep.NoteDegraded(res)
		rep.SetResult(res.Holds)
	}
	if rep.Degraded != nil && *rep.Degraded {
		outcome = "degraded"
		degradedTo = rep.DegradedMode
	}
	if evalErr != nil {
		outcome = report.ErrorCode(evalErr)
	}
	if req.Stats {
		rep.Counters = st.Snapshot()
	}
	if wantTrace {
		// The root span must close before the tree can ride in the body,
		// so a traced response's trace excludes only the final encode.
		rep.Trace = endRoot()
	}
	var encSpan obs.Span
	if !wantTrace {
		encSpan = root.Child("encode")
	}
	var buf bytes.Buffer
	if err := report.Encode(&buf, rep); err != nil {
		encSpan.End()
		fail(http.StatusInternalServerError, ErrorPayload{Code: "error", Message: err.Error()})
		return
	}
	encSpan.End()
	status := report.HTTPStatus(evalErr)
	writeBody(w, status, buf.Bytes())
	if status == http.StatusOK && !req.Stats && !wantTrace {
		s.cache.put(key, buf.Bytes())
	}
}

// logQuery emits one structured query-log line for a finished /v1/query
// request; slow queries (≥ SlowQueryThreshold) are promoted to WARN with
// the span tree inline.
func (s *Server) logQuery(ctx context.Context, reqID string, req *Request, ds *Dataset, outcome, degradedTo string, st *obs.Stats, wall time.Duration, tree []obs.SpanNode) {
	if s.queryLog == nil {
		return
	}
	attrs := []slog.Attr{
		slog.String("request_id", reqID),
		slog.String("dataset", req.Dataset),
		slog.Int64("dataset_version", ds.Version),
		slog.String("mode", req.Mode),
		slog.String("engine", req.Engine),
		slog.String("outcome", outcome),
		slog.Int64("wall_ns", wall.Nanoseconds()),
	}
	if degradedTo != "" {
		attrs = append(attrs, slog.String("degraded_mode", degradedTo))
	}
	if b := req.Budget; b != nil {
		attrs = append(attrs,
			slog.Int64("budget_wall_ms", b.WallMS),
			slog.Int64("budget_max_tuples", b.MaxTuples),
			slog.Int64("budget_max_answers", b.MaxAnswers))
	}
	if counters := st.Snapshot(); len(counters) > 0 {
		attrs = append(attrs, slog.Any("counters", counters))
	}
	if s.cfg.SlowQueryThreshold > 0 && wall >= s.cfg.SlowQueryThreshold && len(tree) > 0 {
		attrs = append(attrs, slog.String("trace", obs.FormatSpanTree(tree)))
		s.queryLog.LogAttrs(ctx, slog.LevelWarn, "slow query", attrs...)
		return
	}
	s.queryLog.LogAttrs(ctx, slog.LevelInfo, "query", attrs...)
}

// handleHealthz is GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.shutMu.RLock()
	status := "ok"
	if s.closed {
		status = "draining"
	}
	s.shutMu.RUnlock()
	inUse, queued := s.adm.load()
	list := s.reg.List()
	names := make([]string, 0, len(list))
	for _, ds := range list {
		names = append(names, ds.Name)
	}
	writeJSON(w, http.StatusOK, Health{
		Status:   status,
		Version:  s.reg.Version(),
		Datasets: names,
		InFlight: inUse,
		Queued:   queued,
	})
}

// handleDatasets is GET /v1/datasets.
func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, DatasetList{Version: s.reg.Version(), Datasets: s.reg.List()})
}

// handleMetricsJSON is GET /metrics.json: the obs counter snapshot as one
// JSON object, keys sorted (json.Marshal orders map keys) — the pre-
// Prometheus /metrics body, kept for existing scrapers and the client.
// Storage-shape gauges for the current registry snapshots (dictionary
// size, per-relation tuple counts and per-column distinct-term counts;
// see docs/STORAGE.md) are merged in under "storage." keys — additive,
// so existing counter scrapers are unaffected.
func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	snap := s.st.Snapshot()
	for _, ds := range s.reg.List() {
		prefix := "storage." + ds.Name
		snap[prefix+".dict_terms"] = int64(ds.DictTerms)
		snap[prefix+".load_ns"] = ds.LoadNS
		for _, rel := range ds.Relations {
			rp := prefix + "." + rel.Name
			snap[rp+".tuples"] = int64(rel.Tuples)
			for _, col := range rel.Columns {
				snap[fmt.Sprintf("%s.col%d.distinct", rp, col.Pos)] = int64(col.Distinct)
			}
		}
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleReload is POST /admin/reload: re-parse every dataset file and swap
// the snapshot set atomically. A failed reload keeps the previous snapshots
// serving and reports 500.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	version, err := s.reg.Reload()
	if err != nil {
		writeError(w, http.StatusInternalServerError, ErrorPayload{Code: "reload_failed", Message: err.Error()})
		return
	}
	s.st.Inc(obs.CtrServerReloads)
	writeJSON(w, http.StatusOK, ReloadResult{Version: version})
}

// handleSnapshot is POST /admin/snapshot: durably persist every current
// dataset to the registry's snapshot directory via the crash-safe writer.
// Without a -snapshot-dir the endpoint reports 400; a write failure
// reports 500 and leaves previously published snapshots intact.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.reg.SnapshotDir() == "" {
		writeError(w, http.StatusBadRequest, ErrorPayload{
			Code:    "no_snapshot_dir",
			Message: "server: snapshot persistence is disabled (start wdptd with -snapshot-dir)",
		})
		return
	}
	version, files, err := s.reg.SaveSnapshots()
	if err != nil {
		writeError(w, http.StatusInternalServerError, ErrorPayload{Code: "snapshot_failed", Message: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, SnapshotResult{Version: version, Files: files})
}

// writeEvalError serves an evaluation error: status from the shared report
// taxonomy, a typed payload carrying the trip's progress readings, and a
// shutting_down override when the error is our own drain cancellation
// rather than the client's. It returns the code served, which doubles as
// the request's outcome label.
func (s *Server) writeEvalError(w http.ResponseWriter, err error) string {
	status, code := report.HTTPStatus(err), report.ErrorCode(err)
	if errors.Is(err, context.Canceled) && s.baseCtx.Err() != nil {
		status, code = http.StatusServiceUnavailable, "shutting_down"
	}
	p := ErrorPayload{Code: code, Message: err.Error()}
	var trip *guard.TripError
	if errors.As(err, &trip) {
		p.Tuples, p.Answers, p.ElapsedMS = trip.Tuples, trip.Answers, trip.Elapsed.Milliseconds()
	}
	writeError(w, status, p)
	return code
}

// writeError writes an ErrorResponse with the report encoder's formatting.
func writeError(w http.ResponseWriter, status int, p ErrorPayload) {
	writeJSON(w, status, ErrorResponse{Error: p})
}

// writeJSON writes v as a two-space-indented JSON document plus newline —
// the same framing as report.Encode, so every body the server produces
// renders identically.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, `{"error":{"code":"error","message":"response encoding failed"}}`, http.StatusInternalServerError)
		return
	}
	writeBody(w, status, append(data, '\n'))
}

// writeBody writes a pre-encoded JSON body.
func writeBody(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}
