// Observability tests for wdptd: the Prometheus exposition at /metrics,
// the JSON back-compat snapshot at /metrics.json, per-request tracing via
// ?trace=1, and the structured query log with slow-query promotion.
package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"wdpt/internal/obs"
	"wdpt/internal/report"
	"wdpt/internal/server"
)

// syncBuffer serializes writes so the slog handler can be shared with the
// server goroutines httptest spawns.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// lastLogLine decodes the final JSON line written to the query log.
func lastLogLine(t *testing.T, buf *syncBuffer) map[string]any {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("query log is empty")
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &m); err != nil {
		t.Fatalf("query log line is not JSON: %v\n%s", err, lines[len(lines)-1])
	}
	return m
}

// TestMetricsExposition pins the /metrics contract: the body parses as
// Prometheus text exposition 0.0.4, histogram buckets are cumulative and
// monotone, and the per-request histogram carries dataset/mode/outcome
// labels for the traffic the test just sent.
func TestMetricsExposition(t *testing.T) {
	_, d, queryText, _ := musicFixture(t)
	_, cl, hs := startServer(t, server.Config{MaxInFlight: 8, CacheSize: 8},
		map[string]string{"music": writeDataset(t, d)})

	for i := 0; i < 3; i++ {
		if _, err := cl.Query(context.Background(), server.Request{Dataset: "music", Query: queryText}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Query(context.Background(), server.Request{Dataset: "music", Query: queryText, Mode: "maximal"}); err != nil {
		t.Fatal(err)
	}

	resp, err := hs.Client().Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, obs.PromContentType)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParsePromText(string(raw))
	if err != nil {
		t.Fatalf("/metrics does not parse as exposition format: %v", err)
	}
	if err := obs.CheckHistograms(fams); err != nil {
		t.Fatalf("/metrics histograms are inconsistent: %v", err)
	}

	qd := fams["wdptd_query_duration_seconds"]
	if qd == nil || qd.Type != "histogram" {
		t.Fatalf("wdptd_query_duration_seconds family missing or mistyped: %+v", qd)
	}
	var sawEnumerate, sawMaximal bool
	for _, s := range qd.Samples {
		if s.Name != "wdptd_query_duration_seconds_count" {
			continue
		}
		if s.Labels["dataset"] != "music" || s.Labels["outcome"] != "ok" {
			t.Fatalf("unexpected series labels %v", s.Labels)
		}
		switch s.Labels["mode"] {
		case "enumerate":
			sawEnumerate = true
			if s.Value != 3 {
				t.Fatalf("enumerate count = %v, want 3 (cache hits observed too)", s.Value)
			}
		case "maximal":
			sawMaximal = true
		}
	}
	if !sawEnumerate || !sawMaximal {
		t.Fatalf("missing per-mode series (enumerate=%v maximal=%v)", sawEnumerate, sawMaximal)
	}
	for _, name := range []string{"wdptd_admission_wait_seconds", "wdptd_cache_lookup_seconds"} {
		if f := fams[name]; f == nil || f.Type != "histogram" {
			t.Fatalf("%s family missing", name)
		}
	}
	for _, name := range []string{"wdptd_inflight_queries", "wdptd_admission_queue_depth", "wdptd_result_cache_entries"} {
		if f := fams[name]; f == nil || f.Type != "gauge" {
			t.Fatalf("%s gauge missing", name)
		}
	}
	for _, name := range obs.RuntimeMetricNames() {
		if fams[name] == nil {
			t.Fatalf("runtime metric %s missing", name)
		}
	}
	if f := fams["wdpt_server_requests_total"]; f == nil || len(f.Samples) != 1 || f.Samples[0].Value < 4 {
		t.Fatalf("wdpt_server_requests_total = %+v", f)
	}
}

// TestMetricsJSONBackCompat pins the old JSON snapshot at /metrics.json.
func TestMetricsJSONBackCompat(t *testing.T) {
	_, d, queryText, _ := musicFixture(t)
	_, cl, _ := startServer(t, server.Config{MaxInFlight: 4},
		map[string]string{"music": writeDataset(t, d)})
	if _, err := cl.Query(context.Background(), server.Request{Dataset: "music", Query: queryText}); err != nil {
		t.Fatal(err)
	}
	m, err := cl.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m["server.requests"] < 1 {
		t.Fatalf("metrics.json snapshot = %v", m)
	}
	// The storage-shape gauges ride along under "storage." keys: dictionary
	// size, per-dataset load timing, and per-relation/per-column stats.
	if m["storage.music.dict_terms"] <= 0 {
		t.Fatalf("metrics.json lacks storage.music.dict_terms: %v", m)
	}
	if m["storage.music.load_ns"] <= 0 {
		t.Fatalf("metrics.json lacks storage.music.load_ns: %v", m)
	}
	found := false
	for k := range m {
		if strings.HasPrefix(k, "storage.music.") && strings.HasSuffix(k, ".distinct") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("metrics.json lacks per-column distinct gauges: %v", m)
	}
}

// TestQueryTraceMatchesLog is the tracing acceptance pin: ?trace=1 returns
// a span tree whose root is the request's "query" span, and the root's
// duration is exactly the wall time the query log records. The request ID
// from X-Request-Id is echoed on the response and stamped on the log line.
func TestQueryTraceMatchesLog(t *testing.T) {
	_, d, queryText, _ := musicFixture(t)
	buf := &syncBuffer{}
	_, _, hs := startServer(t, server.Config{
		MaxInFlight: 4,
		QueryLog:    slog.New(slog.NewJSONHandler(buf, nil)),
	}, map[string]string{"music": writeDataset(t, d)})

	payload, err := json.Marshal(server.Request{Dataset: "music", Query: queryText})
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, hs.URL+"/v1/query?trace=1", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("X-Request-Id", "test-trace-42")
	resp, err := hs.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if got := resp.Header.Get("X-Request-Id"); got != "test-trace-42" {
		t.Fatalf("X-Request-Id echo = %q", got)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var rep report.Report
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("decoding traced report: %v", err)
	}
	if len(rep.Trace) != 1 || rep.Trace[0].Name != "query" {
		t.Fatalf("trace roots = %+v", rep.Trace)
	}
	names := map[string]bool{}
	for _, c := range rep.Trace[0].Children {
		names[c.Name] = true
	}
	for _, want := range []string{"parse", "admission_wait", "solve"} {
		if !names[want] {
			t.Fatalf("trace missing %q child: %+v", want, rep.Trace[0].Children)
		}
	}

	line := lastLogLine(t, buf)
	if line["request_id"] != "test-trace-42" || line["dataset"] != "music" || line["outcome"] != "ok" {
		t.Fatalf("query log line = %v", line)
	}
	wallNS, ok := line["wall_ns"].(float64)
	if !ok {
		t.Fatalf("wall_ns missing: %v", line)
	}
	if int64(wallNS) != rep.Trace[0].DurationNS {
		t.Fatalf("logged wall %dns != trace root %dns", int64(wallNS), rep.Trace[0].DurationNS)
	}
	if ver, ok := line["dataset_version"].(float64); !ok || ver < 1 {
		t.Fatalf("dataset_version = %v", line["dataset_version"])
	}
}

// TestSlowQueryWarn pins the slow-query promotion: with a 1ns threshold,
// every query logs at WARN with its span tree inline — without ?trace=1
// and without the trace leaking into the response body.
func TestSlowQueryWarn(t *testing.T) {
	_, d, queryText, _ := musicFixture(t)
	buf := &syncBuffer{}
	_, cl, _ := startServer(t, server.Config{
		MaxInFlight:        4,
		QueryLog:           slog.New(slog.NewJSONHandler(buf, nil)),
		SlowQueryThreshold: time.Nanosecond,
	}, map[string]string{"music": writeDataset(t, d)})

	res, err := cl.Query(context.Background(), server.Request{Dataset: "music", Query: queryText})
	if err != nil {
		t.Fatal(err)
	}
	if res.Report == nil || len(res.Report.Trace) != 0 {
		t.Fatalf("trace must not leak into untraced responses: %+v", res.Report)
	}
	line := lastLogLine(t, buf)
	if line["level"] != "WARN" || line["msg"] != "slow query" {
		t.Fatalf("slow query not promoted: %v", line)
	}
	tr, ok := line["trace"].(string)
	if !ok || !strings.Contains(tr, "query ") || !strings.Contains(tr, "  solve ") {
		t.Fatalf("inline span tree missing: %v", line["trace"])
	}
}
