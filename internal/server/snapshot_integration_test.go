// Integration tests for the registry's durable-snapshot persistence: the
// /admin/snapshot endpoint, snapshot-preferred hot reloads racing in-flight
// queries, and quarantine of corrupt snapshot files. Everything goes through
// the real HTTP stack like integration_test.go.
package server_test

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"

	"wdpt/internal/gen"
	"wdpt/internal/obs"
	"wdpt/internal/server"
	"wdpt/internal/server/client"
)

// startSnapshotServer builds a registry with snapshot persistence in a fresh
// temp dir, a server sharing its stats sink, and a client — the -snapshot-dir
// wiring of cmd/wdptd reproduced in-process.
func startSnapshotServer(t *testing.T, specs map[string]string) (string, *obs.Stats, *server.Registry, *client.Client, *httptest.Server) {
	t.Helper()
	dir := t.TempDir()
	st := obs.NewStats()
	reg, err := server.NewRegistryWithConfig(server.RegistryConfig{
		Specs:       specs,
		SnapshotDir: dir,
		Stats:       st,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.NewServer(server.Config{Registry: reg, Stats: st})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return dir, st, reg, client.New(hs.URL, hs.Client()), hs
}

// TestAdminSnapshotRequiresDir pins the 400 contract: without a snapshot
// directory, POST /admin/snapshot refuses with the typed no_snapshot_dir
// payload instead of writing anywhere.
func TestAdminSnapshotRequiresDir(t *testing.T) {
	_, d, _, _ := musicFixture(t)
	_, cl, _ := startServer(t, server.Config{}, map[string]string{"music": writeDataset(t, d)})
	_, err := cl.Snapshot(context.Background())
	if err == nil || !strings.Contains(err.Error(), "no_snapshot_dir") {
		t.Fatalf("Snapshot without a dir: err %v, want the no_snapshot_dir payload", err)
	}
}

// TestAdminSnapshotPersistsAndReloadPrefersIt drives the full persistence
// cycle over HTTP: save snapshots, hot-reload while queries are in flight,
// and require the swapped-in snapshot-backed datasets to serve byte-identical
// bodies — with no goroutine leaks once the racing clients drain.
func TestAdminSnapshotPersistsAndReloadPrefersIt(t *testing.T) {
	_, d, queryText, _ := musicFixture(t)
	dir, st, reg, cl, hs := startSnapshotServer(t, map[string]string{"music": writeDataset(t, d)})
	ctx := context.Background()
	req := server.Request{Dataset: "music", Query: queryText, Parallelism: 1}

	// Warm baseline: the text-parsed dataset's exact body bytes.
	baseline, err := cl.Query(ctx, req)
	if err != nil || baseline.Status != http.StatusOK {
		t.Fatalf("baseline query: %v (status %d)", err, baseline.Status)
	}
	if ds, _ := reg.Get("music"); ds.Source != "text" {
		t.Fatalf("initial source %q, want text (no snapshot on disk yet)", ds.Source)
	}

	res, err := cl.Snapshot(ctx)
	if err != nil {
		t.Fatalf("POST /admin/snapshot: %v", err)
	}
	if res.Version != 1 || len(res.Files) != 1 || res.Files[0] != "music.snap" {
		t.Fatalf("snapshot result %+v, want version 1 and [music.snap]", res)
	}
	if _, err := os.Stat(filepath.Join(dir, "music.snap")); err != nil {
		t.Fatalf("written snapshot file: %v", err)
	}

	// Hot-reload with queries in flight: the registry swaps to the
	// snapshot-backed generation while racing clients keep reading the old
	// one — every response must be one of the two consistent bodies (here
	// identical by the parity contract).
	base := runtime.NumGoroutine()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				qr, err := cl.Query(ctx, req)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(qr.Body, baseline.Body) {
					errs <- &parityError{got: qr.Body, want: baseline.Body}
					return
				}
			}
		}()
	}
	version, err := cl.Reload(ctx)
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("in-flight query during reload: %v", err)
	}
	if version != 2 {
		t.Fatalf("reloaded version %d, want 2", version)
	}
	ds, _ := reg.Get("music")
	if ds.Source != "snapshot" {
		t.Fatalf("post-reload source %q, want snapshot", ds.Source)
	}
	snap := st.Snapshot()
	if snap["server.snapshot_writes"] != 1 || snap["server.snapshot_loads"] != 1 {
		t.Fatalf("counters writes=%d loads=%d, want 1/1",
			snap["server.snapshot_writes"], snap["server.snapshot_loads"])
	}

	// The snapshot-backed dataset serves byte-identical bodies.
	after, err := cl.Query(ctx, req)
	if err != nil || after.Status != http.StatusOK {
		t.Fatalf("post-reload query: %v (status %d)", err, after.Status)
	}
	if !bytes.Equal(after.Body, baseline.Body) {
		t.Fatalf("snapshot-backed body differs from text-backed body:\n%s\nvs\n%s", after.Body, baseline.Body)
	}
	hs.Client().CloseIdleConnections()
	waitGoroutines(t, base)
}

// parityError reports a body mismatch from a racing worker.
type parityError struct{ got, want []byte }

func (e *parityError) Error() string {
	return "response body diverged during reload:\n" + string(e.got) + "\nvs baseline\n" + string(e.want)
}

// TestSnapshotQuarantine pins the corruption path: a damaged snapshot file
// is counted, moved aside as *.snap.quarantined, and the dataset falls back
// to parsing its text source — corrupt bytes are never served.
func TestSnapshotQuarantine(t *testing.T) {
	_, d, queryText, _ := musicFixture(t)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "music.snap"), []byte("WDPTSNAPgarbage-not-a-snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	st := obs.NewStats()
	reg, err := server.NewRegistryWithConfig(server.RegistryConfig{
		Specs:       map[string]string{"music": writeDataset(t, d)},
		SnapshotDir: dir,
		Stats:       st,
	})
	if err != nil {
		t.Fatalf("registry with a corrupt snapshot must fall back to text: %v", err)
	}
	ds, _ := reg.Get("music")
	if ds.Source != "text" {
		t.Fatalf("source %q, want text fallback", ds.Source)
	}
	if got := st.Snapshot()["server.snapshot_quarantined"]; got != 1 {
		t.Fatalf("server.snapshot_quarantined = %d, want 1", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "music.snap.quarantined")); err != nil {
		t.Fatalf("quarantined file: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "music.snap")); !os.IsNotExist(err) {
		t.Fatalf("corrupt music.snap still in place (err %v), want it moved aside", err)
	}
	// The fallback dataset still answers.
	srv, err := server.NewServer(server.Config{Registry: reg, Stats: st})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	defer hs.Close()
	cl := client.New(hs.URL, hs.Client())
	qr, err := cl.Query(context.Background(), server.Request{Dataset: "music", Query: queryText, Parallelism: 1})
	if err != nil || qr.Status != http.StatusOK {
		t.Fatalf("query after quarantine: %v (status %d)", err, qr.Status)
	}
}

// TestSnapshotRoundTripLargeDataset saves and reloads a bigger generated
// dataset end to end over HTTP and pins that the snapshot-backed generation
// lists the same shape (atoms, dictionary size, relations) as the text one.
func TestSnapshotRoundTripLargeDataset(t *testing.T) {
	d := gen.MusicDatabaseLarge(50, 6, 7)
	_, _, reg, cl, _ := startSnapshotServer(t, map[string]string{"big": writeDataset(t, d)})
	ctx := context.Background()
	before, _ := reg.Get("big")
	if _, err := cl.Snapshot(ctx); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if _, err := cl.Reload(ctx); err != nil {
		t.Fatalf("reload: %v", err)
	}
	after, _ := reg.Get("big")
	if after.Source != "snapshot" {
		t.Fatalf("source %q, want snapshot", after.Source)
	}
	if after.Atoms != before.Atoms || after.DictTerms != before.DictTerms || len(after.Relations) != len(before.Relations) {
		t.Fatalf("shape changed across the snapshot round-trip: %+v vs %+v", after, before)
	}
}
