package server

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wdpt/internal/db"
	"wdpt/internal/sparql"
)

// ColumnInfo summarizes one column of a relation in the /v1/datasets
// listing: its position and the number of distinct terms it holds — the
// per-column selectivity the columnar backend's permuted indexes exploit
// (docs/STORAGE.md).
type ColumnInfo struct {
	// Pos is the zero-based column position.
	Pos int `json:"pos"`
	// Distinct is the number of distinct terms stored at this position.
	Distinct int `json:"distinct"`
}

// RelationInfo describes one relation of a dataset in the /v1/datasets
// listing.
type RelationInfo struct {
	// Name is the relation name.
	Name string `json:"name"`
	// Arity is the relation's arity.
	Arity int `json:"arity"`
	// Tuples is the number of ground tuples.
	Tuples int `json:"tuples"`
	// Columns summarizes the columns in position order.
	Columns []ColumnInfo `json:"columns"`
}

// Dataset is one immutable snapshot of a named database: the parsed
// Database, the registry version it was loaded at, and its shape summary.
// Snapshots are never mutated after load — a hot reload builds fresh ones
// and swaps the whole set atomically, so requests that already hold a
// snapshot keep evaluating against consistent data.
type Dataset struct {
	// Name is the registry name queries address the dataset by.
	Name string `json:"name"`
	// Version is the registry generation this snapshot was loaded at; it is
	// part of every result-cache key, so a reload implicitly invalidates all
	// cached responses for the dataset.
	Version int64 `json:"version"`
	// Path is the file the snapshot was parsed from.
	Path string `json:"path"`
	// Atoms is the total number of ground atoms.
	Atoms int `json:"atoms"`
	// DictTerms is the size of the dataset's term dictionary — the number
	// of distinct constants interned across all relations.
	DictTerms int `json:"dict_terms"`
	// Backend names the storage backend the snapshot is stored on
	// ("col" or "mem").
	Backend string `json:"backend"`
	// LoadNS is the wall-clock time spent parsing and loading this
	// snapshot (reading the file, inserting, sealing, and summarizing).
	LoadNS int64 `json:"load_ns"`
	// Relations summarizes the relations, sorted by name.
	Relations []RelationInfo `json:"relations"`
	// DB is the parsed database. Read-only.
	DB *db.Database `json:"-"`
}

// Registry is the server's set of named datasets: parsed once at startup,
// replaced wholesale by Reload (SIGHUP or the admin endpoint). Lookups are
// lock-free reads of an atomically swapped snapshot map; a failed reload
// keeps the previous snapshot serving.
type Registry struct {
	paths map[string]string // name -> file path; immutable after New
	gen   atomic.Int64
	cur   atomic.Pointer[map[string]*Dataset]
	mu    sync.Mutex // serializes Reload
}

// NewRegistry parses every named dataset file and returns a registry at
// version 1. An unreadable or unparsable file fails construction — a server
// must not start with a partial dataset set.
func NewRegistry(specs map[string]string) (*Registry, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("server: registry needs at least one dataset")
	}
	r := &Registry{paths: make(map[string]string, len(specs))}
	for name, path := range specs {
		if name == "" {
			return nil, fmt.Errorf("server: dataset name must not be empty (path %q)", path)
		}
		r.paths[name] = path
	}
	snap, err := r.loadAll(1)
	if err != nil {
		return nil, err
	}
	r.gen.Store(1)
	r.cur.Store(&snap)
	return r, nil
}

// loadAll parses every registered file into a fresh snapshot stamped with
// the given version, in name order so parse errors are reported
// deterministically.
func (r *Registry) loadAll(version int64) (map[string]*Dataset, error) {
	names := make([]string, 0, len(r.paths))
	for name := range r.paths {
		names = append(names, name)
	}
	sort.Strings(names)
	snap := make(map[string]*Dataset, len(names))
	for _, name := range names {
		path := r.paths[name]
		start := time.Now()
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("server: dataset %q: %w", name, err)
		}
		d, err := sparql.ParseDatabase(string(data))
		if err != nil {
			return nil, fmt.Errorf("server: dataset %q (%s): %w", name, path, err)
		}
		snap[name] = &Dataset{
			Name:      name,
			Version:   version,
			Path:      path,
			Atoms:     d.Size(),
			DictTerms: d.Dict().Len(),
			Backend:   d.Backend().String(),
			Relations: relationInfos(d),
			DB:        d,
			LoadNS:    time.Since(start).Nanoseconds(),
		}
	}
	return snap, nil
}

func relationInfos(d *db.Database) []RelationInfo {
	rels := d.Relations()
	out := make([]RelationInfo, 0, len(rels))
	for _, rel := range rels {
		out = append(out, RelationInfo{
			Name:    rel.Name(),
			Arity:   rel.Arity(),
			Tuples:  rel.Len(),
			Columns: columnInfos(rel),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// columnInfos computes each column's distinct-term count by walking the
// stored rows once per position. IDs are dense (0..Dict.Len()-1), so a
// flat seen-bitmap replaces a hash set; datasets load once per reload, so
// the walk is off every query path.
func columnInfos(rel *db.Relation) []ColumnInfo {
	out := make([]ColumnInfo, rel.Arity())
	n := rel.Len()
	seen := make([]bool, rel.Dict().Len())
	for pos := range out {
		for i := range seen {
			seen[i] = false
		}
		distinct := 0
		for i := 0; i < n; i++ {
			if id := rel.At(i, pos); !seen[id] {
				seen[id] = true
				distinct++
			}
		}
		out[pos] = ColumnInfo{Pos: pos, Distinct: distinct}
	}
	return out
}

// Reload re-parses every dataset file into a new snapshot set and swaps it
// in atomically under a bumped version. On any error the previous snapshot
// keeps serving and the version does not change.
func (r *Registry) Reload() (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	version := r.gen.Load() + 1
	snap, err := r.loadAll(version)
	if err != nil {
		return r.gen.Load(), err
	}
	r.gen.Store(version)
	r.cur.Store(&snap)
	return version, nil
}

// Version returns the current registry generation.
func (r *Registry) Version() int64 { return r.gen.Load() }

// Get returns the named dataset's current snapshot.
func (r *Registry) Get(name string) (*Dataset, bool) {
	snap := r.cur.Load()
	ds, ok := (*snap)[name]
	return ds, ok
}

// List returns the current snapshots sorted by name.
func (r *Registry) List() []*Dataset {
	snap := r.cur.Load()
	out := make([]*Dataset, 0, len(*snap))
	for _, ds := range *snap {
		out = append(out, ds)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
