package server

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"wdpt/internal/db"
	"wdpt/internal/db/snapshot"
	"wdpt/internal/obs"
	"wdpt/internal/sparql"
)

// ColumnInfo summarizes one column of a relation in the /v1/datasets
// listing: its position and the number of distinct terms it holds — the
// per-column selectivity the columnar backend's permuted indexes exploit
// (docs/STORAGE.md).
type ColumnInfo struct {
	// Pos is the zero-based column position.
	Pos int `json:"pos"`
	// Distinct is the number of distinct terms stored at this position.
	Distinct int `json:"distinct"`
}

// RelationInfo describes one relation of a dataset in the /v1/datasets
// listing.
type RelationInfo struct {
	// Name is the relation name.
	Name string `json:"name"`
	// Arity is the relation's arity.
	Arity int `json:"arity"`
	// Tuples is the number of ground tuples.
	Tuples int `json:"tuples"`
	// Columns summarizes the columns in position order.
	Columns []ColumnInfo `json:"columns"`
}

// Dataset is one immutable snapshot of a named database: the parsed
// Database, the registry version it was loaded at, and its shape summary.
// Snapshots are never mutated after load — a hot reload builds fresh ones
// and swaps the whole set atomically, so requests that already hold a
// snapshot keep evaluating against consistent data.
type Dataset struct {
	// Name is the registry name queries address the dataset by.
	Name string `json:"name"`
	// Version is the registry generation this snapshot was loaded at; it is
	// part of every result-cache key, so a reload implicitly invalidates all
	// cached responses for the dataset.
	Version int64 `json:"version"`
	// Path is the file the snapshot was parsed from.
	Path string `json:"path"`
	// Atoms is the total number of ground atoms.
	Atoms int `json:"atoms"`
	// DictTerms is the size of the dataset's term dictionary — the number
	// of distinct constants interned across all relations.
	DictTerms int `json:"dict_terms"`
	// Backend names the storage backend the snapshot is stored on
	// ("col" or "mem").
	Backend string `json:"backend"`
	// LoadNS is the wall-clock time spent parsing and loading this
	// snapshot (reading the file, inserting, sealing, and summarizing).
	LoadNS int64 `json:"load_ns"`
	// Source records where the data came from: "text" for a parsed dataset
	// file, "snapshot" for a binary snapshot loaded from the registry's
	// snapshot directory.
	Source string `json:"source"`
	// Rows maps every relation name to its ground-tuple count — the flat
	// per-relation row counts the stress harness and ring-rebalance checks
	// read to size datasets without loading them (the same numbers as
	// Relations[i].Tuples, addressable by name). JSON encoding sorts map
	// keys, so the listing stays byte-deterministic.
	Rows map[string]int `json:"rows"`
	// Relations summarizes the relations, sorted by name.
	Relations []RelationInfo `json:"relations"`
	// DB is the parsed database. Read-only.
	DB *db.Database `json:"-"`
}

// Registry is the server's set of named datasets: parsed once at startup,
// replaced wholesale by Reload (SIGHUP or the admin endpoint). Lookups are
// lock-free reads of an atomically swapped snapshot map; a failed reload
// keeps the previous snapshot serving.
type Registry struct {
	paths   map[string]string // name -> file path; immutable after New
	snapDir string            // snapshot directory, "" when persistence is off
	st      *obs.Stats
	gen     atomic.Int64
	cur     atomic.Pointer[map[string]*Dataset]
	mu      sync.Mutex // serializes Reload and SaveSnapshots
}

// RegistryConfig configures a Registry beyond the bare name→path specs.
type RegistryConfig struct {
	// Specs maps dataset names to their text dataset files. Required.
	Specs map[string]string
	// SnapshotDir, when non-empty, enables binary snapshot persistence:
	// loads prefer <dir>/<name>.snap over reparsing the text file, corrupt
	// snapshots are quarantined (renamed *.quarantined) with the dataset
	// falling back to text, and SaveSnapshots persists the current
	// datasets there. The directory is created if missing.
	SnapshotDir string
	// Stats receives the server.snapshot_* counters. nil allocates a
	// private sink.
	Stats *obs.Stats
}

// NewRegistry parses every named dataset file and returns a registry at
// version 1. An unreadable or unparsable file fails construction — a server
// must not start with a partial dataset set.
func NewRegistry(specs map[string]string) (*Registry, error) {
	return NewRegistryWithConfig(RegistryConfig{Specs: specs})
}

// NewRegistryWithConfig is NewRegistry with snapshot persistence options.
func NewRegistryWithConfig(cfg RegistryConfig) (*Registry, error) {
	if len(cfg.Specs) == 0 {
		return nil, fmt.Errorf("server: registry needs at least one dataset")
	}
	st := cfg.Stats
	if st == nil {
		st = obs.NewStats()
	}
	r := &Registry{
		paths:   make(map[string]string, len(cfg.Specs)),
		snapDir: cfg.SnapshotDir,
		st:      st,
	}
	for name, path := range cfg.Specs {
		if name == "" {
			return nil, fmt.Errorf("server: dataset name must not be empty (path %q)", path)
		}
		if name != filepath.Base(name) || name == "." || name == ".." {
			return nil, fmt.Errorf("server: dataset name %q is not a valid snapshot file stem", name)
		}
		r.paths[name] = path
	}
	if r.snapDir != "" {
		if err := os.MkdirAll(r.snapDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: snapshot directory: %w", err)
		}
	}
	snap, err := r.loadAll(1)
	if err != nil {
		return nil, err
	}
	r.gen.Store(1)
	r.cur.Store(&snap)
	return r, nil
}

// SnapshotDir returns the registry's snapshot directory, "" when snapshot
// persistence is disabled.
func (r *Registry) SnapshotDir() string { return r.snapDir }

// snapshotPath is the snapshot file for a dataset name.
func (r *Registry) snapshotPath(name string) string {
	return filepath.Join(r.snapDir, name+".snap")
}

// loadAll loads every registered dataset into a fresh snapshot-map stamped
// with the given version, in name order so errors are reported
// deterministically. With a snapshot directory configured, each dataset
// prefers its binary snapshot over reparsing text; a corrupt snapshot is
// quarantined and the text file is parsed instead, so bad bytes on disk
// degrade to a slower load, never to a dead or wrong dataset.
func (r *Registry) loadAll(version int64) (map[string]*Dataset, error) {
	names := make([]string, 0, len(r.paths))
	for name := range r.paths {
		names = append(names, name)
	}
	sort.Strings(names)
	snap := make(map[string]*Dataset, len(names))
	for _, name := range names {
		ds, err := r.loadOne(name, version)
		if err != nil {
			return nil, err
		}
		snap[name] = ds
	}
	return snap, nil
}

func (r *Registry) loadOne(name string, version int64) (*Dataset, error) {
	path := r.paths[name]
	start := time.Now()
	var d *db.Database
	source := "text"
	if r.snapDir != "" {
		sp := r.snapshotPath(name)
		sd, err := snapshot.Read(sp, db.DefaultBackend())
		switch {
		case err == nil:
			d, source = sd, "snapshot"
			r.st.Inc(obs.CtrServerSnapshotLoads)
		case errors.Is(err, fs.ErrNotExist):
			// No snapshot yet: parse the text file below.
		default:
			// Corrupt or unreadable snapshot: move it aside (best-effort —
			// the text fallback proceeds regardless) and count the event so
			// operators see silent bit rot.
			r.st.Inc(obs.CtrServerSnapshotQuarantined)
			_ = os.Rename(sp, sp+".quarantined")
		}
	}
	if d == nil {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("server: dataset %q: %w", name, err)
		}
		d, err = sparql.ParseDatabase(string(data))
		if err != nil {
			return nil, fmt.Errorf("server: dataset %q (%s): %w", name, path, err)
		}
	}
	rels := relationInfos(d)
	rows := make(map[string]int, len(rels))
	for _, rel := range rels {
		rows[rel.Name] = rel.Tuples
	}
	return &Dataset{
		Name:      name,
		Version:   version,
		Path:      path,
		Atoms:     d.Size(),
		DictTerms: d.Dict().Len(),
		Backend:   d.Backend().String(),
		Rows:      rows,
		Relations: rels,
		DB:        d,
		LoadNS:    time.Since(start).Nanoseconds(),
		Source:    source,
	}, nil
}

// SaveSnapshots durably writes every current dataset to the snapshot
// directory via the crash-safe writer and returns the registry version the
// snapshots capture plus the written file names (sorted). It fails when the
// registry has no snapshot directory. Writes serialize with Reload, so a
// save captures one consistent registry generation.
func (r *Registry) SaveSnapshots() (int64, []string, error) {
	if r.snapDir == "" {
		return 0, nil, fmt.Errorf("server: registry has no snapshot directory")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := *r.cur.Load()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	files := make([]string, 0, len(names))
	for _, name := range names {
		sp := r.snapshotPath(name)
		if err := snapshot.Write(sp, snap[name].DB); err != nil {
			return r.gen.Load(), files, fmt.Errorf("server: dataset %q: %w", name, err)
		}
		r.st.Inc(obs.CtrServerSnapshotWrites)
		files = append(files, filepath.Base(sp))
	}
	return r.gen.Load(), files, nil
}

func relationInfos(d *db.Database) []RelationInfo {
	rels := d.Relations()
	out := make([]RelationInfo, 0, len(rels))
	for _, rel := range rels {
		out = append(out, RelationInfo{
			Name:    rel.Name(),
			Arity:   rel.Arity(),
			Tuples:  rel.Len(),
			Columns: columnInfos(rel),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// columnInfos computes each column's distinct-term count by walking the
// stored rows once per position. IDs are dense (0..Dict.Len()-1), so a
// flat seen-bitmap replaces a hash set; datasets load once per reload, so
// the walk is off every query path.
func columnInfos(rel *db.Relation) []ColumnInfo {
	out := make([]ColumnInfo, rel.Arity())
	n := rel.Len()
	seen := make([]bool, rel.Dict().Len())
	for pos := range out {
		for i := range seen {
			seen[i] = false
		}
		distinct := 0
		for i := 0; i < n; i++ {
			if id := rel.At(i, pos); !seen[id] {
				seen[id] = true
				distinct++
			}
		}
		out[pos] = ColumnInfo{Pos: pos, Distinct: distinct}
	}
	return out
}

// Reload re-parses every dataset file into a new snapshot set and swaps it
// in atomically under a bumped version. On any error the previous snapshot
// keeps serving and the version does not change.
func (r *Registry) Reload() (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	version := r.gen.Load() + 1
	snap, err := r.loadAll(version)
	if err != nil {
		return r.gen.Load(), err
	}
	r.gen.Store(version)
	r.cur.Store(&snap)
	return version, nil
}

// Version returns the current registry generation.
func (r *Registry) Version() int64 { return r.gen.Load() }

// Get returns the named dataset's current snapshot.
func (r *Registry) Get(name string) (*Dataset, bool) {
	snap := r.cur.Load()
	ds, ok := (*snap)[name]
	return ds, ok
}

// List returns the current snapshots sorted by name.
func (r *Registry) List() []*Dataset {
	snap := r.cur.Load()
	out := make([]*Dataset, 0, len(*snap))
	for _, ds := range *snap {
		out = append(out, ds)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
