package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"

	"wdpt/internal/obs"
)

// resultCache is the server's bounded response cache: complete response
// bodies keyed by (dataset version, canonical query hash, mode, options),
// evicted in least-recently-used order at the size cap. Because the dataset
// version is part of the key, a registry reload invalidates every cached
// response for the reloaded data without any explicit flush — stale entries
// simply stop being addressable and age out of the LRU.
//
// Only status-200 bodies are cached: they are deterministic for their key
// (the engine's byte-identical enumeration contract), whereas truncated
// (206) bodies may keep a scheduling-dependent subset at parallelism > 1,
// and counter-carrying bodies change run to run. A nil *resultCache
// disables caching.
type resultCache struct {
	max int
	st  *obs.Stats

	mu  sync.Mutex
	m   map[string]*list.Element
	lru *list.List
}

// cachedBody is one cached response body.
type cachedBody struct {
	key  string
	body []byte
}

// newResultCache returns a cache bounded at max entries recording server.*
// counters on st, or nil (caching disabled) when max < 1.
func newResultCache(max int, st *obs.Stats) *resultCache {
	if max < 1 {
		return nil
	}
	return &resultCache{max: max, st: st, m: make(map[string]*list.Element), lru: list.New()}
}

// get returns the cached body for key, counting a hit or miss. A nil cache
// always misses silently.
func (c *resultCache) get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	el, ok := c.m[key]
	var body []byte
	if ok {
		c.lru.MoveToFront(el)
		body = el.Value.(*cachedBody).body
	}
	c.mu.Unlock()
	if ok {
		c.st.Inc(obs.CtrServerCacheHits)
		return body, true
	}
	c.st.Inc(obs.CtrServerCacheMisses)
	return nil, false
}

// put stores a response body for key, evicting least-recently-used entries
// past the cap. No-op on a nil cache or when the key is already present.
func (c *resultCache) put(key string, body []byte) {
	if c == nil {
		return
	}
	var evicted int64
	c.mu.Lock()
	if _, ok := c.m[key]; !ok {
		c.m[key] = c.lru.PushFront(&cachedBody{key: key, body: body})
		for len(c.m) > c.max {
			oldest := c.lru.Back()
			c.lru.Remove(oldest)
			delete(c.m, oldest.Value.(*cachedBody).key)
			evicted++
		}
	}
	c.mu.Unlock()
	c.st.Add(obs.CtrServerCacheEvictions, evicted)
}

// len returns the number of cached responses.
func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// cacheKey builds the result-cache key for one request against one dataset
// snapshot. The query is keyed by a hash of its canonical tree rendering —
// not the request text — so reformatted but identical queries share an
// entry; every option that can change the response body participates.
func cacheKey(ds *Dataset, canonicalQuery string, req *Request, par int) string {
	sum := sha256.Sum256([]byte(canonicalQuery))
	var b strings.Builder
	fmt.Fprintf(&b, "%s\x00%d\x00%s\x00%s\x00%s\x00%d\x00%v\x00", ds.Name, ds.Version, hex.EncodeToString(sum[:]), req.Mode, req.Engine, par, req.Fallback)
	if req.Budget != nil {
		fmt.Fprintf(&b, "w%d,t%d,a%d", req.Budget.WallMS, req.Budget.MaxTuples, req.Budget.MaxAnswers)
	}
	b.WriteByte('\x00')
	keys := make([]string, 0, len(req.Mapping))
	for k := range req.Mapping {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(req.Mapping[k])
		b.WriteByte('\x00')
	}
	return b.String()
}
