package approx

import (
	"wdpt/internal/core"
	"wdpt/internal/cq"
	"wdpt/internal/cqeval"
	"wdpt/internal/db"
)

// Optimized is the fixed-parameter-tractable evaluator of Corollary 2: the
// (expensive, query-size-only) membership test for M(WB(k)) runs once at
// construction; if a subsumption-equivalent globally tractable witness is
// found, all subsequent PARTIAL-EVAL and MAX-EVAL queries run against the
// witness in polynomial time. Subsumption-equivalence preserves partial and
// maximal answers (Section 5), so results are identical to evaluating the
// original tree — which is property-tested.
type Optimized struct {
	original *core.PatternTree
	witness  *core.PatternTree // nil when p ∉ M(WB(k)) within the search space
}

// Optimize prepares an FPT evaluator for p with respect to WB(k) given as
// the CQ class c. The construction cost depends only on |p|.
func Optimize(p *core.PatternTree, c cq.Class, opts Options) *Optimized {
	o := &Optimized{original: p}
	if p.HasConstants() {
		// The membership machinery is constant-free (Section 5.2); fall
		// back to the original tree, unless it is tractable as given.
		if InWB(p, c) {
			o.witness = p
		}
		return o
	}
	if w, ok := MemberWB(p, c, opts); ok {
		o.witness = w.PruneNonProjecting()
	}
	return o
}

// Tractable reports whether a globally tractable witness is available.
func (o *Optimized) Tractable() bool { return o.witness != nil }

// Witness returns the subsumption-equivalent tractable tree, or nil.
func (o *Optimized) Witness() *core.PatternTree { return o.witness }

// PartialEval answers PARTIAL-EVAL for the original tree; through the
// witness when available (Corollary 2).
func (o *Optimized) PartialEval(d *db.Database, h cq.Mapping, eng cqeval.Engine) bool {
	if o.witness != nil {
		return o.witness.PartialEval(d, h, eng)
	}
	return o.original.PartialEval(d, h, eng)
}

// MaxEval answers MAX-EVAL for the original tree; through the witness when
// available (Corollary 2).
func (o *Optimized) MaxEval(d *db.Database, h cq.Mapping, eng cqeval.Engine) bool {
	if o.witness != nil {
		return o.witness.MaxEval(d, h, eng)
	}
	return o.original.MaxEval(d, h, eng)
}
