package approx

import (
	"testing"

	"wdpt/internal/core"
	"wdpt/internal/cq"
	"wdpt/internal/cqeval"
	"wdpt/internal/gen"
)

func TestOptimizeTractableWitness(t *testing.T) {
	// The symmetric 4-cycle tree is in M(WB(1)): the optimizer must find a
	// witness and answer PARTIAL-EVAL / MAX-EVAL identically to the
	// original on concrete databases.
	p := gen.SymmetricCycleTree(4)
	o := Optimize(p, WB(1), Options{})
	if !o.Tractable() {
		t.Fatal("expected a tractable witness for the even cycle")
	}
	if !InWB(o.Witness(), WB(1)) {
		t.Fatal("witness not globally tractable")
	}
	eng := cqeval.Auto()
	for seed := int64(0); seed < 6; seed++ {
		d := gen.RandomDatabase(gen.DBParams{
			DomainSize:   3,
			TuplesPerRel: 8,
			Rels:         []gen.RelSpec{{Name: "E", Arity: 2}, {Name: "V", Arity: 1}},
		}, seed)
		for _, h := range []cq.Mapping{{}, {"x": "0"}, {"x": "1"}, {"x": "9"}} {
			if got, want := o.PartialEval(d, h, eng), p.PartialEval(d, h, eng); got != want {
				t.Fatalf("seed %d: PartialEval(%v) = %v via witness, %v direct", seed, h, got, want)
			}
			if got, want := o.MaxEval(d, h, eng), p.MaxEval(d, h, eng); got != want {
				t.Fatalf("seed %d: MaxEval(%v) = %v via witness, %v direct", seed, h, got, want)
			}
		}
	}
}

func TestOptimizeNonMemberFallsBack(t *testing.T) {
	p := gen.SymmetricCycleTree(3) // odd: not in M(WB(1))
	o := Optimize(p, WB(1), Options{})
	if o.Tractable() {
		t.Fatal("odd cycle must have no WB(1) witness")
	}
	eng := cqeval.Auto()
	d := gen.RandomDatabase(gen.DBParams{
		Rels: []gen.RelSpec{{Name: "E", Arity: 2}, {Name: "V", Arity: 1}},
	}, 1)
	h := cq.Mapping{}
	if o.PartialEval(d, h, eng) != p.PartialEval(d, h, eng) {
		t.Fatal("fallback disagrees with the original tree")
	}
}

func TestOptimizeWithConstants(t *testing.T) {
	// Trees with constants skip the membership machinery but may still be
	// syntactically tractable.
	p := gen.MusicWDPT("x", "y", "z", "zp")
	o := Optimize(p, WB(1), Options{})
	if !o.Tractable() {
		t.Fatal("the music tree is syntactically in WB(1)")
	}
	eng := cqeval.Auto()
	d := gen.MusicDatabase()
	if !o.PartialEval(d, cq.Mapping{"y": "Caribou"}, eng) {
		t.Fatal("partial answer lost")
	}
	if !o.MaxEval(d, cq.Mapping{"x": "Swim", "y": "Caribou", "z": "2"}, eng) {
		t.Fatal("maximal answer lost")
	}
}

func TestOptimizeWitnessIsPruned(t *testing.T) {
	// A member tree with a dead (non-projecting) optional branch: the
	// witness must come back without it.
	p := core.MustNew(core.NodeSpec{
		Atoms: []cq.Atom{cq.NewAtom("E", cq.V("x"), cq.V("y"))},
		Children: []core.NodeSpec{
			{Atoms: []cq.Atom{cq.NewAtom("E", cq.V("y"), cq.V("dead"))}},
		},
	}, []string{"x"})
	o := Optimize(p, WB(1), Options{})
	if !o.Tractable() {
		t.Fatal("tree is syntactically tractable")
	}
	if o.Witness().NumNodes() != 1 {
		t.Fatalf("witness should be pruned to the root, got %d nodes", o.Witness().NumNodes())
	}
}
