// Package approx implements the semantic-optimization machinery of
// Section 5 of Barceló & Pichler (PODS 2015): the well-behaved classes
// WB(k) = g-C(k) with C(k) ∈ {TW(k), HW'(k)}, membership in M(WB(k))
// (subsumption-equivalence to a well-behaved tree, Theorem 13), and
// WB(k)-approximations (Definition 4, Theorem 14).
//
// The paper's decision procedures guess WDPTs of up to exponential size
// (Lemma 1); exhaustive search over that space is infeasible, so this
// package searches the candidate space generated from p by
//
//   - quotients: collapsing existential variables onto each other or onto
//     free variables (pointwise-fixed), exactly as in the complete CQ-level
//     construction of [Barceló, Libkin, Romero 2014], and
//   - prunes: restricting the tree to a rooted subtree,
//
// verifying candidates by the exact subsumption test of internal/subsume.
// For trees whose obstruction to WB(k) lies in oversized joins between
// existential variables — which includes every single-node WDPT, where the
// space is provably complete — the maximal surviving candidates are true
// WB(k)-approximations; in general they are certified lower bounds
// (candidate ⊑ p and candidate ∈ WB(k)). The Figure 2 family shows that
// true approximations can require exponentially many atoms, so any complete
// procedure must leave the quotient space; see EXPERIMENTS.md.
package approx

import (
	"fmt"

	"wdpt/internal/core"
	"wdpt/internal/cq"
	"wdpt/internal/cqeval"
	"wdpt/internal/obs"
	"wdpt/internal/par"
	"wdpt/internal/subsume"
)

// Options bounds the candidate search.
type Options struct {
	// MaxCandidates caps the number of class-member candidates verified by
	// subsumption; 0 means 10000.
	MaxCandidates int
	// Prune enables subtree-pruning candidates in addition to quotients.
	Prune bool
	// Subsume configures the underlying subsumption tests.
	Subsume subsume.Options
	// Parallelism bounds worker goroutines for candidate verification in
	// ApproximateAll and MemberWB; values ≤ 1 run the exact sequential
	// search. Results are byte-identical at every level (candidates verify
	// in enumeration order); the approx.* work counters can exceed the
	// sequential totals, because a batch in flight when the search would
	// have stopped still completes.
	Parallelism int
}

func (o Options) maxCandidates() int {
	if o.MaxCandidates == 0 {
		return 10000
	}
	return o.MaxCandidates
}

// stats resolves the observability sink from the subsumption options: the
// explicit sink if set, else the one the engine carries.
func (o Options) stats() *obs.Stats {
	if o.Subsume.Stats != nil {
		return o.Subsume.Stats
	}
	return cqeval.StatsOf(o.Subsume.Engine)
}

// WB returns the well-behaved class WB(k) with C(k) = TW(k) as a CQ class
// to be used with core.GloballyIn; treewidth is subquery-closed, so global
// tractability is a single check (Section 5).
func WB(k int) cq.Class { return cq.TW(k) }

// WBPrime returns WB(k) with C(k) = HW'(k) (β-hypertreewidth).
func WBPrime(k int) cq.Class { return cq.HWPrime(k) }

// InWB reports whether p itself belongs to WB(k) = g-C(k).
func InWB(p *core.PatternTree, c cq.Class) bool {
	return p.GloballyIn(c)
}

// Candidates enumerates the candidate trees generated from p: quotient
// images (and, with opts.Prune, quotients of rooted subtrees) that are
// well-designed. Unlike the CQ case, a quotient of a pattern tree is NOT
// automatically subsumed by p — merging an existential variable onto a free
// variable can pull the free variable up the tree and strengthen answers —
// so consumers must verify candidate ⊑ p (ApproximateAll and MemberWB do).
// visit returning false stops the enumeration.
func Candidates(p *core.PatternTree, opts Options, visit func(*core.PatternTree) bool) {
	if p.HasConstants() {
		//lint:ignore R2 documented precondition: callers gate on HasConstants (Section 5.2)
		panic("approx: approximations are only defined for constant-free pattern trees (Section 5.2)")
	}
	st := opts.stats()
	stopped := false
	emit := func(t *core.PatternTree) bool {
		if stopped {
			return false
		}
		st.Inc(obs.CtrApproxCandidates)
		if !visit(t) {
			stopped = true
		}
		return !stopped
	}
	subtrees := []core.Subtree{p.FullSubtree()}
	if opts.Prune {
		subtrees = subtrees[:0]
		p.EnumerateSubtrees(func(s core.Subtree) bool {
			subtrees = append(subtrees, s)
			return true
		})
	}
	for _, s := range subtrees {
		if stopped {
			return
		}
		quotientTrees(p, s, emit)
	}
}

// quotientTrees enumerates the well-designed quotient images of the
// restriction of p to subtree s.
func quotientTrees(p *core.PatternTree, s core.Subtree, emit func(*core.PatternTree) bool) {
	atoms := p.SubtreeAtoms(s)
	vars := cq.AtomsVars(atoms)
	freeSet := p.FreeSet()
	var free, evars []string
	for _, v := range vars {
		if freeSet[v] {
			free = append(free, v)
		} else {
			evars = append(evars, v)
		}
	}
	theta := make(cq.Mapping, len(vars))
	for _, x := range free {
		theta[x] = x
	}
	reps := append([]string(nil), free...)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(evars) {
			t, err := buildQuotientTree(p, s, theta)
			if err != nil {
				return true // not well-designed after merging; skip
			}
			return emit(t)
		}
		v := evars[i]
		for _, r := range reps {
			theta[v] = r
			if !rec(i + 1) {
				return false
			}
		}
		theta[v] = v
		reps = append(reps, v)
		ok := rec(i + 1)
		reps = reps[:len(reps)-1]
		delete(theta, v)
		return ok
	}
	rec(0)
}

// buildQuotientTree applies the variable renaming θ to the nodes of p
// restricted to subtree s, preserving the tree shape.
func buildQuotientTree(p *core.PatternTree, s core.Subtree, theta cq.Mapping) (*core.PatternTree, error) {
	var spec func(n *core.Node) core.NodeSpec
	spec = func(n *core.Node) core.NodeSpec {
		out := core.NodeSpec{}
		for _, a := range n.Atoms() {
			args := make([]cq.Term, len(a.Args))
			for i, t := range a.Args {
				if t.IsVar() {
					args[i] = cq.V(theta[t.Value()])
				} else {
					args[i] = t
				}
			}
			out.Atoms = append(out.Atoms, cq.NewAtom(a.Rel, args...))
		}
		for _, c := range n.Children() {
			if s[c.ID()] {
				out.Children = append(out.Children, spec(c))
			}
		}
		return out
	}
	rootSpec := spec(p.Root())
	free := p.SubtreeFreeVars(s)
	return core.New(rootSpec, free)
}

// ApproximateAll returns the maximal (under ⊑) candidates from the search
// space that belong to WB(k) (given as the CQ class c). The result trees
// are pairwise non-equivalent, each satisfies cand ∈ WB(k) and cand ⊑ p.
// If p ∈ WB(k), p itself is returned as the single approximation.
func ApproximateAll(p *core.PatternTree, c cq.Class, opts Options) []*core.PatternTree {
	if InWB(p, c) {
		return []*core.PatternTree{p}
	}
	limit := opts.maxCandidates()
	st := opts.stats()
	if pool := par.New(opts.Parallelism, st); pool.Parallel() {
		members := collectParallel(p, opts, pool, limit, func(t *core.PatternTree) bool {
			if !InWB(t, c) {
				return false
			}
			st.Inc(obs.CtrApproxVerified)
			return subsume.Subsumes(t, p, opts.Subsume)
		})
		return maximalUnderSubsumption(members, opts.Subsume)
	}
	var members []*core.PatternTree
	Candidates(p, opts, func(t *core.PatternTree) bool {
		if InWB(t, c) {
			st.Inc(obs.CtrApproxVerified)
			if subsume.Subsumes(t, p, opts.Subsume) {
				members = append(members, t)
			}
		}
		return len(members) < limit
	})
	return maximalUnderSubsumption(members, opts.Subsume)
}

// candidateStream runs the Candidates enumeration on its own goroutine,
// delivering candidates over a channel. Closing quit stops the enumeration
// promptly (the generator's pending send aborts), after which the output
// channel closes — no goroutine outlives the consumer.
func candidateStream(p *core.PatternTree, opts Options) (<-chan *core.PatternTree, chan struct{}) {
	out := make(chan *core.PatternTree)
	quit := make(chan struct{})
	//lint:ignore R11 joined by protocol across functions: collectParallel always drains out or closes quit, either of which unblocks the pending send so the deferred close(out) runs — the goroutine cannot outlive its consumer
	go func() {
		defer close(out)
		Candidates(p, opts, func(t *core.PatternTree) bool {
			select {
			case out <- t:
				return true
			case <-quit:
				return false
			}
		})
	}()
	return out, quit
}

// collectParallel returns the first accepted candidates — at most limit, in
// enumeration order, so the result matches the sequential search byte for
// byte — verifying accept over the pool in batches. accept must be safe for
// concurrent use.
func collectParallel(p *core.PatternTree, opts Options, pool *par.Pool, limit int, accept func(*core.PatternTree) bool) []*core.PatternTree {
	if p.HasConstants() {
		//lint:ignore R2 documented precondition: callers gate on HasConstants (Section 5.2)
		panic("approx: approximations are only defined for constant-free pattern trees (Section 5.2)")
	}
	stream, quit := candidateStream(p, opts)
	defer close(quit)
	chunk := 4 * pool.Workers()
	var members []*core.PatternTree
	batch := make([]*core.PatternTree, 0, chunk)
	for {
		batch = batch[:0]
		for t := range stream {
			batch = append(batch, t)
			if len(batch) == chunk {
				break
			}
		}
		if len(batch) == 0 {
			return members
		}
		accepted := par.Map(pool, len(batch), func(i int) bool { return accept(batch[i]) })
		for i, ok := range accepted {
			if ok {
				members = append(members, batch[i])
				if len(members) >= limit {
					return members
				}
			}
		}
		if len(batch) < chunk {
			return members
		}
	}
}

// Approximate returns one WB(k)-approximation candidate for p (the first
// maximal one), or an error if the search space contains no member of the
// class.
func Approximate(p *core.PatternTree, c cq.Class, opts Options) (*core.PatternTree, error) {
	all := ApproximateAll(p, c, opts)
	if len(all) == 0 {
		return nil, fmt.Errorf("approx: no %s candidate found for the tree (search space exhausted)", c.Name())
	}
	return all[0], nil
}

func maximalUnderSubsumption(cands []*core.PatternTree, sopts subsume.Options) []*core.PatternTree {
	var out []*core.PatternTree
	for i, pi := range cands {
		maximal := true
		for j, pj := range cands {
			if i == j {
				continue
			}
			if subsume.Subsumes(pi, pj, sopts) {
				if !subsume.Subsumes(pj, pi, sopts) {
					maximal = false
					break
				}
				if j < i { // equivalent: keep first representative
					maximal = false
					break
				}
			}
		}
		if maximal {
			out = append(out, pi)
		}
	}
	return out
}

// MemberWB decides membership of p in M(WB(k)) over the candidate space:
// it reports a witness p' ∈ WB(k) with p ≡s p' if one exists among the
// candidates. Since every candidate is subsumed by p, it suffices to check
// p ⊑ candidate (Theorem 13's structure: the approximation is equivalent to
// p iff p is in M(WB(k)), restricted to the searched space).
func MemberWB(p *core.PatternTree, c cq.Class, opts Options) (*core.PatternTree, bool) {
	if InWB(p, c) {
		return p, true
	}
	limit := opts.maxCandidates()
	st := opts.stats()
	isWitness := func(t *core.PatternTree) bool {
		if !InWB(t, c) {
			return false
		}
		st.Inc(obs.CtrApproxVerified)
		return subsume.Subsumes(p, t, opts.Subsume) && subsume.Subsumes(t, p, opts.Subsume)
	}
	if pool := par.New(opts.Parallelism, st); pool.Parallel() {
		return memberWBParallel(p, opts, pool, limit, isWitness)
	}
	var witness *core.PatternTree
	count := 0
	Candidates(p, opts, func(t *core.PatternTree) bool {
		count++
		if isWitness(t) {
			witness = t
			return false
		}
		return count < limit
	})
	return witness, witness != nil
}

// memberWBParallel examines up to limit candidates — the same cap the
// sequential search applies — in enumeration-order batches and returns the
// first witness, so the reported witness is identical at every parallelism
// level.
func memberWBParallel(p *core.PatternTree, opts Options, pool *par.Pool, limit int, isWitness func(*core.PatternTree) bool) (*core.PatternTree, bool) {
	if p.HasConstants() {
		//lint:ignore R2 documented precondition: callers gate on HasConstants (Section 5.2)
		panic("approx: approximations are only defined for constant-free pattern trees (Section 5.2)")
	}
	stream, quit := candidateStream(p, opts)
	defer close(quit)
	count := 0
	chunk := 4 * pool.Workers()
	batch := make([]*core.PatternTree, 0, chunk)
	for count < limit {
		n := chunk
		if rest := limit - count; rest < n {
			n = rest
		}
		batch = batch[:0]
		for t := range stream {
			batch = append(batch, t)
			if len(batch) == n {
				break
			}
		}
		if len(batch) == 0 {
			break
		}
		witnesses := par.Map(pool, len(batch), func(i int) bool { return isWitness(batch[i]) })
		for i, ok := range witnesses {
			if ok {
				return batch[i], true
			}
		}
		count += len(batch)
		if len(batch) < n {
			break
		}
	}
	return nil, false
}

// IsApproximation checks whether cand is a WB(k)-approximation of p
// relative to the candidate space: cand ∈ WB(k), cand ⊑ p, and no candidate
// strictly between them. (Proposition 8 studies the unrestricted version of
// this problem, which is Π₂ᴾ-hard already.)
func IsApproximation(cand, p *core.PatternTree, c cq.Class, opts Options) bool {
	if !InWB(cand, c) || !subsume.Subsumes(cand, p, opts.Subsume) {
		return false
	}
	better := false
	limit := opts.maxCandidates()
	count := 0
	Candidates(p, opts, func(t *core.PatternTree) bool {
		count++
		if InWB(t, c) &&
			subsume.Subsumes(t, p, opts.Subsume) &&
			subsume.Subsumes(cand, t, opts.Subsume) &&
			!subsume.Subsumes(t, cand, opts.Subsume) {
			better = true
			return false
		}
		return count < limit
	})
	return !better
}
