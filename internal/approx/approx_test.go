package approx

import (
	"testing"

	"wdpt/internal/core"
	"wdpt/internal/cq"
	"wdpt/internal/gen"
	"wdpt/internal/subsume"
)

// triangleCQTree is the Boolean triangle as a single-node WDPT with one
// free apex variable attached.
func triangleTree() *core.PatternTree {
	return core.MustNew(core.NodeSpec{
		Atoms: []cq.Atom{
			cq.NewAtom("E", cq.V("a"), cq.V("b")),
			cq.NewAtom("E", cq.V("b"), cq.V("c")),
			cq.NewAtom("E", cq.V("c"), cq.V("a")),
			cq.NewAtom("V", cq.V("x")),
		},
	}, []string{"x"})
}

func TestInWB(t *testing.T) {
	path := gen.PathWDPT(3)
	if !InWB(path, WB(1)) {
		t.Fatal("path tree should be in WB(1)")
	}
	if !InWB(path, WBPrime(1)) {
		t.Fatal("path tree should be in g-HW'(1)")
	}
	tri := triangleTree()
	if InWB(tri, WB(1)) {
		t.Fatal("triangle tree is not in WB(1)")
	}
	if !InWB(tri, WB(2)) {
		t.Fatal("triangle tree is in WB(2)")
	}
}

func TestApproximateTreeAlreadyInClass(t *testing.T) {
	p := gen.PathWDPT(2)
	ap, err := Approximate(p, WB(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ap != p {
		t.Fatal("tree in class should be its own approximation")
	}
}

func TestApproximateTriangleNode(t *testing.T) {
	// The WB(1)-approximation of the triangle node collapses the triangle
	// to a self-loop (cf. the CQ-level result).
	p := triangleTree()
	ap, err := Approximate(p, WB(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !InWB(ap, WB(1)) {
		t.Fatal("approximation must be in WB(1)")
	}
	if !subsume.Subsumes(ap, p, subsume.Options{}) {
		t.Fatal("approximation must be subsumed by p")
	}
	// The candidate collapsing all of a, b, c yields E(a,a); it must be
	// subsumption-equivalent to the returned approximation.
	loop := core.MustNew(core.NodeSpec{
		Atoms: []cq.Atom{
			cq.NewAtom("E", cq.V("a"), cq.V("a")),
			cq.NewAtom("V", cq.V("x")),
		},
	}, []string{"x"})
	if !subsume.Equivalent(ap, loop, subsume.Options{}) {
		t.Fatalf("approximation is not the loop tree:\n%s", ap)
	}
	if !IsApproximation(ap, p, WB(1), Options{}) {
		t.Fatal("IsApproximation rejects the computed approximation")
	}
	if IsApproximation(p, p, WB(1), Options{}) {
		t.Fatal("p itself is not in WB(1), cannot be its own approximation")
	}
}

func TestApproximateWithOptionalChild(t *testing.T) {
	// Root is a triangle; optional child fetches a label of one triangle
	// vertex. The approximation must keep the optional child (over the
	// collapsed vertex).
	p := core.MustNew(core.NodeSpec{
		Atoms: []cq.Atom{
			cq.NewAtom("E", cq.V("a"), cq.V("b")),
			cq.NewAtom("E", cq.V("b"), cq.V("c")),
			cq.NewAtom("E", cq.V("c"), cq.V("a")),
		},
		Children: []core.NodeSpec{
			{Atoms: []cq.Atom{cq.NewAtom("L", cq.V("a"), cq.V("l"))}},
		},
	}, []string{"l"})
	ap, err := Approximate(p, WB(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !InWB(ap, WB(1)) || !subsume.Subsumes(ap, p, subsume.Options{}) {
		t.Fatal("approximation invariants violated")
	}
	if ap.NumNodes() != 2 {
		t.Fatalf("approximation should keep the optional child:\n%s", ap)
	}
	// Sanity: on a database with a triangle and a label, the approximation
	// must produce only answers of p... (soundness of ⊑ on an instance).
	d := gen.RandomDatabase(gen.DBParams{}, 1)
	d.Insert("E", "t1", "t2")
	d.Insert("E", "t2", "t3")
	d.Insert("E", "t3", "t1")
	d.Insert("E", "s", "s")
	d.Insert("L", "s", "lab")
	pAns := cq.NewMappingSet()
	for _, h := range p.Evaluate(d) {
		pAns.Add(h)
	}
	for _, h := range ap.Evaluate(d) {
		ok := false
		for _, g := range p.Evaluate(d) {
			if h.SubsumedBy(g) {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("approximation answer %v not subsumed by any p answer", h)
		}
	}
}

func TestMemberWB(t *testing.T) {
	// A symmetric 4-cycle node folds to a symmetric edge: member of
	// M(WB(1)) although not syntactically in WB(1).
	sym := func(u, v string) []cq.Atom {
		return []cq.Atom{
			cq.NewAtom("E", cq.V(u), cq.V(v)),
			cq.NewAtom("E", cq.V(v), cq.V(u)),
		}
	}
	var atoms []cq.Atom
	atoms = append(atoms, sym("a", "b")...)
	atoms = append(atoms, sym("b", "c")...)
	atoms = append(atoms, sym("c", "d")...)
	atoms = append(atoms, sym("d", "a")...)
	atoms = append(atoms, cq.NewAtom("V", cq.V("x")))
	p := core.MustNew(core.NodeSpec{Atoms: atoms}, []string{"x"})
	if InWB(p, WB(1)) {
		t.Fatal("4-cycle is not syntactically TW(1)")
	}
	w, ok := MemberWB(p, WB(1), Options{})
	if !ok {
		t.Fatal("even cycle tree should be in M(WB(1))")
	}
	if !subsume.Equivalent(p, w, subsume.Options{}) {
		t.Fatal("witness is not subsumption-equivalent")
	}
	// The triangle tree is not in M(WB(1)).
	if _, ok := MemberWB(triangleTree(), WB(1), Options{}); ok {
		t.Fatal("triangle tree must not be in M(WB(1))")
	}
	// Trees in the class are trivially members.
	path := gen.PathWDPT(2)
	if w, ok := MemberWB(path, WB(1), Options{}); !ok || w != path {
		t.Fatal("class member must witness itself")
	}
}

func TestCandidatesRejectConstants(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on constants")
		}
	}()
	Candidates(gen.MusicWDPT("x", "y"), Options{}, func(*core.PatternTree) bool { return true })
}

func TestFigure2FamilyProperties(t *testing.T) {
	const n, k = 1, 2
	p1 := gen.Figure2P1(n, k)
	p2 := gen.Figure2P2(n, k)
	if InWB(p1, WB(k)) {
		t.Fatal("p1 contains a (k+1+n)-clique and must be outside WB(k)")
	}
	if !InWB(p2, WB(k)) {
		t.Fatal("p2 must be inside WB(k)")
	}
	if p2.Size() <= 0 || p1.Size() <= 0 {
		t.Fatal("sizes must be positive")
	}
	if !subsume.Subsumes(p2, p1, subsume.Options{}) {
		t.Fatal("p2 ⊑ p1 must hold (Theorem 15)")
	}
	if subsume.Subsumes(p1, p2, subsume.Options{}) {
		t.Fatal("p1 ⋢ p2: p1 is strictly more general")
	}
}

func TestFigure2SizeGrowth(t *testing.T) {
	// |p1| grows quadratically, |p2| exponentially (Theorem 15).
	const k = 2
	prevRatio := 0.0
	for n := 1; n <= 6; n++ {
		p1 := gen.Figure2P1(n, k)
		p2 := gen.Figure2P2(n, k)
		ratio := float64(p2.Size()) / float64(p1.Size())
		if n >= 3 && ratio <= prevRatio {
			t.Fatalf("n=%d: size ratio %0.2f did not grow (prev %0.2f)", n, ratio, prevRatio)
		}
		prevRatio = ratio
	}
	// The e-atom count of p2's first leaf is exactly 2^n.
	p2 := gen.Figure2P2(5, k)
	leaf := p2.Root().Children()[0]
	eCount := 0
	for _, a := range leaf.Atoms() {
		if a.Rel == "e" {
			eCount++
		}
	}
	if eCount != 32 {
		t.Fatalf("e-atoms = %d, want 2^5 = 32", eCount)
	}
}

func TestApproximationAnswersSoundProperty(t *testing.T) {
	// For random small trees: every returned approximation candidate is in
	// the class, subsumed by p, and sound over random databases.
	for seed := int64(0); seed < 8; seed++ {
		p := gen.RandomWDPT(gen.TreeParams{MaxDepth: 1, MaxChildren: 1, AtomsPerNode: 2, FreshVarsPerNode: 2}, seed)
		if p.HasConstants() {
			continue
		}
		aps := ApproximateAll(p, WB(1), Options{})
		for _, ap := range aps {
			if !InWB(ap, WB(1)) {
				t.Fatalf("seed %d: candidate not in class", seed)
			}
			if !subsume.Subsumes(ap, p, subsume.Options{}) {
				t.Fatalf("seed %d: candidate not subsumed by p", seed)
			}
		}
	}
}

func TestHWPrimeClassApproximation(t *testing.T) {
	// With C(k) = HW'(k), the triangle tree is likewise outside WB'(1) and
	// its approximation collapses; both class choices must agree here since
	// every candidate is binary-relational.
	p := triangleTree()
	if InWB(p, WBPrime(1)) {
		t.Fatal("triangle not beta-acyclic")
	}
	ap, err := Approximate(p, WBPrime(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !InWB(ap, WBPrime(1)) || !subsume.Subsumes(ap, p, subsume.Options{}) {
		t.Fatal("HW'(1) approximation invariants violated")
	}
	apTW, err := Approximate(p, WB(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !subsume.Equivalent(ap, apTW, subsume.Options{}) {
		t.Fatalf("TW(1) and HW'(1) approximations should coincide on binary patterns:\n%s\nvs\n%s", ap, apTW)
	}
}

func TestThetaStyleTreeIsInWBPrime2ButNotWBPrime1(t *testing.T) {
	// A clique + covering atom: g-HW'(1) fails (the clique subquery is
	// cyclic) but g-HW'(2) holds — separating the two hypertree-based
	// well-behaved classes.
	var atoms []cq.Atom
	vars := []cq.Term{cq.V("a"), cq.V("b"), cq.V("c")}
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			atoms = append(atoms, cq.NewAtom("E", vars[i], vars[j]))
		}
	}
	atoms = append(atoms, cq.NewAtom("T", vars...), cq.NewAtom("V", cq.V("x")))
	p := core.MustNew(core.NodeSpec{Atoms: atoms}, []string{"x"})
	if InWB(p, WBPrime(1)) {
		t.Fatal("clique subquery is cyclic: not in g-HW'(1)")
	}
	if !InWB(p, WBPrime(2)) {
		t.Fatal("every subquery has ghw <= 2")
	}
}
