package db

import (
	"sort"
)

// NoID is the sentinel term ID returned for constants absent from a Dict.
// It never identifies a stored term: IDs are dense indexes into the
// dictionary, and the dictionary can never grow to 2^32-1 entries before
// exhausting memory. Rows never contain NoID, so probing a store with it
// matches nothing — exactly the behaviour of looking up an unknown string
// in the legacy map index.
const NoID = ^uint32(0)

// Dict interns constants to dense uint32 term IDs. IDs are assigned in
// first-intern order while loading; Seal (via Database.Seal) re-canonicalizes
// them into sorted-term order so that two databases holding the same facts
// assign the same IDs regardless of insertion order, and so that comparing
// IDs orders the same way as comparing the underlying strings.
//
// Concurrency: lookups (ID, Term, Len, Terms) are safe to call concurrently
// with each other. Intern and canonicalize are not safe concurrently with
// anything — like Relation.Insert, mutation belongs to the loading phase.
type Dict struct {
	terms []string
	ids   map[string]uint32
}

// NewDict creates an empty dictionary.
func NewDict() *Dict {
	return &Dict{ids: make(map[string]uint32)}
}

// Intern returns the ID for s, assigning the next dense ID on first sight.
func (d *Dict) Intern(s string) uint32 {
	if id, ok := d.ids[s]; ok {
		return id
	}
	id := uint32(len(d.terms))
	d.terms = append(d.terms, s)
	d.ids[s] = id
	return id
}

// ID returns the ID for s without interning. The second result reports
// whether s is known; when it is false the first result is NoID.
func (d *Dict) ID(s string) (uint32, bool) {
	id, ok := d.ids[s]
	if !ok {
		return NoID, false
	}
	return id, true
}

// Term returns the string for a valid ID. Passing an ID that was never
// assigned (including NoID) is a programming error and panics via the
// bounds check.
func (d *Dict) Term(id uint32) string { return d.terms[id] }

// Len returns the number of interned terms.
func (d *Dict) Len() int { return len(d.terms) }

// Terms returns the terms indexed by ID. The returned slice must not be
// modified.
func (d *Dict) Terms() []string { return d.terms }

// Sorted reports whether IDs are currently assigned in sorted-term order,
// i.e. whether comparing IDs is equivalent to comparing terms.
func (d *Dict) Sorted() bool { return sort.StringsAreSorted(d.terms) }

// dictFromSorted builds a dictionary whose IDs are already canonical: the
// terms must be strictly sorted (the caller validates), and term i is
// assigned ID i, so the result is indistinguishable from interning the same
// terms in any order and sealing. The slice is copied.
func dictFromSorted(terms []string) *Dict {
	d := &Dict{
		terms: append([]string(nil), terms...),
		ids:   make(map[string]uint32, len(terms)),
	}
	for i, s := range d.terms {
		d.ids[s] = uint32(i)
	}
	return d
}

// canonicalize reassigns IDs in sorted-term order. It returns the old→new
// remap table, or nil if the assignment was already canonical (which makes
// the operation idempotent). Callers owning stores must renumber them with
// the same table.
func (d *Dict) canonicalize() []uint32 {
	if sort.StringsAreSorted(d.terms) {
		return nil
	}
	sorted := make([]string, len(d.terms))
	copy(sorted, d.terms)
	sort.Strings(sorted)
	remap := make([]uint32, len(d.terms))
	ids := make(map[string]uint32, len(sorted))
	for i, s := range sorted {
		ids[s] = uint32(i)
	}
	for old, s := range d.terms {
		remap[old] = ids[s]
	}
	d.terms = sorted
	d.ids = ids
	return remap
}
