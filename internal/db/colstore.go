package db

import (
	"fmt"
	"sync/atomic"
)

// colStore is the columnar backend: rows are stored as per-column []uint32
// term-ID vectors, membership is tracked by fixed-width packed row keys,
// and lookups go through lazily built permuted sorted runs — for each
// position, a permutation of the row offsets sorted by (value at that
// position, offset), built by counting sort over the dense term IDs
// together with a run directory indexed directly by ID. MatchingIDs is then
// two array loads returning a contiguous, insertion-ordered run of offsets,
// and a join that probes in index order degenerates into a merge over
// sorted runs. For arity 3 the three permutations are exactly the
// SPO/POS/OSP access paths of a triple store; for general arity there is
// one per leading position.
//
// A flat row-major mirror rides along so Scan returns a subslice instead
// of allocating a row per call — scans are the enumeration hot path, and
// a per-row allocation there costs more than the mirror's memory.
type colStore struct {
	arity int
	n     int
	cols  [][]uint32
	rows  []uint32
	seen  map[string]bool
	// perms holds the lazily built permuted sorted runs, published
	// atomically so concurrent readers share one snapshot; Insert drops
	// them and the next reader rebuilds from the then-current columns.
	perms atomic.Pointer[colIndex]
	// keyBuf is scratch for packing row keys; Insert and Contains are the
	// only writers and mutation is single-threaded per the Store contract.
	keyBuf []byte
}

// colIndex is an immutable snapshot of the per-position permutations. Once
// published it is never mutated.
type colIndex struct {
	byPos []posIndex
}

// posIndex is the permuted sorted run for one column position plus a dense
// run directory over term IDs: perm lists all row offsets ordered by
// (column value, offset), and for any id occurring in the column the
// matching run is perm[starts[id]:starts[id+1]]. starts has one entry per
// ID up to the column's maximum value plus a terminator, so a probe is two
// array loads — no hashing, no binary search.
type posIndex struct {
	perm   []int
	starts []int32
}

func newColStore(arity int) *colStore {
	return &colStore{
		arity: arity,
		cols:  make([][]uint32, arity),
		seen:  make(map[string]bool),
	}
}

func (s *colStore) Arity() int { return s.arity }
func (s *colStore) Len() int   { return s.n }

func (s *colStore) Insert(row []uint32) bool {
	s.keyBuf = AppendRowKey(s.keyBuf[:0], row)
	if s.seen[string(s.keyBuf)] {
		return false
	}
	s.seen[string(s.keyBuf)] = true
	for pos, id := range row {
		s.cols[pos] = append(s.cols[pos], id)
	}
	s.rows = append(s.rows, row...)
	s.n++
	s.perms.Store(nil)
	return true
}

func (s *colStore) Contains(row []uint32) bool {
	// Contains is a read operation: pack into a local buffer instead of
	// the single-writer scratch so concurrent readers stay safe.
	var stack [32]byte
	key := AppendRowKey(stack[:0], row)
	return s.seen[string(key)]
}

func (s *colStore) Scan(i int) []uint32 {
	return s.rows[i*s.arity : (i+1)*s.arity : (i+1)*s.arity]
}

func (s *colStore) At(i, pos int) uint32 { return s.cols[pos][i] }

func (s *colStore) MatchingIDs(pos int, id uint32) []int {
	ix := &s.ensurePerms().byPos[pos]
	if int64(id) >= int64(len(ix.starts))-1 {
		return nil // beyond the column's maximum value: no run
	}
	return ix.perm[ix.starts[id]:ix.starts[id+1]]
}

// ensurePerms returns the current permutation index, building and
// publishing it on first use. Concurrent readers may build duplicate
// snapshots; the CompareAndSwap makes one canonical and the losers use
// their private (equivalent) copy, so the result is correct either way.
func (s *colStore) ensurePerms() *colIndex {
	if ix := s.perms.Load(); ix != nil {
		return ix
	}
	ix := &colIndex{byPos: make([]posIndex, s.arity)}
	for pos := 0; pos < s.arity; pos++ {
		col := s.cols[pos]
		// Counting sort over the dense term IDs: one pass to size the runs,
		// a prefix sum to place them, and one stable pass over the rows in
		// insertion order — O(rows + maxID), and the run directory (starts)
		// falls out of the prefix sum for free.
		var maxID uint32
		for _, id := range col {
			if id > maxID {
				maxID = id
			}
		}
		starts := make([]int32, int64(maxID)+2)
		for _, id := range col {
			starts[id+1]++
		}
		for i := 1; i < len(starts); i++ {
			starts[i] += starts[i-1]
		}
		perm := make([]int, s.n)
		next := make([]int32, int64(maxID)+1)
		copy(next, starts[:len(starts)-1])
		for i, id := range col {
			perm[next[id]] = i
			next[id]++
		}
		ix.byPos[pos] = posIndex{perm: perm, starts: starts}
	}
	if s.perms.CompareAndSwap(nil, ix) {
		return ix
	}
	if cur := s.perms.Load(); cur != nil {
		return cur
	}
	return ix
}

// columns exposes the live column vectors for Relation.Columns. The caller
// must not modify them.
func (s *colStore) columns() [][]uint32 { return s.cols }

// bulkLoad replaces the store's contents with nRows rows given in
// column-major form, copying the column vectors and rebuilding membership
// in one pass — the snapshot load path, skipping per-row Insert overhead.
// Duplicate rows are an error rather than a silent dedup: bulk input comes
// from a snapshot, where a duplicate means corruption.
func (s *colStore) bulkLoad(cols [][]uint32, nRows int) error {
	s.cols = make([][]uint32, s.arity)
	for pos := range cols {
		s.cols[pos] = append([]uint32(nil), cols[pos]...)
	}
	s.rows = make([]uint32, 0, nRows*s.arity)
	seen := make(map[string]bool, nRows)
	row := make([]uint32, s.arity)
	var buf []byte
	for i := 0; i < nRows; i++ {
		for pos := 0; pos < s.arity; pos++ {
			row[pos] = cols[pos][i]
		}
		buf = AppendRowKey(buf[:0], row)
		if seen[string(buf)] {
			return fmt.Errorf("duplicate row at offset %d", i)
		}
		seen[string(buf)] = true
		s.rows = append(s.rows, row...)
	}
	s.seen = seen
	s.n = nRows
	s.perms.Store(nil)
	return nil
}

// remap renumbers every stored ID after dictionary canonicalization. Row
// order is preserved; the membership keys and permutations are rebuilt
// from the renumbered rows.
func (s *colStore) remap(m []uint32) {
	for _, col := range s.cols {
		for i, id := range col {
			col[i] = m[id]
		}
	}
	for i, id := range s.rows {
		s.rows[i] = m[id]
	}
	seen := make(map[string]bool, s.n)
	var buf []byte
	for i := 0; i < s.n; i++ {
		buf = AppendRowKey(buf[:0], s.rows[i*s.arity:(i+1)*s.arity])
		seen[string(buf)] = true
	}
	s.seen = seen
	s.perms.Store(nil)
}
