package db

import (
	"sync/atomic"
)

// memStore is the legacy relation layout preserved behind the Store
// interface: tuples of Go strings, a set keyed by the (length-prefixed)
// tuple key, and lazy per-position map[string][]int hash indexes. It is
// kept for backend-equivalence testing — every ID-level operation is
// answered by translating through the dictionary and running the exact
// string-map code path the pre-columnar engine used.
type memStore struct {
	dict   *Dict
	arity  int
	tuples []Tuple
	seen   map[string]bool
	// index holds the lazily built per-position value index, published
	// atomically so concurrent readers can share it (copy-on-read: Insert
	// drops the whole index and the next reader rebuilds it from the
	// then-current tuples).
	index atomic.Pointer[memIndex]
	// idRows caches the flat ID image of tuples for Scan/At, published
	// atomically like the index.
	idRows atomic.Pointer[[]uint32]
}

// memIndex is an immutable snapshot index over a relation's tuples:
// byPos[pos][value] lists the offsets into tuples whose component at
// position pos equals value. Once published it is never mutated.
type memIndex struct {
	byPos []map[string][]int
}

func newMemStore(dict *Dict, arity int) *memStore {
	return &memStore{dict: dict, arity: arity, seen: make(map[string]bool)}
}

func (s *memStore) Arity() int { return s.arity }
func (s *memStore) Len() int   { return len(s.tuples) }

func (s *memStore) Insert(row []uint32) bool {
	t := make(Tuple, len(row))
	for i, id := range row {
		t[i] = s.dict.Term(id)
	}
	k := t.key()
	if s.seen[k] {
		return false
	}
	s.seen[k] = true
	s.tuples = append(s.tuples, t)
	s.index.Store(nil)
	s.idRows.Store(nil)
	return true
}

func (s *memStore) Contains(row []uint32) bool {
	t := make(Tuple, len(row))
	for i, id := range row {
		t[i] = s.dict.Term(id)
	}
	return s.seen[t.key()]
}

func (s *memStore) Scan(i int) []uint32 {
	rows := s.ensureIDRows()
	return rows[i*s.arity : (i+1)*s.arity]
}

func (s *memStore) At(i, pos int) uint32 {
	return s.ensureIDRows()[i*s.arity+pos]
}

func (s *memStore) MatchingIDs(pos int, id uint32) []int {
	return s.ensureIndex().byPos[pos][s.dict.Term(id)]
}

// stringTuples is the fast path for the deprecated Relation.Tuples.
func (s *memStore) stringTuples() []Tuple { return s.tuples }

// ensureIndex returns the current index, building and publishing it on
// first use. Concurrent readers may build duplicate indexes; the
// CompareAndSwap makes one canonical and the losers use their private
// (equivalent) copy, so the result is correct either way.
func (s *memStore) ensureIndex() *memIndex {
	if ix := s.index.Load(); ix != nil {
		return ix
	}
	ix := &memIndex{byPos: make([]map[string][]int, s.arity)}
	for pos := 0; pos < s.arity; pos++ {
		m := make(map[string][]int)
		for i, t := range s.tuples {
			m[t[pos]] = append(m[t[pos]], i)
		}
		ix.byPos[pos] = m
	}
	if s.index.CompareAndSwap(nil, ix) {
		return ix
	}
	if cur := s.index.Load(); cur != nil {
		return cur
	}
	return ix
}

// ensureIDRows returns the flat row-major ID image of the stored tuples,
// building and publishing it on first use with the same benign-race scheme
// as the index.
func (s *memStore) ensureIDRows() []uint32 {
	if rows := s.idRows.Load(); rows != nil {
		return *rows
	}
	flat := make([]uint32, 0, len(s.tuples)*s.arity)
	for _, t := range s.tuples {
		for _, c := range t {
			id, ok := s.dict.ID(c)
			if !ok {
				//lint:ignore R2 invariant violation: every stored constant was interned on Insert
				panic("db: memstore tuple constant missing from dictionary")
			}
			flat = append(flat, id)
		}
	}
	if s.idRows.CompareAndSwap(nil, &flat) {
		return flat
	}
	if cur := s.idRows.Load(); cur != nil {
		return *cur
	}
	return flat
}

// remap handles dictionary canonicalization: the string layout is
// untouched (strings never change), only the cached ID image is stale.
func (s *memStore) remap([]uint32) {
	s.idRows.Store(nil)
}
