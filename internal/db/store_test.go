package db

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// TestTupleKeyCollision is the regression test for the historical "\x00"
// separator hazard: ("a\x00b", "c") and ("a", "b\x00c") used to pack to the
// same membership key, so the second insert was silently dropped. The
// length-prefixed legacy key and the fixed-width ID key both distinguish
// them.
func TestTupleKeyCollision(t *testing.T) {
	for _, b := range []Backend{BackendColumnar, BackendMemory} {
		d := NewWithBackend(b)
		if !d.Insert("R", "a\x00b", "c") {
			t.Fatalf("%v: first insert not new", b)
		}
		if !d.Insert("R", "a", "b\x00c") {
			t.Fatalf("%v: colliding insert dropped — separator hazard is back", b)
		}
		r := d.Relation("R")
		if r.Len() != 2 {
			t.Fatalf("%v: Len = %d, want 2", b, r.Len())
		}
		if !d.Contains("R", "a\x00b", "c") || !d.Contains("R", "a", "b\x00c") {
			t.Fatalf("%v: membership lost a colliding tuple", b)
		}
		if d.Contains("R", "a\x00b", "b\x00c") {
			t.Fatalf("%v: phantom tuple from key aliasing", b)
		}
	}
	// The raw Tuple.key must separate them too (the legacy map layout).
	if (Tuple{"a\x00b", "c"}).key() == (Tuple{"a", "b\x00c"}).key() {
		t.Fatal("Tuple.key() collides on embedded separators")
	}
}

// TestAppendRowKey checks the fixed-width packed key: distinct rows pack to
// distinct keys and equal rows to equal keys.
func TestAppendRowKey(t *testing.T) {
	rows := [][]uint32{{0, 0}, {0, 1}, {1, 0}, {256, 0}, {0, 256}, {NoID, NoID}}
	seen := map[string][]uint32{}
	for _, row := range rows {
		k := string(AppendRowKey(nil, row))
		if len(k) != 8 {
			t.Fatalf("key of %v is %d bytes, want 8", row, len(k))
		}
		if prev, ok := seen[k]; ok {
			t.Fatalf("rows %v and %v pack to the same key", prev, row)
		}
		seen[k] = row
	}
}

func TestDictInternAndLookup(t *testing.T) {
	d := NewDict()
	ids := map[string]uint32{}
	for _, s := range []string{"b", "a", "c", "b"} {
		ids[s] = d.Intern(s)
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
	for s, id := range ids {
		if got, ok := d.ID(s); !ok || got != id {
			t.Fatalf("ID(%q) = %d,%v, want %d,true", s, got, ok, id)
		}
		if d.Term(id) != s {
			t.Fatalf("Term(%d) = %q, want %q", id, d.Term(id), s)
		}
	}
	if id, ok := d.ID("missing"); ok || id != NoID {
		t.Fatalf("ID(missing) = %d,%v, want NoID,false", id, ok)
	}
}

// TestSealCanonicalizes checks that Seal makes term-ID order equal string
// order regardless of insertion order, remaps the stored rows consistently,
// and is idempotent.
func TestSealCanonicalizes(t *testing.T) {
	for _, b := range []Backend{BackendColumnar, BackendMemory} {
		d := NewWithBackend(b)
		d.Insert("E", "zeta", "mu")
		d.Insert("E", "alpha", "zeta")
		d.Seal()
		dict := d.Dict()
		if !sort.StringsAreSorted(dict.Terms()) {
			t.Fatalf("%v: dict not sorted after Seal: %v", b, dict.Terms())
		}
		r := d.Relation("E")
		if !d.Contains("E", "zeta", "mu") || !d.Contains("E", "alpha", "zeta") {
			t.Fatalf("%v: rows lost in remap", b)
		}
		id, _ := dict.ID("zeta")
		if got := len(r.MatchingIDs(0, id)); got != 1 {
			t.Fatalf("%v: MatchingIDs(0, zeta) = %d rows, want 1", b, got)
		}
		before := dict.Terms()
		d.Seal() // idempotent: already sorted, nothing moves
		if !reflect.DeepEqual(before, dict.Terms()) {
			t.Fatalf("%v: second Seal changed the dictionary", b)
		}
		if !d.Contains("E", "alpha", "zeta") {
			t.Fatalf("%v: second Seal broke membership", b)
		}
	}
}

// TestMatchingIDsInsertionOrder pins the Store contract: offsets come back
// in insertion order on both backends, including after an index-invalidating
// insert.
func TestMatchingIDsInsertionOrder(t *testing.T) {
	for _, b := range []Backend{BackendColumnar, BackendMemory} {
		d := NewWithBackend(b)
		d.Insert("E", "a", "x")
		d.Insert("E", "b", "y")
		d.Insert("E", "a", "z")
		r := d.Relation("E")
		id, _ := d.Dict().ID("a")
		if got := r.MatchingIDs(0, id); !reflect.DeepEqual(got, []int{0, 2}) {
			t.Fatalf("%v: MatchingIDs = %v, want [0 2]", b, got)
		}
		d.Insert("E", "a", "w")
		if got := r.MatchingIDs(0, id); !reflect.DeepEqual(got, []int{0, 2, 3}) {
			t.Fatalf("%v: after insert MatchingIDs = %v, want [0 2 3]", b, got)
		}
		// Probing with NoID or an out-of-range ID matches nothing — the
		// ID-level analogue of an unknown constant.
		if len(r.MatchingIDs(1, NoID)) != 0 {
			t.Fatalf("%v: NoID probe matched rows", b)
		}
		if r.ContainsIDs([]uint32{NoID, 0}) {
			t.Fatalf("%v: ContainsIDs(NoID, ...) = true", b)
		}
	}
}

func TestParseBackend(t *testing.T) {
	cases := map[string]Backend{
		"col": BackendColumnar, "columnar": BackendColumnar,
		"mem": BackendMemory, "memory": BackendMemory,
	}
	for s, want := range cases {
		got, err := ParseBackend(s)
		if err != nil || got != want {
			t.Fatalf("ParseBackend(%q) = %v, %v", s, got, err)
		}
		if got.String() != cases[s].String() {
			t.Fatalf("round-trip mismatch for %q", s)
		}
	}
	if _, err := ParseBackend("postgres"); err == nil {
		t.Fatal("ParseBackend should reject unknown names")
	}
}

// TestStoreBackendsEquivalent drives the same random workload into both
// backends and checks every read surface agrees: string membership, ID
// membership, index probes (both string and ID forms), scans, and the
// active domain.
func TestStoreBackendsEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	consts := []string{"a", "b", "c", "d", "e\x00f", ""}
	col := NewWithBackend(BackendColumnar)
	mem := NewWithBackend(BackendMemory)
	for i := 0; i < 300; i++ {
		t3 := []string{
			consts[rng.Intn(len(consts))],
			consts[rng.Intn(len(consts))],
			consts[rng.Intn(len(consts))],
		}
		if col.Insert("T", t3...) != mem.Insert("T", t3...) {
			t.Fatalf("insert newness disagrees on %q", t3)
		}
	}
	col.Seal()
	mem.Seal()
	rc, rm := col.Relation("T"), mem.Relation("T")
	if rc.Len() != rm.Len() {
		t.Fatalf("Len: col=%d mem=%d", rc.Len(), rm.Len())
	}
	if !reflect.DeepEqual(col.ActiveDomain(), mem.ActiveDomain()) {
		t.Fatalf("ActiveDomain disagrees")
	}
	for i := 0; i < rc.Len(); i++ {
		if !reflect.DeepEqual(rc.Scan(i), rm.Scan(i)) {
			t.Fatalf("Scan(%d): col=%v mem=%v", i, rc.Scan(i), rm.Scan(i))
		}
	}
	for pos := 0; pos < 3; pos++ {
		for _, c := range consts {
			if !reflect.DeepEqual(rc.Matching(pos, c), rm.Matching(pos, c)) {
				t.Fatalf("Matching(%d, %q) disagrees", pos, c)
			}
			id, ok := col.Dict().ID(c)
			if !ok {
				continue
			}
			got, want := rc.MatchingIDs(pos, id), rm.MatchingIDs(pos, id)
			if len(got) != len(want) || (len(got) > 0 && !reflect.DeepEqual(got, want)) {
				t.Fatalf("MatchingIDs(%d, %d) col=%v mem=%v", pos, id, got, want)
			}
		}
	}
	for i := 0; i < 50; i++ {
		probe := Tuple{
			consts[rng.Intn(len(consts))],
			consts[rng.Intn(len(consts))],
			consts[rng.Intn(len(consts))],
		}
		if col.Contains("T", probe...) != mem.Contains("T", probe...) {
			t.Fatalf("Contains(%q) disagrees", probe)
		}
	}
}
