package db

import (
	"fmt"
)

// BulkRelation describes one relation's rows in dictionary-encoded
// column-major form for NewFromColumns: Cols[pos][i] is row i's term ID at
// position pos, and every column holds exactly Rows values. This is the
// load half of the snapshot path — Relation.Columns is the matching export.
type BulkRelation struct {
	Name string
	Rows int
	Cols [][]uint32
}

// NewFromColumns builds a database directly from canonical term IDs,
// bypassing string interning: terms must be strictly sorted (so the
// resulting dictionary is already sealed — term i has ID i), and every
// column value must be a valid index into terms. The input is validated,
// not trusted: unsorted or duplicate terms, out-of-range IDs, ragged or
// empty columns, duplicate relation names, and duplicate rows are all
// errors — bulk input comes from a snapshot, where any of these means
// corruption rather than a benign re-insert. On error the returned
// database is nil; no partially loaded state escapes.
func NewFromColumns(b Backend, terms []string, rels []BulkRelation) (*Database, error) {
	for i := 1; i < len(terms); i++ {
		if terms[i-1] >= terms[i] {
			return nil, fmt.Errorf("db: bulk terms not strictly sorted at index %d (%q then %q)", i, terms[i-1], terms[i])
		}
	}
	d := NewWithBackend(b)
	d.dict = dictFromSorted(terms)
	for _, br := range rels {
		if br.Name == "" {
			return nil, fmt.Errorf("db: bulk relation with empty name")
		}
		if d.rels[br.Name] != nil {
			return nil, fmt.Errorf("db: duplicate bulk relation %q", br.Name)
		}
		arity := len(br.Cols)
		if arity == 0 {
			return nil, fmt.Errorf("db: bulk relation %q has no columns", br.Name)
		}
		if br.Rows < 0 {
			return nil, fmt.Errorf("db: bulk relation %q has negative row count %d", br.Name, br.Rows)
		}
		for pos, col := range br.Cols {
			if len(col) != br.Rows {
				return nil, fmt.Errorf("db: bulk relation %q column %d holds %d values, want %d", br.Name, pos, len(col), br.Rows)
			}
			for i, id := range col {
				if int64(id) >= int64(len(terms)) {
					return nil, fmt.Errorf("db: bulk relation %q row %d column %d: term ID %d out of range (dictionary holds %d terms)", br.Name, i, pos, id, len(terms))
				}
			}
		}
		r := newRelation(br.Name, arity, d.dict, b)
		if cs, ok := r.store.(*colStore); ok {
			if err := cs.bulkLoad(br.Cols, br.Rows); err != nil {
				return nil, fmt.Errorf("db: bulk relation %q: %w", br.Name, err)
			}
		} else {
			row := make([]uint32, arity)
			for i := 0; i < br.Rows; i++ {
				for pos := 0; pos < arity; pos++ {
					row[pos] = br.Cols[pos][i]
				}
				if !r.store.Insert(row) {
					return nil, fmt.Errorf("db: bulk relation %q: duplicate row at offset %d", br.Name, i)
				}
			}
		}
		d.rels[br.Name] = r
	}
	return d, nil
}
