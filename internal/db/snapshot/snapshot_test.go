package snapshot_test

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wdpt/internal/db"
	"wdpt/internal/db/snapshot"
)

// makeDB builds a small sealed database with two relations and enough
// distinct constants that canonical ID assignment actually reorders
// something (constants are inserted out of sorted order).
func makeDB(t *testing.T, b db.Backend) *db.Database {
	t.Helper()
	d := db.NewWithBackend(b)
	d.Insert("edge", "zeta", "alpha")
	d.Insert("edge", "mike", "zeta")
	d.Insert("edge", "alpha", "mike")
	d.Insert("label", "zeta", "end", "red")
	d.Insert("label", "alpha", "start", "blue")
	d.Seal()
	return d
}

func TestRoundTripBothBackends(t *testing.T) {
	src := makeDB(t, db.BackendColumnar)
	data, err := snapshot.Encode(src)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	for _, b := range []db.Backend{db.BackendColumnar, db.BackendMemory} {
		got, err := snapshot.Decode(data, b)
		if err != nil {
			t.Fatalf("Decode on %v: %v", b, err)
		}
		if got.Backend() != b {
			t.Errorf("backend = %v, want %v", got.Backend(), b)
		}
		if got.String() != src.String() {
			t.Errorf("decoded database on %v differs:\n got:\n%s\nwant:\n%s", b, got.String(), src.String())
		}
		if !got.Dict().Sorted() {
			t.Errorf("decoded dictionary on %v is not canonical", b)
		}
		if !got.Contains("edge", "zeta", "alpha") || got.Contains("edge", "alpha", "zeta") {
			t.Errorf("membership wrong after decode on %v", b)
		}
		// A second encode of the decoded database must be byte-identical:
		// the format is canonical for a sealed database.
		data2, err := snapshot.Encode(got)
		if err != nil {
			t.Fatalf("re-Encode on %v: %v", b, err)
		}
		if string(data2) != string(data) {
			t.Errorf("re-encode on %v is not byte-identical", b)
		}
	}
}

func TestEncodeRequiresSealed(t *testing.T) {
	d := db.New()
	d.Insert("r", "zzz")
	d.Insert("r", "aaa") // unsorted intern order, never sealed
	if _, err := snapshot.Encode(d); err == nil {
		t.Fatal("Encode accepted an unsealed database")
	}
	d.Seal()
	if _, err := snapshot.Encode(d); err != nil {
		t.Fatalf("Encode after Seal: %v", err)
	}
}

func TestEmptyDatabaseRoundTrip(t *testing.T) {
	d := db.New()
	d.Seal()
	data, err := snapshot.Encode(d)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := snapshot.Decode(data, db.BackendColumnar)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Size() != 0 || len(got.Relations()) != 0 {
		t.Fatalf("decoded empty database has size %d, %d relations", got.Size(), len(got.Relations()))
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.snap")
	src := makeDB(t, db.BackendColumnar)
	if err := snapshot.Write(path, src); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := snapshot.Read(path, db.BackendColumnar)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.String() != src.String() {
		t.Errorf("Read mismatch:\n got:\n%s\nwant:\n%s", got.String(), src.String())
	}
	// Overwriting an existing snapshot must work and leave no temp files.
	if err := snapshot.Write(path, src); err != nil {
		t.Fatalf("second Write: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(entries) != 1 || entries[0].Name() != "data.snap" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Errorf("directory holds %v, want only data.snap", names)
	}
}

func TestReadMissingFile(t *testing.T) {
	_, err := snapshot.Read(filepath.Join(t.TempDir(), "absent.snap"), db.BackendColumnar)
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Read of missing file: %v, want fs.ErrNotExist", err)
	}
}

// --- crafted payloads -------------------------------------------------------

// rawRel is a hand-built relation section for corruption tests.
type rawRel struct {
	name  string
	arity uint32
	rows  uint32
	ids   []uint32 // column-major, arity*rows values
}

// rawSnapshot assembles a snapshot with correct CRCs from raw parts,
// mirroring the writer so tests can produce semantically invalid but
// checksum-clean files.
func rawSnapshot(version uint32, terms []string, rels []rawRel) []byte {
	be := binary.BigEndian.AppendUint32
	buf := append([]byte(nil), "WDPTSNAP"...)
	buf = be(buf, version)
	buf = be(buf, uint32(len(rels)))
	start := len(buf)
	buf = be(buf, uint32(len(terms)))
	for _, s := range terms {
		buf = be(buf, uint32(len(s)))
		buf = append(buf, s...)
	}
	buf = be(buf, crc32.ChecksumIEEE(buf[start:]))
	for _, r := range rels {
		start = len(buf)
		buf = be(buf, uint32(len(r.name)))
		buf = append(buf, r.name...)
		buf = be(buf, r.arity)
		buf = be(buf, r.rows)
		for _, id := range r.ids {
			buf = be(buf, id)
		}
		buf = be(buf, crc32.ChecksumIEEE(buf[start:]))
	}
	sum := crc32.ChecksumIEEE(buf)
	buf = append(buf, "WSNAPEND"...)
	return be(buf, sum)
}

func TestErrorTaxonomy(t *testing.T) {
	valid := rawSnapshot(1, []string{"a", "b"}, []rawRel{{name: "r", arity: 2, rows: 1, ids: []uint32{0, 1}}})
	if _, err := snapshot.Decode(valid, db.BackendColumnar); err != nil {
		t.Fatalf("rawSnapshot builder produces undecodable bytes: %v", err)
	}
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, snapshot.ErrTruncated},
		{"magic prefix only", []byte("WDPT"), snapshot.ErrTruncated},
		{"wrong magic", []byte("NOTASNAP00000000000000000000000000000000"), snapshot.ErrBadMagic},
		{"header only", valid[:16], snapshot.ErrTruncated},
		{"future version", rawSnapshot(2, nil, nil), snapshot.ErrVersion},
		{"missing footer", valid[:len(valid)-12], snapshot.ErrTruncated},
		{"payload bit flip", flipped, snapshot.ErrChecksum},
		{"unsorted terms", rawSnapshot(1, []string{"b", "a"}, nil), snapshot.ErrFormat},
		{"duplicate terms", rawSnapshot(1, []string{"a", "a"}, nil), snapshot.ErrFormat},
		{"id out of range", rawSnapshot(1, []string{"a"}, []rawRel{{name: "r", arity: 1, rows: 1, ids: []uint32{5}}}), snapshot.ErrFormat},
		{"zero arity", rawSnapshot(1, []string{"a"}, []rawRel{{name: "r", arity: 0, rows: 0}}), snapshot.ErrFormat},
		{"duplicate rows", rawSnapshot(1, []string{"a"}, []rawRel{{name: "r", arity: 1, rows: 2, ids: []uint32{0, 0}}}), snapshot.ErrFormat},
		{"duplicate relation", rawSnapshot(1, []string{"a"}, []rawRel{
			{name: "r", arity: 1, rows: 1, ids: []uint32{0}},
			{name: "r", arity: 1, rows: 1, ids: []uint32{0}},
		}), snapshot.ErrFormat},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := snapshot.Decode(tc.data, db.BackendColumnar)
			if d != nil {
				t.Fatalf("Decode returned a database alongside the expected failure")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Decode error = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestCountBombsRejected feeds headers whose declared counts vastly exceed
// the file size; the decoder must reject them cheaply (typed error) rather
// than allocating gigabytes.
func TestCountBombsRejected(t *testing.T) {
	be := binary.BigEndian.AppendUint32
	// Huge term count.
	buf := append([]byte(nil), "WDPTSNAP"...)
	buf = be(buf, 1)          // version
	buf = be(buf, 0)          // relCount
	buf = be(buf, 0x7fffffff) // termCount bomb
	sum := crc32.ChecksumIEEE(buf)
	buf = append(buf, "WSNAPEND"...)
	buf = be(buf, sum)
	if _, err := snapshot.Decode(buf, db.BackendColumnar); !errors.Is(err, snapshot.ErrTruncated) {
		t.Errorf("term-count bomb: %v, want ErrTruncated", err)
	}

	// Huge relation count.
	buf = append([]byte(nil), "WDPTSNAP"...)
	buf = be(buf, 1)
	buf = be(buf, 0x7fffffff) // relCount bomb
	start := len(buf)
	buf = be(buf, 0) // empty dict
	buf = be(buf, crc32.ChecksumIEEE(buf[start:]))
	sum = crc32.ChecksumIEEE(buf)
	buf = append(buf, "WSNAPEND"...)
	buf = be(buf, sum)
	if _, err := snapshot.Decode(buf, db.BackendColumnar); !errors.Is(err, snapshot.ErrTruncated) {
		t.Errorf("rel-count bomb: %v, want ErrTruncated", err)
	}

	// Huge row count inside an otherwise plausible relation.
	buf = append([]byte(nil), "WDPTSNAP"...)
	buf = be(buf, 1)
	buf = be(buf, 1)
	start = len(buf)
	buf = be(buf, 1)
	buf = be(buf, 1)
	buf = append(buf, 'a')
	buf = be(buf, crc32.ChecksumIEEE(buf[start:]))
	start = len(buf)
	buf = be(buf, 1)
	buf = append(buf, 'r')
	buf = be(buf, 0xffffffff) // arity bomb
	buf = be(buf, 0xffffffff) // rows bomb
	buf = be(buf, crc32.ChecksumIEEE(buf[start:]))
	sum = crc32.ChecksumIEEE(buf)
	buf = append(buf, "WSNAPEND"...)
	buf = be(buf, sum)
	if _, err := snapshot.Decode(buf, db.BackendColumnar); !errors.Is(err, snapshot.ErrTruncated) {
		t.Errorf("row-count bomb: %v, want ErrTruncated", err)
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	// Splice garbage between the last section and the footer, then refit
	// the whole-file CRC so only the structural check can object.
	valid := rawSnapshot(1, []string{"a"}, nil)
	body := valid[:len(valid)-12]
	body = append(append([]byte(nil), body...), 0xde, 0xad)
	sum := crc32.ChecksumIEEE(body)
	body = append(body, "WSNAPEND"...)
	body = binary.BigEndian.AppendUint32(body, sum)
	if _, err := snapshot.Decode(body, db.BackendColumnar); !errors.Is(err, snapshot.ErrFormat) && !errors.Is(err, snapshot.ErrTruncated) {
		t.Fatalf("trailing bytes: %v, want ErrFormat or ErrTruncated", err)
	}
}

func TestParityWithTextParse(t *testing.T) {
	// A database round-tripped through the snapshot must render exactly
	// the text it parsed from (modulo line ordering, which String sorts).
	src := makeDB(t, db.BackendColumnar)
	data, err := snapshot.Encode(src)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := snapshot.Decode(data, db.BackendColumnar)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !strings.Contains(got.String(), "edge(zeta, alpha)") {
		t.Fatalf("decoded database lost a tuple:\n%s", got.String())
	}
}
