// The crash-restart chaos suite for the durable snapshot path, designed to
// run under -race like internal/guard's. For every fault-injection site in
// the writer and every hit count of that site, the writer is killed
// mid-publication; the "restarted" loader must then either recover the
// previous intact snapshot or observe the new one fully published — never
// a torn or corrupt file. Torn-write and bit-rot sweeps drive the loader
// over every truncation point and flipped byte of a real snapshot and
// require a typed refusal each time.
package snapshot_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"wdpt/internal/db"
	"wdpt/internal/db/snapshot"
	"wdpt/internal/guard"
)

// versionedDB builds a sealed database whose content is distinguishable by
// version number, so recovery tests can tell which snapshot a load served.
func versionedDB(v int) *db.Database {
	d := db.New()
	for i := 0; i < 40; i++ {
		d.Insert("edge", fmt.Sprintf("n%03d", i), fmt.Sprintf("n%03d", (i+v)%40))
	}
	d.Insert("version", strconv.Itoa(v))
	d.Seal()
	return d
}

// writerSites are the fault sites the crash-restart sweep drives; the read
// site is exercised separately since it fails loads, not publications.
var writerSites = []string{
	guard.SiteSnapshotWrite,
	guard.SiteSnapshotFsync,
	guard.SiteSnapshotRename,
}

// countSiteHits runs one clean Write under a rule-free injector and
// returns how many times each writer site is evaluated, so the sweep can
// kill the writer at every one of them.
func countSiteHits(t *testing.T) map[string]int64 {
	t.Helper()
	dir := t.TempDir()
	in := guard.NewInjector(1)
	restore := guard.Activate(in)
	defer restore()
	if err := snapshot.Write(filepath.Join(dir, "count.snap"), versionedDB(2)); err != nil {
		t.Fatalf("clean Write under counting injector: %v", err)
	}
	hits := make(map[string]int64)
	for _, site := range writerSites {
		hits[site] = in.Hits(site)
		if hits[site] == 0 {
			t.Fatalf("site %s was never evaluated during Write: the trigger point is dead", site)
		}
	}
	return hits
}

// TestChaosCrashRestartEverySite kills the writer at every hit of every
// writer fault site and asserts the crash-restart contract: Write fails
// with an errors.Is-matchable injected fault, and a subsequent load serves
// either the previous intact snapshot (v1) or — only when the crash landed
// after the atomic rename — the complete new one (v2). It must never serve
// a torn file or fail the load.
func TestChaosCrashRestartEverySite(t *testing.T) {
	hits := countSiteHits(t)
	v1, v2 := versionedDB(1), versionedDB(2)
	for _, site := range writerSites {
		for n := int64(1); n <= hits[site]; n++ {
			t.Run(fmt.Sprintf("%s/hit%d", site, n), func(t *testing.T) {
				dir := t.TempDir()
				path := filepath.Join(dir, "data.snap")
				if err := snapshot.Write(path, v1); err != nil {
					t.Fatalf("publish v1: %v", err)
				}
				in := guard.NewInjector(7).FailNth(site, n)
				restore := guard.Activate(in)
				err := snapshot.Write(path, v2)
				restore()
				if err == nil {
					t.Fatalf("injected fault at %s hit %d did not fail the Write", site, n)
				}
				if !errors.Is(err, guard.ErrInjected) {
					t.Fatalf("Write failed with %v, not matchable with ErrInjected", err)
				}
				got, err := snapshot.Read(path, db.BackendColumnar)
				if err != nil {
					t.Fatalf("restart load after crash at %s hit %d: %v", site, n, err)
				}
				switch got.String() {
				case v1.String():
					// Crash before publication: previous snapshot intact.
				case v2.String():
					if site != guard.SiteSnapshotFsync {
						t.Fatalf("crash at %s hit %d before rename, yet load served v2", site, n)
					}
					// The directory-fsync hit lands after the rename: the
					// new file is visible and complete, just not provably
					// durable. Serving it is correct.
				default:
					t.Fatalf("restart load after crash at %s hit %d served torn data:\n%s", site, n, got.String())
				}
				// The failed writer must not leave temp files behind
				// (except after the rename, when there is nothing to
				// leave).
				entries, derr := os.ReadDir(dir)
				if derr != nil {
					t.Fatalf("ReadDir: %v", derr)
				}
				if len(entries) != 1 {
					names := make([]string, len(entries))
					for i, e := range entries {
						names[i] = e.Name()
					}
					t.Errorf("crash at %s hit %d left extra files: %v", site, n, names)
				}
			})
		}
	}
}

// TestChaosReadFault pins the loader-side site: an injected read fault
// surfaces as ErrInjected without touching the file.
func TestChaosReadFault(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.snap")
	if err := snapshot.Write(path, versionedDB(1)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	in := guard.NewInjector(3).FailNth(guard.SiteSnapshotRead, 1)
	restore := guard.Activate(in)
	_, err := snapshot.Read(path, db.BackendColumnar)
	restore()
	if !errors.Is(err, guard.ErrInjected) {
		t.Fatalf("Read under injected fault: %v, want ErrInjected", err)
	}
	if _, err := snapshot.Read(path, db.BackendColumnar); err != nil {
		t.Fatalf("Read after restore: %v", err)
	}
}

// typedSnapshotError reports whether err wraps one of the loader's
// sentinels — the only failures a mangled file is allowed to produce.
func typedSnapshotError(err error) bool {
	for _, sentinel := range []error{
		snapshot.ErrBadMagic, snapshot.ErrVersion, snapshot.ErrTruncated,
		snapshot.ErrChecksum, snapshot.ErrFormat,
	} {
		if errors.Is(err, sentinel) {
			return true
		}
	}
	return false
}

// TestChaosTornWriteSweep decodes every truncation prefix of a real
// snapshot: each one must fail with a typed error — a torn write must
// never pass for a snapshot, whatever byte it tore at.
func TestChaosTornWriteSweep(t *testing.T) {
	data, err := snapshot.Encode(versionedDB(1))
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	for n := 0; n < len(data); n++ {
		d, err := snapshot.Decode(data[:n], db.BackendColumnar)
		if err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded successfully", n, len(data))
		}
		if d != nil {
			t.Fatalf("truncation to %d bytes returned a database alongside the error", n)
		}
		if !typedSnapshotError(err) {
			t.Fatalf("truncation to %d bytes failed with untyped error: %v", n, err)
		}
	}
}

// TestChaosBitRotSweep flips every byte of a real snapshot in turn: each
// mutation must fail with a typed error, never load silently.
func TestChaosBitRotSweep(t *testing.T) {
	data, err := snapshot.Encode(versionedDB(1))
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	mut := make([]byte, len(data))
	for i := 0; i < len(data); i++ {
		copy(mut, data)
		mut[i] ^= 0x01
		d, err := snapshot.Decode(mut, db.BackendColumnar)
		if err == nil {
			t.Fatalf("bit flip at offset %d decoded successfully", i)
		}
		if d != nil {
			t.Fatalf("bit flip at offset %d returned a database alongside the error", i)
		}
		if !typedSnapshotError(err) {
			t.Fatalf("bit flip at offset %d failed with untyped error: %v", i, err)
		}
	}
}
