// Package snapshot persists a sealed db.Database as a versioned,
// checksummed binary file and loads it back without reparsing text.
//
// The format (all integers big-endian uint32, CRC32-IEEE checksums):
//
//	header:   magic "WDPTSNAP" | format version | relation count
//	dict:     term count | (length, bytes) per term, sorted | section CRC
//	relation: name length | name | arity | row count
//	          | columns (arity × row count IDs, column-major) | section CRC
//	          ... one section per relation, sorted by name ...
//	footer:   end magic "WSNAPEND" | whole-file CRC over all prior bytes
//
// The footer is written last, so a torn write is detectable as a missing
// end magic; every section additionally carries its own CRC so localized
// bit rot is attributed to the section it hit. The loader validates
// everything — magic, version, footer, checksums, counts against available
// bytes, term ordering, ID ranges, duplicate rows — and fails with a typed,
// errors.Is-able taxonomy (ErrBadMagic, ErrVersion, ErrTruncated,
// ErrChecksum, ErrFormat). It never panics and never returns a database
// built from data that failed any check.
//
// Durability is Write's job: temp file in the target directory, chunked
// writes, fsync, atomic rename, directory fsync — see atomic.go. All file
// I/O passes through guard fault-injection sites (snapshot.write,
// snapshot.fsync, snapshot.rename, snapshot.read) so the chaos suite can
// kill the writer at every step and assert recovery.
package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"

	"wdpt/internal/db"
	"wdpt/internal/guard"
)

// FormatVersion is the snapshot format this package writes and the only
// version it reads. Any layout change — field widths, section order,
// checksum algorithm — must bump it; a reader seeing an unknown version
// refuses with ErrVersion rather than guessing.
const FormatVersion = 1

const (
	magic    = "WDPTSNAP"
	endMagic = "WSNAPEND"
	// headerSize is magic + version + relation count.
	headerSize = len(magic) + 4 + 4
	// footerSize is end magic + whole-file CRC.
	footerSize = len(endMagic) + 4
)

// The loader's error taxonomy. Every load failure wraps exactly one of
// these sentinels, so callers dispatch with errors.Is instead of string
// matching.
var (
	// ErrBadMagic: the file does not start with the snapshot magic — not a
	// snapshot at all.
	ErrBadMagic = errors.New("bad magic")
	// ErrVersion: the file is a snapshot, but of a format version this
	// reader does not understand.
	ErrVersion = errors.New("unsupported format version")
	// ErrTruncated: the file ends before its declared content does — a torn
	// write, a partial copy, or a length field claiming more bytes than
	// exist.
	ErrTruncated = errors.New("truncated")
	// ErrChecksum: a section or whole-file CRC does not match — bit rot or
	// a corrupted write.
	ErrChecksum = errors.New("checksum mismatch")
	// ErrFormat: the bytes are intact but semantically invalid — unsorted
	// terms, out-of-range IDs, duplicate rows or relation names, zero
	// arity, trailing garbage.
	ErrFormat = errors.New("malformed payload")
)

// Encode serializes d into the snapshot format. The database must be
// sealed (Database.Seal): the format stores raw term IDs against the
// sorted dictionary, so an unsealed ID assignment would not round-trip
// canonically.
func Encode(d *db.Database) ([]byte, error) {
	if !d.Dict().Sorted() {
		return nil, fmt.Errorf("snapshot: database not sealed (dictionary not in sorted-term order)")
	}
	rels := d.Relations()
	terms := d.Dict().Terms()

	buf := make([]byte, 0, encodedSizeHint(terms, rels))
	buf = append(buf, magic...)
	buf = binary.BigEndian.AppendUint32(buf, FormatVersion)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(rels)))

	start := len(buf)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(terms)))
	for _, t := range terms {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(t)))
		buf = append(buf, t...)
	}
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:]))

	for _, r := range rels {
		start = len(buf)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(r.Name())))
		buf = append(buf, r.Name()...)
		buf = binary.BigEndian.AppendUint32(buf, uint32(r.Arity()))
		buf = binary.BigEndian.AppendUint32(buf, uint32(r.Len()))
		for _, col := range r.Columns() {
			for _, id := range col {
				buf = binary.BigEndian.AppendUint32(buf, id)
			}
		}
		buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:]))
	}

	fileCRC := crc32.ChecksumIEEE(buf)
	buf = append(buf, endMagic...)
	buf = binary.BigEndian.AppendUint32(buf, fileCRC)
	return buf, nil
}

func encodedSizeHint(terms []string, rels []*db.Relation) int {
	n := headerSize + footerSize + 8
	for _, t := range terms {
		n += 4 + len(t)
	}
	for _, r := range rels {
		n += 16 + len(r.Name()) + r.Arity()*r.Len()*4
	}
	return n
}

// Decode validates data as a snapshot and rebuilds the database on the
// given backend. Every failure wraps one of the package's typed sentinels;
// Decode never panics on any input, however mangled.
func Decode(data []byte, b db.Backend) (*db.Database, error) {
	if len(data) < len(magic) {
		if !bytes.HasPrefix([]byte(magic), data) {
			return nil, fmt.Errorf("snapshot: %w", ErrBadMagic)
		}
		return nil, fmt.Errorf("snapshot: %d bytes is shorter than the magic: %w", len(data), ErrTruncated)
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("snapshot: %w", ErrBadMagic)
	}
	if len(data) < headerSize {
		return nil, fmt.Errorf("snapshot: header cut short at %d bytes: %w", len(data), ErrTruncated)
	}
	version := binary.BigEndian.Uint32(data[len(magic):])
	if version != FormatVersion {
		return nil, fmt.Errorf("snapshot: version %d (reader understands %d): %w", version, FormatVersion, ErrVersion)
	}
	relCount := binary.BigEndian.Uint32(data[len(magic)+4:])

	if len(data) < headerSize+footerSize {
		return nil, fmt.Errorf("snapshot: no room for footer: %w", ErrTruncated)
	}
	end := len(data) - footerSize
	if string(data[end:end+len(endMagic)]) != endMagic {
		return nil, fmt.Errorf("snapshot: footer magic missing (torn write): %w", ErrTruncated)
	}
	fileCRC := binary.BigEndian.Uint32(data[end+len(endMagic):])
	if crc32.ChecksumIEEE(data[:end]) != fileCRC {
		return nil, fmt.Errorf("snapshot: whole-file CRC: %w", ErrChecksum)
	}

	r := &reader{buf: data[headerSize:end]}

	// Every declared count is held against the bytes actually present
	// before anything is allocated from it, so a fuzzed count of 2^31
	// cannot become a 8 GiB allocation.
	terms, err := r.dictSection()
	if err != nil {
		return nil, err
	}
	if uint64(relCount)*16 > uint64(r.remaining()) {
		return nil, fmt.Errorf("snapshot: %d relations declared but only %d bytes remain: %w", relCount, r.remaining(), ErrTruncated)
	}
	rels := make([]db.BulkRelation, 0, relCount)
	for i := uint32(0); i < relCount; i++ {
		br, err := r.relationSection(i)
		if err != nil {
			return nil, err
		}
		rels = append(rels, br)
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("snapshot: %d trailing bytes after last relation: %w", r.remaining(), ErrFormat)
	}

	d, err := db.NewFromColumns(b, terms, rels)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %v: %w", err, ErrFormat)
	}
	return d, nil
}

// Read loads the snapshot at path onto the given backend. The read is a
// fault-injection site (guard.SiteSnapshotRead). File-system errors are
// returned wrapped (so errors.Is(err, fs.ErrNotExist) still works);
// content errors carry the package's typed taxonomy.
func Read(path string, b db.Backend) (*db.Database, error) {
	if err := guard.FaultErr(guard.SiteSnapshotRead); err != nil {
		return nil, fmt.Errorf("snapshot: read %s: %w", path, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: read %s: %w", path, err)
	}
	d, err := Decode(data, b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// reader is a bounds-checked cursor over the snapshot body (between header
// and footer). All failures surface as typed errors, never panics.
type reader struct {
	buf []byte
	off int
}

func (r *reader) remaining() int { return len(r.buf) - r.off }

func (r *reader) u32(what string) (uint32, error) {
	if r.remaining() < 4 {
		return 0, fmt.Errorf("snapshot: %s cut short: %w", what, ErrTruncated)
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) bytes(n int, what string) ([]byte, error) {
	if r.remaining() < n {
		return nil, fmt.Errorf("snapshot: %s declares %d bytes but only %d remain: %w", what, n, r.remaining(), ErrTruncated)
	}
	out := r.buf[r.off : r.off+n]
	r.off += n
	return out, nil
}

// checkCRC reads the section CRC and holds it against the section's bytes
// starting at start (a prior r.off).
func (r *reader) checkCRC(start int, what string) error {
	sum := crc32.ChecksumIEEE(r.buf[start:r.off])
	stored, err := r.u32(what + " CRC")
	if err != nil {
		return err
	}
	if sum != stored {
		return fmt.Errorf("snapshot: %s CRC: %w", what, ErrChecksum)
	}
	return nil
}

func (r *reader) dictSection() ([]string, error) {
	start := r.off
	termCount, err := r.u32("term count")
	if err != nil {
		return nil, err
	}
	if uint64(termCount)*4 > uint64(r.remaining()) {
		return nil, fmt.Errorf("snapshot: %d terms declared but only %d bytes remain: %w", termCount, r.remaining(), ErrTruncated)
	}
	terms := make([]string, 0, termCount)
	for i := uint32(0); i < termCount; i++ {
		l, err := r.u32("term length")
		if err != nil {
			return nil, err
		}
		raw, err := r.bytes(int(l), "term")
		if err != nil {
			return nil, err
		}
		terms = append(terms, string(raw))
	}
	if err := r.checkCRC(start, "dictionary section"); err != nil {
		return nil, err
	}
	return terms, nil
}

func (r *reader) relationSection(i uint32) (db.BulkRelation, error) {
	var br db.BulkRelation
	start := r.off
	what := fmt.Sprintf("relation %d", i)
	nameLen, err := r.u32(what + " name length")
	if err != nil {
		return br, err
	}
	name, err := r.bytes(int(nameLen), what+" name")
	if err != nil {
		return br, err
	}
	arity, err := r.u32(what + " arity")
	if err != nil {
		return br, err
	}
	rows, err := r.u32(what + " row count")
	if err != nil {
		return br, err
	}
	if arity == 0 {
		return br, fmt.Errorf("snapshot: relation %q has arity 0: %w", name, ErrFormat)
	}
	if uint64(arity)*uint64(rows)*4 > uint64(r.remaining()) {
		return br, fmt.Errorf("snapshot: relation %q declares %d×%d IDs but only %d bytes remain: %w", name, arity, rows, r.remaining(), ErrTruncated)
	}
	cols := make([][]uint32, arity)
	for pos := range cols {
		raw, err := r.bytes(int(rows)*4, what+" column")
		if err != nil {
			return br, err
		}
		col := make([]uint32, rows)
		for j := range col {
			col[j] = binary.BigEndian.Uint32(raw[j*4:])
		}
		cols[pos] = col
	}
	if err := r.checkCRC(start, fmt.Sprintf("relation %q section", name)); err != nil {
		return br, err
	}
	return db.BulkRelation{Name: string(name), Rows: int(rows), Cols: cols}, nil
}
