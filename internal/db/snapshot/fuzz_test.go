package snapshot_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"wdpt/internal/db"
	"wdpt/internal/db/snapshot"
)

// seedInputs are the fuzz corpus starting points: a valid snapshot, the
// interesting truncations and mutations of it, crafted semantic
// violations, and plain garbage. The same set is committed under
// testdata/fuzz/FuzzSnapshotLoader (regenerate with
// WDPT_WRITE_CORPUS=1 go test -run TestWriteSeedCorpus ./internal/db/snapshot).
func seedInputs(t testing.TB) map[string][]byte {
	valid := rawSnapshot(1, []string{"alpha", "beta", "gamma"}, []rawRel{
		{name: "edge", arity: 2, rows: 2, ids: []uint32{0, 1, 1, 2}},
		{name: "label", arity: 1, rows: 1, ids: []uint32{2}},
	})
	if _, err := snapshot.Decode(valid, db.BackendColumnar); err != nil {
		t.Fatalf("seed snapshot does not decode: %v", err)
	}
	flip := func(off int) []byte {
		out := append([]byte(nil), valid...)
		out[off] ^= 0x20
		return out
	}
	return map[string][]byte{
		"seed-valid":           valid,
		"seed-empty":           {},
		"seed-garbage":         []byte("this is not a snapshot at all, just text"),
		"seed-magic-only":      []byte("WDPTSNAP"),
		"seed-header-only":     valid[:16],
		"seed-torn-mid":        valid[:len(valid)/2],
		"seed-no-footer":       valid[:len(valid)-12],
		"seed-flip-version":    flip(9),
		"seed-flip-dict":       flip(20),
		"seed-flip-payload":    flip(len(valid) / 2),
		"seed-flip-footer-crc": flip(len(valid) - 1),
		"seed-unsorted-terms":  rawSnapshot(1, []string{"b", "a"}, nil),
		"seed-bad-id":          rawSnapshot(1, []string{"a"}, []rawRel{{name: "r", arity: 1, rows: 1, ids: []uint32{9}}}),
		"seed-dup-rows":        rawSnapshot(1, []string{"a"}, []rawRel{{name: "r", arity: 1, rows: 2, ids: []uint32{0, 0}}}),
		"seed-future-version":  rawSnapshot(99, []string{"a"}, nil),
		"seed-empty-db":        rawSnapshot(1, nil, nil),
	}
}

// FuzzSnapshotLoader feeds the loader arbitrary bytes: it must only ever
// fail with the typed taxonomy — never panic, never return a database
// together with an error — and anything it does accept must re-encode and
// re-decode to the same database (no silently misloaded data).
func FuzzSnapshotLoader(f *testing.F) {
	for _, seed := range seedInputs(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := snapshot.Decode(data, db.BackendColumnar)
		if err != nil {
			if d != nil {
				t.Fatalf("Decode returned a database alongside error %v", err)
			}
			if !typedSnapshotError(err) {
				t.Fatalf("Decode failed with untyped error: %v", err)
			}
			return
		}
		out, err := snapshot.Encode(d)
		if err != nil {
			t.Fatalf("accepted input re-encodes with error: %v", err)
		}
		d2, err := snapshot.Decode(out, db.BackendColumnar)
		if err != nil {
			t.Fatalf("re-encoded accepted input fails to decode: %v", err)
		}
		if d.String() != d2.String() {
			t.Fatalf("accepted input does not round-trip:\nfirst:\n%s\nsecond:\n%s", d.String(), d2.String())
		}
	})
}

// TestWriteSeedCorpus materializes the seed inputs into the committed
// corpus directory when WDPT_WRITE_CORPUS=1 is set; otherwise it verifies
// the committed corpus is present and in sync with seedInputs.
func TestWriteSeedCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzSnapshotLoader")
	if os.Getenv("WDPT_WRITE_CORPUS") == "1" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatalf("MkdirAll: %v", err)
		}
		for name, data := range seedInputs(t) {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
			if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
				t.Fatalf("WriteFile %s: %v", name, err)
			}
		}
		return
	}
	for name, data := range seedInputs(t) {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("committed corpus entry missing (regenerate with WDPT_WRITE_CORPUS=1): %v", err)
		}
		want := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if string(raw) != want {
			t.Errorf("corpus entry %s out of sync with seedInputs; regenerate with WDPT_WRITE_CORPUS=1", name)
		}
	}
}
