package snapshot

import (
	"fmt"
	"os"
	"path/filepath"

	"wdpt/internal/db"
	"wdpt/internal/guard"
)

// writeChunk is the unit of payload writing. Each chunk boundary is a
// fault-injection point (guard.SiteSnapshotWrite), so the chaos suite can
// tear the write at any 64 KiB offset, not just before the first byte.
const writeChunk = 64 << 10

// Write encodes d (which must be sealed — see Encode) and durably
// publishes it at path: the bytes go to a temp file in path's directory,
// are fsynced, atomically renamed over path, and the directory entry is
// fsynced last. A crash or injected fault at any step leaves either the
// previous file intact or the new file fully published — never a torn
// target. On failure the temp file is removed and the previous file, if
// any, is untouched.
func Write(path string, d *db.Database) error {
	data, err := Encode(d)
	if err != nil {
		return err
	}
	return writeFileAtomic(path, data)
}

// writeFileAtomic is the single sanctioned durable-write helper under
// internal/db — wdptlint R16 flags direct os.Create/os.WriteFile/os.Rename
// anywhere else in the subtree, because a plain write tears under crash
// and quietly serves half a file to the next load.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-")
	if err != nil {
		return fmt.Errorf("snapshot: create temp in %s: %w", dir, err)
	}
	tmp := f.Name()
	if err := writeAndSync(f, data); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("snapshot: write %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("snapshot: close %s: %w", tmp, err)
	}
	if err := guard.FaultErr(guard.SiteSnapshotRename); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("snapshot: rename %s over %s: %w", tmp, path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("snapshot: rename %s over %s: %w", tmp, path, err)
	}
	if err := syncDir(dir); err != nil {
		// The rename already happened, so the new file is visible (and
		// intact); only the directory entry's durability across power loss
		// is in doubt. Report it and let the caller decide — retrying the
		// whole write is safe.
		return fmt.Errorf("snapshot: sync directory %s: %w", dir, err)
	}
	return nil
}

func writeAndSync(f *os.File, data []byte) error {
	for off := 0; off < len(data); off += writeChunk {
		end := off + writeChunk
		if end > len(data) {
			end = len(data)
		}
		if err := guard.FaultErr(guard.SiteSnapshotWrite); err != nil {
			return err
		}
		if _, err := f.Write(data[off:end]); err != nil {
			return err
		}
	}
	if err := guard.FaultErr(guard.SiteSnapshotFsync); err != nil {
		return err
	}
	return f.Sync()
}

func syncDir(dir string) error {
	if err := guard.FaultErr(guard.SiteSnapshotFsync); err != nil {
		return err
	}
	df, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := df.Sync(); err != nil {
		_ = df.Close()
		return err
	}
	return df.Close()
}
