// Package db implements the relational database substrate over which
// conjunctive queries and well-designed pattern trees are evaluated.
//
// A Database is a finite set of ground relational atoms (Definition in
// Section 2 of Barceló & Pichler, PODS 2015). Relations store tuples of
// string constants and maintain lazy per-position hash indexes so that
// homomorphism search can enumerate only the tuples matching the already
// bound positions of an atom.
package db

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"wdpt/internal/guard"
)

// Tuple is a single database row: a sequence of constants.
type Tuple []string

// Equal reports whether t and u have the same length and components.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// key renders the tuple as a canonical string used for set membership.
func (t Tuple) key() string {
	return strings.Join(t, "\x00")
}

// String renders the tuple as "(a, b, c)".
func (t Tuple) String() string {
	return "(" + strings.Join(t, ", ") + ")"
}

// Relation is a named relation instance: a set of tuples of fixed arity.
//
// Concurrency: read operations (Contains, Matching, Tuples, Len) are safe
// to call concurrently with each other — the lazy index is published
// through an atomic pointer, so concurrent readers either share one built
// index or build equivalent private copies and race benignly to publish
// one. Insert is NOT safe to call concurrently with reads or other
// inserts; loading and evaluation are distinct phases.
type Relation struct {
	name   string
	arity  int
	tuples []Tuple
	seen   map[string]bool
	// index holds the lazily built per-position value index, published
	// atomically so concurrent readers can share it (copy-on-read: Insert
	// drops the whole index and the next reader rebuilds it from the
	// then-current tuples).
	index atomic.Pointer[relIndex]
}

// relIndex is an immutable snapshot index over a relation's tuples:
// byPos[pos][value] lists the offsets into tuples whose component at
// position pos equals value. Once published it is never mutated.
type relIndex struct {
	byPos []map[string][]int
}

// NewRelation creates an empty relation with the given name and arity.
// Arity must be positive.
func NewRelation(name string, arity int) *Relation {
	if arity <= 0 {
		//lint:ignore R2 documented contract: arity misuse is a programming error, like a bad make() cap
		panic(fmt.Sprintf("db: relation %q must have positive arity, got %d", name, arity))
	}
	return &Relation{
		name:  name,
		arity: arity,
		seen:  make(map[string]bool),
	}
}

// Name returns the relation symbol.
func (r *Relation) Name() string { return r.name }

// Arity returns the number of columns.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of (distinct) tuples stored.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuples returns the stored tuples. The returned slice must not be modified.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// Insert adds a tuple, ignoring exact duplicates. It reports whether the
// tuple was new. Inserting invalidates indexes, which are rebuilt on demand.
func (r *Relation) Insert(t Tuple) bool {
	if len(t) != r.arity {
		//lint:ignore R2 documented contract: arity misuse is a programming error, like a bad index
		panic(fmt.Sprintf("db: tuple %v has arity %d, relation %q expects %d", t, len(t), r.name, r.arity))
	}
	k := t.key()
	if r.seen[k] {
		return false
	}
	r.seen[k] = true
	cp := make(Tuple, len(t))
	copy(cp, t)
	r.tuples = append(r.tuples, cp)
	r.index.Store(nil)
	return true
}

// Contains reports whether the relation holds the given tuple.
func (r *Relation) Contains(t Tuple) bool {
	if len(t) != r.arity {
		return false
	}
	return r.seen[t.key()]
}

// ensureIndex returns the current index, building and publishing it on
// first use. Concurrent readers may build duplicate indexes; the
// CompareAndSwap makes one canonical and the losers use their private
// (equivalent) copy, so the result is correct either way.
func (r *Relation) ensureIndex() *relIndex {
	if ix := r.index.Load(); ix != nil {
		return ix
	}
	ix := &relIndex{byPos: make([]map[string][]int, r.arity)}
	for pos := 0; pos < r.arity; pos++ {
		m := make(map[string][]int)
		for i, t := range r.tuples {
			m[t[pos]] = append(m[t[pos]], i)
		}
		ix.byPos[pos] = m
	}
	if r.index.CompareAndSwap(nil, ix) {
		return ix
	}
	if cur := r.index.Load(); cur != nil {
		return cur
	}
	return ix
}

// Matching returns the offsets of tuples whose component at position pos
// equals value. The returned slice must not be modified. Safe for
// concurrent use with other read operations. The call is a registered
// fault-injection site (guard.SiteDBMatching): it sits under every
// backtracking homomorphism step, so chaos tests can fail the innermost
// data access.
func (r *Relation) Matching(pos int, value string) []int {
	guard.Fault(guard.SiteDBMatching)
	return r.ensureIndex().byPos[pos][value]
}

// Database is a finite set of ground relational atoms grouped by relation
// symbol. The zero value is not usable; construct with New.
//
// Concurrency: like Relation, read operations (Contains, Relation,
// ActiveDomain, ...) are safe to call concurrently with each other; Insert
// and Merge are not safe concurrently with anything.
type Database struct {
	rels map[string]*Relation
	// adom caches the sorted active domain, published atomically so
	// concurrent readers can share it; Insert invalidates it.
	adom atomic.Pointer[[]string]
}

// New creates an empty database.
func New() *Database {
	return &Database{rels: make(map[string]*Relation)}
}

// Relation returns the relation with the given name, or nil if the database
// holds no tuple for it.
func (d *Database) Relation(name string) *Relation {
	return d.rels[name]
}

// Relations returns all relation instances sorted by name.
func (d *Database) Relations() []*Relation {
	names := make([]string, 0, len(d.rels))
	for n := range d.rels {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Relation, len(names))
	for i, n := range names {
		out[i] = d.rels[n]
	}
	return out
}

// Insert adds the ground atom rel(t...) to the database, creating the
// relation on first use. It panics if the relation exists with a different
// arity, since a schema mismatch is a programming error.
func (d *Database) Insert(rel string, t ...string) bool {
	r := d.rels[rel]
	if r == nil {
		r = NewRelation(rel, len(t))
		d.rels[rel] = r
	}
	d.adom.Store(nil)
	return r.Insert(Tuple(t))
}

// Contains reports whether the ground atom rel(t...) is in the database.
func (d *Database) Contains(rel string, t ...string) bool {
	r := d.rels[rel]
	if r == nil {
		return false
	}
	return r.Contains(Tuple(t))
}

// Size returns the total number of tuples across all relations.
func (d *Database) Size() int {
	n := 0
	for _, r := range d.rels {
		n += r.Len()
	}
	return n
}

// ActiveDomain returns the sorted set of constants occurring in some tuple.
// The returned slice must not be modified. Safe for concurrent use with
// other read operations.
func (d *Database) ActiveDomain() []string {
	if cached := d.adom.Load(); cached != nil {
		return *cached
	}
	set := make(map[string]bool)
	for _, r := range d.rels {
		for _, t := range r.tuples {
			for _, c := range t {
				set[c] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	d.adom.CompareAndSwap(nil, &out)
	if cached := d.adom.Load(); cached != nil {
		return *cached
	}
	return out
}

// Clone returns a deep copy of the database.
func (d *Database) Clone() *Database {
	out := New()
	for name, r := range d.rels {
		for _, t := range r.tuples {
			out.Insert(name, t...)
		}
	}
	return out
}

// Merge inserts every tuple of other into d.
func (d *Database) Merge(other *Database) {
	for name, r := range other.rels {
		for _, t := range r.tuples {
			d.Insert(name, t...)
		}
	}
}

// String renders the database as sorted "rel(a, b)" lines, one per tuple.
func (d *Database) String() string {
	var lines []string
	for name, r := range d.rels {
		for _, t := range r.tuples {
			lines = append(lines, name+t.String())
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TripleStore is a convenience view of a database over the single ternary
// relation used by RDF WDPTs (Section 2, "RDF well-designed pattern trees").
type TripleStore struct {
	*Database
	rel string
}

// NewTripleStore creates an RDF-style database whose triples live in the
// relation named rel (conventionally "triple").
func NewTripleStore(rel string) *TripleStore {
	return &TripleStore{Database: New(), rel: rel}
}

// RelName returns the name of the ternary relation holding the triples.
func (ts *TripleStore) RelName() string { return ts.rel }

// Add inserts the triple (s, p, o).
func (ts *TripleStore) Add(s, p, o string) bool {
	return ts.Insert(ts.rel, s, p, o)
}

// Has reports whether the triple (s, p, o) is present.
func (ts *TripleStore) Has(s, p, o string) bool {
	return ts.Contains(ts.rel, s, p, o)
}
