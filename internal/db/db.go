// Package db implements the relational database substrate over which
// conjunctive queries and well-designed pattern trees are evaluated.
//
// A Database is a finite set of ground relational atoms (Definition in
// Section 2 of Barceló & Pichler, PODS 2015). Constants are interned into a
// database-wide Dict of dense uint32 term IDs, and each Relation holds its
// rows in a Store — by default the columnar backend (per-column []uint32
// vectors with permuted sorted indexes), with the legacy string-map layout
// available as BackendMemory for equivalence testing. Evaluation code works
// on term IDs end-to-end (At, Scan, MatchingIDs, ContainsIDs) and
// translates back to strings only at the reporting boundary; the
// string-facing accessors remain as deprecated adapters. See
// docs/STORAGE.md for the storage layout and backend contract.
package db

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"wdpt/internal/guard"
)

// Tuple is a single database row: a sequence of constants.
type Tuple []string

// Equal reports whether t and u have the same length and components.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// key renders the tuple as a canonical byte string used for set
// membership. Each component is length-prefixed (4 bytes big-endian), so
// distinct tuples always render to distinct keys even when components
// contain separator bytes — the historical "\x00"-join encoding collided
// ("a\x00b","c") with ("a","b\x00c") and silently dropped tuples.
func (t Tuple) key() string {
	n := 0
	for _, c := range t {
		n += 4 + len(c)
	}
	b := make([]byte, 0, n)
	for _, c := range t {
		b = binary.BigEndian.AppendUint32(b, uint32(len(c)))
		b = append(b, c...)
	}
	return string(b)
}

// String renders the tuple as "(a, b, c)".
func (t Tuple) String() string {
	return "(" + strings.Join(t, ", ") + ")"
}

// Relation is a named relation instance: a set of tuples of fixed arity,
// dictionary-encoded over a Dict and stored in a Store.
//
// Concurrency: read operations (Contains, Matching, MatchingIDs, Scan, At,
// Tuples, Len) are safe to call concurrently with each other — lazy
// indexes are published through atomic pointers, so concurrent readers
// either share one built index or build equivalent private copies and race
// benignly to publish one. Insert is NOT safe to call concurrently with
// reads or other inserts; loading and evaluation are distinct phases.
type Relation struct {
	name  string
	arity int
	dict  *Dict
	store Store
	// at caches the store's optional fast random-access extension so the
	// hot-path At avoids a per-call interface type assertion; nil when the
	// store does not implement atter.
	at atter
	// legacy caches the materialized string tuples for the deprecated
	// Tuples accessor, published atomically; Insert invalidates it.
	legacy atomic.Pointer[[]Tuple]
}

// NewRelation creates an empty standalone relation with the given name and
// arity, backed by a private dictionary and the default columnar store.
// Relations inside a Database share the database dictionary instead; use
// Database.Insert to create those. Arity must be positive.
func NewRelation(name string, arity int) *Relation {
	return newRelation(name, arity, NewDict(), BackendColumnar)
}

func newRelation(name string, arity int, dict *Dict, b Backend) *Relation {
	if arity <= 0 {
		//lint:ignore R2 documented contract: arity misuse is a programming error, like a bad make() cap
		panic(fmt.Sprintf("db: relation %q must have positive arity, got %d", name, arity))
	}
	st := newStore(b, dict, arity)
	at, _ := st.(atter)
	return &Relation{
		name:  name,
		arity: arity,
		dict:  dict,
		store: st,
		at:    at,
	}
}

// Name returns the relation symbol.
func (r *Relation) Name() string { return r.name }

// Arity returns the number of columns.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of (distinct) tuples stored.
func (r *Relation) Len() int { return r.store.Len() }

// Dict returns the dictionary that encodes this relation's constants. For
// relations inside a Database it is the shared database dictionary.
func (r *Relation) Dict() *Dict { return r.dict }

// Store returns the underlying storage. The returned Store must only be
// used for reads.
func (r *Relation) Store() Store { return r.store }

// Tuples returns the stored tuples as strings, materializing them from the
// dictionary on first use. The returned slice must not be modified.
//
// Deprecated: evaluation code should iterate rows by ID via Scan/At and
// translate with Dict().Term at the reporting boundary.
func (r *Relation) Tuples() []Tuple {
	if cached := r.legacy.Load(); cached != nil {
		return *cached
	}
	var out []Tuple
	if st, ok := r.store.(interface{ stringTuples() []Tuple }); ok {
		out = st.stringTuples()
	} else {
		n := r.store.Len()
		out = make([]Tuple, n)
		for i := 0; i < n; i++ {
			row := r.store.Scan(i)
			t := make(Tuple, len(row))
			for pos, id := range row {
				t[pos] = r.dict.Term(id)
			}
			out[i] = t
		}
	}
	r.legacy.CompareAndSwap(nil, &out)
	if cached := r.legacy.Load(); cached != nil {
		return *cached
	}
	return out
}

// Insert adds a tuple, interning its constants, ignoring exact duplicates.
// It reports whether the tuple was new. Inserting invalidates indexes,
// which are rebuilt on demand.
func (r *Relation) Insert(t Tuple) bool {
	if len(t) != r.arity {
		//lint:ignore R2 documented contract: arity misuse is a programming error, like a bad index
		panic(fmt.Sprintf("db: tuple %v has arity %d, relation %q expects %d", t, len(t), r.name, r.arity))
	}
	var stack [8]uint32
	row := stack[:0]
	for _, c := range t {
		row = append(row, r.dict.Intern(c))
	}
	if !r.store.Insert(row) {
		return false
	}
	r.legacy.Store(nil)
	return true
}

// Contains reports whether the relation holds the given tuple.
func (r *Relation) Contains(t Tuple) bool {
	if len(t) != r.arity {
		return false
	}
	var stack [8]uint32
	row := stack[:0]
	for _, c := range t {
		id, ok := r.dict.ID(c)
		if !ok {
			return false
		}
		row = append(row, id)
	}
	return r.store.Contains(row)
}

// ContainsIDs reports whether the relation holds the given row of term
// IDs. Rows containing NoID are never present.
func (r *Relation) ContainsIDs(row []uint32) bool {
	if len(row) != r.arity {
		return false
	}
	limit := uint32(r.dict.Len())
	for _, id := range row {
		if id >= limit {
			return false
		}
	}
	return r.store.Contains(row)
}

// Scan returns row i (0 ≤ i < Len) as term IDs, in insertion order. The
// returned slice must not be modified.
func (r *Relation) Scan(i int) []uint32 { return r.store.Scan(i) }

// At returns row i's component at position pos as a term ID without
// materializing the row.
func (r *Relation) At(i, pos int) uint32 {
	if r.at != nil {
		return r.at.At(i, pos)
	}
	return r.store.Scan(i)[pos]
}

// Columns returns the relation's rows in column-major form: out[pos][i] is
// row i's term ID at position pos. The columnar backend returns its live
// column vectors; other backends materialize a copy. Either way the result
// must not be modified. This is the export half of the snapshot path —
// BulkRelation/NewFromColumns is the matching load.
func (r *Relation) Columns() [][]uint32 {
	if cs, ok := r.store.(interface{ columns() [][]uint32 }); ok {
		return cs.columns()
	}
	n := r.store.Len()
	out := make([][]uint32, r.arity)
	for pos := range out {
		out[pos] = make([]uint32, n)
	}
	for i := 0; i < n; i++ {
		for pos, id := range r.store.Scan(i) {
			out[pos][i] = id
		}
	}
	return out
}

// MatchingIDs returns the offsets, in insertion order, of rows whose
// component at position pos equals id; id == NoID (an unknown constant)
// matches nothing. The returned slice must not be modified. Safe for
// concurrent use with other read operations. The call is a registered
// fault-injection site (guard.SiteDBMatching): it sits under every
// backtracking homomorphism step, so chaos tests can fail the innermost
// data access.
func (r *Relation) MatchingIDs(pos int, id uint32) []int {
	guard.Fault(guard.SiteDBMatching)
	if id >= uint32(r.dict.Len()) {
		return nil
	}
	return r.store.MatchingIDs(pos, id)
}

// Matching returns the offsets of tuples whose component at position pos
// equals value. The returned slice must not be modified. Safe for
// concurrent use with other read operations. Like MatchingIDs, the call is
// a registered fault-injection site (guard.SiteDBMatching).
//
// Deprecated: evaluation code should resolve the constant once with
// Dict().ID and probe by term ID via MatchingIDs.
func (r *Relation) Matching(pos int, value string) []int {
	guard.Fault(guard.SiteDBMatching)
	id, ok := r.dict.ID(value)
	if !ok {
		return nil
	}
	return r.store.MatchingIDs(pos, id)
}

// Database is a finite set of ground relational atoms grouped by relation
// symbol, sharing one term dictionary. The zero value is not usable;
// construct with New or NewWithBackend.
//
// Concurrency: like Relation, read operations (Contains, Relation,
// ActiveDomain, ...) are safe to call concurrently with each other;
// Insert, Merge, and Seal are not safe concurrently with anything.
type Database struct {
	rels    map[string]*Relation
	dict    *Dict
	backend Backend
	// adom caches the sorted active domain, published atomically so
	// concurrent readers can share it; Insert invalidates it.
	adom atomic.Pointer[[]string]
}

// New creates an empty database on the process default backend (columnar
// unless a CLI's -store flag selected the legacy memory layout through
// SetDefaultBackend).
func New() *Database { return NewWithBackend(DefaultBackend()) }

// NewWithBackend creates an empty database whose relations use the given
// storage backend.
func NewWithBackend(b Backend) *Database {
	return &Database{rels: make(map[string]*Relation), dict: NewDict(), backend: b}
}

// Dict returns the database-wide term dictionary.
func (d *Database) Dict() *Dict { return d.dict }

// Backend returns the storage backend used by this database's relations.
func (d *Database) Backend() Backend { return d.backend }

// Seal canonicalizes the dictionary — IDs are reassigned in sorted-term
// order, so comparing IDs orders the same way as comparing strings and two
// databases with the same facts encode identically — and renumbers every
// relation accordingly. Loaders call it once after the load phase; sealing
// is idempotent and inserting afterwards is allowed (new constants then
// take IDs past the sorted prefix until the next Seal).
func (d *Database) Seal() {
	remap := d.dict.canonicalize()
	if remap == nil {
		return
	}
	for _, r := range d.rels {
		if rm, ok := r.store.(remapper); ok {
			rm.remap(remap)
		}
		r.legacy.Store(nil)
	}
	d.adom.Store(nil)
}

// Relation returns the relation with the given name, or nil if the database
// holds no tuple for it.
func (d *Database) Relation(name string) *Relation {
	return d.rels[name]
}

// Relations returns all relation instances sorted by name.
func (d *Database) Relations() []*Relation {
	names := make([]string, 0, len(d.rels))
	for n := range d.rels {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Relation, len(names))
	for i, n := range names {
		out[i] = d.rels[n]
	}
	return out
}

// Insert adds the ground atom rel(t...) to the database, creating the
// relation on first use. It panics if the relation exists with a different
// arity, since a schema mismatch is a programming error.
func (d *Database) Insert(rel string, t ...string) bool {
	r := d.rels[rel]
	if r == nil {
		r = newRelation(rel, len(t), d.dict, d.backend)
		d.rels[rel] = r
	}
	d.adom.Store(nil)
	return r.Insert(Tuple(t))
}

// Contains reports whether the ground atom rel(t...) is in the database.
func (d *Database) Contains(rel string, t ...string) bool {
	r := d.rels[rel]
	if r == nil {
		return false
	}
	return r.Contains(Tuple(t))
}

// Size returns the total number of tuples across all relations.
func (d *Database) Size() int {
	n := 0
	for _, r := range d.rels {
		n += r.Len()
	}
	return n
}

// ActiveDomain returns the sorted set of constants occurring in some tuple
// — exactly the interned terms, since only Insert interns. The returned
// slice must not be modified. Safe for concurrent use with other read
// operations.
//
// Deprecated: evaluation code should work on term IDs via Dict; after
// Seal, ID order coincides with the sorted string order returned here.
func (d *Database) ActiveDomain() []string {
	if cached := d.adom.Load(); cached != nil {
		return *cached
	}
	terms := d.dict.Terms()
	out := make([]string, len(terms))
	copy(out, terms)
	sort.Strings(out)
	d.adom.CompareAndSwap(nil, &out)
	if cached := d.adom.Load(); cached != nil {
		return *cached
	}
	return out
}

// Clone returns a deep copy of the database on the same backend.
func (d *Database) Clone() *Database {
	out := NewWithBackend(d.backend)
	for name, r := range d.rels {
		for _, t := range r.Tuples() {
			out.Insert(name, t...)
		}
	}
	return out
}

// CloneWithBackend returns a deep copy of the database stored on the given
// backend, sealed so both copies assign identical canonical term IDs. This
// is the backend-equivalence harness: evaluating the same query on d and on
// its clone must produce byte-identical answers.
func (d *Database) CloneWithBackend(b Backend) *Database {
	out := NewWithBackend(b)
	for name, r := range d.rels {
		for _, t := range r.Tuples() {
			out.Insert(name, t...)
		}
	}
	out.Seal()
	return out
}

// Merge inserts every tuple of other into d.
func (d *Database) Merge(other *Database) {
	for name, r := range other.rels {
		for _, t := range r.Tuples() {
			d.Insert(name, t...)
		}
	}
}

// String renders the database as sorted "rel(a, b)" lines, one per tuple.
func (d *Database) String() string {
	var lines []string
	for name, r := range d.rels {
		for _, t := range r.Tuples() {
			lines = append(lines, name+t.String())
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TripleStore is a convenience view of a database over the single ternary
// relation used by RDF WDPTs (Section 2, "RDF well-designed pattern trees").
type TripleStore struct {
	*Database
	rel string
}

// NewTripleStore creates an RDF-style database whose triples live in the
// relation named rel (conventionally "triple").
func NewTripleStore(rel string) *TripleStore {
	return &TripleStore{Database: New(), rel: rel}
}

// RelName returns the name of the ternary relation holding the triples.
func (ts *TripleStore) RelName() string { return ts.rel }

// Add inserts the triple (s, p, o).
func (ts *TripleStore) Add(s, p, o string) bool {
	return ts.Insert(ts.rel, s, p, o)
}

// Has reports whether the triple (s, p, o) is present.
func (ts *TripleStore) Has(s, p, o string) bool {
	return ts.Contains(ts.rel, s, p, o)
}
