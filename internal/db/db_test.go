package db

import (
	"math/rand"
	"strconv"
	"sync"
	"testing"
	"testing/quick"
)

func TestRelationInsertDedup(t *testing.T) {
	r := NewRelation("R", 2)
	if !r.Insert(Tuple{"a", "b"}) {
		t.Fatal("first insert should report new")
	}
	if r.Insert(Tuple{"a", "b"}) {
		t.Fatal("duplicate insert should report old")
	}
	if r.Len() != 1 {
		t.Fatalf("got %d tuples, want 1", r.Len())
	}
	if !r.Contains(Tuple{"a", "b"}) || r.Contains(Tuple{"b", "a"}) {
		t.Fatal("contains is wrong")
	}
}

func TestRelationArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("inserting wrong arity should panic")
		}
	}()
	r := NewRelation("R", 2)
	r.Insert(Tuple{"a"})
}

func TestZeroArityRelationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero arity should panic")
		}
	}()
	NewRelation("R", 0)
}

func TestMatchingIndex(t *testing.T) {
	r := NewRelation("E", 2)
	r.Insert(Tuple{"a", "b"})
	r.Insert(Tuple{"a", "c"})
	r.Insert(Tuple{"b", "c"})
	if got := len(r.Matching(0, "a")); got != 2 {
		t.Fatalf("Matching(0,a) = %d rows, want 2", got)
	}
	if got := len(r.Matching(1, "c")); got != 2 {
		t.Fatalf("Matching(1,c) = %d rows, want 2", got)
	}
	if got := len(r.Matching(0, "zzz")); got != 0 {
		t.Fatalf("Matching(0,zzz) = %d rows, want 0", got)
	}
	// Index must be rebuilt after inserts.
	r.Insert(Tuple{"a", "d"})
	if got := len(r.Matching(0, "a")); got != 3 {
		t.Fatalf("after insert Matching(0,a) = %d rows, want 3", got)
	}
}

func TestDatabaseBasics(t *testing.T) {
	d := New()
	d.Insert("E", "a", "b")
	d.Insert("E", "b", "c")
	d.Insert("V", "a")
	if d.Size() != 3 {
		t.Fatalf("Size = %d, want 3", d.Size())
	}
	if !d.Contains("E", "a", "b") {
		t.Fatal("missing E(a,b)")
	}
	if d.Contains("E", "c", "a") {
		t.Fatal("unexpected E(c,a)")
	}
	if d.Contains("X", "a") {
		t.Fatal("unknown relation should be empty")
	}
	adom := d.ActiveDomain()
	if len(adom) != 3 || adom[0] != "a" || adom[1] != "b" || adom[2] != "c" {
		t.Fatalf("ActiveDomain = %v, want [a b c]", adom)
	}
	rels := d.Relations()
	if len(rels) != 2 || rels[0].Name() != "E" || rels[1].Name() != "V" {
		t.Fatalf("Relations order wrong: %v", rels)
	}
}

func TestActiveDomainInvalidation(t *testing.T) {
	d := New()
	d.Insert("E", "a", "b")
	_ = d.ActiveDomain()
	d.Insert("E", "c", "d")
	if got := len(d.ActiveDomain()); got != 4 {
		t.Fatalf("ActiveDomain after insert = %d constants, want 4", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := New()
	d.Insert("E", "a", "b")
	c := d.Clone()
	c.Insert("E", "x", "y")
	if d.Size() != 1 || c.Size() != 2 {
		t.Fatalf("clone not independent: d=%d c=%d", d.Size(), c.Size())
	}
}

func TestMerge(t *testing.T) {
	d := New()
	d.Insert("E", "a", "b")
	e := New()
	e.Insert("E", "a", "b")
	e.Insert("F", "c")
	d.Merge(e)
	if d.Size() != 2 {
		t.Fatalf("Size after merge = %d, want 2", d.Size())
	}
}

func TestString(t *testing.T) {
	d := New()
	d.Insert("E", "b", "c")
	d.Insert("E", "a", "b")
	want := "E(a, b)\nE(b, c)"
	if got := d.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestTripleStore(t *testing.T) {
	ts := NewTripleStore("triple")
	ts.Add("s", "p", "o")
	if !ts.Has("s", "p", "o") || ts.Has("o", "p", "s") {
		t.Fatal("triple membership wrong")
	}
	if ts.RelName() != "triple" {
		t.Fatal("wrong relation name")
	}
	if r := ts.Relation("triple"); r == nil || r.Arity() != 3 {
		t.Fatal("underlying relation wrong")
	}
}

func TestTupleEqualAndString(t *testing.T) {
	a := Tuple{"x", "y"}
	if !a.Equal(Tuple{"x", "y"}) || a.Equal(Tuple{"x"}) || a.Equal(Tuple{"x", "z"}) {
		t.Fatal("Tuple.Equal wrong")
	}
	if a.String() != "(x, y)" {
		t.Fatalf("Tuple.String = %q", a.String())
	}
}

// Property: the per-position index agrees with a linear scan.
func TestIndexMatchesScan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewRelation("R", 3)
		consts := []string{"a", "b", "c", "d"}
		for i := 0; i < 40; i++ {
			r.Insert(Tuple{
				consts[rng.Intn(len(consts))],
				consts[rng.Intn(len(consts))],
				consts[rng.Intn(len(consts))],
			})
		}
		for pos := 0; pos < 3; pos++ {
			for _, c := range consts {
				want := 0
				for _, tp := range r.Tuples() {
					if tp[pos] == c {
						want++
					}
				}
				if got := len(r.Matching(pos, c)); got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentReaders is the -race regression test for the lazy caches:
// before the atomic-pointer publication, concurrent readers raced on
// building Relation.index and Database.adom (Insert set them nil; every
// reader rebuilt in place). Under `go test -race` this test fails on the
// old representation and passes on the copy-on-read one.
func TestConcurrentReaders(t *testing.T) {
	d := New()
	for i := 0; i < 200; i++ {
		d.Insert("E", tupleConst(i), tupleConst((i*7+1)%200))
		d.Insert("L", tupleConst(i))
	}
	r := d.Relation("E")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				v := tupleConst((g*13 + i) % 200)
				if len(r.Matching(0, v)) == 0 {
					t.Errorf("Matching(0, %s) empty", v)
				}
				if !d.Contains("L", v) {
					t.Errorf("Contains(L, %s) false", v)
				}
				if len(d.ActiveDomain()) != 200 {
					t.Errorf("ActiveDomain size changed")
				}
			}
		}(g)
	}
	wg.Wait()

	// Insert still invalidates: new tuples are visible to the next reader.
	d.Insert("E", "fresh", "fresh")
	if len(r.Matching(0, "fresh")) != 1 {
		t.Fatal("index not invalidated by Insert")
	}
	if got := len(d.ActiveDomain()); got != 201 {
		t.Fatalf("ActiveDomain = %d constants, want 201", got)
	}
}

func tupleConst(i int) string { return "c" + strconv.Itoa(i) }
