package db

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// Store is the narrow storage interface behind a Relation. All rows are
// dictionary-encoded: a row is a slice of term IDs of length Arity, and the
// Dict that assigned the IDs is owned by the enclosing Relation/Database.
//
// Concurrency contract (same as the legacy relation): read operations
// (Contains, Scan, MatchingIDs, Len, Arity) are safe to call concurrently
// with each other; Insert is not safe concurrently with anything.
type Store interface {
	// Insert adds a row, ignoring exact duplicates, and reports whether it
	// was new. The implementation copies the row; callers may reuse the
	// argument slice.
	Insert(row []uint32) bool
	// Contains reports whether the exact row is stored.
	Contains(row []uint32) bool
	// Scan returns row i (0 ≤ i < Len) in insertion order. The returned
	// slice must not be modified and may alias internal storage.
	Scan(i int) []uint32
	// MatchingIDs returns the offsets, in insertion order, of rows whose
	// component at position pos equals id. The returned slice must not be
	// modified.
	MatchingIDs(pos int, id uint32) []int
	// Len returns the number of (distinct) rows stored.
	Len() int
	// Arity returns the number of columns.
	Arity() int
}

// atter is the optional fast random-access extension both built-in stores
// implement: At(i, pos) is row i's component at position pos without
// materializing the row. The façade falls back to Scan when absent.
type atter interface {
	At(i, pos int) uint32
}

// remapper is the optional renumbering hook invoked by Database.Seal after
// the dictionary is canonicalized: every stored ID old is replaced by
// m[old]. Row order is preserved.
type remapper interface {
	remap(m []uint32)
}

// Backend selects a Store implementation.
type Backend int

const (
	// BackendColumnar is the default: per-column []uint32 with lazily
	// built permuted sorted indexes (binary-search lookups, merge-join
	// friendly runs). See docs/STORAGE.md.
	BackendColumnar Backend = iota
	// BackendMemory is the legacy string-map relation layout, kept for
	// backend-equivalence testing and as a reference implementation.
	BackendMemory
)

// String returns the flag-style name of the backend ("col" or "mem").
func (b Backend) String() string {
	switch b {
	case BackendColumnar:
		return "col"
	case BackendMemory:
		return "mem"
	}
	return fmt.Sprintf("Backend(%d)", int(b))
}

// defaultBackend is the process-wide backend New uses; the zero value is
// BackendColumnar. CLIs set it once at startup from their -store flag;
// code that needs a specific backend regardless of the process default
// uses NewWithBackend.
var defaultBackend atomic.Int32

// DefaultBackend returns the backend New currently uses.
func DefaultBackend() Backend { return Backend(defaultBackend.Load()) }

// SetDefaultBackend changes the backend New uses. Intended for process
// startup (flag parsing); databases already built keep their backend.
func SetDefaultBackend(b Backend) { defaultBackend.Store(int32(b)) }

// ParseBackend parses a backend name as accepted by the -store flags:
// "col"/"columnar" or "mem"/"memory".
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "col", "columnar":
		return BackendColumnar, nil
	case "mem", "memory":
		return BackendMemory, nil
	}
	return 0, fmt.Errorf("db: unknown backend %q (want col or mem)", s)
}

// newStore creates an empty store of the given backend for the relation.
func newStore(b Backend, dict *Dict, arity int) Store {
	if b == BackendMemory {
		return newMemStore(dict, arity)
	}
	return newColStore(arity)
}

// AppendRowKey appends the fixed-width packed encoding of a row (4 bytes
// big-endian per ID) to dst. Fixed width means distinct rows always pack to
// distinct keys, which is what eliminates the historical Tuple.key()
// separator-collision hazard for ID-keyed stores.
func AppendRowKey(dst []byte, row []uint32) []byte {
	for _, id := range row {
		dst = binary.BigEndian.AppendUint32(dst, id)
	}
	return dst
}
