package harness

import (
	"strings"
	"testing"
	"time"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 14 {
		t.Fatalf("registered experiments = %d, want 14 (E1..E14)", len(all))
	}
	// Numeric-aware ordering: E2 before E10.
	for i := 1; i < len(all); i++ {
		if expOrder(all[i-1].ID) > expOrder(all[i].ID) {
			t.Fatalf("ordering wrong: %s before %s", all[i-1].ID, all[i].ID)
		}
	}
	if _, ok := Get("E1"); !ok {
		t.Fatal("E1 missing")
	}
	if _, ok := Get("nope"); ok {
		t.Fatal("bogus id found")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration should panic")
		}
	}()
	Register(Experiment{ID: "E1"})
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		ID:      "T",
		Title:   "test",
		Paper:   "none",
		Columns: []string{"a", "long-column"},
	}
	tbl.AddRow(1, 2*time.Millisecond)
	tbl.AddRow("xx", 1500*time.Nanosecond)
	tbl.Notes = append(tbl.Notes, "a note")
	out := tbl.Render()
	for _, want := range []string{"T — test", "a   long-column", "2.00ms", "1.5µs", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[time.Duration]string{
		500 * time.Nanosecond:  "500ns",
		1500 * time.Nanosecond: "1.5µs",
		2 * time.Millisecond:   "2.00ms",
		3 * time.Second:        "3.00s",
	}
	for d, want := range cases {
		if got := formatDuration(d); got != want {
			t.Fatalf("formatDuration(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestMeasureReturnsMinimum(t *testing.T) {
	d := Measure(3, func() { time.Sleep(time.Millisecond) })
	if d < time.Millisecond/2 || d > 100*time.Millisecond {
		t.Fatalf("Measure = %v, implausible", d)
	}
}

// TestAllExperimentsQuick smoke-tests every experiment in quick mode: each
// must produce a table with rows and no ERROR notes.
func TestAllExperimentsQuick(t *testing.T) {
	cfg := Config{Quick: true, Repetitions: 1}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl := e.Run(cfg)
			if tbl == nil || len(tbl.Rows) == 0 {
				t.Fatalf("%s produced no rows", e.ID)
			}
			for _, n := range tbl.Notes {
				if strings.Contains(n, "ERROR") || strings.Contains(n, "DISAGREEMENT") {
					t.Fatalf("%s reported: %s", e.ID, n)
				}
			}
			if tbl.Render() == "" {
				t.Fatalf("%s rendered empty", e.ID)
			}
		})
	}
}

func TestCSV(t *testing.T) {
	tbl := &Table{Columns: []string{"a", "b"}}
	tbl.AddRow("plain", `with "quote", and comma`)
	csv := tbl.CSV()
	want := "a,b\nplain,\"with \"\"quote\"\", and comma\"\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}
