package harness

import (
	"fmt"

	"wdpt/internal/cq"
	"wdpt/internal/cqeval"
	"wdpt/internal/gen"
)

// Experiment E9: the CQ-evaluation substrate of Theorems 2 and 3 — the
// Yannakakis / decomposition engines against the naive backtracking join on
// acyclic and bounded-treewidth queries.

func init() {
	Register(Experiment{
		ID:    "E9",
		Title: "CQ engines: Yannakakis and decomposition vs naive backtracking",
		Paper: "Theorems 2 and 3 (substrate): TW(k)/HW(k) evaluation is tractable",
		Run:   runE9,
	})
}

// pathCQ builds the Boolean path query of length l.
func pathCQ(l int) []cq.Atom {
	var atoms []cq.Atom
	for i := 0; i < l; i++ {
		atoms = append(atoms, cq.NewAtom("E",
			cq.V(fmt.Sprintf("x%d", i)), cq.V(fmt.Sprintf("x%d", i+1))))
	}
	return atoms
}

// thetaCQ builds the θ_n query of Example 5: an E-clique plus one covering
// T_n atom — acyclic (HW(1)) but of treewidth n-1.
func thetaCQ(n int) []cq.Atom {
	var atoms []cq.Atom
	var vars []cq.Term
	for i := 1; i <= n; i++ {
		vars = append(vars, cq.V(fmt.Sprintf("x%d", i)))
	}
	for i := 1; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			atoms = append(atoms, cq.NewAtom("E", vars[i-1], vars[j-1]))
		}
	}
	atoms = append(atoms, cq.NewAtom("T", vars...))
	return atoms
}

func runE9(cfg Config) *Table {
	t := &Table{
		ID:      "E9",
		Title:   "Boolean path CQs over layered graphs; θ_n over matching data",
		Paper:   "Theorem 3: acyclic CQs evaluate in LOGCFL; Example 5 separates HW(1) from TW(k)",
		Columns: []string{"query", "|D|", "sat", "t(naive)", "t(yannakakis)", "t(decomposition)", "t(hypertree)"},
	}
	naive := cqeval.WithStats(cqeval.Naive(), cfg.Stats)
	yan := cqeval.WithStats(cqeval.Yannakakis(), cfg.Stats)
	dec := cqeval.WithStats(cqeval.Decomposition(), cfg.Stats)
	ht := cqeval.WithStats(cqeval.Hypertree(2), cfg.Stats)
	lens := []int{4, 6, 8}
	perLayer, outDeg := 50, 5
	if cfg.Quick {
		lens = []int{3, 5}
		perLayer = 10
	}
	for _, l := range lens {
		// One dead layer beyond the path so the query is unsatisfiable and
		// the naive engine must exhaust its outDeg^l search.
		d := gen.LayeredDatabase(l, perLayer, outDeg, int64(l))
		atoms := pathCQ(l)
		var sNaive, sYan, sDec, sHT bool
		tn := cfg.Measure(func() { sNaive = naive.Satisfiable(atoms, d, nil) })
		ty := cfg.Measure(func() { sYan = yan.Satisfiable(atoms, d, nil) })
		td := cfg.Measure(func() { sDec = dec.Satisfiable(atoms, d, nil) })
		th := cfg.Measure(func() { sHT = ht.Satisfiable(atoms, d, nil) })
		if sNaive != sYan || sYan != sDec || sDec != sHT {
			t.Notes = append(t.Notes, fmt.Sprintf("DISAGREEMENT on path length %d", l))
		}
		t.AddRow(fmt.Sprintf("path-%d", l), d.Size(), sNaive, tn, ty, td, th)
	}
	// θ_n: acyclic but treewidth n-1; the covering T-atom lets Yannakakis
	// drive the join while the naive engine can still benefit from index
	// selection — shapes should stay comparable and polynomial.
	ns := []int{3, 4, 5}
	if cfg.Quick {
		ns = []int{3}
	}
	for _, n := range ns {
		d := gen.RandomDatabase(gen.DBParams{
			DomainSize:   8,
			TuplesPerRel: 150,
			Rels:         []gen.RelSpec{{Name: "E", Arity: 2}, {Name: "T", Arity: n}},
		}, int64(n))
		atoms := thetaCQ(n)
		var sNaive, sYan, sHT bool
		tn := cfg.Measure(func() { sNaive = naive.Satisfiable(atoms, d, nil) })
		ty := cfg.Measure(func() { sYan = yan.Satisfiable(atoms, d, nil) })
		td := cfg.Measure(func() { dec.Satisfiable(atoms, d, nil) })
		th := cfg.Measure(func() { sHT = ht.Satisfiable(atoms, d, nil) })
		if sNaive != sYan || sNaive != sHT {
			t.Notes = append(t.Notes, fmt.Sprintf("DISAGREEMENT on theta_%d", n))
		}
		t.AddRow(fmt.Sprintf("theta-%d", n), d.Size(), sNaive, tn, ty, td, th)
	}
	t.Notes = append(t.Notes,
		"expected shape: on unsatisfiable deep paths the naive engine pays the outDeg^len fan-out; the join-tree engines stay near-linear in |D|")
	return t
}
