package harness

import (
	"fmt"

	"wdpt/internal/core"
	"wdpt/internal/cq"
	"wdpt/internal/cqeval"
	"wdpt/internal/db"
	"wdpt/internal/gen"
)

// Experiments E1-E4: the evaluation rows of Table 1.

// solveHolds runs one decision-mode Solve call under the config's
// parallelism — the single entry point all evaluation experiments now go
// through, exercising the same code path wdpteval serves.
func solveHolds(cfg Config, p *core.PatternTree, d *db.Database, mode core.Mode, h cq.Mapping, eng cqeval.Engine) bool {
	res, _ := p.Solve(cfg.Context(), d, core.SolveOptions{
		Mode:        mode,
		Mapping:     h,
		Engine:      eng,
		Parallelism: cfg.Parallelism,
	})
	return res.Holds
}

func init() {
	Register(Experiment{
		ID:    "E1",
		Title: "EVAL on ℓ-TW(1) ∩ BI(1): interface algorithm (Thm 6) vs naive subtree enumeration",
		Paper: "Table 1, row EVAL, column ℓ-C(k) ∩ BI(c) (LOGCFL) vs column general",
		Run:   runE1,
	})
	Register(Experiment{
		ID:    "E2",
		Title: "EVAL on g-TW(1) stays NP-hard: 3-colorability reduction on K_n",
		Paper: "Table 1, row EVAL, column g-C(k) (NP-complete, Proposition 3)",
		Run:   runE2,
	})
	Register(Experiment{
		ID:    "E3",
		Title: "PARTIAL-EVAL on g-TW(1) is tractable on the same hard instances",
		Paper: "Table 1, row P-EVAL, column g-C(k) (LOGCFL, Theorem 8)",
		Run:   runE3,
	})
	Register(Experiment{
		ID:    "E4",
		Title: "MAX-EVAL on g-TW(1) is tractable on the same hard instances",
		Paper: "Table 1, row M-EVAL, column g-C(k) (LOGCFL, Theorem 9)",
		Run:   runE4,
	})
}

// runE1 sweeps the depth of a chain-shaped WDPT over a layered graph with
// fan-out: the naive engine enumerates outDeg^depth homomorphisms, the
// interface algorithm stays polynomial.
func runE1(cfg Config) *Table {
	t := &Table{
		ID:      "E1",
		Title:   "EVAL: interface algorithm vs naive band enumeration",
		Paper:   "Table 1 row EVAL: ℓ-TW(1)∩BI(1) is tractable; general WDPTs are not",
		Columns: []string{"depth", "|D|", "answer", "t(interface)", "t(naive)"},
	}
	depths := []int{2, 4, 6, 8}
	perLayer, outDeg := 60, 4
	if cfg.Quick {
		depths = []int{2, 3}
		perLayer = 10
	}
	eng := cfg.Engine()
	for _, depth := range depths {
		d := gen.LayeredDatabase(depth+1, perLayer, outDeg, int64(depth))
		p := gen.PathWDPT(depth)
		h := cq.Mapping{"y0": gen.LayeredFirstVertex()}
		var ansFast, ansNaive bool
		tFast := cfg.Measure(func() { ansFast = solveHolds(cfg, p, d, core.ModeExact, h, eng) })
		tNaive := cfg.Measure(func() { ansNaive = solveHolds(cfg, p, d, core.ModeExactNaive, h, nil) })
		if ansFast != ansNaive {
			t.Notes = append(t.Notes, fmt.Sprintf("DISAGREEMENT at depth %d", depth))
		}
		t.AddRow(depth, d.Size(), ansFast, tFast, tNaive)
	}
	t.Notes = append(t.Notes,
		"expected shape: t(interface) grows polynomially with depth and |D|; t(naive) grows like outDeg^depth")
	// A second sweep: database size at fixed depth, interface engine only —
	// the near-linear data-complexity claim of Theorem 7.
	depth := 4
	if cfg.Quick {
		depth = 2
	}
	sizes := []int{20, 40, 80, 160}
	if cfg.Quick {
		sizes = []int{10, 20}
	}
	for _, per := range sizes {
		d := gen.LayeredDatabase(depth+1, per, outDeg, 7)
		p := gen.PathWDPT(depth)
		h := cq.Mapping{"y0": gen.LayeredFirstVertex()}
		tFast := cfg.Measure(func() { solveHolds(cfg, p, d, core.ModeExact, h, eng) })
		t.AddRow(depth, d.Size(), "-", tFast, "-")
	}
	return t
}

func runE2(cfg Config) *Table {
	t := &Table{
		ID:      "E2",
		Title:   "EVAL on g-TW(1): 3-colorability of K_n (never 3-colorable for n ≥ 4)",
		Paper:   "Proposition 3: EVAL(g-TW(k)) is NP-complete",
		Columns: []string{"n", "edges", "3-colorable", "t(EVAL)"},
	}
	ns := []int{4, 5, 6, 7, 8}
	if cfg.Quick {
		ns = []int{4, 5}
	}
	eng := cfg.Engine()
	for _, n := range ns {
		g := gen.CompleteGraph(n)
		p, d, h := gen.ThreeColorInstance(g)
		var ans bool
		dur := cfg.Measure(func() { ans = solveHolds(cfg, p, d, core.ModeExact, h, eng) })
		t.AddRow(n, len(g.Edges), ans, dur)
	}
	t.Notes = append(t.Notes, "expected shape: ~3x per added vertex (3^n colorings refuted)")
	return t
}

func runE3(cfg Config) *Table {
	t := &Table{
		ID:      "E3",
		Title:   "PARTIAL-EVAL on the same 3-colorability instances",
		Paper:   "Theorem 8: PARTIAL-EVAL(g-TW(k)) ∈ LOGCFL",
		Columns: []string{"n", "edges", "partial answer", "t(P-EVAL minimal subtree)", "t(P-EVAL enumerate ablation)"},
	}
	ns := []int{4, 5, 6, 7, 8}
	if cfg.Quick {
		ns = []int{4, 5}
	}
	eng := cfg.Engine()
	for _, n := range ns {
		g := gen.CompleteGraph(n)
		p, d, h := gen.ThreeColorInstance(g)
		var ans bool
		dur := cfg.Measure(func() { ans = solveHolds(cfg, p, d, core.ModePartial, h, eng) })
		t.AddRow(fmt.Sprintf("K%d", n), len(g.Edges), ans, dur, "-")
	}
	// The enumerate-all-subtrees ablation pays 2^(3|E|) subtrees on negative
	// instances (x -> 0 never matches, so every subtree is re-checked),
	// while the minimal-subtree algorithm refutes at the root. Only small
	// cycles are feasible for the ablation.
	cycles := []int{3, 4}
	if !cfg.Quick {
		cycles = []int{3, 4, 5}
	}
	for _, n := range cycles {
		g := gen.CycleGraph(n)
		p, d, _ := gen.ThreeColorInstance(g)
		hNeg := cq.Mapping{"x": "0"}
		var ans bool
		dur := cfg.Measure(func() { ans = solveHolds(cfg, p, d, core.ModePartial, hNeg, eng) })
		durEnum := Measure(1, func() { p.PartialEvalEnumerate(d, hNeg) })
		t.AddRow(fmt.Sprintf("C%d (neg)", n), len(g.Edges), ans, dur, durEnum)
	}
	t.Notes = append(t.Notes,
		"expected shape: flat/polynomial in n where E2 explodes; the enumerate ablation pays 2^(3|E|) subtrees")
	return t
}

func runE4(cfg Config) *Table {
	t := &Table{
		ID:      "E4",
		Title:   "MAX-EVAL on the same 3-colorability instances",
		Paper:   "Theorem 9: MAX-EVAL(g-TW(k)) ∈ LOGCFL",
		Columns: []string{"n", "edges", "maximal answer", "t(M-EVAL)"},
	}
	ns := []int{4, 5, 6, 7, 8}
	if cfg.Quick {
		ns = []int{4, 5}
	}
	eng := cfg.Engine()
	for _, n := range ns {
		g := gen.CompleteGraph(n)
		p, d, h := gen.ThreeColorInstance(g)
		var ans bool
		dur := cfg.Measure(func() { ans = solveHolds(cfg, p, d, core.ModeMax, h, eng) })
		t.AddRow(n, len(g.Edges), ans, dur)
	}
	t.Notes = append(t.Notes, "expected shape: polynomial in n, like E3")
	return t
}
