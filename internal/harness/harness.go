// Package harness is the experiment framework behind cmd/wdptbench and the
// root-level benchmarks: a registry of experiments — one per table or
// figure artifact of the paper — with parameter sweeps, timing, and aligned
// text-table rendering. EXPERIMENTS.md records the measured outputs next to
// the paper's claims.
package harness

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"wdpt/internal/cqeval"
	"wdpt/internal/obs"
)

// Config tunes how heavy an experiment run is.
type Config struct {
	// Quick shrinks every sweep to smoke-test sizes (used by tests).
	Quick bool
	// Repetitions per measured point (default 3; the minimum is reported).
	Repetitions int
	// Warmup is the number of unmeasured runs before each measured point
	// (default 1), so caches and allocator pools reach steady state and the
	// reported shapes are not jitter artifacts. Negative disables warm-up.
	Warmup int
	// Stats, when non-nil, receives the work counters of every engine the
	// experiments obtain through Engine() — the per-experiment metrics
	// wdptbench emits into BENCH_*.json.
	Stats *obs.Stats
	// Parallelism bounds the worker goroutines the experiments pass to
	// Solve (and approx.Options). ≤ 1 keeps every run sequential; results
	// are byte-identical at any value (only timings and par.* counters
	// move), which the determinism suite pins.
	Parallelism int
	// BaseContext, when non-nil, is threaded into every Solve call the
	// experiments make, so the driver's cancellation (a Ctrl-C in
	// wdptbench) interrupts a sweep mid-experiment instead of after it.
	BaseContext context.Context
	// Timings, when non-nil, receives one TimingPoint per Measure call (in
	// call order): the min-of-N the tables print plus the p50/p95/p99 of
	// the measured repetitions. wdptbench wires one per experiment and
	// emits the log into BENCH_*.json, where scripts/benchdiff.sh reads it.
	Timings *TimingLog
}

// TimingPoint is the latency summary of one measured point: the robust
// minimum plus nearest-rank quantiles over the measured repetitions.
type TimingPoint struct {
	MinNS int64 `json:"min_ns"`
	P50NS int64 `json:"p50_ns"`
	P95NS int64 `json:"p95_ns"`
	P99NS int64 `json:"p99_ns"`
	Reps  int   `json:"reps"`
}

// TimingLog accumulates the TimingPoints of one experiment run in Measure
// call order. Experiments run their measured points sequentially, so no
// locking is needed.
type TimingLog struct {
	points []TimingPoint
}

// add summarizes one Measure call's repetition durations.
func (l *TimingLog) add(ds []time.Duration) {
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	l.points = append(l.points, TimingPoint{
		MinNS: int64(sorted[0]),
		P50NS: int64(obs.QuantileSorted(sorted, 0.5)),
		P95NS: int64(obs.QuantileSorted(sorted, 0.95)),
		P99NS: int64(obs.QuantileSorted(sorted, 0.99)),
		Reps:  len(sorted),
	})
}

// Points returns the accumulated timing points in call order.
func (l *TimingLog) Points() []TimingPoint {
	if l == nil {
		return nil
	}
	return append([]TimingPoint(nil), l.points...)
}

// Context returns the run's base context, defaulting to Background when the
// driver did not provide one.
func (c Config) Context() context.Context {
	ctx := c.BaseContext
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx
}

func (c Config) reps() int {
	if c.Repetitions <= 0 {
		return 3
	}
	return c.Repetitions
}

func (c Config) warmup() int {
	if c.Warmup < 0 {
		return 0
	}
	if c.Warmup == 0 {
		return 1
	}
	return c.Warmup
}

// Measure times fn at one measured point: Warmup unmeasured runs, then the
// minimum of Repetitions measured runs, via obs.Timer. When the config
// carries a TimingLog, the full repetition sample is summarized into it
// (min + p50/p95/p99) without changing the returned minimum.
func (c Config) Measure(fn func()) time.Duration {
	t := obs.Timer{Warmup: c.warmup(), Reps: c.reps()}
	if c.Timings == nil {
		return t.Measure(fn)
	}
	ds := t.MeasureAll(fn)
	c.Timings.add(ds)
	best := ds[0]
	for _, d := range ds[1:] {
		if d < best {
			best = d
		}
	}
	return best
}

// Engine returns the auto-selecting engine wired to the config's stats
// sink — the engine every experiment should use unless it is explicitly
// comparing engines.
func (c Config) Engine() cqeval.Engine {
	return cqeval.WithStats(cqeval.Auto(), c.Stats)
}

// Table is a rendered experiment result: a titled grid of rows.
type Table struct {
	ID      string
	Title   string
	Paper   string // which table/figure of the paper this regenerates
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting every cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case time.Duration:
			row[i] = formatDuration(v)
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatDuration(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// Render draws the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "reproduces: %s\n", t.Paper)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment is a registered, runnable experiment.
type Experiment struct {
	ID    string
	Title string
	Paper string
	Run   func(Config) *Table
}

var registry = map[string]Experiment{}

// Register adds an experiment; duplicate IDs panic (programming error).
func Register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		//lint:ignore R2 init-time registration bug: failing fast at startup is the standard idiom
		panic("harness: duplicate experiment id " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns the experiments sorted by id.
func All() []Experiment {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		// Numeric-aware: E2 before E10.
		return expOrder(ids[i]) < expOrder(ids[j]) || (expOrder(ids[i]) == expOrder(ids[j]) && ids[i] < ids[j])
	})
	out := make([]Experiment, len(ids))
	for i, id := range ids {
		out[i] = registry[id]
	}
	return out
}

func expOrder(id string) int {
	n := 0
	for _, r := range id {
		if r >= '0' && r <= '9' {
			n = n*10 + int(r-'0')
		}
	}
	return n
}

// Measure runs fn reps times and returns the minimum wall-clock duration —
// the standard way to suppress scheduling noise in micro-measurements.
// Prefer Config.Measure, which adds warm-up; this remains for one-shot
// measurements whose *cold* cost is the artifact (e.g. approximation
// construction time in E10).
func Measure(reps int, fn func()) time.Duration {
	return obs.Timer{Reps: reps}.Measure(fn)
}

// CSV renders the table as comma-separated values (header + rows), for
// plotting the figure-shaped experiments outside the terminal. Cells
// containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
