package harness

import (
	"fmt"

	"wdpt/internal/gen"
	"wdpt/internal/rdf"
)

// Experiment E12: the RDF scenario of Section 2 — the paper's results are
// stated over arbitrary relational schemas but "continue to hold in the RDF
// scenario" of a single ternary relation. The experiment evaluates the same
// workload relationally and through the answer-preserving triple encoding,
// confirming identical answers and measuring the encoding overhead.

func init() {
	Register(Experiment{
		ID:    "E12",
		Title: "RDF scenario: triple-encoded evaluation matches relational evaluation",
		Paper: "Section 2, 'RDF well-designed pattern trees'",
		Run:   runE12,
	})
}

func runE12(cfg Config) *Table {
	t := &Table{
		ID:      "E12",
		Title:   "Relational vs triple-encoded evaluation of the music workload",
		Paper:   "Section 2: all results continue to hold for RDF WDPTs",
		Columns: []string{"|D| (rel)", "|D| (rdf)", "answers", "t(relational)", "t(rdf)", "overhead"},
	}
	p := gen.MusicWDPT("x", "y", "z", "zp")
	enc := rdf.Encode(p)
	sizes := [][2]int{{10, 3}, {40, 3}, {160, 3}}
	if cfg.Quick {
		sizes = [][2]int{{5, 2}, {10, 2}}
	}
	for _, sz := range sizes {
		d := gen.MusicDatabaseLarge(sz[0], sz[1], int64(sz[0]))
		encD := rdf.EncodeDatabase(d)
		var relAnswers, rdfAnswers int
		tRel := cfg.Measure(func() { relAnswers = len(p.Evaluate(d)) })
		tRDF := cfg.Measure(func() { rdfAnswers = len(enc.Evaluate(encD)) })
		if relAnswers != rdfAnswers {
			t.Notes = append(t.Notes,
				fmt.Sprintf("ERROR: answer counts differ at %d bands: %d vs %d", sz[0], relAnswers, rdfAnswers))
		}
		overhead := "-"
		if tRel > 0 {
			overhead = fmt.Sprintf("%.1fx", float64(tRDF)/float64(tRel))
		}
		t.AddRow(d.Size(), encD.Size(), relAnswers, tRel, tRDF, overhead)
	}
	// Decision problems through the encoding, on the Example 2 database.
	d := gen.MusicDatabase()
	encD := rdf.EncodeDatabase(d)
	eng := cfg.Engine()
	h := map[string]string{"x": "Swim", "y": "Caribou", "z": "2"}
	relAns := p.EvalInterface(d, h, eng)
	rdfAns := enc.EvalInterface(encD, h, eng)
	if relAns != rdfAns || !relAns {
		t.Notes = append(t.Notes, "ERROR: EVAL disagrees through the encoding")
	}
	t.Notes = append(t.Notes,
		"expected shape: identical answer counts; a constant-factor slowdown from the reified triples (≈3 triples per fact)")
	return t
}
