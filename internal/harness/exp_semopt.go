package harness

import (
	"fmt"

	"wdpt/internal/approx"
	"wdpt/internal/gen"
	"wdpt/internal/subsume"
)

// Experiments E6-E8: Table 2 (semantic optimization) and Figure 2 /
// Theorem 15 (the unavoidable exponential approximation blow-up).

func init() {
	Register(Experiment{
		ID:    "E6",
		Title: "WB(k)-membership: symmetric cycles (members for even length) vs odd cycles",
		Paper: "Table 2, row WB(k)-Membership (Theorem 13 / Proposition 7)",
		Run:   runE6,
	})
	Register(Experiment{
		ID:    "E7",
		Title: "WB(k)-approximation construction on growing non-member trees",
		Paper: "Table 2, row WB(k)-Approximation (Theorem 14 / Proposition 8)",
		Run:   runE7,
	})
	Register(Experiment{
		ID:    "E8",
		Title: "Figure 2 blow-up family: |p2(n)| / |p1(n)| grows like 2^n",
		Paper: "Figure 2 / Theorem 15",
		Run:   runE8,
	})
}

func runE6(cfg Config) *Table {
	t := &Table{
		ID:      "E6",
		Title:   "M(WB(1)) membership of symmetric m-cycle trees",
		Paper:   "Theorem 13: membership is decidable; Proposition 7: Π₂ᴾ-hard",
		Columns: []string{"cycle", "|p|", "member", "t(membership)"},
	}
	ms := []int{3, 4, 5}
	if cfg.Quick {
		ms = []int{3, 4}
	}
	for _, m := range ms {
		p := gen.SymmetricCycleTree(m)
		var member bool
		dur := Measure(1, func() {
			_, member = approx.MemberWB(p, approx.WB(1), approx.Options{Parallelism: cfg.Parallelism})
		})
		wantMember := m%2 == 0
		if member != wantMember {
			t.Notes = append(t.Notes, fmt.Sprintf("ERROR: m=%d member=%v want %v", m, member, wantMember))
		}
		t.AddRow(fmt.Sprintf("C%d (sym)", m), p.Size(), member, dur)
	}
	t.Notes = append(t.Notes,
		"even symmetric cycles fold to an edge (members); odd ones are cores of treewidth 2 (non-members)",
		"expected shape: time grows with the Bell-number quotient space of the cycle variables")
	return t
}

func runE7(cfg Config) *Table {
	t := &Table{
		ID:      "E7",
		Title:   "WB(1)-approximation of triangle+path trees",
		Paper:   "Theorem 14: approximations exist and are computable",
		Columns: []string{"path len", "|p|", "|approx|", "t(approximate)"},
	}
	lens := []int{0, 1, 2}
	if cfg.Quick {
		lens = []int{0, 1}
	}
	for _, l := range lens {
		p := gen.TriangleWithPath(l)
		var size int
		dur := Measure(1, func() {
			ap, err := approx.Approximate(p, approx.WB(1), approx.Options{Parallelism: cfg.Parallelism})
			if err != nil {
				t.Notes = append(t.Notes, "ERROR: "+err.Error())
				return
			}
			size = ap.Size()
			if !subsume.Subsumes(ap, p, subsume.Options{}) {
				t.Notes = append(t.Notes, "ERROR: approximation not subsumed by p")
			}
		})
		t.AddRow(l, p.Size(), size, dur)
	}
	t.Notes = append(t.Notes,
		"expected shape: approximation size tracks |p| (the triangle collapses, the path survives); time grows with the quotient space")
	return t
}

func runE8(cfg Config) *Table {
	t := &Table{
		ID:      "E8",
		Title:   "Sizes of the Figure 2 family (k = 2)",
		Paper:   "Theorem 15: |p1| = O(n²), |p2| = Ω(2^n), and p2 ⊑ p1 with p2 ∈ WB(k)",
		Columns: []string{"n", "|p1|", "|p2|", "ratio", "p1 ∈ WB(2)", "p2 ∈ WB(2)"},
	}
	const k = 2
	ns := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if cfg.Quick {
		ns = []int{1, 2, 3, 4}
	}
	for _, n := range ns {
		p1 := gen.Figure2P1(n, k)
		p2 := gen.Figure2P2(n, k)
		in1 := approx.InWB(p1, approx.WB(k))
		in2 := approx.InWB(p2, approx.WB(k))
		if in1 || !in2 {
			t.Notes = append(t.Notes, fmt.Sprintf("ERROR at n=%d: p1∈WB=%v p2∈WB=%v", n, in1, in2))
		}
		t.AddRow(n, p1.Size(), p2.Size(), float64(p2.Size())/float64(p1.Size()), in1, in2)
	}
	if !cfg.Quick {
		// Verify the subsumption claim on the smallest instance (the test
		// suite re-checks it; here it documents the family).
		p1 := gen.Figure2P1(1, k)
		p2 := gen.Figure2P2(1, k)
		if !subsume.Subsumes(p2, p1, subsume.Options{}) {
			t.Notes = append(t.Notes, "ERROR: p2 ⊑ p1 failed at n=1")
		} else {
			t.Notes = append(t.Notes, "verified: p2 ⊑ p1 at n=1 (exact subsumption test)")
		}
	}
	t.Notes = append(t.Notes, "expected shape: ratio doubles with every n")
	return t
}
