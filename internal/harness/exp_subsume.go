package harness

import (
	"wdpt/internal/gen"
	"wdpt/internal/subsume"
)

// Experiment E5: the ⊑ and ≡s rows of Table 1 — the coNP fast path
// (PARTIAL-EVAL inner check, valid because the right-hand side is globally
// tractable) against the generic Π₂ᴾ-style enumeration inner check.

func init() {
	Register(Experiment{
		ID:    "E5",
		Title: "Subsumption: tractable inner check (Thm 11) vs enumeration inner check",
		Paper: "Table 1, rows ⊑ and ≡s: coNP under g-C(k) vs Π₂ᴾ in general",
		Run:   runE5,
	})
}

func runE5(cfg Config) *Table {
	t := &Table{
		ID:      "E5",
		Title:   "p ⊑ p (reflexive worst case) on star trees of growing width",
		Paper:   "Theorem 11: coNP-membership when the RHS is globally tractable",
		Columns: []string{"width", "|p|", "holds", "t(inner=P-EVAL)", "t(inner=enumerate)"},
	}
	widths := []int{2, 3, 4}
	if cfg.Quick {
		widths = []int{2, 3}
	}
	for _, w := range widths {
		p := gen.StarWDPT(w)
		var holds bool
		fast := Measure(1, func() {
			holds = subsume.Subsumes(p, p, subsume.Options{})
		})
		slow := Measure(1, func() {
			subsume.Subsumes(p, p, subsume.Options{InnerEnumerate: true})
		})
		t.AddRow(w, p.Size(), holds, fast, slow)
		if !holds {
			t.Notes = append(t.Notes, "ERROR: reflexive subsumption failed")
		}
	}
	// Equivalence of syntactic variants: the music tree with swapped
	// children (both directions, so this is the ≡s row).
	p1 := gen.MusicWDPT("x", "y", "z", "zp")
	eq := cfg.Measure(func() {
		subsume.Equivalent(p1, p1, subsume.Options{})
	})
	t.AddRow("music≡s", p1.Size(), true, eq, "-")
	t.Notes = append(t.Notes,
		"expected shape: both columns grow with the 2^width outer subtree enumeration, but the enumeration inner check multiplies in another 2^width factor")
	return t
}
