package harness

import (
	"fmt"

	"wdpt/internal/approx"
	"wdpt/internal/core"
	"wdpt/internal/cq"
	"wdpt/internal/gen"
	"wdpt/internal/subsume"
	"wdpt/internal/uwdpt"
)

// Experiments E10 and E11: the approximation payoff of Section 5.2 and the
// union results of Section 6.

func init() {
	Register(Experiment{
		ID:    "E10",
		Title: "Approximation payoff: compute+run the WB(1)-approximation vs direct evaluation",
		Paper: "Section 5.2: O(|D| · 2^2^t(|p|)) beats |D|^O(|p|) on large databases",
		Run:   runE10,
	})
	Register(Experiment{
		ID:    "E11",
		Title: "Unions: ⋃-evaluation scales with members; UWB(k)-approximation via φ_cq",
		Paper: "Theorems 16-18",
		Run:   runE11,
	})
}

func runE10(cfg Config) *Table {
	t := &Table{
		ID:      "E10",
		Title:   "Directed 4-cycle pattern on acyclic layered databases with fan-out",
		Paper:   "Section 5.2 payoff argument",
		Columns: []string{"|D|", "t(direct eval)", "t(run approx)", "t(compute approx, once)", "winner at this |D|"},
	}
	p := gen.DirectedCycleTree(4)
	var ap = p
	computeTime := Measure(1, func() {
		a, err := approx.Approximate(p, approx.WB(1), approx.Options{})
		if err != nil {
			t.Notes = append(t.Notes, "ERROR: "+err.Error())
			return
		}
		ap = a
	})
	// Layered DAGs with fan-out: the 4-cycle never closes, but the direct
	// pattern explores outDeg² partial matches per edge (≈ n·outDeg³ work),
	// while the collapsed approximation refutes in one pass over the edges.
	sizes := []int{20, 100, 500, 2000}
	outDeg := 10
	if cfg.Quick {
		sizes = []int{10, 30}
		outDeg = 4
	}
	for _, per := range sizes {
		d := gen.LayeredDatabase(4, per, outDeg, int64(per))
		tDirect := Measure(1, func() { p.Evaluate(d) })
		tApprox := Measure(1, func() { ap.Evaluate(d) })
		winner := "direct"
		if tApprox+computeTime < tDirect {
			winner = "approximation"
		}
		t.AddRow(d.Size(), tDirect, tApprox, computeTime, winner)
	}
	t.Notes = append(t.Notes,
		"the database is acyclic, so both queries are empty; the direct pattern pays the outDeg³ partial-match fan-out, the collapsed approximation fails in one edge scan",
		"the winner column charges the full one-off approximation cost to each row",
		"expected shape: a crossover — computing the approximation amortizes as |D| grows")
	return t
}

func runE11(cfg Config) *Table {
	t := &Table{
		ID:      "E11",
		Title:   "Union evaluation and UWB(1)-approximation",
		Paper:   "Theorem 16 (⋃-evaluation), Theorem 18 (UWB(k)-approximation)",
		Columns: []string{"instance", "members", "result", "time"},
	}
	eng := cfg.Engine()
	counts := []int{1, 2, 4, 8}
	if cfg.Quick {
		counts = []int{1, 2}
	}
	d := gen.LayeredDatabase(9, 40, 4, 3)
	// A positive probe short-circuits at the first member; the negative
	// probe (a vertex that is not in the database) forces the full member
	// scan, exhibiting the linear cost in the union size.
	hPos := cq.Mapping{"y0": gen.LayeredFirstVertex()}
	hNeg := cq.Mapping{"y0": "missing"}
	for _, m := range counts {
		union := buildPathUnion(m)
		var ans bool
		durPos := cfg.Measure(func() { ans = union.Eval(d, hPos, eng) })
		t.AddRow("⋃-EVAL paths (positive)", m, ans, durPos)
		durNeg := cfg.Measure(func() { ans = union.Eval(d, hNeg, eng) })
		t.AddRow("⋃-EVAL paths (negative)", m, ans, durNeg)
	}
	// UWB(1)-approximation of a union containing a cyclic member.
	u := uwdpt.MustNew(gen.DirectedCycleTree(3), gen.PathWDPT(2))
	var approxMembers int
	dur := Measure(1, func() {
		qs, err := uwdpt.ApproximateUWB(u, cq.TW(1), 0)
		if err != nil {
			t.Notes = append(t.Notes, "ERROR: "+err.Error())
			return
		}
		approxMembers = len(qs)
		if !uwdpt.Subsumes(uwdpt.AsUnionOfWDPTs(qs), u, subsume.Options{}) {
			t.Notes = append(t.Notes, "ERROR: approximation not subsumed by the union")
		}
	})
	t.AddRow("UWB(1)-approx (cycle ∪ path)", len(u.Trees()), fmt.Sprintf("%d CQs", approxMembers), dur)
	t.Notes = append(t.Notes,
		"expected shape: negative ⋃-EVAL time grows linearly in the member count; positive probes return at the first matching member")
	return t
}

// buildPathUnion assembles a union of chain-shaped trees of depths
// 1..members, the workload for the ⋃-EVAL sweep.
func buildPathUnion(members int) *uwdpt.Union {
	trees := make([]*core.PatternTree, members)
	for i := range trees {
		trees[i] = gen.PathWDPT(i + 1)
	}
	return uwdpt.MustNew(trees...)
}
