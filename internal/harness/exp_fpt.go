package harness

import (
	"wdpt/internal/approx"
	"wdpt/internal/cq"
	"wdpt/internal/gen"
)

// Experiment E13: Corollary 2 — fixed-parameter tractable evaluation for
// WDPTs that are subsumption-equivalent to a well-behaved tree. The
// membership test (expensive, but in the query size only) runs once; the
// resulting witness answers PARTIAL-EVAL through a folded, tractable tree.

func init() {
	Register(Experiment{
		ID:    "E13",
		Title: "Corollary 2: FPT evaluation via the M(WB(1)) witness",
		Paper: "Corollary 2 (and Corollary 3 for unions)",
		Run:   runE13,
	})
}

func runE13(cfg Config) *Table {
	t := &Table{
		ID:      "E13",
		Title:   "Symmetric 6-cycle pattern: original vs folded witness, PARTIAL-EVAL",
		Paper:   "Corollary 2: PARTIAL/MAX-EVAL of M(WB(k)) queries is FPT",
		Columns: []string{"|D|", "t(P-EVAL original)", "t(P-EVAL witness)", "t(M-EVAL original)", "t(M-EVAL witness)"},
	}
	m := 6
	if cfg.Quick {
		m = 4
	}
	p := gen.SymmetricCycleTree(m)
	var opt *approx.Optimized
	setup := Measure(1, func() {
		opt = approx.Optimize(p, approx.WB(1), approx.Options{})
	})
	if !opt.Tractable() {
		t.Notes = append(t.Notes, "ERROR: even symmetric cycle should be in M(WB(1))")
		return t
	}
	eng := cfg.Engine()
	sizes := []int{200, 800, 3200}
	if cfg.Quick {
		sizes = []int{40, 80}
	}
	for _, n := range sizes {
		d := gen.RandomDatabase(gen.DBParams{
			DomainSize:   n / 4,
			TuplesPerRel: n,
			Rels:         []gen.RelSpec{{Name: "E", Arity: 2}, {Name: "V", Arity: 1}},
		}, int64(n))
		h := cq.Mapping{}
		var a1, a2, b1, b2 bool
		tOrigP := cfg.Measure(func() { a1 = p.PartialEval(d, h, eng) })
		tWitP := cfg.Measure(func() { a2 = opt.PartialEval(d, h, eng) })
		tOrigM := cfg.Measure(func() { b1 = p.MaxEval(d, h, eng) })
		tWitM := cfg.Measure(func() { b2 = opt.MaxEval(d, h, eng) })
		if a1 != a2 || b1 != b2 {
			t.Notes = append(t.Notes, "ERROR: witness answers differ from the original tree")
		}
		t.AddRow(d.Size(), tOrigP, tWitP, tOrigM, tWitM)
	}
	t.AddRow("(setup, once)", setup, "-", "-", "-")
	t.Notes = append(t.Notes,
		"the witness folds the 2m-atom cycle to a single symmetric edge; the one-off membership test depends only on |p|",
		"expected shape: the witness columns grow more slowly with |D| than the original columns")
	return t
}
