package harness

import (
	"fmt"

	"wdpt/internal/core"
	"wdpt/internal/gen"
)

// E14: the parallel Solve engine on enumeration workloads — the fan-out
// richest mode (one worker per root candidate, parallel plan phases under
// each candidate). The experiment runs at the configured parallelism only;
// the scaling comparison comes from wdptbench emitting one artifact per
// parallelism level, and the determinism suite pins that the answer columns
// below are identical at every level.

func init() {
	Register(Experiment{
		ID:    "E14",
		Title: "Parallel enumeration: Solve(ModeEnumerate/ModeMaximal) under the bounded worker pool",
		Paper: "engineering artifact (no paper counterpart): wall-clock scaling of the Section 3 enumeration under data parallelism",
		Run:   runE14,
	})
}

func runE14(cfg Config) *Table {
	t := &Table{
		ID:      "E14",
		Title:   "Solve enumeration throughput at Parallelism = config",
		Paper:   "tentpole artifact: byte-stable parallel enumeration",
		Columns: []string{"workload", "|D|", "mode", "answers", "parallelism", "t(solve)"},
	}
	eng := cfg.Engine()
	ctx := cfg.Context()

	// Sweep 1: chain WDPTs over layered graphs — many root candidates
	// (perLayer*outDeg edge homomorphisms), each spawning an independent
	// band expansion. Both endpoints are free so the answer set genuinely
	// depends on every expansion.
	type sweep struct{ depth, perLayer, outDeg int }
	sweeps := []sweep{{4, 24, 3}, {5, 32, 3}, {6, 40, 4}}
	if cfg.Quick {
		sweeps = []sweep{{3, 10, 2}, {4, 14, 2}}
	}
	for _, s := range sweeps {
		d := gen.LayeredDatabase(s.depth+1, s.perLayer, s.outDeg, int64(s.depth))
		p := gen.PathWDPT(s.depth, "y0", fmt.Sprintf("y%d", s.depth))
		var n int
		dur := cfg.Measure(func() {
			res, err := p.Solve(ctx, d, core.SolveOptions{
				Mode:        core.ModeEnumerate,
				Engine:      eng,
				Parallelism: cfg.Parallelism,
			})
			if err != nil {
				t.Notes = append(t.Notes, "ERROR: "+err.Error())
				return
			}
			n = len(res.Answers)
		})
		t.AddRow(fmt.Sprintf("path d=%d", s.depth), d.Size(), "enumerate", n, cfg.Parallelism, dur)
	}

	// Sweep 2: the Figure 1 query over a scaled music database — optional
	// branches produce partial answers, so ModeMaximal also exercises the
	// subsumption filter after the parallel merge.
	bands := []int{40, 80}
	records := 6
	if cfg.Quick {
		bands = []int{10}
		records = 3
	}
	for _, nb := range bands {
		d := gen.MusicDatabaseLarge(nb, records, int64(nb))
		p := gen.MusicWDPT("x", "y", "z", "zp")
		for _, mode := range []core.Mode{core.ModeEnumerate, core.ModeMaximal} {
			var n int
			dur := cfg.Measure(func() {
				res, err := p.Solve(ctx, d, core.SolveOptions{
					Mode:        mode,
					Engine:      eng,
					Parallelism: cfg.Parallelism,
				})
				if err != nil {
					t.Notes = append(t.Notes, "ERROR: "+err.Error())
					return
				}
				n = len(res.Answers)
			})
			t.AddRow(fmt.Sprintf("music b=%d", nb), d.Size(), mode.String(), n, cfg.Parallelism, dur)
		}
	}
	t.Notes = append(t.Notes,
		"answers and every non-par.* counter are identical at any parallelism (pinned by the determinism suite); only t(solve) and par.* move")
	return t
}
