package harness

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"wdpt/internal/obs"
)

// The determinism-under-parallelism suite: every experiment that routes
// through Solve must produce byte-identical tables (timings aside) and
// identical non-par.* counter totals at any worker count. This is the
// load-bearing guarantee of the parallel engine — parallelism buys
// wall-clock only, never a different answer and never different work.

var determinismIDs = []string{"E1", "E2", "E3", "E4", "E5", "E6", "E14"}

// volatileColumn reports whether a column legitimately varies across
// parallelism levels: wall-clock columns (headers "t(...)") and the echoed
// parallelism setting itself.
func volatileColumn(header string) bool {
	return strings.HasPrefix(header, "t(") || header == "parallelism"
}

// runAt executes the determinism experiments at one parallelism level with
// exactly one un-warmed repetition per point, so counter totals are
// single-run and comparable.
func runAt(t *testing.T, parallelism int) (map[string]*Table, map[string]int64) {
	t.Helper()
	st := obs.NewStats()
	cfg := Config{Quick: true, Repetitions: 1, Warmup: -1, Stats: st, Parallelism: parallelism}
	tables := make(map[string]*Table, len(determinismIDs))
	for _, id := range determinismIDs {
		e, ok := Get(id)
		if !ok {
			t.Fatalf("experiment %s not registered", id)
		}
		tables[id] = e.Run(cfg)
	}
	snap := st.Snapshot()
	for name := range snap {
		if strings.HasPrefix(name, "par.") {
			delete(snap, name)
		}
	}
	return tables, snap
}

// stableRender renders a table with every volatile cell blanked, giving the
// byte string that must not move with the worker count.
func stableRender(tbl *Table) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s | %s\n", tbl.ID, tbl.Title)
	fmt.Fprintln(&b, strings.Join(tbl.Columns, " | "))
	for _, row := range tbl.Rows {
		cells := make([]string, len(row))
		for i, cell := range row {
			if i < len(tbl.Columns) && volatileColumn(tbl.Columns[i]) {
				cells[i] = "_"
			} else {
				cells[i] = cell
			}
		}
		fmt.Fprintln(&b, strings.Join(cells, " | "))
	}
	for _, n := range tbl.Notes {
		fmt.Fprintln(&b, "note:", n)
	}
	return b.String()
}

func formatSnapshot(snap map[string]int64) string {
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "%s=%d\n", n, snap[n])
	}
	return b.String()
}

func TestDeterminismUnderParallelism(t *testing.T) {
	baseTables, baseSnap := runAt(t, 1)
	for _, par := range []int{2, 8} {
		par := par
		t.Run(fmt.Sprintf("parallelism=%d", par), func(t *testing.T) {
			tables, snap := runAt(t, par)
			for _, id := range determinismIDs {
				want, got := stableRender(baseTables[id]), stableRender(tables[id])
				if want != got {
					t.Errorf("%s table differs between parallelism 1 and %d:\n--- parallelism 1\n%s\n--- parallelism %d\n%s",
						id, par, want, par, got)
				}
			}
			if want, got := formatSnapshot(baseSnap), formatSnapshot(snap); want != got {
				t.Errorf("non-par.* counters differ between parallelism 1 and %d:\n--- parallelism 1\n%s\n--- parallelism %d\n%s",
					par, want, par, got)
			}
		})
	}
}
