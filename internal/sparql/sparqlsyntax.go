package sparql

import (
	"fmt"

	"wdpt/internal/core"
	"wdpt/internal/cq"
	"wdpt/internal/uwdpt"
)

// ParseSPARQL parses queries in the W3C-flavored surface syntax that the
// paper's {AND, OPT} algebra abstracts (its footnote 1 contrasts the two):
//
//	SELECT ?y ?z WHERE {
//	    ?x recorded_by ?y .
//	    ?x published "after_2010" .
//	    OPTIONAL { ?x rating ?z }
//	    OPTIONAL { ?y formed_in ?zp . OPTIONAL { ?zp decade ?d } }
//	}
//
// Triples are subject-predicate-object terms separated by whitespace and
// terminated by '.' (optional before '}' or OPTIONAL); OPTIONAL groups nest
// arbitrarily. `SELECT *` (or omitting SELECT) keeps all variables. Triples
// become atoms of the relation named by TripleRelation; predicates may be
// variables, as usual in SPARQL. The pattern is converted through the
// {AND, OPT} algebra, so non-well-designed queries are rejected with the
// offending variable named.
func ParseSPARQL(src string) (*core.PatternTree, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	tree, err := p.sparqlQuery()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokEOF, "end of input"); err != nil {
		return nil, err
	}
	return tree, nil
}

// ParseSPARQLUnion parses SPARQL-syntax queries separated by top-level
// UNION keywords.
func ParseSPARQLUnion(src string) (*uwdpt.Union, error) {
	parts := splitTopLevel(src, "UNION")
	var trees []*core.PatternTree
	for _, part := range parts {
		t, err := ParseSPARQL(part)
		if err != nil {
			return nil, err
		}
		trees = append(trees, t)
	}
	return uwdpt.New(trees...)
}

// TripleRelation is the relation symbol given to parsed SPARQL triples,
// matching the triple-pattern sugar of ParsePattern.
const TripleRelation = "triple"

func (p *parser) sparqlQuery() (*core.PatternTree, error) {
	var free []string
	selectAll := true
	if p.accept(tokSelect) {
		if p.at(tokIdent) && p.peek().text == "*" {
			p.next()
		} else if p.at(tokVar) {
			selectAll = false
			for p.at(tokVar) {
				free = append(free, p.next().text)
				p.accept(tokComma)
			}
		}
		if _, err := p.expect(tokWhere, "WHERE"); err != nil {
			return nil, err
		}
	}
	group, err := p.sparqlGroup()
	if err != nil {
		return nil, err
	}
	if selectAll {
		return ToWDPT(group, nil)
	}
	return ToWDPT(group, free)
}

// sparqlGroup parses "{ triples and OPTIONAL groups }" into the algebra:
// the mandatory triples joined by AND, each OPTIONAL attached by OPT in
// order of appearance.
func (p *parser) sparqlGroup() (Expr, error) {
	if _, err := p.expect(tokLBrace, "'{'"); err != nil {
		return nil, err
	}
	var mandatory Expr
	var optionals []Expr
	for {
		switch {
		case p.accept(tokRBrace):
			if mandatory == nil {
				return nil, fmt.Errorf("sparql: a group needs at least one mandatory triple")
			}
			e := mandatory
			for _, o := range optionals {
				e = &OptExpr{L: e, R: o}
			}
			return e, nil
		case p.at(tokOpt): // the lexer classifies OPTIONAL (any case) as tokOpt
			p.next()
			inner, err := p.sparqlGroup()
			if err != nil {
				return nil, err
			}
			optionals = append(optionals, inner)
		case p.at(tokEOF):
			return nil, fmt.Errorf("sparql: unterminated group (missing '}')")
		default:
			triple, err := p.sparqlTriple()
			if err != nil {
				return nil, err
			}
			if mandatory == nil {
				mandatory = triple
			} else {
				mandatory = &AndExpr{L: mandatory, R: triple}
			}
			p.accept(tokDot)
		}
	}
}

// sparqlTriple parses three whitespace-separated terms.
func (p *parser) sparqlTriple() (Expr, error) {
	terms := make([]cq.Term, 3)
	for i := 0; i < 3; i++ {
		t, ok := p.tryTerm()
		if !ok {
			return nil, fmt.Errorf("sparql: expected a triple term, found %s", p.peek())
		}
		terms[i] = t
	}
	return &AtomExpr{Atom: cq.NewAtom(TripleRelation, terms...)}, nil
}
