package sparql

import (
	"fmt"
	"strings"
	"unicode/utf8"

	"wdpt/internal/core"
	"wdpt/internal/cq"
	"wdpt/internal/db"
	"wdpt/internal/uwdpt"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

func newParser(src string) (*parser, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	return &parser{toks: toks}, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) at(k tokenKind) bool {
	return p.peek().kind == k
}
func (p *parser) accept(k tokenKind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}
func (p *parser) expect(k tokenKind, what string) (token, error) {
	if !p.at(k) {
		return token{}, fmt.Errorf("sparql: expected %s, found %s", what, p.peek())
	}
	return p.next(), nil
}

// ParsePattern parses an {AND, OPT} pattern expression, e.g.
//
//	((rec_by(?x, ?y) AND publ(?x, "after_2010")) OPT rating(?x, ?z))
//
// Triple patterns (?x, p, ?y) are sugar for triple(?x, p, ?y). AND binds
// tighter than OPT; both associate to the left.
func ParsePattern(src string) (Expr, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	e, err := p.pattern()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokEOF, "end of input"); err != nil {
		return nil, err
	}
	return e, nil
}

// pattern := andPattern (OPT andPattern)*
func (p *parser) pattern() (Expr, error) {
	left, err := p.andPattern()
	if err != nil {
		return nil, err
	}
	for p.accept(tokOpt) {
		right, err := p.andPattern()
		if err != nil {
			return nil, err
		}
		left = &OptExpr{L: left, R: right}
	}
	return left, nil
}

// andPattern := unit (AND unit)*
func (p *parser) andPattern() (Expr, error) {
	left, err := p.unit()
	if err != nil {
		return nil, err
	}
	for p.accept(tokAnd) {
		right, err := p.unit()
		if err != nil {
			return nil, err
		}
		left = &AndExpr{L: left, R: right}
	}
	return left, nil
}

// unit := atom | tripleSugar | '(' pattern ')'
func (p *parser) unit() (Expr, error) {
	switch p.peek().kind {
	case tokIdent:
		a, err := p.atom()
		if err != nil {
			return nil, err
		}
		return &AtomExpr{Atom: a}, nil
	case tokLParen:
		// Either a parenthesized pattern or a triple pattern (t, t, t).
		save := p.pos
		p.next()
		if trip, ok := p.tryTriple(); ok {
			return &AtomExpr{Atom: trip}, nil
		}
		p.pos = save
		p.next() // re-consume '('
		e, err := p.pattern()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, fmt.Errorf("sparql: expected an atom or '(', found %s", p.peek())
}

// tryTriple attempts to parse "t, t, t)" after a consumed '(' and reports
// success; on failure the caller restores the position.
func (p *parser) tryTriple() (cq.Atom, bool) {
	var terms []cq.Term
	for i := 0; i < 3; i++ {
		t, ok := p.tryTerm()
		if !ok {
			return cq.Atom{}, false
		}
		terms = append(terms, t)
		if i < 2 && !p.accept(tokComma) {
			return cq.Atom{}, false
		}
	}
	if !p.accept(tokRParen) {
		return cq.Atom{}, false
	}
	return cq.NewAtom("triple", terms...), true
}

func (p *parser) tryTerm() (cq.Term, bool) {
	switch p.peek().kind {
	case tokVar:
		return cq.V(p.next().text), true
	case tokIdent:
		// A bare identifier followed by '(' is a relation, not a term.
		if p.toks[p.pos+1].kind == tokLParen {
			return cq.Term{}, false
		}
		return cq.C(p.next().text), true
	case tokString:
		return cq.C(p.next().text), true
	}
	return cq.Term{}, false
}

// atom := ident '(' term (',' term)* ')'  |  ident '(' ')' is rejected:
// relations have positive arity, except the vacuous marker true().
func (p *parser) atom() (cq.Atom, error) {
	rel, err := p.expect(tokIdent, "a relation name")
	if err != nil {
		return cq.Atom{}, err
	}
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return cq.Atom{}, err
	}
	var terms []cq.Term
	if !p.accept(tokRParen) {
		for {
			t, ok := p.tryTerm()
			if !ok {
				return cq.Atom{}, fmt.Errorf("sparql: expected a term in %s(...), found %s", rel.text, p.peek())
			}
			terms = append(terms, t)
			if p.accept(tokRParen) {
				break
			}
			if _, err := p.expect(tokComma, "',' or ')'"); err != nil {
				return cq.Atom{}, err
			}
		}
	}
	return cq.NewAtom(rel.text, terms...), nil
}

// ParseQuery parses a full query:
//
//	SELECT ?y ?z WHERE <pattern>
//
// or a bare pattern (then projection-free). It validates well-designedness
// and returns the pattern tree.
func ParseQuery(src string) (*core.PatternTree, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	tree, err := p.query()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokEOF, "end of input"); err != nil {
		return nil, err
	}
	return tree, nil
}

func (p *parser) query() (*core.PatternTree, error) {
	var free []string
	if p.accept(tokSelect) {
		for p.at(tokVar) {
			free = append(free, p.next().text)
			p.accept(tokComma)
		}
		if len(free) == 0 {
			return nil, fmt.Errorf("sparql: SELECT needs at least one ?variable")
		}
		if _, err := p.expect(tokWhere, "WHERE"); err != nil {
			return nil, err
		}
	}
	e, err := p.pattern()
	if err != nil {
		return nil, err
	}
	return ToWDPT(e, free)
}

// ParseUnionQuery parses a union of queries separated by UNION:
//
//	SELECT ?x WHERE <pattern> UNION SELECT ?y WHERE <pattern> ...
func ParseUnionQuery(src string) (*uwdpt.Union, error) {
	parts := splitTopLevel(src, "UNION")
	var trees []*core.PatternTree
	for _, part := range parts {
		t, err := ParseQuery(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		trees = append(trees, t)
	}
	return uwdpt.New(trees...)
}

// splitTopLevel splits src on the keyword outside parentheses and braces.
func splitTopLevel(src, keyword string) []string {
	var parts []string
	depth := 0
	last := 0
	upper := strings.ToUpper(src)
	for i := 0; i < len(src); i++ {
		switch src[i] {
		case '(', '{':
			depth++
		case ')', '}':
			depth--
		}
		if depth == 0 && strings.HasPrefix(upper[i:], keyword) {
			prev, _ := utf8.DecodeLastRuneInString(src[:i])
			before := i == 0 || !isIdentPart(prev)
			afterIdx := i + len(keyword)
			next, _ := utf8.DecodeRuneInString(src[afterIdx:])
			after := afterIdx >= len(src) || !isIdentPart(next)
			if before && after {
				parts = append(parts, src[last:i])
				last = afterIdx
				i = afterIdx - 1
			}
		}
	}
	parts = append(parts, src[last:])
	return parts
}

// ParseWDPT parses the explicit tree format produced by Format:
//
//	ANS(?x, ?y)
//	{ R(?x, ?y), S(?x)
//	  { T(?y, ?z) }
//	}
func ParseWDPT(src string) (*core.PatternTree, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokAns, "ANS"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	var free []string
	if !p.accept(tokRParen) {
		for {
			v, err := p.expect(tokVar, "a ?variable")
			if err != nil {
				return nil, err
			}
			free = append(free, v.text)
			if p.accept(tokRParen) {
				break
			}
			if _, err := p.expect(tokComma, "',' or ')'"); err != nil {
				return nil, err
			}
		}
	}
	spec, err := p.nodeSpec()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokEOF, "end of input"); err != nil {
		return nil, err
	}
	return core.New(spec, free)
}

func (p *parser) nodeSpec() (core.NodeSpec, error) {
	if _, err := p.expect(tokLBrace, "'{'"); err != nil {
		return core.NodeSpec{}, err
	}
	var spec core.NodeSpec
	for {
		switch p.peek().kind {
		case tokRBrace:
			p.next()
			return spec, nil
		case tokLBrace:
			child, err := p.nodeSpec()
			if err != nil {
				return core.NodeSpec{}, err
			}
			spec.Children = append(spec.Children, child)
		case tokIdent:
			a, err := p.atom()
			if err != nil {
				return core.NodeSpec{}, err
			}
			spec.Atoms = append(spec.Atoms, a)
			p.accept(tokComma)
		default:
			return core.NodeSpec{}, fmt.Errorf("sparql: expected an atom, '{' or '}', found %s", p.peek())
		}
	}
}

// ParseDatabase parses a line-oriented database file: one ground atom per
// statement, e.g.
//
//	recorded_by(Our_love, Caribou).
//	rating("Swim", "2")
//
// The trailing dot is optional; '#' starts a comment.
func ParseDatabase(src string) (*db.Database, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	d := db.New()
	for !p.at(tokEOF) {
		rel, err := p.expect(tokIdent, "a relation name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokLParen, "'('"); err != nil {
			return nil, err
		}
		var vals []string
		for {
			switch p.peek().kind {
			case tokIdent, tokString:
				vals = append(vals, p.next().text)
			case tokVar:
				return nil, fmt.Errorf("sparql: database atoms must be ground, found ?%s", p.peek().text)
			default:
				return nil, fmt.Errorf("sparql: expected a constant in %s(...), found %s", rel.text, p.peek())
			}
			if p.accept(tokRParen) {
				break
			}
			if _, err := p.expect(tokComma, "',' or ')'"); err != nil {
				return nil, err
			}
		}
		p.accept(tokDot)
		if r := d.Relation(rel.text); r != nil && r.Arity() != len(vals) {
			return nil, fmt.Errorf("sparql: %s used with arity %d and %d", rel.text, r.Arity(), len(vals))
		}
		d.Insert(rel.text, vals...)
	}
	d.Seal()
	return d, nil
}
