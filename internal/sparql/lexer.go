// Package sparql provides query-language tooling around WDPTs: a parser for
// an algebraic {AND, OPT} pattern syntax in the style of Pérez et al. [18]
// (over relational atoms or RDF triple patterns), the well-designedness
// check for such patterns, their conversion to pattern trees via OPT normal
// form, a direct text format for WDPTs, and a line-based database format.
package sparql

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokComma
	tokDot
	tokVar    // ?name
	tokIdent  // bare identifier (relation or constant)
	tokString // "quoted constant"
	tokAnd    // AND
	tokOpt    // OPT
	tokAns    // ANS
	tokSelect // SELECT
	tokWhere  // WHERE
	tokUnion  // UNION
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokVar:
		return "?" + t.text
	case tokString:
		return fmt.Sprintf("%q", t.text)
	default:
		return t.text
	}
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input up front.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, tok)
		if tok.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '#': // comment to end of line
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, pos: l.pos}, nil

scan:
	start := l.pos
	c := l.src[l.pos]
	switch c {
	case '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case '{':
		l.pos++
		return token{tokLBrace, "{", start}, nil
	case '}':
		l.pos++
		return token{tokRBrace, "}", start}, nil
	case ',':
		l.pos++
		return token{tokComma, ",", start}, nil
	case '.':
		l.pos++
		return token{tokDot, ".", start}, nil
	case '*':
		l.pos++
		return token{tokIdent, "*", start}, nil
	case '?':
		l.pos++
		name := l.ident()
		if name == "" {
			return token{}, fmt.Errorf("sparql: position %d: '?' must be followed by a variable name", start)
		}
		return token{tokVar, name, start}, nil
	case '"':
		l.pos++
		var b strings.Builder
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			if l.src[l.pos] == '\\' && l.pos+1 < len(l.src) {
				l.pos++
			}
			b.WriteByte(l.src[l.pos])
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, fmt.Errorf("sparql: position %d: unterminated string", start)
		}
		l.pos++
		return token{tokString, b.String(), start}, nil
	}
	if r, _ := utf8.DecodeRuneInString(l.src[l.pos:]); isIdentStart(r) || unicode.IsDigit(r) {
		word := l.ident()
		switch strings.ToUpper(word) {
		case "AND":
			return token{tokAnd, word, start}, nil
		case "OPT", "OPTIONAL":
			return token{tokOpt, word, start}, nil
		case "ANS":
			return token{tokAns, word, start}, nil
		case "SELECT":
			return token{tokSelect, word, start}, nil
		case "WHERE":
			return token{tokWhere, word, start}, nil
		case "UNION":
			return token{tokUnion, word, start}, nil
		}
		return token{tokIdent, word, start}, nil
	}
	return token{}, fmt.Errorf("sparql: position %d: unexpected character %q", start, c)
}

func (l *lexer) ident() string {
	start := l.pos
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !isIdentPart(r) {
			break
		}
		l.pos += size
	}
	return l.src[start:l.pos]
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}
