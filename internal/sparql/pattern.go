package sparql

import (
	"fmt"
	"sort"
	"strings"

	"wdpt/internal/core"
	"wdpt/internal/cq"
	"wdpt/internal/db"
)

// Expr is an {AND, OPT} pattern expression (Section 1, query (1) style).
type Expr interface {
	// String renders the expression in the algebraic notation.
	String() string
	vars(set map[string]bool)
}

// AtomExpr is a leaf pattern: a relational atom or triple pattern.
type AtomExpr struct{ Atom cq.Atom }

// AndExpr is the conjunction P1 AND P2.
type AndExpr struct{ L, R Expr }

// OptExpr is the optional match P1 OPT P2.
type OptExpr struct{ L, R Expr }

func (e *AtomExpr) String() string { return e.Atom.String() }
func (e *AndExpr) String() string  { return fmt.Sprintf("(%s AND %s)", e.L, e.R) }
func (e *OptExpr) String() string  { return fmt.Sprintf("(%s OPT %s)", e.L, e.R) }

func (e *AtomExpr) vars(set map[string]bool) {
	for _, v := range e.Atom.Vars() {
		set[v] = true
	}
}
func (e *AndExpr) vars(set map[string]bool) { e.L.vars(set); e.R.vars(set) }
func (e *OptExpr) vars(set map[string]bool) { e.L.vars(set); e.R.vars(set) }

// Vars returns the variables of the expression.
func Vars(e Expr) []string {
	set := make(map[string]bool)
	e.vars(set)
	var out []string
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// IsWellDesigned checks the condition of Pérez et al. [18]: for every
// subexpression (P1 OPT P2) of e, every variable occurring inside P2 and
// somewhere in e outside the subexpression also occurs in P1. It returns a
// descriptive error naming the offending variable otherwise.
func IsWellDesigned(e Expr) error {
	return checkWD(e, e)
}

func checkWD(whole, e Expr) error {
	switch x := e.(type) {
	case *AtomExpr:
		return nil
	case *AndExpr:
		if err := checkWD(whole, x.L); err != nil {
			return err
		}
		return checkWD(whole, x.R)
	case *OptExpr:
		inner := make(map[string]bool)
		x.R.vars(inner)
		left := make(map[string]bool)
		x.L.vars(left)
		outside := make(map[string]bool)
		collectOutside(whole, x, outside)
		for v := range inner {
			if outside[v] && !left[v] {
				return fmt.Errorf("sparql: not well-designed: variable ?%s occurs in the optional part of %s and outside it, but not in its mandatory part", v, x)
			}
		}
		if err := checkWD(whole, x.L); err != nil {
			return err
		}
		return checkWD(whole, x.R)
	}
	return fmt.Errorf("sparql: unknown expression %T", e)
}

// collectOutside gathers the variables of whole occurring outside the
// subexpression sub (compared by identity of the OptExpr value).
func collectOutside(whole Expr, sub *OptExpr, out map[string]bool) {
	switch x := whole.(type) {
	case *AtomExpr:
		x.vars(out)
	case *AndExpr:
		collectOutside(x.L, sub, out)
		collectOutside(x.R, sub, out)
	case *OptExpr:
		if x == sub {
			return
		}
		collectOutside(x.L, sub, out)
		collectOutside(x.R, sub, out)
	}
}

// OptNormalForm rewrites a well-designed expression so that no OPT occurs
// inside an AND, using the equivalences (valid for well-designed patterns,
// [18]): ((A OPT B) AND C) ≡ ((A AND C) OPT B) and
// (A AND (B OPT C)) ≡ ((A AND B) OPT C).
func OptNormalForm(e Expr) Expr {
	switch x := e.(type) {
	case *AtomExpr:
		return x
	case *OptExpr:
		return &OptExpr{L: OptNormalForm(x.L), R: OptNormalForm(x.R)}
	case *AndExpr:
		l := OptNormalForm(x.L)
		r := OptNormalForm(x.R)
		return andCombine(l, r)
	}
	//lint:ignore R2 exhaustive type switch over the sealed Expr interface
	panic(fmt.Sprintf("sparql: unknown expression %T", e))
}

func andCombine(l, r Expr) Expr {
	if lo, ok := l.(*OptExpr); ok {
		return &OptExpr{L: andCombine(lo.L, r), R: lo.R}
	}
	if ro, ok := r.(*OptExpr); ok {
		return &OptExpr{L: andCombine(l, ro.L), R: ro.R}
	}
	return &AndExpr{L: l, R: r}
}

// ToWDPT converts a well-designed pattern expression (with the given free
// variables; nil means projection-free) into a pattern tree, via OPT normal
// form. The construction mirrors [17]: the pure-AND part of the normal form
// labels a node, each top-level OPT hangs a child subtree.
func ToWDPT(e Expr, free []string) (*core.PatternTree, error) {
	if err := IsWellDesigned(e); err != nil {
		return nil, err
	}
	norm := OptNormalForm(e)
	spec := buildSpec(norm)
	if free == nil {
		free = Vars(e)
	}
	return core.New(spec, free)
}

func buildSpec(e Expr) core.NodeSpec {
	switch x := e.(type) {
	case *AtomExpr:
		return core.NodeSpec{Atoms: []cq.Atom{x.Atom}}
	case *AndExpr:
		l, r := buildSpec(x.L), buildSpec(x.R)
		return core.NodeSpec{
			Atoms:    append(append([]cq.Atom(nil), l.Atoms...), r.Atoms...),
			Children: append(append([]core.NodeSpec(nil), l.Children...), r.Children...),
		}
	case *OptExpr:
		l := buildSpec(x.L)
		l.Children = append(l.Children, buildSpec(x.R))
		return l
	}
	//lint:ignore R2 exhaustive type switch over the sealed Expr interface
	panic(fmt.Sprintf("sparql: unknown expression %T", e))
}

// FromWDPT renders a pattern tree back as an algebraic expression: node
// atoms joined by AND, children attached by OPT (children after their
// parent's conjunction, depth-first).
func FromWDPT(p *core.PatternTree) Expr {
	var build func(n *core.Node) Expr
	build = func(n *core.Node) Expr {
		var e Expr
		for _, a := range n.Atoms() {
			if e == nil {
				e = &AtomExpr{Atom: a}
			} else {
				e = &AndExpr{L: e, R: &AtomExpr{Atom: a}}
			}
		}
		if e == nil {
			// An empty label is not expressible as a pattern; use a
			// vacuous marker that parses back.
			e = &AtomExpr{Atom: cq.NewAtom("true")}
		}
		for _, c := range n.Children() {
			e = &OptExpr{L: e, R: build(c)}
		}
		return e
	}
	return build(p.Root())
}

// Format renders a pattern tree in the ANS(...) { ... } text format
// accepted by ParseWDPT.
func Format(p *core.PatternTree) string {
	var b strings.Builder
	b.WriteString("ANS(")
	for i, x := range p.Free() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("?" + x)
	}
	b.WriteString(")\n")
	var walk func(n *core.Node, indent string)
	walk = func(n *core.Node, indent string) {
		b.WriteString(indent + "{")
		for i, a := range n.Atoms() {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(" " + formatAtom(a))
		}
		if len(n.Children()) == 0 {
			b.WriteString(" }\n")
			return
		}
		b.WriteString("\n")
		for _, c := range n.Children() {
			walk(c, indent+"  ")
		}
		b.WriteString(indent + "}\n")
	}
	walk(p.Root(), "")
	return b.String()
}

// formatAtom renders an atom so that ParseWDPT can read it back: constants
// that are not bare identifiers are quoted with escapes.
func formatAtom(a cq.Atom) string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = formatTerm(t)
	}
	return a.Rel + "(" + strings.Join(parts, ", ") + ")"
}

func formatTerm(t cq.Term) string {
	if t.IsVar() {
		return "?" + t.Value()
	}
	v := t.Value()
	bare := v != ""
	for _, r := range v {
		if !isIdentPart(r) {
			bare = false
			break
		}
	}
	if bare {
		return v
	}
	escaped := strings.ReplaceAll(v, `\`, `\\`)
	escaped = strings.ReplaceAll(escaped, `"`, `\"`)
	return `"` + escaped + `"`
}

// FormatDatabase renders a database in the line format accepted by
// ParseDatabase, quoting constants that are not bare identifiers. Round
// trips exactly: ParseDatabase(FormatDatabase(d)) equals d.
func FormatDatabase(d *db.Database) string {
	var b strings.Builder
	for _, r := range d.Relations() {
		for _, tp := range r.Tuples() {
			b.WriteString(r.Name())
			b.WriteByte('(')
			for i, c := range tp {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(formatTerm(cq.C(c)))
			}
			b.WriteString(").\n")
		}
	}
	return b.String()
}
