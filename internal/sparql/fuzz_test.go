package sparql

import "testing"

// Fuzz targets: the parsers must never panic and, when they accept an
// input, the result must round-trip through the printer. Without -fuzz
// these run their seed corpora as regular tests.

func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		`a(?x)`,
		`SELECT ?x WHERE a(?x) OPT b(?x, ?y)`,
		`((?s, p, ?o)) AND knows(?o, ?w)`,
		`(a(?x) AND b(?x)) OPT (c(?x, ?y) OPT d(?y))`,
		`SELECT ?x WHERE a(?x) UNION garbage`,
		`a("quoted \" escape")`,
		`a(?x,, )`,
		`(((((`,
		`ANS(?x) { a(?x) }`,
		"a(?x) # comment\nAND b(?x)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ParseQuery(src)
		if err != nil || p == nil {
			return
		}
		// Accepted queries re-render and re-parse to the same tree.
		again, err := ParseWDPT(Format(p))
		if err != nil {
			t.Fatalf("Format output unparseable: %v\ninput: %q\nformat:\n%s", err, src, Format(p))
		}
		if again.String() != p.String() {
			t.Fatalf("round trip changed tree for %q", src)
		}
	})
}

func FuzzParseWDPT(f *testing.F) {
	seeds := []string{
		`ANS(?x) { a(?x) }`,
		`ANS() { a(c) { b(?y) } }`,
		`ANS(?x, ?y) { r(?x, ?y) { s(?x) } { t(?y) } }`,
		`ANS(?x) { }`,
		`ANS(?x { a(?x) }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ParseWDPT(src)
		if err != nil || p == nil {
			return
		}
		if _, err := ParseWDPT(Format(p)); err != nil {
			t.Fatalf("Format output unparseable: %v for %q", err, src)
		}
	})
}

func FuzzParseDatabase(f *testing.F) {
	seeds := []string{
		`a(1). b(1, 2).`,
		`rel("with space", x)`,
		`# only a comment`,
		`broken(`,
		`a(1) a(2) a(3)`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		d, err := ParseDatabase(src)
		if err != nil {
			return
		}
		if d == nil {
			t.Fatal("nil database without error")
		}
		_ = d.Size()
	})
}
