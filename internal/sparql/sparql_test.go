package sparql

import (
	"strings"
	"testing"

	"wdpt/internal/db"
	"wdpt/internal/gen"
	"wdpt/internal/subsume"
)

func TestParsePatternRelational(t *testing.T) {
	e, err := ParsePattern(`((rec_by(?x, ?y) AND publ(?x, "after_2010")) OPT rating(?x, ?z)) OPT formed_in(?y, ?zp)`)
	if err != nil {
		t.Fatal(err)
	}
	if err := IsWellDesigned(e); err != nil {
		t.Fatal(err)
	}
	vars := Vars(e)
	if len(vars) != 4 {
		t.Fatalf("vars = %v", vars)
	}
	tree, err := ToWDPT(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumNodes() != 3 {
		t.Fatalf("tree nodes = %d, want 3:\n%s", tree.NumNodes(), tree)
	}
}

func TestParsePatternTriples(t *testing.T) {
	// Example 1 in triple syntax over a single ternary relation.
	e, err := ParsePattern(`((?x, recorded_by, ?y) AND (?x, published, "after_2010"))
		OPT (?x, NME_rating, ?z)`)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := ToWDPT(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumNodes() != 2 {
		t.Fatalf("tree nodes = %d, want 2", tree.NumNodes())
	}
	for _, a := range tree.AllAtoms() {
		if a.Rel != "triple" || len(a.Args) != 3 {
			t.Fatalf("triple pattern parsed wrong: %v", a)
		}
	}
}

func TestWellDesignednessViolation(t *testing.T) {
	// ?z in the optional part and outside, but not in the mandatory part.
	e, err := ParsePattern(`(a(?x) OPT b(?z)) AND c(?z)`)
	if err != nil {
		t.Fatal(err)
	}
	if err := IsWellDesigned(e); err == nil {
		t.Fatal("violation not detected")
	}
	if _, err := ToWDPT(e, nil); err == nil {
		t.Fatal("ToWDPT must reject non-well-designed patterns")
	}
}

func TestOptNormalForm(t *testing.T) {
	// (a(?x) OPT b(?x, ?y)) AND c(?x): well-designed; normal form pulls
	// the OPT outside.
	e, err := ParsePattern(`(a(?x) OPT b(?x, ?y)) AND c(?x)`)
	if err != nil {
		t.Fatal(err)
	}
	if err := IsWellDesigned(e); err != nil {
		t.Fatal(err)
	}
	n := OptNormalForm(e)
	top, ok := n.(*OptExpr)
	if !ok {
		t.Fatalf("normal form top is %T, want OPT", n)
	}
	if _, isAnd := top.L.(*AndExpr); !isAnd {
		t.Fatalf("normal form left is %T, want AND", top.L)
	}
	tree, err := ToWDPT(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumNodes() != 2 || len(tree.Root().Atoms()) != 2 {
		t.Fatalf("tree shape wrong:\n%s", tree)
	}
}

func TestOptNormalFormPreservesSemantics(t *testing.T) {
	// The pattern before and after normalization must be subsumption-
	// equivalent as WDPTs (here: equal, since ToWDPT normalizes anyway —
	// compare against the nested construction evaluated directly).
	src := `(a(?x) OPT (b(?x, ?y) OPT c(?y, ?z))) AND d(?x, ?w)`
	e, err := ParsePattern(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := IsWellDesigned(e); err != nil {
		t.Fatal(err)
	}
	tree, err := ToWDPT(e, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate on a small database; answers must respect optionality.
	d, err := ParseDatabase(`
		a(1). d(1, 9).
		b(1, 2). c(2, 3).
		a(5). d(5, 9).
	`)
	if err != nil {
		t.Fatal(err)
	}
	answers := tree.Evaluate(d)
	want := map[string]bool{
		"x=1,y=2,z=3,w=9": true,
		"x=5,w=9":         true,
	}
	if len(answers) != len(want) {
		t.Fatalf("answers = %v", answers)
	}
}

func TestParseQuerySelect(t *testing.T) {
	tree, err := ParseQuery(`SELECT ?y ?z WHERE
		(rec_by(?x, ?y) AND publ(?x, "after_2010")) OPT rating(?x, ?z)`)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Free(); len(got) != 2 || got[0] != "y" || got[1] != "z" {
		t.Fatalf("free = %v", got)
	}
	if tree.IsProjectionFree() {
		t.Fatal("projected query reported projection-free")
	}
	// SELECT of a variable not in the pattern fails.
	if _, err := ParseQuery(`SELECT ?nope WHERE a(?x)`); err == nil {
		t.Fatal("unknown SELECT variable accepted")
	}
}

func TestParseQueryAgainstMusicFixture(t *testing.T) {
	tree, err := ParseQuery(`
		(recorded_by(?x, ?y) AND published(?x, "after_2010"))
		OPT rating(?x, ?z) OPT formed_in(?y, ?zp)`)
	if err != nil {
		t.Fatal(err)
	}
	ref := gen.MusicWDPT("x", "y", "z", "zp")
	if !subsume.Equivalent(tree, ref, subsume.Options{}) {
		t.Fatalf("parsed tree differs from fixture:\n%s\nvs\n%s", tree, ref)
	}
}

func TestParseUnionQuery(t *testing.T) {
	u, err := ParseUnionQuery(`
		SELECT ?x WHERE e(?x, ?y)
		UNION
		SELECT ?x WHERE f(?x)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Trees()) != 2 {
		t.Fatalf("union members = %d, want 2", len(u.Trees()))
	}
	// The keyword must not split inside identifiers.
	u2, err := ParseUnionQuery(`SELECT ?x WHERE reunion_tour(?x)`)
	if err != nil || len(u2.Trees()) != 1 {
		t.Fatalf("identifier containing 'union' split: %v, %d members", err, len(u2.Trees()))
	}
}

func TestWDPTFormatRoundTrip(t *testing.T) {
	trees := []string{
		`ANS(?x, ?y)
		 { rec_by(?x, ?y), publ(?x, "after_2010")
		   { rating(?x, ?z) }
		   { formed_in(?y, ?zp) }
		 }`,
		`ANS() { a(c0) }`,
		`ANS(?v) { e(?v, ?v) { f(?v, ?w) { g(?w) } } }`,
	}
	for i, src := range trees {
		p1, err := ParseWDPT(src)
		if err != nil {
			t.Fatalf("tree %d: %v", i, err)
		}
		p2, err := ParseWDPT(Format(p1))
		if err != nil {
			t.Fatalf("tree %d: round-trip parse: %v\n%s", i, err, Format(p1))
		}
		if p1.String() != p2.String() {
			t.Fatalf("tree %d: round trip changed the tree:\n%s\nvs\n%s", i, p1, p2)
		}
	}
}

func TestFromWDPTRoundTrip(t *testing.T) {
	p := gen.MusicWDPT("x", "y", "z", "zp")
	e := FromWDPT(p)
	back, err := ToWDPT(e, p.Free())
	if err != nil {
		t.Fatal(err)
	}
	if !subsume.Equivalent(p, back, subsume.Options{}) {
		t.Fatalf("FromWDPT/ToWDPT round trip not equivalent:\n%s\nvs\n%s", p, back)
	}
}

func TestParseDatabase(t *testing.T) {
	d, err := ParseDatabase(`
		# the Example 2 database
		recorded_by(Our_love, Caribou).
		published(Our_love, after_2010).
		recorded_by("Swim", "Caribou").
		rating(Swim, "2")
	`)
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 4 {
		t.Fatalf("size = %d, want 4", d.Size())
	}
	if !d.Contains("rating", "Swim", "2") {
		t.Fatal("quoted/unquoted constants must coincide")
	}
	if _, err := ParseDatabase(`r(?x)`); err == nil {
		t.Fatal("variables in a database must be rejected")
	}
	if _, err := ParseDatabase(`r(a`); err == nil {
		t.Fatal("unterminated atom accepted")
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{`a(?)`, `a("unterminated`, "a(%)"} {
		if _, err := ParsePattern(src); err == nil {
			t.Fatalf("lexer accepted %q", src)
		}
	}
}

func TestParsePatternErrors(t *testing.T) {
	for _, src := range []string{
		``,            // empty
		`a(?x) AND`,   // dangling AND
		`a(?x) OPT`,   // dangling OPT
		`(a(?x)`,      // unclosed paren
		`a(?x) b(?y)`, // juxtaposition without operator
		`(?x, ?y)`,    // two-element tuple is neither triple nor group
		`AND a(?x)`,   // leading operator
		`a(?x,, ?y)`,  // double comma
	} {
		if _, err := ParsePattern(src); err == nil {
			t.Fatalf("parser accepted %q", src)
		}
	}
}

func TestTripleSugarMixed(t *testing.T) {
	// Triples and relational atoms can be mixed; parenthesized groups
	// still parse.
	e, err := ParsePattern(`((?s, p, ?o)) AND knows(?o, ?w)`)
	if err != nil {
		t.Fatal(err)
	}
	vars := Vars(e)
	if len(vars) != 3 {
		t.Fatalf("vars = %v", vars)
	}
}

func TestFormatShowsConstants(t *testing.T) {
	p := gen.MusicWDPT("x", "y")
	s := Format(p)
	if !strings.Contains(s, "after_2010") || !strings.Contains(s, "ANS(?x, ?y)") {
		t.Fatalf("format output missing pieces:\n%s", s)
	}
}

func TestEvaluateParsedTripleQuery(t *testing.T) {
	// End to end over a triple store: Example 1/2 in RDF form.
	tree, err := ParseQuery(`
		((?x, recorded_by, ?y) AND (?x, published, "after_2010"))
		OPT (?x, NME_rating, ?z)`)
	if err != nil {
		t.Fatal(err)
	}
	ts := cqTripleStore()
	answers := tree.Evaluate(ts)
	if len(answers) != 2 {
		t.Fatalf("answers = %v, want 2", answers)
	}
}

func cqTripleStore() *db.Database {
	d, err := ParseDatabase(`
		triple(Our_love, recorded_by, Caribou).
		triple(Our_love, published, after_2010).
		triple(Swim, recorded_by, Caribou).
		triple(Swim, published, after_2010).
		triple(Swim, NME_rating, "2").
	`)
	if err != nil {
		panic(err)
	}
	return d
}

func TestFormatDatabaseRoundTrip(t *testing.T) {
	d := db.New()
	d.Insert("R", "plain", "with space")
	d.Insert("S", `quote"inside`, `back\slash`)
	d.Insert("T", "123")
	out := FormatDatabase(d)
	back, err := ParseDatabase(out)
	if err != nil {
		t.Fatalf("round trip parse: %v\n%s", err, out)
	}
	if back.String() != d.String() {
		t.Fatalf("round trip changed the database:\n%s\nvs\n%s", back.String(), d.String())
	}
}

func TestParseSPARQLMusic(t *testing.T) {
	tree, err := ParseSPARQL(`SELECT ?x ?y ?z ?zp WHERE {
		?x recorded_by ?y .
		?x published "after_2010" .
		OPTIONAL { ?x rating ?z }
		OPTIONAL { ?y formed_in ?zp }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumNodes() != 3 {
		t.Fatalf("nodes = %d, want 3:\n%s", tree.NumNodes(), tree)
	}
	d, err := ParseDatabase(`
		triple(Our_love, recorded_by, Caribou).
		triple(Our_love, published, after_2010).
		triple(Swim, recorded_by, Caribou).
		triple(Swim, published, after_2010).
		triple(Swim, rating, "2").
	`)
	if err != nil {
		t.Fatal(err)
	}
	answers := tree.Evaluate(d)
	if len(answers) != 2 {
		t.Fatalf("answers = %v", answers)
	}
}

func TestParseSPARQLNestedOptional(t *testing.T) {
	tree, err := ParseSPARQL(`SELECT ?a ?c WHERE {
		?a p ?b .
		OPTIONAL { ?b q ?c . OPTIONAL { ?c r ?d } }
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumNodes() != 3 || tree.Depth() != 2 {
		t.Fatalf("shape: %d nodes depth %d:\n%s", tree.NumNodes(), tree.Depth(), tree)
	}
}

func TestParseSPARQLSelectStarAndBare(t *testing.T) {
	for _, src := range []string{
		`SELECT * WHERE { ?s ?p ?o }`,
		`{ ?s ?p ?o }`,
	} {
		tree, err := ParseSPARQL(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if !tree.IsProjectionFree() {
			t.Fatalf("%q should keep all variables", src)
		}
	}
}

func TestParseSPARQLPredicateVariable(t *testing.T) {
	tree, err := ParseSPARQL(`SELECT ?p WHERE { subj ?p obj }`)
	if err != nil {
		t.Fatal(err)
	}
	a := tree.AllAtoms()[0]
	if a.Rel != TripleRelation || !a.Args[1].IsVar() {
		t.Fatalf("atom = %v", a)
	}
}

func TestParseSPARQLWellDesignedness(t *testing.T) {
	// ?z appears in an OPTIONAL and in a later mandatory position of the
	// outer group — not well-designed... here simulate via two optionals
	// sharing ?z without anchoring.
	_, err := ParseSPARQL(`SELECT ?x WHERE {
		?x p ?y .
		OPTIONAL { ?y q ?z }
		OPTIONAL { ?z r ?w }
	}`)
	if err == nil {
		t.Fatal("non-well-designed SPARQL accepted")
	}
}

func TestParseSPARQLErrors(t *testing.T) {
	for _, src := range []string{
		`SELECT ?x WHERE { }`,                      // empty group
		`SELECT ?x WHERE { ?x p }`,                 // two-term triple
		`SELECT ?x WHERE { ?x p ?y`,                // unterminated
		`SELECT ?nope WHERE { ?x p ?y }`,           // unknown projection var
		`SELECT ?x WHERE { OPTIONAL { ?x p ?y } }`, // optional-only group
	} {
		if _, err := ParseSPARQL(src); err == nil {
			t.Fatalf("accepted %q", src)
		}
	}
}

func TestParseSPARQLUnion(t *testing.T) {
	u, err := ParseSPARQLUnion(`
		SELECT ?x WHERE { ?x a Band }
		UNION
		SELECT ?x WHERE { ?x a Artist }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Trees()) != 2 {
		t.Fatalf("members = %d", len(u.Trees()))
	}
}

func FuzzParseSPARQL(f *testing.F) {
	seeds := []string{
		`SELECT ?x WHERE { ?x p ?y . OPTIONAL { ?y q ?z } }`,
		`{ ?s ?p ?o }`,
		`SELECT * WHERE { a b c . d e f }`,
		`SELECT ?x WHERE { OPTIONAL { } }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ParseSPARQL(src)
		if err != nil {
			return
		}
		if p == nil {
			t.Fatal("nil tree without error")
		}
	})
}
