// Package rdf implements the RDF scenario of Section 2 of Barceló & Pichler
// (PODS 2015): WDPTs over the single ternary relation of the semantic web
// data model. The paper notes that all its results continue to hold there;
// this package makes the connection executable by encoding arbitrary
// relational databases and pattern trees into triple form (one reified
// tuple per fact) in an answer-preserving way, which the tests verify.
//
// A fact R(a1, ..., an) becomes the triples
//
//	(t, "a0", a1), ..., (t, "a<n-1>", an), (t, "rel", "R")
//
// for a fresh tuple identifier t; an atom R(v1, ..., vn) becomes the same
// pattern with a fresh existential tuple variable. Tuple variables are
// local to the node encoding the atom, so well-designedness is preserved,
// and answers project to the original free variables unchanged.
package rdf

import (
	"fmt"

	"wdpt/internal/core"
	"wdpt/internal/cq"
	"wdpt/internal/db"
)

// TripleRel is the single ternary relation symbol used by the encoding.
const TripleRel = "triple"

// relMarker is the property linking a tuple id to its relation symbol.
const relMarker = "rel"

// relValue namespaces relation symbols so they cannot collide with data
// constants.
func relValue(rel string) string { return "rel:" + rel }

func argProperty(i int) string { return fmt.Sprintf("a%d", i) }

// EncodeDatabase converts a relational database to a triple store: one
// fresh tuple identifier per fact.
func EncodeDatabase(d *db.Database) *db.Database {
	out := db.New()
	next := 0
	for _, r := range d.Relations() {
		dict := r.Dict()
		for t, n := 0, r.Len(); t < n; t++ {
			id := fmt.Sprintf("t%d", next)
			next++
			out.Insert(TripleRel, id, relMarker, relValue(r.Name()))
			for i, c := range r.Scan(t) {
				out.Insert(TripleRel, id, argProperty(i), dict.Term(c))
			}
		}
	}
	out.Seal()
	return out
}

// EncodeAtoms converts relational atoms to triple patterns. Tuple variables
// are generated with the given prefix so that distinct nodes of a pattern
// tree get disjoint tuple variables.
func EncodeAtoms(atoms []cq.Atom, prefix string) []cq.Atom {
	var out []cq.Atom
	for i, a := range atoms {
		id := cq.V(fmt.Sprintf("%s_tv%d", prefix, i))
		out = append(out, cq.NewAtom(TripleRel, id, cq.C(relMarker), cq.C(relValue(a.Rel))))
		for j, t := range a.Args {
			out = append(out, cq.NewAtom(TripleRel, id, cq.C(argProperty(j)), t))
		}
	}
	return out
}

// EncodeCQ converts a conjunctive query to the RDF vocabulary. The free
// variables are unchanged; tuple variables are existential.
func EncodeCQ(q *cq.CQ) *cq.CQ {
	return cq.MustNew(q.Free(), EncodeAtoms(q.Atoms(), "q"))
}

// Encode converts a relational pattern tree to an RDF pattern tree over the
// single ternary relation. Node structure and free variables are preserved;
// for every database D, p(D) equals Encode(p)(EncodeDatabase(D)) — the
// "all our results continue to hold in the RDF scenario" bridge, which the
// package tests check on the paper's examples and random instances.
func Encode(p *core.PatternTree) *core.PatternTree {
	var spec func(n *core.Node) core.NodeSpec
	spec = func(n *core.Node) core.NodeSpec {
		s := core.NodeSpec{Atoms: EncodeAtoms(n.Atoms(), fmt.Sprintf("n%d", n.ID()))}
		for _, c := range n.Children() {
			s.Children = append(s.Children, spec(c))
		}
		return s
	}
	return core.MustNew(spec(p.Root()), p.Free())
}

// IsRDF reports whether the tree mentions only the ternary triple relation,
// i.e. whether it is an RDF WDPT in the sense of Section 2.
func IsRDF(p *core.PatternTree) bool {
	for _, a := range p.AllAtoms() {
		if a.Rel != TripleRel || len(a.Args) != 3 {
			return false
		}
	}
	return true
}

// DropTupleVariables restricts mappings to the variables of the original
// tree, removing the encoding's tuple variables; answer mappings produced
// by evaluating an encoded tree against an encoded database never bind
// tuple variables on the free side, so this is only needed when inspecting
// full homomorphisms.
func DropTupleVariables(h cq.Mapping, original *core.PatternTree) cq.Mapping {
	keep := make(map[string]bool)
	for _, v := range original.Vars() {
		keep[v] = true
	}
	out := cq.Mapping{}
	for k, v := range h {
		if keep[k] {
			out[k] = v
		}
	}
	return out
}
