package rdf

import (
	"testing"
	"testing/quick"

	"wdpt/internal/cq"
	"wdpt/internal/cqeval"
	"wdpt/internal/db"
	"wdpt/internal/gen"
)

func TestEncodeDatabaseShape(t *testing.T) {
	d := db.New()
	d.Insert("R", "a", "b")
	d.Insert("S", "c")
	enc := EncodeDatabase(d)
	// R fact: 3 triples (rel + 2 args); S fact: 2 triples.
	if enc.Size() != 5 {
		t.Fatalf("encoded size = %d, want 5", enc.Size())
	}
	rel := enc.Relation(TripleRel)
	if rel == nil || rel.Arity() != 3 {
		t.Fatal("triples missing")
	}
}

func TestEncodeCQAnswersPreserved(t *testing.T) {
	q := cq.MustNew([]string{"x"}, []cq.Atom{
		cq.NewAtom("E", cq.V("x"), cq.V("y")),
		cq.NewAtom("E", cq.V("y"), cq.V("z")),
	})
	d := gen.ChainDatabase(4)
	enc := EncodeCQ(q)
	want := q.Evaluate(d)
	got := enc.Evaluate(EncodeDatabase(d))
	if len(want) != len(got) {
		t.Fatalf("answers %d vs %d", len(want), len(got))
	}
	set := cq.NewMappingSet()
	for _, h := range want {
		set.Add(h)
	}
	for _, h := range got {
		if !set.Contains(h) {
			t.Fatalf("extra answer %v", h)
		}
	}
}

func TestEncodeMusicTree(t *testing.T) {
	p := gen.MusicWDPT("x", "y", "z", "zp")
	enc := Encode(p)
	if !IsRDF(enc) {
		t.Fatal("encoded tree is not an RDF WDPT")
	}
	if IsRDF(p) {
		t.Fatal("original tree is not RDF")
	}
	if enc.NumNodes() != p.NumNodes() {
		t.Fatal("node structure changed")
	}
	d := gen.MusicDatabase()
	want := p.Evaluate(d)
	got := enc.Evaluate(EncodeDatabase(d))
	if len(want) != len(got) {
		t.Fatalf("music answers %d vs %d:\n%v\n%v", len(want), len(got), want, got)
	}
	set := cq.NewMappingSet()
	for _, h := range want {
		set.Add(h)
	}
	for _, h := range got {
		if !set.Contains(h) {
			t.Fatalf("answer %v not in the relational evaluation", h)
		}
	}
}

// TestEncodePreservesAnswersProperty: p(D) = Encode(p)(Encode(D)) on random
// trees and databases, including the decision problems.
func TestEncodePreservesAnswersProperty(t *testing.T) {
	eng := cqeval.Auto()
	f := func(seed int64) bool {
		p := gen.RandomWDPT(gen.TreeParams{MaxDepth: 2, MaxChildren: 2}, seed)
		d := gen.RandomDatabase(gen.DBParams{DomainSize: 3, TuplesPerRel: 6}, seed+13)
		enc, encD := Encode(p), EncodeDatabase(d)
		want := p.Evaluate(d)
		got := enc.Evaluate(encD)
		if len(want) != len(got) {
			t.Logf("seed %d: %d vs %d answers", seed, len(want), len(got))
			return false
		}
		set := cq.NewMappingSet()
		for _, h := range want {
			set.Add(h)
		}
		for _, h := range got {
			if !set.Contains(h) {
				return false
			}
		}
		// Spot-check the decision problems on one answer.
		if len(want) > 0 {
			h := want[0]
			if !enc.EvalInterface(encD, h, eng) {
				t.Logf("seed %d: EvalInterface lost answer %v", seed, h)
				return false
			}
			if !enc.PartialEval(encD, h, eng) {
				t.Logf("seed %d: PartialEval lost answer %v", seed, h)
				return false
			}
			if enc.MaxEval(encD, h, eng) != maximalIn(h, want) {
				t.Logf("seed %d: MaxEval disagrees for %v", seed, h)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func maximalIn(h cq.Mapping, all []cq.Mapping) bool {
	for _, g := range all {
		if h.ProperlySubsumedBy(g) {
			return false
		}
	}
	return true
}

func TestEncodingIsWellDesignedAndClassifiable(t *testing.T) {
	p := gen.MusicWDPT("x", "y")
	enc := Encode(p) // MustNew inside validates well-designedness
	cl := enc.Classify()
	if cl.Nodes != 3 {
		t.Fatalf("classification nodes = %d", cl.Nodes)
	}
	// The encoding adds tuple variables shared between the three triples of
	// each atom; local treewidth stays small (star-shaped per tuple id).
	if cl.LocalTW > 2 {
		t.Fatalf("encoded local treewidth = %d, expected small", cl.LocalTW)
	}
}

func TestDropTupleVariables(t *testing.T) {
	p := gen.MusicWDPT("x", "y")
	h := cq.Mapping{"x": "Swim", "n0_tv0": "t3"}
	out := DropTupleVariables(h, p)
	if len(out) != 1 || out["x"] != "Swim" {
		t.Fatalf("out = %v", out)
	}
}

func TestRelationSymbolNamespacing(t *testing.T) {
	// A data constant equal to a relation name must not join with the rel
	// marker triples.
	d := db.New()
	d.Insert("R", "R") // constant "R" equals the relation symbol
	enc := EncodeDatabase(d)
	q := EncodeCQ(cq.MustNew([]string{"x"}, []cq.Atom{cq.NewAtom("R", cq.V("x"))}))
	got := q.Evaluate(enc)
	if len(got) != 1 || got[0]["x"] != "R" {
		t.Fatalf("answers = %v", got)
	}
}
