package cq

import (
	"wdpt/internal/db"
	"wdpt/internal/guard"
	"wdpt/internal/obs"
)

// Homomorphisms enumerates every homomorphism from the given atoms to D that
// is consistent with the partial mapping fixed, invoking visit for each.
// The mapping passed to visit is defined exactly on the variables occurring
// in atoms (bindings in fixed for variables that do not occur in atoms are
// not included). visit returning false stops the enumeration.
//
// The search is backtracking with dynamic atom ordering: at every step the
// atom with the fewest candidate tuples under the current partial assignment
// is expanded next, using per-position hash indexes of the database.
func Homomorphisms(atoms []Atom, d *db.Database, fixed Mapping, visit func(Mapping) bool) {
	HomomorphismsObs(atoms, d, fixed, nil, nil, visit)
}

// HomomorphismsObs is Homomorphisms with observability and budgeting:
// tuples scanned and homomorphisms found are recorded on st (nil st
// disables recording at the cost of one branch per solved component — the
// hot loop itself only touches plain solver-local accumulators), and the
// candidate tuples of every expanded atom are charged to gm before they
// are scanned, so a budget bounds the backtracking search itself. A nil gm
// is the unbudgeted state. A charge past the budget aborts by the guard
// layer's *TripError panic, which the public Solve boundaries recover.
func HomomorphismsObs(atoms []Atom, d *db.Database, fixed Mapping, st *obs.Stats, gm *guard.Meter, visit func(Mapping) bool) {
	// Decompose the atoms into components connected by unfixed variables:
	// solutions of different components are independent, so each component
	// is solved once and the results are combined, instead of re-solving a
	// component for every binding of the others.
	comps := atomComponents(atoms, fixed)
	switch len(comps) {
	case 0:
		visit(Mapping{})
		return
	case 1:
		solveComponent(comps[0], d, fixed, st, gm, visit)
		return
	}
	// Materialize all components after the first; abort early if any is
	// unsatisfiable. The first component streams.
	rest := make([][]Mapping, len(comps)-1)
	for i, comp := range comps[1:] {
		var sols []Mapping
		solveComponent(comp, d, fixed, st, gm, func(h Mapping) bool {
			sols = append(sols, h)
			return true
		})
		if len(sols) == 0 {
			return
		}
		rest[i] = sols
	}
	stopped := false
	solveComponent(comps[0], d, fixed, st, gm, func(h0 Mapping) bool {
		var cross func(i int, acc Mapping) bool
		cross = func(i int, acc Mapping) bool {
			if i == len(rest) {
				if !visit(acc.Clone()) {
					stopped = true
				}
				return !stopped
			}
			for _, h := range rest[i] {
				if !cross(i+1, acc.Union(h)) {
					return false
				}
			}
			return true
		}
		return cross(0, h0)
	})
}

// atomComponents groups atoms connected through variables not bound by
// fixed. Atoms whose variables are all fixed (or that are ground) each form
// their own singleton component.
func atomComponents(atoms []Atom, fixed Mapping) [][]Atom {
	n := len(atoms)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	byVar := make(map[string]int)
	for i, a := range atoms {
		for _, v := range a.Vars() {
			if _, isFixed := fixed[v]; isFixed {
				continue
			}
			if j, ok := byVar[v]; ok {
				parent[find(i)] = find(j)
			} else {
				byVar[v] = i
			}
		}
	}
	groups := make(map[int][]Atom)
	var order []int
	for i, a := range atoms {
		r := find(i)
		if _, ok := groups[r]; !ok {
			order = append(order, r)
		}
		groups[r] = append(groups[r], a)
	}
	out := make([][]Atom, 0, len(order))
	for _, r := range order {
		out = append(out, groups[r])
	}
	return out
}

// solveComponent runs the backtracking search on one connected component.
// Work counts accumulate in plain solver fields and flush to st once per
// component, keeping the per-tuple cost of instrumentation to one integer
// increment whether or not st is nil.
func solveComponent(atoms []Atom, d *db.Database, fixed Mapping, st *obs.Stats, gm *guard.Meter, visit func(Mapping) bool) {
	s := &homSolver{
		d:      d,
		gm:     gm,
		atoms:  atoms,
		done:   make([]bool, len(atoms)),
		assign: make(Mapping),
		visit:  visit,
	}
	// Pre-bind the fixed variables that occur in the atoms.
	occurring := make(map[string]bool)
	for _, v := range AtomsVars(atoms) {
		occurring[v] = true
	}
	for v, c := range fixed {
		if occurring[v] {
			s.assign[v] = c
		}
	}
	s.solve(0)
	st.Add(obs.CtrTuplesScanned, s.scanned)
	st.Add(obs.CtrHomomorphisms, s.found)
}

// Satisfiable reports whether some homomorphism from atoms to D consistent
// with fixed exists.
func Satisfiable(atoms []Atom, d *db.Database, fixed Mapping) bool {
	return SatisfiableObs(atoms, d, fixed, nil, nil)
}

// SatisfiableObs is Satisfiable with work counts recorded on st and scan
// work charged to gm (both may be nil).
func SatisfiableObs(atoms []Atom, d *db.Database, fixed Mapping, st *obs.Stats, gm *guard.Meter) bool {
	found := false
	HomomorphismsObs(atoms, d, fixed, st, gm, func(Mapping) bool {
		found = true
		return false
	})
	return found
}

// ExtendToHom returns the first homomorphism from atoms to D consistent with
// fixed, or ok=false if none exists.
func ExtendToHom(atoms []Atom, d *db.Database, fixed Mapping) (Mapping, bool) {
	var out Mapping
	Homomorphisms(atoms, d, fixed, func(h Mapping) bool {
		out = h.Clone()
		return false
	})
	return out, out != nil
}

// Projections enumerates the distinct restrictions to proj of the
// homomorphisms from atoms to D consistent with fixed.
func Projections(atoms []Atom, d *db.Database, fixed Mapping, proj []string) []Mapping {
	return ProjectionsObs(atoms, d, fixed, nil, nil, proj)
}

// ProjectionsObs is Projections with work counts recorded on st and scan
// work charged to gm (both may be nil).
func ProjectionsObs(atoms []Atom, d *db.Database, fixed Mapping, st *obs.Stats, gm *guard.Meter, proj []string) []Mapping {
	set := NewMappingSet()
	HomomorphismsObs(atoms, d, fixed, st, gm, func(h Mapping) bool {
		set.Add(h.Restrict(proj))
		return true
	})
	return set.All()
}

type homSolver struct {
	d       *db.Database
	gm      *guard.Meter // nil: unbudgeted
	atoms   []Atom
	done    []bool
	assign  Mapping
	visit   func(Mapping) bool
	stopped bool
	scanned int64 // tuples inspected; flushed to obs once per component
	found   int64 // complete homomorphisms visited
}

func (s *homSolver) solve(nDone int) {
	if s.stopped {
		return
	}
	if nDone == len(s.atoms) {
		s.found++
		if !s.visit(s.assign.Clone()) {
			s.stopped = true
		}
		return
	}
	idx, rel, pos, vals, ok := s.pickAtom()
	if !ok {
		return // some atom has no candidates under the current assignment
	}
	s.done[idx] = true
	a := s.atoms[idx]
	if rel == nil {
		// Fully bound atom already verified by pickAtom.
		s.solve(nDone + 1)
		s.done[idx] = false
		return
	}
	var offsets []int
	if pos >= 0 {
		offsets = rel.Matching(pos, vals)
	}
	n := rel.Len()
	tuples := rel.Tuples()
	iterate := func(i int) bool {
		s.scanned++
		t := tuples[i]
		var bound []string
		okT := true
		for p, term := range a.Args {
			want, have := term.Value(), t[p]
			if !term.IsVar() {
				if want != have {
					okT = false
					break
				}
				continue
			}
			if cur, isBound := s.assign[want]; isBound {
				if cur != have {
					okT = false
					break
				}
				continue
			}
			s.assign[want] = have
			bound = append(bound, want)
		}
		if okT {
			s.solve(nDone + 1)
		}
		for _, v := range bound {
			delete(s.assign, v)
		}
		return !s.stopped
	}
	// Charge the candidates of this expansion up front: the budget trips
	// before the scan runs, not after, so MaxTuples bounds the search.
	if offsets != nil {
		s.gm.ChargeTuples(int64(len(offsets)))
		for _, i := range offsets {
			if !iterate(i) {
				break
			}
		}
	} else if pos < 0 {
		s.gm.ChargeTuples(int64(n))
		for i := 0; i < n; i++ {
			if !iterate(i) {
				break
			}
		}
	}
	s.done[idx] = false
}

// pickAtom selects the unprocessed atom with the smallest candidate-set
// estimate. It returns the atom index; the relation to scan (nil when the
// atom is fully bound and already verified); the index position and value to
// scan with (pos = -1 means full scan); and ok=false when some unprocessed
// atom provably has no candidates.
func (s *homSolver) pickAtom() (idx int, rel *db.Relation, pos int, val string, ok bool) {
	best := -1
	bestCost := -1
	bestPos := -1
	bestVal := ""
	var bestRel *db.Relation
	for i, a := range s.atoms {
		if s.done[i] {
			continue
		}
		r := s.d.Relation(a.Rel)
		if r == nil || r.Arity() != len(a.Args) {
			return 0, nil, 0, "", false
		}
		// Fully bound atoms cost 0 or fail immediately.
		ground, groundVals := s.groundValues(a)
		if ground {
			if !r.Contains(groundVals) {
				return 0, nil, 0, "", false
			}
			return i, nil, 0, "", true
		}
		cost := r.Len()
		p := -1
		v := ""
		for pi, term := range a.Args {
			value, bound := s.assign.Apply(term)
			if !bound {
				continue
			}
			if c := len(r.Matching(pi, value)); c < cost || p == -1 {
				cost, p, v = c, pi, value
			}
		}
		if cost == 0 && p >= 0 {
			return 0, nil, 0, "", false
		}
		if best == -1 || cost < bestCost {
			best, bestCost, bestPos, bestVal, bestRel = i, cost, p, v, r
		}
	}
	return best, bestRel, bestPos, bestVal, true
}

// groundValues reports whether every argument of a is bound under the
// current assignment and, if so, returns the resulting tuple.
func (s *homSolver) groundValues(a Atom) (bool, db.Tuple) {
	t := make(db.Tuple, len(a.Args))
	for i, term := range a.Args {
		v, ok := s.assign.Apply(term)
		if !ok {
			return false, nil
		}
		t[i] = v
	}
	return true, t
}

// CountHomomorphisms returns the number of homomorphisms from atoms to D
// consistent with fixed. Intended for tests and diagnostics.
func CountHomomorphisms(atoms []Atom, d *db.Database, fixed Mapping) int {
	n := 0
	Homomorphisms(atoms, d, fixed, func(Mapping) bool {
		n++
		return true
	})
	return n
}
