package cq

import (
	"sort"

	"wdpt/internal/db"
	"wdpt/internal/guard"
	"wdpt/internal/obs"
)

// Homomorphisms enumerates every homomorphism from the given atoms to D that
// is consistent with the partial mapping fixed, invoking visit for each.
// The mapping passed to visit is defined exactly on the variables occurring
// in atoms (bindings in fixed for variables that do not occur in atoms are
// not included). visit returning false stops the enumeration.
//
// The search is backtracking with dynamic atom ordering: at every step the
// atom with the fewest candidate tuples under the current partial assignment
// is expanded next, using the per-position indexes of the database. All
// comparisons run on dictionary-encoded term IDs; query constants and fixed
// bindings are translated once up front, and answers are translated back to
// strings only when a mapping is emitted.
func Homomorphisms(atoms []Atom, d *db.Database, fixed Mapping, visit func(Mapping) bool) {
	HomomorphismsObs(atoms, d, fixed, nil, nil, visit)
}

// HomomorphismsObs is Homomorphisms with observability and budgeting:
// tuples scanned and homomorphisms found are recorded on st (nil st
// disables recording at the cost of one branch per solved component — the
// hot loop itself only touches plain solver-local accumulators), and the
// candidate tuples of every expanded atom are charged to gm before they
// are scanned, so a budget bounds the backtracking search itself. A nil gm
// is the unbudgeted state. A charge past the budget aborts by the guard
// layer's *TripError panic, which the public Solve boundaries recover.
func HomomorphismsObs(atoms []Atom, d *db.Database, fixed Mapping, st *obs.Stats, gm *guard.Meter, visit func(Mapping) bool) {
	ctx := newIDContext(atoms, d, fixed, st, gm)
	ctx.run(func() bool { return visit(ctx.mapping()) })
}

// IDAssignment is a read-only view of the solver state delivered to the
// visit callback of HomomorphismsIDsObs, valid only for the duration of
// that call: Vars is the slot→variable layout (first-occurrence order over
// the atoms), and IDs[i] holds the dictionary-encoded binding of slot i
// when Bound[i] is true. At a complete homomorphism every variable occurs
// in some matched atom, so every slot is bound.
type IDAssignment struct {
	Vars  []string
	IDs   []uint32
	Bound []bool
}

// HomomorphismsIDsObs is HomomorphismsObs delivering the raw
// dictionary-encoded solver assignment instead of materializing a string
// Mapping per homomorphism. The search, its work counters and its guard
// charges are identical; callers that need strings can translate through
// d.Dict().Term. The view's slices alias live solver state and must not be
// retained or modified after visit returns.
func HomomorphismsIDsObs(atoms []Atom, d *db.Database, fixed Mapping, st *obs.Stats, gm *guard.Meter, visit func(IDAssignment) bool) {
	ctx := newIDContext(atoms, d, fixed, st, gm)
	view := IDAssignment{Vars: ctx.vars, IDs: ctx.assign, Bound: ctx.bound}
	ctx.run(func() bool { return visit(view) })
}

// ProjectionIDs enumerates the homomorphisms from atoms to D consistent
// with fixed and returns the distinct restrictions to proj as
// dictionary-encoded rows: a flat row-major []uint32 of width len(proj),
// aligned with proj, deduplicated and sorted in row-lexicographic ID
// order. Projection variables not bound by any homomorphism position are
// db.NoID. On a sealed database ID order coincides with string order, so
// the row order equals the canonical sorted order of the legacy
// string-mapping API. Work counts are recorded on st and scan work is
// charged to gm exactly as in HomomorphismsObs.
func ProjectionIDs(atoms []Atom, d *db.Database, fixed Mapping, st *obs.Stats, gm *guard.Meter, proj []string) []uint32 {
	ctx := newIDContext(atoms, d, fixed, st, gm)
	w := len(proj)
	slots := make([]int, w)
	for i, v := range proj {
		if sl, ok := ctx.slotOf[v]; ok {
			slots[i] = sl
		} else {
			slots[i] = -1
		}
	}
	var data []uint32
	seen := make(map[string]bool)
	row := make([]uint32, w)
	var keyBuf []byte
	ctx.run(func() bool {
		for i, sl := range slots {
			if sl >= 0 && ctx.bound[sl] {
				row[i] = ctx.assign[sl]
			} else {
				row[i] = db.NoID
			}
		}
		keyBuf = db.AppendRowKey(keyBuf[:0], row)
		if !seen[string(keyBuf)] {
			seen[string(keyBuf)] = true
			data = append(data, row...)
		}
		return true
	})
	return SortIDRows(data, w)
}

// SortIDRows sorts a flat row-major ID relation of the given width in
// row-lexicographic order and returns it. Width 0 (or an empty relation)
// is returned unchanged.
func SortIDRows(data []uint32, w int) []uint32 {
	if w <= 0 || len(data) <= w {
		return data
	}
	n := len(data) / w
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool {
		ra := data[perm[a]*w : perm[a]*w+w]
		rb := data[perm[b]*w : perm[b]*w+w]
		for k := 0; k < w; k++ {
			if ra[k] != rb[k] {
				return ra[k] < rb[k]
			}
		}
		return false
	})
	out := make([]uint32, 0, len(data))
	for _, i := range perm {
		out = append(out, data[i*w:i*w+w]...)
	}
	return out
}

// atomComponents groups atoms connected through variables not bound by
// fixed. Atoms whose variables are all fixed (or that are ground) each form
// their own singleton component.
func atomComponents(atoms []Atom, fixed Mapping) [][]Atom {
	n := len(atoms)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	byVar := make(map[string]int)
	for i, a := range atoms {
		for _, v := range a.Vars() {
			if _, isFixed := fixed[v]; isFixed {
				continue
			}
			if j, ok := byVar[v]; ok {
				parent[find(i)] = find(j)
			} else {
				byVar[v] = i
			}
		}
	}
	groups := make(map[int][]Atom)
	var order []int
	for i, a := range atoms {
		r := find(i)
		if _, ok := groups[r]; !ok {
			order = append(order, r)
		}
		groups[r] = append(groups[r], a)
	}
	out := make([][]Atom, 0, len(order))
	for _, r := range order {
		out = append(out, groups[r])
	}
	return out
}

// idContext is the dictionary-encoded search state shared by every
// component of one Homomorphisms call: a slot per variable occurring in
// the atoms, a flat uint32 assignment, and the accumulated dictionary /
// index-probe work counts flushed to st when the call finishes.
type idContext struct {
	atoms []Atom
	d     *db.Database
	dict  *db.Dict
	st    *obs.Stats
	gm    *guard.Meter

	vars   []string       // slot → variable, first-occurrence order
	slotOf map[string]int // variable → slot
	assign []uint32       // slot → bound term ID (valid when bound[slot])
	bound  []bool
	comps  [][]Atom // precompiled component split; nil → computed by splitFixed

	// compiled and solver are set by SatChecker: compiled supplies shared
	// per-component argument references (aligned with comps) and solver is
	// a reusable homSolver scratch. Component solves never nest — in the
	// cross-product path the trailing components are fully materialized
	// before the first one streams — so one scratch solver suffices.
	compiled *CompiledAtoms
	solver   *homSolver

	lookups int64 // dictionary probes (constants and fixed bindings)
	misses  int64 // probes for constants outside the active domain
	probes  int64 // MatchingIDs index probes
	rows    int64 // offsets returned by those probes
}

func newIDContext(atoms []Atom, d *db.Database, fixed Mapping, st *obs.Stats, gm *guard.Meter) *idContext {
	ctx := &idContext{
		atoms: atoms,
		d:     d,
		dict:  d.Dict(),
		st:    st,
		gm:    gm,
		vars:  AtomsVars(atoms),
	}
	ctx.slotOf = make(map[string]int, len(ctx.vars))
	for i, v := range ctx.vars {
		ctx.slotOf[v] = i
	}
	ctx.assign = make([]uint32, len(ctx.vars))
	ctx.bound = make([]bool, len(ctx.vars))
	// Pre-bind the fixed variables that occur in the atoms. A fixed value
	// outside the active domain binds to NoID: no stored row contains
	// NoID, so every atom mentioning that variable fails to match, which
	// is exactly the legacy unknown-string behaviour.
	for v, c := range fixed {
		sl, ok := ctx.slotOf[v]
		if !ok {
			continue
		}
		ctx.lookups++
		id, known := ctx.dict.ID(c)
		if !known {
			ctx.misses++
		}
		ctx.assign[sl] = id
		ctx.bound[sl] = true
	}
	return ctx
}

// mapping materializes the current assignment as a string Mapping over the
// bound slots.
func (ctx *idContext) mapping() Mapping {
	h := make(Mapping, len(ctx.vars))
	for sl, v := range ctx.vars {
		if ctx.bound[sl] {
			h[v] = ctx.dict.Term(ctx.assign[sl])
		}
	}
	return h
}

// run decomposes the atoms into components connected by unfixed variables
// — solutions of different components are independent, so each component
// is solved once and the results are combined instead of re-solving a
// component for every binding of the others — and invokes visit once per
// combined solution with the context assignment holding the solution.
// visit returning false stops the enumeration.
func (ctx *idContext) run(visit func() bool) {
	defer func() {
		ctx.st.Add(obs.CtrDictLookups, ctx.lookups)
		ctx.st.Add(obs.CtrDictMisses, ctx.misses)
		ctx.st.Add(obs.CtrIndexProbes, ctx.probes)
		ctx.st.Add(obs.CtrIndexProbeRows, ctx.rows)
	}()
	// Components are connected through unbound slots: a pre-bound (fixed)
	// variable does not connect atoms, matching the legacy decomposition.
	comps := ctx.splitFixed()
	switch len(comps) {
	case 0:
		visit()
		return
	case 1:
		ctx.solveComponent(0, comps[0], visit)
		return
	}
	// Materialize all components after the first; abort early if any is
	// unsatisfiable. The first component streams.
	type compSols struct {
		slots []int // slots this component's search binds
		rows  []uint32
		n     int
	}
	rest := make([]compSols, len(comps)-1)
	for i, comp := range comps[1:] {
		cs := compSols{slots: ctx.searchSlots(comp)}
		ctx.solveComponent(i+1, comp, func() bool {
			for _, sl := range cs.slots {
				cs.rows = append(cs.rows, ctx.assign[sl])
			}
			cs.n++
			return true
		})
		if cs.n == 0 {
			return
		}
		rest[i] = cs
	}
	stopped := false
	ctx.solveComponent(0, comps[0], func() bool {
		var cross func(k int) bool
		cross = func(k int) bool {
			if k == len(rest) {
				if !visit() {
					stopped = true
				}
				return !stopped
			}
			cs := rest[k]
			w := len(cs.slots)
			for s := 0; s < cs.n; s++ {
				for j, sl := range cs.slots {
					ctx.assign[sl] = cs.rows[s*w+j]
					ctx.bound[sl] = true
				}
				ok := cross(k + 1)
				for _, sl := range cs.slots {
					ctx.bound[sl] = false
				}
				if !ok {
					return false
				}
			}
			return true
		}
		return cross(0)
	})
}

// splitFixed recomputes the component decomposition treating pre-bound
// slots as fixed, mirroring the legacy atomComponents(atoms, fixed). A
// context built from CompiledAtoms carries the split precomputed.
func (ctx *idContext) splitFixed() [][]Atom {
	if ctx.comps != nil {
		return ctx.comps
	}
	fixed := make(Mapping, len(ctx.vars))
	for sl, v := range ctx.vars {
		if ctx.bound[sl] {
			fixed[v] = ""
		}
	}
	return atomComponents(ctx.atoms, fixed)
}

// searchSlots returns the slots of the component's variables that are not
// pre-bound, i.e. the slots its search will bind.
func (ctx *idContext) searchSlots(comp []Atom) []int {
	var out []int
	for _, v := range AtomsVars(comp) {
		sl := ctx.slotOf[v]
		if !ctx.bound[sl] {
			out = append(out, sl)
		}
	}
	return out
}

// solveComponent runs the backtracking search on the ci-th connected
// component. Work counts accumulate in plain solver fields and flush to st
// once per component, keeping the per-tuple cost of instrumentation to one
// integer increment whether or not st is nil. A context carrying a scratch
// solver (SatChecker) reuses its buffers, and a constant-free compiled
// component reuses its shared argument references, so the solve itself is
// the only remaining per-call work.
func (ctx *idContext) solveComponent(ci int, atoms []Atom, visit func() bool) {
	s := ctx.solver
	if s == nil {
		s = &homSolver{}
	}
	// Reset the solver, keeping the reusable scratch backing arrays.
	// args is rebound below: either to the compiled shared slice (never
	// written) or to freshly compiled per-call references.
	*s = homSolver{
		ctx: ctx, atoms: atoms, visit: visit,
		done: s.done, rowBuf: s.rowBuf,
		rels: s.rels, lens: s.lens, relBad: s.relBad,
	}
	maxArity := 0
	if c := ctx.compiled; c != nil && c.ccomps[ci].args != nil {
		s.args = c.ccomps[ci].args
		maxArity = c.ccomps[ci].maxArity
	} else {
		s.args = make([][]argRef, len(atoms))
		for i, a := range atoms {
			refs := make([]argRef, len(a.Args))
			for p, term := range a.Args {
				if term.IsVar() {
					refs[p] = argRef{slot: ctx.slotOf[term.Value()]}
				} else {
					ctx.lookups++
					id, known := ctx.dict.ID(term.Value())
					if !known {
						ctx.misses++
					}
					refs[p] = argRef{slot: -1, id: id}
				}
			}
			s.args[i] = refs
			if len(refs) > maxArity {
				maxArity = len(refs)
			}
		}
	}
	s.done = growBoolZero(s.done, len(atoms))
	s.rowBuf = growU32(s.rowBuf, maxArity)
	s.rels = growRels(s.rels, len(atoms))
	s.lens = growInt(s.lens, len(atoms))
	s.relBad = growBoolZero(s.relBad, len(atoms))
	for i, a := range atoms {
		r := ctx.d.Relation(a.Rel)
		s.rels[i] = r
		if r == nil || r.Arity() != len(a.Args) {
			s.relBad[i] = true
		} else {
			s.lens[i] = r.Len()
		}
	}
	s.solve(0)
	ctx.st.Add(obs.CtrTuplesScanned, s.scanned)
	ctx.st.Add(obs.CtrHomomorphisms, s.found)
}

// Satisfiable reports whether some homomorphism from atoms to D consistent
// with fixed exists.
func Satisfiable(atoms []Atom, d *db.Database, fixed Mapping) bool {
	return SatisfiableObs(atoms, d, fixed, nil, nil)
}

// SatisfiableObs is Satisfiable with work counts recorded on st and scan
// work charged to gm (both may be nil).
func SatisfiableObs(atoms []Atom, d *db.Database, fixed Mapping, st *obs.Stats, gm *guard.Meter) bool {
	found := false
	ctx := newIDContext(atoms, d, fixed, st, gm)
	ctx.run(func() bool {
		found = true
		return false
	})
	return found
}

// ExtendToHom returns the first homomorphism from atoms to D consistent with
// fixed, or ok=false if none exists.
func ExtendToHom(atoms []Atom, d *db.Database, fixed Mapping) (Mapping, bool) {
	var out Mapping
	Homomorphisms(atoms, d, fixed, func(h Mapping) bool {
		out = h.Clone()
		return false
	})
	return out, out != nil
}

// Projections enumerates the distinct restrictions to proj of the
// homomorphisms from atoms to D consistent with fixed.
func Projections(atoms []Atom, d *db.Database, fixed Mapping, proj []string) []Mapping {
	return ProjectionsObs(atoms, d, fixed, nil, nil, proj)
}

// ProjectionsObs is Projections with work counts recorded on st and scan
// work charged to gm (both may be nil).
func ProjectionsObs(atoms []Atom, d *db.Database, fixed Mapping, st *obs.Stats, gm *guard.Meter, proj []string) []Mapping {
	set := NewMappingSet()
	HomomorphismsObs(atoms, d, fixed, st, gm, func(h Mapping) bool {
		set.Add(h.Restrict(proj))
		return true
	})
	return set.All()
}

// argRef is one compiled atom argument: either a variable slot (slot ≥ 0)
// or a constant term ID (slot < 0; id may be db.NoID for constants outside
// the active domain, which match nothing).
type argRef struct {
	slot int
	id   uint32
}

type homSolver struct {
	ctx    *idContext
	atoms  []Atom
	args   [][]argRef
	done   []bool
	rowBuf []uint32 // scratch for ground-atom rows
	// rels, lens and relBad are resolved once per component — relations
	// cannot change during a solve — so the per-step candidate loop costs
	// no name lookups. relBad marks a missing relation or an arity
	// mismatch; pickAtom reports it at the same point the per-step lookup
	// used to, so the search and its counters are unchanged.
	rels    []*db.Relation
	lens    []int
	relBad  []bool
	visit   func() bool
	stopped bool
	scanned int64 // tuples inspected; flushed to obs once per component
	found   int64 // complete homomorphisms visited
}

func (s *homSolver) solve(nDone int) {
	if s.stopped {
		return
	}
	if nDone == len(s.atoms) {
		s.found++
		if !s.visit() {
			s.stopped = true
		}
		return
	}
	idx, rel, pos, id, ok := s.pickAtom()
	if !ok {
		return // some atom has no candidates under the current assignment
	}
	s.done[idx] = true
	args := s.args[idx]
	if rel == nil {
		// Fully bound atom already verified by pickAtom.
		s.solve(nDone + 1)
		s.done[idx] = false
		return
	}
	ctx := s.ctx
	var offsets []int
	if pos >= 0 {
		offsets = rel.MatchingIDs(pos, id)
		ctx.probes++
		ctx.rows += int64(len(offsets))
	}
	n := rel.Len()
	// Slots newly bound while matching one tuple; at most one per argument.
	// The stack array keeps the common arities allocation-free per level.
	var bsArr [8]int
	boundSlots := bsArr[:0]
	iterate := func(i int) bool {
		s.scanned++
		row := rel.Scan(i)
		boundSlots = boundSlots[:0]
		okT := true
		for p, ar := range args {
			have := row[p]
			if ar.slot < 0 {
				if ar.id != have {
					okT = false
					break
				}
				continue
			}
			if ctx.bound[ar.slot] {
				if ctx.assign[ar.slot] != have {
					okT = false
					break
				}
				continue
			}
			ctx.assign[ar.slot] = have
			ctx.bound[ar.slot] = true
			boundSlots = append(boundSlots, ar.slot)
		}
		if okT {
			s.solve(nDone + 1)
		}
		for _, sl := range boundSlots {
			ctx.bound[sl] = false
		}
		return !s.stopped
	}
	// Charge the candidates of this expansion up front: the budget trips
	// before the scan runs, not after, so MaxTuples bounds the search.
	if offsets != nil {
		ctx.gm.ChargeTuples(int64(len(offsets)))
		for _, i := range offsets {
			if !iterate(i) {
				break
			}
		}
	} else if pos < 0 {
		ctx.gm.ChargeTuples(int64(n))
		for i := 0; i < n; i++ {
			if !iterate(i) {
				break
			}
		}
	}
	s.done[idx] = false
}

// pickAtom selects the unprocessed atom with the smallest candidate-set
// estimate. It returns the atom index; the relation to scan (nil when the
// atom is fully bound and already verified); the index position and term
// ID to scan with (pos = -1 means full scan); and ok=false when some
// unprocessed atom provably has no candidates.
func (s *homSolver) pickAtom() (idx int, rel *db.Relation, pos int, id uint32, ok bool) {
	ctx := s.ctx
	best := -1
	bestCost := -1
	bestPos := -1
	var bestID uint32
	var bestRel *db.Relation
	for i := range s.atoms {
		if s.done[i] {
			continue
		}
		if s.relBad[i] {
			return 0, nil, 0, 0, false
		}
		r := s.rels[i]
		// Fully bound atoms cost 0 or fail immediately.
		ground, row := s.groundRow(i)
		if ground {
			if !r.ContainsIDs(row) {
				return 0, nil, 0, 0, false
			}
			return i, nil, 0, 0, true
		}
		cost := s.lens[i]
		p := -1
		var v uint32
		for pi, ar := range s.args[i] {
			value, bound := s.argValue(ar)
			if !bound {
				continue
			}
			m := r.MatchingIDs(pi, value)
			ctx.probes++
			ctx.rows += int64(len(m))
			if c := len(m); c < cost || p == -1 {
				cost, p, v = c, pi, value
			}
		}
		if cost == 0 && p >= 0 {
			return 0, nil, 0, 0, false
		}
		if best == -1 || cost < bestCost {
			best, bestCost, bestPos, bestID, bestRel = i, cost, p, v, r
		}
	}
	return best, bestRel, bestPos, bestID, true
}

// argValue resolves a compiled argument under the current assignment:
// constants are always bound (possibly to NoID), variables are bound when
// their slot is.
func (s *homSolver) argValue(ar argRef) (uint32, bool) {
	if ar.slot < 0 {
		return ar.id, true
	}
	if s.ctx.bound[ar.slot] {
		return s.ctx.assign[ar.slot], true
	}
	return 0, false
}

// groundRow reports whether every argument of atom i is bound under the
// current assignment and, if so, returns the resulting ID row (valid until
// the next groundRow call).
func (s *homSolver) groundRow(i int) (bool, []uint32) {
	args := s.args[i]
	row := s.rowBuf[:len(args)]
	for p, ar := range args {
		v, ok := s.argValue(ar)
		if !ok {
			return false, nil
		}
		row[p] = v
	}
	return true, row
}

// CountHomomorphisms returns the number of homomorphisms from atoms to D
// consistent with fixed. Intended for tests and diagnostics.
func CountHomomorphisms(atoms []Atom, d *db.Database, fixed Mapping) int {
	n := 0
	Homomorphisms(atoms, d, fixed, func(Mapping) bool {
		n++
		return true
	})
	return n
}
