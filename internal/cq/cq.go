package cq

import (
	"fmt"
	"strings"

	"wdpt/internal/db"
)

// CQ is a conjunctive query Ans(x̄) <- R1(v̄1), ..., Rm(v̄m) where x̄ is a
// tuple of distinct free variables occurring in the body (Section 2,
// equation (2)).
type CQ struct {
	free  []string
	atoms []Atom
}

// New builds a CQ and validates that the free variables are distinct and
// occur in the body.
func New(free []string, atoms []Atom) (*CQ, error) {
	bodyVars := make(map[string]bool)
	for _, v := range AtomsVars(atoms) {
		bodyVars[v] = true
	}
	seen := make(map[string]bool, len(free))
	for _, x := range free {
		if seen[x] {
			return nil, fmt.Errorf("cq: duplicate free variable %q", x)
		}
		seen[x] = true
		if !bodyVars[x] {
			return nil, fmt.Errorf("cq: free variable %q does not occur in the body", x)
		}
	}
	return &CQ{free: append([]string(nil), free...), atoms: append([]Atom(nil), atoms...)}, nil
}

// MustNew is New that panics on error; intended for literals in tests,
// examples and generators.
func MustNew(free []string, atoms []Atom) *CQ {
	q, err := New(free, atoms)
	if err != nil {
		//lint:ignore R2 Must-constructor: panicking on invalid literals is its documented contract
		panic(err)
	}
	return q
}

// Boolean builds the Boolean CQ Ans() <- atoms.
func Boolean(atoms []Atom) *CQ {
	return &CQ{atoms: append([]Atom(nil), atoms...)}
}

// Free returns the free variables x̄. The slice must not be modified.
func (q *CQ) Free() []string { return q.free }

// Atoms returns the body atoms. The slice must not be modified.
func (q *CQ) Atoms() []Atom { return q.atoms }

// Vars returns all distinct variables of the body in first-occurrence order.
func (q *CQ) Vars() []string { return AtomsVars(q.atoms) }

// ExistentialVars returns the body variables that are not free.
func (q *CQ) ExistentialVars() []string {
	freeSet := make(map[string]bool, len(q.free))
	for _, x := range q.free {
		freeSet[x] = true
	}
	var out []string
	for _, v := range q.Vars() {
		if !freeSet[v] {
			out = append(out, v)
		}
	}
	return out
}

// Size returns the size of the query in standard relational notation: the
// total number of argument positions across all atoms.
func (q *CQ) Size() int {
	n := 0
	for _, a := range q.atoms {
		n += 1 + len(a.Args)
	}
	return n
}

// HasConstants reports whether any atom mentions a constant. Approximations
// (Section 5.2) are only defined for constant-free queries.
func (q *CQ) HasConstants() bool {
	for _, a := range q.atoms {
		for _, t := range a.Args {
			if !t.IsVar() {
				return true
			}
		}
	}
	return false
}

// Clone returns a deep copy of the query.
func (q *CQ) Clone() *CQ {
	atoms := make([]Atom, len(q.atoms))
	for i, a := range q.atoms {
		atoms[i] = Atom{Rel: a.Rel, Args: append([]Term(nil), a.Args...)}
	}
	return &CQ{free: append([]string(nil), q.free...), atoms: atoms}
}

// String renders the query as "Ans(x, y) <- R(?x, ?z), S(?z, ?y)".
func (q *CQ) String() string {
	parts := make([]string, len(q.atoms))
	for i, a := range q.atoms {
		parts[i] = a.String()
	}
	return fmt.Sprintf("Ans(%s) <- %s", strings.Join(q.free, ", "), strings.Join(parts, ", "))
}

// Evaluate computes q(D): the set of restrictions h_x̄ of homomorphisms h
// from q to D. Note that, following the paper (footnote 4), answers are
// partial mappings on the free variables rather than tuples.
func (q *CQ) Evaluate(d *db.Database) []Mapping {
	set := NewMappingSet()
	Homomorphisms(q.atoms, d, nil, func(h Mapping) bool {
		set.Add(h.Restrict(q.free))
		return true
	})
	return set.All()
}

// EvaluateBool reports whether the Boolean evaluation of q over D is
// nonempty, i.e. whether some homomorphism from q to D exists.
func (q *CQ) EvaluateBool(d *db.Database) bool {
	return Satisfiable(q.atoms, d, nil)
}

// Contains reports whether h ∈ q(D): the membership test behind the
// CQ-EVAL problem of Section 3.1. The mapping h must be defined exactly on
// the free variables of q.
func (q *CQ) Contains(d *db.Database, h Mapping) bool {
	if len(h) != len(q.free) {
		return false
	}
	for _, x := range q.free {
		if _, ok := h[x]; !ok {
			return false
		}
	}
	return Satisfiable(q.atoms, d, h)
}

// CanonicalDatabase returns the frozen body of q: each variable becomes a
// fresh constant named by freeze(var). The second return value is the
// freezing mapping from variable names to the introduced constants.
func (q *CQ) CanonicalDatabase() (*db.Database, Mapping) {
	return FreezeAtoms(q.atoms)
}

// FreezeAtoms grounds a set of atoms by replacing every variable v with the
// reserved constant "•v", returning the resulting database and the freezing
// mapping. The bullet prefix keeps frozen constants disjoint from ordinary
// ones.
func FreezeAtoms(atoms []Atom) (*db.Database, Mapping) {
	frz := make(Mapping)
	for _, v := range AtomsVars(atoms) {
		frz[v] = FrozenConst(v)
	}
	d := db.New()
	for _, a := range atoms {
		ground := frz.ApplyAtom(a)
		vals := make([]string, len(ground.Args))
		for i, t := range ground.Args {
			vals[i] = t.Value()
		}
		d.Insert(a.Rel, vals...)
	}
	return d, frz
}

// FrozenConst returns the reserved constant that freezing assigns to the
// variable v.
func FrozenConst(v string) string { return "•" + v }
