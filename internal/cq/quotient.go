package cq

// Quotient images of conjunctive queries. A quotient of q is the image of q
// under a variable-to-variable mapping θ that is the identity on the free
// variables. Every quotient image is contained in q (the quotient map is a
// homomorphism witnessing containment), and — for classes closed under
// substructures — every C-approximation of q is equivalent to a quotient
// image of q, which makes quotient enumeration the engine behind the CQ
// approximation results of [Barceló, Libkin, Romero 2014] used in
// Sections 5 and 6 of the paper.

// Quotients enumerates the quotient images of q: for every partition of the
// variables of q in which no two free variables share a block, visit
// receives the image query (free variables unchanged) and the quotient map
// θ. visit returning false stops the enumeration. The identity partition is
// included, so q itself (up to atom deduplication) is always visited.
//
// The number of partitions grows like a Bell number in the count of
// existential variables; callers are expected to keep queries small or stop
// early.
func Quotients(q *CQ, visit func(image *CQ, theta Mapping) bool) {
	vars := q.Vars()
	freeSet := make(map[string]bool, len(q.free))
	for _, x := range q.free {
		freeSet[x] = true
	}
	// Blocks are identified by representative variable. Free variables seed
	// singleton blocks that can absorb existential variables but never
	// merge with each other.
	var evars []string
	for _, v := range vars {
		if !freeSet[v] {
			evars = append(evars, v)
		}
	}
	// reps holds current block representatives: all free variables plus the
	// existential variables chosen as representatives of fresh blocks.
	reps := append([]string(nil), q.free...)
	assign := make(Mapping, len(vars))
	for _, x := range q.free {
		assign[x] = x
	}
	stopped := false
	var rec func(i int)
	rec = func(i int) {
		if stopped {
			return
		}
		if i == len(evars) {
			img := quotientImage(q, assign)
			if !visit(img, assign.Clone()) {
				stopped = true
			}
			return
		}
		v := evars[i]
		// Join an existing block...
		for _, r := range reps {
			assign[v] = r
			rec(i + 1)
			if stopped {
				return
			}
		}
		// ...or start a fresh block represented by v.
		assign[v] = v
		reps = append(reps, v)
		rec(i + 1)
		reps = reps[:len(reps)-1]
		delete(assign, v)
	}
	rec(0)
}

// quotientImage applies the variable renaming θ to the body of q and
// deduplicates atoms. Free variables are fixed by construction.
func quotientImage(q *CQ, theta Mapping) *CQ {
	atoms := make([]Atom, 0, len(q.atoms))
	for _, a := range q.atoms {
		args := make([]Term, len(a.Args))
		for i, t := range a.Args {
			if t.IsVar() {
				args[i] = V(theta[t.Value()])
			} else {
				args[i] = t
			}
		}
		atoms = append(atoms, Atom{Rel: a.Rel, Args: args})
	}
	return &CQ{free: append([]string(nil), q.free...), atoms: DedupAtoms(atoms)}
}

// ApproximationsInClass computes the C-approximations of q for a
// substructure-closed class C (TW(k) or HW'(k)): the maximal elements, with
// respect to containment, of the set of quotient images of q whose core
// belongs to C. The returned queries are cores, pairwise inequivalent, each
// contained in q, and jointly subsume every C-query contained in q.
//
// q must be constant-free (approximations with constants are not well
// understood even for CQs; Section 5.2).
func ApproximationsInClass(q *CQ, c Class) []*CQ {
	if q.HasConstants() {
		//lint:ignore R2 documented precondition: callers gate on HasConstants (Section 5.2)
		panic("cq: approximations are only defined for constant-free queries")
	}
	var candidates []*CQ
	Quotients(q, func(img *CQ, _ Mapping) bool {
		core := Core(img)
		if c.Contains(core) {
			candidates = append(candidates, core)
		}
		return true
	})
	return maximalUnderContainment(candidates)
}

// maximalUnderContainment removes queries contained in (and not equivalent
// to) another candidate, then collapses equivalence classes to a single
// representative.
func maximalUnderContainment(candidates []*CQ) []*CQ {
	var out []*CQ
	for i, qi := range candidates {
		maximal := true
		for j, qj := range candidates {
			if i == j {
				continue
			}
			if ContainedIn(qi, qj) {
				if !ContainedIn(qj, qi) {
					maximal = false
					break
				}
				// Equivalent: keep only the first representative.
				if j < i {
					maximal = false
					break
				}
			}
		}
		if maximal {
			out = append(out, qi)
		}
	}
	return out
}

// IsApproximationInClass reports whether cand is a C-approximation of q:
// cand ∈ C, cand ⊆ q, and no quotient image of q in C lies strictly between
// them.
func IsApproximationInClass(cand, q *CQ, c Class) bool {
	if !c.Contains(Core(cand)) || !ContainedIn(cand, q) {
		return false
	}
	better := false
	Quotients(q, func(img *CQ, _ Mapping) bool {
		core := Core(img)
		if !c.Contains(core) {
			return true
		}
		if ContainedIn(cand, core) && ContainedIn(core, q) && !ContainedIn(core, cand) {
			better = true
			return false
		}
		return true
	})
	return !better
}
