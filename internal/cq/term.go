// Package cq implements conjunctive queries (CQs) over arbitrary relational
// schemas: terms, atoms, homomorphisms, evaluation, containment, cores,
// variable quotients, and treewidth-bounded equivalence and approximation of
// CQs. It is the foundation on which well-designed pattern trees
// (internal/core) are built, following Section 2 of Barceló & Pichler,
// "Efficient Evaluation and Approximation of Well-designed Pattern Trees"
// (PODS 2015).
package cq

import (
	"fmt"
	"strings"
)

// Term is either a variable or a constant appearing in a relational atom.
// The zero value is the empty constant.
type Term struct {
	val   string
	isVar bool
}

// V returns a variable term with the given name.
func V(name string) Term { return Term{val: name, isVar: true} }

// C returns a constant term with the given value.
func C(value string) Term { return Term{val: value} }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.isVar }

// Value returns the variable name or the constant value.
func (t Term) Value() string { return t.val }

// String renders variables with a leading '?' and constants verbatim.
func (t Term) String() string {
	if t.isVar {
		return "?" + t.val
	}
	return t.val
}

// Atom is a relational atom R(v1, ..., vn) over variables and constants.
type Atom struct {
	Rel  string
	Args []Term
}

// NewAtom builds an atom over the given relation symbol and arguments.
func NewAtom(rel string, args ...Term) Atom {
	return Atom{Rel: rel, Args: args}
}

// Vars returns the distinct variable names of the atom in first-occurrence
// order.
func (a Atom) Vars() []string {
	var out []string
	seen := make(map[string]bool, len(a.Args))
	for _, t := range a.Args {
		if t.isVar && !seen[t.val] {
			seen[t.val] = true
			out = append(out, t.val)
		}
	}
	return out
}

// IsGround reports whether the atom contains no variables.
func (a Atom) IsGround() bool {
	for _, t := range a.Args {
		if t.isVar {
			return false
		}
	}
	return true
}

// Equal reports syntactic equality of two atoms.
func (a Atom) Equal(b Atom) bool {
	if a.Rel != b.Rel || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

// Key renders the atom as a canonical string usable as a map key.
func (a Atom) Key() string {
	var b strings.Builder
	b.WriteString(a.Rel)
	for _, t := range a.Args {
		b.WriteByte('\x00')
		if t.isVar {
			b.WriteByte('?')
		} else {
			b.WriteByte('=')
		}
		b.WriteString(t.val)
	}
	return b.String()
}

// String renders the atom as "R(?x, c)".
func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return fmt.Sprintf("%s(%s)", a.Rel, strings.Join(parts, ", "))
}

// AtomsVars returns the distinct variable names across a set of atoms in
// first-occurrence order.
func AtomsVars(atoms []Atom) []string {
	var out []string
	seen := make(map[string]bool)
	for _, a := range atoms {
		for _, t := range a.Args {
			if t.isVar && !seen[t.val] {
				seen[t.val] = true
				out = append(out, t.val)
			}
		}
	}
	return out
}

// DedupAtoms returns atoms with exact syntactic duplicates removed,
// preserving first-occurrence order.
func DedupAtoms(atoms []Atom) []Atom {
	var out []Atom
	seen := make(map[string]bool, len(atoms))
	for _, a := range atoms {
		k := a.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, a)
		}
	}
	return out
}
