package cq

import (
	"sort"
	"strings"
)

// Mapping is a partial mapping h : X -> U from variable names to constants.
// A nil Mapping is the everywhere-undefined mapping.
type Mapping map[string]string

// Clone returns a copy of the mapping.
func (h Mapping) Clone() Mapping {
	out := make(Mapping, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

// Domain returns the sorted set of variables on which h is defined.
func (h Mapping) Domain() []string {
	out := make([]string, 0, len(h))
	for k := range h {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Restrict returns the restriction of h to the given variables.
func (h Mapping) Restrict(vars []string) Mapping {
	out := make(Mapping)
	for _, v := range vars {
		if c, ok := h[v]; ok {
			out[v] = c
		}
	}
	return out
}

// SubsumedBy reports h ⊑ h': dom(h) ⊆ dom(h') and the mappings agree on
// dom(h) (Section 2, "subsumption" of partial mappings).
func (h Mapping) SubsumedBy(hp Mapping) bool {
	for k, v := range h {
		vp, ok := hp[k]
		if !ok || v != vp {
			return false
		}
	}
	return true
}

// ProperlySubsumedBy reports h ⊏ h': h ⊑ h' and not h' ⊑ h.
func (h Mapping) ProperlySubsumedBy(hp Mapping) bool {
	return h.SubsumedBy(hp) && !hp.SubsumedBy(h)
}

// Equal reports whether h and h' are the same partial mapping.
func (h Mapping) Equal(hp Mapping) bool {
	return len(h) == len(hp) && h.SubsumedBy(hp)
}

// CompatibleWith reports whether h and h' agree wherever both are defined,
// i.e. whether h ∪ h' is a partial mapping.
func (h Mapping) CompatibleWith(hp Mapping) bool {
	small, big := h, hp
	if len(big) < len(small) {
		small, big = big, small
	}
	for k, v := range small {
		if vb, ok := big[k]; ok && vb != v {
			return false
		}
	}
	return true
}

// Union returns h ∪ h'. It panics if the mappings disagree on a shared
// variable, since callers are expected to check compatibility first.
func (h Mapping) Union(hp Mapping) Mapping {
	out := h.Clone()
	for k, v := range hp {
		if prev, ok := out[k]; ok && prev != v {
			//lint:ignore R2 documented contract: callers must check CompatibleWith first
			panic("cq: union of incompatible mappings at variable " + k)
		}
		out[k] = v
	}
	return out
}

// Apply returns h(t): the constant assigned to a variable (ok=false when
// unbound), or the constant itself for constant terms.
func (h Mapping) Apply(t Term) (string, bool) {
	if !t.IsVar() {
		return t.Value(), true
	}
	v, ok := h[t.Value()]
	return v, ok
}

// ApplyAtom returns the atom with all bound variables replaced by their
// images under h. Unbound variables are left intact.
func (h Mapping) ApplyAtom(a Atom) Atom {
	args := make([]Term, len(a.Args))
	for i, t := range a.Args {
		if t.IsVar() {
			if v, ok := h[t.Value()]; ok {
				args[i] = C(v)
				continue
			}
		}
		args[i] = t
	}
	return Atom{Rel: a.Rel, Args: args}
}

// Key renders the mapping as a canonical string usable as a map key.
func (h Mapping) Key() string {
	dom := h.Domain()
	var b strings.Builder
	for _, k := range dom {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(h[k])
		b.WriteByte('\x00')
	}
	return b.String()
}

// String renders the mapping as "{x -> a, y -> b}" with sorted variables.
func (h Mapping) String() string {
	dom := h.Domain()
	parts := make([]string, len(dom))
	for i, k := range dom {
		parts[i] = k + " -> " + h[k]
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// CompareMappings compares two partial mappings in the canonical solution
// order: entry by entry over their sorted domains, first by variable name,
// then by term value; a mapping whose entries are a strict prefix of the
// other's sorts first. It returns -1, 0, or +1.
func CompareMappings(a, b Mapping) int {
	da, db := a.Domain(), b.Domain()
	for i := 0; i < len(da) && i < len(db); i++ {
		if da[i] != db[i] {
			if da[i] < db[i] {
				return -1
			}
			return 1
		}
		if va, vb := a[da[i]], b[db[i]]; va != vb {
			if va < vb {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(da) < len(db):
		return -1
	case len(da) > len(db):
		return 1
	}
	return 0
}

// SortSolutions sorts a solution list in place into the canonical order of
// CompareMappings and returns it. Applying it at every output boundary makes
// solution enumeration byte-stable across runs regardless of map iteration
// order anywhere upstream.
func SortSolutions(sols []Mapping) []Mapping {
	sort.SliceStable(sols, func(i, j int) bool {
		return CompareMappings(sols[i], sols[j]) < 0
	})
	return sols
}

// MappingSet is a set of partial mappings with canonical-key deduplication.
type MappingSet struct {
	byKey map[string]Mapping
}

// NewMappingSet returns an empty set.
func NewMappingSet() *MappingSet {
	return &MappingSet{byKey: make(map[string]Mapping)}
}

// Add inserts h, reporting whether it was new.
func (s *MappingSet) Add(h Mapping) bool {
	k := h.Key()
	if _, ok := s.byKey[k]; ok {
		return false
	}
	s.byKey[k] = h.Clone()
	return true
}

// Contains reports whether the set holds exactly h.
func (s *MappingSet) Contains(h Mapping) bool {
	_, ok := s.byKey[h.Key()]
	return ok
}

// Len returns the number of mappings in the set.
func (s *MappingSet) Len() int { return len(s.byKey) }

// All returns the mappings in the canonical solution order of
// CompareMappings, for deterministic output.
func (s *MappingSet) All() []Mapping {
	out := make([]Mapping, 0, len(s.byKey))
	for _, h := range s.byKey {
		out = append(out, h) //lint:ignore R1 canonical order is restored by SortSolutions on return
	}
	return SortSolutions(out)
}

// Maximal returns the mappings of the set that are not properly subsumed by
// another member: the restriction used by the maximal-mappings semantics
// p_m(D) of Section 3.4.
func (s *MappingSet) Maximal() []Mapping {
	all := s.All()
	var out []Mapping
	for i, h := range all {
		dominated := false
		for j, hp := range all {
			if i != j && h.ProperlySubsumedBy(hp) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, h)
		}
	}
	return out
}
