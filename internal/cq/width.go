package cq

import (
	"fmt"

	"wdpt/internal/hypergraph"
)

// Hypergraph returns the hypergraph H_q of the query (Section 3.1): vertices
// are the variables of q and hyperedges the variable sets of its atoms.
func (q *CQ) Hypergraph() *hypergraph.Hypergraph {
	return AtomsHypergraph(q.atoms)
}

// AtomsHypergraph builds the hypergraph of a set of atoms.
func AtomsHypergraph(atoms []Atom) *hypergraph.Hypergraph {
	h := hypergraph.New(AtomsVars(atoms))
	for _, a := range atoms {
		h.AddEdge(a.Vars())
	}
	return h
}

// Treewidth returns the treewidth of H_q; exact reports whether the value is
// exact rather than a min-fill upper bound (see hypergraph.Treewidth).
func (q *CQ) Treewidth() (width int, exact bool) {
	return q.Hypergraph().Treewidth()
}

// Class is a syntactically defined class of conjunctive queries, such as
// TW(k) or HW(k), membership in which guarantees tractable evaluation.
type Class interface {
	// Name returns a short identifier such as "TW(2)".
	Name() string
	// Contains reports whether the query belongs to the class.
	Contains(q *CQ) bool
	// ContainsAtoms reports membership of the Boolean query over atoms.
	ContainsAtoms(atoms []Atom) bool
	// SubqueryClosed reports whether the class is closed under taking
	// arbitrary subsets of atoms. TW(k) and HW'(k) are; HW(k) is not
	// (Section 5).
	SubqueryClosed() bool
}

// TW returns the class TW(k) of CQs of treewidth at most k.
func TW(k int) Class { return twClass(k) }

// HW returns the class HW(k) of CQs of (generalized) hypertreewidth at most
// k. HW(1) is the class of acyclic CQs.
func HW(k int) Class { return hwClass(k) }

// HWPrime returns the class HW'(k) of CQs all of whose subqueries have
// hypertreewidth at most k (β-hypertreewidth ≤ k); see Section 5.
func HWPrime(k int) Class { return hwPrimeClass(k) }

type twClass int

func (k twClass) Name() string { return fmt.Sprintf("TW(%d)", int(k)) }
func (k twClass) Contains(q *CQ) bool {
	return k.ContainsAtoms(q.atoms)
}
func (k twClass) ContainsAtoms(atoms []Atom) bool {
	return AtomsHypergraph(atoms).TreewidthAtMost(int(k))
}
func (k twClass) SubqueryClosed() bool { return true }

type hwClass int

func (k hwClass) Name() string { return fmt.Sprintf("HW(%d)", int(k)) }
func (k hwClass) Contains(q *CQ) bool {
	return k.ContainsAtoms(q.atoms)
}
func (k hwClass) ContainsAtoms(atoms []Atom) bool {
	return AtomsHypergraph(atoms).GeneralizedHypertreewidthAtMost(int(k))
}
func (k hwClass) SubqueryClosed() bool { return false }

type hwPrimeClass int

func (k hwPrimeClass) Name() string { return fmt.Sprintf("HW'(%d)", int(k)) }
func (k hwPrimeClass) Contains(q *CQ) bool {
	return k.ContainsAtoms(q.atoms)
}
func (k hwPrimeClass) ContainsAtoms(atoms []Atom) bool {
	return AtomsHypergraph(atoms).BetaHypertreewidthAtMost(int(k))
}
func (k hwPrimeClass) SubqueryClosed() bool { return true }

// EquivalentInClass reports whether q is equivalent to some CQ in the class
// and, if so, returns a witness. For subquery-closed classes (TW(k),
// HW'(k)) the test is exactly "core(q) ∈ C" ([Dalmau, Kolaitis, Vardi 2002]):
// the core is the witness. For HW(k) the core test is sound but the
// procedure additionally searches quotient images, since the class is not
// closed under substructures.
func EquivalentInClass(q *CQ, c Class) (*CQ, bool) {
	core := Core(q)
	if c.Contains(core) {
		return core, true
	}
	if c.SubqueryClosed() {
		// For subquery-closed classes the core characterization is
		// complete: if q ≡ q' ∈ C then core(q) = core(q') is a subquery
		// of q' and hence in C.
		return nil, false
	}
	var witness *CQ
	Quotients(q, func(img *CQ, _ Mapping) bool {
		if c.Contains(img) && Equivalent(q, img) {
			witness = img
			return false
		}
		return true
	})
	return witness, witness != nil
}
