package cq

import (
	"wdpt/internal/db"
	"wdpt/internal/guard"
	"wdpt/internal/obs"
)

// CompiledAtoms is the database-independent compiled form of an atom list
// that is checked repeatedly under assignments over one fixed variable
// domain: the variable slot layout and the component decomposition induced
// by treating exactly that domain as pre-bound. Compiling once hoists the
// per-call variable discovery, slot-map construction and component split
// out of hot repeated-satisfiability loops (the maximality check tests the
// same extension unit under every candidate homomorphism of a subtree);
// only the per-database work — constant resolution, index probes, scans —
// remains per call. A CompiledAtoms is immutable and safe for concurrent
// use.
type CompiledAtoms struct {
	atoms    []Atom
	vars     []string
	slotOf   map[string]int
	fixedDom []string // declared pre-bound variables that occur in atoms
	fixedSl  []int    // slot of each fixedDom entry
	comps    [][]Atom // atomComponents(atoms, fixedDom)
	ccomps   []compiledComp
}

// compiledComp is the precompiled solver input for one component: the
// shared read-only argument references and the widest atom arity. args is
// nil when the component mentions constants — constants resolve against a
// specific database's dictionary, so those components compile per call
// exactly as the uncompiled path does.
type compiledComp struct {
	args     [][]argRef
	maxArity int
}

// CompileAtoms compiles atoms for repeated satisfiability checks in which
// exactly the variables of fixedDom are pre-bound. Entries of fixedDom not
// occurring in atoms are dropped (a binding for a variable outside the
// atoms never constrains the search); the retained domain is exposed by
// FixedDom.
func CompileAtoms(atoms []Atom, fixedDom []string) *CompiledAtoms {
	c := &CompiledAtoms{atoms: atoms, vars: AtomsVars(atoms)}
	c.slotOf = make(map[string]int, len(c.vars))
	for i, v := range c.vars {
		c.slotOf[v] = i
	}
	fixed := make(Mapping, len(fixedDom))
	for _, v := range fixedDom {
		sl, ok := c.slotOf[v]
		if !ok {
			continue
		}
		c.fixedDom = append(c.fixedDom, v)
		c.fixedSl = append(c.fixedSl, sl)
		fixed[v] = ""
	}
	c.comps = atomComponents(atoms, fixed)
	c.ccomps = make([]compiledComp, len(c.comps))
	for ci, comp := range c.comps {
		cc := compiledComp{args: make([][]argRef, len(comp))}
		for i, a := range comp {
			refs := make([]argRef, len(a.Args))
			for p, term := range a.Args {
				if !term.IsVar() {
					cc.args = nil
					break
				}
				refs[p] = argRef{slot: c.slotOf[term.Value()]}
			}
			if cc.args == nil {
				break
			}
			cc.args[i] = refs
			if len(refs) > cc.maxArity {
				cc.maxArity = len(refs)
			}
		}
		c.ccomps[ci] = cc
	}
	return c
}

// FixedDom returns the retained fixed domain, aligned with the fixedIDs
// argument of SatisfiableIDs. Must not be modified.
func (c *CompiledAtoms) FixedDom() []string { return c.fixedDom }

// SatisfiableIDs reports whether the compiled atoms admit a homomorphism to
// d binding each FixedDom variable to the corresponding dictionary-encoded
// ID (db.NoID matches nothing, mirroring a string binding outside the
// active domain). The search, its work counters and its guard charges are
// identical to SatisfiableObs with the equivalent string mapping, except
// that the fixed bindings arrive as IDs and therefore cost no dictionary
// probes.
func (c *CompiledAtoms) SatisfiableIDs(d *db.Database, fixedIDs []uint32, st *obs.Stats, gm *guard.Meter) bool {
	var k SatChecker
	return k.Satisfiable(c, d, fixedIDs, st, gm)
}

// SatChecker runs repeated compiled satisfiability checks reusing its
// internal solver buffers, so a check against a constant-free compilation
// allocates nothing. The zero value is ready to use. Not safe for
// concurrent use; each goroutine needs its own checker.
type SatChecker struct {
	ctx      idContext
	solver   homSolver
	fixedBuf []uint32
	found    bool
	visit    func() bool
}

// Satisfiable is SatisfiableIDs evaluated through the checker's reusable
// buffers. fixedIDs is read during the call only.
func (k *SatChecker) Satisfiable(c *CompiledAtoms, d *db.Database, fixedIDs []uint32, st *obs.Stats, gm *guard.Meter) bool {
	if k.visit == nil {
		k.visit = func() bool {
			k.found = true
			return false
		}
	}
	ctx := &k.ctx
	ctx.atoms = c.atoms
	ctx.d = d
	ctx.dict = d.Dict()
	ctx.st = st
	ctx.gm = gm
	ctx.vars = c.vars
	ctx.slotOf = c.slotOf
	ctx.comps = c.comps
	ctx.compiled = c
	ctx.solver = &k.solver
	ctx.assign = growU32(ctx.assign, len(c.vars))
	ctx.bound = growBoolZero(ctx.bound, len(c.vars))
	ctx.lookups, ctx.misses, ctx.probes, ctx.rows = 0, 0, 0, 0
	for i, sl := range c.fixedSl {
		ctx.assign[sl] = fixedIDs[i]
		ctx.bound[sl] = true
	}
	k.found = false
	ctx.run(k.visit)
	return k.found
}

// SatisfiableAt is Satisfiable with the fixed bindings gathered from ids by
// position: binding i of the compiled fixed domain is ids[at[i]]. The
// gather reuses the checker's buffer, so callers transferring bindings out
// of a live solver assignment (cf. IDAssignment) avoid building a slice per
// call.
func (k *SatChecker) SatisfiableAt(c *CompiledAtoms, d *db.Database, ids []uint32, at []int, st *obs.Stats, gm *guard.Meter) bool {
	k.fixedBuf = k.fixedBuf[:0]
	for _, i := range at {
		k.fixedBuf = append(k.fixedBuf, ids[i])
	}
	return k.Satisfiable(c, d, k.fixedBuf, st, gm)
}

// growU32 returns a slice of length n reusing buf's backing array when it
// is large enough. Contents are unspecified.
func growU32(buf []uint32, n int) []uint32 {
	if cap(buf) < n {
		return make([]uint32, n)
	}
	return buf[:n]
}

// growBoolZero returns an all-false slice of length n reusing buf's backing
// array when it is large enough.
func growBoolZero(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = false
	}
	return buf
}

// growRels returns a slice of length n reusing buf's backing array when it
// is large enough. Contents are unspecified.
func growRels(buf []*db.Relation, n int) []*db.Relation {
	if cap(buf) < n {
		return make([]*db.Relation, n)
	}
	return buf[:n]
}

// growInt returns a slice of length n reusing buf's backing array when it
// is large enough. Contents are unspecified.
func growInt(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}
