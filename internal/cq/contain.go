package cq

import (
	"wdpt/internal/db"
)

// ContainedIn reports q1 ⊆ q2: for every database D, q1(D) ⊆ q2(D). By the
// Chandra–Merlin theorem this holds iff there is a homomorphism from q2 to
// the frozen canonical database of q1 mapping each free variable of q2 to
// the frozen image of the corresponding free variable of q1.
//
// The queries must have the same free-variable tuple length; free variables
// correspond positionally.
func ContainedIn(q1, q2 *CQ) bool {
	if len(q1.free) != len(q2.free) {
		return false
	}
	canon, frz := q1.CanonicalDatabase()
	fixed := make(Mapping, len(q2.free))
	for i, x2 := range q2.free {
		fixed[x2] = frz[q1.free[i]]
	}
	return Satisfiable(q2.atoms, canon, fixed)
}

// Equivalent reports q1 ≡ q2: containment in both directions.
func Equivalent(q1, q2 *CQ) bool {
	return ContainedIn(q1, q2) && ContainedIn(q2, q1)
}

// HomToAtoms reports whether there is a homomorphism from the atoms of src
// into the atoms of dst (viewing dst frozen) that is consistent with the
// variable-to-variable requirements in req: req[v] = w demands that variable
// v of src maps to the frozen image of variable w of dst. This is the
// building block used by WDPT subsumption tests.
func HomToAtoms(src, dst []Atom, req map[string]string) bool {
	canon, frz := FreezeAtoms(dst)
	fixed := make(Mapping, len(req))
	for v, w := range req {
		img, ok := frz[w]
		if !ok {
			// w does not occur in dst; no homomorphism can satisfy req.
			return false
		}
		fixed[v] = img
	}
	return Satisfiable(src, canon, fixed)
}

// Core returns the core of q: a minimal equivalent subquery obtained by
// repeatedly folding the query onto proper subsets of its atoms via
// endomorphisms that fix the free variables. Cores are unique up to
// isomorphism; the returned query is equivalent to q.
func Core(q *CQ) *CQ {
	atoms := DedupAtoms(q.atoms)
	for {
		folded, changed := foldOnce(atoms, q.free)
		if !changed {
			break
		}
		atoms = folded
	}
	out, err := New(q.free, atoms)
	if err != nil {
		// Folding fixes free variables, so they always remain in the body.
		//lint:ignore R2 unreachable invariant violation: endomorphisms fix the free variables
		panic("cq: core lost a free variable: " + err.Error())
	}
	return out
}

// foldOnce searches for an endomorphism of atoms (fixing the free variables)
// whose image uses strictly fewer atoms, and returns the image atom set.
func foldOnce(atoms []Atom, free []string) ([]Atom, bool) {
	canon, frz := FreezeAtoms(atoms)
	fixed := make(Mapping, len(free))
	for _, x := range free {
		if img, ok := frz[x]; ok {
			fixed[x] = img
		}
	}
	total := len(atoms)
	var result []Atom
	Homomorphisms(atoms, canon, fixed, func(h Mapping) bool {
		img := imageAtoms(atoms, h)
		if len(img) < total {
			result = img
			return false
		}
		return true
	})
	if result == nil {
		return atoms, false
	}
	return result, true
}

// imageAtoms applies h (whose range consists of frozen constants •v) to the
// atoms and converts the image back to atoms over variables, deduplicating.
func imageAtoms(atoms []Atom, h Mapping) []Atom {
	out := make([]Atom, 0, len(atoms))
	for _, a := range atoms {
		args := make([]Term, len(a.Args))
		for i, t := range a.Args {
			if !t.IsVar() {
				args[i] = t
				continue
			}
			img := h[t.Value()]
			args[i] = unfreezeTerm(img)
		}
		out = append(out, Atom{Rel: a.Rel, Args: args})
	}
	return DedupAtoms(out)
}

// unfreezeTerm converts a frozen constant "•v" back to the variable v, and
// leaves ordinary constants intact.
func unfreezeTerm(c string) Term {
	if len(c) >= len("•") && c[:len("•")] == "•" {
		return V(c[len("•"):])
	}
	return C(c)
}

// IsCore reports whether q is its own core: every endomorphism fixing the
// free variables is surjective on atoms.
func IsCore(q *CQ) bool {
	atoms := DedupAtoms(q.atoms)
	if len(atoms) != len(q.atoms) {
		return false
	}
	_, changed := foldOnce(atoms, q.free)
	return !changed
}

// EvaluateOn is a convenience wrapper evaluating q over a database given as
// ground atoms; used by tests.
func EvaluateOn(q *CQ, facts []Atom) []Mapping {
	d := db.New()
	for _, a := range facts {
		vals := make([]string, len(a.Args))
		for i, t := range a.Args {
			if t.IsVar() {
				//lint:ignore R2 test-only convenience with a documented ground-atoms precondition
				panic("cq: EvaluateOn requires ground atoms")
			}
			vals[i] = t.Value()
		}
		d.Insert(a.Rel, vals...)
	}
	return q.Evaluate(d)
}
