package cq

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"wdpt/internal/db"
)

// pathDB returns a database with edges E(i, i+1) for i in [0, n).
func pathDB(n int) *db.Database {
	d := db.New()
	for i := 0; i < n; i++ {
		d.Insert("E", fmt.Sprint(i), fmt.Sprint(i+1))
	}
	return d
}

func TestTermBasics(t *testing.T) {
	v, c := V("x"), C("a")
	if !v.IsVar() || c.IsVar() {
		t.Fatal("IsVar wrong")
	}
	if v.Value() != "x" || c.Value() != "a" {
		t.Fatal("Value wrong")
	}
	if v.String() != "?x" || c.String() != "a" {
		t.Fatal("String wrong")
	}
}

func TestAtomVarsAndKey(t *testing.T) {
	a := NewAtom("R", V("x"), C("c"), V("x"), V("y"))
	if got := a.Vars(); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Fatalf("Vars = %v", got)
	}
	if a.IsGround() {
		t.Fatal("atom with vars reported ground")
	}
	if !NewAtom("R", C("a")).IsGround() {
		t.Fatal("ground atom not reported ground")
	}
	b := NewAtom("R", V("x"), C("c"), V("x"), V("y"))
	if !a.Equal(b) || a.Key() != b.Key() {
		t.Fatal("equal atoms should match")
	}
	// A variable named like a constant must not collide in keys.
	if NewAtom("R", V("a")).Key() == NewAtom("R", C("a")).Key() {
		t.Fatal("var/const key collision")
	}
	if a.String() != "R(?x, c, ?x, ?y)" {
		t.Fatalf("String = %q", a.String())
	}
}

func TestNewValidation(t *testing.T) {
	atoms := []Atom{NewAtom("E", V("x"), V("y"))}
	if _, err := New([]string{"x", "x"}, atoms); err == nil {
		t.Fatal("duplicate free var accepted")
	}
	if _, err := New([]string{"z"}, atoms); err == nil {
		t.Fatal("free var missing from body accepted")
	}
	q, err := New([]string{"x"}, atoms)
	if err != nil || len(q.Free()) != 1 {
		t.Fatalf("valid query rejected: %v", err)
	}
	if got := q.ExistentialVars(); len(got) != 1 || got[0] != "y" {
		t.Fatalf("ExistentialVars = %v", got)
	}
}

func TestMappingSubsumption(t *testing.T) {
	h1 := Mapping{"x": "a"}
	h2 := Mapping{"x": "a", "y": "b"}
	h3 := Mapping{"x": "c"}
	if !h1.SubsumedBy(h2) || h2.SubsumedBy(h1) {
		t.Fatal("subsumption wrong")
	}
	if !h1.ProperlySubsumedBy(h2) || h1.ProperlySubsumedBy(h1) {
		t.Fatal("proper subsumption wrong")
	}
	if h1.SubsumedBy(h3) || h3.SubsumedBy(h1) {
		t.Fatal("incompatible mappings subsume")
	}
	if !h1.CompatibleWith(h2) || h1.CompatibleWith(h3) {
		t.Fatal("compatibility wrong")
	}
	u := h1.Union(Mapping{"y": "b"})
	if !u.Equal(h2) {
		t.Fatal("union wrong")
	}
	if got := h2.Restrict([]string{"y", "z"}); len(got) != 1 || got["y"] != "b" {
		t.Fatalf("Restrict = %v", got)
	}
}

func TestMappingSetMaximal(t *testing.T) {
	s := NewMappingSet()
	s.Add(Mapping{"x": "a"})
	s.Add(Mapping{"x": "a", "y": "b"})
	s.Add(Mapping{"x": "c"})
	s.Add(Mapping{"x": "a"}) // duplicate
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	max := s.Maximal()
	if len(max) != 2 {
		t.Fatalf("Maximal = %v, want 2 mappings", max)
	}
	for _, m := range max {
		if m.Equal(Mapping{"x": "a"}) {
			t.Fatal("subsumed mapping survived Maximal")
		}
	}
}

func TestHomomorphismsPath(t *testing.T) {
	// E(x,y), E(y,z) over a 3-edge path: homs = {(0,1,2), (1,2,3)}.
	atoms := []Atom{NewAtom("E", V("x"), V("y")), NewAtom("E", V("y"), V("z"))}
	d := pathDB(3)
	if got := CountHomomorphisms(atoms, d, nil); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
	if !Satisfiable(atoms, d, Mapping{"x": "0"}) {
		t.Fatal("x=0 should be satisfiable")
	}
	if Satisfiable(atoms, d, Mapping{"x": "2"}) {
		t.Fatal("x=2 should not extend (no edge from 3)")
	}
	h, ok := ExtendToHom(atoms, d, Mapping{"y": "2"})
	if !ok || h["x"] != "1" || h["z"] != "3" {
		t.Fatalf("ExtendToHom = %v, %v", h, ok)
	}
}

func TestHomomorphismsConstantsAndRepeats(t *testing.T) {
	d := db.New()
	d.Insert("R", "a", "a")
	d.Insert("R", "a", "b")
	// R(x, x) matches only (a, a).
	if got := CountHomomorphisms([]Atom{NewAtom("R", V("x"), V("x"))}, d, nil); got != 1 {
		t.Fatalf("repeated var count = %d, want 1", got)
	}
	// R(a, y) matches both tuples.
	if got := CountHomomorphisms([]Atom{NewAtom("R", C("a"), V("y"))}, d, nil); got != 2 {
		t.Fatalf("constant count = %d, want 2", got)
	}
	// R(b, y) matches nothing.
	if Satisfiable([]Atom{NewAtom("R", C("b"), V("y"))}, d, nil) {
		t.Fatal("R(b, y) should fail")
	}
}

func TestHomomorphismsEmptyAtoms(t *testing.T) {
	d := pathDB(2)
	if got := CountHomomorphisms(nil, d, nil); got != 1 {
		t.Fatalf("empty atom set should have exactly the empty hom, got %d", got)
	}
}

func TestHomomorphismsUnknownRelation(t *testing.T) {
	d := pathDB(2)
	if Satisfiable([]Atom{NewAtom("Zzz", V("x"))}, d, nil) {
		t.Fatal("unknown relation should be unsatisfiable")
	}
	// Wrong arity likewise.
	if Satisfiable([]Atom{NewAtom("E", V("x"), V("y"), V("z"))}, d, nil) {
		t.Fatal("wrong arity should be unsatisfiable")
	}
}

func TestEvaluate(t *testing.T) {
	q := MustNew([]string{"x"}, []Atom{NewAtom("E", V("x"), V("y")), NewAtom("E", V("y"), V("z"))})
	got := q.Evaluate(pathDB(3))
	if len(got) != 2 {
		t.Fatalf("Evaluate = %v, want 2 answers", got)
	}
	if !q.Contains(pathDB(3), Mapping{"x": "0"}) {
		t.Fatal("x=0 should be an answer")
	}
	if q.Contains(pathDB(3), Mapping{"x": "3"}) {
		t.Fatal("x=3 should not be an answer")
	}
	// Contains requires the mapping to be defined exactly on the free vars.
	if q.Contains(pathDB(3), Mapping{"x": "0", "y": "1"}) {
		t.Fatal("over-defined mapping accepted")
	}
	if q.Contains(pathDB(3), Mapping{}) {
		t.Fatal("under-defined mapping accepted")
	}
}

func TestEvaluateBool(t *testing.T) {
	q := Boolean([]Atom{NewAtom("E", V("x"), V("x"))})
	if q.EvaluateBool(pathDB(4)) {
		t.Fatal("no self-loop expected")
	}
	d := pathDB(4)
	d.Insert("E", "7", "7")
	if !q.EvaluateBool(d) {
		t.Fatal("self-loop should satisfy")
	}
}

func TestProjections(t *testing.T) {
	atoms := []Atom{NewAtom("E", V("x"), V("y"))}
	got := Projections(atoms, pathDB(3), nil, []string{"x"})
	if len(got) != 3 {
		t.Fatalf("projections = %v, want 3", got)
	}
}

func TestCanonicalDatabase(t *testing.T) {
	q := MustNew([]string{"x"}, []Atom{NewAtom("E", V("x"), V("y")), NewAtom("E", V("y"), C("c"))})
	d, frz := q.CanonicalDatabase()
	if d.Size() != 2 {
		t.Fatalf("canonical db size = %d, want 2", d.Size())
	}
	if !d.Contains("E", frz["x"], frz["y"]) || !d.Contains("E", frz["y"], "c") {
		t.Fatal("canonical db contents wrong")
	}
}

func TestContainment(t *testing.T) {
	// q1: path of length 2 from x; q2: single edge from x. q1 ⊆ q2.
	q1 := MustNew([]string{"x"}, []Atom{NewAtom("E", V("x"), V("y")), NewAtom("E", V("y"), V("z"))})
	q2 := MustNew([]string{"x"}, []Atom{NewAtom("E", V("x"), V("y"))})
	if !ContainedIn(q1, q2) {
		t.Fatal("longer path should be contained in shorter")
	}
	if ContainedIn(q2, q1) {
		t.Fatal("shorter path should not be contained in longer")
	}
	if Equivalent(q1, q2) {
		t.Fatal("not equivalent")
	}
}

func TestContainmentFreeVarPositional(t *testing.T) {
	// Same shape, different free variable names: positional correspondence.
	q1 := MustNew([]string{"a"}, []Atom{NewAtom("E", V("a"), V("b"))})
	q2 := MustNew([]string{"u"}, []Atom{NewAtom("E", V("u"), V("v"))})
	if !Equivalent(q1, q2) {
		t.Fatal("renamed queries should be equivalent")
	}
	q3 := MustNew([]string{"v"}, []Atom{NewAtom("E", V("u"), V("v"))})
	if ContainedIn(q1, q3) && ContainedIn(q3, q1) {
		t.Fatal("source/target free positions differ; should not be equivalent")
	}
	// Different free tuple lengths are never contained.
	q4 := MustNew([]string{"u", "v"}, []Atom{NewAtom("E", V("u"), V("v"))})
	if ContainedIn(q1, q4) || ContainedIn(q4, q1) {
		t.Fatal("arity mismatch containment")
	}
}

func TestContainmentSemanticsAgree(t *testing.T) {
	// Cross-check syntactic containment against evaluation on small random
	// databases: q1 ⊆ q2 implies q1(D) answers are subsumed pointwise.
	q1 := MustNew([]string{"x"}, []Atom{NewAtom("E", V("x"), V("y")), NewAtom("E", V("y"), V("x"))})
	q2 := MustNew([]string{"x"}, []Atom{NewAtom("E", V("x"), V("y"))})
	if !ContainedIn(q1, q2) {
		t.Fatal("2-cycle query contained in edge query")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := db.New()
		for i := 0; i < 10; i++ {
			d.Insert("E", fmt.Sprint(rng.Intn(4)), fmt.Sprint(rng.Intn(4)))
		}
		a1, a2 := q1.Evaluate(d), q2.Evaluate(d)
		set2 := NewMappingSet()
		for _, h := range a2 {
			set2.Add(h)
		}
		for _, h := range a1 {
			if !set2.Contains(h) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCore(t *testing.T) {
	// E(x,y), E(x,z): folds to E(x,y).
	q := MustNew([]string{"x"}, []Atom{NewAtom("E", V("x"), V("y")), NewAtom("E", V("x"), V("z"))})
	core := Core(q)
	if len(core.Atoms()) != 1 {
		t.Fatalf("core = %v, want single atom", core)
	}
	if !Equivalent(q, core) {
		t.Fatal("core must be equivalent")
	}
	if !IsCore(core) {
		t.Fatal("core of core")
	}
	if IsCore(q) {
		t.Fatal("foldable query reported as core")
	}
}

func TestCoreFixesFreeVariables(t *testing.T) {
	// Both y and z free: nothing can fold.
	q := MustNew([]string{"x", "y", "z"}, []Atom{NewAtom("E", V("x"), V("y")), NewAtom("E", V("x"), V("z"))})
	core := Core(q)
	if len(core.Atoms()) != 2 {
		t.Fatalf("core dropped an atom with free variables: %v", core)
	}
}

// symCycle returns the symmetric (undirected-style) n-cycle as atoms.
func symCycle(n int) []Atom {
	var atoms []Atom
	name := func(i int) string { return fmt.Sprintf("c%d", i%n) }
	for i := 0; i < n; i++ {
		atoms = append(atoms,
			NewAtom("E", V(name(i)), V(name(i+1))),
			NewAtom("E", V(name(i+1)), V(name(i))))
	}
	return atoms
}

func TestCoreEvenVsOddCycle(t *testing.T) {
	// Classic: an undirected even cycle retracts to a single edge, while an
	// odd cycle is a core. A directed cycle, in contrast, never folds.
	even := Boolean(symCycle(4))
	core := Core(even)
	if len(core.Atoms()) > 2 {
		t.Fatalf("even symmetric cycle core too big: %v", core)
	}
	odd := Boolean(symCycle(3))
	if !IsCore(odd) {
		t.Fatal("odd symmetric cycle should be a core")
	}
	directed := Boolean([]Atom{
		NewAtom("E", V("a"), V("b")),
		NewAtom("E", V("b"), V("c")),
		NewAtom("E", V("c"), V("d")),
		NewAtom("E", V("d"), V("a")),
	})
	if !IsCore(directed) {
		t.Fatal("directed 4-cycle should be a core")
	}
}

func TestTreewidthOfCQ(t *testing.T) {
	// Example 4: path query has treewidth 1; closing the cycle gives 2;
	// clique gives n-1.
	n := 6
	var atoms []Atom
	for i := 1; i < n; i++ {
		atoms = append(atoms, NewAtom("E", V(fmt.Sprintf("x%d", i)), V(fmt.Sprintf("x%d", i+1))))
	}
	q := Boolean(atoms)
	if w, _ := q.Treewidth(); w != 1 {
		t.Fatalf("path query tw = %d, want 1", w)
	}
	if !TW(1).Contains(q) || TW(1).Name() != "TW(1)" {
		t.Fatal("path should be in TW(1)")
	}
	atoms = append(atoms, NewAtom("E", V("x1"), V(fmt.Sprintf("x%d", n))))
	q = Boolean(atoms)
	if w, _ := q.Treewidth(); w != 2 {
		t.Fatalf("cycle query tw = %d, want 2", w)
	}
	if TW(1).Contains(q) || !TW(2).Contains(q) {
		t.Fatal("cycle class membership wrong")
	}
}

func TestHWClassExample5(t *testing.T) {
	// Example 5: clique of E-atoms plus one covering T_n atom is acyclic
	// (HW(1)) while treewidth is n-1.
	n := 5
	var atoms []Atom
	var vars []Term
	for i := 1; i <= n; i++ {
		vars = append(vars, V(fmt.Sprintf("x%d", i)))
	}
	for i := 1; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			atoms = append(atoms, NewAtom("E", V(fmt.Sprintf("x%d", i)), V(fmt.Sprintf("x%d", j))))
		}
	}
	atoms = append(atoms, NewAtom("T", vars...))
	q := Boolean(atoms)
	if !HW(1).Contains(q) {
		t.Fatal("theta_n should be acyclic")
	}
	if TW(n - 2).Contains(q) {
		t.Fatal("theta_n treewidth should be n-1")
	}
	if HWPrime(1).Contains(q) {
		t.Fatal("theta_n is not beta-acyclic")
	}
	if HW(1).SubqueryClosed() || !TW(1).SubqueryClosed() || !HWPrime(1).SubqueryClosed() {
		t.Fatal("SubqueryClosed flags wrong")
	}
}

func TestEquivalentInClass(t *testing.T) {
	// A symmetric 4-cycle is equivalent (via its core, a single symmetric
	// edge) to a TW(1) query; a symmetric triangle is not.
	q := Boolean(symCycle(4))
	if w, ok := EquivalentInClass(q, TW(1)); !ok || w == nil {
		t.Fatal("even symmetric cycle should be TW(1)-equivalent")
	}
	tri := Boolean(symCycle(3))
	if _, ok := EquivalentInClass(tri, TW(1)); ok {
		t.Fatal("symmetric triangle should not be TW(1)-equivalent")
	}
	if _, ok := EquivalentInClass(tri, TW(2)); !ok {
		t.Fatal("symmetric triangle is itself TW(2)")
	}
}

func TestQuotientsCountAndContainment(t *testing.T) {
	// Boolean query with 2 existential vars: partitions of {y,z} with no
	// free vars = 2 (together or separate).
	q := Boolean([]Atom{NewAtom("E", V("y"), V("z"))})
	count := 0
	Quotients(q, func(img *CQ, theta Mapping) bool {
		count++
		if !ContainedIn(img, q) {
			t.Fatalf("quotient image %v not contained in %v", img, q)
		}
		return true
	})
	if count != 2 {
		t.Fatalf("quotient count = %d, want 2", count)
	}
	// With one free var x and evars y: y joins x's block or is alone => 2.
	q2 := MustNew([]string{"x"}, []Atom{NewAtom("E", V("x"), V("y"))})
	count = 0
	Quotients(q2, func(img *CQ, _ Mapping) bool {
		count++
		return true
	})
	if count != 2 {
		t.Fatalf("quotient count = %d, want 2", count)
	}
}

func TestApproximationsTriangle(t *testing.T) {
	// The TW(1)-approximation of the Boolean triangle is the single
	// self-loop-free pattern that collapses: mapping all three variables
	// together yields E(x,x); keeping a path yields E(a,b),E(b,c),E(c,a)
	// collapsed variants. The known TW(1)-approximation of the triangle is
	// the query with a self-loop E(x,x) — collapsing everything — since any
	// tree-shaped query contained in the triangle must map into it.
	tri := Boolean([]Atom{
		NewAtom("E", V("a"), V("b")),
		NewAtom("E", V("b"), V("c")),
		NewAtom("E", V("c"), V("a")),
	})
	approxes := ApproximationsInClass(tri, TW(1))
	if len(approxes) == 0 {
		t.Fatal("no approximation found")
	}
	for _, ap := range approxes {
		if !ContainedIn(ap, tri) {
			t.Fatalf("approximation %v not contained in triangle", ap)
		}
		if !TW(1).Contains(ap) {
			t.Fatalf("approximation %v not in TW(1)", ap)
		}
		if !IsApproximationInClass(ap, tri, TW(1)) {
			t.Fatalf("IsApproximationInClass rejects computed approximation %v", ap)
		}
	}
	// The self-loop query must be among (or equivalent to one of) them.
	loop := Boolean([]Atom{NewAtom("E", V("x"), V("x"))})
	found := false
	for _, ap := range approxes {
		if Equivalent(ap, loop) {
			found = true
		}
	}
	if !found {
		t.Fatalf("self-loop approximation missing from %v", approxes)
	}
}

func TestApproximationOfTractableQueryIsItself(t *testing.T) {
	q := MustNew([]string{"x"}, []Atom{NewAtom("E", V("x"), V("y")), NewAtom("E", V("y"), V("z"))})
	approxes := ApproximationsInClass(q, TW(1))
	if len(approxes) != 1 || !Equivalent(approxes[0], q) {
		t.Fatalf("approximation of a TW(1) query should be itself, got %v", approxes)
	}
}

func TestApproximationsRejectConstants(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on constants")
		}
	}()
	q := MustNew([]string{"x"}, []Atom{NewAtom("E", V("x"), C("a"))})
	ApproximationsInClass(q, TW(1))
}

func TestHomToAtoms(t *testing.T) {
	src := []Atom{NewAtom("E", V("x"), V("y"))}
	dst := []Atom{NewAtom("E", V("u"), V("v")), NewAtom("E", V("v"), V("w"))}
	if !HomToAtoms(src, dst, map[string]string{"x": "u"}) {
		t.Fatal("hom with requirement x->u should exist")
	}
	if HomToAtoms(src, dst, map[string]string{"x": "w"}) {
		t.Fatal("no edge out of w")
	}
	if HomToAtoms(src, dst, map[string]string{"x": "nosuch"}) {
		t.Fatal("requirement onto missing var should fail")
	}
}

func TestEvaluateOnHelper(t *testing.T) {
	q := MustNew([]string{"x"}, []Atom{NewAtom("E", V("x"), V("y"))})
	got := EvaluateOn(q, []Atom{NewAtom("E", C("a"), C("b"))})
	if len(got) != 1 || got[0]["x"] != "a" {
		t.Fatalf("EvaluateOn = %v", got)
	}
}

// Property: Core(q) is always equivalent to q on random path-ish queries.
func TestCoreEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 3 + rng.Intn(3)
		na := 2 + rng.Intn(4)
		var atoms []Atom
		for i := 0; i < na; i++ {
			atoms = append(atoms, NewAtom("E",
				V(fmt.Sprintf("v%d", rng.Intn(nv))),
				V(fmt.Sprintf("v%d", rng.Intn(nv)))))
		}
		q := Boolean(atoms)
		core := Core(q)
		return Equivalent(q, core) && IsCore(core)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: every quotient image is contained in the original query, and
// evaluation respects that containment on a random database.
func TestQuotientContainmentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := MustNew([]string{"v0"}, []Atom{
			NewAtom("E", V("v0"), V(fmt.Sprintf("v%d", 1+rng.Intn(2)))),
			NewAtom("E", V(fmt.Sprintf("v%d", 1+rng.Intn(2))), V("v3")),
		})
		d := db.New()
		for i := 0; i < 8; i++ {
			d.Insert("E", fmt.Sprint(rng.Intn(3)), fmt.Sprint(rng.Intn(3)))
		}
		ok := true
		Quotients(q, func(img *CQ, _ Mapping) bool {
			if !ContainedIn(img, q) {
				ok = false
				return false
			}
			ans := NewMappingSet()
			for _, h := range q.Evaluate(d) {
				ans.Add(h)
			}
			for _, h := range img.Evaluate(d) {
				if !ans.Contains(h) {
					ok = false
					return false
				}
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSizeAndString(t *testing.T) {
	q := MustNew([]string{"x"}, []Atom{NewAtom("E", V("x"), V("y"))})
	if q.Size() != 3 {
		t.Fatalf("Size = %d, want 3", q.Size())
	}
	if q.String() != "Ans(x) <- E(?x, ?y)" {
		t.Fatalf("String = %q", q.String())
	}
	if q.HasConstants() {
		t.Fatal("no constants expected")
	}
	c := q.Clone()
	c.atoms[0].Args[0] = C("boom")
	if q.HasConstants() {
		t.Fatal("clone not deep")
	}
}

// TestComponentDecomposition: variable-disjoint atom groups are solved
// independently; solution counts multiply and early unsatisfiability of any
// component zeroes the whole query.
func TestComponentDecomposition(t *testing.T) {
	d := db.New()
	d.Insert("A", "1")
	d.Insert("A", "2")
	d.Insert("B", "x")
	d.Insert("B", "y")
	d.Insert("B", "z")
	atoms := []Atom{NewAtom("A", V("u")), NewAtom("B", V("v"))}
	if got := CountHomomorphisms(atoms, d, nil); got != 6 {
		t.Fatalf("cross product count = %d, want 2*3", got)
	}
	// Adding an unsatisfiable third component kills everything without
	// enumerating the cross product.
	atoms = append(atoms, NewAtom("C", V("w")))
	if got := CountHomomorphisms(atoms, d, nil); got != 0 {
		t.Fatalf("count = %d, want 0", got)
	}
	// Fixed variables disconnect components: with u and v fixed, both
	// atoms are singleton components checked as ground facts.
	atoms = atoms[:2]
	if !Satisfiable(atoms, d, Mapping{"u": "1", "v": "z"}) {
		t.Fatal("fixed-consistent assignment rejected")
	}
	if Satisfiable(atoms, d, Mapping{"u": "3", "v": "z"}) {
		t.Fatal("fixed-inconsistent assignment accepted")
	}
}

// TestComponentEarlyStop: the visitor can stop mid-cross-product.
func TestComponentEarlyStop(t *testing.T) {
	d := db.New()
	for i := 0; i < 5; i++ {
		d.Insert("A", fmt.Sprint(i))
		d.Insert("B", fmt.Sprint(i))
	}
	atoms := []Atom{NewAtom("A", V("u")), NewAtom("B", V("v"))}
	seen := 0
	Homomorphisms(atoms, d, nil, func(h Mapping) bool {
		seen++
		return seen < 3
	})
	if seen != 3 {
		t.Fatalf("early stop failed: visited %d", seen)
	}
}
