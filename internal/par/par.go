// Package par is the bounded worker-pool substrate behind the parallel
// evaluation paths of internal/core, internal/cqeval, internal/uwdpt, and
// internal/approx.
//
// The design is dictated by the repository's determinism contract
// (docs/OBSERVABILITY.md, "Concurrency & cancellation"):
//
//   - a nil *Pool is the sequential pool: Run and Map degrade to a plain
//     in-order loop with zero goroutines and zero par.* counters, so
//     Parallelism ≤ 1 reproduces the legacy sequential behavior (and its
//     pinned counter snapshots) bit for bit;
//   - results are returned indexed by input position, so callers merge them
//     in a fixed order regardless of scheduling (byte-stable output at any
//     worker count);
//   - fan-outs only ever parallelize work whose *set* of operations is
//     independent of execution order (no short-circuits), which keeps the
//     non-par.* work counters identical at every parallelism level;
//   - nested fan-outs never deadlock: helper goroutines are acquired from a
//     token bucket without blocking, and a fan-out that finds the pool
//     saturated simply runs inline on the calling goroutine.
package par

import (
	"sync"
	"sync/atomic"

	"wdpt/internal/guard"
	"wdpt/internal/obs"
)

// Pool bounds the total number of goroutines parallel fan-outs may put to
// work at once. A nil *Pool is the sequential pool; every method is safe on
// the nil receiver.
type Pool struct {
	workers int
	tokens  chan struct{} // helper-goroutine tokens; capacity workers-1
	st      *obs.Stats
}

// New returns a pool allowing up to workers concurrently running tasks,
// recording par.* counters on st (nil st disables recording). workers ≤ 1
// returns nil — the sequential pool.
func New(workers int, st *obs.Stats) *Pool {
	if workers <= 1 {
		return nil
	}
	return &Pool{workers: workers, tokens: make(chan struct{}, workers-1), st: st}
}

// Parallel reports whether the pool actually fans out (false for the
// sequential nil pool).
func (p *Pool) Parallel() bool { return p != nil }

// Workers returns the concurrency bound; 1 for the sequential pool.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Run executes fn(0), ..., fn(n-1), fanning the calls out over the pool.
// The call returns when every task has completed. On the sequential pool
// the tasks run in index order on the calling goroutine; on a parallel pool
// the execution order is unspecified, so fn must only perform work whose
// combined effect is order-independent (atomic counters, writes to
// task-private state).
//
// A panicking task does not crash its worker goroutine: the first panic is
// captured, the remaining queued tasks are skipped, every helper drains
// back into the pool, and the panic is re-raised on the calling goroutine
// (wrapped by guard.FromPanic, so the Solve boundary recovers it into an
// error). Budget trips and injected faults inside tasks therefore unwind
// through fan-outs without leaking goroutines or tokens.
func (p *Pool) Run(n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if p == nil || n == 1 {
		for i := 0; i < n; i++ {
			guard.Fault(guard.SiteParTask)
			fn(i)
		}
		return
	}
	p.st.Add(obs.CtrParTasks, int64(n))
	// Acquire helper tokens without blocking: a saturated pool (every token
	// taken by an enclosing fan-out) degrades to an inline loop, which is
	// what makes nested fan-outs deadlock-free.
	helpers := 0
	for helpers < n-1 && helpers < p.workers-1 {
		select {
		case p.tokens <- struct{}{}:
			helpers++
			continue
		default:
		}
		break
	}
	if helpers == 0 {
		p.st.Inc(obs.CtrParInline)
		for i := 0; i < n; i++ {
			guard.Fault(guard.SiteParTask)
			fn(i)
		}
		return
	}
	p.st.Inc(obs.CtrParFanouts)
	p.st.Max(obs.CtrParMaxInFlight, int64(helpers+1))
	var next atomic.Int64
	var failure atomic.Pointer[guard.TripError]
	work := func() {
		for failure.Load() == nil {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						failure.CompareAndSwap(nil, guard.FromPanic(r))
					}
				}()
				guard.Fault(guard.SiteParTask)
				fn(i)
			}()
		}
	}
	var wg sync.WaitGroup
	for h := 0; h < helpers; h++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-p.tokens }()
			work()
		}()
	}
	work() // the caller participates; its token is implicit
	wg.Wait()
	if te := failure.Load(); te != nil {
		//lint:ignore R2 re-raise of a captured worker panic on the caller; recovered at the Solve boundary (guard.AsError)
		panic(te)
	}
}

// Map computes fn(0), ..., fn(n-1) over the pool and returns the results
// indexed by input position, so callers can merge them in a deterministic
// order no matter how the tasks were scheduled.
func Map[T any](p *Pool, n int, fn func(int) T) []T {
	out := make([]T, n)
	p.Run(n, func(i int) { out[i] = fn(i) })
	return out
}
