package par

import (
	"errors"
	"sync/atomic"
	"testing"

	"wdpt/internal/guard"
	"wdpt/internal/obs"
)

func TestNilPoolIsSequential(t *testing.T) {
	var p *Pool
	if p.Parallel() {
		t.Fatal("nil pool reports Parallel")
	}
	if p.Workers() != 1 {
		t.Fatalf("nil pool Workers = %d, want 1", p.Workers())
	}
	var order []int
	p.Run(5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential pool ran out of order: %v", order)
		}
	}
}

func TestNewSequentialThreshold(t *testing.T) {
	for _, w := range []int{-1, 0, 1} {
		if New(w, nil) != nil {
			t.Fatalf("New(%d) should be the sequential pool", w)
		}
	}
	if New(2, nil) == nil {
		t.Fatal("New(2) should be parallel")
	}
}

func TestMapIndexesResults(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := New(workers, nil)
		got := Map(p, 100, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: Map[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunExecutesEveryTaskOnce(t *testing.T) {
	p := New(4, nil)
	const n = 1000
	var counts [n]atomic.Int32
	p.Run(n, func(i int) { counts[i].Add(1) })
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("task %d ran %d times", i, c)
		}
	}
}

func TestNestedFanoutCompletes(t *testing.T) {
	p := New(3, nil)
	var total atomic.Int64
	p.Run(10, func(int) {
		p.Run(10, func(int) {
			p.Run(10, func(int) { total.Add(1) })
		})
	})
	if got := total.Load(); got != 1000 {
		t.Fatalf("nested fan-out ran %d leaf tasks, want 1000", got)
	}
}

func TestCounters(t *testing.T) {
	st := obs.NewStats()
	p := New(4, st)
	p.Run(50, func(int) {})
	if got := st.Get(obs.CtrParTasks); got != 50 {
		t.Fatalf("par.tasks = %d, want 50", got)
	}
	if st.Get(obs.CtrParFanouts)+st.Get(obs.CtrParInline) == 0 {
		t.Fatal("no fan-out or inline batch recorded")
	}
	if hw := st.Get(obs.CtrParMaxInFlight); hw > 4 {
		t.Fatalf("par.max_in_flight = %d exceeds pool bound 4", hw)
	}

	// The sequential pool records nothing: Parallelism=1 must reproduce the
	// legacy counter snapshots exactly.
	st2 := obs.NewStats()
	New(1, st2).Run(50, func(int) {})
	if snap := st2.Snapshot(); len(snap) != 0 {
		t.Fatalf("sequential pool recorded counters: %v", snap)
	}
}

func TestStatsMax(t *testing.T) {
	st := obs.NewStats()
	st.Max(obs.CtrParMaxInFlight, 3)
	st.Max(obs.CtrParMaxInFlight, 2)
	if got := st.Get(obs.CtrParMaxInFlight); got != 3 {
		t.Fatalf("Max high-water = %d, want 3", got)
	}
	st.Max(obs.CtrParMaxInFlight, 7)
	if got := st.Get(obs.CtrParMaxInFlight); got != 7 {
		t.Fatalf("Max high-water = %d, want 7", got)
	}
}

// recoverAny runs f and returns whatever it panicked with (nil if none).
func recoverAny(f func()) (v any) {
	defer func() { v = recover() }()
	f()
	return nil
}

func TestRunPropagatesTaskPanic(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := New(workers, nil)
		var ran atomic.Int64
		v := recoverAny(func() {
			p.Run(64, func(i int) {
				ran.Add(1)
				if i == 7 {
					panic("task blew up")
				}
			})
		})
		if workers <= 1 {
			// The sequential pool runs tasks on the calling goroutine, so
			// the panic propagates raw; the Solve boundary wraps it there.
			if v != any("task blew up") {
				t.Fatalf("sequential pool re-raised %v, want the raw task value", v)
			}
		} else {
			te, ok := v.(*guard.TripError)
			if !ok {
				t.Fatalf("workers=%d: Run re-raised %T(%v), want *guard.TripError", workers, v, v)
			}
			if !errors.Is(te, guard.ErrPanic) || te.Value != "task blew up" {
				t.Errorf("workers=%d: trip = %+v, want ErrPanic carrying the task value", workers, te)
			}
			if len(te.Stack) == 0 {
				t.Errorf("workers=%d: captured panic lost its stack", workers)
			}
		}
		if n := ran.Load(); n < 1 || n > 64 {
			t.Errorf("workers=%d: %d tasks ran, want within [1, 64]", workers, n)
		}
		// The pool must be fully drained and reusable after the panic.
		var after atomic.Int64
		p.Run(16, func(int) { after.Add(1) })
		if after.Load() != 16 {
			t.Errorf("workers=%d: pool broken after panic: %d/16 tasks ran", workers, after.Load())
		}
	}
}

func TestRunTripErrorPassesThroughUnwrapped(t *testing.T) {
	trip := &guard.TripError{Reason: guard.ErrTupleBudget, Tuples: 9}
	p := New(4, nil)
	v := recoverAny(func() {
		p.Run(32, func(i int) {
			if i == 3 {
				//lint:ignore R2 test raises a budget trip inside a task on purpose
				panic(trip)
			}
		})
	})
	if v != any(trip) {
		t.Fatalf("Run re-raised %v, want the original *TripError unchanged", v)
	}
}
