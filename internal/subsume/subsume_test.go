package subsume

import (
	"testing"

	"wdpt/internal/core"
	"wdpt/internal/cq"
	"wdpt/internal/gen"
)

func TestSubsumptionReflexive(t *testing.T) {
	trees := []*core.PatternTree{
		gen.MusicWDPT("x", "y", "z", "zp"),
		gen.PathWDPT(2),
		gen.StarWDPT(2),
	}
	for i, p := range trees {
		if !Subsumes(p, p, Options{}) {
			t.Fatalf("tree %d: p ⊑ p must hold", i)
		}
	}
}

func TestSubsumptionMusicPruned(t *testing.T) {
	full := gen.MusicWDPT("x", "y", "z", "zp")
	rootOnly := core.MustNew(core.NodeSpec{
		Atoms: []cq.Atom{
			cq.NewAtom("recorded_by", cq.V("x"), cq.V("y")),
			cq.NewAtom("published", cq.V("x"), cq.C("after_2010")),
		},
	}, []string{"x", "y"})
	if !Subsumes(rootOnly, full, Options{}) {
		t.Fatal("root-only tree should be subsumed by the full tree")
	}
	if Subsumes(full, rootOnly, Options{}) {
		t.Fatal("full tree answers bind z and cannot be subsumed by root-only")
	}
	if Equivalent(full, rootOnly, Options{}) {
		t.Fatal("not subsumption-equivalent")
	}
}

func TestCounterExampleWitness(t *testing.T) {
	full := gen.MusicWDPT("x", "y", "z", "zp")
	rootOnly := core.MustNew(core.NodeSpec{
		Atoms: []cq.Atom{
			cq.NewAtom("recorded_by", cq.V("x"), cq.V("y")),
			cq.NewAtom("published", cq.V("x"), cq.C("after_2010")),
		},
	}, []string{"x", "y"})
	d, h, found := CounterExample(full, rootOnly, Options{})
	if !found {
		t.Fatal("expected a counterexample")
	}
	// Verify the witness: h ∈ full(D), and no answer of rootOnly subsumes h.
	inP1 := false
	for _, a := range full.Evaluate(d) {
		if a.Equal(h) {
			inP1 = true
		}
	}
	if !inP1 {
		t.Fatalf("witness mapping %v is not an answer of p1 over\n%s", h, d)
	}
	for _, g := range rootOnly.Evaluate(d) {
		if h.SubsumedBy(g) {
			t.Fatalf("witness %v is subsumed by %v — not a counterexample", h, g)
		}
	}
}

// TestSubsumptionMatchesCQContainment: for single-node WDPTs (CQs),
// subsumption coincides with CQ containment because all answers are total
// on the free variables.
func TestSubsumptionMatchesCQContainment(t *testing.T) {
	cases := []struct{ q1, q2 *cq.CQ }{
		{
			cq.MustNew([]string{"x"}, []cq.Atom{cq.NewAtom("E", cq.V("x"), cq.V("y")), cq.NewAtom("E", cq.V("y"), cq.V("z"))}),
			cq.MustNew([]string{"x"}, []cq.Atom{cq.NewAtom("E", cq.V("x"), cq.V("y"))}),
		},
		{
			cq.MustNew([]string{"x"}, []cq.Atom{cq.NewAtom("E", cq.V("x"), cq.V("x"))}),
			cq.MustNew([]string{"x"}, []cq.Atom{cq.NewAtom("E", cq.V("x"), cq.V("y"))}),
		},
		{
			cq.MustNew([]string{"u"}, []cq.Atom{cq.NewAtom("E", cq.V("u"), cq.V("v"))}),
			cq.MustNew([]string{"a"}, []cq.Atom{cq.NewAtom("E", cq.V("a"), cq.V("b")), cq.NewAtom("E", cq.V("b"), cq.V("c"))}),
		},
	}
	for i, c := range cases {
		// Rename free variables so positional containment matches by name.
		want := cq.ContainedIn(c.q1, c.q2)
		p1, p2 := core.FromCQ(c.q1), core.FromCQ(renameFreeLike(c.q2, c.q1))
		if got := Subsumes(p1, p2, Options{}); got != want {
			t.Fatalf("case %d: Subsumes = %v, containment = %v", i, got, want)
		}
	}
}

// renameFreeLike renames the free variables of q to match ref positionally
// (subsumption compares variables by name, containment by position).
func renameFreeLike(q, ref *cq.CQ) *cq.CQ {
	ren := make(map[string]string)
	for i, x := range q.Free() {
		ren[x] = ref.Free()[i]
	}
	// Avoid capturing existential variables that share names with targets.
	var atoms []cq.Atom
	for _, a := range q.Atoms() {
		args := make([]cq.Term, len(a.Args))
		for j, tm := range a.Args {
			if tm.IsVar() {
				if to, ok := ren[tm.Value()]; ok {
					args[j] = cq.V(to)
					continue
				}
				args[j] = cq.V("e_" + tm.Value())
				continue
			}
			args[j] = tm
		}
		atoms = append(atoms, cq.NewAtom(a.Rel, args...))
	}
	free := make([]string, len(q.Free()))
	copy(free, ref.Free()[:len(q.Free())])
	return cq.MustNew(free, atoms)
}

// TestInnerChecksAgree: the PARTIAL-EVAL inner check (Theorem 11 path) and
// the enumeration inner check decide subsumption identically.
func TestInnerChecksAgree(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		p1 := gen.RandomWDPT(gen.TreeParams{MaxDepth: 1, MaxChildren: 1, AtomsPerNode: 1, FreshVarsPerNode: 1}, seed)
		p2 := gen.RandomWDPT(gen.TreeParams{MaxDepth: 1, MaxChildren: 1, AtomsPerNode: 1, FreshVarsPerNode: 1}, seed+50)
		fast := Subsumes(p1, p2, Options{})
		slow := Subsumes(p1, p2, Options{InnerEnumerate: true})
		if fast != slow {
			t.Fatalf("seed %d: inner checks disagree: fast=%v slow=%v\np1:\n%s\np2:\n%s", seed, fast, slow, p1, p2)
		}
	}
}

// TestSubsumptionSoundOnRandomDatabases: whenever Subsumes(p1, p2) holds,
// every answer of p1 over random databases is subsumed by an answer of p2.
func TestSubsumptionSoundOnRandomDatabases(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		p1 := gen.RandomWDPT(gen.TreeParams{MaxDepth: 1, MaxChildren: 1, AtomsPerNode: 1, FreshVarsPerNode: 1}, seed)
		p2 := gen.RandomWDPT(gen.TreeParams{MaxDepth: 1, MaxChildren: 1, AtomsPerNode: 1, FreshVarsPerNode: 1}, seed+31)
		holds := Subsumes(p1, p2, Options{})
		for dbSeed := int64(0); dbSeed < 4; dbSeed++ {
			d := gen.RandomDatabase(gen.DBParams{DomainSize: 3, TuplesPerRel: 6}, dbSeed)
			a2 := p2.Evaluate(d)
			for _, h := range p1.Evaluate(d) {
				subsumed := false
				for _, g := range a2 {
					if h.SubsumedBy(g) {
						subsumed = true
						break
					}
				}
				if holds && !subsumed {
					t.Fatalf("seed %d: Subsumes holds but answer %v unsubsumed on db seed %d\np1:\n%s\np2:\n%s",
						seed, h, dbSeed, p1, p2)
				}
			}
		}
	}
}

// TestProposition5: subsumption-equivalent trees have identical maximal
// answers over random databases.
func TestProposition5(t *testing.T) {
	// A pair of syntactically different but subsumption-equivalent trees:
	// the music tree and itself with children swapped.
	p1 := gen.MusicWDPT("x", "y", "z", "zp")
	p2 := core.MustNew(core.NodeSpec{
		Atoms: []cq.Atom{
			cq.NewAtom("recorded_by", cq.V("x"), cq.V("y")),
			cq.NewAtom("published", cq.V("x"), cq.C("after_2010")),
		},
		Children: []core.NodeSpec{
			{Atoms: []cq.Atom{cq.NewAtom("formed_in", cq.V("y"), cq.V("zp"))}},
			{Atoms: []cq.Atom{cq.NewAtom("rating", cq.V("x"), cq.V("z"))}},
		},
	}, []string{"x", "y", "z", "zp"})
	if !Equivalent(p1, p2, Options{}) {
		t.Fatal("child order must not matter for subsumption-equivalence")
	}
	if !MaxEquivalent(p1, p2, Options{}) {
		t.Fatal("MaxEquivalent must agree")
	}
	for seed := int64(0); seed < 6; seed++ {
		d := gen.MusicDatabaseLarge(6, 2, seed)
		m1 := cq.NewMappingSet()
		for _, h := range p1.EvaluateMaximal(d) {
			m1.Add(h)
		}
		m2 := p2.EvaluateMaximal(d)
		if m1.Len() != len(m2) {
			t.Fatalf("seed %d: maximal answer counts differ: %d vs %d", seed, m1.Len(), len(m2))
		}
		for _, h := range m2 {
			if !m1.Contains(h) {
				t.Fatalf("seed %d: maximal answer %v missing from p1", seed, h)
			}
		}
	}
}

// TestSubsumptionDetectsStrictlyMoreOptional: adding an optional child makes
// the tree subsume the original but not vice versa (when the child can
// match).
func TestSubsumptionDetectsStrictlyMoreOptional(t *testing.T) {
	base := core.MustNew(core.NodeSpec{
		Atoms: []cq.Atom{cq.NewAtom("E", cq.V("x"), cq.V("y"))},
	}, []string{"x", "y"})
	extended := core.MustNew(core.NodeSpec{
		Atoms: []cq.Atom{cq.NewAtom("E", cq.V("x"), cq.V("y"))},
		Children: []core.NodeSpec{
			{Atoms: []cq.Atom{cq.NewAtom("E", cq.V("y"), cq.V("w"))}},
		},
	}, []string{"x", "y", "w"})
	if !Subsumes(base, extended, Options{}) {
		t.Fatal("base ⊑ extended should hold")
	}
	if Subsumes(extended, base, Options{}) {
		t.Fatal("extended ⋢ base: answers binding w are not subsumed")
	}
}

// TestSubsumptionWithConstantsProperty: on random trees THAT MENTION
// CONSTANTS, a positive subsumption answer is sound on random databases,
// and a negative answer comes with a verifiable counterexample. This
// exercises the block-onto-constant collapses of the small-model space.
func TestSubsumptionWithConstantsProperty(t *testing.T) {
	params := gen.TreeParams{MaxDepth: 1, MaxChildren: 1, AtomsPerNode: 1, FreshVarsPerNode: 1, ConstProb: 0.3}
	for seed := int64(0); seed < 14; seed++ {
		p1 := gen.RandomWDPT(params, seed)
		p2 := gen.RandomWDPT(params, seed+77)
		d, h, refuted := CounterExample(p1, p2, Options{})
		if refuted {
			// Verify the witness end to end.
			found := false
			for _, a := range p1.Evaluate(d) {
				if a.Equal(h) {
					found = true
				}
			}
			if !found {
				t.Fatalf("seed %d: witness %v is not an answer of p1 over\n%s", seed, h, d)
			}
			for _, g := range p2.Evaluate(d) {
				if h.SubsumedBy(g) {
					t.Fatalf("seed %d: witness %v subsumed by %v", seed, h, g)
				}
			}
			continue
		}
		// Positive: spot-check soundness on random databases (which also
		// contain the constant pool used by the generator).
		for dbSeed := int64(0); dbSeed < 3; dbSeed++ {
			d := gen.RandomDatabase(gen.DBParams{DomainSize: 3, TuplesPerRel: 7}, dbSeed)
			a2 := p2.Evaluate(d)
			for _, a := range p1.Evaluate(d) {
				ok := false
				for _, g := range a2 {
					if a.SubsumedBy(g) {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("seed %d: Subsumes held but answer %v unsubsumed\np1:\n%s\np2:\n%s\ndb:\n%s",
						seed, a, p1, p2, d)
				}
			}
		}
	}
}

// TestSubsumptionTransitivity: ⊑ is transitive on a chain of pruned trees.
func TestSubsumptionTransitivity(t *testing.T) {
	full := gen.MusicWDPT("x", "y", "z", "zp")
	mid := core.MustNew(core.NodeSpec{
		Atoms: []cq.Atom{
			cq.NewAtom("recorded_by", cq.V("x"), cq.V("y")),
			cq.NewAtom("published", cq.V("x"), cq.C("after_2010")),
		},
		Children: []core.NodeSpec{
			{Atoms: []cq.Atom{cq.NewAtom("rating", cq.V("x"), cq.V("z"))}},
		},
	}, []string{"x", "y", "z"})
	rootOnly := core.MustNew(core.NodeSpec{
		Atoms: []cq.Atom{
			cq.NewAtom("recorded_by", cq.V("x"), cq.V("y")),
			cq.NewAtom("published", cq.V("x"), cq.C("after_2010")),
		},
	}, []string{"x", "y"})
	if !Subsumes(rootOnly, mid, Options{}) || !Subsumes(mid, full, Options{}) {
		t.Fatal("chain links should hold")
	}
	if !Subsumes(rootOnly, full, Options{}) {
		t.Fatal("transitivity violated")
	}
}
