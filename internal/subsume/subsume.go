// Package subsume implements the static-analysis problems of Section 4 of
// Barceló & Pichler (PODS 2015): subsumption p1 ⊑ p2, subsumption-
// equivalence ≡s, and equivalence under the maximal-mappings semantics ≡max
// (equal to ≡s by Proposition 5).
//
// The decision procedure follows the small-model property underlying the
// Π₂ᴾ upper bound: p1 ⊑ p2 can be refuted iff it can be refuted on a
// database that is a homomorphic image of the frozen canonical database of
// some rooted subtree of p1 — i.e. a quotient of its variables, with blocks
// optionally collapsed onto the constants mentioned by either tree. For each
// such candidate database D and answer h ∈ p1(D), the check "some answer of
// p2 over D subsumes h" is exactly PARTIAL-EVAL(p2, D, h), which is where
// the asymmetry of Theorem 11 comes from: when p2 is globally tractable the
// inner check runs in polynomial time and overall membership drops from
// Π₂ᴾ to coNP.
package subsume

import (
	"fmt"

	"wdpt/internal/core"
	"wdpt/internal/cq"
	"wdpt/internal/cqeval"
	"wdpt/internal/db"
	"wdpt/internal/obs"
)

// Options configures the subsumption test.
type Options struct {
	// Engine used for the inner PARTIAL-EVAL checks; defaults to
	// cqeval.Auto(), which is the tractable path when the right-hand tree
	// is globally tractable (Theorem 11).
	Engine cqeval.Engine
	// InnerEnumerate switches the inner check to full enumeration of
	// p2(D) — the ablation baseline corresponding to the generic Π₂ᴾ
	// procedure.
	InnerEnumerate bool
	// Stats receives work counters (quotient databases enumerated, inner
	// checks performed). When nil but Engine carries a sink attached with
	// cqeval.WithStats, that sink is used.
	Stats *obs.Stats
}

func (o Options) engine() cqeval.Engine {
	if o.Engine != nil {
		return o.Engine
	}
	return cqeval.Auto()
}

// stats resolves the sink: the explicit one, else the engine's.
func (o Options) stats() *obs.Stats {
	if o.Stats != nil {
		return o.Stats
	}
	return cqeval.StatsOf(o.Engine)
}

// Subsumes decides p1 ⊑ p2: over every database, every answer of p1 is
// subsumed by an answer of p2. The test is exact; its running time is
// exponential in the size of p1 (the problem is Π₂ᴾ-complete, Section 4).
func Subsumes(p1, p2 *core.PatternTree, opts Options) bool {
	_, _, ok := findCounterexample(p1, p2, opts)
	return !ok
}

// CounterExample searches for a witness against p1 ⊑ p2: a database D and
// an answer h ∈ p1(D) not subsumed by any answer of p2 over D. ok=false
// means p1 ⊑ p2 holds.
func CounterExample(p1, p2 *core.PatternTree, opts Options) (*db.Database, cq.Mapping, bool) {
	return findCounterexample(p1, p2, opts)
}

func findCounterexample(p1, p2 *core.PatternTree, opts Options) (*db.Database, cq.Mapping, bool) {
	eng := opts.engine()
	st := opts.stats()
	consts := collectConstants(p1, p2)
	var witnessD *db.Database
	var witnessH cq.Mapping
	found := false
	p1.EnumerateSubtrees(func(s core.Subtree) bool {
		atoms := p1.SubtreeAtoms(s)
		QuotientDatabasesObs(atoms, consts, st, func(d *db.Database) bool {
			for _, h := range p1.EvaluateObs(d, st) {
				subsumed := false
				st.Inc(obs.CtrInnerChecks)
				if opts.InnerEnumerate {
					for _, g := range p2.EvaluateObs(d, st) {
						if h.SubsumedBy(g) {
							subsumed = true
							break
						}
					}
				} else {
					subsumed = p2.PartialEval(d, h, eng)
				}
				if !subsumed {
					witnessD, witnessH, found = d, h, true
					return false
				}
			}
			return true
		})
		return !found
	})
	return witnessD, witnessH, found
}

// Equivalent decides subsumption-equivalence p1 ≡s p2 (both directions).
func Equivalent(p1, p2 *core.PatternTree, opts Options) bool {
	return Subsumes(p1, p2, opts) && Subsumes(p2, p1, opts)
}

// MaxEquivalent decides p1 ≡max p2: p1_m(D) = p2_m(D) over every database.
// By Proposition 5 this coincides with subsumption-equivalence, which is how
// it is decided here; tests cross-validate the proposition semantically.
func MaxEquivalent(p1, p2 *core.PatternTree, opts Options) bool {
	return Equivalent(p1, p2, opts)
}

// collectConstants gathers the constants mentioned by both trees.
func collectConstants(trees ...*core.PatternTree) []string {
	seen := make(map[string]bool)
	var out []string
	for _, p := range trees {
		for _, a := range p.AllAtoms() {
			for _, t := range a.Args {
				if !t.IsVar() && !seen[t.Value()] {
					seen[t.Value()] = true
					out = append(out, t.Value())
				}
			}
		}
	}
	return out
}

// QuotientDatabases enumerates the homomorphic images of the frozen atoms:
// for every partition of the variables and every assignment of blocks to
// fresh constants or to constants from consts, the ground image database is
// passed to visit. visit returning false stops the enumeration. This is the
// small-model space on which subsumption of (unions of) WDPTs can be
// refuted.
func QuotientDatabases(atoms []cq.Atom, consts []string, visit func(*db.Database) bool) {
	QuotientDatabasesObs(atoms, consts, nil, visit)
}

// QuotientDatabasesObs is QuotientDatabases with each enumerated candidate
// database counted on st.
func QuotientDatabasesObs(atoms []cq.Atom, consts []string, st *obs.Stats, visit func(*db.Database) bool) {
	vars := cq.AtomsVars(atoms)
	assign := make(cq.Mapping, len(vars))
	// reps tracks current block representatives among variables.
	var reps []string
	stopped := false
	var rec func(i int)
	rec = func(i int) {
		if stopped {
			return
		}
		if i == len(vars) {
			st.Inc(obs.CtrQuotientDBs)
			d := db.New()
			for _, a := range atoms {
				ground := assign.ApplyAtom(a)
				vals := make([]string, len(ground.Args))
				for j, t := range ground.Args {
					vals[j] = t.Value()
				}
				d.Insert(a.Rel, vals...)
			}
			if !visit(d) {
				stopped = true
			}
			return
		}
		v := vars[i]
		// Join an existing variable block.
		for _, r := range reps {
			assign[v] = assign[r]
			rec(i + 1)
			if stopped {
				return
			}
		}
		// Collapse onto a known constant.
		for _, c := range consts {
			assign[v] = c
			rec(i + 1)
			if stopped {
				return
			}
		}
		// Start a fresh block with its own fresh constant.
		assign[v] = fmt.Sprintf("•%s", v)
		reps = append(reps, v)
		rec(i + 1)
		reps = reps[:len(reps)-1]
		delete(assign, v)
	}
	rec(0)
}
