package cqeval

import (
	"sort"

	"wdpt/internal/cq"
	"wdpt/internal/db"
	"wdpt/internal/guard"
	"wdpt/internal/obs"
	"wdpt/internal/par"
)

// Engine evaluates sets of atoms (CQ bodies) over a database under a partial
// pre-binding of variables.
type Engine interface {
	// Name identifies the engine in benchmark output.
	Name() string
	// Satisfiable reports whether some homomorphism from atoms to d
	// consistent with fixed exists.
	Satisfiable(atoms []cq.Atom, d *db.Database, fixed cq.Mapping) bool
	// Project returns the distinct restrictions to proj of all such
	// homomorphisms. Bindings from fixed for projection variables are
	// included in the output rows; projection variables occurring neither
	// in the atoms nor in fixed are omitted from the rows.
	Project(atoms []cq.Atom, d *db.Database, fixed cq.Mapping, proj []string) []cq.Mapping
	// Explain returns the plan the engine would use for this query as a
	// structured value, without recording work counters: the strategy,
	// fallbacks taken, structural width, and materialized bag sizes.
	Explain(atoms []cq.Atom, d *db.Database, fixed cq.Mapping) obs.Plan
}

// statsCarrier is the private interface every engine in this package
// implements; WithStats and StatsOf dispatch through it.
type statsCarrier interface {
	withStats(st *obs.Stats) Engine
	stats() *obs.Stats
}

// WithStats returns a copy of eng that records its work on st. A nil st
// returns an engine with observability disabled (the default). Engines not
// constructed by this package are returned unchanged.
func WithStats(eng Engine, st *obs.Stats) Engine {
	if c, ok := eng.(statsCarrier); ok {
		return c.withStats(st)
	}
	return eng
}

// StatsOf returns the stats sink attached to eng by WithStats, or nil.
// Layers above cqeval (internal/core and friends) use it to record their
// own counters on the same sink the engine was given.
func StatsOf(eng Engine) *obs.Stats {
	if c, ok := eng.(statsCarrier); ok {
		return c.stats()
	}
	return nil
}

// poolCarrier is the private interface the plan-based engines implement;
// WithPool and PoolOf dispatch through it.
type poolCarrier interface {
	withPool(pl *par.Pool) Engine
	pool() *par.Pool
}

// WithPool returns a copy of eng whose count-exact plan phases — bag
// materialization, the top-down reduction, and the projecting join — fan
// out over pl. Every parallelized phase produces byte-identical results and
// identical non-par.* counter totals at any worker count; the bottom-up
// semijoin pass stays sequential because its early exit makes its work set
// order-dependent. A nil pl restores sequential evaluation. Engines not
// constructed by this package, and engines with nothing to parallelize
// (the naive engine), are returned unchanged.
func WithPool(eng Engine, pl *par.Pool) Engine {
	if c, ok := eng.(poolCarrier); ok {
		return c.withPool(pl)
	}
	return eng
}

// PoolOf returns the worker pool attached to eng by WithPool, or nil.
func PoolOf(eng Engine) *par.Pool {
	if c, ok := eng.(poolCarrier); ok {
		return c.pool()
	}
	return nil
}

// meterCarrier is the private interface every engine in this package
// implements; WithMeter and MeterOf dispatch through it.
type meterCarrier interface {
	withMeter(gm *guard.Meter) Engine
	meter() *guard.Meter
}

// WithMeter returns a copy of eng that charges its materialized rows —
// bag relations, join rows, domain products, enumerated homomorphisms —
// against the guard meter and checkpoints its semijoin and join loops for
// cancellation. A nil gm restores unmetered evaluation (the default).
// Engines not constructed by this package are returned unchanged.
func WithMeter(eng Engine, gm *guard.Meter) Engine {
	if c, ok := eng.(meterCarrier); ok {
		return c.withMeter(gm)
	}
	return eng
}

// MeterOf returns the guard meter attached to eng by WithMeter, or nil.
// Layers above cqeval use it to checkpoint their own loops against the
// same budget the engine charges.
func MeterOf(eng Engine) *guard.Meter {
	if c, ok := eng.(meterCarrier); ok {
		return c.meter()
	}
	return nil
}

// Naive returns the baseline backtracking engine (general CQs, exponential
// in query size in the worst case).
func Naive() Engine { return naiveEngine{} }

// Yannakakis returns the join-tree semijoin engine for acyclic CQs
// (Theorem 3 substrate); on non-acyclic inputs it transparently falls back
// to the decomposition engine. The returned engine caches the structural
// part of its plans (join trees, decompositions) across calls, keyed on the
// variable shape of the instantiated atoms.
func Yannakakis() Engine { return yannakakisEngine{cache: newPlanCache()} }

// Decomposition returns the tree-decomposition-guided engine: bags of a
// min-fill decomposition become materialized relations processed by
// Yannakakis over the bag tree (Theorem 2 substrate). It handles arbitrary
// CQs; running time is |D|^(w+1) for decomposition width w. Structural
// plans are cached across calls.
func Decomposition() Engine { return decompEngine{cache: newPlanCache()} }

// Auto returns the selecting engine: Yannakakis when the instantiated query
// is acyclic, the decomposition engine otherwise. Structural plans are
// cached across calls.
func Auto() Engine { return autoEngine{cache: newPlanCache()} }

type naiveEngine struct {
	st *obs.Stats
	gm *guard.Meter
}

func (naiveEngine) Name() string { return "naive" }

func (e naiveEngine) withStats(st *obs.Stats) Engine { return naiveEngine{st: st, gm: e.gm} }
func (e naiveEngine) stats() *obs.Stats              { return e.st }

func (e naiveEngine) withMeter(gm *guard.Meter) Engine { return naiveEngine{st: e.st, gm: gm} }
func (e naiveEngine) meter() *guard.Meter              { return e.gm }

func (e naiveEngine) Satisfiable(atoms []cq.Atom, d *db.Database, fixed cq.Mapping) bool {
	e.st.Inc(obs.CtrSatisfiableCalls)
	e.gm.Checkpoint()
	return cq.SatisfiableObs(atoms, d, fixed, e.st, e.gm)
}

func (e naiveEngine) Project(atoms []cq.Atom, d *db.Database, fixed cq.Mapping, proj []string) []cq.Mapping {
	e.st.Inc(obs.CtrProjectCalls)
	out := cq.NewMappingSet()
	cq.HomomorphismsObs(atoms, d, fixed, e.st, e.gm, func(h cq.Mapping) bool {
		e.gm.ChargeTuples(1)
		row := h.Restrict(proj)
		for _, v := range proj {
			if c, ok := fixed[v]; ok {
				row[v] = c
			}
		}
		out.Add(row)
		return true
	})
	return out.All()
}

func (e naiveEngine) Explain(atoms []cq.Atom, d *db.Database, fixed cq.Mapping) obs.Plan {
	inst, _ := instantiate(atoms, d, fixed)
	return obs.Plan{Engine: e.Name(), Strategy: "backtracking", Atoms: len(inst)}
}

type yannakakisEngine struct {
	st    *obs.Stats
	cache *planCache
	pl    *par.Pool
	gm    *guard.Meter
}

func (yannakakisEngine) Name() string { return "yannakakis" }

func (e yannakakisEngine) withStats(st *obs.Stats) Engine {
	return yannakakisEngine{st: st, cache: e.cache, pl: e.pl, gm: e.gm}
}
func (e yannakakisEngine) stats() *obs.Stats { return e.st }

func (e yannakakisEngine) withPool(pl *par.Pool) Engine {
	return yannakakisEngine{st: e.st, cache: e.cache, pl: pl, gm: e.gm}
}
func (e yannakakisEngine) pool() *par.Pool { return e.pl }

func (e yannakakisEngine) withMeter(gm *guard.Meter) Engine {
	return yannakakisEngine{st: e.st, cache: e.cache, pl: e.pl, gm: gm}
}
func (e yannakakisEngine) meter() *guard.Meter { return e.gm }

// fallback is the decomposition engine sharing this engine's sink, cache,
// pool, and meter.
func (e yannakakisEngine) fallback() decompEngine {
	return decompEngine{st: e.st, cache: e.cache, pl: e.pl, gm: e.gm}
}

func (e yannakakisEngine) Satisfiable(atoms []cq.Atom, d *db.Database, fixed cq.Mapping) bool {
	e.st.Inc(obs.CtrSatisfiableCalls)
	p, ok := prepareJoinTree(atoms, d, fixed, e.st, e.cache, e.pl, e.gm)
	if !ok {
		e.st.Inc(obs.CtrFallbacks)
		return e.fallback().satisfiable(atoms, d, fixed)
	}
	return p.satisfiable()
}

func (e yannakakisEngine) Project(atoms []cq.Atom, d *db.Database, fixed cq.Mapping, proj []string) []cq.Mapping {
	e.st.Inc(obs.CtrProjectCalls)
	p, ok := prepareJoinTree(atoms, d, fixed, e.st, e.cache, e.pl, e.gm)
	if !ok {
		e.st.Inc(obs.CtrFallbacks)
		return e.fallback().projectRows(atoms, d, fixed, proj)
	}
	return p.projectAnswers(proj, fixed)
}

func (e yannakakisEngine) Explain(atoms []cq.Atom, d *db.Database, fixed cq.Mapping) obs.Plan {
	p, ok := prepareJoinTree(atoms, d, fixed, nil, e.cache, nil, nil)
	if !ok {
		out := e.fallback().Explain(atoms, d, fixed)
		out.Engine = e.Name()
		out.Fallback = true
		return out
	}
	return planToObs(p, e.Name(), "join-tree", 1)
}

type decompEngine struct {
	st    *obs.Stats
	cache *planCache
	pl    *par.Pool
	gm    *guard.Meter
}

func (decompEngine) Name() string { return "decomposition" }

func (e decompEngine) withStats(st *obs.Stats) Engine {
	return decompEngine{st: st, cache: e.cache, pl: e.pl, gm: e.gm}
}
func (e decompEngine) stats() *obs.Stats { return e.st }

func (e decompEngine) withPool(pl *par.Pool) Engine {
	return decompEngine{st: e.st, cache: e.cache, pl: pl, gm: e.gm}
}
func (e decompEngine) pool() *par.Pool { return e.pl }

func (e decompEngine) withMeter(gm *guard.Meter) Engine {
	return decompEngine{st: e.st, cache: e.cache, pl: e.pl, gm: gm}
}
func (e decompEngine) meter() *guard.Meter { return e.gm }

func (e decompEngine) Satisfiable(atoms []cq.Atom, d *db.Database, fixed cq.Mapping) bool {
	e.st.Inc(obs.CtrSatisfiableCalls)
	return e.satisfiable(atoms, d, fixed)
}

// satisfiable is the call-counter-free body, shared with fallback paths so
// one logical engine call counts once.
func (e decompEngine) satisfiable(atoms []cq.Atom, d *db.Database, fixed cq.Mapping) bool {
	p, ok := prepareDecomposition(atoms, d, fixed, e.st, e.cache, e.pl, e.gm)
	if !ok {
		return false
	}
	return p.satisfiable()
}

func (e decompEngine) Project(atoms []cq.Atom, d *db.Database, fixed cq.Mapping, proj []string) []cq.Mapping {
	e.st.Inc(obs.CtrProjectCalls)
	return e.projectRows(atoms, d, fixed, proj)
}

// projectRows is the call-counter-free body behind Project.
func (e decompEngine) projectRows(atoms []cq.Atom, d *db.Database, fixed cq.Mapping, proj []string) []cq.Mapping {
	p, ok := prepareDecomposition(atoms, d, fixed, e.st, e.cache, e.pl, e.gm)
	if !ok {
		return nil
	}
	return p.projectAnswers(proj, fixed)
}

func (e decompEngine) Explain(atoms []cq.Atom, d *db.Database, fixed cq.Mapping) obs.Plan {
	p, ok := prepareDecomposition(atoms, d, fixed, nil, e.cache, nil, nil)
	if !ok {
		// Provably unsatisfiable before planning (a ground atom failed).
		inst, _ := instantiate(atoms, d, fixed)
		return obs.Plan{Engine: e.Name(), Strategy: "tree-decomposition", Atoms: len(inst)}
	}
	width := 0
	for _, r := range p.rels {
		if w := len(r.vars) - 1; w > width {
			width = w
		}
	}
	return planToObs(p, e.Name(), "tree-decomposition", width)
}

type autoEngine struct {
	st    *obs.Stats
	cache *planCache
	pl    *par.Pool
	gm    *guard.Meter
}

func (autoEngine) Name() string { return "auto" }

func (e autoEngine) withStats(st *obs.Stats) Engine {
	return autoEngine{st: st, cache: e.cache, pl: e.pl, gm: e.gm}
}
func (e autoEngine) stats() *obs.Stats { return e.st }

func (e autoEngine) withPool(pl *par.Pool) Engine {
	return autoEngine{st: e.st, cache: e.cache, pl: pl, gm: e.gm}
}
func (e autoEngine) pool() *par.Pool { return e.pl }

func (e autoEngine) withMeter(gm *guard.Meter) Engine {
	return autoEngine{st: e.st, cache: e.cache, pl: e.pl, gm: gm}
}
func (e autoEngine) meter() *guard.Meter { return e.gm }

func (e autoEngine) delegate() yannakakisEngine {
	return yannakakisEngine{st: e.st, cache: e.cache, pl: e.pl, gm: e.gm}
}

func (e autoEngine) Satisfiable(atoms []cq.Atom, d *db.Database, fixed cq.Mapping) bool {
	return e.delegate().Satisfiable(atoms, d, fixed)
}

func (e autoEngine) Project(atoms []cq.Atom, d *db.Database, fixed cq.Mapping, proj []string) []cq.Mapping {
	return e.delegate().Project(atoms, d, fixed, proj)
}

func (e autoEngine) Explain(atoms []cq.Atom, d *db.Database, fixed cq.Mapping) obs.Plan {
	out := e.delegate().Explain(atoms, d, fixed)
	out.Engine = e.Name()
	return out
}

// planToObs converts a prepared plan into the structured EXPLAIN value.
func planToObs(p *plan, engine, strategy string, width int) obs.Plan {
	out := obs.Plan{Engine: engine, Strategy: strategy, Width: width, Atoms: p.nAtoms}
	for i, r := range p.rels {
		atoms := 0
		if i < len(p.bagAtoms) {
			atoms = p.bagAtoms[i]
		}
		out.Bags = append(out.Bags, obs.PlanBag{
			Vars:   append([]string(nil), r.vars...),
			Atoms:  atoms,
			Rows:   r.n,
			Parent: p.parent[i],
		})
	}
	return out
}

// plan is a tree of node relations (from a join tree or a tree
// decomposition) ready for semijoin processing.
type plan struct {
	rels     []*varRel
	dict     *db.Dict
	parent   []int
	order    []int // bottom-up
	failed   bool  // a ground atom failed or a node relation is empty by construction
	st       *obs.Stats
	pl       *par.Pool
	gm       *guard.Meter
	nAtoms   int   // instantiated atoms the plan covers
	bagAtoms []int // atoms assigned per bag (diagnostics for Explain)
}

// trivialPlan is the plan for a query whose atoms were all ground and
// passed: a single empty-row relation.
func trivialPlan(st *obs.Stats) *plan {
	return &plan{
		rels:   []*varRel{{n: 1}},
		parent: []int{-1},
		order:  []int{0},
		st:     st,
	}
}

// instantiate applies fixed to the atoms, checks ground atoms directly
// against the database, and returns the remaining atoms with variables.
// ok=false means a ground atom failed.
func instantiate(atoms []cq.Atom, d *db.Database, fixed cq.Mapping) ([]cq.Atom, bool) {
	var out []cq.Atom
	for _, a := range atoms {
		inst := fixed.ApplyAtom(a)
		if inst.IsGround() {
			vals := make([]string, len(inst.Args))
			for i, t := range inst.Args {
				vals[i] = t.Value()
			}
			if !d.Contains(inst.Rel, vals...) {
				return nil, false
			}
			continue
		}
		out = append(out, inst)
	}
	return cq.DedupAtoms(out), true
}

// prepareJoinTree builds a Yannakakis plan from the GYO join tree of the
// instantiated atoms. ok=false means the instantiated query is not acyclic
// (the caller should fall back); a plan with failed=true means provably
// unsatisfiable. The join-tree shape is served from cache when the
// variable shape of the instantiated atoms has been planned before; bag
// relations materialize in parallel over pl (one independent backtracking
// search per atom, so row sets and counters match the sequential pass).
func prepareJoinTree(atoms []cq.Atom, d *db.Database, fixed cq.Mapping, st *obs.Stats, cache *planCache, pl *par.Pool, gm *guard.Meter) (*plan, bool) {
	inst, ok := instantiate(atoms, d, fixed)
	if !ok {
		return &plan{failed: true, st: st}, true
	}
	if len(inst) == 0 {
		return trivialPlan(st), true
	}
	key := shapeKey("jt", inst)
	shape := cache.do(key, st, func() *cachedShape {
		hg := cq.AtomsHypergraph(inst)
		acyclic, jt := hg.IsAcyclic()
		if !acyclic {
			return &cachedShape{}
		}
		st.Inc(obs.CtrJoinTreesBuilt)
		return &cachedShape{ok: true, parent: jt.Parent, order: jt.Order}
	})
	if !shape.ok {
		return nil, false
	}
	p := &plan{dict: d.Dict(), parent: shape.parent, order: shape.order, st: st, pl: pl, gm: gm, nAtoms: len(inst)}
	p.rels = par.Map(pl, len(inst), func(i int) *varRel {
		guard.Fault(guard.SiteCQEvalBag)
		r := newVarRel(inst[i].Vars())
		r.setData(cq.ProjectionIDs([]cq.Atom{inst[i]}, d, nil, st, gm, r.vars))
		gm.ChargeTuples(int64(r.n))
		return r
	})
	p.bagAtoms = make([]int, len(inst))
	for i, r := range p.rels {
		if r.n == 0 {
			p.failed = true
		}
		p.bagAtoms[i] = 1
	}
	st.Add(obs.CtrBagsBuilt, int64(len(p.rels)))
	for _, r := range p.rels {
		st.Add(obs.CtrBagRows, int64(r.n))
	}
	return p, true
}

// prepareDecomposition builds a plan from a min-fill tree decomposition:
// each atom is assigned to a bag covering it; bag relations enumerate
// satisfying assignments of the assigned atoms extended over per-variable
// candidate domains for unconstrained bag variables. ok=false means
// provably unsatisfiable before planning. The decomposition shape is
// served from cache when available; bag relations materialize in parallel
// over pl.
func prepareDecomposition(atoms []cq.Atom, d *db.Database, fixed cq.Mapping, st *obs.Stats, cache *planCache, pl *par.Pool, gm *guard.Meter) (*plan, bool) {
	inst, ok := instantiate(atoms, d, fixed)
	if !ok {
		return nil, false
	}
	if len(inst) == 0 {
		return trivialPlan(st), true
	}
	key := shapeKey("td", inst)
	shape := cache.do(key, st, func() *cachedShape {
		hg := cq.AtomsHypergraph(inst)
		dec := hg.TreeDecomposition()
		st.Inc(obs.CtrDecompositionsBuilt)
		return &cachedShape{ok: true, bags: dec.Bags, parent: dec.Parent, order: bottomUpOrder(dec.Parent)}
	})
	bags, parent, order := shape.bags, shape.parent, shape.order
	nBags := len(bags)

	bagSets := make([]map[string]bool, nBags)
	for i, b := range bags {
		bagSets[i] = make(map[string]bool, len(b))
		for _, v := range b {
			bagSets[i][v] = true
		}
	}
	assigned := make([][]cq.Atom, nBags)
	for _, a := range inst {
		placed := false
		for i := range bagSets {
			if coversAtom(bagSets[i], a) {
				assigned[i] = append(assigned[i], a)
				placed = true
				break
			}
		}
		if !placed {
			// Cannot happen for a valid tree decomposition.
			//lint:ignore R2 unreachable invariant violation: every atom is covered by construction
			panic("cqeval: atom not covered by any bag")
		}
	}
	cand := candidateDomains(inst, d)
	p := &plan{dict: d.Dict(), parent: parent, order: order, st: st, pl: pl, gm: gm, nAtoms: len(inst)}
	p.rels = par.Map(pl, nBags, func(i int) *varRel {
		guard.Fault(guard.SiteCQEvalBag)
		r := newVarRel(bags[i])
		covered := make(map[string]bool)
		for _, a := range assigned[i] {
			for _, v := range a.Vars() {
				covered[v] = true
			}
		}
		var uncovered []string
		for _, v := range r.vars {
			if !covered[v] {
				uncovered = append(uncovered, v)
			}
		}
		base := cq.ProjectionIDs(assigned[i], d, nil, st, gm, r.vars)
		gm.ChargeTuples(int64(len(base) / r.w))
		vals := make([][]uint32, len(uncovered))
		for k, v := range uncovered {
			vals[k] = cand[v]
		}
		r.setData(extendOverDomains(base, r.w, varPositions(r.vars, uncovered), vals, gm))
		if len(uncovered) > 0 {
			st.Add(obs.CtrDomainProductRows, int64(r.n))
		}
		return r
	})
	p.bagAtoms = make([]int, nBags)
	for i, r := range p.rels {
		if r.n == 0 {
			p.failed = true
		}
		p.bagAtoms[i] = len(assigned[i])
	}
	st.Add(obs.CtrBagsBuilt, int64(nBags))
	for _, r := range p.rels {
		st.Add(obs.CtrBagRows, int64(r.n))
	}
	return p, true
}

func coversAtom(bag map[string]bool, a cq.Atom) bool {
	for _, v := range a.Vars() {
		if !bag[v] {
			return false
		}
	}
	return true
}

// candidateDomains computes, for each variable, the intersection over all
// its occurrences of the term IDs in the corresponding relation column — a
// sound per-variable filter, computed entirely on dictionary-encoded
// columns.
func candidateDomains(atoms []cq.Atom, d *db.Database) map[string][]uint32 {
	sets := make(map[string]map[uint32]bool)
	for _, a := range atoms {
		rel := d.Relation(a.Rel)
		for pos, t := range a.Args {
			if !t.IsVar() {
				continue
			}
			col := make(map[uint32]bool)
			if rel != nil && rel.Arity() == len(a.Args) {
				for i, n := 0, rel.Len(); i < n; i++ {
					col[rel.At(i, pos)] = true
				}
			}
			if prev, ok := sets[t.Value()]; ok {
				for v := range prev {
					if !col[v] {
						delete(prev, v)
					}
				}
			} else {
				sets[t.Value()] = col
			}
		}
	}
	out := make(map[string][]uint32, len(sets))
	for v, set := range sets {
		vals := make([]uint32, 0, len(set))
		for c := range set {
			vals = append(vals, c)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		out[v] = vals
	}
	return out
}

// extendOverDomains extends each base row (flat, width w) with all
// combinations of candidate IDs for the uncovered variable positions,
// charging each product row against the guard meter (the decomposition
// engine's cross-product blow-up is exactly the path a tuple budget must
// bound).
func extendOverDomains(base []uint32, w int, uncovered []int, vals [][]uint32, gm *guard.Meter) []uint32 {
	rows := base
	for k, pos := range uncovered {
		vs := vals[k]
		if len(vs) == 0 {
			return nil
		}
		n := len(rows) / w
		next := make([]uint32, 0, len(rows)*len(vs))
		for i := 0; i < n; i++ {
			row := rows[i*w : (i+1)*w]
			for _, c := range vs {
				gm.ChargeTuples(1)
				next = append(next, row...)
				next[len(next)-w+pos] = c
			}
		}
		rows = next
	}
	return rows
}

func bottomUpOrder(parent []int) []int {
	n := len(parent)
	children := make([][]int, n)
	root := -1
	for i, p := range parent {
		if p == -1 {
			root = i
		} else {
			children[p] = append(children[p], i)
		}
	}
	var order []int
	var walk func(int)
	walk = func(v int) {
		for _, c := range children[v] {
			walk(c)
		}
		order = append(order, v)
	}
	if root >= 0 {
		walk(root)
	}
	return order
}

// satisfiable runs the bottom-up semijoin pass and reports whether the root
// relation stays nonempty. Always sequential: the early exit on an emptied
// parent makes the pass's work set order-dependent, so parallelizing it
// would change counter totals run to run.
func (p *plan) satisfiable() bool {
	if p.failed {
		return false
	}
	for _, i := range p.order {
		if pa := p.parent[i]; pa != -1 {
			p.gm.Checkpoint()
			guard.Fault(guard.SiteCQEvalSemijoin)
			p.rels[pa].semijoin(p.rels[i], p.st)
			p.st.Inc(obs.CtrSemijoinPasses)
			if p.rels[pa].n == 0 {
				return false
			}
		}
	}
	root := p.order[len(p.order)-1]
	return p.rels[root].n > 0
}

// projectAnswers performs the full Yannakakis pipeline: bottom-up reduction,
// top-down reduction, then a projecting join along the tree. Bindings from
// fixed for projection variables are merged into every output row.
func (p *plan) projectAnswers(proj []string, fixed cq.Mapping) []cq.Mapping {
	if p.failed {
		return nil
	}
	// Bottom-up full reduction (sequential; see satisfiable).
	for _, i := range p.order {
		if pa := p.parent[i]; pa != -1 {
			p.gm.Checkpoint()
			guard.Fault(guard.SiteCQEvalSemijoin)
			p.rels[pa].semijoin(p.rels[i], p.st)
			p.st.Inc(obs.CtrSemijoinPasses)
			if p.rels[pa].n == 0 {
				return nil
			}
		}
	}
	p.topDownReduce()
	// Projecting join along the tree.
	n := len(p.rels)
	children := make([][]int, n)
	root := -1
	for i, pa := range p.parent {
		if pa == -1 {
			root = i
		} else {
			children[pa] = append(children[pa], i)
		}
	}
	subtreeVars := make([][]string, n)
	var collect func(int) []string
	collect = func(v int) []string {
		vars := p.rels[v].vars
		for _, c := range children[v] {
			vars = unionVars(vars, collect(c))
		}
		subtreeVars[v] = vars
		return vars
	}
	collect(root)
	// Sibling subtrees are independent, so their recursive answer relations
	// compute in parallel; the fold into the parent stays in child order, so
	// the join sequence — and the join counter — match the sequential pass.
	var answers func(int) *varRel
	answers = func(v int) *varRel {
		r := p.rels[v]
		if kids := children[v]; len(kids) > 0 {
			for _, cr := range par.Map(p.pl, len(kids), func(k int) *varRel {
				return answers(kids[k])
			}) {
				p.gm.Checkpoint()
				r = join(r, cr, p.gm)
				p.st.Inc(obs.CtrJoins)
			}
		}
		keep := sharedVars(subtreeVars[v], proj)
		if pa := p.parent[v]; pa != -1 {
			keep = unionVars(keep, sharedVars(p.rels[v].vars, p.rels[pa].vars))
		}
		return r.project(keep)
	}
	result := answers(root)
	extra := cq.Mapping{}
	for _, v := range proj {
		if c, ok := fixed[v]; ok {
			extra[v] = c
		}
	}
	// Translate the ID rows back to strings: this is the only place the
	// projecting pipeline touches the dictionary.
	out := cq.NewMappingSet()
	for i := 0; i < result.n; i++ {
		row := result.row(i)
		merged := make(cq.Mapping, len(result.vars)+len(extra))
		for k, v := range result.vars {
			if id := row[k]; id != db.NoID {
				merged[v] = p.dict.Term(id)
			}
		}
		for k, c := range extra {
			merged[k] = c
		}
		out.Add(merged)
	}
	return out.All()
}

// topDownReduce semijoins every node with its (already reduced) parent. At
// Parallelism 1 children reduce in reverse bottom-up order; in parallel
// they reduce in waves by depth: a node's parent is final after the
// previous wave and each task writes only its own relation, so the reduced
// relations — and the semijoin count, one per tree edge — are identical to
// the sequential pass.
func (p *plan) topDownReduce() {
	if !p.pl.Parallel() {
		for j := len(p.order) - 1; j >= 0; j-- {
			i := p.order[j]
			if pa := p.parent[i]; pa != -1 {
				p.gm.Checkpoint()
				guard.Fault(guard.SiteCQEvalSemijoin)
				p.rels[i].semijoin(p.rels[pa], p.st)
				p.st.Inc(obs.CtrSemijoinPasses)
			}
		}
		return
	}
	depth := make([]int, len(p.rels))
	maxDepth := 0
	for j := len(p.order) - 1; j >= 0; j-- { // reverse bottom-up = parents first
		i := p.order[j]
		if pa := p.parent[i]; pa != -1 {
			depth[i] = depth[pa] + 1
			if depth[i] > maxDepth {
				maxDepth = depth[i]
			}
		}
	}
	waves := make([][]int, maxDepth+1)
	for j := len(p.order) - 1; j >= 0; j-- {
		i := p.order[j]
		if p.parent[i] != -1 {
			waves[depth[i]] = append(waves[depth[i]], i)
		}
	}
	for _, wave := range waves {
		wave := wave
		p.pl.Run(len(wave), func(k int) {
			i := wave[k]
			p.gm.Checkpoint()
			guard.Fault(guard.SiteCQEvalSemijoin)
			p.rels[i].semijoin(p.rels[p.parent[i]], p.st)
			p.st.Inc(obs.CtrSemijoinPasses)
		})
	}
}
