package cqeval

import (
	"sort"

	"wdpt/internal/cq"
	"wdpt/internal/db"
)

// Engine evaluates sets of atoms (CQ bodies) over a database under a partial
// pre-binding of variables.
type Engine interface {
	// Name identifies the engine in benchmark output.
	Name() string
	// Satisfiable reports whether some homomorphism from atoms to d
	// consistent with fixed exists.
	Satisfiable(atoms []cq.Atom, d *db.Database, fixed cq.Mapping) bool
	// Project returns the distinct restrictions to proj of all such
	// homomorphisms. Bindings from fixed for projection variables are
	// included in the output rows; projection variables occurring neither
	// in the atoms nor in fixed are omitted from the rows.
	Project(atoms []cq.Atom, d *db.Database, fixed cq.Mapping, proj []string) []cq.Mapping
}

// Naive returns the baseline backtracking engine (general CQs, exponential
// in query size in the worst case).
func Naive() Engine { return naiveEngine{} }

// Yannakakis returns the join-tree semijoin engine for acyclic CQs
// (Theorem 3 substrate); on non-acyclic inputs it transparently falls back
// to the decomposition engine.
func Yannakakis() Engine { return yannakakisEngine{} }

// Decomposition returns the tree-decomposition-guided engine: bags of a
// min-fill decomposition become materialized relations processed by
// Yannakakis over the bag tree (Theorem 2 substrate). It handles arbitrary
// CQs; running time is |D|^(w+1) for decomposition width w.
func Decomposition() Engine { return decompEngine{} }

// Auto returns the selecting engine: Yannakakis when the instantiated query
// is acyclic, the decomposition engine otherwise.
func Auto() Engine { return autoEngine{} }

type naiveEngine struct{}

func (naiveEngine) Name() string { return "naive" }

func (naiveEngine) Satisfiable(atoms []cq.Atom, d *db.Database, fixed cq.Mapping) bool {
	return cq.Satisfiable(atoms, d, fixed)
}

func (naiveEngine) Project(atoms []cq.Atom, d *db.Database, fixed cq.Mapping, proj []string) []cq.Mapping {
	out := cq.NewMappingSet()
	cq.Homomorphisms(atoms, d, fixed, func(h cq.Mapping) bool {
		row := h.Restrict(proj)
		for _, v := range proj {
			if c, ok := fixed[v]; ok {
				row[v] = c
			}
		}
		out.Add(row)
		return true
	})
	return out.All()
}

type yannakakisEngine struct{}

func (yannakakisEngine) Name() string { return "yannakakis" }

func (yannakakisEngine) Satisfiable(atoms []cq.Atom, d *db.Database, fixed cq.Mapping) bool {
	p, ok := prepareJoinTree(atoms, d, fixed)
	if !ok {
		return decompEngine{}.Satisfiable(atoms, d, fixed)
	}
	return p.satisfiable()
}

func (yannakakisEngine) Project(atoms []cq.Atom, d *db.Database, fixed cq.Mapping, proj []string) []cq.Mapping {
	p, ok := prepareJoinTree(atoms, d, fixed)
	if !ok {
		return decompEngine{}.Project(atoms, d, fixed, proj)
	}
	return p.projectAnswers(proj, fixed)
}

type decompEngine struct{}

func (decompEngine) Name() string { return "decomposition" }

func (decompEngine) Satisfiable(atoms []cq.Atom, d *db.Database, fixed cq.Mapping) bool {
	p, ok := prepareDecomposition(atoms, d, fixed)
	if !ok {
		return false
	}
	return p.satisfiable()
}

func (decompEngine) Project(atoms []cq.Atom, d *db.Database, fixed cq.Mapping, proj []string) []cq.Mapping {
	p, ok := prepareDecomposition(atoms, d, fixed)
	if !ok {
		return nil
	}
	return p.projectAnswers(proj, fixed)
}

type autoEngine struct{}

func (autoEngine) Name() string { return "auto" }

func (autoEngine) Satisfiable(atoms []cq.Atom, d *db.Database, fixed cq.Mapping) bool {
	return yannakakisEngine{}.Satisfiable(atoms, d, fixed)
}

func (autoEngine) Project(atoms []cq.Atom, d *db.Database, fixed cq.Mapping, proj []string) []cq.Mapping {
	return yannakakisEngine{}.Project(atoms, d, fixed, proj)
}

// plan is a tree of node relations (from a join tree or a tree
// decomposition) ready for semijoin processing.
type plan struct {
	rels   []*varRel
	parent []int
	order  []int // bottom-up
	failed bool  // a ground atom failed or a node relation is empty by construction
}

// instantiate applies fixed to the atoms, checks ground atoms directly
// against the database, and returns the remaining atoms with variables.
// ok=false means a ground atom failed.
func instantiate(atoms []cq.Atom, d *db.Database, fixed cq.Mapping) ([]cq.Atom, bool) {
	var out []cq.Atom
	for _, a := range atoms {
		inst := fixed.ApplyAtom(a)
		if inst.IsGround() {
			vals := make([]string, len(inst.Args))
			for i, t := range inst.Args {
				vals[i] = t.Value()
			}
			if !d.Contains(inst.Rel, vals...) {
				return nil, false
			}
			continue
		}
		out = append(out, inst)
	}
	return cq.DedupAtoms(out), true
}

// prepareJoinTree builds a Yannakakis plan from the GYO join tree of the
// instantiated atoms. ok=false means the instantiated query is not acyclic
// (the caller should fall back); a plan with failed=true means provably
// unsatisfiable.
func prepareJoinTree(atoms []cq.Atom, d *db.Database, fixed cq.Mapping) (*plan, bool) {
	inst, ok := instantiate(atoms, d, fixed)
	if !ok {
		return &plan{failed: true}, true
	}
	if len(inst) == 0 {
		return &plan{rels: []*varRel{{rows: []cq.Mapping{{}}}}, parent: []int{-1}, order: []int{0}}, true
	}
	hg := cq.AtomsHypergraph(inst)
	acyclic, jt := hg.IsAcyclic()
	if !acyclic {
		return nil, false
	}
	p := &plan{parent: jt.Parent, order: jt.Order}
	p.rels = make([]*varRel, len(inst))
	for i, a := range inst {
		r := newVarRel(a.Vars())
		rows := cq.Projections([]cq.Atom{a}, d, nil, r.vars)
		if len(rows) == 0 {
			p.failed = true
		}
		r.rows = rows
		p.rels[i] = r
	}
	return p, true
}

// prepareDecomposition builds a plan from a min-fill tree decomposition:
// each atom is assigned to a bag covering it; bag relations enumerate
// satisfying assignments of the assigned atoms extended over per-variable
// candidate domains for unconstrained bag variables. ok=false means
// provably unsatisfiable before planning.
func prepareDecomposition(atoms []cq.Atom, d *db.Database, fixed cq.Mapping) (*plan, bool) {
	inst, ok := instantiate(atoms, d, fixed)
	if !ok {
		return nil, false
	}
	if len(inst) == 0 {
		return &plan{rels: []*varRel{{rows: []cq.Mapping{{}}}}, parent: []int{-1}, order: []int{0}}, true
	}
	hg := cq.AtomsHypergraph(inst)
	dec := hg.TreeDecomposition()
	nBags := len(dec.Bags)

	bagSets := make([]map[string]bool, nBags)
	for i, b := range dec.Bags {
		bagSets[i] = make(map[string]bool, len(b))
		for _, v := range b {
			bagSets[i][v] = true
		}
	}
	assigned := make([][]cq.Atom, nBags)
	for _, a := range inst {
		placed := false
		for i := range bagSets {
			if coversAtom(bagSets[i], a) {
				assigned[i] = append(assigned[i], a)
				placed = true
				break
			}
		}
		if !placed {
			// Cannot happen for a valid tree decomposition.
			//lint:ignore R2 unreachable invariant violation: every atom is covered by construction
			panic("cqeval: atom not covered by any bag")
		}
	}
	cand := candidateDomains(inst, d)
	p := &plan{parent: dec.Parent}
	p.rels = make([]*varRel, nBags)
	for i := range dec.Bags {
		r := newVarRel(dec.Bags[i])
		covered := make(map[string]bool)
		for _, a := range assigned[i] {
			for _, v := range a.Vars() {
				covered[v] = true
			}
		}
		var uncovered []string
		for _, v := range r.vars {
			if !covered[v] {
				uncovered = append(uncovered, v)
			}
		}
		base := cq.Projections(assigned[i], d, nil, r.vars)
		rows := extendOverDomains(base, uncovered, cand)
		if len(rows) == 0 {
			p.failed = true
		}
		r.rows = rows
		p.rels[i] = r
	}
	p.order = bottomUpOrder(dec.Parent)
	return p, true
}

func coversAtom(bag map[string]bool, a cq.Atom) bool {
	for _, v := range a.Vars() {
		if !bag[v] {
			return false
		}
	}
	return true
}

// candidateDomains computes, for each variable, the intersection over all
// its occurrences of the values in the corresponding relation column — a
// sound per-variable filter.
func candidateDomains(atoms []cq.Atom, d *db.Database) map[string][]string {
	sets := make(map[string]map[string]bool)
	for _, a := range atoms {
		rel := d.Relation(a.Rel)
		for pos, t := range a.Args {
			if !t.IsVar() {
				continue
			}
			col := make(map[string]bool)
			if rel != nil && rel.Arity() == len(a.Args) {
				for _, tp := range rel.Tuples() {
					col[tp[pos]] = true
				}
			}
			if prev, ok := sets[t.Value()]; ok {
				for v := range prev {
					if !col[v] {
						delete(prev, v)
					}
				}
			} else {
				sets[t.Value()] = col
			}
		}
	}
	out := make(map[string][]string, len(sets))
	for v, set := range sets {
		vals := make([]string, 0, len(set))
		for c := range set {
			vals = append(vals, c)
		}
		sort.Strings(vals)
		out[v] = vals
	}
	return out
}

// extendOverDomains extends each base row with all combinations of candidate
// values for the uncovered variables.
func extendOverDomains(base []cq.Mapping, uncovered []string, cand map[string][]string) []cq.Mapping {
	rows := base
	for _, v := range uncovered {
		vals := cand[v]
		if len(vals) == 0 {
			return nil
		}
		next := make([]cq.Mapping, 0, len(rows)*len(vals))
		for _, row := range rows {
			for _, c := range vals {
				r := row.Clone()
				r[v] = c
				next = append(next, r)
			}
		}
		rows = next
	}
	return rows
}

func bottomUpOrder(parent []int) []int {
	n := len(parent)
	children := make([][]int, n)
	root := -1
	for i, p := range parent {
		if p == -1 {
			root = i
		} else {
			children[p] = append(children[p], i)
		}
	}
	var order []int
	var walk func(int)
	walk = func(v int) {
		for _, c := range children[v] {
			walk(c)
		}
		order = append(order, v)
	}
	if root >= 0 {
		walk(root)
	}
	return order
}

// satisfiable runs the bottom-up semijoin pass and reports whether the root
// relation stays nonempty.
func (p *plan) satisfiable() bool {
	if p.failed {
		return false
	}
	for _, i := range p.order {
		if pa := p.parent[i]; pa != -1 {
			p.rels[pa].semijoin(p.rels[i])
			if len(p.rels[pa].rows) == 0 {
				return false
			}
		}
	}
	root := p.order[len(p.order)-1]
	return len(p.rels[root].rows) > 0
}

// projectAnswers performs the full Yannakakis pipeline: bottom-up reduction,
// top-down reduction, then a projecting join along the tree. Bindings from
// fixed for projection variables are merged into every output row.
func (p *plan) projectAnswers(proj []string, fixed cq.Mapping) []cq.Mapping {
	if p.failed {
		return nil
	}
	// Bottom-up full reduction.
	for _, i := range p.order {
		if pa := p.parent[i]; pa != -1 {
			p.rels[pa].semijoin(p.rels[i])
			if len(p.rels[pa].rows) == 0 {
				return nil
			}
		}
	}
	// Top-down reduction.
	for j := len(p.order) - 1; j >= 0; j-- {
		i := p.order[j]
		if pa := p.parent[i]; pa != -1 {
			p.rels[i].semijoin(p.rels[pa])
		}
	}
	// Projecting join along the tree.
	n := len(p.rels)
	children := make([][]int, n)
	root := -1
	for i, pa := range p.parent {
		if pa == -1 {
			root = i
		} else {
			children[pa] = append(children[pa], i)
		}
	}
	subtreeVars := make([][]string, n)
	var collect func(int) []string
	collect = func(v int) []string {
		vars := p.rels[v].vars
		for _, c := range children[v] {
			vars = unionVars(vars, collect(c))
		}
		subtreeVars[v] = vars
		return vars
	}
	collect(root)
	var answers func(int) *varRel
	answers = func(v int) *varRel {
		r := p.rels[v]
		for _, c := range children[v] {
			r = join(r, answers(c))
		}
		keep := sharedVars(subtreeVars[v], proj)
		if pa := p.parent[v]; pa != -1 {
			keep = unionVars(keep, sharedVars(p.rels[v].vars, p.rels[pa].vars))
		}
		return r.project(keep)
	}
	result := answers(root)
	extra := cq.Mapping{}
	for _, v := range proj {
		if c, ok := fixed[v]; ok {
			extra[v] = c
		}
	}
	out := cq.NewMappingSet()
	for _, row := range result.rows {
		merged := row.Clone()
		for k, c := range extra {
			merged[k] = c
		}
		out.Add(merged)
	}
	return out.All()
}
