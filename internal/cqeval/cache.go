package cqeval

import (
	"strings"
	"sync"

	"wdpt/internal/cq"
)

// The structural part of a plan — join-tree parents, decomposition bags,
// GHD covers — depends only on the *variable shape* of the instantiated
// atom sequence: cq.AtomsHypergraph reads nothing but each atom's variable
// set. WDPT evaluation re-plans the same handful of node CQs once per
// candidate mapping, so caching these shapes turns the per-mapping planning
// cost into a map lookup. Bag *contents* (rows) always rebuild: they depend
// on the database and the pre-binding.

// cachedShape is one memoized structural plan. ok=false records a negative
// result (e.g. "this shape is not acyclic"). All slices are shared between
// the cache and the plans served from it, and are treated as read-only.
type cachedShape struct {
	ok     bool
	parent []int
	order  []int
	bags   [][]string // tree decompositions and GHDs
	covers [][]int    // GHDs: covering atom indexes per bag
	width  int        // GHDs: width at which the search succeeded
}

// planCache memoizes structural plans keyed on strategy + variable shape.
// Safe for concurrent use; a nil *planCache disables caching (engines built
// as bare struct literals still work, they just re-plan every call).
type planCache struct {
	mu sync.Mutex
	m  map[string]*cachedShape
}

// maxCachedShapes bounds the cache; WDPT workloads reuse a handful of node
// shapes, so the bound only matters for adversarial streams of distinct
// queries. On overflow the cache resets rather than evicting — simpler, and
// correct either way.
const maxCachedShapes = 512

func newPlanCache() *planCache {
	return &planCache{m: make(map[string]*cachedShape)}
}

func (c *planCache) get(key string) (*cachedShape, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	s, ok := c.m[key]
	c.mu.Unlock()
	return s, ok
}

func (c *planCache) put(key string, s *cachedShape) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if len(c.m) >= maxCachedShapes {
		c.m = make(map[string]*cachedShape)
	}
	c.m[key] = s
	c.mu.Unlock()
}

// shapeKey builds the cache key for an instantiated, deduplicated atom
// sequence: the strategy prefix plus each atom's variable list in sequence
// order. Variable names cannot contain the separator bytes.
func shapeKey(prefix string, atoms []cq.Atom) string {
	var b strings.Builder
	b.WriteString(prefix)
	for _, a := range atoms {
		b.WriteByte('|')
		for _, v := range a.Vars() {
			b.WriteString(v)
			b.WriteByte('\x00')
		}
	}
	return b.String()
}
