package cqeval

import (
	"container/list"
	"strings"
	"sync"

	"wdpt/internal/cq"
	"wdpt/internal/obs"
)

// The structural part of a plan — join-tree parents, decomposition bags,
// GHD covers — depends only on the *variable shape* of the instantiated
// atom sequence: cq.AtomsHypergraph reads nothing but each atom's variable
// set. WDPT evaluation re-plans the same handful of node CQs once per
// candidate mapping, so caching these shapes turns the per-mapping planning
// cost into a map lookup. Bag *contents* (rows) always rebuild: they depend
// on the database and the pre-binding.

// cachedShape is one memoized structural plan. ok=false records a negative
// result (e.g. "this shape is not acyclic"). All slices are shared between
// the cache and the plans served from it, and are treated as read-only.
type cachedShape struct {
	ok     bool
	parent []int
	order  []int
	bags   [][]string // tree decompositions and GHDs
	covers [][]int    // GHDs: covering atom indexes per bag
	width  int        // GHDs: width at which the search succeeded
}

// cacheEntry pairs a shape with a ready channel so that concurrent requests
// for the same key coalesce (single-flight): the first requester builds the
// shape, later requesters wait on ready and are served from the cache. This
// keeps the plan-cache counters deterministic under parallel evaluation — k
// requests for one shape always record exactly one miss and k-1 hits, the
// same totals a sequential run records.
type cacheEntry struct {
	key   string
	ready chan struct{}
	shape *cachedShape
}

// planCache memoizes structural plans keyed on strategy + variable shape,
// bounded at max entries with least-recently-used eviction — a long-running
// server fed an adversarial stream of distinct query shapes must not grow
// without limit. Safe for concurrent use; a nil *planCache disables caching
// (engines built as bare struct literals still work, they just re-plan every
// call).
type planCache struct {
	mu  sync.Mutex
	max int
	m   map[string]*list.Element // each element holds a *cacheEntry
	lru *list.List               // front = most recently used
}

// maxCachedShapes is the default cache bound; WDPT workloads reuse a handful
// of node shapes, so eviction only matters for adversarial streams of
// distinct queries.
const maxCachedShapes = 512

func newPlanCache() *planCache {
	return newPlanCacheSize(maxCachedShapes)
}

// newPlanCacheSize returns a cache bounded at max entries (values < 1 fall
// back to the default bound).
func newPlanCacheSize(max int) *planCache {
	if max < 1 {
		max = maxCachedShapes
	}
	return &planCache{max: max, m: make(map[string]*list.Element), lru: list.New()}
}

// len returns the number of cached shapes (including in-flight builds).
func (c *planCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// do returns the shape for key, invoking build on the first request and
// coalescing concurrent requests onto that single build. The builder counts
// one cache miss (plus whatever build itself records); every other requester
// counts one cache hit and refreshes the entry's recency. Inserting into a
// full cache evicts the least recently used entries, one eviction counter
// tick each; an evicted in-flight build still completes and serves its
// waiters, it just is no longer findable. A nil cache invokes build on every
// call and records neither hits nor misses — the legacy uncached behavior.
func (c *planCache) do(key string, st *obs.Stats, build func() *cachedShape) *cachedShape {
	if c == nil {
		return build()
	}
	c.mu.Lock()
	if el, ok := c.m[key]; ok {
		c.lru.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.mu.Unlock()
		<-e.ready
		st.Inc(obs.CtrPlanCacheHits)
		return e.shape
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	c.m[key] = c.lru.PushFront(e)
	for len(c.m) > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
		st.Inc(obs.CtrPlanCacheEvictions)
	}
	c.mu.Unlock()
	st.Inc(obs.CtrPlanCacheMisses)
	e.shape = build()
	close(e.ready)
	return e.shape
}

// shapeKey builds the cache key for an instantiated, deduplicated atom
// sequence: the strategy prefix plus each atom's variable list in sequence
// order. Variable names cannot contain the separator bytes.
func shapeKey(prefix string, atoms []cq.Atom) string {
	var b strings.Builder
	b.WriteString(prefix)
	for _, a := range atoms {
		b.WriteByte('|')
		for _, v := range a.Vars() {
			b.WriteString(v)
			b.WriteByte('\x00')
		}
	}
	return b.String()
}
