package cqeval

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"wdpt/internal/cq"
	"wdpt/internal/db"
)

func pathDB(n int) *db.Database {
	d := db.New()
	for i := 0; i < n; i++ {
		d.Insert("E", fmt.Sprint(i), fmt.Sprint(i+1))
	}
	return d
}

func engines() []Engine {
	return []Engine{Naive(), Yannakakis(), Decomposition(), Auto()}
}

func TestEnginesOnPathQuery(t *testing.T) {
	atoms := []cq.Atom{
		cq.NewAtom("E", cq.V("x"), cq.V("y")),
		cq.NewAtom("E", cq.V("y"), cq.V("z")),
	}
	d := pathDB(4)
	for _, e := range engines() {
		if !e.Satisfiable(atoms, d, nil) {
			t.Fatalf("%s: path query should be satisfiable", e.Name())
		}
		if e.Satisfiable(atoms, d, cq.Mapping{"x": "4"}) {
			t.Fatalf("%s: x=4 has no outgoing path of length 2", e.Name())
		}
		rows := e.Project(atoms, d, nil, []string{"x"})
		if len(rows) != 3 {
			t.Fatalf("%s: Project x = %v, want 3 rows", e.Name(), rows)
		}
	}
}

func TestEnginesCyclicQuery(t *testing.T) {
	// Triangle query — not acyclic, exercises decomposition fallback.
	atoms := []cq.Atom{
		cq.NewAtom("E", cq.V("a"), cq.V("b")),
		cq.NewAtom("E", cq.V("b"), cq.V("c")),
		cq.NewAtom("E", cq.V("c"), cq.V("a")),
	}
	d := pathDB(5)
	for _, e := range engines() {
		if e.Satisfiable(atoms, d, nil) {
			t.Fatalf("%s: path db has no triangle", e.Name())
		}
	}
	d.Insert("E", "1", "7")
	d.Insert("E", "7", "9")
	d.Insert("E", "9", "1")
	for _, e := range engines() {
		if !e.Satisfiable(atoms, d, nil) {
			t.Fatalf("%s: triangle should be found", e.Name())
		}
		rows := e.Project(atoms, d, nil, []string{"a"})
		if len(rows) != 3 {
			t.Fatalf("%s: triangle Project a = %v, want 3 rows", e.Name(), rows)
		}
	}
}

func TestEnginesGroundAtoms(t *testing.T) {
	d := pathDB(3)
	atoms := []cq.Atom{
		cq.NewAtom("E", cq.C("0"), cq.C("1")),
		cq.NewAtom("E", cq.V("x"), cq.V("y")),
	}
	for _, e := range engines() {
		if !e.Satisfiable(atoms, d, nil) {
			t.Fatalf("%s: ground atom present, should be satisfiable", e.Name())
		}
	}
	bad := []cq.Atom{cq.NewAtom("E", cq.C("9"), cq.C("9"))}
	for _, e := range engines() {
		if e.Satisfiable(bad, d, nil) {
			t.Fatalf("%s: missing ground atom accepted", e.Name())
		}
		if rows := e.Project(bad, d, nil, nil); len(rows) != 0 {
			t.Fatalf("%s: project of failed ground atom = %v", e.Name(), rows)
		}
	}
}

func TestEnginesEmptyAtomSet(t *testing.T) {
	d := pathDB(2)
	for _, e := range engines() {
		if !e.Satisfiable(nil, d, nil) {
			t.Fatalf("%s: empty query is trivially satisfiable", e.Name())
		}
		rows := e.Project(nil, d, nil, nil)
		if len(rows) != 1 || len(rows[0]) != 0 {
			t.Fatalf("%s: empty query projection = %v, want one empty row", e.Name(), rows)
		}
	}
}

func TestEnginesFixedProjection(t *testing.T) {
	// Projection variables bound by fixed must appear in the output even
	// after instantiation removes them from the atoms.
	atoms := []cq.Atom{cq.NewAtom("E", cq.V("x"), cq.V("y"))}
	d := pathDB(3)
	for _, e := range engines() {
		rows := e.Project(atoms, d, cq.Mapping{"x": "1"}, []string{"x", "y"})
		if len(rows) != 1 {
			t.Fatalf("%s: rows = %v, want 1", e.Name(), rows)
		}
		if rows[0]["x"] != "1" || rows[0]["y"] != "2" {
			t.Fatalf("%s: row = %v", e.Name(), rows[0])
		}
	}
}

func TestEnginesDisconnectedQuery(t *testing.T) {
	atoms := []cq.Atom{
		cq.NewAtom("E", cq.V("a"), cq.V("b")),
		cq.NewAtom("F", cq.V("u"), cq.V("v")),
	}
	d := pathDB(2)
	for _, e := range engines() {
		if e.Satisfiable(atoms, d, nil) {
			t.Fatalf("%s: F is empty, should be unsatisfiable", e.Name())
		}
	}
	d.Insert("F", "p", "q")
	for _, e := range engines() {
		if !e.Satisfiable(atoms, d, nil) {
			t.Fatalf("%s: both components satisfiable", e.Name())
		}
		rows := e.Project(atoms, d, nil, []string{"a", "u"})
		if len(rows) != 2 {
			t.Fatalf("%s: cartesian projection = %v, want 2 rows", e.Name(), rows)
		}
	}
}

// randomInstance builds a random query (mix of path/branch/cycle shapes) and
// a random database over a small domain.
func randomInstance(rng *rand.Rand) ([]cq.Atom, *db.Database) {
	nv := 3 + rng.Intn(4)
	na := 2 + rng.Intn(5)
	var atoms []cq.Atom
	for i := 0; i < na; i++ {
		switch rng.Intn(5) {
		case 0: // ternary atom
			atoms = append(atoms, cq.NewAtom("T",
				cq.V(fmt.Sprintf("v%d", rng.Intn(nv))),
				cq.V(fmt.Sprintf("v%d", rng.Intn(nv))),
				cq.V(fmt.Sprintf("v%d", rng.Intn(nv)))))
		case 1: // atom with a constant
			atoms = append(atoms, cq.NewAtom("E",
				cq.V(fmt.Sprintf("v%d", rng.Intn(nv))),
				cq.C(fmt.Sprint(rng.Intn(3)))))
		default:
			atoms = append(atoms, cq.NewAtom("E",
				cq.V(fmt.Sprintf("v%d", rng.Intn(nv))),
				cq.V(fmt.Sprintf("v%d", rng.Intn(nv)))))
		}
	}
	d := db.New()
	dom := 3
	for i := 0; i < 12; i++ {
		d.Insert("E", fmt.Sprint(rng.Intn(dom)), fmt.Sprint(rng.Intn(dom)))
	}
	for i := 0; i < 6; i++ {
		d.Insert("T", fmt.Sprint(rng.Intn(dom)), fmt.Sprint(rng.Intn(dom)), fmt.Sprint(rng.Intn(dom)))
	}
	return atoms, d
}

// Property: all engines agree with the naive engine on satisfiability and
// projections over random instances — the cross-validation backbone for the
// decomposition machinery.
func TestEnginesAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		atoms, d := randomInstance(rng)
		var fixed cq.Mapping
		if rng.Intn(2) == 0 {
			fixed = cq.Mapping{"v0": fmt.Sprint(rng.Intn(3))}
		}
		proj := []string{"v0", "v1"}
		want := Naive().Satisfiable(atoms, d, fixed)
		wantRows := Naive().Project(atoms, d, fixed, proj)
		for _, e := range engines()[1:] {
			if got := e.Satisfiable(atoms, d, fixed); got != want {
				t.Logf("%s sat=%v want %v for %v", e.Name(), got, want, atoms)
				return false
			}
			gotRows := e.Project(atoms, d, fixed, proj)
			if !sameRows(wantRows, gotRows) {
				t.Logf("%s rows=%v want %v for %v fixed=%v", e.Name(), gotRows, wantRows, atoms, fixed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func sameRows(a, b []cq.Mapping) bool {
	if len(a) != len(b) {
		return false
	}
	set := cq.NewMappingSet()
	for _, h := range a {
		set.Add(h)
	}
	for _, h := range b {
		if !set.Contains(h) {
			return false
		}
	}
	return true
}

func TestEngineNames(t *testing.T) {
	names := map[string]bool{}
	for _, e := range engines() {
		names[e.Name()] = true
	}
	if len(names) != 4 {
		t.Fatalf("engine names not distinct: %v", names)
	}
}

func TestHypertreeEngineBasics(t *testing.T) {
	eng := Hypertree(2)
	if eng.Name() != "hypertree" {
		t.Fatal("name wrong")
	}
	atoms := []cq.Atom{
		cq.NewAtom("E", cq.V("x"), cq.V("y")),
		cq.NewAtom("E", cq.V("y"), cq.V("z")),
	}
	d := pathDB(4)
	if !eng.Satisfiable(atoms, d, nil) {
		t.Fatal("path should be satisfiable")
	}
	rows := eng.Project(atoms, d, nil, []string{"x"})
	if len(rows) != 3 {
		t.Fatalf("Project x = %v, want 3 rows", rows)
	}
}

func TestHypertreeEngineThetaN(t *testing.T) {
	// θ_4: E-clique + covering T atom — acyclic (ghw 1) although treewidth
	// is 3. The hypertree engine must use the covering atom.
	n := 4
	var atoms []cq.Atom
	var vars []cq.Term
	for i := 1; i <= n; i++ {
		vars = append(vars, cq.V(fmt.Sprintf("x%d", i)))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			atoms = append(atoms, cq.NewAtom("E", vars[i], vars[j]))
		}
	}
	atoms = append(atoms, cq.NewAtom("T", vars...))
	d := db.New()
	// One clique 1-2-3-4 in E, plus the T fact; and a decoy T fact whose
	// clique is incomplete.
	for i := 1; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			d.Insert("E", fmt.Sprint(i), fmt.Sprint(j))
		}
	}
	d.Insert("T", "1", "2", "3", "4")
	d.Insert("T", "1", "2", "3", "9")
	eng := Hypertree(1)
	if !eng.Satisfiable(atoms, d, nil) {
		t.Fatal("theta_4 should match")
	}
	rows := eng.Project(atoms, d, nil, []string{"x1", "x4"})
	if len(rows) != 1 || rows[0]["x4"] != "4" {
		t.Fatalf("rows = %v", rows)
	}
	// Remove the full clique's T fact: only the decoy remains, whose
	// E-clique is incomplete — the enforced E atoms must reject it.
	d2 := db.New()
	for i := 1; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			d2.Insert("E", fmt.Sprint(i), fmt.Sprint(j))
		}
	}
	d2.Insert("T", "1", "2", "3", "9")
	if eng.Satisfiable(atoms, d2, nil) {
		t.Fatal("decoy T fact accepted despite missing E edges")
	}
}

func TestHypertreeEngineFallback(t *testing.T) {
	// A triangle has ghw 2 > maxWidth 1: the engine must fall back to the
	// decomposition engine and still answer correctly.
	atoms := []cq.Atom{
		cq.NewAtom("E", cq.V("a"), cq.V("b")),
		cq.NewAtom("E", cq.V("b"), cq.V("c")),
		cq.NewAtom("E", cq.V("c"), cq.V("a")),
	}
	d := pathDB(3)
	d.Insert("E", "1", "7")
	d.Insert("E", "7", "9")
	d.Insert("E", "9", "1")
	if !Hypertree(1).Satisfiable(atoms, d, nil) {
		t.Fatal("fallback failed to find the triangle")
	}
	if !Hypertree(2).Satisfiable(atoms, d, nil) {
		t.Fatal("width-2 GHD failed to find the triangle")
	}
}

// TestHypertreeAgreesWithNaiveProperty extends the engine cross-validation
// to the GHD engine.
func TestHypertreeAgreesWithNaiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		atoms, d := randomInstance(rng)
		proj := []string{"v0", "v1"}
		want := Naive().Satisfiable(atoms, d, nil)
		wantRows := Naive().Project(atoms, d, nil, proj)
		eng := Hypertree(3)
		if got := eng.Satisfiable(atoms, d, nil); got != want {
			t.Logf("sat=%v want %v for %v", got, want, atoms)
			return false
		}
		if got := eng.Project(atoms, d, nil, proj); !sameRows(wantRows, got) {
			t.Logf("rows=%v want %v for %v", got, wantRows, atoms)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
