package cqeval

import (
	"fmt"
	"sync"
	"testing"

	"wdpt/internal/obs"
)

// shape returns a trivially distinguishable cachedShape for key-identity
// assertions.
func shape(n int) *cachedShape { return &cachedShape{ok: true, width: n} }

// snap reads the three plan-cache counters.
func snap(st *obs.Stats) (hits, misses, evictions int64) {
	return st.Get(obs.CtrPlanCacheHits), st.Get(obs.CtrPlanCacheMisses), st.Get(obs.CtrPlanCacheEvictions)
}

// TestPlanCacheCountsPinned pins the exact hit/miss/eviction totals of a
// scripted access sequence against a capacity-2 cache, including the LRU
// recency rule: touching an entry protects it from the next eviction.
func TestPlanCacheCountsPinned(t *testing.T) {
	c := newPlanCacheSize(2)
	st := obs.NewStats()
	get := func(key string, n int) *cachedShape {
		return c.do(key, st, func() *cachedShape { return shape(n) })
	}

	// Fill: two misses, no evictions.
	get("a", 1)
	get("b", 2)
	if h, m, e := snap(st); h != 0 || m != 2 || e != 0 {
		t.Fatalf("after fill: hits=%d misses=%d evictions=%d, want 0/2/0", h, m, e)
	}

	// Touch "a" so "b" becomes the LRU victim.
	if s := get("a", 99); s.width != 1 {
		t.Fatalf("hit on a rebuilt the shape: width=%d, want 1", s.width)
	}
	if h, m, e := snap(st); h != 1 || m != 2 || e != 0 {
		t.Fatalf("after touch: hits=%d misses=%d evictions=%d, want 1/2/0", h, m, e)
	}

	// Insert "c": capacity exceeded, evicts "b" (LRU), keeps "a".
	get("c", 3)
	if h, m, e := snap(st); h != 1 || m != 3 || e != 1 {
		t.Fatalf("after insert c: hits=%d misses=%d evictions=%d, want 1/3/1", h, m, e)
	}
	if c.len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.len())
	}

	// "a" survived (hit); "b" was evicted (miss + another eviction).
	if s := get("a", 99); s.width != 1 {
		t.Fatalf("a was evicted instead of b: width=%d, want 1", s.width)
	}
	get("b", 4)
	if h, m, e := snap(st); h != 2 || m != 4 || e != 2 {
		t.Fatalf("final: hits=%d misses=%d evictions=%d, want 2/4/2", h, m, e)
	}
}

// TestPlanCacheSingleFlightUnderConcurrency pins the deterministic counter
// contract under parallelism: k concurrent requests for one key record
// exactly one miss and k-1 hits, and every requester observes the same
// shape, even while unrelated keys churn the LRU bound.
func TestPlanCacheSingleFlightUnderConcurrency(t *testing.T) {
	const k = 16
	c := newPlanCacheSize(4)
	st := obs.NewStats()
	var builds int
	var mu sync.Mutex
	var wg sync.WaitGroup
	results := make([]*cachedShape, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.do("hot", st, func() *cachedShape {
				mu.Lock()
				builds++
				mu.Unlock()
				return shape(7)
			})
		}(i)
	}
	wg.Wait()
	if builds != 1 {
		t.Fatalf("hot key built %d times, want 1 (single-flight)", builds)
	}
	for i, s := range results {
		if s != results[0] {
			t.Fatalf("requester %d got a different shape pointer", i)
		}
	}
	if h, m, _ := snap(st); h != k-1 || m != 1 {
		t.Fatalf("hot key: hits=%d misses=%d, want %d/1", h, m, k-1)
	}
}

// TestPlanCacheNilDisables pins the nil-cache legacy behavior: build on
// every call, no counters.
func TestPlanCacheNilDisables(t *testing.T) {
	var c *planCache
	st := obs.NewStats()
	for i := 0; i < 3; i++ {
		if s := c.do("k", st, func() *cachedShape { return shape(i) }); s.width != i {
			t.Fatalf("nil cache served a cached shape on call %d", i)
		}
	}
	if h, m, e := snap(st); h != 0 || m != 0 || e != 0 {
		t.Fatalf("nil cache recorded counters: hits=%d misses=%d evictions=%d", h, m, e)
	}
}

// TestPlanCacheBoundHolds pins that an adversarial stream of distinct keys
// cannot grow the cache past its cap — the property a long-running server
// depends on — with the eviction counter accounting for every displaced
// entry exactly once.
func TestPlanCacheBoundHolds(t *testing.T) {
	const cap, stream = 8, 100
	c := newPlanCacheSize(cap)
	st := obs.NewStats()
	for i := 0; i < stream; i++ {
		c.do(fmt.Sprintf("k%d", i), st, func() *cachedShape { return shape(i) })
	}
	if got := c.len(); got != cap {
		t.Fatalf("cache grew to %d entries, cap is %d", got, cap)
	}
	if h, m, e := snap(st); h != 0 || m != stream || e != stream-cap {
		t.Fatalf("hits=%d misses=%d evictions=%d, want 0/%d/%d", h, m, e, stream, stream-cap)
	}
}
