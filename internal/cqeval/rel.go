// Package cqeval provides evaluation engines for conjunctive queries: a
// naive backtracking engine, the Yannakakis algorithm over join trees for
// acyclic CQs (Theorem 3 substrate), and a tree-decomposition-guided engine
// for CQs of bounded treewidth (Theorem 2 substrate). All engines expose the
// same operations — satisfiability and projection under a partial
// pre-binding — which are exactly the primitives the WDPT algorithms of
// Section 3 need.
package cqeval

import (
	"sort"

	"wdpt/internal/db"
	"wdpt/internal/guard"
	"wdpt/internal/obs"
)

// varRel is a materialized relation over a set of variables: row-major
// dictionary-encoded rows of width len(vars), aligned with the sorted vars
// list. A component of db.NoID means the row does not bind that variable
// (the legacy mapping-based representation simply omitted it). Strings
// appear only when the final answer rows are emitted.
type varRel struct {
	vars []string
	w    int
	data []uint32
	n    int
}

func newVarRel(vars []string) *varRel {
	sorted := append([]string(nil), vars...)
	sort.Strings(sorted)
	return &varRel{vars: sorted, w: len(sorted)}
}

// setData installs a flat row set produced by cq.ProjectionIDs.
func (r *varRel) setData(data []uint32) {
	r.data = data
	if r.w > 0 {
		r.n = len(data) / r.w
	}
}

func (r *varRel) row(i int) []uint32 { return r.data[i*r.w : (i+1)*r.w] }

// appendKeyAt appends the packed key of row i restricted to the given
// positions.
func (r *varRel) appendKeyAt(dst []byte, i int, pos []int) []byte {
	base := i * r.w
	for _, p := range pos {
		id := r.data[base+p]
		dst = append(dst, byte(id>>24), byte(id>>16), byte(id>>8), byte(id))
	}
	return dst
}

// varPositions returns the positions in vars of each variable of sub.
// Both lists are sorted and sub ⊆ vars.
func varPositions(vars, sub []string) []int {
	out := make([]int, len(sub))
	j := 0
	for i, v := range sub {
		for vars[j] != v {
			j++
		}
		out[i] = j
	}
	return out
}

// sharedVars returns the sorted intersection of two sorted var lists.
func sharedVars(a, b []string) []string {
	set := make(map[string]bool, len(b))
	for _, v := range b {
		set[v] = true
	}
	var out []string
	for _, v := range a {
		if set[v] {
			out = append(out, v)
		}
	}
	return out
}

// unionVars returns the sorted union of two var lists.
func unionVars(a, b []string) []string {
	set := make(map[string]bool, len(a)+len(b))
	for _, v := range a {
		set[v] = true
	}
	for _, v := range b {
		set[v] = true
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// mergeJoinMinRows is the semijoin algorithm-selection threshold: when
// either side holds fewer rows, sorting cannot pay for itself and the pass
// runs as a hash-set filter; at or above it, both sides' shared-key
// projections are sorted once and a single linear merge marks the
// surviving rows (see docs/STORAGE.md, "Merge-join selection rule").
const mergeJoinMinRows = 16

// semijoin keeps the rows of r that agree with some row of s on the shared
// variables, in place and in their original order. Merge passes are
// recorded on st.
func (r *varRel) semijoin(s *varRel, st *obs.Stats) {
	shared := sharedVars(r.vars, s.vars)
	if len(shared) == 0 {
		if s.n == 0 {
			r.data, r.n = nil, 0
		}
		return
	}
	if r.n == 0 {
		return
	}
	pr := varPositions(r.vars, shared)
	ps := varPositions(s.vars, shared)
	if r.n < mergeJoinMinRows || s.n < mergeJoinMinRows {
		keys := make(map[string]bool, s.n)
		var buf []byte
		for j := 0; j < s.n; j++ {
			buf = s.appendKeyAt(buf[:0], j, ps)
			keys[string(buf)] = true
		}
		out := r.data[:0]
		n := 0
		for i := 0; i < r.n; i++ {
			buf = r.appendKeyAt(buf[:0], i, pr)
			if keys[string(buf)] {
				out = append(out, r.row(i)...)
				n++
			}
		}
		r.data, r.n = out, n
		return
	}
	st.Inc(obs.CtrMergeJoinPasses)
	st.Add(obs.CtrMergeJoinRows, int64(r.n+s.n))
	rp := r.sortedPerm(pr)
	sp := s.sortedPerm(ps)
	keep := make([]bool, r.n)
	for i, j := 0, 0; i < len(rp) && j < len(sp); {
		switch c := compareAt(r, rp[i], pr, s, sp[j], ps); {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			keep[rp[i]] = true
			i++
		}
	}
	out := r.data[:0]
	n := 0
	for i := 0; i < r.n; i++ {
		if keep[i] {
			out = append(out, r.row(i)...)
			n++
		}
	}
	r.data, r.n = out, n
}

// sortedPerm returns the row offsets of r ordered by the projection to the
// given positions (ties by offset), i.e. a permuted sorted run over the
// shared-key columns.
func (r *varRel) sortedPerm(pos []int) []int {
	perm := make([]int, r.n)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool {
		ia, ib := perm[a]*r.w, perm[b]*r.w
		for _, p := range pos {
			va, vb := r.data[ia+p], r.data[ib+p]
			if va != vb {
				return va < vb
			}
		}
		return perm[a] < perm[b]
	})
	return perm
}

// compareAt compares row i of r with row j of s on their respective
// shared-variable positions.
func compareAt(r *varRel, i int, pr []int, s *varRel, j int, ps []int) int {
	ri, sj := i*r.w, j*s.w
	for k := range pr {
		va, vb := r.data[ri+pr[k]], s.data[sj+ps[k]]
		if va != vb {
			if va < vb {
				return -1
			}
			return 1
		}
	}
	return 0
}

// join returns the natural join of r and s, charging each merged candidate
// row against the guard meter: the inner loop is the hot path a tuple
// budget must bound, and the meter's periodic context check is what lets a
// huge single join cancel promptly (a nil gm charges nothing).
func join(r, s *varRel, gm *guard.Meter) *varRel {
	shared := sharedVars(r.vars, s.vars)
	out := newVarRel(unionVars(r.vars, s.vars))
	pr := varPositions(r.vars, shared)
	ps := varPositions(s.vars, shared)
	// For each output column, the source position in s (preferred, to
	// match the legacy merge where s's bindings overwrote r's) or in r.
	srcS := make([]int, out.w)
	srcR := make([]int, out.w)
	sPos := make(map[string]int, len(s.vars))
	for p, v := range s.vars {
		sPos[v] = p
	}
	rPos := make(map[string]int, len(r.vars))
	for p, v := range r.vars {
		rPos[v] = p
	}
	for k, v := range out.vars {
		if p, ok := sPos[v]; ok {
			srcS[k], srcR[k] = p, -1
		} else {
			srcS[k], srcR[k] = -1, rPos[v]
		}
	}
	index := make(map[string][]int, s.n)
	var buf []byte
	for j := 0; j < s.n; j++ {
		buf = s.appendKeyAt(buf[:0], j, ps)
		index[string(buf)] = append(index[string(buf)], j)
	}
	seen := make(map[string]bool)
	merged := make([]uint32, out.w)
	var mbuf []byte
	for i := 0; i < r.n; i++ {
		buf = r.appendKeyAt(buf[:0], i, pr)
		for _, j := range index[string(buf)] {
			gm.ChargeTuples(1)
			ri, sj := i*r.w, j*s.w
			for k := range merged {
				if p := srcS[k]; p >= 0 {
					merged[k] = s.data[sj+p]
				} else {
					merged[k] = r.data[ri+srcR[k]]
				}
			}
			mbuf = db.AppendRowKey(mbuf[:0], merged)
			if !seen[string(mbuf)] {
				seen[string(mbuf)] = true
				out.data = append(out.data, merged...)
				out.n++
			}
		}
	}
	return out
}

// project returns the projection of r to the given variables (intersected
// with r's variables), deduplicating rows and keeping first occurrences in
// order.
func (r *varRel) project(onto []string) *varRel {
	keep := sharedVars(r.vars, onto)
	out := newVarRel(keep)
	pos := varPositions(r.vars, keep)
	seen := make(map[string]bool, r.n)
	var buf []byte
	for i := 0; i < r.n; i++ {
		buf = r.appendKeyAt(buf[:0], i, pos)
		if !seen[string(buf)] {
			seen[string(buf)] = true
			base := i * r.w
			for _, p := range pos {
				out.data = append(out.data, r.data[base+p])
			}
			out.n++
		}
	}
	return out
}
