// Package cqeval provides evaluation engines for conjunctive queries: a
// naive backtracking engine, the Yannakakis algorithm over join trees for
// acyclic CQs (Theorem 3 substrate), and a tree-decomposition-guided engine
// for CQs of bounded treewidth (Theorem 2 substrate). All engines expose the
// same operations — satisfiability and projection under a partial
// pre-binding — which are exactly the primitives the WDPT algorithms of
// Section 3 need.
package cqeval

import (
	"sort"
	"strings"

	"wdpt/internal/cq"
	"wdpt/internal/guard"
)

// varRel is a materialized relation over a set of variables: each row is a
// mapping defined exactly on vars.
type varRel struct {
	vars []string
	rows []cq.Mapping
}

func newVarRel(vars []string) *varRel {
	sorted := append([]string(nil), vars...)
	sort.Strings(sorted)
	return &varRel{vars: sorted}
}

func (r *varRel) key(row cq.Mapping, on []string) string {
	var b strings.Builder
	for _, v := range on {
		b.WriteString(row[v])
		b.WriteByte('\x00')
	}
	return b.String()
}

// add inserts a row, deduplicating.
func (r *varRel) addAll(rows []cq.Mapping) {
	seen := make(map[string]bool, len(rows))
	for _, row := range r.rows {
		seen[r.key(row, r.vars)] = true
	}
	for _, row := range rows {
		k := r.key(row, r.vars)
		if !seen[k] {
			seen[k] = true
			r.rows = append(r.rows, row)
		}
	}
}

// sharedVars returns the sorted intersection of two sorted var lists.
func sharedVars(a, b []string) []string {
	set := make(map[string]bool, len(b))
	for _, v := range b {
		set[v] = true
	}
	var out []string
	for _, v := range a {
		if set[v] {
			out = append(out, v)
		}
	}
	return out
}

// unionVars returns the sorted union of two var lists.
func unionVars(a, b []string) []string {
	set := make(map[string]bool, len(a)+len(b))
	for _, v := range a {
		set[v] = true
	}
	for _, v := range b {
		set[v] = true
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// semijoin keeps the rows of r that agree with some row of s on the shared
// variables, in place.
func (r *varRel) semijoin(s *varRel) {
	shared := sharedVars(r.vars, s.vars)
	if len(shared) == 0 {
		if len(s.rows) == 0 {
			r.rows = nil
		}
		return
	}
	keys := make(map[string]bool, len(s.rows))
	for _, row := range s.rows {
		keys[s.key(row, shared)] = true
	}
	kept := r.rows[:0]
	for _, row := range r.rows {
		if keys[r.key(row, shared)] {
			kept = append(kept, row)
		}
	}
	r.rows = kept
}

// join returns the natural join of r and s, charging each merged candidate
// row against the guard meter: the inner loop is the hot path a tuple
// budget must bound, and the meter's periodic context check is what lets a
// huge single join cancel promptly (a nil gm charges nothing).
func join(r, s *varRel, gm *guard.Meter) *varRel {
	shared := sharedVars(r.vars, s.vars)
	out := newVarRel(unionVars(r.vars, s.vars))
	index := make(map[string][]cq.Mapping, len(s.rows))
	for _, row := range s.rows {
		k := s.key(row, shared)
		index[k] = append(index[k], row)
	}
	seen := make(map[string]bool)
	for _, row := range r.rows {
		for _, srow := range index[r.key(row, shared)] {
			gm.ChargeTuples(1)
			merged := row.Clone()
			for k, v := range srow {
				merged[k] = v
			}
			mk := out.key(merged, out.vars)
			if !seen[mk] {
				seen[mk] = true
				out.rows = append(out.rows, merged)
			}
		}
	}
	return out
}

// project returns the projection of r to the given variables (intersected
// with r's variables), deduplicating rows.
func (r *varRel) project(onto []string) *varRel {
	keep := sharedVars(r.vars, onto)
	out := newVarRel(keep)
	seen := make(map[string]bool, len(r.rows))
	for _, row := range r.rows {
		p := row.Restrict(keep)
		k := out.key(p, keep)
		if !seen[k] {
			seen[k] = true
			out.rows = append(out.rows, p)
		}
	}
	return out
}
