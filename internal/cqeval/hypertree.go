package cqeval

import (
	"wdpt/internal/cq"
	"wdpt/internal/db"
	"wdpt/internal/hypergraph"
)

// Hypertree returns the GHD-guided engine: a generalized hypertree
// decomposition of width ≤ maxWidth is searched (growing from width 1);
// each bag's relation is the join of its covering atoms projected to the
// bag, and the bag tree is processed by Yannakakis. For acyclic queries
// this coincides with the Yannakakis engine; for cyclic queries of small
// hypertree width — such as Example 5's θ_n family, whose treewidth is
// unbounded — it evaluates in |D|^O(maxWidth) where variable-based
// decompositions cannot help. Queries whose instantiated hypergraph
// exceeds maxWidth fall back to the decomposition engine.
func Hypertree(maxWidth int) Engine {
	if maxWidth < 1 {
		maxWidth = 1
	}
	return hypertreeEngine{maxWidth: maxWidth}
}

type hypertreeEngine struct{ maxWidth int }

func (e hypertreeEngine) Name() string { return "hypertree" }

func (e hypertreeEngine) Satisfiable(atoms []cq.Atom, d *db.Database, fixed cq.Mapping) bool {
	p, ok := e.prepare(atoms, d, fixed)
	if !ok {
		return decompEngine{}.Satisfiable(atoms, d, fixed)
	}
	return p.satisfiable()
}

func (e hypertreeEngine) Project(atoms []cq.Atom, d *db.Database, fixed cq.Mapping, proj []string) []cq.Mapping {
	p, ok := e.prepare(atoms, d, fixed)
	if !ok {
		return decompEngine{}.Project(atoms, d, fixed, proj)
	}
	return p.projectAnswers(proj, fixed)
}

// prepare builds the plan; ok=false requests the fallback (width exceeded).
func (e hypertreeEngine) prepare(atoms []cq.Atom, d *db.Database, fixed cq.Mapping) (*plan, bool) {
	inst, groundOK := instantiate(atoms, d, fixed)
	if !groundOK {
		return &plan{failed: true}, true
	}
	if len(inst) == 0 {
		return &plan{rels: []*varRel{{rows: []cq.Mapping{{}}}}, parent: []int{-1}, order: []int{0}}, true
	}
	hg := cq.AtomsHypergraph(inst)
	var g *hypergraph.GHD
	for k := 1; k <= e.maxWidth; k++ {
		if gd, ok := hg.GeneralizedHypertreeDecomposition(k); ok {
			g = gd
			break
		}
	}
	if g == nil {
		return nil, false
	}
	// Every atom must be enforced at some bag covering its variables, even
	// when it is not part of that bag's edge cover.
	bagSets := make([]map[string]bool, len(g.Bags))
	for i, bag := range g.Bags {
		bagSets[i] = make(map[string]bool, len(bag))
		for _, v := range bag {
			bagSets[i][v] = true
		}
	}
	assigned := make([][]cq.Atom, len(g.Bags))
	for _, a := range inst {
		placed := false
		for i := range bagSets {
			if coversAtom(bagSets[i], a) {
				assigned[i] = append(assigned[i], a)
				placed = true
				break
			}
		}
		if !placed {
			//lint:ignore R2 unreachable invariant violation: every atom is covered by construction
			panic("cqeval: atom not covered by any GHD bag")
		}
	}
	p := &plan{parent: g.Parent}
	p.rels = make([]*varRel, len(g.Bags))
	for i, bag := range g.Bags {
		local := append([]cq.Atom(nil), assigned[i]...)
		for _, ei := range g.Covers[i] {
			local = append(local, inst[ei])
		}
		r := newVarRel(bag)
		rows := cq.Projections(cq.DedupAtoms(local), d, nil, r.vars)
		if len(rows) == 0 {
			p.failed = true
		}
		r.rows = rows
		p.rels[i] = r
	}
	p.order = bottomUpOrder(g.Parent)
	return p, true
}
