package cqeval

import (
	"fmt"

	"wdpt/internal/cq"
	"wdpt/internal/db"
	"wdpt/internal/hypergraph"
	"wdpt/internal/obs"
)

// Hypertree returns the GHD-guided engine: a generalized hypertree
// decomposition of width ≤ maxWidth is searched (growing from width 1);
// each bag's relation is the join of its covering atoms projected to the
// bag, and the bag tree is processed by Yannakakis. For acyclic queries
// this coincides with the Yannakakis engine; for cyclic queries of small
// hypertree width — such as Example 5's θ_n family, whose treewidth is
// unbounded — it evaluates in |D|^O(maxWidth) where variable-based
// decompositions cannot help. Queries whose instantiated hypergraph
// exceeds maxWidth fall back to the decomposition engine. Structural
// decompositions are cached across calls.
func Hypertree(maxWidth int) Engine {
	if maxWidth < 1 {
		maxWidth = 1
	}
	return hypertreeEngine{maxWidth: maxWidth, cache: newPlanCache()}
}

type hypertreeEngine struct {
	maxWidth int
	st       *obs.Stats
	cache    *planCache
}

func (e hypertreeEngine) Name() string { return "hypertree" }

func (e hypertreeEngine) withStats(st *obs.Stats) Engine {
	return hypertreeEngine{maxWidth: e.maxWidth, st: st, cache: e.cache}
}
func (e hypertreeEngine) stats() *obs.Stats { return e.st }

// fallback is the decomposition engine sharing this engine's sink and cache.
func (e hypertreeEngine) fallback() decompEngine {
	return decompEngine{st: e.st, cache: e.cache}
}

func (e hypertreeEngine) Satisfiable(atoms []cq.Atom, d *db.Database, fixed cq.Mapping) bool {
	e.st.Inc(obs.CtrSatisfiableCalls)
	p, _, ok := e.prepare(atoms, d, fixed, e.st)
	if !ok {
		e.st.Inc(obs.CtrFallbacks)
		return e.fallback().satisfiable(atoms, d, fixed)
	}
	return p.satisfiable()
}

func (e hypertreeEngine) Project(atoms []cq.Atom, d *db.Database, fixed cq.Mapping, proj []string) []cq.Mapping {
	e.st.Inc(obs.CtrProjectCalls)
	p, _, ok := e.prepare(atoms, d, fixed, e.st)
	if !ok {
		e.st.Inc(obs.CtrFallbacks)
		return e.fallback().projectRows(atoms, d, fixed, proj)
	}
	return p.projectAnswers(proj, fixed)
}

func (e hypertreeEngine) Explain(atoms []cq.Atom, d *db.Database, fixed cq.Mapping) obs.Plan {
	p, width, ok := e.prepare(atoms, d, fixed, nil)
	if !ok {
		out := e.fallback().Explain(atoms, d, fixed)
		out.Engine = e.Name()
		out.Fallback = true
		return out
	}
	return planToObs(p, e.Name(), "ghd", width)
}

// prepare builds the plan; ok=false requests the fallback (width exceeded).
// The width return is the GHD width at which the search succeeded.
func (e hypertreeEngine) prepare(atoms []cq.Atom, d *db.Database, fixed cq.Mapping, st *obs.Stats) (*plan, int, bool) {
	inst, groundOK := instantiate(atoms, d, fixed)
	if !groundOK {
		return &plan{failed: true, st: st}, 0, true
	}
	if len(inst) == 0 {
		return trivialPlan(st), 0, true
	}
	var bags [][]string
	var parent, order []int
	var covers [][]int
	width := 0
	key := shapeKey(fmt.Sprintf("ghd%d", e.maxWidth), inst)
	if c, hit := e.cache.get(key); hit {
		st.Inc(obs.CtrPlanCacheHits)
		if !c.ok {
			return nil, 0, false
		}
		bags, parent, order, covers, width = c.bags, c.parent, c.order, c.covers, c.width
	} else {
		if e.cache != nil {
			st.Inc(obs.CtrPlanCacheMisses)
		}
		hg := cq.AtomsHypergraph(inst)
		var g *hypergraph.GHD
		for k := 1; k <= e.maxWidth; k++ {
			if gd, ok := hg.GeneralizedHypertreeDecomposition(k); ok {
				g = gd
				width = k
				break
			}
		}
		if g == nil {
			e.cache.put(key, &cachedShape{})
			return nil, 0, false
		}
		st.Inc(obs.CtrGHDsBuilt)
		bags, parent, covers = g.Bags, g.Parent, g.Covers
		order = bottomUpOrder(parent)
		e.cache.put(key, &cachedShape{ok: true, bags: bags, parent: parent, order: order, covers: covers, width: width})
	}
	// Every atom must be enforced at some bag covering its variables, even
	// when it is not part of that bag's edge cover.
	bagSets := make([]map[string]bool, len(bags))
	for i, bag := range bags {
		bagSets[i] = make(map[string]bool, len(bag))
		for _, v := range bag {
			bagSets[i][v] = true
		}
	}
	assigned := make([][]cq.Atom, len(bags))
	for _, a := range inst {
		placed := false
		for i := range bagSets {
			if coversAtom(bagSets[i], a) {
				assigned[i] = append(assigned[i], a)
				placed = true
				break
			}
		}
		if !placed {
			//lint:ignore R2 unreachable invariant violation: every atom is covered by construction
			panic("cqeval: atom not covered by any GHD bag")
		}
	}
	p := &plan{parent: parent, order: order, st: st, nAtoms: len(inst)}
	p.rels = make([]*varRel, len(bags))
	p.bagAtoms = make([]int, len(bags))
	for i, bag := range bags {
		local := append([]cq.Atom(nil), assigned[i]...)
		for _, ei := range covers[i] {
			local = append(local, inst[ei])
		}
		r := newVarRel(bag)
		rows := cq.ProjectionsObs(cq.DedupAtoms(local), d, nil, st, r.vars)
		if len(rows) == 0 {
			p.failed = true
		}
		r.rows = rows
		p.rels[i] = r
		p.bagAtoms[i] = len(assigned[i])
	}
	st.Add(obs.CtrBagsBuilt, int64(len(bags)))
	for _, r := range p.rels {
		st.Add(obs.CtrBagRows, int64(len(r.rows)))
	}
	return p, width, true
}
