package cqeval

import (
	"fmt"

	"wdpt/internal/cq"
	"wdpt/internal/db"
	"wdpt/internal/guard"
	"wdpt/internal/hypergraph"
	"wdpt/internal/obs"
	"wdpt/internal/par"
)

// Hypertree returns the GHD-guided engine: a generalized hypertree
// decomposition of width ≤ maxWidth is searched (growing from width 1);
// each bag's relation is the join of its covering atoms projected to the
// bag, and the bag tree is processed by Yannakakis. For acyclic queries
// this coincides with the Yannakakis engine; for cyclic queries of small
// hypertree width — such as Example 5's θ_n family, whose treewidth is
// unbounded — it evaluates in |D|^O(maxWidth) where variable-based
// decompositions cannot help. Queries whose instantiated hypergraph
// exceeds maxWidth fall back to the decomposition engine. Structural
// decompositions are cached across calls.
func Hypertree(maxWidth int) Engine {
	if maxWidth < 1 {
		maxWidth = 1
	}
	return hypertreeEngine{maxWidth: maxWidth, cache: newPlanCache()}
}

type hypertreeEngine struct {
	maxWidth int
	st       *obs.Stats
	cache    *planCache
	pl       *par.Pool
	gm       *guard.Meter
}

func (e hypertreeEngine) Name() string { return "hypertree" }

func (e hypertreeEngine) withStats(st *obs.Stats) Engine {
	return hypertreeEngine{maxWidth: e.maxWidth, st: st, cache: e.cache, pl: e.pl, gm: e.gm}
}
func (e hypertreeEngine) stats() *obs.Stats { return e.st }

func (e hypertreeEngine) withPool(pl *par.Pool) Engine {
	return hypertreeEngine{maxWidth: e.maxWidth, st: e.st, cache: e.cache, pl: pl, gm: e.gm}
}
func (e hypertreeEngine) pool() *par.Pool { return e.pl }

func (e hypertreeEngine) withMeter(gm *guard.Meter) Engine {
	return hypertreeEngine{maxWidth: e.maxWidth, st: e.st, cache: e.cache, pl: e.pl, gm: gm}
}
func (e hypertreeEngine) meter() *guard.Meter { return e.gm }

// fallback is the decomposition engine sharing this engine's sink, cache,
// pool, and meter.
func (e hypertreeEngine) fallback() decompEngine {
	return decompEngine{st: e.st, cache: e.cache, pl: e.pl, gm: e.gm}
}

func (e hypertreeEngine) Satisfiable(atoms []cq.Atom, d *db.Database, fixed cq.Mapping) bool {
	e.st.Inc(obs.CtrSatisfiableCalls)
	p, _, ok := e.prepare(atoms, d, fixed, e.st, e.pl, e.gm)
	if !ok {
		e.st.Inc(obs.CtrFallbacks)
		return e.fallback().satisfiable(atoms, d, fixed)
	}
	return p.satisfiable()
}

func (e hypertreeEngine) Project(atoms []cq.Atom, d *db.Database, fixed cq.Mapping, proj []string) []cq.Mapping {
	e.st.Inc(obs.CtrProjectCalls)
	p, _, ok := e.prepare(atoms, d, fixed, e.st, e.pl, e.gm)
	if !ok {
		e.st.Inc(obs.CtrFallbacks)
		return e.fallback().projectRows(atoms, d, fixed, proj)
	}
	return p.projectAnswers(proj, fixed)
}

func (e hypertreeEngine) Explain(atoms []cq.Atom, d *db.Database, fixed cq.Mapping) obs.Plan {
	p, width, ok := e.prepare(atoms, d, fixed, nil, nil, nil)
	if !ok {
		out := e.fallback().Explain(atoms, d, fixed)
		out.Engine = e.Name()
		out.Fallback = true
		return out
	}
	return planToObs(p, e.Name(), "ghd", width)
}

// prepare builds the plan; ok=false requests the fallback (width exceeded).
// The width return is the GHD width at which the search succeeded. Bag
// relations materialize in parallel over pl.
func (e hypertreeEngine) prepare(atoms []cq.Atom, d *db.Database, fixed cq.Mapping, st *obs.Stats, pl *par.Pool, gm *guard.Meter) (*plan, int, bool) {
	inst, groundOK := instantiate(atoms, d, fixed)
	if !groundOK {
		return &plan{failed: true, st: st}, 0, true
	}
	if len(inst) == 0 {
		return trivialPlan(st), 0, true
	}
	key := shapeKey(fmt.Sprintf("ghd%d", e.maxWidth), inst)
	shape := e.cache.do(key, st, func() *cachedShape {
		hg := cq.AtomsHypergraph(inst)
		var g *hypergraph.GHD
		width := 0
		for k := 1; k <= e.maxWidth; k++ {
			if gd, ok := hg.GeneralizedHypertreeDecomposition(k); ok {
				g = gd
				width = k
				break
			}
		}
		if g == nil {
			return &cachedShape{}
		}
		st.Inc(obs.CtrGHDsBuilt)
		return &cachedShape{ok: true, bags: g.Bags, parent: g.Parent, order: bottomUpOrder(g.Parent), covers: g.Covers, width: width}
	})
	if !shape.ok {
		return nil, 0, false
	}
	bags, parent, order, covers, width := shape.bags, shape.parent, shape.order, shape.covers, shape.width
	// Every atom must be enforced at some bag covering its variables, even
	// when it is not part of that bag's edge cover.
	bagSets := make([]map[string]bool, len(bags))
	for i, bag := range bags {
		bagSets[i] = make(map[string]bool, len(bag))
		for _, v := range bag {
			bagSets[i][v] = true
		}
	}
	assigned := make([][]cq.Atom, len(bags))
	for _, a := range inst {
		placed := false
		for i := range bagSets {
			if coversAtom(bagSets[i], a) {
				assigned[i] = append(assigned[i], a)
				placed = true
				break
			}
		}
		if !placed {
			//lint:ignore R2 unreachable invariant violation: every atom is covered by construction
			panic("cqeval: atom not covered by any GHD bag")
		}
	}
	p := &plan{dict: d.Dict(), parent: parent, order: order, st: st, pl: pl, gm: gm, nAtoms: len(inst)}
	p.rels = par.Map(pl, len(bags), func(i int) *varRel {
		guard.Fault(guard.SiteCQEvalBag)
		local := append([]cq.Atom(nil), assigned[i]...)
		for _, ei := range covers[i] {
			local = append(local, inst[ei])
		}
		r := newVarRel(bags[i])
		r.setData(cq.ProjectionIDs(cq.DedupAtoms(local), d, nil, st, gm, r.vars))
		gm.ChargeTuples(int64(r.n))
		return r
	})
	p.bagAtoms = make([]int, len(bags))
	for i, r := range p.rels {
		if r.n == 0 {
			p.failed = true
		}
		p.bagAtoms[i] = len(assigned[i])
	}
	st.Add(obs.CtrBagsBuilt, int64(len(bags)))
	for _, r := range p.rels {
		st.Add(obs.CtrBagRows, int64(r.n))
	}
	return p, width, true
}
