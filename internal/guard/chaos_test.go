// The chaos suite: deterministic fault injection and budget trips driven
// through the full Solve stack at several parallelism levels (override with
// WDPT_CHAOS_P=1,4), designed to run under -race. It proves the tentpole's
// robustness claims end to end: injected faults and budget trips surface as
// wrapped errors — never panics, never goroutine leaks — and the fallback
// ladder returns exactly what direct evaluation under the weaker semantics
// returns.
package guard_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"wdpt/internal/core"
	"wdpt/internal/cqeval"
	"wdpt/internal/db"
	"wdpt/internal/gen"
	"wdpt/internal/guard"
	"wdpt/internal/obs"
	"wdpt/internal/uwdpt"
)

// chaosParallelism returns the parallelism levels to sweep, from the
// WDPT_CHAOS_P env (comma-separated) or the default {1, 2, 8}.
func chaosParallelism(t *testing.T) []int {
	env := os.Getenv("WDPT_CHAOS_P")
	if env == "" {
		return []int{1, 2, 8}
	}
	var out []int
	for _, part := range strings.Split(env, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			t.Fatalf("bad WDPT_CHAOS_P entry %q", part)
		}
		out = append(out, n)
	}
	return out
}

// waitGoroutines fails the test if the goroutine count does not return to
// the baseline within the grace period — the pool must drain its helpers
// even when an attempt aborts by panic.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak after Solve: %d goroutines, baseline %d\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func figure1() (*core.PatternTree, *db.Database) {
	return gen.MusicWDPT("x", "y", "z", "zp"), gen.MusicDatabase()
}

// TestChaosInjectedFaultsSurfaceAsErrors drives every registered fault site
// through a full enumeration at each parallelism level: the first hit of
// the site fails, and the failure must come back as an errors.Is-matchable
// wrapped error, with the worker pool fully drained.
func TestChaosInjectedFaultsSurfaceAsErrors(t *testing.T) {
	p, d := figure1()
	for _, site := range guard.Sites() {
		if strings.HasPrefix(site, "snapshot.") {
			// The snapshot I/O sites sit under the durable writer/loader,
			// not under Solve; their crash-restart chaos suite lives in
			// internal/db/snapshot.
			continue
		}
		for _, par := range chaosParallelism(t) {
			t.Run(fmt.Sprintf("%s/p%d", site, par), func(t *testing.T) {
				base := runtime.NumGoroutine()
				in := guard.NewInjector(1).FailNth(site, 1)
				restore := guard.Activate(in)
				defer restore()
				st := obs.NewStats()
				res, err := p.Solve(context.Background(), d, core.SolveOptions{
					Mode:        core.ModeEnumerate,
					Engine:      cqeval.WithStats(cqeval.Yannakakis(), st),
					Parallelism: par,
				})
				restore()
				if in.Hits(site) == 0 {
					t.Fatalf("site %s was never evaluated: the trigger point is dead", site)
				}
				if err == nil {
					t.Fatalf("injected fault at %s did not surface: got %d answers", site, len(res.Answers))
				}
				if !errors.Is(err, guard.ErrInjected) {
					t.Fatalf("fault surfaced as %v, not matchable with ErrInjected", err)
				}
				var te *guard.TripError
				if !errors.As(err, &te) || te.Site != site {
					t.Errorf("trip error carries site %q, want %q", te.Site, site)
				}
				if got := st.Snapshot()["guard.injected_faults"]; got < 1 {
					t.Errorf("guard.injected_faults = %d, want >= 1", got)
				}
				waitGoroutines(t, base)
			})
		}
	}
}

// TestChaosProbabilisticInjectionReplays pins that a seeded probabilistic
// injector makes the same pass/fail decision sequence on identical
// sequential runs.
func TestChaosProbabilisticInjectionReplays(t *testing.T) {
	p, d := figure1()
	run := func() (bool, int64) {
		in := guard.NewInjector(42).FailProb(guard.SiteDBMatching, 0.05)
		restore := guard.Activate(in)
		defer restore()
		_, err := p.Solve(context.Background(), d, core.SolveOptions{Mode: core.ModeEnumerate})
		if err != nil && !errors.Is(err, guard.ErrInjected) {
			t.Fatalf("unexpected non-injected error: %v", err)
		}
		return err != nil, in.Hits(guard.SiteDBMatching)
	}
	failedA, hitsA := run()
	failedB, hitsB := run()
	if failedA != failedB || hitsA != hitsB {
		t.Errorf("seeded runs diverged: (failed=%v hits=%d) vs (failed=%v hits=%d)",
			failedA, hitsA, failedB, hitsB)
	}
}

// TestChaosTupleBudgetTripsCleanly pins that an absurdly small tuple budget
// aborts evaluation with ErrTupleBudget — never a panic — at every
// parallelism level, with progress stats on the error.
func TestChaosTupleBudgetTripsCleanly(t *testing.T) {
	p, d := figure1()
	for _, par := range chaosParallelism(t) {
		t.Run(fmt.Sprintf("p%d", par), func(t *testing.T) {
			base := runtime.NumGoroutine()
			st := obs.NewStats()
			_, err := p.Solve(context.Background(), d, core.SolveOptions{
				Mode:        core.ModeEnumerate,
				Engine:      cqeval.WithStats(cqeval.Yannakakis(), st),
				Parallelism: par,
				Budget:      guard.Budget{MaxTuples: 1},
			})
			if !errors.Is(err, guard.ErrTupleBudget) {
				t.Fatalf("err = %v, want ErrTupleBudget", err)
			}
			var te *guard.TripError
			if !errors.As(err, &te) || te.Tuples < 2 {
				t.Errorf("trip carries Tuples=%d, want >= 2 (the charge that tripped)", te.Tuples)
			}
			snap := st.Snapshot()
			if snap["guard.budget_trips"] < 1 || snap["guard.budget_charges"] < 1 {
				t.Errorf("guard counters not recorded: %v", snap)
			}
			waitGoroutines(t, base)
		})
	}
}

// TestChaosAnswerCapKeepsPartialSet pins the answer-limit semantics: the
// truncated enumeration keeps a subset of the full answer set and surfaces
// ErrAnswerLimit (no fallback) or a Degraded result (fallback).
func TestChaosAnswerCapKeepsPartialSet(t *testing.T) {
	p, d := figure1()
	full, err := p.Solve(context.Background(), d, core.SolveOptions{Mode: core.ModeEnumerate})
	if err != nil || len(full.Answers) < 2 {
		t.Fatalf("full enumeration: %v (%d answers)", err, len(full.Answers))
	}
	fullSet := make(map[string]bool, len(full.Answers))
	for _, h := range full.Answers {
		fullSet[h.Key()] = true
	}
	for _, par := range chaosParallelism(t) {
		for _, fallback := range []bool{false, true} {
			t.Run(fmt.Sprintf("p%d/fallback=%v", par, fallback), func(t *testing.T) {
				res, err := p.Solve(context.Background(), d, core.SolveOptions{
					Mode:        core.ModeEnumerate,
					Parallelism: par,
					Budget:      guard.Budget{MaxAnswers: 1},
					Fallback:    fallback,
				})
				if fallback {
					if err != nil {
						t.Fatalf("fallback truncation returned error %v", err)
					}
				} else if !errors.Is(err, guard.ErrAnswerLimit) {
					t.Fatalf("err = %v, want ErrAnswerLimit", err)
				}
				if !res.Degraded || res.DegradedMode != core.ModeEnumerate {
					t.Errorf("truncated result not marked degraded: %+v", res)
				}
				if len(res.Answers) != 1 {
					t.Fatalf("got %d answers, want exactly the cap of 1", len(res.Answers))
				}
				if !fullSet[res.Answers[0].Key()] {
					t.Errorf("truncated answer %v is not in the full answer set", res.Answers[0])
				}
			})
		}
	}
}

// calibrationFixture returns the Figure 1 tree projected to free variables
// {y, z} over a seeded multi-band database, plus a candidate mapping h that
// binds only y. Keeping x existential makes every decision mode materialize
// bags whose row counts scale with the database, so the modes charge
// measurably different tuple totals: PARTIAL-EVAL satisfies one band,
// MAX-EVAL additionally probes the z-extension, and EVAL runs the interface
// algorithm on top.
func calibrationFixture(t *testing.T) (*core.PatternTree, *db.Database, map[string]string) {
	t.Helper()
	p := gen.MusicWDPT("y", "z")
	d := gen.MusicDatabaseLarge(4, 6, 1)
	res, err := p.Solve(context.Background(), d, core.SolveOptions{Mode: core.ModeEnumerate})
	if err != nil || len(res.Answers) == 0 {
		t.Fatalf("enumerating the fixture: %v (%d answers)", err, len(res.Answers))
	}
	return p, d, res.Answers[0].Restrict([]string{"y"})
}

// chargesUnder runs one decision-mode Solve with an effectively unlimited
// tuple budget and returns the guard.budget_charges total — the exact
// number of tuples that mode materializes on the fixture.
func chargesUnder(t *testing.T, p *core.PatternTree, d *db.Database, mode core.Mode, h map[string]string) int64 {
	t.Helper()
	st := obs.NewStats()
	_, err := p.Solve(context.Background(), d, core.SolveOptions{
		Mode:    mode,
		Mapping: h,
		Stats:   st,
		Budget:  guard.Budget{MaxTuples: math.MaxInt64},
	})
	if err != nil {
		t.Fatalf("calibration run (%v): %v", mode, err)
	}
	return st.Snapshot()["guard.budget_charges"]
}

// TestChaosFallbackMatchesDirectEvaluation is the acceptance pin for the
// degradation ladder: with Fallback and a tuple budget calibrated to trip
// the exact attempt, Solve's degraded verdict is byte-identical to what
// direct evaluation under the weaker semantics returns, with
// guard.fallback_hops recorded.
func TestChaosFallbackMatchesDirectEvaluation(t *testing.T) {
	p, d, h := calibrationFixture(t)
	exact := chargesUnder(t, p, d, core.ModeExact, h)
	max := chargesUnder(t, p, d, core.ModeMax, h)
	partial := chargesUnder(t, p, d, core.ModePartial, h)
	if partial >= max || partial >= exact {
		t.Fatalf("calibration broke: partial=%d max=%d exact=%d (need partial < max, exact)", partial, max, exact)
	}
	direct, err := p.Solve(context.Background(), d, core.SolveOptions{Mode: core.ModePartial, Mapping: h})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range chaosParallelism(t) {
		t.Run(fmt.Sprintf("p%d", par), func(t *testing.T) {
			st := obs.NewStats()
			res, err := p.Solve(context.Background(), d, core.SolveOptions{
				Mode:        core.ModeExact,
				Mapping:     h,
				Stats:       st,
				Parallelism: par,
				Budget:      guard.Budget{MaxTuples: partial},
				Fallback:    true,
			})
			if err != nil {
				t.Fatalf("fallback Solve: %v", err)
			}
			if !res.Degraded {
				t.Fatal("fallback result not marked Degraded")
			}
			if res.DegradedMode != core.ModePartial {
				t.Errorf("DegradedMode = %v, want ModePartial (max must also trip at this budget)", res.DegradedMode)
			}
			if res.Holds != direct.Holds {
				t.Errorf("degraded Holds = %v, direct partial evaluation says %v", res.Holds, direct.Holds)
			}
			snap := st.Snapshot()
			if snap["guard.fallback_hops"] < 1 {
				t.Errorf("guard.fallback_hops = %d, want >= 1", snap["guard.fallback_hops"])
			}
			if snap["guard.budget_trips"] < 2 {
				t.Errorf("guard.budget_trips = %d, want >= 2 (exact and max both trip)", snap["guard.budget_trips"])
			}
		})
	}
}

// TestChaosFallbackDisabledSurfacesTrip pins that without Fallback the same
// budget surfaces the raw ErrTupleBudget instead of silently degrading.
func TestChaosFallbackDisabledSurfacesTrip(t *testing.T) {
	p, d, h := calibrationFixture(t)
	_, err := p.Solve(context.Background(), d, core.SolveOptions{
		Mode:    core.ModeExact,
		Mapping: h,
		Budget:  guard.Budget{MaxTuples: 1},
	})
	if !errors.Is(err, guard.ErrTupleBudget) {
		t.Fatalf("err = %v, want ErrTupleBudget", err)
	}
}

// TestChaosInjectedFaultIsNotDegradable pins that the ladder never retries
// past an injected fault: a fault is a failure, not a budget.
func TestChaosInjectedFaultIsNotDegradable(t *testing.T) {
	p, d, h := calibrationFixture(t)
	restore := guard.Activate(guard.NewInjector(1).FailNth(guard.SiteCQEvalBag, 1))
	defer restore()
	st := obs.NewStats()
	_, err := p.Solve(context.Background(), d, core.SolveOptions{
		Mode:     core.ModeExact,
		Mapping:  h,
		Stats:    st,
		Budget:   guard.Budget{MaxTuples: math.MaxInt64},
		Fallback: true,
	})
	if !errors.Is(err, guard.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if hops := st.Snapshot()["guard.fallback_hops"]; hops != 0 {
		t.Errorf("ladder retried an injected fault: guard.fallback_hops = %d", hops)
	}
}

// TestChaosUnionSharedBudget pins that a union evaluation charges all
// members against one shared meter: a budget sized to the single-member
// cost trips the three-member union, and raising it threefold does not.
func TestChaosUnionSharedBudget(t *testing.T) {
	p, d := figure1()
	u := uwdpt.MustNew(p, gen.MusicWDPT("x", "y"), gen.MusicWDPT("y", "z"))
	single := chargesUnder(t, p, d, core.ModeEnumerate, nil)
	if single == 0 {
		t.Fatal("single-member enumeration charged nothing")
	}
	_, err := u.Solve(context.Background(), d, core.SolveOptions{
		Mode:   core.ModeEnumerate,
		Budget: guard.Budget{MaxTuples: single},
	})
	if !errors.Is(err, guard.ErrTupleBudget) {
		t.Fatalf("union under single-member budget: err = %v, want ErrTupleBudget", err)
	}
	res, err := u.Solve(context.Background(), d, core.SolveOptions{
		Mode:   core.ModeEnumerate,
		Budget: guard.Budget{MaxTuples: 4 * single},
	})
	if err != nil || len(res.Answers) == 0 {
		t.Fatalf("union under ample budget: %v (%d answers)", err, len(res.Answers))
	}
}
