package guard

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"wdpt/internal/obs"
)

// recoverTrip runs f and returns the *TripError it panicked, or nil.
func recoverTrip(f func()) (te *TripError) {
	defer func() {
		if r := recover(); r != nil {
			te = r.(*TripError)
		}
	}()
	f()
	return nil
}

func TestBudgetZero(t *testing.T) {
	if !(Budget{}).Zero() {
		t.Error("zero Budget is not Zero()")
	}
	for _, b := range []Budget{{Wall: time.Second}, {MaxTuples: 1}, {MaxAnswers: 1}} {
		if b.Zero() {
			t.Errorf("%+v reported Zero()", b)
		}
	}
}

func TestNewMeterDisabled(t *testing.T) {
	if m := NewMeter(context.Background(), Budget{}, nil); m != nil {
		t.Error("zero budget + background context should yield the nil meter")
	}
	if m := NewMeter(nil, Budget{}, nil); m != nil {
		t.Error("nil context normalizes to Background and should yield the nil meter")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if m := NewMeter(ctx, Budget{}, nil); m == nil {
		t.Error("cancellable context should yield an active meter even with no budget")
	}
}

func TestNilMeterIsSafe(t *testing.T) {
	var m *Meter
	m.ChargeTuples(1000)
	m.Checkpoint()
	if !m.TryAnswer() {
		t.Error("nil meter refused an answer")
	}
	if m.Active() || m.Truncated() || m.Tuples() != 0 || m.Answers() != 0 {
		t.Error("nil meter reported activity")
	}
}

func TestTupleBudgetTrips(t *testing.T) {
	st := obs.NewStats()
	m := NewMeter(context.Background(), Budget{MaxTuples: 10}, st)
	m.ChargeTuples(10) // exactly at the cap: no trip
	te := recoverTrip(func() { m.ChargeTuples(1) })
	if te == nil {
		t.Fatal("charging past MaxTuples did not trip")
	}
	if !errors.Is(te, ErrTupleBudget) {
		t.Errorf("trip reason = %v, want ErrTupleBudget", te.Reason)
	}
	if te.Tuples != 11 {
		t.Errorf("trip carried Tuples=%d, want 11", te.Tuples)
	}
	snap := st.Snapshot()
	if snap["guard.budget_charges"] != 11 || snap["guard.budget_trips"] != 1 {
		t.Errorf("counters = %v, want 11 charges and 1 trip", snap)
	}
}

func TestContextCancellationTripsAtCheckpoint(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	m := NewMeter(ctx, Budget{}, nil)
	m.Checkpoint() // not cancelled yet
	cancel()
	te := recoverTrip(func() { m.Checkpoint() })
	if te == nil || !errors.Is(te, context.Canceled) {
		t.Fatalf("checkpoint after cancel tripped %v, want context.Canceled", te)
	}
	if Degradable(te) {
		t.Error("a context cancellation must not be degradable")
	}
}

func TestWallBudgetTripsAsDeadline(t *testing.T) {
	m := NewMeter(context.Background(), Budget{Wall: time.Nanosecond}, nil)
	time.Sleep(time.Millisecond)
	te := recoverTrip(func() { m.Checkpoint() })
	if te == nil || !errors.Is(te, ErrDeadline) {
		t.Fatalf("expired wall budget tripped %v, want ErrDeadline", te)
	}
	if !Degradable(te) {
		t.Error("a wall-budget trip must be degradable")
	}
}

func TestContextDeadlineMatchesErrDeadline(t *testing.T) {
	// The caller's context deadline and our wall budget must look the same
	// to errors.Is(err, ErrDeadline) so exit-code mapping stays uniform.
	te := &TripError{Reason: context.DeadlineExceeded}
	if !errors.Is(te, ErrDeadline) {
		t.Error("context.DeadlineExceeded trip does not match ErrDeadline")
	}
	if !errors.Is(te, context.DeadlineExceeded) {
		t.Error("trip does not unwrap to context.DeadlineExceeded")
	}
	if Degradable(te) {
		t.Error("a caller deadline must not be degradable (the caller asked to stop)")
	}
}

func TestChargePathNoticesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	m := NewMeter(ctx, Budget{MaxTuples: 1 << 40}, nil)
	cancel()
	te := recoverTrip(func() {
		for i := 0; i < 10*(tickMask+1); i++ {
			m.ChargeTuples(1)
		}
	})
	if te == nil || !errors.Is(te, context.Canceled) {
		t.Fatalf("charge loop tripped %v, want context.Canceled within %d charges", te, 10*(tickMask+1))
	}
}

func TestTryAnswerCapAndTruncation(t *testing.T) {
	st := obs.NewStats()
	m := NewMeter(context.Background(), Budget{MaxAnswers: 3}, st)
	admitted := 0
	for i := 0; i < 10; i++ {
		if m.TryAnswer() {
			admitted++
		}
	}
	if admitted != 3 {
		t.Errorf("admitted %d answers, want 3", admitted)
	}
	if !m.Truncated() {
		t.Error("meter not marked truncated after refusals")
	}
	err := m.AnswerLimitError()
	if !errors.Is(err, ErrAnswerLimit) {
		t.Errorf("AnswerLimitError = %v, want ErrAnswerLimit", err)
	}
	if !Degradable(err) {
		t.Error("an answer-limit trip must be degradable")
	}
	var te *TripError
	if !errors.As(err, &te) || te.Answers != 3 {
		t.Errorf("trip carried Answers=%d, want 3", te.Answers)
	}
	if st.Snapshot()["guard.budget_trips"] != 1 {
		t.Error("AnswerLimitError did not count guard.budget_trips")
	}
}

func TestContextOnlyMeterIsCounterSilent(t *testing.T) {
	// A meter that exists only to watch a cancellable context must not
	// record guard.* counters, or unbudgeted runs under a cancellable
	// context would break the pinned counter snapshots.
	st := obs.NewStats()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := NewMeter(ctx, Budget{}, st)
	m.ChargeTuples(100)
	for name, v := range st.Snapshot() {
		if strings.HasPrefix(name, "guard.") && v != 0 {
			t.Errorf("context-only meter recorded %s=%d", name, v)
		}
	}
}

func TestTripErrorRendering(t *testing.T) {
	te := &TripError{Reason: ErrInjected, Site: SiteCQEvalBag, Tuples: 7, Answers: 2, Elapsed: time.Millisecond}
	msg := te.Error()
	for _, want := range []string{"injected fault", SiteCQEvalBag, "tuples=7", "answers=2"} {
		if !strings.Contains(msg, want) {
			t.Errorf("Error() = %q, missing %q", msg, want)
		}
	}
}

func TestDegradableTaxonomy(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{&TripError{Reason: ErrDeadline}, true},
		{&TripError{Reason: ErrTupleBudget}, true},
		{&TripError{Reason: ErrAnswerLimit}, true},
		{&TripError{Reason: ErrInjected, Site: SiteParTask}, false},
		{&TripError{Reason: ErrPanic, Value: "boom"}, false},
		{&TripError{Reason: context.Canceled}, false},
		{&TripError{Reason: context.DeadlineExceeded}, false},
		{errors.New("plain"), false},
		{nil, false},
		{fmt.Errorf("wrapped: %w", &TripError{Reason: ErrTupleBudget}), true},
	}
	for _, c := range cases {
		if got := Degradable(c.err); got != c.want {
			t.Errorf("Degradable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestAsErrorClassifiesAndCounts(t *testing.T) {
	st := obs.NewStats()
	trip := &TripError{Reason: ErrTupleBudget}
	if err := AsError(trip, st); err != error(trip) {
		t.Errorf("AsError passed trip through as %v", err)
	}
	if err := AsError(&TripError{Reason: ErrInjected}, st); !errors.Is(err, ErrInjected) {
		t.Errorf("injected trip lost its reason: %v", err)
	}
	err := AsError("kaboom", st)
	if !errors.Is(err, ErrPanic) {
		t.Errorf("foreign panic became %v, want ErrPanic", err)
	}
	var te *TripError
	if !errors.As(err, &te) || te.Value != "kaboom" || len(te.Stack) == 0 {
		t.Error("foreign panic lost its value or stack")
	}
	snap := st.Snapshot()
	if snap["guard.injected_faults"] != 1 || snap["guard.recovered_panics"] != 1 {
		t.Errorf("counters = %v, want 1 injected fault and 1 recovered panic", snap)
	}
}

func TestFromPanicTransportsWithoutCounting(t *testing.T) {
	trip := &TripError{Reason: ErrTupleBudget}
	if FromPanic(trip) != trip {
		t.Error("FromPanic did not pass the trip through")
	}
	te := FromPanic(42)
	if !errors.Is(te, ErrPanic) || te.Value != 42 || len(te.Stack) == 0 {
		t.Errorf("FromPanic(42) = %+v, want an ErrPanic trip with value and stack", te)
	}
}

func TestInjectorNthIsDeterministic(t *testing.T) {
	in := NewInjector(1)
	in.FailNth(SiteDBMatching, 3)
	var fails []int64
	for i := int64(1); i <= 5; i++ {
		if fail, _ := in.check(SiteDBMatching); fail {
			fails = append(fails, i)
		}
	}
	if len(fails) != 1 || fails[0] != 3 {
		t.Errorf("FailNth(3) failed at hits %v, want exactly [3]", fails)
	}
	if in.Hits(SiteDBMatching) != 5 {
		t.Errorf("Hits = %d, want 5", in.Hits(SiteDBMatching))
	}
}

func TestInjectorProbReplaysFromSeed(t *testing.T) {
	run := func(seed int64) []bool {
		in := NewInjector(seed)
		in.FailProb(SiteCQEvalSemijoin, 0.5)
		out := make([]bool, 64)
		for i := range out {
			out[i], _ = in.check(SiteCQEvalSemijoin)
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at hit %d", i)
		}
	}
}

func TestActivateRestores(t *testing.T) {
	in := NewInjector(1).FailNth(SiteParTask, 1)
	restore := Activate(in)
	te := recoverTrip(func() { Fault(SiteParTask) })
	if te == nil || !errors.Is(te, ErrInjected) || te.Site != SiteParTask {
		t.Fatalf("active injector raised %v, want ErrInjected at %s", te, SiteParTask)
	}
	restore()
	if te := recoverTrip(func() { Fault(SiteParTask) }); te != nil {
		t.Errorf("Fault fired %v after restore", te)
	}
}

func TestSitesRegistry(t *testing.T) {
	want := []string{
		SiteDBMatching, SiteParTask, SiteCQEvalBag, SiteCQEvalSemijoin,
		SiteSnapshotWrite, SiteSnapshotFsync, SiteSnapshotRename, SiteSnapshotRead,
	}
	got := Sites()
	if len(got) != len(want) {
		t.Fatalf("Sites() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Sites()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
