// Deterministic fault injection: seeded trigger points compiled into the
// evaluation stack (internal/db, internal/par, internal/cqeval). Inactive
// sites cost one atomic load; an active Injector decides per site — by
// nth-call count or seeded probability — whether the site raises an
// ErrInjected trip, which surfaces at the Solve boundary as a wrapped
// error. The chaos suite (chaos_test.go) drives every site at parallelism
// 1/2/8 under -race.
package guard

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// The registered fault-injection sites.
const (
	// SiteDBMatching fires in Relation.Matching, the index probe under every
	// backtracking homomorphism step.
	SiteDBMatching = "db.matching"
	// SiteParTask fires before each task executed through a par fan-out
	// (and before each task of the sequential nil-pool loop).
	SiteParTask = "par.task"
	// SiteCQEvalBag fires at the start of each bag-relation materialization.
	SiteCQEvalBag = "cqeval.bag"
	// SiteCQEvalSemijoin fires before each semijoin pass.
	SiteCQEvalSemijoin = "cqeval.semijoin"
	// SiteSnapshotWrite fires before each chunked payload write of the
	// crash-safe snapshot writer (db/snapshot).
	SiteSnapshotWrite = "snapshot.write"
	// SiteSnapshotFsync fires before each fsync the snapshot writer issues
	// (the temp file and, after the rename, its directory).
	SiteSnapshotFsync = "snapshot.fsync"
	// SiteSnapshotRename fires before the atomic rename that publishes a
	// snapshot.
	SiteSnapshotRename = "snapshot.rename"
	// SiteSnapshotRead fires before a snapshot file is read back.
	SiteSnapshotRead = "snapshot.read"
)

// Sites lists every registered fault-injection site.
func Sites() []string {
	return []string{
		SiteDBMatching, SiteParTask, SiteCQEvalBag, SiteCQEvalSemijoin,
		SiteSnapshotWrite, SiteSnapshotFsync, SiteSnapshotRename, SiteSnapshotRead,
	}
}

// Injector decides, per site, whether a trigger point fails. Configure with
// FailNth / FailProb before Activate; the decision sequence is a pure
// function of the seed and the per-site hit order, so single-threaded runs
// replay exactly and parallel runs inject the same number of faults per
// site count.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	hits  map[string]int64
	nth   map[string]int64
	prob  map[string]float64
	delay map[string]delaySpec
}

// delaySpec is a per-site seeded-delay configuration: each hit sleeps up to
// Max with probability P. Delays perturb scheduling (completion order of
// parallel work), not correctness — determinism tests use them to shuffle
// the order scatter-gather legs finish in.
type delaySpec struct {
	p   float64
	max time.Duration
}

// NewInjector returns an injector whose probabilistic decisions are driven
// by the given seed.
func NewInjector(seed int64) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		hits:  make(map[string]int64),
		nth:   make(map[string]int64),
		prob:  make(map[string]float64),
		delay: make(map[string]delaySpec),
	}
}

// FailNth arranges for the site's nth hit (1-based) to fail. It returns the
// injector for chaining.
func (in *Injector) FailNth(site string, n int64) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.nth[site] = n
	return in
}

// FailProb arranges for each hit of the site to fail with probability p,
// drawn from the injector's seeded source. It returns the injector for
// chaining.
func (in *Injector) FailProb(site string, p float64) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.prob[site] = p
	return in
}

// DelayProb arranges for each hit of the site to sleep a seeded duration in
// [0, max) with probability p. Sleeps happen outside the injector's lock, so
// delayed sites stall only themselves — which is the point: a seeded delay
// shuffles the completion order of parallel work (scatter-gather legs, pool
// tasks) without changing any evaluation decision, letting determinism
// tests assert byte-identical output under adversarial scheduling. It
// returns the injector for chaining.
func (in *Injector) DelayProb(site string, p float64, max time.Duration) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.delay[site] = delaySpec{p: p, max: max}
	return in
}

// Hits returns how many times the site has been evaluated.
func (in *Injector) Hits(site string) int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[site]
}

// check counts the hit and decides whether it fails and how long it should
// stall first. The returned delay is slept by the caller OUTSIDE the lock,
// so one delayed site never serializes the rest of the evaluation.
func (in *Injector) check(site string) (fail bool, delay time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.hits[site]++
	if d, ok := in.delay[site]; ok && d.p > 0 && d.max > 0 && in.rng.Float64() < d.p {
		delay = time.Duration(in.rng.Int63n(int64(d.max)))
	}
	if n, ok := in.nth[site]; ok && in.hits[site] == n {
		return true, delay
	}
	if p, ok := in.prob[site]; ok && p > 0 && in.rng.Float64() < p {
		return true, delay
	}
	return false, delay
}

// active is the process-wide injector, nil when fault injection is off (the
// common case: Fault is then a single atomic load).
var active atomic.Pointer[Injector]

// Activate installs in as the process-wide injector and returns a restore
// function reinstating the previous one. Tests that activate an injector
// must not run in parallel with tests that expect fault-free evaluation.
func Activate(in *Injector) (restore func()) {
	prev := active.Swap(in)
	return func() { active.Store(prev) }
}

// Fault is a fault-injection trigger point. When the active injector
// decides the site fails, it raises an ErrInjected trip (recovered into a
// wrapped error at the Solve boundary). With no active injector it is a
// single atomic load.
func Fault(site string) {
	in := active.Load()
	if in == nil {
		return
	}
	fail, delay := in.check(site)
	if delay > 0 {
		time.Sleep(delay)
	}
	if fail {
		//lint:ignore R2 injected-fault unwinding: recovered into a *TripError error at the Solve boundary (AsError)
		panic(&TripError{Reason: ErrInjected, Site: site})
	}
}

// FaultErr is the error-returning twin of Fault for I/O seams: code that
// already threads errors (the snapshot writer/loader) wants an injected
// fault to surface as an ordinary error, not a panic that would have to be
// recovered around every syscall. It returns a *TripError wrapping
// ErrInjected when the active injector decides the site fails, nil
// otherwise. With no active injector it is a single atomic load.
func FaultErr(site string) error {
	in := active.Load()
	if in == nil {
		return nil
	}
	fail, delay := in.check(site)
	if delay > 0 {
		time.Sleep(delay)
	}
	if fail {
		return &TripError{Reason: ErrInjected, Site: site}
	}
	return nil
}
