// Package guard is the resource-governance layer of the evaluation stack:
// budgets charged at the hot loops of internal/cqeval and internal/core, a
// typed error taxonomy carrying partial-progress stats, panic-to-error
// recovery at the public Solve boundaries, and a deterministic
// fault-injection harness for chaos testing.
//
// The design follows the paper's own degradation story: exact WDPT
// evaluation is intractable even under global tractability (Proposition 3),
// while partial and maximal evaluation stay in LOGCFL (Theorems 8-9) — so
// when a budget trips, the caller can retry under the cheaper semantics
// instead of failing outright (core.SolveOptions.Fallback drives that
// ladder; see docs/ROBUSTNESS.md).
//
// Mechanics: a *Meter is threaded through the evaluation layers; charging
// past the budget panics a *TripError, which the Solve boundary recovers
// into an ordinary error. The panic is the abort mechanism, not an API —
// no *TripError panic ever escapes a public entry point. A nil *Meter is
// the disabled state, and every method is safe on the nil receiver, so the
// unbudgeted hot paths stay branch-predictable and counter-silent.
package guard

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"

	"wdpt/internal/obs"
)

// The error taxonomy. All of these are reachable with errors.Is through the
// *TripError returned from a tripped or recovered Solve call.
var (
	// ErrDeadline reports that the wall-clock budget (Budget.Wall) or the
	// context deadline was exceeded.
	ErrDeadline = errors.New("guard: wall-clock budget exceeded")
	// ErrTupleBudget reports that more intermediate tuples were materialized
	// than Budget.MaxTuples allows.
	ErrTupleBudget = errors.New("guard: intermediate-tuple budget exceeded")
	// ErrAnswerLimit reports that the enumeration reached Budget.MaxAnswers
	// and was truncated.
	ErrAnswerLimit = errors.New("guard: answer limit reached")
	// ErrInjected reports a fault raised by the active Injector.
	ErrInjected = errors.New("guard: injected fault")
	// ErrPanic reports a panic recovered at a Solve boundary.
	ErrPanic = errors.New("guard: recovered panic")
)

// Budget bounds one evaluation attempt. The zero value imposes no limits.
// Each limit is independent; zero disables that limit.
type Budget struct {
	// Wall is the wall-clock allowance per attempt, checked at meter
	// checkpoints (every join wave, semijoin pass, and root-candidate
	// expansion) and every 256 tuple charges.
	Wall time.Duration
	// MaxTuples caps the intermediate tuples materialized: bag-relation
	// rows, join and domain-product rows, and enumerated homomorphisms.
	MaxTuples int64
	// MaxAnswers caps the answers collected by the enumeration modes; the
	// partial answer set is kept and marked degraded (with Fallback) or
	// returned alongside ErrAnswerLimit (without).
	MaxAnswers int64
}

// Zero reports whether the budget imposes no limits.
func (b Budget) Zero() bool { return b.Wall == 0 && b.MaxTuples == 0 && b.MaxAnswers == 0 }

// TripError is the typed error for budget trips, injected faults, and
// recovered panics. It carries the progress made before the trip so callers
// can size budgets from observed failures.
type TripError struct {
	// Reason is the sentinel (or context error) classifying the trip.
	Reason error
	// Site names the fault-injection site for ErrInjected trips.
	Site string
	// Value is the recovered panic value for ErrPanic trips.
	Value any
	// Stack is the goroutine stack captured at recovery for ErrPanic trips.
	Stack []byte
	// Tuples and Answers are the meter readings when the trip fired.
	Tuples, Answers int64
	// Elapsed is the attempt's wall-clock time at the trip.
	Elapsed time.Duration
}

// Error renders the reason plus the progress snapshot.
func (e *TripError) Error() string {
	msg := "guard: trip"
	if e.Reason != nil {
		msg = e.Reason.Error()
	}
	if e.Site != "" {
		msg += fmt.Sprintf(" (site %s)", e.Site)
	}
	if e.Value != nil {
		msg += fmt.Sprintf(": %v", e.Value)
	}
	if e.Tuples > 0 || e.Answers > 0 || e.Elapsed > 0 {
		msg += fmt.Sprintf(" [tuples=%d answers=%d elapsed=%s]", e.Tuples, e.Answers, e.Elapsed.Round(time.Microsecond))
	}
	return msg
}

// Unwrap exposes the reason to errors.Is / errors.As.
func (e *TripError) Unwrap() error { return e.Reason }

// Is additionally matches ErrDeadline when the trip was caused by a context
// deadline, so callers can treat "our wall budget" and "the caller's
// context deadline" uniformly.
func (e *TripError) Is(target error) bool {
	return target == ErrDeadline && errors.Is(e.Reason, context.DeadlineExceeded)
}

// Degradable reports whether err is a budget trip the fallback ladder may
// degrade past: our own wall/tuple/answer budgets, but never a context
// cancellation or deadline (the caller asked to stop) and never an injected
// fault or recovered panic.
func Degradable(err error) bool {
	var te *TripError
	if !errors.As(err, &te) {
		return false
	}
	switch te.Reason {
	case ErrDeadline, ErrTupleBudget, ErrAnswerLimit:
		return true
	}
	return false
}

// tickMask makes the deadline/context check on the charge path fire every
// 256 charges: cheap enough for per-row charging, frequent enough that a
// hot join loop notices cancellation promptly.
const tickMask = 255

// Meter charges work against a Budget and watches a context. A nil *Meter
// is the disabled state; every method is safe on the nil receiver. All
// charging methods are safe for concurrent use (parallel evaluation shares
// one meter across workers).
type Meter struct {
	ctx      context.Context
	done     <-chan struct{}
	start    time.Time
	deadline time.Time // zero when Budget.Wall is unset
	maxT     int64
	maxA     int64
	tuples   atomic.Int64
	answers  atomic.Int64
	ticks    atomic.Int64
	trunc    atomic.Bool
	st       *obs.Stats
	counting bool // record guard.* counters (false for context-only meters)
}

// NewMeter returns a meter charging against b and watching ctx, recording
// guard.* counters on st when b sets any limit. It returns nil — the
// disabled meter — when b is zero and ctx can never be cancelled, so
// unbudgeted background evaluations pay nothing and record nothing.
func NewMeter(ctx context.Context, b Budget, st *obs.Stats) *Meter {
	if ctx == nil {
		ctx = context.Background()
	}
	if b.Zero() && ctx.Done() == nil {
		return nil
	}
	m := &Meter{
		ctx:      ctx,
		done:     ctx.Done(),
		start:    time.Now(),
		maxT:     b.MaxTuples,
		maxA:     b.MaxAnswers,
		st:       st,
		counting: !b.Zero(),
	}
	if b.Wall > 0 {
		m.deadline = m.start.Add(b.Wall)
	}
	return m
}

// Active reports whether the meter is charging (non-nil).
func (m *Meter) Active() bool { return m != nil }

// Tuples returns the intermediate tuples charged so far.
func (m *Meter) Tuples() int64 {
	if m == nil {
		return 0
	}
	return m.tuples.Load()
}

// Answers returns the answers admitted by TryAnswer so far.
func (m *Meter) Answers() int64 {
	if m == nil {
		return 0
	}
	return m.answers.Load()
}

// ChargeTuples charges n materialized intermediate tuples, tripping (by
// *TripError panic, recovered at the Solve boundary) when the cumulative
// charge exceeds Budget.MaxTuples. Every 256 charges it also runs the
// Checkpoint deadline/cancellation check.
func (m *Meter) ChargeTuples(n int64) {
	if m == nil || n <= 0 {
		return
	}
	if m.counting {
		m.st.Add(obs.CtrGuardBudgetCharges, n)
	}
	t := m.tuples.Add(n)
	if m.maxT > 0 && t > m.maxT {
		m.trip(ErrTupleBudget)
	}
	if m.ticks.Add(1)&tickMask == 0 {
		m.checkTime()
	}
}

// Checkpoint trips (by *TripError panic) when the context is done or the
// wall-clock budget is spent. Evaluation layers call it at loop heads —
// join waves, semijoin passes, root-candidate expansions — so even work
// that materializes nothing cancels promptly.
func (m *Meter) Checkpoint() {
	if m == nil {
		return
	}
	m.checkTime()
}

func (m *Meter) checkTime() {
	if m.done != nil {
		select {
		case <-m.done:
			m.trip(m.ctx.Err())
		default:
		}
	}
	if !m.deadline.IsZero() && time.Now().After(m.deadline) {
		m.trip(ErrDeadline)
	}
}

// TryAnswer consumes one unit of the answer budget, reporting whether the
// caller may add another answer. When the budget is exhausted it returns
// false and marks the meter truncated instead of tripping, so enumeration
// keeps its partial answer set. Always true on the nil meter or when
// Budget.MaxAnswers is unset.
func (m *Meter) TryAnswer() bool {
	if m == nil || m.maxA <= 0 {
		return true
	}
	for {
		cur := m.answers.Load()
		if cur >= m.maxA {
			m.trunc.Store(true)
			return false
		}
		if m.answers.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// Truncated reports whether TryAnswer ever refused an answer.
func (m *Meter) Truncated() bool { return m != nil && m.trunc.Load() }

// AnswerLimitError builds the ErrAnswerLimit trip error for a truncated
// enumeration (the non-panicking branch of the taxonomy: the partial set
// survives in the result).
func (m *Meter) AnswerLimitError() error {
	te := m.newTrip(ErrAnswerLimit)
	if m != nil && m.counting {
		m.st.Inc(obs.CtrGuardBudgetTrips)
	}
	return te
}

func (m *Meter) newTrip(reason error) *TripError {
	te := &TripError{Reason: reason}
	if m != nil {
		te.Tuples = m.tuples.Load()
		te.Answers = m.answers.Load()
		te.Elapsed = time.Since(m.start)
	}
	return te
}

// trip aborts the attempt. The panic is the internal abort mechanism; it is
// recovered into an error at the Solve boundary and never escapes a public
// entry point.
func (m *Meter) trip(reason error) {
	if m.counting {
		m.st.Inc(obs.CtrGuardBudgetTrips)
	}
	//lint:ignore R2 budget-trip unwinding: recovered into a *TripError error at the Solve boundary (AsError)
	panic(m.newTrip(reason))
}

// AsError converts a recovered panic value into the boundary error: trip
// panics pass through as their *TripError (counting injected faults),
// foreign panics wrap into an ErrPanic trip with the captured stack,
// counted as guard.recovered_panics on st.
func AsError(r any, st *obs.Stats) error {
	if te, ok := r.(*TripError); ok {
		switch {
		case errors.Is(te.Reason, ErrInjected):
			st.Inc(obs.CtrGuardInjectedFaults)
		case errors.Is(te.Reason, ErrPanic):
			st.Inc(obs.CtrGuardRecoveredPanics)
		}
		return te
	}
	st.Inc(obs.CtrGuardRecoveredPanics)
	return &TripError{Reason: ErrPanic, Value: r, Stack: debug.Stack()}
}

// FromPanic wraps a panic value captured off the boundary goroutine (the
// worker pool uses it to transport worker panics back to the caller).
// *TripError values pass through; anything else becomes an ErrPanic trip
// with the worker's stack. No counters are recorded here — the boundary's
// AsError counts each failure exactly once.
func FromPanic(r any) *TripError {
	if te, ok := r.(*TripError); ok {
		return te
	}
	return &TripError{Reason: ErrPanic, Value: r, Stack: debug.Stack()}
}
