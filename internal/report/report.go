// Package report defines the machine-readable form of one evaluation run —
// the JSON document emitted by wdpteval -json and served verbatim by the
// wdptd query server — together with the error taxonomy both front ends
// share: the CLI exit codes and the HTTP status codes derived from the
// guard sentinels of docs/ROBUSTNESS.md.
//
// The package exists so the two front ends cannot drift: there is exactly
// one Report shape, one encoder, and one classification of budget trips.
// A body produced by the server for a request is byte-identical to what
// wdpteval -json prints for the same query, database, mode, and options
// (pinned by the parity tests in internal/server).
package report

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"wdpt/internal/core"
	"wdpt/internal/cq"
	"wdpt/internal/guard"
	"wdpt/internal/obs"
)

// Report is the machine form of one run, emitted as a single JSON document:
// the mode and engine, then whichever of answers / result / plans / counters
// the options and mode produced. Field order is part of the byte-stable
// output contract.
type Report struct {
	// Mode is the requested evaluation mode (the wdpteval -mode vocabulary).
	Mode string `json:"mode"`
	// Engine names the CQ engine driving node evaluation.
	Engine string `json:"engine"`
	// Parallelism is the Solve worker-pool bound the run used.
	Parallelism int `json:"parallelism,omitempty"`
	// Classification is the structural classification, when requested.
	Classification string `json:"classification,omitempty"`
	// AnswerCount is the number of answers (enumeration modes only).
	AnswerCount *int `json:"answer_count,omitempty"`
	// Answers is the canonically sorted answer set (enumeration modes only).
	Answers []cq.Mapping `json:"answers,omitempty"`
	// Result is the decision-mode verdict.
	Result *bool `json:"result,omitempty"`
	// Degraded marks a result carrying weaker semantics than the requested
	// mode: a fallback-ladder hop, or an answer-capped enumeration.
	Degraded *bool `json:"degraded,omitempty"`
	// DegradedMode is the mode whose semantics the result actually carries.
	DegradedMode string `json:"degraded_mode,omitempty"`
	// OptimizerTractable reports whether the Corollary 2 optimizer found a
	// tractable witness, when the optimizer was requested.
	OptimizerTractable *bool `json:"optimizer_tractable,omitempty"`
	// Plans carries the per-node EXPLAIN plans, when requested.
	Plans []obs.Plan `json:"plans,omitempty"`
	// Counters is the obs counter snapshot, when requested.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Trace is the reconstructed span tree, when tracing was requested
	// (?trace=1 on /v1/query, wdpteval -trace with -json).
	Trace []obs.SpanNode `json:"trace,omitempty"`
}

// SetAnswers canonicalizes an enumeration answer set into the report: the
// answers are sorted in place into the canonical solution order and the
// count recorded, so every front end emits the same byte sequence for the
// same answer set.
func (r *Report) SetAnswers(answers []cq.Mapping) {
	sorted := cq.SortSolutions(answers)
	n := len(sorted)
	r.AnswerCount, r.Answers = &n, sorted
}

// SetResult records a decision-mode verdict.
func (r *Report) SetResult(v bool) { r.Result = &v }

// NoteDegraded copies a degraded Solve result onto the report and reports
// whether the result was degraded (so text front ends can print a marker).
func (r *Report) NoteDegraded(res core.Result) bool {
	if !res.Degraded {
		return false
	}
	t := true
	r.Degraded = &t
	r.DegradedMode = res.DegradedMode.String()
	return true
}

// Encode writes the report as one two-space-indented JSON document followed
// by a newline — the exact bytes of wdpteval -json and of a wdptd response
// body.
func Encode(w io.Writer, r Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ExitCode maps an evaluation error to the documented CLI exit code: 0
// success, 3 deadline exceeded, 4 tuple budget exceeded, 5 answer limit
// reached (partial answers were printed), 2 anything else.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, guard.ErrDeadline) || errors.Is(err, context.DeadlineExceeded):
		return 3
	case errors.Is(err, guard.ErrTupleBudget):
		return 4
	case errors.Is(err, guard.ErrAnswerLimit):
		return 5
	}
	return 2
}

// HTTPStatus maps an evaluation error to the status code wdptd serves: 200
// success, 504 deadline (the request's wall budget or context expired), 413
// tuple budget (the query materialized more than the request allowed), 206
// answer limit (the body carries the truncated partial answer set), 500
// anything else. The mapping is the HTTP projection of ExitCode; the two
// classify errors identically.
func HTTPStatus(err error) int {
	switch ExitCode(err) {
	case 0:
		return http.StatusOK
	case 3:
		return http.StatusGatewayTimeout
	case 4:
		return http.StatusRequestEntityTooLarge
	case 5:
		return http.StatusPartialContent
	}
	return http.StatusInternalServerError
}

// ErrorCode names an evaluation error's taxonomy bucket for typed error
// payloads: "deadline", "tuple_budget", "answer_limit", "injected_fault",
// "panic", "canceled", or "error".
func ErrorCode(err error) string {
	switch {
	case errors.Is(err, guard.ErrDeadline) || errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, guard.ErrTupleBudget):
		return "tuple_budget"
	case errors.Is(err, guard.ErrAnswerLimit):
		return "answer_limit"
	case errors.Is(err, guard.ErrInjected):
		return "injected_fault"
	case errors.Is(err, guard.ErrPanic):
		return "panic"
	case errors.Is(err, context.Canceled):
		return "canceled"
	}
	return "error"
}
