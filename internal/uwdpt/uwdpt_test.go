package uwdpt

import (
	"testing"

	"wdpt/internal/core"
	"wdpt/internal/cq"
	"wdpt/internal/cqeval"
	"wdpt/internal/gen"
	"wdpt/internal/subsume"
)

func edgeTree(freeY bool) *core.PatternTree {
	free := []string{"x"}
	if freeY {
		free = append(free, "y")
	}
	return core.MustNew(core.NodeSpec{
		Atoms: []cq.Atom{cq.NewAtom("E", cq.V("x"), cq.V("y"))},
	}, free)
}

func TestUnionBasics(t *testing.T) {
	if _, err := New(); err == nil {
		t.Fatal("empty union accepted")
	}
	u := MustNew(gen.PathWDPT(2), gen.StarWDPT(2))
	if len(u.Trees()) != 2 || u.Size() <= 0 {
		t.Fatal("union shape wrong")
	}
}

func TestUnionEvaluation(t *testing.T) {
	// Union of a music tree and an edge tree over disjoint vocabularies.
	u := MustNew(gen.MusicWDPT("x", "y"), core.MustNew(core.NodeSpec{
		Atoms: []cq.Atom{cq.NewAtom("likes", cq.V("a"), cq.V("b"))},
	}, []string{"a", "b"}))
	d := gen.MusicDatabase()
	d.Insert("likes", "alice", "caribou")
	answers := u.Evaluate(d)
	// Music part: (Our_love, Caribou), (Swim, Caribou); likes part: 1.
	if len(answers) != 3 {
		t.Fatalf("union answers = %v, want 3", answers)
	}
	eng := cqeval.Auto()
	if !u.Eval(d, cq.Mapping{"a": "alice", "b": "caribou"}, eng) {
		t.Fatal("likes answer missing")
	}
	if !u.Eval(d, cq.Mapping{"x": "Swim", "y": "Caribou"}, eng) {
		t.Fatal("music answer missing")
	}
	if u.Eval(d, cq.Mapping{"x": "alice"}, eng) {
		t.Fatal("bogus answer accepted")
	}
	if !u.PartialEval(d, cq.Mapping{"y": "Caribou"}, eng) {
		t.Fatal("partial answer missing")
	}
}

func TestUnionMaxEval(t *testing.T) {
	// Two trees over the same vocabulary: p1 returns x; p2 returns x and
	// optionally y. Maximal answers bind both when possible.
	p1 := core.MustNew(core.NodeSpec{
		Atoms: []cq.Atom{cq.NewAtom("E", cq.V("x"), cq.V("w"))},
	}, []string{"x"})
	p2 := core.MustNew(core.NodeSpec{
		Atoms: []cq.Atom{cq.NewAtom("E", cq.V("x"), cq.V("y"))},
	}, []string{"x", "y"})
	u := MustNew(p1, p2)
	d := gen.ChainDatabase(2) // E(0,1), E(1,2)
	eng := cqeval.Auto()
	// {x:0} ∈ φ(D) via p1 but is properly extended by {x:0, y:1} from p2.
	if u.MaxEval(d, cq.Mapping{"x": "0"}, eng) {
		t.Fatal("{x:0} is not maximal in the union")
	}
	if !u.MaxEval(d, cq.Mapping{"x": "0", "y": "1"}, eng) {
		t.Fatal("{x:0, y:1} should be maximal")
	}
	// Cross-check against enumerated maximal answers.
	maxSet := cq.NewMappingSet()
	for _, h := range u.EvaluateMaximal(d) {
		maxSet.Add(h)
	}
	for _, h := range u.Evaluate(d) {
		if got := u.MaxEval(d, h, eng); got != maxSet.Contains(h) {
			t.Fatalf("MaxEval(%v) = %v disagrees with enumeration", h, got)
		}
	}
}

func TestCQTranslation(t *testing.T) {
	p := gen.MusicWDPT("x", "y", "z", "zp")
	u := MustNew(p)
	qs := u.CQTranslation(0)
	// 4 subtrees, pairwise distinct CQs (Example 8 shape).
	if len(qs) != 4 {
		t.Fatalf("translation = %d CQs, want 4", len(qs))
	}
	// The cap is honored.
	if got := len(u.CQTranslation(2)); got != 2 {
		t.Fatalf("capped translation = %d, want 2", got)
	}
}

// TestProposition9Equivalence: φ ≡s φ_cq (the translation is subsumption-
// equivalent to the union), checked with the exact union subsumption test.
func TestProposition9Equivalence(t *testing.T) {
	p := core.MustNew(core.NodeSpec{
		Atoms: []cq.Atom{cq.NewAtom("E", cq.V("x"), cq.V("y"))},
		Children: []core.NodeSpec{
			{Atoms: []cq.Atom{cq.NewAtom("E", cq.V("y"), cq.V("z"))}},
		},
	}, []string{"x", "z"})
	u := MustNew(p)
	trans := AsUnionOfWDPTs(u.CQTranslation(0))
	if !Equivalent(u, trans, subsume.Options{}) {
		t.Fatal("φ and φ_cq must be subsumption-equivalent")
	}
}

func TestUCQSubsumes(t *testing.T) {
	qEdge := cq.MustNew([]string{"x"}, []cq.Atom{cq.NewAtom("E", cq.V("x"), cq.V("y"))})
	qPath := cq.MustNew([]string{"x"}, []cq.Atom{
		cq.NewAtom("E", cq.V("x"), cq.V("y")), cq.NewAtom("E", cq.V("y"), cq.V("z")),
	})
	qBoth := cq.MustNew([]string{"x", "y"}, []cq.Atom{cq.NewAtom("E", cq.V("x"), cq.V("y"))})
	if !UCQSubsumes([]*cq.CQ{qPath}, []*cq.CQ{qEdge}) {
		t.Fatal("path ⊑ edge (same free var)")
	}
	if UCQSubsumes([]*cq.CQ{qEdge}, []*cq.CQ{qPath}) {
		t.Fatal("edge ⋢ path")
	}
	if !UCQSubsumes([]*cq.CQ{qEdge}, []*cq.CQ{qBoth}) {
		t.Fatal("edge ⊑ both: free(x) ⊆ free(x,y) with identity hom")
	}
	if UCQSubsumes([]*cq.CQ{qBoth}, []*cq.CQ{qEdge}) {
		t.Fatal("both ⋢ edge: y would be dropped")
	}
}

func TestUCQReduce(t *testing.T) {
	qEdge := cq.MustNew([]string{"x"}, []cq.Atom{cq.NewAtom("E", cq.V("x"), cq.V("y"))})
	qPath := cq.MustNew([]string{"x"}, []cq.Atom{
		cq.NewAtom("E", cq.V("x"), cq.V("y")), cq.NewAtom("E", cq.V("y"), cq.V("z")),
	})
	reduced := UCQReduce([]*cq.CQ{qPath, qEdge})
	if len(reduced) != 1 || reduced[0] != qEdge {
		t.Fatalf("reduce = %v, want just the edge query", reduced)
	}
	// Equivalent duplicates collapse to one representative.
	qEdge2 := cq.MustNew([]string{"x"}, []cq.Atom{cq.NewAtom("E", cq.V("x"), cq.V("w"))})
	reduced = UCQReduce([]*cq.CQ{qEdge, qEdge2})
	if len(reduced) != 1 {
		t.Fatalf("equivalent CQs should collapse, got %v", reduced)
	}
}

func TestMemberUWB(t *testing.T) {
	// A path-shaped tree: all subtree CQs are TW(1) — member.
	u := MustNew(gen.PathWDPT(3, "y0", "y3"))
	ws, member, exact := MemberUWB(u, cq.TW(1), 0)
	if !member || !exact || len(ws) == 0 {
		t.Fatalf("path union should be in M(UWB(1)): member=%v exact=%v", member, exact)
	}
	// Triangle root: not a member for TW(1).
	tri := core.MustNew(core.NodeSpec{Atoms: []cq.Atom{
		cq.NewAtom("E", cq.V("a"), cq.V("b")),
		cq.NewAtom("E", cq.V("b"), cq.V("c")),
		cq.NewAtom("E", cq.V("c"), cq.V("a")),
		cq.NewAtom("V", cq.V("x")),
	}}, []string{"x"})
	if _, member, _ := MemberUWB(MustNew(tri), cq.TW(1), 0); member {
		t.Fatal("triangle union must not be in M(UWB(1))")
	}
	if _, member, _ := MemberUWB(MustNew(tri), cq.TW(2), 0); !member {
		t.Fatal("triangle union is in M(UWB(2))")
	}
	// A foldable (symmetric 4-cycle) member is semantically in M(UWB(1)).
	sym := core.MustNew(core.NodeSpec{Atoms: []cq.Atom{
		cq.NewAtom("E", cq.V("a"), cq.V("b")), cq.NewAtom("E", cq.V("b"), cq.V("a")),
		cq.NewAtom("E", cq.V("b"), cq.V("c")), cq.NewAtom("E", cq.V("c"), cq.V("b")),
		cq.NewAtom("E", cq.V("c"), cq.V("d")), cq.NewAtom("E", cq.V("d"), cq.V("c")),
		cq.NewAtom("E", cq.V("d"), cq.V("a")), cq.NewAtom("E", cq.V("a"), cq.V("d")),
		cq.NewAtom("V", cq.V("x")),
	}}, []string{"x"})
	if _, member, _ := MemberUWB(MustNew(sym), cq.TW(1), 0); !member {
		t.Fatal("symmetric 4-cycle union should be in M(UWB(1)) via its core")
	}
}

func TestApproximateUWB(t *testing.T) {
	tri := core.MustNew(core.NodeSpec{Atoms: []cq.Atom{
		cq.NewAtom("E", cq.V("a"), cq.V("b")),
		cq.NewAtom("E", cq.V("b"), cq.V("c")),
		cq.NewAtom("E", cq.V("c"), cq.V("a")),
		cq.NewAtom("V", cq.V("x")),
	}}, []string{"x"})
	u := MustNew(tri)
	approx, err := ApproximateUWB(u, cq.TW(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(approx) == 0 {
		t.Fatal("no approximation members")
	}
	// The approximation must be subsumed by φ and consist of TW(1) CQs.
	if !Subsumes(AsUnionOfWDPTs(approx), u, subsume.Options{}) {
		t.Fatal("UWB approximation must be subsumed by the union")
	}
	for _, q := range approx {
		if !cq.TW(1).Contains(q) {
			t.Fatalf("approximation member %v not in TW(1)", q)
		}
	}
	// Constants are rejected.
	if _, err := ApproximateUWB(MustNew(gen.MusicWDPT("x", "y")), cq.TW(1), 0); err == nil {
		t.Fatal("constants must be rejected")
	}
	// Non-subquery-closed classes are rejected.
	if _, err := ApproximateUWB(u, cq.HW(1), 0); err == nil {
		t.Fatal("HW(k) must be rejected")
	}
}

// TestUnionSubsumptionVsMembers: φ1 ⊑ φ1 ∪ φ2, and a union subsumes each
// member.
func TestUnionSubsumptionVsMembers(t *testing.T) {
	p1 := edgeTree(false)
	p2 := gen.PathWDPT(2)
	u1 := MustNew(p1)
	u12 := MustNew(p1, p2)
	if !Subsumes(u1, u12, subsume.Options{}) {
		t.Fatal("member should be subsumed by union")
	}
	if !Subsumes(u12, u12, subsume.Options{}) {
		t.Fatal("union subsumes itself")
	}
}

func TestTheorem16AgreementProperty(t *testing.T) {
	// Union evaluation problems agree with definitional evaluation on
	// random instances.
	eng := cqeval.Auto()
	for seed := int64(0); seed < 10; seed++ {
		u := MustNew(
			gen.RandomWDPT(gen.TreeParams{MaxDepth: 1, MaxChildren: 2}, seed),
			gen.RandomWDPT(gen.TreeParams{MaxDepth: 2, MaxChildren: 1}, seed+100),
		)
		d := gen.RandomDatabase(gen.DBParams{DomainSize: 3, TuplesPerRel: 6}, seed+7)
		answers := u.Evaluate(d)
		maxSet := cq.NewMappingSet()
		for _, h := range u.EvaluateMaximal(d) {
			maxSet.Add(h)
		}
		for _, h := range answers {
			if !u.Eval(d, h, eng) {
				t.Fatalf("seed %d: enumerated answer %v rejected by Eval", seed, h)
			}
			if !u.PartialEval(d, h, eng) {
				t.Fatalf("seed %d: enumerated answer %v rejected by PartialEval", seed, h)
			}
			if got := u.MaxEval(d, h, eng); got != maxSet.Contains(h) {
				t.Fatalf("seed %d: MaxEval(%v) = %v disagrees", seed, h, got)
			}
		}
	}
}

func TestOptimizeUnionCorollary3(t *testing.T) {
	// A union containing a foldable member: the optimizer finds a witness
	// union of tractable CQs and answers identically.
	sym := core.MustNew(core.NodeSpec{Atoms: []cq.Atom{
		cq.NewAtom("E", cq.V("a"), cq.V("b")), cq.NewAtom("E", cq.V("b"), cq.V("a")),
		cq.NewAtom("E", cq.V("b"), cq.V("c")), cq.NewAtom("E", cq.V("c"), cq.V("b")),
		cq.NewAtom("E", cq.V("c"), cq.V("d")), cq.NewAtom("E", cq.V("d"), cq.V("c")),
		cq.NewAtom("E", cq.V("d"), cq.V("a")), cq.NewAtom("E", cq.V("a"), cq.V("d")),
		cq.NewAtom("V", cq.V("x")),
	}}, []string{"x"})
	u := MustNew(sym, gen.PathWDPT(2))
	o := OptimizeUnion(u, cq.TW(1), 0)
	if !o.Tractable() {
		t.Fatal("expected a tractable witness")
	}
	if len(o.Originals()) != 2 {
		t.Fatal("originals lost")
	}
	eng := cqeval.Auto()
	for seed := int64(0); seed < 5; seed++ {
		d := gen.RandomDatabase(gen.DBParams{
			DomainSize:   3,
			TuplesPerRel: 8,
			Rels:         []gen.RelSpec{{Name: "E", Arity: 2}, {Name: "V", Arity: 1}},
		}, seed)
		for _, h := range []cq.Mapping{{}, {"x": "0"}, {"x": "9"}, {"y0": "1"}} {
			if got, want := o.PartialEval(d, h, eng), u.PartialEval(d, h, eng); got != want {
				t.Fatalf("seed %d: PartialEval(%v) witness=%v direct=%v", seed, h, got, want)
			}
			if got, want := o.MaxEval(d, h, eng), u.MaxEval(d, h, eng); got != want {
				t.Fatalf("seed %d: MaxEval(%v) witness=%v direct=%v", seed, h, got, want)
			}
		}
	}
}

func TestOptimizeUnionNonMember(t *testing.T) {
	tri := core.MustNew(core.NodeSpec{Atoms: []cq.Atom{
		cq.NewAtom("E", cq.V("a"), cq.V("b")),
		cq.NewAtom("E", cq.V("b"), cq.V("c")),
		cq.NewAtom("E", cq.V("c"), cq.V("a")),
		cq.NewAtom("V", cq.V("x")),
	}}, []string{"x"})
	u := MustNew(tri)
	o := OptimizeUnion(u, cq.TW(1), 0)
	if o.Tractable() {
		t.Fatal("triangle union must have no TW(1) witness")
	}
	eng := cqeval.Auto()
	d := gen.RandomDatabase(gen.DBParams{
		Rels: []gen.RelSpec{{Name: "E", Arity: 2}, {Name: "V", Arity: 1}},
	}, 1)
	if o.PartialEval(d, cq.Mapping{}, eng) != u.PartialEval(d, cq.Mapping{}, eng) {
		t.Fatal("fallback disagrees")
	}
	if o.MaxEval(d, cq.Mapping{}, eng) != u.MaxEval(d, cq.Mapping{}, eng) {
		t.Fatal("fallback MaxEval disagrees")
	}
}
