// Package uwdpt implements unions of well-designed pattern trees (UWDPTs),
// Section 6 of Barceló & Pichler (PODS 2015): union evaluation in its three
// variants (Theorem 16), the translation φ ↦ φ_cq into unions of CQs, union
// subsumption and subsumption-equivalence, membership in M(UWB(k)) via
// Proposition 9 / Theorem 17, and UWB(k)-approximations via per-CQ
// approximations (Theorem 18).
package uwdpt

import (
	"fmt"

	"wdpt/internal/core"
	"wdpt/internal/cq"
	"wdpt/internal/cqeval"
	"wdpt/internal/db"
	"wdpt/internal/obs"
	"wdpt/internal/subsume"
)

// Union is a union of WDPTs φ = p_1 ∪ ... ∪ p_n. Members need not share
// free variables.
type Union struct {
	trees []*core.PatternTree
}

// New builds a union; at least one member is required.
func New(trees ...*core.PatternTree) (*Union, error) {
	if len(trees) == 0 {
		return nil, fmt.Errorf("uwdpt: a union needs at least one member")
	}
	return &Union{trees: append([]*core.PatternTree(nil), trees...)}, nil
}

// MustNew is New that panics on error.
func MustNew(trees ...*core.PatternTree) *Union {
	u, err := New(trees...)
	if err != nil {
		//lint:ignore R2 Must-constructor: panicking on invalid literals is its documented contract
		panic(err)
	}
	return u
}

// Trees returns the member WDPTs. Must not be modified.
func (u *Union) Trees() []*core.PatternTree { return u.trees }

// Size returns the total size of the members.
func (u *Union) Size() int {
	n := 0
	for _, p := range u.trees {
		n += p.Size()
	}
	return n
}

// Evaluate computes φ(D) = ⋃ p_i(D).
func (u *Union) Evaluate(d *db.Database) []cq.Mapping {
	set := cq.NewMappingSet()
	for _, p := range u.trees {
		for _, h := range p.Evaluate(d) {
			set.Add(h)
		}
	}
	return set.All()
}

// EvaluateMaximal computes φ_m(D): the ⊑-maximal members of φ(D).
func (u *Union) EvaluateMaximal(d *db.Database) []cq.Mapping {
	set := cq.NewMappingSet()
	for _, h := range u.Evaluate(d) {
		set.Add(h)
	}
	return set.Maximal()
}

// Eval decides ⋃-EVAL: h ∈ φ(D), i.e. h ∈ p_i(D) for some member. Each
// member test uses the interface algorithm, so the union problem stays in
// LOGCFL for unions of ℓ-C(k) ∩ BI(c) trees (Theorem 16.1).
func (u *Union) Eval(d *db.Database, h cq.Mapping, eng cqeval.Engine) bool {
	st := cqeval.StatsOf(eng)
	for _, p := range u.trees {
		st.Inc(obs.CtrUnionMemberEvals)
		if p.EvalInterface(d, h, eng) {
			return true
		}
	}
	return false
}

// PartialEval decides ⋃-PARTIAL-EVAL: some answer of some member extends h
// (Theorem 16.2).
func (u *Union) PartialEval(d *db.Database, h cq.Mapping, eng cqeval.Engine) bool {
	st := cqeval.StatsOf(eng)
	for _, p := range u.trees {
		st.Inc(obs.CtrUnionMemberEvals)
		if p.PartialEval(d, h, eng) {
			return true
		}
	}
	return false
}

// MaxEval decides ⋃-MAX-EVAL: h is a ⊑-maximal element of φ(D). This holds
// iff h is a partial answer of some member and no member has an answer
// properly extending h — in which case the witnessing member also has h as
// an exact answer (Theorem 16.2 keeps this in LOGCFL for g-C(k) members).
func (u *Union) MaxEval(d *db.Database, h cq.Mapping, eng cqeval.Engine) bool {
	if !u.PartialEval(d, h, eng) {
		return false
	}
	for _, p := range u.trees {
		if p.ProperExtensionExists(d, h, eng) {
			return false
		}
	}
	return true
}

// CQTranslation computes φ_cq (Section 6): the union, over members p and
// rooted subtrees T' of p, of the projected CQs r_T'. The number of
// subtrees can be exponential; maxCQs caps the output (0 = no cap).
// Duplicate CQs (same atoms and free variables) are merged.
func (u *Union) CQTranslation(maxCQs int) []*cq.CQ {
	return u.CQTranslationObs(maxCQs, nil)
}

// CQTranslationObs is CQTranslation with each emitted CQ counted on st.
func (u *Union) CQTranslationObs(maxCQs int, st *obs.Stats) []*cq.CQ {
	var out []*cq.CQ
	seen := make(map[string]bool)
	for _, p := range u.trees {
		p.EnumerateSubtrees(func(s core.Subtree) bool {
			q := p.SubtreeProjectedCQ(s)
			key := q.String()
			if !seen[key] {
				seen[key] = true
				out = append(out, q)
				st.Inc(obs.CtrUnionCQs)
			}
			return maxCQs == 0 || len(out) < maxCQs
		})
		if maxCQs != 0 && len(out) >= maxCQs {
			break
		}
	}
	return out
}

// Subsumes decides φ ⊑ φ': over every database, every answer of φ is
// subsumed by an answer of φ'. The small-model space is the same as for
// single trees, applied to each member of the left-hand union.
func Subsumes(u1, u2 *Union, opts subsume.Options) bool {
	consts := unionConstants(u1, u2)
	eng := opts.Engine
	if eng == nil {
		eng = cqeval.Auto()
	}
	holds := true
	for _, p := range u1.trees {
		p.EnumerateSubtrees(func(s core.Subtree) bool {
			atoms := p.SubtreeAtoms(s)
			subsume.QuotientDatabases(atoms, consts, func(d *db.Database) bool {
				for _, h := range u1.Evaluate(d) {
					if !u2.PartialEval(d, h, eng) {
						holds = false
						return false
					}
				}
				return true
			})
			return holds
		})
		if !holds {
			break
		}
	}
	return holds
}

// Equivalent decides subsumption-equivalence of unions.
func Equivalent(u1, u2 *Union, opts subsume.Options) bool {
	return Subsumes(u1, u2, opts) && Subsumes(u2, u1, opts)
}

func unionConstants(us ...*Union) []string {
	seen := make(map[string]bool)
	var out []string
	for _, u := range us {
		for _, p := range u.trees {
			for _, a := range p.AllAtoms() {
				for _, t := range a.Args {
					if !t.IsVar() && !seen[t.Value()] {
						seen[t.Value()] = true
						out = append(out, t.Value())
					}
				}
			}
		}
	}
	return out
}
