// Package uwdpt implements unions of well-designed pattern trees (UWDPTs),
// Section 6 of Barceló & Pichler (PODS 2015): union evaluation in its three
// variants (Theorem 16), the translation φ ↦ φ_cq into unions of CQs, union
// subsumption and subsumption-equivalence, membership in M(UWB(k)) via
// Proposition 9 / Theorem 17, and UWB(k)-approximations via per-CQ
// approximations (Theorem 18).
package uwdpt

import (
	"context"
	"fmt"

	"wdpt/internal/core"
	"wdpt/internal/cq"
	"wdpt/internal/cqeval"
	"wdpt/internal/db"
	"wdpt/internal/guard"
	"wdpt/internal/obs"
	"wdpt/internal/par"
	"wdpt/internal/subsume"
)

// Union is a union of WDPTs φ = p_1 ∪ ... ∪ p_n. Members need not share
// free variables.
type Union struct {
	trees []*core.PatternTree
}

// New builds a union; at least one member is required.
func New(trees ...*core.PatternTree) (*Union, error) {
	if len(trees) == 0 {
		return nil, fmt.Errorf("uwdpt: a union needs at least one member")
	}
	return &Union{trees: append([]*core.PatternTree(nil), trees...)}, nil
}

// MustNew is New that panics on error.
func MustNew(trees ...*core.PatternTree) *Union {
	u, err := New(trees...)
	if err != nil {
		//lint:ignore R2 Must-constructor: panicking on invalid literals is its documented contract
		panic(err)
	}
	return u
}

// Trees returns the member WDPTs. Must not be modified.
func (u *Union) Trees() []*core.PatternTree { return u.trees }

// Size returns the total size of the members.
func (u *Union) Size() int {
	n := 0
	for _, p := range u.trees {
		n += p.Size()
	}
	return n
}

// Solve is the consolidated union entry point, mirroring
// core.PatternTree.Solve over φ = p_1 ∪ ... ∪ p_n (Theorem 16). The
// enumeration modes evaluate the members — in parallel when
// opts.Parallelism > 1 — and merge their answer sets in member order, so
// results are byte-identical at every parallelism level. The decision modes
// are member-level disjunctions: sequentially they short-circuit on the
// first witnessing member (the historical behavior and counter totals); in
// parallel every member is evaluated, so decision-mode work counters may
// exceed the sequential totals when a early member already witnesses.
//
// Guardrails mirror core.Solve: one guard meter spans the whole union
// evaluation (members share the budget through SolveOptions.Meter rather
// than getting it afresh), budget trips and panics surface as
// *guard.TripError values, Solve never panics, and with Fallback set a
// tripped decision mode retries the entire union down the degradation
// ladder (docs/ROBUSTNESS.md).
func (u *Union) Solve(ctx context.Context, d *db.Database, opts core.SolveOptions) (res core.Result, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	st := opts.Stats
	if st == nil {
		st = cqeval.StatsOf(opts.Engine)
	}
	defer func() {
		// Boundary backstop; solveAttempt recovers evaluation panics.
		if r := recover(); r != nil {
			res, err = core.Result{}, guard.AsError(r, st)
		}
	}()
	if opts.Meter != nil {
		return u.solveAttempt(ctx, d, opts.Mode, opts, st, opts.Meter)
	}
	res, err = u.solveAttempt(ctx, d, opts.Mode, opts, st, guard.NewMeter(ctx, opts.Budget, st))
	if err == nil || !opts.Fallback || !guard.Degradable(err) {
		return res, err
	}
	for _, mode := range core.FallbackLadder(opts.Mode) {
		if cerr := ctx.Err(); cerr != nil {
			return core.Result{}, cerr
		}
		st.Inc(obs.CtrGuardFallbackHops)
		res, err = u.solveAttempt(ctx, d, mode, opts, st, guard.NewMeter(ctx, opts.Budget, st))
		if err == nil {
			res.Degraded, res.DegradedMode = true, mode
			return res, nil
		}
		if !guard.Degradable(err) {
			return core.Result{}, err
		}
	}
	return core.Result{}, err
}

// solveAttempt runs one union evaluation attempt of the given mode with all
// members sharing the meter m, recovering any panic below it into an error
// (member Solve calls recover their own, but ProperExtensionExists runs
// outside a member boundary).
func (u *Union) solveAttempt(ctx context.Context, d *db.Database, mode core.Mode, opts core.SolveOptions, st *obs.Stats, m *guard.Meter) (res core.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = core.Result{}, guard.AsError(r, st)
		}
	}()
	switch mode {
	case core.ModeEnumerate, core.ModeMaximal:
		memberOpts := opts
		memberOpts.Mode = core.ModeEnumerate
		memberOpts.Budget = guard.Budget{}
		memberOpts.Fallback = false
		memberOpts.Meter = m
		pool := par.New(opts.Parallelism, st)
		type memberOut struct {
			answers []cq.Mapping
			err     error
		}
		outs := par.Map(pool, len(u.trees), func(i int) memberOut {
			out, merr := u.trees[i].Solve(ctx, d, memberOpts)
			return memberOut{answers: out.Answers, err: merr}
		})
		set := cq.NewMappingSet()
		for _, out := range outs {
			if out.err != nil {
				return core.Result{}, out.err
			}
			for _, h := range out.answers {
				set.Add(h)
			}
		}
		if mode == core.ModeMaximal {
			res = core.Result{Answers: set.Maximal()}
		} else {
			res = core.Result{Answers: set.All()}
		}
		if m.Truncated() {
			// The shared answer cap fired in some member: keep the merged
			// partial set, marked Degraded (with the typed error when no
			// fallback was requested).
			res.Degraded, res.DegradedMode = true, mode
			if opts.Fallback || opts.Meter != nil {
				return res, nil
			}
			return res, m.AnswerLimitError()
		}
		return res, nil
	case core.ModeExact, core.ModeExactNaive, core.ModePartial:
		attemptOpts := opts
		attemptOpts.Mode = mode
		holds, err := u.anyMember(ctx, d, attemptOpts, st, m)
		return core.Result{Holds: holds}, err
	case core.ModeMax:
		// h is ⊑-maximal in φ(D) iff it is a partial answer of some member
		// and no member has an answer properly extending it (Theorem 16.2).
		partialOpts := opts
		partialOpts.Mode = core.ModePartial
		holds, err := u.anyMember(ctx, d, partialOpts, st, m)
		if err != nil || !holds {
			return core.Result{}, err
		}
		eng := u.resolveEngine(opts, st, m)
		pool := par.New(opts.Parallelism, st)
		if !pool.Parallel() {
			for _, p := range u.trees {
				if p.ProperExtensionExists(d, opts.Mapping, eng) {
					return core.Result{}, nil
				}
			}
			return core.Result{Holds: true}, nil
		}
		extended := par.Map(pool, len(u.trees), func(i int) bool {
			return u.trees[i].ProperExtensionExists(d, opts.Mapping, eng)
		})
		for _, ext := range extended {
			if ext {
				return core.Result{}, nil
			}
		}
		return core.Result{Holds: true}, nil
	}
	return core.Result{}, fmt.Errorf("uwdpt: unknown solve mode %v", mode)
}

// resolveEngine mirrors core.Solve's engine defaulting at the union level,
// so one engine (and one plan cache) is shared across all member tests.
func (u *Union) resolveEngine(opts core.SolveOptions, st *obs.Stats, m *guard.Meter) cqeval.Engine {
	eng := opts.Engine
	if eng == nil {
		eng = cqeval.WithStats(cqeval.Auto(), st)
	} else if opts.Stats != nil && cqeval.StatsOf(eng) != opts.Stats {
		eng = cqeval.WithStats(eng, opts.Stats)
	}
	return cqeval.WithMeter(cqeval.WithPool(eng, par.New(opts.Parallelism, st)), m)
}

// anyMember decides the member-level disjunction behind the union decision
// modes, counting one uwdpt.member_evals per member actually evaluated. All
// members share the meter m.
func (u *Union) anyMember(ctx context.Context, d *db.Database, opts core.SolveOptions, st *obs.Stats, m *guard.Meter) (bool, error) {
	memberOpts := opts
	memberOpts.Engine = u.resolveEngine(opts, st, m)
	memberOpts.Stats = nil // already wired into the engine
	memberOpts.Budget = guard.Budget{}
	memberOpts.Fallback = false
	memberOpts.Meter = m
	pool := par.New(opts.Parallelism, st)
	if !pool.Parallel() {
		for _, p := range u.trees {
			if err := ctx.Err(); err != nil {
				return false, err
			}
			st.Inc(obs.CtrUnionMemberEvals)
			res, err := p.Solve(ctx, d, memberOpts)
			if err != nil {
				return false, err
			}
			if res.Holds {
				return true, nil
			}
		}
		return false, nil
	}
	st.Add(obs.CtrUnionMemberEvals, int64(len(u.trees)))
	type memberOut struct {
		holds bool
		err   error
	}
	outs := par.Map(pool, len(u.trees), func(i int) memberOut {
		res, err := u.trees[i].Solve(ctx, d, memberOpts)
		return memberOut{holds: res.Holds, err: err}
	})
	holds := false
	for _, out := range outs {
		if out.err != nil {
			return false, out.err
		}
		holds = holds || out.holds
	}
	return holds, nil
}

// Evaluate computes φ(D) = ⋃ p_i(D).
//
// Deprecated: use Solve with core.ModeEnumerate.
func (u *Union) Evaluate(d *db.Database) []cq.Mapping {
	res, _ := u.Solve(context.Background(), d, core.SolveOptions{Mode: core.ModeEnumerate})
	return res.Answers
}

// EvaluateMaximal computes φ_m(D): the ⊑-maximal members of φ(D).
//
// Deprecated: use Solve with core.ModeMaximal.
func (u *Union) EvaluateMaximal(d *db.Database) []cq.Mapping {
	res, _ := u.Solve(context.Background(), d, core.SolveOptions{Mode: core.ModeMaximal})
	return res.Answers
}

// Eval decides ⋃-EVAL: h ∈ φ(D), i.e. h ∈ p_i(D) for some member. Each
// member test uses the interface algorithm, so the union problem stays in
// LOGCFL for unions of ℓ-C(k) ∩ BI(c) trees (Theorem 16.1).
//
// Deprecated: use Solve with core.ModeExact.
func (u *Union) Eval(d *db.Database, h cq.Mapping, eng cqeval.Engine) bool {
	res, _ := u.Solve(context.Background(), d, core.SolveOptions{Mode: core.ModeExact, Mapping: h, Engine: eng})
	return res.Holds
}

// PartialEval decides ⋃-PARTIAL-EVAL: some answer of some member extends h
// (Theorem 16.2).
//
// Deprecated: use Solve with core.ModePartial.
func (u *Union) PartialEval(d *db.Database, h cq.Mapping, eng cqeval.Engine) bool {
	res, _ := u.Solve(context.Background(), d, core.SolveOptions{Mode: core.ModePartial, Mapping: h, Engine: eng})
	return res.Holds
}

// MaxEval decides ⋃-MAX-EVAL: h is a ⊑-maximal element of φ(D).
//
// Deprecated: use Solve with core.ModeMax.
func (u *Union) MaxEval(d *db.Database, h cq.Mapping, eng cqeval.Engine) bool {
	res, _ := u.Solve(context.Background(), d, core.SolveOptions{Mode: core.ModeMax, Mapping: h, Engine: eng})
	return res.Holds
}

// CQTranslation computes φ_cq (Section 6): the union, over members p and
// rooted subtrees T' of p, of the projected CQs r_T'. The number of
// subtrees can be exponential; maxCQs caps the output (0 = no cap).
// Duplicate CQs (same atoms and free variables) are merged.
func (u *Union) CQTranslation(maxCQs int) []*cq.CQ {
	return u.CQTranslationObs(maxCQs, nil)
}

// CQTranslationObs is CQTranslation with each emitted CQ counted on st.
func (u *Union) CQTranslationObs(maxCQs int, st *obs.Stats) []*cq.CQ {
	var out []*cq.CQ
	seen := make(map[string]bool)
	for _, p := range u.trees {
		p.EnumerateSubtrees(func(s core.Subtree) bool {
			q := p.SubtreeProjectedCQ(s)
			key := q.String()
			if !seen[key] {
				seen[key] = true
				out = append(out, q)
				st.Inc(obs.CtrUnionCQs)
			}
			return maxCQs == 0 || len(out) < maxCQs
		})
		if maxCQs != 0 && len(out) >= maxCQs {
			break
		}
	}
	return out
}

// CQTranslationParallel is CQTranslationObs with the per-member subtree
// enumeration fanned out over the caller's pool (a nil pool runs
// sequentially, and cancelling the pool's context stops the fan-out — the
// pool is the cancellation carrier here). The fan-out only applies to the
// uncapped translation (maxCQs == 0): members enumerate with private
// dedup and the results merge in member order under the global dedup, which
// reproduces the sequential output and its uwdpt.translation_cqs count
// byte for byte (each CQ is counted when it first survives the global
// dedup, exactly as the sequential pass counts it). A capped translation
// short-circuits mid-member, so it always runs sequentially.
func (u *Union) CQTranslationParallel(maxCQs int, st *obs.Stats, pool *par.Pool) []*cq.CQ {
	if maxCQs != 0 || !pool.Parallel() {
		return u.CQTranslationObs(maxCQs, st)
	}
	perMember := par.Map(pool, len(u.trees), func(i int) []*cq.CQ {
		var cqs []*cq.CQ
		local := make(map[string]bool)
		u.trees[i].EnumerateSubtrees(func(s core.Subtree) bool {
			q := u.trees[i].SubtreeProjectedCQ(s)
			if key := q.String(); !local[key] {
				local[key] = true
				cqs = append(cqs, q)
			}
			return true
		})
		return cqs
	})
	var out []*cq.CQ
	seen := make(map[string]bool)
	for _, cqs := range perMember {
		for _, q := range cqs {
			if key := q.String(); !seen[key] {
				seen[key] = true
				out = append(out, q)
				st.Inc(obs.CtrUnionCQs)
			}
		}
	}
	return out
}

// Subsumes decides φ ⊑ φ': over every database, every answer of φ is
// subsumed by an answer of φ'. The small-model space is the same as for
// single trees, applied to each member of the left-hand union.
func Subsumes(u1, u2 *Union, opts subsume.Options) bool {
	consts := unionConstants(u1, u2)
	eng := opts.Engine
	if eng == nil {
		eng = cqeval.Auto()
	}
	holds := true
	for _, p := range u1.trees {
		p.EnumerateSubtrees(func(s core.Subtree) bool {
			atoms := p.SubtreeAtoms(s)
			subsume.QuotientDatabases(atoms, consts, func(d *db.Database) bool {
				for _, h := range u1.Evaluate(d) {
					if !u2.PartialEval(d, h, eng) {
						holds = false
						return false
					}
				}
				return true
			})
			return holds
		})
		if !holds {
			break
		}
	}
	return holds
}

// Equivalent decides subsumption-equivalence of unions.
func Equivalent(u1, u2 *Union, opts subsume.Options) bool {
	return Subsumes(u1, u2, opts) && Subsumes(u2, u1, opts)
}

func unionConstants(us ...*Union) []string {
	seen := make(map[string]bool)
	var out []string
	for _, u := range us {
		for _, p := range u.trees {
			for _, a := range p.AllAtoms() {
				for _, t := range a.Args {
					if !t.IsVar() && !seen[t.Value()] {
						seen[t.Value()] = true
						out = append(out, t.Value())
					}
				}
			}
		}
	}
	return out
}
