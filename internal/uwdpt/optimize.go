package uwdpt

import (
	"wdpt/internal/core"
	"wdpt/internal/cq"
	"wdpt/internal/cqeval"
	"wdpt/internal/db"
)

// OptimizedUnion is the fixed-parameter-tractable union evaluator of
// Corollary 3: the M(UWB(k)) membership test of Theorem 17 runs once at
// construction; when the union is subsumption-equivalent to a union of
// tractable CQs, all subsequent ⋃-PARTIAL-EVAL and ⋃-MAX-EVAL queries run
// against that union of single-node trees in polynomial time.
type OptimizedUnion struct {
	original *Union
	witness  *Union // union of tractable single-node trees, or nil
}

// OptimizeUnion prepares the FPT evaluator. maxCQs caps the φ_cq
// enumeration (0 = no cap); when the cap is hit the membership answer may
// be incomplete and the evaluator falls back to the original union.
func OptimizeUnion(u *Union, c cq.Class, maxCQs int) *OptimizedUnion {
	o := &OptimizedUnion{original: u}
	witnesses, member, exact := MemberUWB(u, c, maxCQs)
	if member && exact {
		o.witness = AsUnionOfWDPTs(witnesses)
	}
	return o
}

// Tractable reports whether a tractable witness union is available.
func (o *OptimizedUnion) Tractable() bool { return o.witness != nil }

// Witness returns the equivalent union of tractable CQs, or nil.
func (o *OptimizedUnion) Witness() *Union { return o.witness }

// PartialEval answers ⋃-PARTIAL-EVAL for the original union.
//
//lint:ignore R7 Corollary 3 witness evaluator: dispatches between witness and original, both of which route through Solve
func (o *OptimizedUnion) PartialEval(d *db.Database, h cq.Mapping, eng cqeval.Engine) bool {
	if o.witness != nil {
		return o.witness.PartialEval(d, h, eng)
	}
	return o.original.PartialEval(d, h, eng)
}

// MaxEval answers ⋃-MAX-EVAL for the original union.
//
//lint:ignore R7 Corollary 3 witness evaluator: dispatches between witness and original, both of which route through Solve
func (o *OptimizedUnion) MaxEval(d *db.Database, h cq.Mapping, eng cqeval.Engine) bool {
	if o.witness != nil {
		return o.witness.MaxEval(d, h, eng)
	}
	return o.original.MaxEval(d, h, eng)
}

// Originals returns the trees of the original union; exposed so callers can
// fall back to exact evaluation when needed.
func (o *OptimizedUnion) Originals() []*core.PatternTree { return o.original.Trees() }
