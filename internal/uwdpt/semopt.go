package uwdpt

import (
	"fmt"

	"wdpt/internal/core"
	"wdpt/internal/cq"
)

// Semantic optimization and approximation of UWDPTs (Section 6). The key
// tool is Proposition 9: φ is subsumption-equivalent to its CQ translation
// φ_cq, so membership in M(UWB(k)) and UWB(k)-approximation reduce to the
// corresponding — much easier — problems on unions of CQs.

// UCQSubsumes decides φ_cq ⊑ φ'_cq for unions of CQs under the mapping
// (name-based) semantics: every answer of a CQ on the left is subsumed by
// an answer of some CQ on the right. For CQs the canonical database
// suffices: q ⊑ q' iff free(q) ⊆ free(q') and there is a homomorphism from
// q' to q fixing the free variables of q.
func UCQSubsumes(left, right []*cq.CQ) bool {
	for _, q := range left {
		if !ucqMemberSubsumed(q, right) {
			return false
		}
	}
	return true
}

func ucqMemberSubsumed(q *cq.CQ, right []*cq.CQ) bool {
	for _, qp := range right {
		if cqSubsumed(q, qp) {
			return true
		}
	}
	return false
}

// cqSubsumed reports q ⊑ q' in the name-based subsumption order.
func cqSubsumed(q, qp *cq.CQ) bool {
	freeP := make(map[string]bool, len(qp.Free()))
	for _, x := range qp.Free() {
		freeP[x] = true
	}
	req := make(map[string]string, len(q.Free()))
	for _, x := range q.Free() {
		if !freeP[x] {
			return false // free(q) ⊄ free(q')
		}
		req[x] = x
	}
	return cq.HomToAtoms(qp.Atoms(), q.Atoms(), req)
}

// UCQEquivalent decides subsumption-equivalence of unions of CQs.
func UCQEquivalent(left, right []*cq.CQ) bool {
	return UCQSubsumes(left, right) && UCQSubsumes(right, left)
}

// UCQReduce computes φ_cq^r (proof of Theorem 17): it removes every CQ that
// is subsumed by another CQ of the union, keeping one representative per
// equivalence class.
func UCQReduce(qs []*cq.CQ) []*cq.CQ {
	var out []*cq.CQ
	for i, q := range qs {
		dominated := false
		for j, qp := range qs {
			if i == j {
				continue
			}
			if cqSubsumed(q, qp) {
				if !cqSubsumed(qp, q) || j < i {
					dominated = true
					break
				}
			}
		}
		if !dominated {
			out = append(out, q)
		}
	}
	return out
}

// MemberUWB decides membership of φ in M(UWB(k)) via Proposition 9 /
// Theorem 17: φ ∈ M(UWB(k)) iff every CQ of the reduced translation φ_cq^r
// is equivalent to a CQ in C(k). It returns the witnesses (the equivalent
// tractable CQs, which as single-node WDPTs form the union φ' of
// Theorem 17.2). maxCQs caps the subtree enumeration (0 = no cap); exact
// reports whether the cap was NOT hit, i.e. the answer is exact.
func MemberUWB(u *Union, c cq.Class, maxCQs int) (witnesses []*cq.CQ, member, exact bool) {
	translation := u.CQTranslation(maxCQs)
	exact = maxCQs == 0 || len(translation) < maxCQs
	reduced := UCQReduce(translation)
	for _, q := range reduced {
		w, ok := cq.EquivalentInClass(q, c)
		if !ok {
			return nil, false, exact
		}
		witnesses = append(witnesses, w)
	}
	return witnesses, true, exact
}

// ApproximateUWB computes the UWB(k)-approximation of φ (Theorem 18): the
// union of the C(k)-approximations of the CQs in φ_cq, reduced. Every
// member of the result is a polynomial-size CQ in C(k) (a single-node WDPT
// in WB(k)); the union is the unique UWB(k)-approximation up to ≡s.
// φ must be constant-free (Section 6 studies approximations without
// constants). maxCQs caps the subtree enumeration (0 = no cap).
func ApproximateUWB(u *Union, c cq.Class, maxCQs int) ([]*cq.CQ, error) {
	for _, p := range u.trees {
		if p.HasConstants() {
			return nil, fmt.Errorf("uwdpt: UWB approximations are only defined for constant-free unions")
		}
	}
	if !c.SubqueryClosed() {
		return nil, fmt.Errorf("uwdpt: class %s is not subquery-closed; use TW(k) or HW'(k)", c.Name())
	}
	translation := u.CQTranslation(maxCQs)
	var members []*cq.CQ
	for _, q := range translation {
		members = append(members, cq.ApproximationsInClass(q, c)...)
	}
	return UCQReduce(members), nil
}

// AsUnionOfWDPTs converts a union of CQs into a UWDPT of single-node trees,
// e.g. to compare a UWB(k)-approximation with the original union under ⊑.
func AsUnionOfWDPTs(qs []*cq.CQ) *Union {
	trees := make([]*core.PatternTree, len(qs))
	for i, q := range qs {
		trees[i] = core.FromCQ(q)
	}
	return MustNew(trees...)
}
