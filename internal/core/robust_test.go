package core_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"wdpt/internal/core"
	"wdpt/internal/cq"
	"wdpt/internal/cqeval"
	"wdpt/internal/db"
	"wdpt/internal/gen"
	"wdpt/internal/guard"
	"wdpt/internal/obs"
)

// panicEngine is a cqeval.Engine whose evaluation methods always panic. It
// stands in for a buggy engine implementation: the Solve boundary must turn
// the panic into a wrapped error instead of crashing the process.
type panicEngine struct{}

func (panicEngine) Name() string { return "panic-stub" }

func (panicEngine) Satisfiable(atoms []cq.Atom, d *db.Database, fixed cq.Mapping) bool {
	panic("stub engine: Satisfiable")
}

func (panicEngine) Project(atoms []cq.Atom, d *db.Database, fixed cq.Mapping, proj []string) []cq.Mapping {
	panic("stub engine: Project")
}

func (panicEngine) Explain(atoms []cq.Atom, d *db.Database, fixed cq.Mapping) obs.Plan {
	return obs.Plan{Engine: "panic-stub"}
}

// waitDrained fails the test if the goroutine count does not return to the
// baseline: a recovered panic must not strand pool helpers.
func waitDrained(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d goroutines, baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSolveRecoversEnginePanic pins the panic-to-error boundary: a panicking
// engine surfaces as an errors.Is(err, ErrPanic) error carrying the panic
// value and a stack that names the faulty frame, the process does not crash,
// and the worker pool drains, at every parallelism level.
func TestSolveRecoversEnginePanic(t *testing.T) {
	p := gen.MusicWDPT("x", "y", "z", "zp")
	d := gen.MusicDatabase()
	for _, par := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("p%d", par), func(t *testing.T) {
			base := runtime.NumGoroutine()
			res, err := p.Solve(context.Background(), d, core.SolveOptions{
				Mode:        core.ModeEnumerate,
				Engine:      panicEngine{},
				Parallelism: par,
			})
			if err == nil {
				t.Fatalf("panicking engine returned %d answers and no error", len(res.Answers))
			}
			if !errors.Is(err, guard.ErrPanic) {
				t.Fatalf("err = %v, not matchable with ErrPanic", err)
			}
			var te *guard.TripError
			if !errors.As(err, &te) {
				t.Fatalf("err = %v, want a *guard.TripError in the chain", err)
			}
			if v, ok := te.Value.(string); !ok || !strings.Contains(v, "stub engine") {
				t.Errorf("trip lost the panic value: %v", te.Value)
			}
			if !strings.Contains(string(te.Stack), "panicEngine") {
				t.Errorf("trip stack does not name the panicking frame:\n%s", te.Stack)
			}
			waitDrained(t, base)
		})
	}
}

// TestSolvePanicIsNotDegradable pins that the fallback ladder treats a panic
// as a failure, not a budget: no weaker mode is attempted.
func TestSolvePanicIsNotDegradable(t *testing.T) {
	p := gen.MusicWDPT("x", "y")
	d := gen.MusicDatabase()
	st := obs.NewStats()
	_, err := p.Solve(context.Background(), d, core.SolveOptions{
		Mode:     core.ModeExact,
		Mapping:  map[string]string{"x": "Swim", "y": "Caribou"},
		Engine:   panicEngine{},
		Stats:    st,
		Fallback: true,
	})
	if !errors.Is(err, guard.ErrPanic) {
		t.Fatalf("err = %v, want ErrPanic", err)
	}
	if hops := st.Snapshot()["guard.fallback_hops"]; hops != 0 {
		t.Errorf("ladder retried past a panic: guard.fallback_hops = %d", hops)
	}
}

// crossDatabase returns a complete directed graph on n vertices as a single
// binary relation: a chain query over it joins without any semijoin pruning,
// so evaluation stays inside join waves long enough for a deadline to land
// mid-join.
func crossDatabase(n int) *db.Database {
	d := db.New()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d.Insert("r", fmt.Sprint(i), fmt.Sprint(j))
		}
	}
	return d
}

// TestSolveCancellationMidJoin is the regression test for context checks
// inside cqeval's join waves: a deadline that expires while a large join is
// materializing must abort evaluation promptly with a deadline-matchable
// error instead of running the join to completion.
func TestSolveCancellationMidJoin(t *testing.T) {
	p := core.MustNew(core.NodeSpec{Atoms: []cq.Atom{
		cq.NewAtom("r", cq.V("x1"), cq.V("x2")),
		cq.NewAtom("r", cq.V("x2"), cq.V("x3")),
		cq.NewAtom("r", cq.V("x3"), cq.V("x4")),
		cq.NewAtom("r", cq.V("x4"), cq.V("x5")),
	}}, []string{"x1"})
	d := crossDatabase(64)
	for _, par := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("p%d", par), func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
			defer cancel()
			start := time.Now()
			_, err := p.Solve(ctx, d, core.SolveOptions{
				Mode:        core.ModeEnumerate,
				Engine:      cqeval.Yannakakis(),
				Parallelism: par,
			})
			elapsed := time.Since(start)
			if err == nil {
				t.Fatal("expired deadline did not abort the join")
			}
			if !errors.Is(err, context.DeadlineExceeded) || !errors.Is(err, guard.ErrDeadline) {
				t.Fatalf("err = %v, want both context.DeadlineExceeded and ErrDeadline", err)
			}
			if guard.Degradable(err) {
				t.Error("a caller deadline must not be degradable")
			}
			// Generous CI bound: the full cross-product join takes far longer.
			if elapsed > 1500*time.Millisecond {
				t.Errorf("Solve returned after %v, want prompt abort", elapsed)
			}
		})
	}
}
