package core_test

import (
	"testing"
	"testing/quick"

	"wdpt/internal/core"
	"wdpt/internal/cq"
	"wdpt/internal/cqeval"
	"wdpt/internal/gen"
)

func TestPruneNonProjecting(t *testing.T) {
	// Child 2's subtree mentions no free variable and is pruned; child 1
	// binds z (free) and stays; child 3 leads to a free variable through a
	// non-projecting intermediate node and stays entirely.
	p := core.MustNew(core.NodeSpec{
		Atoms: []cq.Atom{cq.NewAtom("r", cq.V("x"))},
		Children: []core.NodeSpec{
			{Atoms: []cq.Atom{cq.NewAtom("a", cq.V("x"), cq.V("z"))}},
			{Atoms: []cq.Atom{cq.NewAtom("b", cq.V("x"), cq.V("dead"))}},
			{
				Atoms: []cq.Atom{cq.NewAtom("c", cq.V("x"), cq.V("mid"))},
				Children: []core.NodeSpec{
					{Atoms: []cq.Atom{cq.NewAtom("d", cq.V("mid"), cq.V("w"))}},
				},
			},
		},
	}, []string{"x", "z", "w"})
	pruned := p.PruneNonProjecting()
	if pruned.NumNodes() != 4 {
		t.Fatalf("pruned nodes = %d, want 4 (dead branch removed):\n%s", pruned.NumNodes(), pruned)
	}
	// Idempotent and identity when nothing prunes.
	if pruned.PruneNonProjecting() != pruned {
		t.Fatal("second prune should return the same tree")
	}
}

func TestPruneKeepsRoot(t *testing.T) {
	// Boolean tree: no free variables at all; everything but the root is
	// non-projecting... but the root itself has no free variable either —
	// it must still be kept, and the (single) answer preserved.
	p := core.MustNew(core.NodeSpec{
		Atoms: []cq.Atom{cq.NewAtom("r", cq.V("u"))},
		Children: []core.NodeSpec{
			{Atoms: []cq.Atom{cq.NewAtom("s", cq.V("u"), cq.V("v"))}},
		},
	}, nil)
	pruned := p.PruneNonProjecting()
	if pruned.NumNodes() != 1 {
		t.Fatalf("pruned nodes = %d, want root only", pruned.NumNodes())
	}
	d := gen.RandomDatabase(gen.DBParams{Rels: []gen.RelSpec{{Name: "r", Arity: 1}, {Name: "s", Arity: 2}}}, 1)
	a1, a2 := p.Evaluate(d), pruned.Evaluate(d)
	if len(a1) != len(a2) {
		t.Fatalf("answers changed: %v vs %v", a1, a2)
	}
}

// TestPrunePreservesAnswersProperty: p(D) and p_m(D) are unchanged by
// pruning on random trees and databases — the Lemma 1 normalization claim.
func TestPrunePreservesAnswersProperty(t *testing.T) {
	f := func(seed int64) bool {
		p := gen.RandomWDPT(gen.TreeParams{MaxDepth: 2, MaxChildren: 2, FreeProb: 0.25}, seed)
		pruned := p.PruneNonProjecting()
		d := gen.RandomDatabase(gen.DBParams{DomainSize: 3, TuplesPerRel: 7}, seed+99)
		if !sameAnswerSets(p.Evaluate(d), pruned.Evaluate(d)) {
			t.Logf("seed %d: p(D) changed\noriginal:\n%s\npruned:\n%s", seed, p, pruned)
			return false
		}
		if !sameAnswerSets(p.EvaluateMaximal(d), pruned.EvaluateMaximal(d)) {
			t.Logf("seed %d: p_m(D) changed", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func sameAnswerSets(a, b []cq.Mapping) bool {
	if len(a) != len(b) {
		return false
	}
	set := cq.NewMappingSet()
	for _, h := range a {
		set.Add(h)
	}
	for _, h := range b {
		if !set.Contains(h) {
			return false
		}
	}
	return true
}

// TestEvaluateWithMatchesEvaluate: the engine-parameterized enumeration
// agrees with the baseline on random instances, for every engine.
func TestEvaluateWithMatchesEvaluate(t *testing.T) {
	engines := []cqeval.Engine{cqeval.Naive(), cqeval.Yannakakis(), cqeval.Decomposition(), cqeval.Auto()}
	f := func(seed int64) bool {
		p := gen.RandomWDPT(gen.TreeParams{MaxDepth: 2, MaxChildren: 2}, seed)
		d := gen.RandomDatabase(gen.DBParams{DomainSize: 3, TuplesPerRel: 7}, seed+5)
		want := p.Evaluate(d)
		for _, eng := range engines {
			if !sameAnswerSets(want, p.EvaluateWith(d, eng)) {
				t.Logf("seed %d engine %s disagrees", seed, eng.Name())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateWithOnMusic(t *testing.T) {
	p := gen.MusicWDPT("x", "y", "z", "zp")
	d := gen.MusicDatabase()
	got := p.EvaluateWith(d, cqeval.Auto())
	if len(got) != 2 {
		t.Fatalf("answers = %v", got)
	}
}

func TestEvaluateFuncStreamsAndStops(t *testing.T) {
	p := gen.MusicWDPT("x", "y", "z", "zp")
	d := gen.MusicDatabase()
	var streamed []cq.Mapping
	p.EvaluateFunc(d, func(h cq.Mapping) bool {
		streamed = append(streamed, h)
		return true
	})
	if !sameAnswerSets(streamed, p.Evaluate(d)) {
		t.Fatalf("streamed answers differ: %v", streamed)
	}
	// Early stop after the first answer.
	count := 0
	p.EvaluateFunc(d, func(cq.Mapping) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop visited %d answers", count)
	}
}

func TestEvaluateFuncProperty(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		p := gen.RandomWDPT(gen.TreeParams{MaxDepth: 2}, seed)
		d := gen.RandomDatabase(gen.DBParams{DomainSize: 3, TuplesPerRel: 6}, seed+3)
		var streamed []cq.Mapping
		p.EvaluateFunc(d, func(h cq.Mapping) bool {
			streamed = append(streamed, h)
			return true
		})
		if !sameAnswerSets(streamed, p.Evaluate(d)) {
			t.Fatalf("seed %d: streamed answers differ", seed)
		}
	}
}
