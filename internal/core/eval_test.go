package core_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"wdpt/internal/core"
	"wdpt/internal/cq"
	"wdpt/internal/cqeval"
	"wdpt/internal/db"
	"wdpt/internal/gen"
)

// TestExample2 reproduces Example 2: the evaluation of the Figure 1 WDPT
// over the five-triple music database consists of exactly μ1 and μ2.
func TestExample2(t *testing.T) {
	p := gen.MusicWDPT("x", "y", "z", "zp")
	d := gen.MusicDatabase()
	answers := p.Evaluate(d)
	mu1 := cq.Mapping{"x": "Our_love", "y": "Caribou"}
	mu2 := cq.Mapping{"x": "Swim", "y": "Caribou", "z": "2"}
	if len(answers) != 2 {
		t.Fatalf("answers = %v, want {μ1, μ2}", answers)
	}
	set := cq.NewMappingSet()
	for _, h := range answers {
		set.Add(h)
	}
	if !set.Contains(mu1) || !set.Contains(mu2) {
		t.Fatalf("answers = %v, want μ1=%v and μ2=%v", answers, mu1, mu2)
	}
}

// TestExample3 reproduces Example 3: projecting out x restricts μ1, μ2 to
// μ1' = {y: Caribou} and μ2' = {y: Caribou, z: 2} — and both remain
// answers although μ1' ⊏ μ2'.
func TestExample3(t *testing.T) {
	p := gen.MusicWDPT("y", "z", "zp")
	d := gen.MusicDatabase()
	answers := p.Evaluate(d)
	mu1p := cq.Mapping{"y": "Caribou"}
	mu2p := cq.Mapping{"y": "Caribou", "z": "2"}
	if len(answers) != 2 {
		t.Fatalf("answers = %v, want {μ1', μ2'}", answers)
	}
	set := cq.NewMappingSet()
	for _, h := range answers {
		set.Add(h)
	}
	if !set.Contains(mu1p) || !set.Contains(mu2p) {
		t.Fatalf("answers = %v, want μ1'=%v, μ2'=%v", answers, mu1p, mu2p)
	}
}

// TestExample7 reproduces Example 7: under the maximal-mappings semantics
// with free variables {y, z}, only μ2 survives.
func TestExample7(t *testing.T) {
	p := gen.MusicWDPT("y", "z")
	d := gen.MusicDatabase()
	max := p.EvaluateMaximal(d)
	if len(max) != 1 {
		t.Fatalf("p_m(D) = %v, want exactly μ2", max)
	}
	if !max[0].Equal(cq.Mapping{"y": "Caribou", "z": "2"}) {
		t.Fatalf("p_m(D) = %v", max)
	}
	// Both μ1 and μ2 are still in p(D).
	if got := len(p.Evaluate(d)); got != 2 {
		t.Fatalf("p(D) = %d answers, want 2", got)
	}
}

func TestEvalDecisionMusic(t *testing.T) {
	p := gen.MusicWDPT("x", "y", "z", "zp")
	d := gen.MusicDatabase()
	eng := cqeval.Auto()
	cases := []struct {
		h    cq.Mapping
		want bool
	}{
		{cq.Mapping{"x": "Our_love", "y": "Caribou"}, true},
		{cq.Mapping{"x": "Swim", "y": "Caribou", "z": "2"}, true},
		// Not maximal: Swim extends with its rating.
		{cq.Mapping{"x": "Swim", "y": "Caribou"}, false},
		// Wrong value.
		{cq.Mapping{"x": "Swim", "y": "Nobody", "z": "2"}, false},
		// Binding a non-free variable name.
		{cq.Mapping{"w": "Swim"}, false},
	}
	for i, c := range cases {
		if got := p.Eval(d, c.h); got != c.want {
			t.Fatalf("case %d: Eval(%v) = %v, want %v", i, c.h, got, c.want)
		}
		if got := p.EvalInterface(d, c.h, eng); got != c.want {
			t.Fatalf("case %d: EvalInterface(%v) = %v, want %v", i, c.h, got, c.want)
		}
	}
}

func TestPartialEvalMusic(t *testing.T) {
	p := gen.MusicWDPT("x", "y", "z", "zp")
	d := gen.MusicDatabase()
	eng := cqeval.Auto()
	// {x: Swim, y: Caribou} is not an exact answer but is a partial one.
	h := cq.Mapping{"x": "Swim", "y": "Caribou"}
	if p.Eval(d, h) {
		t.Fatal("should not be an exact answer")
	}
	if !p.PartialEval(d, h, eng) {
		t.Fatal("should be a partial answer")
	}
	if !p.PartialEvalEnumerate(d, h) {
		t.Fatal("enumeration baseline disagrees")
	}
	// z' never matches: no partial answer binds zp.
	if p.PartialEval(d, cq.Mapping{"zp": "1970"}, eng) {
		t.Fatal("zp has no match in the database")
	}
	// Non-free variable.
	if p.PartialEval(d, cq.Mapping{"nonfree": "1"}, eng) {
		t.Fatal("non-free variable accepted")
	}
	// The empty mapping is a partial answer iff p(D) is nonempty.
	if !p.PartialEval(d, cq.Mapping{}, eng) {
		t.Fatal("empty mapping should be a partial answer")
	}
}

func TestMaxEvalMusic(t *testing.T) {
	p := gen.MusicWDPT("y", "z")
	d := gen.MusicDatabase()
	eng := cqeval.Auto()
	if !p.MaxEval(d, cq.Mapping{"y": "Caribou", "z": "2"}, eng) {
		t.Fatal("μ2 should be a maximal answer")
	}
	if p.MaxEval(d, cq.Mapping{"y": "Caribou"}, eng) {
		t.Fatal("μ1' is subsumed by μ2'")
	}
	if p.MaxEval(d, cq.Mapping{"y": "Nobody"}, eng) {
		t.Fatal("not even a partial answer")
	}
}

// TestProposition3 exercises the 3-colorability reduction: h ∈ p(D) iff the
// graph is 3-colorable, for both the naive and the interface engines.
func TestProposition3(t *testing.T) {
	graphs := []struct {
		name string
		g    gen.Graph
		want bool
	}{
		{"triangle", gen.CompleteGraph(3), true},
		{"K4", gen.CompleteGraph(4), false},
		{"C5", gen.CycleGraph(5), true},
		{"single-edge", gen.Graph{N: 2, Edges: [][2]int{{0, 1}}}, true},
	}
	eng := cqeval.Auto()
	for _, tc := range graphs {
		if tc.g.IsThreeColorable() != tc.want {
			t.Fatalf("%s: oracle wrong", tc.name)
		}
		p, d, h := gen.ThreeColorInstance(tc.g)
		if !p.GloballyIn(cq.TW(1)) {
			t.Fatalf("%s: reduction instance should be in g-TW(1)", tc.name)
		}
		if got := p.Eval(d, h); got != tc.want {
			t.Fatalf("%s: Eval = %v, want %v", tc.name, got, tc.want)
		}
		if got := p.EvalInterface(d, h, eng); got != tc.want {
			t.Fatalf("%s: EvalInterface = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestProposition3Random cross-checks the reduction against the oracle on
// random graphs.
func TestProposition3Random(t *testing.T) {
	eng := cqeval.Auto()
	for seed := int64(0); seed < 12; seed++ {
		g := gen.RandomGraph(5, 0.6, seed)
		p, d, h := gen.ThreeColorInstance(g)
		want := g.IsThreeColorable()
		if got := p.EvalInterface(d, h, eng); got != want {
			t.Fatalf("seed %d: EvalInterface = %v, want %v", seed, got, want)
		}
	}
}

// randomMapping picks a plausible query mapping: with some probability the
// projection of an actual answer (possibly truncated), otherwise random
// bindings of free variables.
func randomMapping(rng *rand.Rand, p *core.PatternTree, d *db.Database) cq.Mapping {
	free := p.Free()
	if rng.Intn(2) == 0 {
		answers := p.Evaluate(d)
		if len(answers) > 0 {
			h := answers[rng.Intn(len(answers))].Clone()
			// Possibly truncate to get partial/non-exact mappings.
			for v := range h {
				if rng.Intn(3) == 0 {
					delete(h, v)
				}
			}
			return h
		}
	}
	adom := d.ActiveDomain()
	h := cq.Mapping{}
	for _, x := range free {
		if rng.Intn(2) == 0 && len(adom) > 0 {
			h[x] = adom[rng.Intn(len(adom))]
		}
	}
	return h
}

// TestEvalEnginesAgreeProperty is the central cross-validation of the WDPT
// semantics: on random trees, databases, and mappings, the naive band
// enumeration (Eval), the Theorem 6 interface algorithm (EvalInterface), and
// direct membership in the enumerated p(D) must all agree; similarly
// PARTIAL-EVAL and MAX-EVAL must agree with their definitional versions
// computed from p(D).
func TestEvalEnginesAgreeProperty(t *testing.T) {
	engs := []cqeval.Engine{cqeval.Naive(), cqeval.Auto(), cqeval.Decomposition()}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := gen.RandomWDPT(gen.TreeParams{MaxDepth: 2, MaxChildren: 2, AtomsPerNode: 2, FreshVarsPerNode: 2}, seed)
		d := gen.RandomDatabase(gen.DBParams{DomainSize: 3, TuplesPerRel: 7}, seed+1)
		h := randomMapping(rng, p, d)

		answers := p.Evaluate(d)
		inAnswers := false
		for _, a := range answers {
			if a.Equal(h) {
				inAnswers = true
				break
			}
		}
		if got := p.Eval(d, h); got != inAnswers {
			t.Logf("seed %d: Eval=%v membership=%v h=%v tree:\n%s\ndb:\n%s", seed, got, inAnswers, h, p, d)
			return false
		}
		wantPartial := false
		for _, a := range answers {
			if h.SubsumedBy(a) {
				wantPartial = true
				break
			}
		}
		wantMax := inAnswers
		if wantMax {
			for _, a := range answers {
				if h.ProperlySubsumedBy(a) {
					wantMax = false
					break
				}
			}
		}
		for _, eng := range engs {
			if got := p.EvalInterface(d, h, eng); got != inAnswers {
				t.Logf("seed %d eng %s: EvalInterface=%v want %v h=%v tree:\n%s\ndb:\n%s",
					seed, eng.Name(), got, inAnswers, h, p, d)
				return false
			}
			if got := p.PartialEval(d, h, eng); got != wantPartial {
				t.Logf("seed %d eng %s: PartialEval=%v want %v h=%v tree:\n%s\ndb:\n%s",
					seed, eng.Name(), got, wantPartial, h, p, d)
				return false
			}
			if got := p.MaxEval(d, h, eng); got != wantMax {
				t.Logf("seed %d eng %s: MaxEval=%v want %v h=%v tree:\n%s\ndb:\n%s",
					seed, eng.Name(), got, wantMax, h, p, d)
				return false
			}
		}
		if got := p.PartialEvalEnumerate(d, h); got != wantPartial {
			t.Logf("seed %d: PartialEvalEnumerate=%v want %v", seed, got, wantPartial)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestMaxEvalAgainstEnumeration checks p_m(D) membership against MaxEval on
// every enumerated answer.
func TestMaxEvalAgainstEnumeration(t *testing.T) {
	eng := cqeval.Auto()
	for seed := int64(0); seed < 15; seed++ {
		p := gen.RandomWDPT(gen.TreeParams{MaxDepth: 2}, seed)
		d := gen.RandomDatabase(gen.DBParams{DomainSize: 3, TuplesPerRel: 6}, seed*7+1)
		maximal := cq.NewMappingSet()
		for _, h := range p.EvaluateMaximal(d) {
			maximal.Add(h)
		}
		for _, h := range p.Evaluate(d) {
			want := maximal.Contains(h)
			if got := p.MaxEval(d, h, eng); got != want {
				t.Fatalf("seed %d: MaxEval(%v) = %v, want %v\ntree:\n%s", seed, h, got, want, p)
			}
		}
	}
}

// TestProjectionFreeSemantics: for projection-free WDPTs every answer is
// maximal (Section 3.4), so p(D) = p_m(D).
func TestProjectionFreeSemantics(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		p := gen.RandomWDPT(gen.TreeParams{MaxDepth: 2, FreeProb: 1.0}, seed)
		if !p.IsProjectionFree() {
			continue
		}
		d := gen.RandomDatabase(gen.DBParams{DomainSize: 3, TuplesPerRel: 6}, seed+100)
		all := p.Evaluate(d)
		max := p.EvaluateMaximal(d)
		if len(all) != len(max) {
			t.Fatalf("seed %d: projection-free p(D)=%d but p_m(D)=%d", seed, len(all), len(max))
		}
	}
}

// TestCQSpecialCase: a single-node WDPT evaluates exactly like its CQ; for
// CQs, EVAL, PARTIAL-EVAL and MAX-EVAL coincide on exact answers
// (Section 5 remark).
func TestCQSpecialCase(t *testing.T) {
	q := cq.MustNew([]string{"x", "z"}, []cq.Atom{
		cq.NewAtom("E", cq.V("x"), cq.V("y")),
		cq.NewAtom("E", cq.V("y"), cq.V("z")),
	})
	p := core.FromCQ(q)
	d := gen.ChainDatabase(5)
	eng := cqeval.Auto()
	want := q.Evaluate(d)
	got := p.Evaluate(d)
	if len(want) != len(got) {
		t.Fatalf("CQ answers %d, WDPT answers %d", len(want), len(got))
	}
	for _, h := range want {
		if !p.Eval(d, h) || !p.PartialEval(d, h, eng) || !p.MaxEval(d, h, eng) {
			t.Fatalf("answer %v not recognized by all three problems", h)
		}
	}
}

func TestEvalRejectsMalformedMappings(t *testing.T) {
	p := gen.MusicWDPT("x", "y")
	d := gen.MusicDatabase()
	eng := cqeval.Auto()
	// z is a variable of the tree but not free.
	for _, h := range []cq.Mapping{
		{"z": "2"},
		{"x": "Swim", "unknown": "1"},
	} {
		if p.Eval(d, h) || p.EvalInterface(d, h, eng) || p.PartialEval(d, h, eng) || p.MaxEval(d, h, eng) {
			t.Fatalf("malformed mapping %v accepted", h)
		}
	}
}

func TestStarWDPTEvaluation(t *testing.T) {
	p := gen.StarWDPT(3)
	d := db.New()
	d.Insert("V", "a")
	d.Insert("E", "a", "b")
	eng := cqeval.Auto()
	// Answer: x=a with z0=z1=z2=b is maximal; x=a alone is not an answer.
	full := cq.Mapping{"x": "a", "z0": "b", "z1": "b", "z2": "b"}
	if !p.Eval(d, full) || !p.EvalInterface(d, full, eng) {
		t.Fatal("full star answer missing")
	}
	if p.Eval(d, cq.Mapping{"x": "a"}) {
		t.Fatal("non-maximal star answer accepted")
	}
	d2 := db.New()
	d2.Insert("V", "lonely")
	if !p.Eval(d2, cq.Mapping{"x": "lonely"}) {
		t.Fatal("isolated vertex answer missing")
	}
}

func TestEvaluateLargerMusic(t *testing.T) {
	p := gen.MusicWDPT("x", "y", "z", "zp")
	d := gen.MusicDatabaseLarge(20, 3, 42)
	answers := p.Evaluate(d)
	eng := cqeval.Auto()
	if len(answers) == 0 {
		t.Fatal("expected answers on the large music db")
	}
	for _, h := range answers[:min(10, len(answers))] {
		if !p.EvalInterface(d, h, eng) {
			t.Fatalf("EvalInterface rejects enumerated answer %v", h)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestChainDatabasePathWDPT(t *testing.T) {
	// PathWDPT over a chain: the single maximal answer goes all the way.
	p := gen.PathWDPT(3, "y0", "y1", "y2", "y3")
	d := gen.ChainDatabase(5)
	eng := cqeval.Auto()
	h := cq.Mapping{"y0": "0", "y1": "1", "y2": "2", "y3": "3"}
	if !p.Eval(d, h) || !p.EvalInterface(d, h, eng) {
		t.Fatal("full chain answer missing")
	}
	// Truncated mapping is not exact (extension exists) but is partial.
	ht := cq.Mapping{"y0": "0", "y1": "1"}
	if p.Eval(d, ht) {
		t.Fatal("truncated chain should not be exact")
	}
	if !p.PartialEval(d, ht, eng) {
		t.Fatal("truncated chain should be partial")
	}
	_ = fmt.Sprint()
}
