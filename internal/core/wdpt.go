// Package core implements well-designed pattern trees (WDPTs), the primary
// contribution of Barceló & Pichler, "Efficient Evaluation and Approximation
// of Well-designed Pattern Trees" (PODS 2015): the data type with
// well-designedness validation (Definition 1), the three evaluation
// semantics EVAL / PARTIAL-EVAL / MAX-EVAL (Definition 2, Sections 3.3-3.4),
// the tractable evaluation algorithms of Theorems 6-9, and the structural
// classifiers — local tractability, bounded interface BI(c), and global
// tractability — of Section 3.
package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"wdpt/internal/cq"
)

// Node is a node of a pattern tree, labeled with a set of relational atoms.
type Node struct {
	atoms    []cq.Atom
	vars     []string // cached cq.AtomsVars(atoms); nodes are immutable
	children []*Node
	parent   *Node
	id       int // preorder index within its PatternTree
}

// Atoms returns the label λ(t) of the node. Must not be modified.
func (n *Node) Atoms() []cq.Atom { return n.atoms }

// Children returns the child nodes. Must not be modified.
func (n *Node) Children() []*Node { return n.children }

// ID returns the node's preorder index within its tree (root = 0).
func (n *Node) ID() int { return n.id }

// Vars returns the distinct variables mentioned in the node's label. The
// returned slice is computed once at construction and must not be modified.
func (n *Node) Vars() []string { return n.vars }

// NodeSpec describes a node when constructing a pattern tree.
type NodeSpec struct {
	Atoms    []cq.Atom
	Children []NodeSpec
}

// PatternTree is a well-designed pattern tree (T, λ, x̄): a rooted tree of
// atom-labeled nodes with a tuple of free variables. Instances are immutable
// after construction and always well-designed (New validates Definition 1).
type PatternTree struct {
	root  *Node
	nodes []*Node // preorder; nodes[i].id == i
	free  []string
	// subtrees memoizes per-subtree derived structure (atoms, vars,
	// extension units): subtree-local evaluation recomputes these for the
	// same subtree at every band/extension step, and the tree is immutable,
	// so the computation is a pure function of the node-id set. Entries are
	// keyed by subtreeKey and shared by concurrent Solve goroutines; the
	// entry count is bounded by maxSubtreeCache to keep the exponential
	// subtree space from exhausting memory (past the bound, callers compute
	// without caching).
	subtrees     sync.Map // subtreeKey → *subtreeInfo
	subtreeCount atomic.Int64
}

// maxSubtreeCache bounds the number of memoized subtree entries per tree.
// The subtree space is exponential in |T|, but real evaluations revisit a
// small working set; the bound only matters for adversarial enumerations.
const maxSubtreeCache = 1 << 14

// subtreeInfo is the memoized derived structure of one rooted subtree.
// atoms and vars are always set; units is filled lazily by extensionUnits
// (nil means not yet computed — an empty unit list is stored non-nil).
type subtreeInfo struct {
	atoms []cq.Atom
	vars  []string
	units atomic.Pointer[[]extUnit]
}

// subtreeKey returns a canonical comparable key for the node-id set: a
// uint64 bitmask for trees of at most 64 nodes (the common case), else the
// sorted-id string rendering.
func (p *PatternTree) subtreeKey(s Subtree) any {
	if len(p.nodes) <= 64 {
		var m uint64
		for id, in := range s {
			if in {
				m |= 1 << uint(id)
			}
		}
		return m
	}
	return s.Key()
}

// subtreeInfoOf returns the memoized derived structure of s, computing and
// (size permitting) caching it.
func (p *PatternTree) subtreeInfoOf(s Subtree) *subtreeInfo {
	key := p.subtreeKey(s)
	if v, ok := p.subtrees.Load(key); ok {
		return v.(*subtreeInfo)
	}
	var atoms []cq.Atom
	for _, n := range p.nodes {
		if s[n.id] {
			atoms = append(atoms, n.atoms...)
		}
	}
	atoms = cq.DedupAtoms(atoms)
	info := &subtreeInfo{atoms: atoms, vars: cq.AtomsVars(atoms)}
	if p.subtreeCount.Load() < maxSubtreeCache {
		if v, loaded := p.subtrees.LoadOrStore(key, info); loaded {
			return v.(*subtreeInfo)
		}
		p.subtreeCount.Add(1)
	}
	return info
}

// New builds a pattern tree from the root spec and free-variable tuple,
// validating Definition 1: every variable's occurrence set must be connected
// in T (well-designedness), and the free variables must be distinct and
// mentioned in T.
func New(root NodeSpec, free []string) (*PatternTree, error) {
	p := &PatternTree{}
	var build func(spec NodeSpec, parent *Node) *Node
	build = func(spec NodeSpec, parent *Node) *Node {
		n := &Node{
			atoms:  cq.DedupAtoms(spec.Atoms),
			parent: parent,
			id:     len(p.nodes),
		}
		n.vars = cq.AtomsVars(n.atoms)
		p.nodes = append(p.nodes, n)
		for _, c := range spec.Children {
			n.children = append(n.children, build(c, n))
		}
		return n
	}
	p.root = build(root, nil)
	p.free = append([]string(nil), free...)
	if err := p.validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustNew is New that panics on error.
func MustNew(root NodeSpec, free []string) *PatternTree {
	p, err := New(root, free)
	if err != nil {
		//lint:ignore R2 Must-constructor: panicking on invalid literals is its documented contract
		panic(err)
	}
	return p
}

// FromCQ converts a conjunctive query to the equivalent single-node WDPT
// (Section 2: CQs are the WDPTs consisting of the root node only).
func FromCQ(q *cq.CQ) *PatternTree {
	return MustNew(NodeSpec{Atoms: q.Atoms()}, q.Free())
}

func (p *PatternTree) validate() error {
	// Well-designedness: the occurrence set of every variable is connected.
	// In a tree this holds iff for every variable y, every node mentioning y
	// except the topmost one has a parent that also mentions y.
	mentions := make(map[string]bool)
	occ := make(map[string][]*Node)
	for _, n := range p.nodes {
		for _, v := range n.Vars() {
			occ[v] = append(occ[v], n) // preorder: first element is topmost candidate
			mentions[v] = true
		}
	}
	vars := make([]string, 0, len(occ))
	for v := range occ {
		vars = append(vars, v)
	}
	sort.Strings(vars) // deterministic error messages
	for _, v := range vars {
		nodes := occ[v]
		inSet := make(map[*Node]bool, len(nodes))
		for _, n := range nodes {
			inSet[n] = true
		}
		rootless := 0
		for _, n := range nodes {
			if n.parent == nil || !inSet[n.parent] {
				rootless++
			}
		}
		if rootless != 1 {
			return fmt.Errorf("core: not well-designed: occurrences of variable %q are disconnected", v)
		}
	}
	seen := make(map[string]bool, len(p.free))
	for _, x := range p.free {
		if seen[x] {
			return fmt.Errorf("core: duplicate free variable %q", x)
		}
		seen[x] = true
		if !mentions[x] {
			return fmt.Errorf("core: free variable %q is not mentioned in the tree", x)
		}
	}
	return nil
}

// Root returns the root node r.
func (p *PatternTree) Root() *Node { return p.root }

// Nodes returns the nodes in preorder. Must not be modified.
func (p *PatternTree) Nodes() []*Node { return p.nodes }

// NumNodes returns the number of nodes of T.
func (p *PatternTree) NumNodes() int { return len(p.nodes) }

// Free returns the free-variable tuple x̄. Must not be modified.
func (p *PatternTree) Free() []string { return p.free }

// FreeSet returns the free variables as a set.
func (p *PatternTree) FreeSet() map[string]bool {
	out := make(map[string]bool, len(p.free))
	for _, x := range p.free {
		out[x] = true
	}
	return out
}

// IsProjectionFree reports whether x̄ contains all variables mentioned in T.
func (p *PatternTree) IsProjectionFree() bool {
	free := p.FreeSet()
	for _, v := range p.Vars() {
		if !free[v] {
			return false
		}
	}
	return true
}

// Vars returns all distinct variables mentioned in the tree.
func (p *PatternTree) Vars() []string {
	return cq.AtomsVars(p.AllAtoms())
}

// AllAtoms returns the atoms of all nodes (deduplicated), i.e. the body of
// the CQ q_T.
func (p *PatternTree) AllAtoms() []cq.Atom {
	var atoms []cq.Atom
	for _, n := range p.nodes {
		atoms = append(atoms, n.atoms...)
	}
	return cq.DedupAtoms(atoms)
}

// Size returns |p|: the size of q_T in standard relational notation.
func (p *PatternTree) Size() int {
	n := 0
	for _, a := range p.AllAtoms() {
		n += 1 + len(a.Args)
	}
	return n
}

// HasConstants reports whether any node label mentions a constant.
func (p *PatternTree) HasConstants() bool {
	for _, a := range p.AllAtoms() {
		for _, t := range a.Args {
			if !t.IsVar() {
				return true
			}
		}
	}
	return false
}

// Clone returns a deep copy of the tree.
func (p *PatternTree) Clone() *PatternTree {
	var spec func(n *Node) NodeSpec
	spec = func(n *Node) NodeSpec {
		s := NodeSpec{Atoms: append([]cq.Atom(nil), n.atoms...)}
		for _, c := range n.children {
			s.Children = append(s.Children, spec(c))
		}
		return s
	}
	return MustNew(spec(p.root), p.free)
}

// String renders the tree with one node per line, indented by depth:
//
//	Ans(x, y): {rec_by(?x, ?y)}
//	  {rating(?x, ?z)}
func (p *PatternTree) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ans(%s):", strings.Join(p.free, ", "))
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("  ", depth))
		parts := make([]string, len(n.atoms))
		for i, a := range n.atoms {
			parts[i] = a.String()
		}
		b.WriteString("{" + strings.Join(parts, ", ") + "}")
		for _, c := range n.children {
			walk(c, depth+1)
		}
	}
	walk(p.root, 0)
	return b.String()
}

// Subtree is a rooted subtree T' of T: a set of node ids containing the root
// and closed under taking parents.
type Subtree map[int]bool

// Clone returns a copy of the subtree set.
func (s Subtree) Clone() Subtree {
	out := make(Subtree, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

// Key renders the subtree as a canonical string usable as a map key.
func (s Subtree) Key() string {
	ids := make([]int, 0, len(s))
	for id := range s {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var b strings.Builder
	for _, id := range ids {
		fmt.Fprintf(&b, "%d,", id)
	}
	return b.String()
}

// RootSubtree returns the subtree consisting of the root only.
func (p *PatternTree) RootSubtree() Subtree { return Subtree{0: true} }

// FullSubtree returns the subtree consisting of all nodes.
func (p *PatternTree) FullSubtree() Subtree {
	s := make(Subtree, len(p.nodes))
	for _, n := range p.nodes {
		s[n.id] = true
	}
	return s
}

// SubtreeAtoms returns the atoms of the nodes in s, i.e. the body of q_T'.
// The result is memoized per subtree and must not be modified.
func (p *PatternTree) SubtreeAtoms(s Subtree) []cq.Atom {
	return p.subtreeInfoOf(s).atoms
}

// SubtreeVars returns the distinct variables mentioned in s. The result is
// memoized per subtree and must not be modified.
func (p *PatternTree) SubtreeVars(s Subtree) []string {
	return p.subtreeInfoOf(s).vars
}

// SubtreeFreeVars returns x̄ ∩ vars(T') in the order of x̄.
func (p *PatternTree) SubtreeFreeVars(s Subtree) []string {
	inTree := make(map[string]bool)
	for _, v := range p.SubtreeVars(s) {
		inTree[v] = true
	}
	var out []string
	for _, x := range p.free {
		if inTree[x] {
			out = append(out, x)
		}
	}
	return out
}

// SubtreeCQ returns q_T': the CQ whose body is the atoms of s and whose free
// variables are ALL variables of s (used by the homomorphism semantics).
func (p *PatternTree) SubtreeCQ(s Subtree) *cq.CQ {
	atoms := p.SubtreeAtoms(s)
	return cq.MustNew(cq.AtomsVars(atoms), atoms)
}

// SubtreeProjectedCQ returns r_T' (Section 6): like q_T' but projected to
// the free variables of p occurring in T'.
func (p *PatternTree) SubtreeProjectedCQ(s Subtree) *cq.CQ {
	atoms := p.SubtreeAtoms(s)
	return cq.MustNew(p.SubtreeFreeVars(s), atoms)
}

// EnumerateSubtrees visits every subtree of T rooted in r, starting with the
// root-only subtree. visit returning false stops the enumeration. The number
// of subtrees can be exponential in the size of T.
func (p *PatternTree) EnumerateSubtrees(visit func(Subtree) bool) {
	p.enumerateExtensions(p.RootSubtree(), visit)
}

// enumerateExtensions visits base and every rooted subtree extending base.
func (p *PatternTree) enumerateExtensions(base Subtree, visit func(Subtree) bool) {
	// Frontier-based enumeration: at each step, either close the frontier
	// node (never include it or its descendants) or include it and push its
	// children. We process frontier nodes in a fixed order to enumerate
	// every downward-closed superset exactly once.
	var frontier []*Node
	for _, n := range p.nodes {
		if !base[n.id] && n.parent != nil && base[n.parent.id] {
			frontier = append(frontier, n)
		}
	}
	cur := base.Clone()
	stopped := false
	var rec func(i int, frontier []*Node)
	rec = func(i int, frontier []*Node) {
		if stopped {
			return
		}
		if i == len(frontier) {
			if !visit(cur.Clone()) {
				stopped = true
			}
			return
		}
		n := frontier[i]
		// Exclude n (and thus its whole subtree).
		rec(i+1, frontier)
		if stopped {
			return
		}
		// Include n; its children join the remaining frontier.
		cur[n.id] = true
		rec(0, append(append([]*Node(nil), frontier[i+1:]...), n.children...))
		delete(cur, n.id)
	}
	rec(0, frontier)
}

// CountSubtrees returns the number of subtrees of T rooted in r, capped at
// limit (0 means no cap).
func (p *PatternTree) CountSubtrees(limit int) int {
	count := 0
	p.EnumerateSubtrees(func(Subtree) bool {
		count++
		return limit == 0 || count < limit
	})
	return count
}

// MinimalSubtreeContaining returns the unique minimal rooted subtree whose
// nodes mention all the given variables, or ok=false if some variable does
// not occur in T. By well-designedness the topmost node mentioning a
// variable is an ancestor of every node mentioning it, so the minimal
// subtree is the union of the root-paths to those topmost nodes.
func (p *PatternTree) MinimalSubtreeContaining(vars []string) (Subtree, bool) {
	s := p.RootSubtree()
	for _, v := range vars {
		top := p.topmostMentioning(v)
		if top == nil {
			return nil, false
		}
		for n := top; n != nil; n = n.parent {
			s[n.id] = true
		}
	}
	return s, true
}

func (p *PatternTree) topmostMentioning(v string) *Node {
	// Preorder guarantees the first node mentioning v is the topmost one
	// (its occurrence set is connected and preorder visits ancestors first).
	for _, n := range p.nodes {
		for _, w := range n.Vars() {
			if w == v {
				return n
			}
		}
	}
	return nil
}

// MaximalSubtreeWithoutNewFree greedily extends base with every node that
// mentions no free variables outside allowed; the result is the unique
// maximal rooted subtree containing base whose free variables stay within
// allowed. base must itself satisfy the condition.
func (p *PatternTree) MaximalSubtreeWithoutNewFree(base Subtree, allowed map[string]bool) Subtree {
	free := p.FreeSet()
	s := base.Clone()
	ok := func(n *Node) bool {
		for _, v := range n.Vars() {
			if free[v] && !allowed[v] {
				return false
			}
		}
		return true
	}
	changed := true
	for changed {
		changed = false
		for _, n := range p.nodes {
			if s[n.id] || n.parent == nil || !s[n.parent.id] {
				continue
			}
			if ok(n) {
				s[n.id] = true
				changed = true
			}
		}
	}
	return s
}

// Depth returns the depth of the tree: 0 for a single-node tree.
func (p *PatternTree) Depth() int {
	var walk func(n *Node) int
	walk = func(n *Node) int {
		max := 0
		for _, c := range n.children {
			if d := walk(c) + 1; d > max {
				max = d
			}
		}
		return max
	}
	return walk(p.root)
}
