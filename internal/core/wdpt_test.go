package core_test

import (
	"fmt"
	"testing"

	"wdpt/internal/core"
	"wdpt/internal/cq"
	"wdpt/internal/gen"
)

func musicTree(t *testing.T, free ...string) *core.PatternTree {
	t.Helper()
	return gen.MusicWDPT(free...)
}

func TestWellDesignednessRejected(t *testing.T) {
	// Variable y occurs in the root and in a grandchild but not in the
	// intermediate node: not well-designed.
	_, err := core.New(core.NodeSpec{
		Atoms: []cq.Atom{cq.NewAtom("R", cq.V("x"), cq.V("y"))},
		Children: []core.NodeSpec{{
			Atoms: []cq.Atom{cq.NewAtom("S", cq.V("x"))},
			Children: []core.NodeSpec{{
				Atoms: []cq.Atom{cq.NewAtom("T", cq.V("y"))},
			}},
		}},
	}, []string{"x"})
	if err == nil {
		t.Fatal("disconnected variable accepted")
	}
}

func TestWellDesignedSiblingsRejected(t *testing.T) {
	// Variable z in two sibling leaves but not in the root.
	_, err := core.New(core.NodeSpec{
		Atoms: []cq.Atom{cq.NewAtom("R", cq.V("x"))},
		Children: []core.NodeSpec{
			{Atoms: []cq.Atom{cq.NewAtom("S", cq.V("x"), cq.V("z"))}},
			{Atoms: []cq.Atom{cq.NewAtom("T", cq.V("x"), cq.V("z"))}},
		},
	}, []string{"x"})
	if err == nil {
		t.Fatal("sibling-shared variable accepted")
	}
}

func TestFreeVarValidation(t *testing.T) {
	spec := core.NodeSpec{Atoms: []cq.Atom{cq.NewAtom("R", cq.V("x"))}}
	if _, err := core.New(spec, []string{"x", "x"}); err == nil {
		t.Fatal("duplicate free variable accepted")
	}
	if _, err := core.New(spec, []string{"nope"}); err == nil {
		t.Fatal("unknown free variable accepted")
	}
}

func TestMusicTreeShape(t *testing.T) {
	p := musicTree(t, "x", "y", "z", "zp")
	if p.NumNodes() != 3 {
		t.Fatalf("nodes = %d, want 3", p.NumNodes())
	}
	if !p.IsProjectionFree() {
		t.Fatal("Example 1 tree is projection-free")
	}
	if p.HasConstants() != true {
		t.Fatal("music tree mentions the constant after_2010")
	}
	proj := musicTree(t, "y", "z")
	if proj.IsProjectionFree() {
		t.Fatal("projected tree should not be projection-free")
	}
	if got := len(p.Vars()); got != 4 {
		t.Fatalf("vars = %d, want 4", got)
	}
}

func TestFromCQ(t *testing.T) {
	q := cq.MustNew([]string{"x"}, []cq.Atom{cq.NewAtom("E", cq.V("x"), cq.V("y"))})
	p := core.FromCQ(q)
	if p.NumNodes() != 1 || len(p.Free()) != 1 {
		t.Fatal("FromCQ shape wrong")
	}
	d := gen.ChainDatabase(3)
	if got := len(p.Evaluate(d)); got != len(q.Evaluate(d)) {
		t.Fatalf("FromCQ answers = %d, CQ answers = %d", got, len(q.Evaluate(d)))
	}
}

func TestSubtreeEnumeration(t *testing.T) {
	p := musicTree(t, "x", "y", "z", "zp")
	// Root alone, root+c1, root+c2, root+both: 4 subtrees.
	if got := p.CountSubtrees(0); got != 4 {
		t.Fatalf("subtrees = %d, want 4", got)
	}
	// A chain of 3 nodes has 3 subtrees.
	chain := gen.PathWDPT(3)
	if got := chain.CountSubtrees(0); got != 3 {
		t.Fatalf("chain subtrees = %d, want 3", got)
	}
	// Early stop honors the cap.
	if got := p.CountSubtrees(2); got != 2 {
		t.Fatalf("capped count = %d, want 2", got)
	}
}

func TestSubtreeCQs(t *testing.T) {
	p := musicTree(t, "y", "z")
	full := p.FullSubtree()
	if got := len(p.SubtreeAtoms(full)); got != 4 {
		t.Fatalf("full atoms = %d, want 4", got)
	}
	q := p.SubtreeCQ(full)
	if got := len(q.Free()); got != 4 { // all variables
		t.Fatalf("q_T free vars = %d, want 4", got)
	}
	r := p.SubtreeProjectedCQ(full)
	if got := len(r.Free()); got != 2 { // only the projected free vars
		t.Fatalf("r_T free vars = %d, want 2", got)
	}
	rootOnly := p.RootSubtree()
	if got := p.SubtreeFreeVars(rootOnly); len(got) != 1 || got[0] != "y" {
		t.Fatalf("root free vars = %v, want [y]", got)
	}
}

func TestMinimalSubtree(t *testing.T) {
	p := musicTree(t, "x", "y", "z", "zp")
	s, ok := p.MinimalSubtreeContaining([]string{"z"})
	if !ok || len(s) != 2 {
		t.Fatalf("minimal subtree for z = %v", s)
	}
	s, ok = p.MinimalSubtreeContaining([]string{"x"})
	if !ok || len(s) != 1 {
		t.Fatalf("minimal subtree for x = %v", s)
	}
	if _, ok = p.MinimalSubtreeContaining([]string{"missing"}); ok {
		t.Fatal("missing variable accepted")
	}
	s, ok = p.MinimalSubtreeContaining(nil)
	if !ok || len(s) != 1 {
		t.Fatal("empty set should give the root subtree")
	}
}

func TestMaximalSubtreeWithoutNewFree(t *testing.T) {
	p := musicTree(t, "x", "y", "z", "zp")
	base := p.RootSubtree()
	// Allowing only x, y blocks both children (each adds a free var).
	s := p.MaximalSubtreeWithoutNewFree(base, map[string]bool{"x": true, "y": true})
	if len(s) != 1 {
		t.Fatalf("expected root only, got %v", s)
	}
	// Allowing z too admits the first child.
	s = p.MaximalSubtreeWithoutNewFree(base, map[string]bool{"x": true, "y": true, "z": true})
	if len(s) != 2 {
		t.Fatalf("expected root + rating child, got %v", s)
	}
}

func TestClassifyMusic(t *testing.T) {
	// Example 6: the Figure 1 tree is in ℓ-TW(1) and BI(2)... with the
	// published(x, const) atom, each node still has ≤ 2 variables.
	p := musicTree(t, "x", "y", "z", "zp")
	if !p.LocallyIn(cq.TW(1)) {
		t.Fatal("music tree should be locally TW(1)")
	}
	if got := p.InterfaceWidth(); got != 2 {
		t.Fatalf("interface width = %d, want 2", got)
	}
	if !p.GloballyIn(cq.TW(1)) {
		t.Fatal("music tree q_T is tree-shaped")
	}
	cl := p.Classify()
	if cl.LocalTW != 1 || cl.InterfaceWidth != 2 || cl.GlobalTW != 1 || cl.Nodes != 3 {
		t.Fatalf("classification = %+v", cl)
	}
	if cl.String() == "" {
		t.Fatal("empty classification report")
	}
}

func TestProposition2LocalBIImpliesGlobal(t *testing.T) {
	// ℓ-TW(k) ∩ BI(c) ⊆ g-TW(k+2c): check on random trees.
	for seed := int64(0); seed < 25; seed++ {
		p := gen.RandomWDPT(gen.TreeParams{InterfaceBound: 2, MaxDepth: 3}, seed)
		k := -1
		for i := 1; i <= 4; i++ {
			if p.LocallyIn(cq.TW(i)) {
				k = i
				break
			}
		}
		if k == -1 {
			continue
		}
		c := p.InterfaceWidth()
		if !p.GloballyIn(cq.TW(k + 2*c)) {
			t.Fatalf("seed %d: p ∈ ℓ-TW(%d) ∩ BI(%d) but not g-TW(%d):\n%s", seed, k, c, k+2*c, p)
		}
	}
}

func TestGlobalStrictlyWeakerThanLocalPlusBI(t *testing.T) {
	// Proposition 2(2): a family in g-TW(1) with unbounded interface: a
	// root with a long path of atoms, child repeating all path vars.
	n := 6
	var rootAtoms, childAtoms []cq.Atom
	for i := 0; i < n; i++ {
		rootAtoms = append(rootAtoms, cq.NewAtom("E", cq.V(fmt.Sprintf("w%d", i)), cq.V(fmt.Sprintf("w%d", i+1))))
		childAtoms = append(childAtoms, cq.NewAtom("E", cq.V(fmt.Sprintf("w%d", i)), cq.V(fmt.Sprintf("w%d", i+1))))
	}
	childAtoms = append(childAtoms, cq.NewAtom("E", cq.V("w0"), cq.V("fresh")))
	p := core.MustNew(core.NodeSpec{
		Atoms:    rootAtoms,
		Children: []core.NodeSpec{{Atoms: childAtoms}},
	}, []string{"w0"})
	if !p.GloballyIn(cq.TW(1)) {
		t.Fatal("path tree should be globally TW(1)")
	}
	if p.InterfaceWidth() <= 2 {
		t.Fatalf("interface width = %d, expected > 2", p.InterfaceWidth())
	}
}

func TestStringRendering(t *testing.T) {
	p := gen.PathWDPT(2)
	s := p.String()
	if s == "" || len(s) < 10 {
		t.Fatalf("String = %q", s)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := musicTree(t, "x", "y")
	c := p.Clone()
	if c.NumNodes() != p.NumNodes() || len(c.Free()) != len(p.Free()) {
		t.Fatal("clone shape differs")
	}
	if c.String() != p.String() {
		t.Fatal("clone renders differently")
	}
}

func TestGlobalHWNeedsSubtreeEnumeration(t *testing.T) {
	// The full-tree CQ is acyclic (the child's covering atom absorbs the
	// root clique, Example 5 style), but the root-only subtree is a plain
	// 4-clique of binary atoms with ghw 2 — so the tree is NOT globally
	// HW(1) although q_T ∈ HW(1). This is exactly why HW(k) needs the
	// subtree enumeration while TW(k) and HW'(k) do not (Section 5).
	var cliqueAtoms []cq.Atom
	vars := []cq.Term{cq.V("x1"), cq.V("x2"), cq.V("x3"), cq.V("x4")}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			cliqueAtoms = append(cliqueAtoms, cq.NewAtom("E", vars[i], vars[j]))
		}
	}
	p := core.MustNew(core.NodeSpec{
		Atoms: cliqueAtoms,
		Children: []core.NodeSpec{
			{Atoms: []cq.Atom{cq.NewAtom("T", vars...)}},
		},
	}, []string{"x1"})
	if !cq.HW(1).ContainsAtoms(p.AllAtoms()) {
		t.Fatal("the full CQ should be acyclic")
	}
	if p.GloballyIn(cq.HW(1)) {
		t.Fatal("the root subtree is cyclic: p must not be globally HW(1)")
	}
	if !p.GloballyIn(cq.HW(2)) {
		t.Fatal("every subtree has ghw <= 2")
	}
	// TW is subquery-closed: global TW = treewidth of the full CQ.
	if p.GloballyIn(cq.TW(2)) {
		t.Fatal("the 4-clique has treewidth 3")
	}
	if !p.GloballyIn(cq.TW(3)) {
		t.Fatal("treewidth 3 suffices globally")
	}
}

func TestDepth(t *testing.T) {
	if got := gen.PathWDPT(4).Depth(); got != 3 {
		t.Fatalf("chain depth = %d, want 3", got)
	}
	if got := gen.StarWDPT(5).Depth(); got != 1 {
		t.Fatalf("star depth = %d, want 1", got)
	}
	if got := core.FromCQ(cq.MustNew([]string{"x"}, []cq.Atom{cq.NewAtom("V", cq.V("x"))})).Depth(); got != 0 {
		t.Fatalf("single node depth = %d, want 0", got)
	}
	cl := gen.PathWDPT(3).Classify()
	if cl.Depth != 2 {
		t.Fatalf("classification depth = %d", cl.Depth)
	}
}
