package core

import (
	"context"
	"fmt"

	"wdpt/internal/cq"
	"wdpt/internal/cqeval"
	"wdpt/internal/db"
	"wdpt/internal/guard"
	"wdpt/internal/obs"
	"wdpt/internal/par"
)

// This file is the consolidated entry point for every WDPT evaluation
// problem of Section 3. Solve subsumes the historical per-problem functions
// (Evaluate, EvaluateMaximal, Eval, EvalInterface, PartialEval, MaxEval,
// EvaluateWith), which survive as thin deprecated wrappers; new callers and
// new evaluation variants go through Solve so that context cancellation,
// engine selection, observability, parallelism, and resource budgets are
// configured in one place (wdptlint rule R7 enforces this for future
// exported functions).
//
// Determinism contract: for every mode and every Parallelism level the
// returned answers are byte-identical, and at Parallelism ≤ 1 the counter
// totals on SolveOptions.Stats equal the historical sequential totals
// exactly. Parallel fan-outs only cover work whose operation set is
// order-independent, so all non-par.* counters stay level-independent too.
// With no Budget set and a non-cancellable context, no guard meter exists,
// so the guardrails add nothing to answers or counters.
//
// Robustness contract (docs/ROBUSTNESS.md): Solve never panics — engine
// bugs, budget trips, and injected faults are recovered at this boundary
// into *guard.TripError values — and with Fallback set, a budget trip on a
// decision mode retries down the paper's tractability ladder
// (exact → maximal → partial; Theorems 8–9) instead of failing.

// Mode selects which evaluation problem Solve decides or computes.
type Mode int

const (
	// ModeEnumerate computes p(D), the set of maximal-homomorphism
	// projections of Definition 2.
	ModeEnumerate Mode = iota
	// ModeMaximal computes p_m(D): p(D) restricted to ⊑-maximal mappings
	// (Section 3.4).
	ModeMaximal
	// ModeExact decides h ∈ p(D) with the interface-relation algorithm of
	// Theorem 6 (polynomial on locally tractable trees of bounded
	// interface).
	ModeExact
	// ModeExactNaive decides h ∈ p(D) with the band-enumeration baseline
	// (correct everywhere, exponential in |p|). It uses the backtracking
	// homomorphism solver directly and ignores SolveOptions.Engine.
	ModeExactNaive
	// ModePartial decides PARTIAL-EVAL: h ⊑ h' for some h' ∈ p(D)
	// (Theorem 8).
	ModePartial
	// ModeMax decides MAX-EVAL: h ∈ p_m(D) (Theorem 9).
	ModeMax
)

// String returns the mode's stable name (the wdpteval -mode vocabulary).
func (m Mode) String() string {
	switch m {
	case ModeEnumerate:
		return "enumerate"
	case ModeMaximal:
		return "maximal"
	case ModeExact:
		return "exact"
	case ModeExactNaive:
		return "exact-naive"
	case ModePartial:
		return "partial"
	case ModeMax:
		return "max"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// FallbackLadder returns the degradation ladder for a mode: the weaker
// modes Solve retries, in order, when a budget trips and Fallback is set.
// The ladder follows the paper's tractability results — EVAL is
// Σ₂ᴾ-complete in general (Proposition 3) while MAX-EVAL and PARTIAL-EVAL
// stay in LOGCFL on globally tractable trees (Theorems 9 and 8) — so each
// hop trades answer precision for a strictly cheaper complexity class. The
// enumeration modes have no ladder (their truncation path is the answer
// cap, which keeps the partial answer set instead of retrying).
func FallbackLadder(m Mode) []Mode {
	switch m {
	case ModeExact, ModeExactNaive:
		return []Mode{ModeMax, ModePartial}
	case ModeMax:
		return []Mode{ModePartial}
	}
	return nil
}

// SolveOptions configures one Solve call. The zero value enumerates p(D)
// sequentially with the naive homomorphism solver, no observability, and no
// resource limits.
type SolveOptions struct {
	// Mode selects the problem; see the Mode constants.
	Mode Mode
	// Mapping is the candidate mapping h for the decision modes (ModeExact,
	// ModeExactNaive, ModePartial, ModeMax); ignored by the enumeration
	// modes.
	Mapping cq.Mapping
	// Engine evaluates the node-level conjunctive queries. nil selects the
	// historical default for the mode: the backtracking solver for the
	// enumeration modes and ModeExactNaive, cqeval.Auto() for the other
	// decision modes.
	Engine cqeval.Engine
	// Stats receives work counters. nil falls back to the sink carried by
	// Engine (cqeval.WithStats); if both are set and differ, Stats wins and
	// the engine is rewired onto it.
	Stats *obs.Stats
	// Parallelism bounds the worker goroutines; values ≤ 1 run the exact
	// sequential legacy code paths and record no par.* counters.
	Parallelism int
	// Budget bounds each evaluation attempt (wall clock, intermediate
	// tuples, answers); see guard.Budget. The zero value imposes no limits.
	// Each attempt of the fallback ladder gets the full budget afresh.
	Budget guard.Budget
	// Fallback retries a budget-tripped decision mode down the degradation
	// ladder (FallbackLadder) and marks answer-capped enumerations Degraded
	// instead of returning guard.ErrAnswerLimit.
	Fallback bool
	// Meter shares an external guard meter across several Solve calls — one
	// budget for a whole union evaluation rather than per member. When set,
	// Budget is ignored and the fallback ladder is driven by the outermost
	// caller (Union.Solve), not per call.
	Meter *guard.Meter
}

// Result is the outcome of a Solve call: Answers for the enumeration modes,
// Holds for the decision modes.
type Result struct {
	// Answers is the enumerated answer set (enumeration modes only).
	Answers []cq.Mapping
	// Holds is the decision-mode verdict.
	Holds bool
	// Degraded reports that the result carries weaker semantics than the
	// requested mode: a fallback-ladder hop succeeded after a budget trip,
	// or the enumeration was truncated at Budget.MaxAnswers.
	Degraded bool
	// DegradedMode is the mode whose semantics the result actually carries
	// when Degraded (the successful rung of the ladder, or the truncated
	// enumeration mode itself).
	DegradedMode Mode
}

// Solve runs the selected evaluation problem over d. It returns an error
// when ctx is cancelled, when opts.Mode is unknown, or when a resource
// budget trips without a fallback; budget trips, injected faults, and
// recovered panics all surface as *guard.TripError values (errors.Is
// against guard.ErrDeadline, guard.ErrTupleBudget, guard.ErrAnswerLimit,
// guard.ErrInjected, guard.ErrPanic). Solve never panics: any panic below
// this boundary is recovered into an error. A nil ctx is treated as
// context.Background().
func (p *PatternTree) Solve(ctx context.Context, d *db.Database, opts SolveOptions) (res Result, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	st := opts.Stats
	if st == nil {
		st = cqeval.StatsOf(opts.Engine)
	}
	defer func() {
		// The boundary backstop: solveAttempt recovers evaluation panics, so
		// this only fires for bugs in the orchestration itself.
		if r := recover(); r != nil {
			res, err = Result{}, guard.AsError(r, st)
		}
	}()
	if opts.Meter != nil {
		// An external meter means an outer caller owns budget and ladder.
		return p.solveAttempt(ctx, d, opts.Mode, opts, st, opts.Meter)
	}
	res, err = p.solveAttempt(ctx, d, opts.Mode, opts, st, guard.NewMeter(ctx, opts.Budget, st))
	if err == nil || !opts.Fallback || !guard.Degradable(err) {
		return res, err
	}
	for _, mode := range FallbackLadder(opts.Mode) {
		if cerr := ctx.Err(); cerr != nil {
			return Result{}, cerr
		}
		st.Inc(obs.CtrGuardFallbackHops)
		res, err = p.solveAttempt(ctx, d, mode, opts, st, guard.NewMeter(ctx, opts.Budget, st))
		if err == nil {
			res.Degraded, res.DegradedMode = true, mode
			return res, nil
		}
		if !guard.Degradable(err) {
			return Result{}, err
		}
	}
	return Result{}, err
}

// solveAttempt runs one evaluation attempt of the given mode under the
// meter m, recovering any panic below it — budget trips, injected faults,
// engine bugs — into an error.
func (p *PatternTree) solveAttempt(ctx context.Context, d *db.Database, mode Mode, opts SolveOptions, st *obs.Stats, m *guard.Meter) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = Result{}, guard.AsError(r, st)
		}
	}()
	pool := par.New(opts.Parallelism, st)
	eng := opts.Engine
	if eng != nil {
		if opts.Stats != nil && cqeval.StatsOf(eng) != opts.Stats {
			eng = cqeval.WithStats(eng, opts.Stats)
		}
		eng = cqeval.WithMeter(cqeval.WithPool(eng, pool), m)
	}
	switch mode {
	case ModeEnumerate, ModeMaximal:
		answers, err := p.enumerateSolve(ctx, d, eng, st, pool, m)
		if err != nil {
			return Result{}, err
		}
		if mode == ModeMaximal {
			res = Result{Answers: answers.Maximal()}
		} else {
			res = Result{Answers: answers.All()}
		}
		if m.Truncated() {
			// The answer cap keeps the partial set: marked Degraded under
			// Fallback (or an outer shared-meter caller), paired with the
			// typed error otherwise — either way the answers survive.
			res.Degraded, res.DegradedMode = true, mode
			if opts.Fallback || opts.Meter != nil {
				return res, nil
			}
			return res, m.AnswerLimitError()
		}
		return res, nil
	case ModeExactNaive:
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		return Result{Holds: p.evalNaive(d, opts.Mapping, st, m)}, nil
	case ModeExact, ModePartial, ModeMax:
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		if eng == nil {
			eng = cqeval.WithMeter(cqeval.WithPool(cqeval.WithStats(cqeval.Auto(), st), pool), m)
		}
		switch mode {
		case ModeExact:
			return Result{Holds: p.evalInterface(d, opts.Mapping, eng)}, nil
		case ModePartial:
			return Result{Holds: p.partialEval(d, opts.Mapping, eng)}, nil
		default:
			return Result{Holds: p.partialEval(d, opts.Mapping, eng) && !p.ProperExtensionExists(d, opts.Mapping, eng)}, nil
		}
	}
	return Result{}, fmt.Errorf("core: unknown solve mode %v", mode)
}

// enumerateSolve computes the full answer set of Definition 2. Root-node
// homomorphisms are materialized first and then expanded downward along
// extension units; with a parallel pool each root candidate expands on its
// own worker with private visited/answer state, and the per-candidate sets
// merge in candidate order. Subtree/mapping keys of distinct root
// candidates never collide (every key embeds the root bindings), so the
// per-candidate dedup maps partition the shared sequential map exactly:
// the expansion work — and its counters — are identical at every
// parallelism level. The guard meter charges enumerated homomorphisms and
// caps the answer set; when the cap fires the remaining candidates are
// skipped and the partial set is returned truncated.
func (p *PatternTree) enumerateSolve(ctx context.Context, d *db.Database, eng cqeval.Engine, st *obs.Stats, pool *par.Pool, m *guard.Meter) (*cq.MappingSet, error) {
	var roots []cq.Mapping
	if eng == nil {
		cq.HomomorphismsObs(p.root.atoms, d, nil, st, m, func(h cq.Mapping) bool {
			m.ChargeTuples(1)
			roots = append(roots, h.Clone())
			return true
		})
	} else {
		roots = eng.Project(p.root.atoms, d, nil, cq.AtomsVars(p.root.atoms))
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !pool.Parallel() || len(roots) <= 1 {
		answers := cq.NewMappingSet()
		visited := make(map[string]bool)
		for _, h := range roots {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if m.Truncated() {
				break
			}
			p.expandSolve(d, eng, st, visited, answers, p.RootSubtree(), h, m)
		}
		return answers, nil
	}
	sets := par.Map(pool, len(roots), func(i int) *cq.MappingSet {
		answers := cq.NewMappingSet()
		p.expandSolve(d, eng, st, make(map[string]bool), answers, p.RootSubtree(), roots[i], m)
		return answers
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	merged := cq.NewMappingSet()
	for _, set := range sets {
		for _, h := range set.All() {
			merged.Add(h)
		}
	}
	return merged, nil
}

// expandSolve grows the subtree/homomorphism pair (s, h) along extension
// units until no extension is possible, collecting the free projections of
// the maximal homomorphisms. With eng == nil the node CQs go to the
// backtracking solver (the historical Evaluate path); otherwise to the
// engine (the historical EvaluateWith path). The meter checkpoints each
// expansion, charges enumerated extension homomorphisms, and gates answer
// collection on the answer budget.
func (p *PatternTree) expandSolve(d *db.Database, eng cqeval.Engine, st *obs.Stats, visited map[string]bool, answers *cq.MappingSet, s Subtree, h cq.Mapping, m *guard.Meter) {
	m.Checkpoint()
	if m.Truncated() {
		return
	}
	key := s.Key() + "|" + h.Key()
	if visited[key] {
		return
	}
	visited[key] = true
	extendable := false
	for _, u := range p.extensionUnits(s) {
		st.Inc(obs.CtrExtensionUnits)
		var exts []cq.Mapping
		if eng == nil {
			cq.HomomorphismsObs(u.atoms, d, h, st, m, func(g cq.Mapping) bool {
				m.ChargeTuples(1)
				exts = append(exts, g.Clone())
				return true
			})
		} else {
			exts = eng.Project(u.atoms, d, h, cq.AtomsVars(u.atoms))
		}
		if len(exts) == 0 {
			continue
		}
		extendable = true
		next := s.Clone()
		for _, n := range u.nodes {
			next[n.id] = true
		}
		for _, g := range exts {
			p.expandSolve(d, eng, st, visited, answers, next, h.Union(g), m)
		}
	}
	if !extendable {
		row := h.Restrict(p.free)
		if m.Active() {
			// Consume answer budget only for rows new to this candidate's
			// set; refusals mark the enumeration truncated.
			if !answers.Contains(row) && !m.TryAnswer() {
				return
			}
		}
		answers.Add(row)
	}
}
