package core

import (
	"context"
	"fmt"

	"wdpt/internal/cq"
	"wdpt/internal/cqeval"
	"wdpt/internal/db"
	"wdpt/internal/obs"
	"wdpt/internal/par"
)

// This file is the consolidated entry point for every WDPT evaluation
// problem of Section 3. Solve subsumes the historical per-problem functions
// (Evaluate, EvaluateMaximal, Eval, EvalInterface, PartialEval, MaxEval,
// EvaluateWith), which survive as thin deprecated wrappers; new callers and
// new evaluation variants go through Solve so that context cancellation,
// engine selection, observability, and parallelism are configured in one
// place (wdptlint rule R7 enforces this for future exported functions).
//
// Determinism contract: for every mode and every Parallelism level the
// returned answers are byte-identical, and at Parallelism ≤ 1 the counter
// totals on SolveOptions.Stats equal the historical sequential totals
// exactly. Parallel fan-outs only cover work whose operation set is
// order-independent, so all non-par.* counters stay level-independent too.

// Mode selects which evaluation problem Solve decides or computes.
type Mode int

const (
	// ModeEnumerate computes p(D), the set of maximal-homomorphism
	// projections of Definition 2.
	ModeEnumerate Mode = iota
	// ModeMaximal computes p_m(D): p(D) restricted to ⊑-maximal mappings
	// (Section 3.4).
	ModeMaximal
	// ModeExact decides h ∈ p(D) with the interface-relation algorithm of
	// Theorem 6 (polynomial on locally tractable trees of bounded
	// interface).
	ModeExact
	// ModeExactNaive decides h ∈ p(D) with the band-enumeration baseline
	// (correct everywhere, exponential in |p|). It uses the backtracking
	// homomorphism solver directly and ignores SolveOptions.Engine.
	ModeExactNaive
	// ModePartial decides PARTIAL-EVAL: h ⊑ h' for some h' ∈ p(D)
	// (Theorem 8).
	ModePartial
	// ModeMax decides MAX-EVAL: h ∈ p_m(D) (Theorem 9).
	ModeMax
)

// String returns the mode's stable name (the wdpteval -mode vocabulary).
func (m Mode) String() string {
	switch m {
	case ModeEnumerate:
		return "enumerate"
	case ModeMaximal:
		return "maximal"
	case ModeExact:
		return "exact"
	case ModeExactNaive:
		return "exact-naive"
	case ModePartial:
		return "partial"
	case ModeMax:
		return "max"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// SolveOptions configures one Solve call. The zero value enumerates p(D)
// sequentially with the naive homomorphism solver and no observability.
type SolveOptions struct {
	// Mode selects the problem; see the Mode constants.
	Mode Mode
	// Mapping is the candidate mapping h for the decision modes (ModeExact,
	// ModeExactNaive, ModePartial, ModeMax); ignored by the enumeration
	// modes.
	Mapping cq.Mapping
	// Engine evaluates the node-level conjunctive queries. nil selects the
	// historical default for the mode: the backtracking solver for the
	// enumeration modes and ModeExactNaive, cqeval.Auto() for the other
	// decision modes.
	Engine cqeval.Engine
	// Stats receives work counters. nil falls back to the sink carried by
	// Engine (cqeval.WithStats); if both are set and differ, Stats wins and
	// the engine is rewired onto it.
	Stats *obs.Stats
	// Parallelism bounds the worker goroutines; values ≤ 1 run the exact
	// sequential legacy code paths and record no par.* counters.
	Parallelism int
}

// Result is the outcome of a Solve call: Answers for the enumeration modes,
// Holds for the decision modes.
type Result struct {
	Answers []cq.Mapping
	Holds   bool
}

// Solve runs the selected evaluation problem over d. It returns an error
// only when ctx is cancelled (checked between root-candidate expansions;
// decision modes run to completion once started) or when opts.Mode is
// unknown. A nil ctx is treated as context.Background().
func (p *PatternTree) Solve(ctx context.Context, d *db.Database, opts SolveOptions) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	st := opts.Stats
	if st == nil {
		st = cqeval.StatsOf(opts.Engine)
	}
	pool := par.New(opts.Parallelism, st)
	eng := opts.Engine
	if eng != nil {
		if opts.Stats != nil && cqeval.StatsOf(eng) != opts.Stats {
			eng = cqeval.WithStats(eng, opts.Stats)
		}
		eng = cqeval.WithPool(eng, pool)
	}
	switch opts.Mode {
	case ModeEnumerate, ModeMaximal:
		answers, err := p.enumerateSolve(ctx, d, eng, st, pool)
		if err != nil {
			return Result{}, err
		}
		if opts.Mode == ModeMaximal {
			return Result{Answers: answers.Maximal()}, nil
		}
		return Result{Answers: answers.All()}, nil
	case ModeExactNaive:
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		return Result{Holds: p.evalNaive(d, opts.Mapping, st)}, nil
	case ModeExact, ModePartial, ModeMax:
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		if eng == nil {
			eng = cqeval.WithPool(cqeval.WithStats(cqeval.Auto(), st), pool)
		}
		switch opts.Mode {
		case ModeExact:
			return Result{Holds: p.evalInterface(d, opts.Mapping, eng)}, nil
		case ModePartial:
			return Result{Holds: p.partialEval(d, opts.Mapping, eng)}, nil
		default:
			return Result{Holds: p.partialEval(d, opts.Mapping, eng) && !p.ProperExtensionExists(d, opts.Mapping, eng)}, nil
		}
	}
	return Result{}, fmt.Errorf("core: unknown solve mode %v", opts.Mode)
}

// enumerateSolve computes the full answer set of Definition 2. Root-node
// homomorphisms are materialized first and then expanded downward along
// extension units; with a parallel pool each root candidate expands on its
// own worker with private visited/answer state, and the per-candidate sets
// merge in candidate order. Subtree/mapping keys of distinct root
// candidates never collide (every key embeds the root bindings), so the
// per-candidate dedup maps partition the shared sequential map exactly:
// the expansion work — and its counters — are identical at every
// parallelism level.
func (p *PatternTree) enumerateSolve(ctx context.Context, d *db.Database, eng cqeval.Engine, st *obs.Stats, pool *par.Pool) (*cq.MappingSet, error) {
	var roots []cq.Mapping
	if eng == nil {
		cq.HomomorphismsObs(p.root.atoms, d, nil, st, func(h cq.Mapping) bool {
			roots = append(roots, h.Clone())
			return true
		})
	} else {
		roots = eng.Project(p.root.atoms, d, nil, cq.AtomsVars(p.root.atoms))
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !pool.Parallel() || len(roots) <= 1 {
		answers := cq.NewMappingSet()
		visited := make(map[string]bool)
		for _, h := range roots {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			p.expandSolve(d, eng, st, visited, answers, p.RootSubtree(), h)
		}
		return answers, nil
	}
	sets := par.Map(pool, len(roots), func(i int) *cq.MappingSet {
		answers := cq.NewMappingSet()
		p.expandSolve(d, eng, st, make(map[string]bool), answers, p.RootSubtree(), roots[i])
		return answers
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	merged := cq.NewMappingSet()
	for _, set := range sets {
		for _, h := range set.All() {
			merged.Add(h)
		}
	}
	return merged, nil
}

// expandSolve grows the subtree/homomorphism pair (s, h) along extension
// units until no extension is possible, collecting the free projections of
// the maximal homomorphisms. With eng == nil the node CQs go to the
// backtracking solver (the historical Evaluate path); otherwise to the
// engine (the historical EvaluateWith path).
func (p *PatternTree) expandSolve(d *db.Database, eng cqeval.Engine, st *obs.Stats, visited map[string]bool, answers *cq.MappingSet, s Subtree, h cq.Mapping) {
	key := s.Key() + "|" + h.Key()
	if visited[key] {
		return
	}
	visited[key] = true
	extendable := false
	for _, u := range p.extensionUnits(s) {
		st.Inc(obs.CtrExtensionUnits)
		var exts []cq.Mapping
		if eng == nil {
			cq.HomomorphismsObs(u.atoms, d, h, st, func(g cq.Mapping) bool {
				exts = append(exts, g.Clone())
				return true
			})
		} else {
			exts = eng.Project(u.atoms, d, h, cq.AtomsVars(u.atoms))
		}
		if len(exts) == 0 {
			continue
		}
		extendable = true
		next := s.Clone()
		for _, n := range u.nodes {
			next[n.id] = true
		}
		for _, g := range exts {
			p.expandSolve(d, eng, st, visited, answers, next, h.Union(g))
		}
	}
	if !extendable {
		answers.Add(h.Restrict(p.free))
	}
}
