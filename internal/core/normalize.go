package core

import (
	"context"
	"fmt"

	"wdpt/internal/cq"
	"wdpt/internal/cqeval"
	"wdpt/internal/db"
	"wdpt/internal/obs"
)

// PruneNonProjecting returns the tree with every branch removed whose
// subtree introduces no free variable — where a node introduces a free
// variable when it mentions one that its parent does not (the node set N of
// the proof of Lemma 1). The transformation is answer-preserving:
// extensions into such branches never enlarge the projection to x̄, and by
// well-designedness they cannot enable or disable extensions elsewhere, so
// p(D) and p_m(D) are unchanged for every database (property-tested). The
// root is always kept. If nothing can be pruned, p itself is returned.
func (p *PatternTree) PruneNonProjecting() *PatternTree {
	free := p.FreeSet()
	projecting := make([]bool, len(p.nodes))
	var mark func(n *Node) bool
	mark = func(n *Node) bool {
		keep := false
		parentVars := make(map[string]bool)
		if n.parent != nil {
			for _, v := range n.parent.Vars() {
				parentVars[v] = true
			}
		}
		for _, v := range n.Vars() {
			if free[v] && !parentVars[v] {
				keep = true
				break
			}
		}
		for _, c := range n.children {
			if mark(c) {
				keep = true
			}
		}
		projecting[n.id] = keep
		return keep
	}
	mark(p.root)
	pruned := false
	var spec func(n *Node) NodeSpec
	spec = func(n *Node) NodeSpec {
		s := NodeSpec{Atoms: append([]cq.Atom(nil), n.atoms...)}
		for _, c := range n.children {
			if projecting[c.id] {
				s.Children = append(s.Children, spec(c))
			} else {
				pruned = true
			}
		}
		return s
	}
	rootSpec := spec(p.root)
	if !pruned {
		return p
	}
	return MustNew(rootSpec, p.free)
}

// EvaluateWith computes p(D) like Evaluate but delegates all conjunctive-
// query work to the given engine, so that enumeration also benefits from
// decomposition-guided evaluation on globally tractable trees.
//
// Deprecated: use Solve with ModeEnumerate and SolveOptions.Engine.
func (p *PatternTree) EvaluateWith(d *db.Database, eng cqeval.Engine) []cq.Mapping {
	res, _ := p.Solve(context.Background(), d, SolveOptions{Mode: ModeEnumerate, Engine: eng})
	return res.Answers
}

// ExplainNodes returns the engine's plan for every node of the tree in
// preorder, labeled "node <id>" — the structured form behind
// wdpteval -explain. Each node's atoms form one conjunctive query, which is
// exactly the granularity at which the Section 3 algorithms invoke the
// engine.
func (p *PatternTree) ExplainNodes(d *db.Database, eng cqeval.Engine) []obs.Plan {
	plans := make([]obs.Plan, 0, len(p.nodes))
	for _, n := range p.nodes {
		pl := eng.Explain(n.atoms, d, nil)
		pl.Label = fmt.Sprintf("node %d", n.id)
		plans = append(plans, pl)
	}
	return plans
}

// EvaluateFunc streams p(D): visit receives each answer once; returning
// false stops the enumeration early. Equivalent to Evaluate but without
// materializing the answer set — answers still arrive deduplicated.
//
//lint:ignore R7 streaming variant: Solve materializes its Result, so there is no Solve equivalent to delegate to
func (p *PatternTree) EvaluateFunc(d *db.Database, visit func(cq.Mapping) bool) {
	emitted := cq.NewMappingSet()
	visited := make(map[string]bool)
	stopped := false
	var expand func(s Subtree, h cq.Mapping)
	expand = func(s Subtree, h cq.Mapping) {
		if stopped {
			return
		}
		key := s.Key() + "|" + h.Key()
		if visited[key] {
			return
		}
		visited[key] = true
		extendable := false
		for _, u := range p.extensionUnits(s) {
			var exts []cq.Mapping
			cq.Homomorphisms(u.atoms, d, h, func(g cq.Mapping) bool {
				exts = append(exts, g.Clone())
				return true
			})
			if len(exts) == 0 {
				continue
			}
			extendable = true
			next := s.Clone()
			for _, n := range u.nodes {
				next[n.id] = true
			}
			for _, g := range exts {
				expand(next, h.Union(g))
				if stopped {
					return
				}
			}
		}
		if !extendable {
			answer := h.Restrict(p.free)
			if emitted.Add(answer) {
				if !visit(answer) {
					stopped = true
				}
			}
		}
	}
	cq.Homomorphisms(p.root.atoms, d, nil, func(h cq.Mapping) bool {
		expand(p.RootSubtree(), h.Clone())
		return !stopped
	})
}
