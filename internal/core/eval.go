package core

import (
	"context"
	"fmt"

	"wdpt/internal/cq"
	"wdpt/internal/cqeval"
	"wdpt/internal/db"
	"wdpt/internal/guard"
	"wdpt/internal/obs"
)

// This file implements the semantics of WDPTs (Definition 2) and the three
// decision problems of Section 3:
//
//	EVAL          — is h ∈ p(D)?            (Σ₂ᴾ-complete in general)
//	PARTIAL-EVAL  — is h ⊑ h' for some h' ∈ p(D)?   (tractable under g-C(k), Thm 8)
//	MAX-EVAL      — is h ∈ p_m(D)?          (tractable under g-C(k), Thm 9)
//
// Two EVAL engines are provided: a naive subtree-enumeration baseline and
// the interface-relation algorithm behind Theorems 6 and 7, which runs in
// polynomial time on locally tractable WDPTs of bounded interface.

// extUnit is a minimal downward extension of a subtree: a chain of nodes
// below the subtree whose last node is the first on its path to introduce a
// variable outside the subtree. A homomorphism on a subtree is maximal iff
// no extension unit of the subtree admits a consistent homomorphism.
//
// compiled and xfer serve the maximality check, which re-tests the same
// unit under every candidate homomorphism of the subtree: compiled is the
// unit's atoms compiled against the fixed domain shared with the subtree,
// and xfer maps each compiled fixed-domain entry to its slot in the
// subtree's variable layout (cq.AtomsVars order over the subtree atoms), so
// a candidate's relevant bindings transfer as raw IDs.
type extUnit struct {
	nodes    []*Node
	atoms    []cq.Atom
	compiled *cq.CompiledAtoms
	xfer     []int
}

// extensionUnits computes the extension units of the subtree s. The result
// is memoized on the tree's subtree cache: maximality is re-checked for the
// same subtree under every candidate homomorphism, and the units depend
// only on the (immutable) tree structure and the subtree's node set.
func (p *PatternTree) extensionUnits(s Subtree) []extUnit {
	info := p.subtreeInfoOf(s)
	if cached := info.units.Load(); cached != nil {
		return *cached
	}
	units := p.computeExtensionUnits(s, info.vars)
	info.units.CompareAndSwap(nil, &units)
	if cached := info.units.Load(); cached != nil {
		return *cached
	}
	return units
}

// computeExtensionUnits is the uncached extension-unit construction.
func (p *PatternTree) computeExtensionUnits(s Subtree, svars []string) []extUnit {
	inS := make(map[string]bool, len(svars))
	slotInS := make(map[string]int, len(svars))
	for i, v := range svars {
		inS[v] = true
		slotInS[v] = i
	}
	var units []extUnit
	var dfs func(n *Node, chainNodes []*Node, chainAtoms []cq.Atom)
	dfs = func(n *Node, chainNodes []*Node, chainAtoms []cq.Atom) {
		chainNodes = append(append([]*Node(nil), chainNodes...), n)
		chainAtoms = append(append([]cq.Atom(nil), chainAtoms...), n.atoms...)
		fresh := false
		for _, v := range n.Vars() {
			if !inS[v] {
				fresh = true
				break
			}
		}
		if fresh {
			var fdom []string
			for _, v := range cq.AtomsVars(chainAtoms) {
				if inS[v] {
					fdom = append(fdom, v)
				}
			}
			u := extUnit{
				nodes:    chainNodes,
				atoms:    chainAtoms,
				compiled: cq.CompileAtoms(chainAtoms, fdom),
				xfer:     make([]int, len(fdom)),
			}
			for i, v := range fdom {
				u.xfer[i] = slotInS[v]
			}
			units = append(units, u)
			return
		}
		for _, c := range n.children {
			dfs(c, chainNodes, chainAtoms)
		}
	}
	for _, n := range p.nodes {
		if !s[n.id] && n.parent != nil && s[n.parent.id] {
			dfs(n, nil, nil)
		}
	}
	return units
}

// isMaximalHom reports whether the homomorphism held in the solver
// assignment a — defined on exactly the variables of the subtree the units
// belong to, in the subtree's cq.AtomsVars slot order, which the units'
// xfer tables were built against — is maximal: none of the subtree's
// extension units can be satisfied consistently with it. The units are
// passed in (extensionUnits of the subtree) so the band loop resolves the
// subtree cache once per band rather than per candidate, and the shared
// bindings transfer to each unit as raw dictionary IDs, so the
// per-candidate check costs no string round trip.
func (p *PatternTree) isMaximalHom(units []extUnit, d *db.Database, a cq.IDAssignment, chk *cq.SatChecker, st *obs.Stats, m *guard.Meter) bool {
	st.Inc(obs.CtrMaximalityChecks)
	for i := range units {
		u := &units[i]
		st.Inc(obs.CtrExtensionUnits)
		if chk.SatisfiableAt(u.compiled, d, a.IDs, u.xfer, st, m) {
			return false
		}
	}
	return true
}

// Evaluate computes p(D): the projections to x̄ of all maximal
// homomorphisms from p to D (Definition 2).
//
// Deprecated: use Solve with ModeEnumerate.
func (p *PatternTree) Evaluate(d *db.Database) []cq.Mapping {
	res, _ := p.Solve(context.Background(), d, SolveOptions{Mode: ModeEnumerate})
	return res.Answers
}

// EvaluateObs is Evaluate with work counts recorded on st.
//
// Deprecated: use Solve with ModeEnumerate and SolveOptions.Stats.
func (p *PatternTree) EvaluateObs(d *db.Database, st *obs.Stats) []cq.Mapping {
	res, _ := p.Solve(context.Background(), d, SolveOptions{Mode: ModeEnumerate, Stats: st})
	return res.Answers
}

// EvaluateMaximal computes p_m(D): the restriction of p(D) to mappings that
// are maximal with respect to ⊑ (Section 3.4).
//
// Deprecated: use Solve with ModeMaximal.
func (p *PatternTree) EvaluateMaximal(d *db.Database) []cq.Mapping {
	res, _ := p.Solve(context.Background(), d, SolveOptions{Mode: ModeMaximal})
	return res.Answers
}

// EvaluateMaximalObs is EvaluateMaximal with work counts recorded on st.
//
// Deprecated: use Solve with ModeMaximal and SolveOptions.Stats.
func (p *PatternTree) EvaluateMaximalObs(d *db.Database, st *obs.Stats) []cq.Mapping {
	res, _ := p.Solve(context.Background(), d, SolveOptions{Mode: ModeMaximal, Stats: st})
	return res.Answers
}

// evalBand prepares the subtree band [T', T”] for an exact-evaluation
// query: T' is the minimal subtree containing dom(h) and T” the maximal
// subtree adding no free variables outside dom(h). ok=false means h cannot
// possibly be an answer (it binds a non-free or non-occurring variable, or
// every subtree containing dom(h) has additional free variables).
func (p *PatternTree) evalBand(h cq.Mapping) (tmin, tmax Subtree, ok bool) {
	free := p.FreeSet()
	for v := range h {
		if !free[v] {
			return nil, nil, false
		}
	}
	tmin, ok = p.MinimalSubtreeContaining(h.Domain())
	if !ok {
		return nil, nil, false
	}
	if len(p.SubtreeFreeVars(tmin)) != len(h) {
		return nil, nil, false
	}
	allowed := make(map[string]bool, len(h))
	for v := range h {
		allowed[v] = true
	}
	tmax = p.MaximalSubtreeWithoutNewFree(tmin, allowed)
	return tmin, tmax, true
}

// Eval decides h ∈ p(D) with the naive baseline: it enumerates the subtrees
// between the minimal subtree of dom(h) and the maximal subtree without new
// free variables, searches homomorphisms consistent with h, and checks
// maximality. Correct for every WDPT; exponential in |p|.
//
// Deprecated: use Solve with ModeExactNaive.
func (p *PatternTree) Eval(d *db.Database, h cq.Mapping) bool {
	res, _ := p.Solve(context.Background(), d, SolveOptions{Mode: ModeExactNaive, Mapping: h})
	return res.Holds
}

// EvalObs is Eval with work counts recorded on st.
//
// Deprecated: use Solve with ModeExactNaive and SolveOptions.Stats.
func (p *PatternTree) EvalObs(d *db.Database, h cq.Mapping, st *obs.Stats) bool {
	res, _ := p.Solve(context.Background(), d, SolveOptions{Mode: ModeExactNaive, Mapping: h, Stats: st})
	return res.Holds
}

// evalNaive is the band-enumeration baseline behind ModeExactNaive. The
// meter checkpoints once per enumerated band so deadlines and cancellation
// interrupt the exponential subtree enumeration between bands.
func (p *PatternTree) evalNaive(d *db.Database, h cq.Mapping, st *obs.Stats, m *guard.Meter) bool {
	tmin, tmax, ok := p.evalBand(h)
	if !ok {
		return false
	}
	found := false
	var chk cq.SatChecker
	p.enumerateBand(tmin, tmax, func(s Subtree) bool {
		m.Checkpoint()
		st.Inc(obs.CtrBandsEnumerated)
		units := p.extensionUnits(s)
		cq.HomomorphismsIDsObs(p.SubtreeAtoms(s), d, h, st, m, func(g cq.IDAssignment) bool {
			// g is defined on vars(s) ⊆ the allowed region, so its free
			// projection is exactly h; it remains to check maximality.
			if p.isMaximalHom(units, d, g, &chk, st, m) {
				found = true
				return false
			}
			return true
		})
		return !found
	})
	return found
}

// enumerateBand visits every rooted subtree s with base ⊆ s ⊆ within.
func (p *PatternTree) enumerateBand(base, within Subtree, visit func(Subtree) bool) {
	var frontier []*Node
	for _, n := range p.nodes {
		if !base[n.id] && within[n.id] && n.parent != nil && base[n.parent.id] {
			frontier = append(frontier, n)
		}
	}
	cur := base.Clone()
	stopped := false
	var rec func(i int, frontier []*Node)
	rec = func(i int, frontier []*Node) {
		if stopped {
			return
		}
		if i == len(frontier) {
			if !visit(cur.Clone()) {
				stopped = true
			}
			return
		}
		n := frontier[i]
		rec(i+1, frontier)
		if stopped {
			return
		}
		cur[n.id] = true
		next := append([]*Node(nil), frontier[i+1:]...)
		for _, c := range n.children {
			if within[c.id] {
				next = append(next, c)
			}
		}
		rec(0, next)
		delete(cur, n.id)
	}
	rec(0, frontier)
}

// PartialEval decides PARTIAL-EVAL (Section 3.3): is there h' ∈ p(D) with
// h ⊑ h'?
//
// Deprecated: use Solve with ModePartial.
func (p *PatternTree) PartialEval(d *db.Database, h cq.Mapping, eng cqeval.Engine) bool {
	res, _ := p.Solve(context.Background(), d, SolveOptions{Mode: ModePartial, Mapping: h, Engine: eng})
	return res.Holds
}

// partialEval is the minimal-subtree PARTIAL-EVAL check behind ModePartial.
// Following the proof of Theorem 8, it suffices to find any homomorphism on
// the minimal subtree containing dom(h) consistent with h; the CQ test is
// delegated to the engine, so the whole check runs in polynomial time when
// the WDPT is globally tractable and the engine is decomposition-guided.
func (p *PatternTree) partialEval(d *db.Database, h cq.Mapping, eng cqeval.Engine) bool {
	free := p.FreeSet()
	for v := range h {
		if !free[v] {
			return false
		}
	}
	tmin, ok := p.MinimalSubtreeContaining(h.Domain())
	if !ok {
		return false
	}
	return eng.Satisfiable(p.SubtreeAtoms(tmin), d, h)
}

// PartialEvalEnumerate is the ablation baseline for PARTIAL-EVAL: it
// enumerates all rooted subtrees containing dom(h) instead of using the
// minimal-subtree characterization.
//
//lint:ignore R7 ablation baseline measured by E3; deliberately not part of the Solve surface
func (p *PatternTree) PartialEvalEnumerate(d *db.Database, h cq.Mapping) bool {
	free := p.FreeSet()
	for v := range h {
		if !free[v] {
			return false
		}
	}
	tmin, ok := p.MinimalSubtreeContaining(h.Domain())
	if !ok {
		return false
	}
	found := false
	p.enumerateExtensions(tmin, func(s Subtree) bool {
		if cq.Satisfiable(p.SubtreeAtoms(s), d, h) {
			found = true
			return false
		}
		return true
	})
	return found
}

// MaxEval decides MAX-EVAL (Section 3.4): is h ∈ p_m(D)? Following the
// proof of Theorem 9: h is a maximal answer iff h is a partial answer and no
// proper extension of h by any further free variable is a partial answer.
// Tractable when the WDPT is globally tractable and the engine is
// decomposition-guided.
//
// Deprecated: use Solve with ModeMax.
func (p *PatternTree) MaxEval(d *db.Database, h cq.Mapping, eng cqeval.Engine) bool {
	res, _ := p.Solve(context.Background(), d, SolveOptions{Mode: ModeMax, Mapping: h, Engine: eng})
	return res.Holds
}

// ProperExtensionExists reports whether some answer h' ∈ p(D) properly
// subsumes h: equivalently, whether h extends to a homomorphism that is
// additionally defined on some further free variable. Used by MAX-EVAL and
// by the union variant ⋃-MAX-EVAL (Theorem 16).
func (p *PatternTree) ProperExtensionExists(d *db.Database, h cq.Mapping, eng cqeval.Engine) bool {
	free := p.FreeSet()
	for v := range h {
		if !free[v] {
			return false // no answer of p is defined on v, so none extends h
		}
	}
	for _, x := range p.free {
		if _, bound := h[x]; bound {
			continue
		}
		sub, ok := p.MinimalSubtreeContaining(append(h.Domain(), x))
		if !ok {
			continue // x does not occur in T; no answer is defined on it
		}
		if eng.Satisfiable(p.SubtreeAtoms(sub), d, h) {
			return true // h extends to an answer also defined on x
		}
	}
	return false
}

// EvalInterface decides h ∈ p(D) with the interface-relation algorithm of
// Theorem 6.
//
// Deprecated: use Solve with ModeExact.
func (p *PatternTree) EvalInterface(d *db.Database, h cq.Mapping, eng cqeval.Engine) bool {
	res, _ := p.Solve(context.Background(), d, SolveOptions{Mode: ModeExact, Mapping: h, Engine: eng})
	return res.Holds
}

// evalInterface is the interface-relation algorithm behind ModeExact
// (Theorem 6): node-local homomorphisms are projected to their (bounded)
// interfaces, optional nodes below the answer region are classified as
// safely terminating or necessarily extending by a memoized bottom-up
// analysis, and nodes outside the region must be blocked. The algorithm is
// correct for every WDPT; its running time is polynomial when p is locally
// tractable with c-bounded interface and eng is decomposition-guided
// (Theorems 6 and 7). The evaluator is internally sequential — its row
// loops short-circuit and share the memo table — so parallelism reaches it
// only through the engine's plan phases.
func (p *PatternTree) evalInterface(d *db.Database, h cq.Mapping, eng cqeval.Engine) bool {
	tmin, tmax, ok := p.evalBand(h)
	if !ok {
		return false
	}
	e := &biEvaluator{
		p:    p,
		d:    d,
		h:    h,
		eng:  eng,
		st:   cqeval.StatsOf(eng),
		gm:   cqeval.MeterOf(eng),
		tmin: tmin,
		tmax: tmax,
		memo: make(map[string]bool),
	}
	return e.required(p.root, cq.Mapping{})
}

type biEvaluator struct {
	p          *PatternTree
	d          *db.Database
	h          cq.Mapping
	eng        cqeval.Engine
	st         *obs.Stats   // the engine's sink, shared for memo counters
	gm         *guard.Meter // the engine's meter, checkpointed per memo query
	tmin, tmax Subtree
	memo       map[string]bool
}

// interfaceVars returns the variables the node shares with its parent or any
// child, excluding those fixed by the query mapping h.
func (e *biEvaluator) interfaceVars(n *Node) []string {
	own := make(map[string]bool)
	for _, v := range n.Vars() {
		own[v] = true
	}
	shared := make(map[string]bool)
	mark := func(other *Node) {
		for _, v := range other.Vars() {
			if own[v] {
				shared[v] = true
			}
		}
	}
	if n.parent != nil {
		mark(n.parent)
	}
	for _, c := range n.children {
		mark(c)
	}
	var out []string
	for _, v := range n.Vars() {
		if shared[v] {
			if _, fixed := e.h[v]; !fixed {
				out = append(out, v)
			}
		}
	}
	return out
}

// childInterface restricts the combined assignment to the variables shared
// between n and child c (those not fixed by h).
func (e *biEvaluator) childInterface(n, c *Node, full cq.Mapping) cq.Mapping {
	own := make(map[string]bool)
	for _, v := range c.Vars() {
		own[v] = true
	}
	out := cq.Mapping{}
	for _, v := range n.Vars() {
		if own[v] {
			if val, ok := full[v]; ok {
				out[v] = val
			}
		}
	}
	return out
}

// fixedWith merges the global mapping h with an interface assignment.
func (e *biEvaluator) fixedWith(iface cq.Mapping) cq.Mapping {
	out := e.h.Clone()
	for k, v := range iface {
		out[k] = v
	}
	return out
}

// required handles nodes of the minimal subtree T': the node must be
// included, a local homomorphism consistent with the interface must exist,
// and all children must in turn be satisfiable as required / safe / blocked
// according to their region.
func (e *biEvaluator) required(n *Node, iface cq.Mapping) bool {
	e.gm.Checkpoint()
	key := fmt.Sprintf("R%d|%s", n.id, iface.Key())
	if v, ok := e.memo[key]; ok {
		e.st.Inc(obs.CtrInterfaceMemoHits)
		return v
	}
	e.st.Inc(obs.CtrInterfaceMemoMisses)
	result := false
	rows := e.eng.Project(n.atoms, e.d, e.fixedWith(iface), e.interfaceVars(n))
	for _, g := range rows {
		if e.childrenOK(n, g.Union(iface)) {
			result = true
			break
		}
	}
	e.memo[key] = result
	return result
}

// safe handles optional nodes in T” \ T': either the node cannot be
// entered at all under the interface (the maximal extension stops above it)
// or it can be entered by some local homomorphism whose children are again
// all safe or blocked.
func (e *biEvaluator) safe(n *Node, iface cq.Mapping) bool {
	e.gm.Checkpoint()
	key := fmt.Sprintf("S%d|%s", n.id, iface.Key())
	if v, ok := e.memo[key]; ok {
		e.st.Inc(obs.CtrInterfaceMemoHits)
		return v
	}
	e.st.Inc(obs.CtrInterfaceMemoMisses)
	rows := e.eng.Project(n.atoms, e.d, e.fixedWith(iface), e.interfaceVars(n))
	result := false
	if len(rows) == 0 {
		result = true // blocked: no extension into n is possible
	} else {
		for _, g := range rows {
			if e.childrenOK(n, g.Union(iface)) {
				result = true
				break
			}
		}
	}
	e.memo[key] = result
	return result
}

// blocked handles nodes outside T”: entering them would define the answer
// on a new free variable, so no consistent local homomorphism may exist.
func (e *biEvaluator) blocked(n *Node, iface cq.Mapping) bool {
	e.gm.Checkpoint()
	key := fmt.Sprintf("B%d|%s", n.id, iface.Key())
	if v, ok := e.memo[key]; ok {
		e.st.Inc(obs.CtrInterfaceMemoHits)
		return v
	}
	e.st.Inc(obs.CtrInterfaceMemoMisses)
	result := !e.eng.Satisfiable(n.atoms, e.d, e.fixedWith(iface))
	e.memo[key] = result
	return result
}

func (e *biEvaluator) childrenOK(n *Node, full cq.Mapping) bool {
	for _, c := range n.children {
		iface := e.childInterface(n, c, full)
		switch {
		case e.tmin[c.id]:
			if !e.required(c, iface) {
				return false
			}
		case e.tmax[c.id]:
			if !e.safe(c, iface) {
				return false
			}
		default:
			if !e.blocked(c, iface) {
				return false
			}
		}
	}
	return true
}
