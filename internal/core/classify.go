package core

import (
	"fmt"
	"strings"

	"wdpt/internal/cq"
)

// Structural classifiers of Section 3: local tractability (ℓ-C), bounded
// interface (BI(c)), and global tractability (g-C).

// LocallyIn reports whether p is locally in the class c: every node label,
// read as a Boolean CQ, belongs to c (Section 3.2).
func (p *PatternTree) LocallyIn(c cq.Class) bool {
	for _, n := range p.nodes {
		if !c.ContainsAtoms(n.atoms) {
			return false
		}
	}
	return true
}

// InterfaceWidth returns the smallest c such that p ∈ BI(c): the maximum,
// over nodes t, of the number of variables occurring both in λ(t) and in
// the label of some child of t (Section 3.2).
func (p *PatternTree) InterfaceWidth() int {
	width := 0
	for _, n := range p.nodes {
		own := make(map[string]bool)
		for _, v := range n.Vars() {
			own[v] = true
		}
		shared := make(map[string]bool)
		for _, c := range n.children {
			for _, v := range c.Vars() {
				if own[v] {
					shared[v] = true
				}
			}
		}
		if len(shared) > width {
			width = len(shared)
		}
	}
	return width
}

// HasBoundedInterface reports p ∈ BI(c).
func (p *PatternTree) HasBoundedInterface(c int) bool {
	return p.InterfaceWidth() <= c
}

// GloballyIn reports whether p is globally in the class c: for every
// subtree T' of T rooted in r, the CQ q_T' belongs to c (Section 3.3).
// For subquery-closed classes (TW(k), HW'(k)) this reduces to the single
// test q_T ∈ c; otherwise all subtrees are enumerated, which can be
// exponential in the size of T.
func (p *PatternTree) GloballyIn(c cq.Class) bool {
	if c.SubqueryClosed() {
		return c.ContainsAtoms(p.AllAtoms())
	}
	ok := true
	p.EnumerateSubtrees(func(s Subtree) bool {
		if !c.ContainsAtoms(p.SubtreeAtoms(s)) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// Classification summarizes where a WDPT sits in the taxonomy of Section 3,
// as reported by cmd/wdptanalyze.
type Classification struct {
	Nodes          int
	Depth          int
	Size           int
	ProjectionFree bool
	InterfaceWidth int
	// LocalTW / LocalHW are the least k with p ∈ ℓ-TW(k) / ℓ-HW(k).
	LocalTW int
	LocalHW int
	// GlobalTW is the least k with p ∈ g-TW(k); GlobalHW the least k with
	// p ∈ g-HW(k) (searched up to a small bound, -1 if above it).
	GlobalTW int
	GlobalHW int
}

// maxWidthProbe bounds the k searched when computing least class indexes.
const maxWidthProbe = 8

// Classify computes the structural classification of p.
func (p *PatternTree) Classify() Classification {
	cl := Classification{
		Nodes:          p.NumNodes(),
		Depth:          p.Depth(),
		Size:           p.Size(),
		ProjectionFree: p.IsProjectionFree(),
		InterfaceWidth: p.InterfaceWidth(),
		LocalTW:        leastK(func(k int) bool { return p.LocallyIn(cq.TW(k)) }),
		LocalHW:        leastK(func(k int) bool { return p.LocallyIn(cq.HW(k)) }),
		GlobalTW:       leastK(func(k int) bool { return p.GloballyIn(cq.TW(k)) }),
		GlobalHW:       leastK(func(k int) bool { return p.GloballyIn(cq.HW(k)) }),
	}
	return cl
}

func leastK(pred func(int) bool) int {
	for k := 1; k <= maxWidthProbe; k++ {
		if pred(k) {
			return k
		}
	}
	return -1
}

// String renders the classification as a short multi-line report.
func (c Classification) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "nodes:            %d\n", c.Nodes)
	fmt.Fprintf(&b, "depth:            %d\n", c.Depth)
	fmt.Fprintf(&b, "size:             %d\n", c.Size)
	fmt.Fprintf(&b, "projection-free:  %v\n", c.ProjectionFree)
	fmt.Fprintf(&b, "interface width:  %d  (p ∈ BI(%d))\n", c.InterfaceWidth, c.InterfaceWidth)
	fmt.Fprintf(&b, "local treewidth:  %d  (p ∈ ℓ-TW(%d))\n", c.LocalTW, c.LocalTW)
	fmt.Fprintf(&b, "local hw:         %d  (p ∈ ℓ-HW(%d))\n", c.LocalHW, c.LocalHW)
	fmt.Fprintf(&b, "global treewidth: %d  (p ∈ g-TW(%d))\n", c.GlobalTW, c.GlobalTW)
	fmt.Fprintf(&b, "global hw:        %d  (p ∈ g-HW(%d))", c.GlobalHW, c.GlobalHW)
	return b.String()
}
