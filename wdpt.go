// Package wdpt is a library for building, analyzing, evaluating, and
// approximating well-designed pattern trees (WDPTs) over arbitrary
// relational schemas, implementing Barceló & Pichler, "Efficient Evaluation
// and Approximation of Well-designed Pattern Trees" (PODS 2015).
//
// WDPTs extend conjunctive queries with optional matching — the tree
// representation of the {AND, OPT} fragment of SPARQL — so that queries
// over semistructured or incomplete data return the best answers available
// instead of failing. The library provides:
//
//   - the WDPT data type with well-designedness validation, plus parsers
//     for an algebraic {AND, OPT} syntax and an explicit tree format
//     (ParseQuery, ParseWDPT);
//   - the three evaluation problems — exact (EVAL), partial (PARTIAL-EVAL)
//     and maximal (MAX-EVAL) — with both naive baselines and the paper's
//     tractable algorithms (Theorems 6-9), driven by conjunctive-query
//     engines based on Yannakakis' algorithm and tree decompositions;
//   - the structural classifiers of Section 3: local tractability ℓ-C(k),
//     bounded interface BI(c), global tractability g-C(k);
//   - subsumption, subsumption-equivalence, and max-equivalence (Section 4);
//   - WB(k)-membership and WB(k)-approximation (Section 5);
//   - unions of WDPTs with union evaluation, the φ_cq translation,
//     M(UWB(k)) membership and UWB(k)-approximation (Section 6).
//
// The exported surface is a façade over the internal packages; see the
// package documentation of internal/core for the underlying machinery and
// DESIGN.md for the per-theorem map.
package wdpt

import (
	"wdpt/internal/approx"
	"wdpt/internal/core"
	"wdpt/internal/cq"
	"wdpt/internal/cqeval"
	"wdpt/internal/db"
	"wdpt/internal/guard"
	"wdpt/internal/obs"
	"wdpt/internal/rdf"
	"wdpt/internal/sparql"
	"wdpt/internal/subsume"
	"wdpt/internal/uwdpt"
)

// Core data types.
type (
	// Term is a variable or constant in a relational atom.
	Term = cq.Term
	// Atom is a relational atom R(v1, ..., vn).
	Atom = cq.Atom
	// CQ is a conjunctive query.
	CQ = cq.CQ
	// Mapping is a partial mapping from variables to constants — both the
	// query input of the evaluation problems and the answer type.
	Mapping = cq.Mapping
	// Database is a finite set of ground relational atoms.
	Database = db.Database
	// TripleStore is the RDF view of a Database (one ternary relation).
	TripleStore = db.TripleStore
	// PatternTree is a well-designed pattern tree.
	PatternTree = core.PatternTree
	// NodeSpec describes a node when constructing a PatternTree.
	NodeSpec = core.NodeSpec
	// Union is a union of WDPTs.
	Union = uwdpt.Union
	// Engine is a CQ evaluation engine driving the tractable algorithms.
	Engine = cqeval.Engine
	// Class is a syntactic class of CQs (TW(k), HW(k), HW'(k)).
	Class = cq.Class
	// Classification reports where a tree sits in the Section 3 taxonomy.
	Classification = core.Classification
	// SubsumeOptions configures the subsumption decision procedures.
	SubsumeOptions = subsume.Options
	// ApproxOptions bounds the approximation candidate search.
	ApproxOptions = approx.Options
	// SolveOptions configures a PatternTree.Solve or Union.Solve call: the
	// problem mode, candidate mapping, engine, stats sink, parallelism,
	// resource budget, and fallback policy.
	SolveOptions = core.SolveOptions
	// SolveMode selects the evaluation problem a Solve call answers.
	SolveMode = core.Mode
	// SolveResult is the outcome of a Solve call: Answers for the
	// enumeration modes, Holds for the decision modes.
	SolveResult = core.Result
	// Optimized is the fixed-parameter-tractable evaluator of Corollary 2.
	Optimized = approx.Optimized
	// OptimizedUnion is the union counterpart (Corollary 3).
	OptimizedUnion = uwdpt.OptimizedUnion
)

// Solve modes: the consolidated evaluation entry point's problem selector.
const (
	// ModeEnumerate computes p(D) (Definition 2).
	ModeEnumerate = core.ModeEnumerate
	// ModeMaximal computes p_m(D) (Section 3.4).
	ModeMaximal = core.ModeMaximal
	// ModeExact decides h ∈ p(D) via the Theorem 6 interface algorithm.
	ModeExact = core.ModeExact
	// ModeExactNaive decides h ∈ p(D) via the band-enumeration baseline.
	ModeExactNaive = core.ModeExactNaive
	// ModePartial decides PARTIAL-EVAL (Theorem 8).
	ModePartial = core.ModePartial
	// ModeMax decides MAX-EVAL (Theorem 9).
	ModeMax = core.ModeMax
)

// Term constructors.
var (
	// V returns a variable term.
	V = cq.V
	// C returns a constant term.
	C = cq.C
	// NewAtom builds an atom.
	NewAtom = cq.NewAtom
)

// Deterministic solution ordering. Every enumeration in the library already
// returns this order; the helpers let consumers re-canonicalize solution
// lists they have merged or filtered themselves.
var (
	// SortSolutions sorts a solution list in place into the canonical order
	// (by variable name, then term value) and returns it, making output
	// byte-stable across runs.
	SortSolutions = cq.SortSolutions
	// CompareSolutions compares two mappings in the canonical solution order,
	// returning -1, 0, or +1.
	CompareSolutions = cq.CompareMappings
)

// Database constructors.
var (
	// NewDatabase returns an empty database.
	NewDatabase = db.New
	// NewTripleStore returns an RDF-style database.
	NewTripleStore = db.NewTripleStore
)

// Pattern-tree constructors.
var (
	// New builds a validated WDPT from a node spec and free variables.
	New = core.New
	// MustNew is New that panics on error.
	MustNew = core.MustNew
	// FromCQ converts a CQ to the equivalent single-node WDPT.
	FromCQ = core.FromCQ
	// NewUnion builds a union of WDPTs.
	NewUnion = uwdpt.New
)

// Parsers and formatters (see internal/sparql for the grammars).
var (
	// ParseQuery parses "SELECT ?x WHERE <{AND,OPT} pattern>" (or a bare,
	// projection-free pattern) into a WDPT.
	ParseQuery = sparql.ParseQuery
	// ParseUnionQuery parses queries joined by UNION.
	ParseUnionQuery = sparql.ParseUnionQuery
	// ParseSPARQL parses the W3C-flavored surface syntax:
	// "SELECT ?x WHERE { ?s ?p ?o . OPTIONAL { ... } }".
	ParseSPARQL = sparql.ParseSPARQL
	// ParseSPARQLUnion parses SPARQL-syntax queries joined by UNION.
	ParseSPARQLUnion = sparql.ParseSPARQLUnion
	// ParseWDPT parses the explicit "ANS(?x) { ... }" tree format.
	ParseWDPT = sparql.ParseWDPT
	// ParseDatabase parses a line-oriented ground-atom database file.
	ParseDatabase = sparql.ParseDatabase
	// FormatWDPT renders a tree in the ParseWDPT format.
	FormatWDPT = sparql.Format
	// FormatDatabase renders a database in the ParseDatabase format.
	FormatDatabase = sparql.FormatDatabase
)

// CQ classes for the classifiers, well-behaved classes, and approximation.
var (
	// TW returns the class of CQs of treewidth at most k.
	TW = cq.TW
	// HW returns the class of CQs of (generalized) hypertreewidth ≤ k.
	HW = cq.HW
	// HWPrime returns the class HW'(k) (β-hypertreewidth ≤ k).
	HWPrime = cq.HWPrime
	// WB returns the well-behaved class WB(k) = g-TW(k) of Section 5.
	WB = approx.WB
	// WBPrime returns WB(k) with C(k) = HW'(k).
	WBPrime = approx.WBPrime
)

// Evaluation engines (Theorems 2, 3 substrate).
var (
	// NaiveEngine is the baseline backtracking engine.
	NaiveEngine = cqeval.Naive
	// YannakakisEngine evaluates acyclic CQs by semijoin programs.
	YannakakisEngine = cqeval.Yannakakis
	// DecompositionEngine evaluates via tree decompositions.
	DecompositionEngine = cqeval.Decomposition
	// HypertreeEngine evaluates via generalized hypertree decompositions
	// of bounded width (the true HW(k) engine of Theorem 3).
	HypertreeEngine = cqeval.Hypertree
	// AutoEngine picks Yannakakis when acyclic, decompositions otherwise.
	AutoEngine = cqeval.Auto
)

// Observability: engine-level counters, spans, and EXPLAIN plans (see
// docs/OBSERVABILITY.md for the counter glossary and output formats).
type (
	// Stats is a set of atomic work counters shared by every evaluation
	// layer; attach one to an engine with WithStats and read it back with
	// Snapshot. A nil *Stats disables recording at near-zero cost.
	Stats = obs.Stats
	// Counter identifies one registered counter.
	Counter = obs.Counter
	// Plan is the structured EXPLAIN value returned by Engine.Explain.
	Plan = obs.Plan
	// PlanBag is one bag of a join-tree / decomposition plan.
	PlanBag = obs.PlanBag
	// Timer measures functions with warm-up and min-of-N repetition.
	Timer = obs.Timer
	// TraceSink receives span events from a Stats with tracing attached.
	TraceSink = obs.TraceSink
)

// Observability constructors.
var (
	// NewStats returns an empty, enabled counter set.
	NewStats = obs.NewStats
	// WithStats returns a copy of an engine that records its work on the
	// given Stats; the WDPT algorithms above the engine report their own
	// counters (bands, memo hits, ...) to the same sink.
	WithStats = cqeval.WithStats
	// StatsOf returns the Stats attached to an engine, or nil.
	StatsOf = cqeval.StatsOf
	// AllCounters returns every registered counter in declaration order.
	AllCounters = obs.Counters
)

// Guardrails: resource budgets, graceful degradation, and deterministic
// fault injection (see docs/ROBUSTNESS.md for semantics and examples).
type (
	// Budget bounds one evaluation attempt: wall clock, intermediate tuples
	// materialized, and answers produced. The zero value imposes no limits.
	// Set it on SolveOptions.Budget; pair with SolveOptions.Fallback to
	// degrade down the exact → maximal → partial ladder instead of failing.
	Budget = guard.Budget
	// TripError is the typed error a budget trip, injected fault, or
	// recovered panic surfaces as, carrying the trip site and progress
	// stats; match its cause with errors.Is against the Err* sentinels.
	TripError = guard.TripError
	// FaultInjector deterministically fails registered evaluation sites
	// (nth call or probabilistic, from a fixed seed) for chaos testing.
	FaultInjector = guard.Injector
)

// Guardrail sentinels and helpers.
var (
	// ErrDeadline reports that Budget.Wall (or a context deadline) expired.
	ErrDeadline = guard.ErrDeadline
	// ErrTupleBudget reports that Budget.MaxTuples was exceeded.
	ErrTupleBudget = guard.ErrTupleBudget
	// ErrAnswerLimit reports that Budget.MaxAnswers truncated an
	// enumeration; the partial answer set is still returned.
	ErrAnswerLimit = guard.ErrAnswerLimit
	// ErrInjected reports a fault raised by an active FaultInjector.
	ErrInjected = guard.ErrInjected
	// ErrPanic reports an engine panic recovered at the Solve boundary.
	ErrPanic = guard.ErrPanic
	// Degradable reports whether an error is a budget trip the fallback
	// ladder may recover from (deadline, tuple budget, or answer limit).
	Degradable = guard.Degradable
	// NewFaultInjector returns a deterministic injector seeded for
	// reproducible chaos runs; configure with FailNth / FailProb.
	NewFaultInjector = guard.NewInjector
	// ActivateFaults installs an injector process-wide and returns a
	// restore function; for tests only.
	ActivateFaults = guard.Activate
	// FaultSites lists the registered fault-injection site names.
	FaultSites = guard.Sites
)

// RDF scenario (Section 2): answer-preserving encodings into the single
// ternary triple relation.
var (
	// EncodeRDF converts a relational pattern tree to an RDF WDPT.
	EncodeRDF = rdf.Encode
	// EncodeRDFDatabase converts a relational database to triples.
	EncodeRDFDatabase = rdf.EncodeDatabase
	// IsRDFTree reports whether a tree is an RDF WDPT (triples only).
	IsRDFTree = rdf.IsRDF
)

// Static analysis (Section 4).
var (
	// Subsumes decides p1 ⊑ p2.
	Subsumes = subsume.Subsumes
	// SubsumptionEquivalent decides p1 ≡s p2.
	SubsumptionEquivalent = subsume.Equivalent
	// MaxEquivalent decides p1 ≡max p2 (= ≡s by Proposition 5).
	MaxEquivalent = subsume.MaxEquivalent
	// SubsumptionCounterExample returns a witness database and answer
	// refuting p1 ⊑ p2, if any.
	SubsumptionCounterExample = subsume.CounterExample
)

// Semantic optimization and approximation (Sections 5, 6).
var (
	// Approximate computes a WB(k)-approximation of p.
	Approximate = approx.Approximate
	// ApproximateAll returns all maximal approximation candidates.
	ApproximateAll = approx.ApproximateAll
	// MemberWB decides membership in M(WB(k)) with a witness.
	MemberWB = approx.MemberWB
	// Optimize builds the Corollary 2 FPT evaluator: one membership test
	// at construction, tractable PARTIAL-EVAL / MAX-EVAL afterwards.
	Optimize = approx.Optimize
	// IsApproximation checks a candidate approximation.
	IsApproximation = approx.IsApproximation
	// ApproximateUnion computes the UWB(k)-approximation of a union as a
	// union of tractable CQs (Theorem 18).
	ApproximateUnion = uwdpt.ApproximateUWB
	// MemberUnionWB decides membership in M(UWB(k)) (Theorem 17).
	MemberUnionWB = uwdpt.MemberUWB
	// SubsumesUnion decides φ1 ⊑ φ2 for unions.
	SubsumesUnion = uwdpt.Subsumes
	// OptimizeUnion builds the Corollary 3 FPT union evaluator.
	OptimizeUnion = uwdpt.OptimizeUnion
)
